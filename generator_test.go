package smartdpss_test

// Edge-case coverage for the on-site generation subsystem through the
// public API: the zero-capacity configuration must be indistinguishable
// from a generator-free run, a minimum stable load above demand must
// still dispatch cleanly, and the generator must keep the system running
// when the UPS operation budget (Nmax) is exhausted.

import (
	"math"
	"reflect"
	"testing"

	dpss "github.com/smartdpss/smartdpss"
)

// genTraces returns a short deterministic scenario shared by the tests.
func genTraces(t *testing.T) *dpss.Traces {
	t.Helper()
	tc := dpss.DefaultTraceConfig()
	tc.Days = 7
	traces, err := dpss.GenerateTraces(tc)
	if err != nil {
		t.Fatal(err)
	}
	return traces
}

// TestGeneratorZeroCapacityInert: with GeneratorMW == 0 every other
// generator field must be ignored, and the report must be deeply equal to
// the plain generator-free run — the seed-identical guarantee behind the
// suite's byte-identity acceptance check.
func TestGeneratorZeroCapacityInert(t *testing.T) {
	traces := genTraces(t)
	for _, policy := range []dpss.Policy{
		dpss.PolicySmartDPSS, dpss.PolicyImpatient,
		dpss.PolicyOfflineOptimal, dpss.PolicyLookahead,
	} {
		plain, err := dpss.Simulate(policy, dpss.DefaultOptions(), traces)
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		opts := dpss.DefaultOptions()
		opts.GeneratorMW = 0 // disabled: everything below must be ignored
		opts.GeneratorMinLoadFrac = 0.9
		opts.GeneratorRampMW = 0.1
		opts.FuelUSDPerMWh = 1 // absurdly cheap — but there is no unit
		opts.FuelQuadUSD = 7
		opts.GeneratorStartupUSD = 1e6
		opts.GeneratorStartupLagSlots = 3
		gated, err := dpss.Simulate(policy, opts, traces)
		if err != nil {
			t.Fatalf("%s with gated generator: %v", policy, err)
		}
		if !reflect.DeepEqual(plain, gated) {
			t.Errorf("%s: zero-capacity generator changed the report:\n%v\nvs\n%v", policy, plain, gated)
		}
		if gated.GenEnergyMWh != 0 || gated.GenFuelUSD != 0 || gated.GenStarts != 0 {
			t.Errorf("%s: zero-capacity generator accumulated output: %+v", policy, gated)
		}

		// An empty fleet — even with the fleet knobs set — must be just
		// as inert: the empty-fleet byte-identity acceptance invariant.
		empty := dpss.DefaultOptions()
		empty.Fleet = []dpss.UnitSpec{}
		empty.CommitWindow = 24
		empty.CarbonUSDPerTon = 100
		fleetless, err := dpss.Simulate(policy, empty, traces)
		if err != nil {
			t.Fatalf("%s with empty fleet: %v", policy, err)
		}
		if !reflect.DeepEqual(plain, fleetless) {
			t.Errorf("%s: empty fleet changed the report:\n%v\nvs\n%v", policy, plain, fleetless)
		}
		if fleetless.GenUnits != nil || fleetless.GenCO2Kg != 0 {
			t.Errorf("%s: empty fleet accumulated per-unit state: %+v", policy, fleetless)
		}
	}
}

// TestGeneratorDispatches: a unit with fuel cheaper than the grid must
// actually carry load and its costs must appear in the decomposition.
func TestGeneratorDispatches(t *testing.T) {
	traces := genTraces(t)
	opts := dpss.DefaultOptions()
	opts.GeneratorMW = 0.5
	opts.FuelUSDPerMWh = 25 // below even the long-term price level
	rep, err := dpss.Simulate(dpss.PolicySmartDPSS, opts, traces)
	if err != nil {
		t.Fatal(err)
	}
	if rep.GenEnergyMWh <= 0 || rep.GenSlots <= 0 {
		t.Fatalf("cheap generator never dispatched: %+v", rep)
	}
	if rep.GenFuelUSD <= 0 {
		t.Fatalf("dispatched energy has no fuel cost: %+v", rep)
	}
	sum := rep.LTCostUSD + rep.RTCostUSD + rep.BatteryOpUSD + rep.WasteCostUSD +
		rep.GenFuelUSD + rep.GenStartupUSD
	if math.Abs(sum-rep.TotalCostUSD) > 1e-6 {
		t.Fatalf("cost decomposition %.6f != total %.6f", sum, rep.TotalCostUSD)
	}

	// And it must not be worse than going without: the controller only
	// dispatches when the drift objective says it pays.
	plain, err := dpss.Simulate(dpss.PolicySmartDPSS, dpss.DefaultOptions(), traces)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalCostUSD > plain.TotalCostUSD*1.02 {
		t.Fatalf("cheap generator made things worse: $%.2f vs $%.2f", rep.TotalCostUSD, plain.TotalCostUSD)
	}
}

// TestGeneratorMinLoadAboveDemand: with the minimum stable load pinned to
// the full capacity (MinLoadFrac = 1) and that capacity above the typical
// demand, every producing slot must emit exactly the minimum load and the
// surplus must drain into the battery or waste — never break the run.
func TestGeneratorMinLoadAboveDemand(t *testing.T) {
	traces := genTraces(t)
	opts := dpss.DefaultOptions()
	opts.GeneratorMW = 2.0 // at the peak: min load exceeds most slots' demand
	opts.GeneratorMinLoadFrac = 1.0
	opts.FuelUSDPerMWh = 5 // nearly free, so dispatch is tempting
	rep, err := dpss.Simulate(dpss.PolicySmartDPSS, opts, traces)
	if err != nil {
		t.Fatal(err)
	}
	if rep.GenSlots > 0 {
		// All-or-nothing unit: energy must be exactly slots × min load.
		want := float64(rep.GenSlots) * 2.0
		if math.Abs(rep.GenEnergyMWh-want) > 1e-6 {
			t.Fatalf("all-or-nothing unit produced %.6f MWh over %d slots, want %.6f",
				rep.GenEnergyMWh, rep.GenSlots, want)
		}
	}
	if rep.UnservedMWh > 1e-9 {
		t.Fatalf("min-load surplus shed demand: %+v", rep)
	}
	if rep.Availability < 1 {
		t.Fatalf("availability dropped under min-load dispatch: %v", rep.Availability)
	}
}

// TestGeneratorWithExhaustedBatteryOps: once the Nmax operation budget
// freezes the UPS, the generator must still dispatch — the two budgets
// are independent — and the run must stay clean.
func TestGeneratorWithExhaustedBatteryOps(t *testing.T) {
	traces := genTraces(t)
	opts := dpss.DefaultOptions()
	opts.BatteryMaxOps = 5 // exhausted within the first day
	opts.GeneratorMW = 0.5
	opts.FuelUSDPerMWh = 25
	rep, err := dpss.Simulate(dpss.PolicySmartDPSS, opts, traces)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BatteryOps > 5 {
		t.Fatalf("battery exceeded its operation budget: %d ops", rep.BatteryOps)
	}
	if rep.GenEnergyMWh <= 0 {
		t.Fatalf("generator idle despite a frozen battery: %+v", rep)
	}
	if rep.UnservedMWh > 1e-9 {
		t.Fatalf("demand shed with a frozen battery but a live generator: %+v", rep)
	}

	// The frozen-battery system must not beat the unconstrained one.
	free := opts
	free.BatteryMaxOps = 0
	unconstrained, err := dpss.Simulate(dpss.PolicySmartDPSS, free, traces)
	if err != nil {
		t.Fatal(err)
	}
	if unconstrained.TotalCostUSD > rep.TotalCostUSD*1.02 {
		t.Fatalf("removing the ops budget made things worse: $%.2f vs $%.2f",
			unconstrained.TotalCostUSD, rep.TotalCostUSD)
	}
}

// TestGeneratorStartupLagAndCost: a startup lag must delay (not prevent)
// dispatch, and every cold start must be billed.
func TestGeneratorStartupLagAndCost(t *testing.T) {
	traces := genTraces(t)
	opts := dpss.DefaultOptions()
	opts.GeneratorMW = 0.5
	opts.FuelUSDPerMWh = 25
	opts.GeneratorStartupUSD = 30
	opts.GeneratorStartupLagSlots = 2
	rep, err := dpss.Simulate(dpss.PolicySmartDPSS, opts, traces)
	if err != nil {
		t.Fatal(err)
	}
	if rep.GenStarts <= 0 {
		t.Fatalf("no cold starts recorded: %+v", rep)
	}
	want := float64(rep.GenStarts) * 30
	if math.Abs(rep.GenStartupUSD-want) > 1e-9 {
		t.Fatalf("startup billing %.2f != %d starts × $30", rep.GenStartupUSD, rep.GenStarts)
	}
}
