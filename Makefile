# Same targets CI runs (.github/workflows/ci.yml), so humans and CI
# invoke identical commands.

GO ?= go

.PHONY: build test race bench lint suite

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run '^$$' .

lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; echo "$$unformatted" >&2; exit 1; \
	fi
	$(GO) vet ./...

# Full one-month scenario suite (paper figures + extensions) on all cores.
suite:
	$(GO) run ./cmd/experiments -run paper,ext
