# Same targets CI runs (.github/workflows/ci.yml), so humans and CI
# invoke identical commands.

GO ?= go

# The perf-trajectory benchmark set (see BENCH_9.json and README
# "Performance"). BenchmarkAblationOfflineHorizonLP (unanchored) matches
# both the sparse default and its Dense reference variant, so cmd/perf
# can gate their same-run speedup ratio; BenchmarkGeoStep carries the
# geo fan-out's allocs/op gate at every fleet size.
PERF_BENCHES = BenchmarkDefaultsSimulation|BenchmarkAblationP5LP$$|BenchmarkAblationOfflineHorizonLP|BenchmarkFleetDispatch|BenchmarkSuiteSequential|BenchmarkGeoStep|BenchmarkTuneEvaluate

# Fuzzing budget for the `fuzz` target (CI smoke uses the default).
FUZZTIME ?= 30s

.PHONY: build test race bench fuzz lint lint-docs docs suite golden cover perf serve-smoke tune-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Benchmark smoke: one iteration of every benchmark, including the
# provision-family point (BenchmarkProvisionGrid). -short skips the
# year-long annual LP (minutes even at one iteration) and the explicit
# timeout keeps a hung benchmark from stalling CI silently.
bench:
	$(GO) test -bench=. -benchtime=1x -short -timeout 15m -run '^$$' .

# Dense-vs-sparse LP parity fuzzing (FuzzSparseSolveParity): random
# staircase LPs, dense tableau and sparse revised simplex must agree on
# status and objective. Override the budget with FUZZTIME=5m.
fuzz:
	$(GO) test ./internal/lp -run '^$$' -fuzz FuzzSparseSolveParity -fuzztime $(FUZZTIME)

lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; echo "$$unformatted" >&2; exit 1; \
	fi
	$(GO) vet ./...

# Package-comment lint: every package must carry a godoc package comment
# (see scripts/lint-docs.sh for the exact rule).
lint-docs:
	./scripts/lint-docs.sh

# Documentation surface: every godoc Example must pass (output lines are
# checked verbatim), on top of the lint and package-comment gates.
docs: lint lint-docs
	$(GO) test -run Example ./...

# Full scenario suite (paper + extensions + provisioning + fleet + geo
# + the year-long annual family) on all cores. The annual scenario
# solves the 8760-slot horizon LP on the sparse simplex — minutes, not
# hours, but still the slowest row of the suite.
suite:
	$(GO) run ./cmd/experiments -run paper,ext,provision,fleet,annual,geo

# Golden-file regression gate: diff the paper suite against the
# committed snapshots. Regenerate intentionally with:
#   go test ./internal/experiments -run TestSuiteGolden -update
golden:
	$(GO) test ./internal/experiments -run 'TestSuiteGolden|TestGoldenFilesComplete' -v

# Per-package coverage, mirroring the CI floors (suite 70%, generator 85%,
# baseline 70%, lp 95%, sim 70%, optimize 85%).
cover:
	$(GO) test -cover ./internal/suite ./internal/generator ./internal/baseline ./internal/lp ./internal/sim ./internal/optimize

# Tuning-family smoke: the three tune scenarios (tuned-vs-default gap,
# seed/regime transfer, SmartDPSS-vs-Lyapunov frontier) on a two-day
# horizon with two seeds through a two-worker pool — fast enough for CI,
# wide enough to exercise the nested tuner fan-out.
tune-smoke:
	$(GO) run ./cmd/experiments -run tune -days 2 -seeds 2 -parallel 2

# Service-mode smoke: start dpss-serve on a replay source, scrape
# /metrics over HTTP, validate the OpenMetrics exposition, and prove a
# checkpointed run resumes across processes (scripts/serve-smoke.sh).
serve-smoke:
	./scripts/serve-smoke.sh

# Regenerate the committed benchmark trajectory file: runs the key hot-path
# benchmarks with -benchmem and rewrites BENCH_10.json's "current" block
# (its "baseline" block — the pre-tuner PR-9 reference — is carried over
# unchanged; older trajectories survive in BENCH_9/8/7/5/4.json). The
# year-long annual LP joins at one iteration: ~10 s per solve on the
# hyper-sparse kernels, and cmd/perf gates it against a 20 s wall-clock
# budget on the CI -check path. The bench output goes through a file, not
# a pipe, so a failing benchmark run fails the target instead of being
# masked by the parser's exit status.
perf:
	$(GO) test -bench='$(PERF_BENCHES)' -benchmem -benchtime=20x -run '^$$' . > bench.out
	$(GO) test -bench=BenchmarkAblationOfflineAnnualLP -benchmem -benchtime=1x -run '^$$' . >> bench.out
	$(GO) run ./cmd/perf -out BENCH_10.json -note "make perf" < bench.out
	@rm -f bench.out
