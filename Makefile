# Same targets CI runs (.github/workflows/ci.yml), so humans and CI
# invoke identical commands.

GO ?= go

.PHONY: build test race bench lint docs suite

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Benchmark smoke: one iteration of every benchmark, including the
# provision-family point (BenchmarkProvisionGrid).
bench:
	$(GO) test -bench=. -benchtime=1x -run '^$$' .

lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; echo "$$unformatted" >&2; exit 1; \
	fi
	$(GO) vet ./...

# Documentation surface: every godoc Example must pass (output lines are
# checked verbatim), on top of the lint gate.
docs: lint
	$(GO) test -run Example ./...

# Full one-month scenario suite (paper + extensions + provisioning) on
# all cores.
suite:
	$(GO) run ./cmd/experiments -run paper,ext,provision
