package smartdpss_test

// One benchmark per reproduced table/figure of the paper's evaluation
// (Sec. VI), plus ablation benches for the design choices called out in
// DESIGN.md. Each figure bench runs its experiment end to end on a
// shortened horizon so `go test -bench=.` regenerates every row the paper
// reports in bounded time; `cmd/experiments` prints the full-month
// versions.

import (
	"fmt"
	"io"
	"testing"

	dpss "github.com/smartdpss/smartdpss"
	"github.com/smartdpss/smartdpss/internal/experiments"
)

// benchConfig trims the horizon so the full bench suite stays fast.
func benchConfig() experiments.Config {
	return experiments.Config{Days: 7, Seed: 1, SkipOffline: true}
}

func benchTable(b *testing.B, run func(experiments.Config) (*experiments.Table, error), cfg experiments.Config) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl, err := run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := tbl.Fprint(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5Traces regenerates the Fig. 5 input traces and statistics.
func BenchmarkFig5Traces(b *testing.B) {
	benchTable(b, experiments.Fig5Traces, benchConfig())
}

// BenchmarkFig6VSweep regenerates the Fig. 6(a)(b) V sensitivity sweep.
func BenchmarkFig6VSweep(b *testing.B) {
	benchTable(b, experiments.Fig6VSweep, benchConfig())
}

// BenchmarkFig6TSweep regenerates the Fig. 6(c)(d) T sensitivity sweep.
func BenchmarkFig6TSweep(b *testing.B) {
	benchTable(b, experiments.Fig6TSweep, benchConfig())
}

// BenchmarkFig7Factors regenerates the Fig. 7 ε/markets/battery factors.
func BenchmarkFig7Factors(b *testing.B) {
	benchTable(b, experiments.Fig7Factors, benchConfig())
}

// BenchmarkFig8Penetration regenerates the Fig. 8 penetration/variation
// sweeps.
func BenchmarkFig8Penetration(b *testing.B) {
	benchTable(b, experiments.Fig8Penetration, benchConfig())
}

// BenchmarkFig9Robustness regenerates the Fig. 9 estimation-error table.
func BenchmarkFig9Robustness(b *testing.B) {
	benchTable(b, experiments.Fig9Robustness, benchConfig())
}

// BenchmarkFig10Scaling regenerates the Fig. 10 system-expansion table.
func BenchmarkFig10Scaling(b *testing.B) {
	benchTable(b, experiments.Fig10Scaling, benchConfig())
}

// BenchmarkDefaultsSimulation measures one month of SmartDPSS under the
// Sec. VI-A parameter table (the per-simulation cost all sweeps pay).
func BenchmarkDefaultsSimulation(b *testing.B) {
	traces, err := dpss.GenerateTraces(dpss.DefaultTraceConfig())
	if err != nil {
		b.Fatal(err)
	}
	opts := dpss.DefaultOptions()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dpss.Simulate(dpss.PolicySmartDPSS, opts, traces); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationP5Analytic measures the closed-form P5 solver path
// (the default). Compare with BenchmarkAblationP5LP: the merit-order
// solver should be orders of magnitude faster at identical decisions.
func BenchmarkAblationP5Analytic(b *testing.B) {
	benchP5Path(b, false)
}

// BenchmarkAblationP5LP measures the simplex-based P5 reference path.
func BenchmarkAblationP5LP(b *testing.B) {
	benchP5Path(b, true)
}

func benchP5Path(b *testing.B, useLP bool) {
	b.Helper()
	tc := dpss.DefaultTraceConfig()
	tc.Days = 7
	traces, err := dpss.GenerateTraces(tc)
	if err != nil {
		b.Fatal(err)
	}
	opts := dpss.DefaultOptions()
	opts.UseLP = useLP
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dpss.Simulate(dpss.PolicySmartDPSS, opts, traces); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationOfflineDayLP measures the paper's per-interval offline
// benchmark (31 small LPs for a week: 7).
func BenchmarkAblationOfflineDayLP(b *testing.B) {
	benchOffline(b, dpss.PolicyOfflineOptimal, false)
}

// BenchmarkAblationOfflineHorizonLP measures the single whole-horizon LP
// (the cross-interval planner the day decomposition gives up), on the
// default sparse staircase path.
func BenchmarkAblationOfflineHorizonLP(b *testing.B) {
	benchOffline(b, dpss.PolicyOfflineHorizon, false)
}

// BenchmarkAblationOfflineHorizonLPDense forces the same horizon LP onto
// the legacy dense chain formulation — the reference the sparse path's
// speedup ratio is gated against (cmd/perf asserts sparse ≤ 0.70×dense).
func BenchmarkAblationOfflineHorizonLPDense(b *testing.B) {
	benchOffline(b, dpss.PolicyOfflineHorizon, true)
}

func benchOffline(b *testing.B, pol dpss.Policy, horizonDense bool) {
	b.Helper()
	tc := dpss.DefaultTraceConfig()
	tc.Days = 3
	traces, err := dpss.GenerateTraces(tc)
	if err != nil {
		b.Fatal(err)
	}
	opts := dpss.DefaultOptions()
	opts.T = 12
	opts.HorizonLPDense = horizonDense
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dpss.Simulate(pol, opts, traces); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationOfflineAnnualLP measures the year-long (8760-slot)
// whole-horizon LP — the scale the sparse revised simplex exists for.
// A dense-tableau counterpart is deliberately absent: the chain form's
// quadratic constraint matrix does not fit in memory at this horizon.
// Skipped under -short so `make bench`'s one-iteration smoke stays fast.
func BenchmarkAblationOfflineAnnualLP(b *testing.B) {
	if testing.Short() {
		b.Skip("year-long horizon LP in -short mode")
	}
	tc := dpss.DefaultTraceConfig()
	tc.Days = 365
	traces, err := dpss.GenerateTraces(tc)
	if err != nil {
		b.Fatal(err)
	}
	opts := dpss.DefaultOptions()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dpss.Simulate(dpss.PolicyOfflineHorizon, opts, traces); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceGeneration measures the synthetic generator substrate.
func BenchmarkTraceGeneration(b *testing.B) {
	tc := dpss.DefaultTraceConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := dpss.GenerateTraces(tc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProvisionGrid regenerates the PROV-1 generator × battery
// provisioning grid — the bench-smoke point of the provision family, so
// `make bench` (and CI) exercises the on-site generation dispatch path.
func BenchmarkProvisionGrid(b *testing.B) {
	benchTable(b, experiments.ProvisionGrid, benchConfig())
}

// BenchmarkFleetDispatch measures a week of SmartDPSS dispatching a
// four-unit heterogeneous fleet under the commitment lookahead — the
// hot path the fleet tentpole added (per-unit windows, merit-order P5
// source legs, window commitment) — so `make bench` and the CI bench
// smoke watch its cost.
func BenchmarkFleetDispatch(b *testing.B) {
	tc := dpss.DefaultTraceConfig()
	tc.Days = 7
	traces, err := dpss.GenerateTraces(tc)
	if err != nil {
		b.Fatal(err)
	}
	opts := dpss.DefaultOptions()
	opts.CommitWindow = 12
	opts.Fleet = []dpss.UnitSpec{
		{CapacityMW: 0.5, MinLoadFrac: 0.3, FuelUSDPerMWh: 38, StartupUSD: 20, CO2KgPerMWh: 700},
		{CapacityMW: 0.25, MinLoadFrac: 0.2, FuelUSDPerMWh: 45, StartupUSD: 10, CO2KgPerMWh: 500},
		{CapacityMW: 0.25, MinLoadFrac: 0.2, FuelUSDPerMWh: 52, FuelQuadUSD: 4, CO2KgPerMWh: 400},
		{CapacityMW: 0.1, FuelUSDPerMWh: 60, StartupLagSlots: 1, CO2KgPerMWh: 300},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dpss.Simulate(dpss.PolicySmartDPSS, opts, traces); err != nil {
			b.Fatal(err)
		}
	}
}

// benchGeoSites builds an n-site fleet matching the geo scenario
// family's shape: site 0 at the default scope, later sites on derived
// seeds with a ±30% price spread.
func benchGeoSites(n int) []dpss.GeoSiteSpec {
	sites := make([]dpss.GeoSiteSpec, n)
	for i := range sites {
		tc := dpss.DefaultTraceConfig()
		tc.Days = 7
		opts := dpss.DefaultOptions()
		if i > 0 {
			tc.Seed += int64(i) * 7919
			frac := 1.0
			if n > 2 {
				frac = float64(i-1) / float64(n-2)
			}
			scale := 0.7 + 0.6*frac
			tc.PriceScale = scale
			if scale > 1 {
				opts.PmaxUSD *= scale
			}
		}
		sites[i] = dpss.GeoSiteSpec{
			Name:                   fmt.Sprintf("s%d", i),
			Options:                opts,
			Trace:                  tc,
			ImportPenaltyUSDPerMWh: 5,
		}
	}
	return sites
}

// BenchmarkGeoStep measures a week of the geo-distributed fleet through
// the sharded multi-site step at 1/2/4/8 sites (greedy router,
// SmartDPSS per site). The allocs/op gate in cmd/perf watches the site
// fan-out: allocations must stay proportional to site count (setup:
// traces, sessions, routing) with zero allocations per slot step, so a
// regression that allocates in the lockstep loop multiplies allocs by
// the slot count and trips the gate at every fleet size.
func BenchmarkGeoStep(b *testing.B) {
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("sites=%d", n), func(b *testing.B) {
			sites := benchGeoSites(n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := dpss.RunGeo(dpss.GeoOptions{
					Sites:  sites,
					Policy: dpss.PolicySmartDPSS,
					Router: dpss.GeoRouterGreedy,
				})
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Sites) != n {
					b.Fatalf("got %d site results, want %d", len(res.Sites), n)
				}
			}
		})
	}
}

// BenchmarkTuneEvaluate measures one objective evaluation of the
// self-tuner — the unit of work RunTune repeats for its entire budget
// (one short simulation per suite seed, blended into the mean/worst
// score). The allocs/op gate in cmd/perf watches it: a per-evaluation
// allocation regression multiplies across every evaluation of every
// tuning run. The warm-up call outside the timer fills the shared trace
// cache, so the measured loop sees the steady-state cost.
func BenchmarkTuneEvaluate(b *testing.B) {
	opts := dpss.DefaultOptions()
	obj, err := experiments.NewTuneObjective(experiments.TuneOptions{
		Policy: dpss.PolicySmartDPSS,
		Base:   opts,
		Suite:  experiments.Config{Days: 2, Seed: 1, SkipOffline: true, Seeds: 2, Parallel: 1},
		Seed:   1,
	})
	if err != nil {
		b.Fatal(err)
	}
	x := []float64{opts.V, opts.Epsilon, float64(opts.T)}
	if _, err := obj(x); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := obj(x); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSuite runs the full one-month scenario suite (paper figures plus
// extensions, provisioning and fleet) through the registry at a fixed
// pool width. The selectors are explicit so the year-long annual family
// never rides into this benchmark's workload.
func benchSuite(b *testing.B, parallel int) {
	b.Helper()
	cfg := dpss.SuiteConfig{Days: 7, Seed: 1, SkipOffline: true, Seeds: 3, Parallel: parallel}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tables, err := dpss.RunSuite(cfg, "paper", "ext", "provision", "fleet")
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 {
			b.Fatal("no tables")
		}
	}
}

// BenchmarkSuiteSequential pins the worker pool to one goroutine — the
// pre-suite sequential baseline the speedup is measured against.
func BenchmarkSuiteSequential(b *testing.B) {
	benchSuite(b, 1)
}

// BenchmarkSuiteParallel fans scenarios and sweep points across
// GOMAXPROCS; the ratio to BenchmarkSuiteSequential is the suite
// engine's speedup on this machine.
func BenchmarkSuiteParallel(b *testing.B) {
	benchSuite(b, 0)
}
