package smartdpss_test

// Cross-policy physics-invariant harness: every policy arm, on
// randomized configurations, must respect the plant's physics slot by
// slot — battery state of charge within bounds and consistent with the
// executed charge/discharge flows, the slot energy balance closed,
// costs non-negative, the backlog recurrence exact, and the final
// Report totals equal to the sum of the committed slot outcomes. The
// property loop (TestPolicyInvariants) is -short friendly; the fuzz
// target (FuzzPolicyInvariants) lets the fuzzer mutate the scenario
// seed and option knobs beyond the seeded corpus.

import (
	"math"
	"math/rand"
	"testing"

	dpss "github.com/smartdpss/smartdpss"
)

// invariantPolicies is every policy arm the engine can instantiate.
var invariantPolicies = []dpss.Policy{
	dpss.PolicySmartDPSS,
	dpss.PolicyImpatient,
	dpss.PolicyOfflineOptimal,
	dpss.PolicyOfflineHorizon,
	dpss.PolicyLookahead,
	dpss.PolicyLyapunov,
}

// invariantScenario derives a randomized-but-valid configuration from a
// seed: the same seed always builds the same scenario, so fuzz crashes
// reproduce.
func invariantScenario(seed int64) (dpss.Options, dpss.TraceConfig) {
	r := rand.New(rand.NewSource(seed))
	opts := dpss.DefaultOptions()
	opts.V = 0.1 + 4*r.Float64()
	opts.Epsilon = 0.1 + r.Float64()
	opts.T = []int{6, 12, 24}[r.Intn(3)]
	opts.PeakMW = 1 + 2*r.Float64()
	opts.BatteryMinutes = []float64{0, 15, 30}[r.Intn(3)]
	opts.LyapunovV = 0 // scale-aware default
	opts.LyapunovTheta = 0.1 + 0.8*r.Float64()
	if r.Intn(3) == 0 {
		opts.BatteryMaxOps = 10 + r.Intn(60)
	}
	if r.Intn(3) == 0 {
		opts.GeneratorMW = 0.5 + r.Float64()
		opts.GeneratorMinLoadFrac = 0.3
		opts.GeneratorStartupUSD = 20
	}
	if r.Intn(4) == 0 {
		opts.DisableLongTerm = true
	}
	if r.Intn(4) == 0 {
		opts.ObservationNoise = 0.2 * r.Float64()
		opts.NoiseSeed = seed
	}
	tc := dpss.DefaultTraceConfig()
	tc.Days = 2
	tc.Seed = seed
	return opts, tc
}

// checkPolicyInvariants replays the policy slot by slot and asserts the
// physics invariants on every committed outcome, then reconciles the
// final report against the accumulated slot stream.
func checkPolicyInvariants(t *testing.T, policy dpss.Policy, opts dpss.Options, traces *dpss.Traces) {
	t.Helper()
	sess, err := dpss.NewReplaySession(policy, opts, traces)
	if err != nil {
		t.Fatalf("%s: session: %v", policy, err)
	}
	bp := opts.BaselineConfig().Battery
	const tol = 1e-6
	level := bp.InitialMWh
	var cost, grid, gen, waste, unserved, served, charged, discharged float64
	for !sess.Done() {
		slot := sess.Slot()
		in := traces.InputAt(slot)
		out, err := sess.StepReplay()
		if err != nil {
			t.Fatalf("%s slot %d: %v", policy, slot, err)
		}

		if math.IsNaN(out.CostUSD) || out.CostUSD < -tol {
			t.Fatalf("%s slot %d: cost %g", policy, slot, out.CostUSD)
		}
		ex := out.Executed
		if ex.Charge > tol && ex.Discharge > tol {
			t.Fatalf("%s slot %d: charge %g and discharge %g together", policy, slot, ex.Charge, ex.Discharge)
		}

		// Slot energy balance: grid + renewable + generation + discharge
		// = served demand + deferrable service + charge + waste.
		lhs := out.GridMWh + in.Renewable + out.GenMWh + ex.Discharge
		rhs := (in.DemandDS - out.Unserved) + out.ServedDT + ex.Charge + out.Waste
		if math.Abs(lhs-rhs) > tol {
			t.Fatalf("%s slot %d: energy balance %g != %g (diff %g)", policy, slot, lhs, rhs, lhs-rhs)
		}

		// Backlog recurrence: after = before − served + arrivals.
		if want := out.BacklogBefore - out.ServedDT + in.DemandDT; math.Abs(out.BacklogAfter-want) > tol {
			t.Fatalf("%s slot %d: backlog %g, want %g", policy, slot, out.BacklogAfter, want)
		}

		// Battery flow and state-of-charge bounds: the efficiency-scaled
		// terminal flows must reproduce the level the plant reports.
		next := level + bp.ChargeEff*ex.Charge - bp.DischargeEff*ex.Discharge
		next = math.Min(bp.CapacityMWh, math.Max(bp.MinLevelMWh, next))
		if math.Abs(out.Battery-next) > tol {
			t.Fatalf("%s slot %d: battery level %g, flows predict %g", policy, slot, out.Battery, next)
		}
		if out.Battery < bp.MinLevelMWh-tol || out.Battery > bp.CapacityMWh+tol {
			t.Fatalf("%s slot %d: battery %g outside [%g, %g]",
				policy, slot, out.Battery, bp.MinLevelMWh, bp.CapacityMWh)
		}
		level = out.Battery

		cost += out.CostUSD
		grid += out.GridMWh
		gen += out.GenMWh
		waste += out.Waste
		unserved += out.Unserved
		served += out.ServedDT
		charged += ex.Charge
		discharged += ex.Discharge
	}

	rep, err := sess.Finish()
	if err != nil {
		t.Fatalf("%s: finish: %v", policy, err)
	}
	reconcile := func(name string, sum, total float64) {
		t.Helper()
		if math.Abs(sum-total) > tol*(1+math.Abs(total)) {
			t.Errorf("%s: Σslot %s = %g, report says %g", policy, name, sum, total)
		}
	}
	reconcile("cost", cost, rep.TotalCostUSD)
	reconcile("grid energy", grid, rep.LTEnergyMWh+rep.RTEnergyMWh)
	reconcile("generation", gen, rep.GenEnergyMWh)
	reconcile("waste", waste, rep.WasteMWh)
	reconcile("unserved", unserved, rep.UnservedMWh)
	reconcile("served DT", served, rep.ServedDTMWh)
	reconcile("battery in", charged, rep.BatteryInMWh)
	reconcile("battery out", discharged, rep.BatteryOutMWh)
	if opts.BatteryMaxOps > 0 && rep.BatteryOps > opts.BatteryMaxOps {
		t.Errorf("%s: battery ops %d exceed budget %d", policy, rep.BatteryOps, opts.BatteryMaxOps)
	}
	if rep.BatteryMinMWh < bp.MinLevelMWh-tol || rep.BatteryMaxMWh > bp.CapacityMWh+tol {
		t.Errorf("%s: battery excursion [%g, %g] outside [%g, %g]",
			policy, rep.BatteryMinMWh, rep.BatteryMaxMWh, bp.MinLevelMWh, bp.CapacityMWh)
	}
}

// runInvariantScenario runs every policy arm over one derived scenario.
func runInvariantScenario(t *testing.T, seed int64) {
	t.Helper()
	opts, tc := invariantScenario(seed)
	traces, err := dpss.GenerateTraces(tc)
	if err != nil {
		t.Fatal(err)
	}
	for _, policy := range invariantPolicies {
		checkPolicyInvariants(t, policy, opts, traces)
	}
}

// TestPolicyInvariants is the -short-friendly property loop: a handful
// of randomized configurations, all policy arms each.
func TestPolicyInvariants(t *testing.T) {
	seeds := []int64{1, 2, 3, 7, 42, 1103, 3099, 9001}
	if testing.Short() {
		seeds = seeds[:3]
	}
	for _, seed := range seeds {
		runInvariantScenario(t, seed)
	}
}

// FuzzPolicyInvariants lets the fuzzer wander the scenario space; the
// corpus seeds mirror the property loop so plain `go test` replays
// them.
func FuzzPolicyInvariants(f *testing.F) {
	for _, seed := range []int64{1, 2, 42, 1103} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		runInvariantScenario(t, seed)
	})
}
