// Robustness: operating on bad forecasts. SmartDPSS makes every decision
// from current observations only, so this example injects uniform ±50%
// errors into what the controller sees (demand, solar, prices — the
// Sec. VI-C experiment) and measures how much of the cost advantage over
// Impatient survives, and whether availability is ever at risk.
package main

import (
	"fmt"
	"log"

	dpss "github.com/smartdpss/smartdpss"
)

func main() {
	traces, err := dpss.GenerateTraces(dpss.DefaultTraceConfig())
	if err != nil {
		log.Fatal(err)
	}
	opts := dpss.DefaultOptions()

	impatient, err := dpss.Simulate(dpss.PolicyImpatient, opts, traces)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-18s  %-12s  %-14s  %-12s  %s\n",
		"observation error", "cost $/slot", "vs Impatient", "mean delay", "availability")
	for _, noise := range []float64{0, 0.1, 0.25, 0.5} {
		o := opts
		o.ObservationNoise = noise
		o.NoiseSeed = 7
		rep, err := dpss.Simulate(dpss.PolicySmartDPSS, o, traces)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("±%-17.0f%% %-12.2f  %-+13.1f%%  %-12.2f  %.6f\n",
			100*noise, rep.TimeAvgCostUSD,
			100*(rep.TotalCostUSD/impatient.TotalCostUSD-1),
			rep.MeanDelaySlots, rep.Availability)
	}

	fmt.Println("\nReading: even with ±50% errors on every input the controller keeps a")
	fmt.Println("cost advantage and full availability — the passive UPS covers mis-sized")
	fmt.Println("slots and the queue state (which the DPSS always knows exactly) keeps")
	fmt.Println("the service guarantees intact. This is the paper's Fig. 9 finding.")
}
