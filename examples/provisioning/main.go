// Provisioning: should a datacenter buy an on-site generator, and how
// big? The example equips the one-month scenario with a dispatchable
// unit (capacity, 20% minimum stable load, startup cost and fuel curve —
// the on-site production model of arXiv:1303.6775) and walks the
// capacity axis at two fuel prices: one below the long-term grid price
// (baseload-cheap) and one between the long-term level and the
// real-time mean (a substitute for real-time purchases and peaks). The
// monthly operating saving per capacity step is the number an operator
// sets against the generator's amortized capital cost.
//
// The full two-dimensional grid (capacity × battery size), the fuel
// break-even sweep and the V×T cross sweep run as the "provision"
// scenario family of the suite CLI:
//
//	go run ./cmd/experiments -run provision
package main

import (
	"fmt"
	"log"

	dpss "github.com/smartdpss/smartdpss"
)

func main() {
	traces, err := dpss.GenerateTraces(dpss.DefaultTraceConfig())
	if err != nil {
		log.Fatal(err)
	}

	for _, fuel := range []float64{30, 45} {
		fmt.Printf("fuel %g $/MWh:\n", fuel)
		fmt.Printf("  %-8s  %-12s  %-16s  %-10s  %-8s  %s\n",
			"gen MW", "cost $/slot", "monthly saving $", "gen MWh", "starts", "gen slots")

		var base float64
		for _, capacity := range []float64{0, 0.25, 0.5, 1.0} {
			opts := dpss.DefaultOptions()
			opts.GeneratorMW = capacity
			opts.GeneratorMinLoadFrac = 0.2
			opts.GeneratorStartupUSD = 10
			opts.FuelUSDPerMWh = fuel
			rep, err := dpss.Simulate(dpss.PolicySmartDPSS, opts, traces)
			if err != nil {
				log.Fatal(err)
			}
			if capacity == 0 {
				base = rep.TotalCostUSD
			}
			fmt.Printf("  %-8g  %-12.2f  %-16.2f  %-10.1f  %-8d  %d\n",
				capacity, rep.TimeAvgCostUSD, base-rep.TotalCostUSD,
				rep.GenEnergyMWh, rep.GenStarts, rep.GenSlots)
		}
		fmt.Println()
	}

	fmt.Println("Reading: below the long-term grid price the unit runs as baseload and")
	fmt.Println("every MW pays; between the long-term level and the real-time spikes it")
	fmt.Println("only shaves peaks, savings are thin, and capacity beyond the spiky")
	fmt.Println("share of demand is idle capital — the provisioning knee of 1303.6775.")
}
