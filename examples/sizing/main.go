// Sizing: how big a UPS is worth buying? The example sweeps the battery
// size (minutes of peak demand, the paper's Fig. 7 axis extended) and
// computes each increment's monthly operating saving under SmartDPSS,
// which an operator can set against the capital cost of the additional
// capacity. The paper's Sec. VI-B.3 observation — "the optimal cost is
// mainly limited by the battery capacity" — is precisely this curve.
package main

import (
	"fmt"
	"log"

	dpss "github.com/smartdpss/smartdpss"
)

func main() {
	traces, err := dpss.GenerateTraces(dpss.DefaultTraceConfig())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-10s  %-12s  %-16s  %-12s  %s\n",
		"Bmax (min)", "cost $/slot", "monthly saving $", "battery ops", "throughput MWh")

	var base float64
	for _, minutes := range []float64{0, 5, 15, 30, 60, 120} {
		opts := dpss.DefaultOptions()
		opts.BatteryMinutes = minutes
		rep, err := dpss.Simulate(dpss.PolicySmartDPSS, opts, traces)
		if err != nil {
			log.Fatal(err)
		}
		if minutes == 0 {
			base = rep.TotalCostUSD
		}
		fmt.Printf("%-10g  %-12.2f  %-16.2f  %-12d  %.2f\n",
			minutes, rep.TimeAvgCostUSD, base-rep.TotalCostUSD,
			rep.BatteryOps, rep.BatteryOutMWh)
	}

	fmt.Println("\nReading: each doubling of the UPS buys a shrinking monthly saving —")
	fmt.Println("the knee of this curve against the battery's amortized capital cost")
	fmt.Println("is the economic size. The paper's 15-minute default sits below the")
	fmt.Println("knee; storage value at these price spreads grows slowly with size.")
}
