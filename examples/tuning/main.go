// Tuning: an operator walks the [O(1/V), O(V)] cost–delay frontier of
// Theorem 2 to pick the largest V whose mean service delay still meets a
// service-level objective, then reports the cost saved relative to V
// chosen conservatively.
//
// This is the workflow the paper motivates in Sec. IV-B: "SmartDPSS
// enables CSPs to have a tunable system with the flexibility to make
// tradeoff between DPSS operation cost and demand service delay".
package main

import (
	"fmt"
	"log"

	dpss "github.com/smartdpss/smartdpss"
)

// delaySLO is the acceptable mean delay for the delay-tolerant class, in
// hours (slots).
const delaySLO = 8.0

func main() {
	traces, err := dpss.GenerateTraces(dpss.DefaultTraceConfig())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-6s  %-12s  %-12s  %-10s  %s\n", "V", "cost $/slot", "mean delay", "max delay", "λmax bound")
	var (
		bestV    float64
		bestCost = -1.0
		baseCost float64
	)
	for _, v := range []float64{0.05, 0.1, 0.25, 0.5, 1, 2, 3, 5} {
		opts := dpss.DefaultOptions()
		opts.V = v
		rep, err := dpss.Simulate(dpss.PolicySmartDPSS, opts, traces)
		if err != nil {
			log.Fatal(err)
		}
		bounds := dpss.Bounds(opts)
		fmt.Printf("%-6.2f  %-12.2f  %-12.2f  %-10d  %d\n",
			v, rep.TimeAvgCostUSD, rep.MeanDelaySlots, rep.MaxDelaySlots, bounds.LambdaMax)
		if v == 0.05 {
			baseCost = rep.TotalCostUSD
		}
		if rep.MeanDelaySlots <= delaySLO && (bestCost < 0 || rep.TotalCostUSD < bestCost) {
			bestV, bestCost = v, rep.TotalCostUSD
		}
	}

	if bestCost < 0 {
		fmt.Printf("\nno V meets the %.0f-hour mean-delay SLO\n", delaySLO)
		return
	}
	fmt.Printf("\npick V = %.2f: meets the %.0f h SLO and saves %.1f%% versus the most conservative setting\n",
		bestV, delaySLO, 100*(1-bestCost/baseCost))
}
