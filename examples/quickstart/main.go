// Quickstart: simulate one month of SmartDPSS with the paper's default
// parameters and compare it against the Impatient baseline.
//
// For the full reproduction of the paper's figures (and the extension
// and provisioning studies) use the scenario-suite CLI instead:
//
//	go run ./cmd/experiments -list
package main

import (
	"fmt"
	"log"

	dpss "github.com/smartdpss/smartdpss"
)

func main() {
	// 1. Generate the synthetic one-month scenario: interactive + batch
	// datacenter demand, January solar production, and two-timescale
	// electricity prices.
	traces, err := dpss.GenerateTraces(dpss.DefaultTraceConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scenario: %d hourly slots, %.1f%% renewable penetration\n\n",
		traces.Horizon(), 100*traces.RenewablePenetration())

	// 2. Run the online SmartDPSS controller (V = 1, ε = 0.5, T = 24,
	// 15-minute UPS — the paper's Sec. VI-A defaults).
	opts := dpss.DefaultOptions()
	smart, err := dpss.Simulate(dpss.PolicySmartDPSS, opts, traces)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("SmartDPSS:")
	fmt.Print(smart)

	// 3. Compare against the serve-immediately strawman.
	impatient, err := dpss.Simulate(dpss.PolicyImpatient, opts, traces)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nImpatient:")
	fmt.Print(impatient)

	saving := 1 - smart.TotalCostUSD/impatient.TotalCostUSD
	fmt.Printf("\nSmartDPSS saves %.1f%% at a mean delay of %.1f hours (Impatient: %.1f).\n",
		100*saving, smart.MeanDelaySlots, impatient.MeanDelaySlots)

	// 4. The worst-case guarantees behind that delay (Theorem 2).
	b := dpss.Bounds(opts)
	fmt.Printf("Theorem 2: backlog ≤ %.2f MWh, worst-case delay ≤ %d slots.\n",
		b.QMax, b.LambdaMax)
}
