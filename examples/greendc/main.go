// Greendc: greening a datacenter with on-site solar. The example sweeps
// the renewable penetration of the same one-month scenario (the Fig. 8
// axis) and shows how SmartDPSS converts intermittent solar into cost
// reduction, how much of it must be wasted once storage saturates, and
// what the small UPS contributes at each level.
package main

import (
	"fmt"
	"log"

	dpss "github.com/smartdpss/smartdpss"
)

func main() {
	fmt.Printf("%-12s  %-12s  %-12s  %-12s  %s\n",
		"penetration", "cost $/slot", "vs no solar", "waste MWh", "battery ops")

	var baseline float64
	for _, pen := range []float64{0, 0.15, 0.3, 0.5, 0.75, 1.0} {
		traces, err := dpss.GenerateTraces(dpss.DefaultTraceConfig())
		if err != nil {
			log.Fatal(err)
		}
		if err := traces.SetPenetration(pen); err != nil {
			log.Fatal(err)
		}
		opts := dpss.DefaultOptions()
		opts.BatteryMinutes = 30 // a greener site invests in storage
		rep, err := dpss.Simulate(dpss.PolicySmartDPSS, opts, traces)
		if err != nil {
			log.Fatal(err)
		}
		if pen == 0 {
			baseline = rep.TimeAvgCostUSD
		}
		fmt.Printf("%-12s  %-12.2f  %-+11.1f%%  %-12.1f  %d\n",
			fmt.Sprintf("%.0f%%", 100*pen), rep.TimeAvgCostUSD,
			100*(rep.TimeAvgCostUSD/baseline-1), rep.WasteMWh, rep.BatteryOps)
	}

	fmt.Println("\nReading: free solar displaces grid purchases almost one-for-one at low")
	fmt.Println("penetration; beyond the midday demand the battery absorbs some surplus")
	fmt.Println("and the remainder is curtailed (waste), flattening the curve — the")
	fmt.Println("diminishing-returns shape of the paper's Fig. 8.")
}
