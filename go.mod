module github.com/smartdpss/smartdpss

go 1.24
