package smartdpss_test

// Tests for the library extensions beyond the paper's evaluation: 15-minute
// fine slots (Sec. II names both 15 and 60 minutes), wind generation
// (Sec. I names "solar and wind energies"), the UPS cycle budget Nmax
// (Eq. 9), and peak-draw accounting (the paper's declared future work).

import (
	"math"
	"testing"

	dpss "github.com/smartdpss/smartdpss"
)

func TestFifteenMinuteSlots(t *testing.T) {
	tc := dpss.DefaultTraceConfig()
	tc.Days = 3
	tc.SlotMinutes = 15
	traces, err := dpss.GenerateTraces(tc)
	if err != nil {
		t.Fatal(err)
	}
	if traces.Horizon() != 3*24*4 {
		t.Fatalf("horizon = %d, want %d", traces.Horizon(), 3*24*4)
	}

	opts := dpss.DefaultOptions()
	opts.SlotMinutes = 15
	opts.T = 96 // one day-ahead market period = 96 quarter-hour slots
	rep, err := dpss.Simulate(dpss.PolicySmartDPSS, opts, traces)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Slots != 3*24*4 {
		t.Fatalf("slots = %d", rep.Slots)
	}
	if rep.UnservedMWh > 1e-6 {
		t.Errorf("unserved = %g at 15-minute resolution", rep.UnservedMWh)
	}
	if rep.Availability < 1-1e-9 {
		t.Errorf("availability = %g", rep.Availability)
	}
}

func TestFifteenMinuteCostMatchesHourlyScale(t *testing.T) {
	// The same physical scenario at 15-minute and 60-minute resolution
	// must produce total costs of the same magnitude (they are different
	// stochastic draws, so compare loosely).
	hourly := dpss.DefaultTraceConfig()
	hourly.Days = 7
	hTraces, err := dpss.GenerateTraces(hourly)
	if err != nil {
		t.Fatal(err)
	}
	hRep, err := dpss.Simulate(dpss.PolicySmartDPSS, dpss.DefaultOptions(), hTraces)
	if err != nil {
		t.Fatal(err)
	}

	quarter := hourly
	quarter.SlotMinutes = 15
	qTraces, err := dpss.GenerateTraces(quarter)
	if err != nil {
		t.Fatal(err)
	}
	qOpts := dpss.DefaultOptions()
	qOpts.SlotMinutes = 15
	qOpts.T = 96
	qRep, err := dpss.Simulate(dpss.PolicySmartDPSS, qOpts, qTraces)
	if err != nil {
		t.Fatal(err)
	}

	ratio := qRep.TotalCostUSD / hRep.TotalCostUSD
	if ratio < 0.6 || ratio > 1.6 {
		t.Errorf("15-min total $%.2f vs hourly $%.2f (ratio %.2f): scale broken",
			qRep.TotalCostUSD, hRep.TotalCostUSD, ratio)
	}
}

func TestWindMixing(t *testing.T) {
	solarOnly := dpss.DefaultTraceConfig()
	solarOnly.Days = 7
	sTraces, err := dpss.GenerateTraces(solarOnly)
	if err != nil {
		t.Fatal(err)
	}

	mixed := solarOnly
	mixed.WindCapacityMW = 1.0
	mTraces, err := dpss.GenerateTraces(mixed)
	if err != nil {
		t.Fatal(err)
	}
	if mTraces.RenewablePenetration() <= sTraces.RenewablePenetration() {
		t.Error("adding wind must raise penetration")
	}
	sNight, _ := sTraces.RenewableNightSplit()
	mNight, _ := mTraces.RenewableNightSplit()
	if sNight != 0 {
		t.Errorf("solar-only night production = %g, want 0", sNight)
	}
	if mNight <= 0 {
		t.Error("mixed portfolio must produce at night")
	}
}

func TestBatteryMaxOpsOption(t *testing.T) {
	traces := testTraces(t, 7)
	unlimited := dpss.DefaultOptions()
	limited := unlimited
	limited.BatteryMaxOps = 10

	uRep, err := dpss.Simulate(dpss.PolicySmartDPSS, unlimited, traces)
	if err != nil {
		t.Fatal(err)
	}
	lRep, err := dpss.Simulate(dpss.PolicySmartDPSS, limited, traces)
	if err != nil {
		t.Fatal(err)
	}
	if lRep.BatteryOps > 10 {
		t.Errorf("battery ops = %d under Nmax=10", lRep.BatteryOps)
	}
	if uRep.BatteryOps <= 10 {
		t.Skip("unlimited run used too few ops to compare")
	}
	if lRep.UnservedMWh > 1e-6 {
		t.Errorf("unserved = %g with a frozen battery", lRep.UnservedMWh)
	}
}

func TestPeakChargeOption(t *testing.T) {
	traces := testTraces(t, 7)
	opts := dpss.DefaultOptions()
	opts.PeakChargeUSDPerMW = 8000
	rep, err := dpss.Simulate(dpss.PolicySmartDPSS, opts, traces)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PeakGridMW <= 0 || rep.PeakGridMW > opts.PeakMW+1e-9 {
		t.Errorf("peak draw = %g MW outside (0, Pgrid]", rep.PeakGridMW)
	}
	want := rep.PeakGridMW * 8000
	if math.Abs(rep.PeakChargeUSD-want) > 1e-6 {
		t.Errorf("peak charge = %g, want %g", rep.PeakChargeUSD, want)
	}
	// The demand charge is reported separately from Cost(τ).
	noCharge := dpss.DefaultOptions()
	base, err := dpss.Simulate(dpss.PolicySmartDPSS, noCharge, traces)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(base.TotalCostUSD-rep.TotalCostUSD) > 1e-6 {
		t.Errorf("demand charge leaked into Cost(τ): %g vs %g",
			rep.TotalCostUSD, base.TotalCostUSD)
	}
}

func TestApplyCooling(t *testing.T) {
	traces := testTraces(t, 7)
	before, err := dpss.TraceStatistics(traces)
	if err != nil {
		t.Fatal(err)
	}
	avgPUE, err := traces.ApplyCooling(dpss.CoolingConfig{MeanTempC: 26, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if avgPUE <= 1.12 {
		t.Errorf("summer avg PUE = %g, want above the free-cooling base", avgPUE)
	}
	after, err := dpss.TraceStatistics(traces)
	if err != nil {
		t.Fatal(err)
	}
	if after[0].Sum <= before[0].Sum {
		t.Error("cooling coupling did not raise delay-sensitive demand")
	}
	// Coupled traces still simulate cleanly.
	rep, err := dpss.Simulate(dpss.PolicySmartDPSS, dpss.DefaultOptions(), traces)
	if err != nil {
		t.Fatal(err)
	}
	if rep.UnservedMWh > 1e-6 {
		t.Errorf("unserved = %g after cooling coupling", rep.UnservedMWh)
	}
}

func TestLookaheadPolicyDefaults(t *testing.T) {
	traces := testTraces(t, 2)
	opts := dpss.DefaultOptions()
	opts.T = 6 // default window = T
	rep, err := dpss.Simulate(dpss.PolicyLookahead, opts, traces)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Controller != "Lookahead(6)" {
		t.Errorf("controller = %q, want Lookahead(6)", rep.Controller)
	}
}
