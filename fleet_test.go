package smartdpss_test

// Acceptance coverage for the multi-unit generator fleet: the one-unit
// fleet must be indistinguishable from the legacy single-generator
// options, the commitment lookahead must strictly beat the myopic W=1
// arm at a near-break-even fuel point (the ROADMAP's "underuses small
// units" note), emissions accounting must add up, and heterogeneous
// fleets must dispatch in merit order.

import (
	"math"
	"reflect"
	"testing"

	dpss "github.com/smartdpss/smartdpss"
)

// TestFleetOneUnitMatchesLegacy: Options.Fleet with a single unit must
// produce a report deeply equal to the legacy GeneratorMW options — the
// one-unit fleet shim is exact, not approximate.
func TestFleetOneUnitMatchesLegacy(t *testing.T) {
	traces := genTraces(t)
	for _, policy := range []dpss.Policy{
		dpss.PolicySmartDPSS, dpss.PolicyImpatient,
		dpss.PolicyOfflineOptimal, dpss.PolicyLookahead,
	} {
		legacy := dpss.DefaultOptions()
		legacy.GeneratorMW = 0.5
		legacy.GeneratorMinLoadFrac = 0.2
		legacy.GeneratorRampMW = 1.0
		legacy.FuelUSDPerMWh = 45
		legacy.GeneratorStartupUSD = 10
		legacy.GeneratorStartupLagSlots = 1
		want, err := dpss.Simulate(policy, legacy, traces)
		if err != nil {
			t.Fatalf("%s legacy: %v", policy, err)
		}

		fleet := dpss.DefaultOptions()
		fleet.Fleet = []dpss.UnitSpec{{
			CapacityMW:      0.5,
			MinLoadFrac:     0.2,
			RampMWPerHour:   1.0,
			FuelUSDPerMWh:   45,
			StartupUSD:      10,
			StartupLagSlots: 1,
		}}
		got, err := dpss.Simulate(policy, fleet, traces)
		if err != nil {
			t.Fatalf("%s fleet: %v", policy, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%s: one-unit fleet differs from legacy GeneratorMW:\n%v\nvs\n%v", policy, want, got)
		}
	}
}

// TestFleetCommitmentLookaheadBeatsMyopic is the acceptance assertion:
// at a near-break-even fuel price (45 $/MWh, between the long-term
// level ~38 and the real-time mean ~47) the W>1 commitment lookahead
// must strictly beat the myopic W=1 arm, recovering the savings the
// flapping starts leave on the table.
func TestFleetCommitmentLookaheadBeatsMyopic(t *testing.T) {
	traces := genTraces(t)
	unit := []dpss.UnitSpec{{CapacityMW: 0.25, MinLoadFrac: 0.2, FuelUSDPerMWh: 45, StartupUSD: 15}}

	run := func(w int) *dpss.Report {
		t.Helper()
		o := dpss.DefaultOptions()
		o.Fleet = unit
		o.CommitWindow = w
		rep, err := dpss.Simulate(dpss.PolicySmartDPSS, o, traces)
		if err != nil {
			t.Fatalf("W=%d: %v", w, err)
		}
		return rep
	}
	myopic := run(1)
	lookahead := run(12)

	if lookahead.TotalCostUSD >= myopic.TotalCostUSD {
		t.Errorf("W=12 cost $%.2f does not beat myopic W=1 $%.2f",
			lookahead.TotalCostUSD, myopic.TotalCostUSD)
	}
	if lookahead.GenStarts >= myopic.GenStarts {
		t.Errorf("W=12 starts %d not below myopic %d (the whole point of committing)",
			lookahead.GenStarts, myopic.GenStarts)
	}
}

// TestFleetCommitWindowOneIsMyopic: W=1 (and W=0) must reproduce the
// myopic arm exactly — the degenerate case of the lookahead.
func TestFleetCommitWindowOneIsMyopic(t *testing.T) {
	traces := genTraces(t)
	var reports []*dpss.Report
	for _, w := range []int{0, 1} {
		o := dpss.DefaultOptions()
		o.Fleet = []dpss.UnitSpec{{CapacityMW: 0.5, MinLoadFrac: 0.2, FuelUSDPerMWh: 45, StartupUSD: 10}}
		o.CommitWindow = w
		rep, err := dpss.Simulate(dpss.PolicySmartDPSS, o, traces)
		if err != nil {
			t.Fatalf("W=%d: %v", w, err)
		}
		reports = append(reports, rep)
	}
	if !reflect.DeepEqual(reports[0], reports[1]) {
		t.Error("W=0 and W=1 disagree; both must be the myopic arm")
	}
}

// TestFleetCO2Accounting: emissions must equal energy × intensity per
// unit, sum across the fleet, and never enter the cost decomposition
// without a carbon price.
func TestFleetCO2Accounting(t *testing.T) {
	traces := genTraces(t)
	o := dpss.DefaultOptions()
	o.Fleet = []dpss.UnitSpec{
		{CapacityMW: 0.5, MinLoadFrac: 0.2, FuelUSDPerMWh: 30, CO2KgPerMWh: 800},
		{CapacityMW: 0.25, FuelUSDPerMWh: 35, CO2KgPerMWh: 400},
	}
	rep, err := dpss.Simulate(dpss.PolicySmartDPSS, o, traces)
	if err != nil {
		t.Fatal(err)
	}
	if rep.GenEnergyMWh <= 0 {
		t.Fatal("cheap fleet never dispatched")
	}
	if len(rep.GenUnits) != 2 {
		t.Fatalf("per-unit breakdown has %d entries, want 2", len(rep.GenUnits))
	}
	sum := 0.0
	for i, u := range rep.GenUnits {
		intensity := o.Fleet[i].CO2KgPerMWh
		if want := u.EnergyMWh * intensity; math.Abs(u.CO2Kg-want) > 1e-6 {
			t.Errorf("unit %d CO2 %.3f kg != %.3f MWh × %g kg/MWh", i, u.CO2Kg, u.EnergyMWh, intensity)
		}
		sum += u.CO2Kg
	}
	if math.Abs(sum-rep.GenCO2Kg) > 1e-6 {
		t.Errorf("fleet CO2 %.3f != per-unit sum %.3f", rep.GenCO2Kg, sum)
	}
	// The cost decomposition must balance with fuel and startup only —
	// emissions are an account, not a charge, until a carbon price maps
	// them into the fuel curve.
	parts := rep.LTCostUSD + rep.RTCostUSD + rep.BatteryOpUSD + rep.WasteCostUSD +
		rep.GenFuelUSD + rep.GenStartupUSD
	if math.Abs(parts-rep.TotalCostUSD) > 1e-6 {
		t.Errorf("cost decomposition %.6f != total %.6f", parts, rep.TotalCostUSD)
	}
}

// TestFleetCarbonPriceShiftsDispatch: a carbon price must shift
// dispatch from the dirty unit toward the clean one and cut fleet
// emissions.
func TestFleetCarbonPriceShiftsDispatch(t *testing.T) {
	traces := genTraces(t)
	units := []dpss.UnitSpec{
		{CapacityMW: 0.5, MinLoadFrac: 0.2, FuelUSDPerMWh: 39, StartupUSD: 10, CO2KgPerMWh: 850},
		{CapacityMW: 0.5, MinLoadFrac: 0.2, FuelUSDPerMWh: 43, StartupUSD: 10, CO2KgPerMWh: 250},
	}
	run := func(carbon float64) *dpss.Report {
		t.Helper()
		o := dpss.DefaultOptions()
		o.Fleet = units
		o.CommitWindow = 12
		o.CarbonUSDPerTon = carbon
		rep, err := dpss.Simulate(dpss.PolicySmartDPSS, o, traces)
		if err != nil {
			t.Fatalf("carbon %g: %v", carbon, err)
		}
		return rep
	}
	free := run(0)
	priced := run(20)
	if free.GenUnits[0].EnergyMWh <= free.GenUnits[1].EnergyMWh {
		t.Errorf("without a carbon price the cheaper dirty unit should lead: %.2f vs %.2f",
			free.GenUnits[0].EnergyMWh, free.GenUnits[1].EnergyMWh)
	}
	if priced.GenCO2Kg >= free.GenCO2Kg {
		t.Errorf("carbon price did not cut emissions: %.1f -> %.1f kg", free.GenCO2Kg, priced.GenCO2Kg)
	}
	dirtyShareFree := free.GenUnits[0].EnergyMWh / math.Max(1e-9, free.GenEnergyMWh)
	dirtySharePriced := priced.GenUnits[0].EnergyMWh / math.Max(1e-9, priced.GenEnergyMWh)
	if priced.GenEnergyMWh > 0 && dirtySharePriced >= dirtyShareFree {
		t.Errorf("carbon price did not shift dispatch off the dirty unit: share %.2f -> %.2f",
			dirtyShareFree, dirtySharePriced)
	}
}

// TestFleetMeritOrderDispatch: with two always-profitable units, the
// cheaper one must carry more energy.
func TestFleetMeritOrderDispatch(t *testing.T) {
	traces := genTraces(t)
	o := dpss.DefaultOptions()
	o.Fleet = []dpss.UnitSpec{
		{CapacityMW: 0.3, FuelUSDPerMWh: 34}, // listed expensive-first on purpose:
		{CapacityMW: 0.3, FuelUSDPerMWh: 25}, // merit order must ignore fleet order
	}
	rep, err := dpss.Simulate(dpss.PolicySmartDPSS, o, traces)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.GenUnits) != 2 {
		t.Fatalf("per-unit breakdown has %d entries", len(rep.GenUnits))
	}
	if rep.GenUnits[1].EnergyMWh <= rep.GenUnits[0].EnergyMWh {
		t.Errorf("cheap unit produced %.2f MWh <= expensive unit's %.2f",
			rep.GenUnits[1].EnergyMWh, rep.GenUnits[0].EnergyMWh)
	}
}

// TestFleetWithFuelPriceTrace: a fuel-price series must move the fuel
// bill with it — the scaled marginal is what dispatch decisions and
// billing both see.
func TestFleetWithFuelPriceTrace(t *testing.T) {
	tc := dpss.DefaultTraceConfig()
	tc.Days = 7
	tc.FuelPriceScale = 1.5
	traces, err := dpss.GenerateTraces(tc)
	if err != nil {
		t.Fatal(err)
	}
	o := dpss.DefaultOptions()
	o.Fleet = []dpss.UnitSpec{{CapacityMW: 0.5, FuelUSDPerMWh: 20}}
	rep, err := dpss.Simulate(dpss.PolicySmartDPSS, o, traces)
	if err != nil {
		t.Fatal(err)
	}
	if rep.GenEnergyMWh <= 0 {
		t.Fatal("cheap unit never ran")
	}
	// Flat 1.5 multiplier on a linear 20 $/MWh curve: exactly 30 $/MWh.
	if got := rep.GenFuelUSD / rep.GenEnergyMWh; math.Abs(got-30) > 1e-9 {
		t.Fatalf("fuel bill %g USD/MWh, want 30 under the 1.5x fuel trace", got)
	}
}
