package smartdpss

import (
	"github.com/smartdpss/smartdpss/internal/engine"
	"github.com/smartdpss/smartdpss/internal/experiments" // also registers suite scenarios
	"github.com/smartdpss/smartdpss/internal/geo"
	"github.com/smartdpss/smartdpss/internal/suite"
)

// Policy selects a control algorithm.
type Policy = engine.Policy

// Available policies.
const (
	// PolicySmartDPSS is the paper's online Lyapunov controller.
	PolicySmartDPSS = engine.PolicySmartDPSS
	// PolicyImpatient serves all demand immediately (Sec. VI-A strawman).
	PolicyImpatient = engine.PolicyImpatient
	// PolicyOfflineOptimal is the clairvoyant per-interval benchmark
	// (paper Sec. II-D).
	PolicyOfflineOptimal = engine.PolicyOfflineOptimal
	// PolicyOfflineHorizon is a single clairvoyant LP over the whole
	// horizon; use only on short horizons.
	PolicyOfflineHorizon = engine.PolicyOfflineHorizon
	// PolicyLookahead is a receding-horizon (MPC) controller with
	// Options.LookaheadWindow fine slots of perfect foresight.
	PolicyLookahead = engine.PolicyLookahead
	// PolicyLyapunov is the forecast-free stored-energy baseline
	// (arXiv:1103.3099): price-threshold battery charge/discharge around
	// a perturbed target level, tuned by Options.LyapunovV and
	// Options.LyapunovTheta.
	PolicyLyapunov = engine.PolicyLyapunov
)

// Report is the simulation outcome: cost decomposition, energy totals,
// delay statistics, battery and availability accounting.
type Report = engine.Report

// Options tunes the controller and the simulated plant.
type Options = engine.Options

// UnitSpec describes one unit of an on-site generation fleet
// (Options.Fleet): capacity, minimum stable load, ramp, fuel curve,
// startup cost/lag and CO₂ intensity.
type UnitSpec = engine.UnitSpec

// DefaultOptions mirrors the paper's Sec. VI-A defaults: V = 1, ε = 0.5,
// T = 24 hourly slots, a 2 MW datacenter and a 15-minute UPS.
func DefaultOptions() Options { return engine.DefaultOptions() }

// TraceConfig parameterizes the synthetic January scenario standing in for
// the paper's MIDC solar, NYISO price and Google-cluster workload traces.
type TraceConfig = engine.TraceConfig

// DefaultTraceConfig returns the one-month default scenario.
func DefaultTraceConfig() TraceConfig { return engine.DefaultTraceConfig() }

// Traces bundles the five input series of a simulation.
type Traces = engine.Traces

// GenerateTraces builds the synthetic trace set: interactive plus batch
// demand, solar production, and two-timescale prices.
func GenerateTraces(tc TraceConfig) (*Traces, error) { return engine.GenerateTraces(tc) }

// CoolingConfig parameterizes the cooling coupling of Traces.ApplyCooling.
type CoolingConfig = engine.CoolingConfig

// SeriesStats summarizes one input series.
type SeriesStats = engine.SeriesStats

// TraceStatistics returns summary statistics for all five input series in
// a fixed order (demand_ds, demand_dt, renewable, price_lt, price_rt).
func TraceStatistics(t *Traces) ([]SeriesStats, error) { return engine.TraceStatistics(t) }

// Simulate runs the selected policy over the traces and returns its report.
func Simulate(policy Policy, opts Options, traces *Traces) (*Report, error) {
	return engine.Simulate(policy, opts, traces)
}

// TheoremBounds reports the deterministic bounds of Theorem 2.
type TheoremBounds = engine.TheoremBounds

// Bounds computes the Theorem 2 bounds for the options.
func Bounds(opts Options) TheoremBounds { return engine.Bounds(opts) }

// SuiteConfig scopes a scenario-suite run: trace horizon, seed, and the
// worker-pool parallelism (Parallel == 0 uses GOMAXPROCS).
type SuiteConfig = suite.Config

// DefaultSuiteConfig matches the paper's one-month setup.
func DefaultSuiteConfig() SuiteConfig { return suite.DefaultConfig() }

// SuiteTable is a printable scenario result.
type SuiteTable = suite.Table

// Scenario is a registered experiment: a named, tagged runner producing
// one table.
type Scenario = suite.Scenario

// Scenarios lists every registered scenario in registration (paper)
// order.
func Scenarios() []Scenario { return suite.Scenarios() }

// RunSuite resolves each selector (a scenario name or tag; none selects
// everything) and runs the matching scenarios on a worker pool, fanning
// both scenarios and their inner sweep points out across cfg.Parallel
// goroutines (GOMAXPROCS when zero). Tables come back in registration
// order and are byte-identical across parallelism levels at a fixed
// seed.
func RunSuite(cfg SuiteConfig, selectors ...string) ([]*SuiteTable, error) {
	return suite.RunSuite(cfg, selectors...)
}

// TuneOptions scopes a self-tuning run: the policy arm (PolicySmartDPSS
// or PolicyLyapunov), the base engine options, the evaluation suite
// (multi-seed mean cost with a worst-seed guard) and the optimizer
// budget.
type TuneOptions = experiments.TuneOptions

// TuneResult reports a finished tuning run: the tuned parameter vector,
// ready-to-simulate Options, default and tuned scores, and the
// optimizer's incumbent trajectory.
type TuneResult = experiments.TuneResult

// RunTune tunes one policy arm against the simulator with a
// deterministic seeded Nelder–Mead (internal/optimize), scoring each
// candidate over the suite's seed family on the shared worker pool.
// Same TuneOptions → bit-identical TuneResult at every parallelism
// level.
func RunTune(topts TuneOptions) (*TuneResult, error) { return experiments.RunTune(topts) }

// GeoSiteSpec declares one site of a geo-distributed fleet: engine
// options, trace scope, routing capacity and latency penalty.
type GeoSiteSpec = geo.SiteSpec

// GeoRouter selects the workload-routing arm of a geo run.
type GeoRouter = geo.Router

// Available geo routers.
const (
	// GeoRouterNone disables routing: every site serves its home
	// demand. A one-site run is byte-identical to Simulate.
	GeoRouterNone = geo.RouterNone
	// GeoRouterGreedy routes per slot by real-time price order using
	// only that slot's observables (the online arm).
	GeoRouterGreedy = geo.RouterGreedy
	// GeoRouterLP routes by the coupled routing+supply LP over the
	// whole horizon (the clairvoyant arm).
	GeoRouterLP = geo.RouterLP
)

// GeoOptions scopes a geo-distributed multi-site run: the fleet, the
// per-site policy, the routing arm and the parallelism bound.
type GeoOptions = geo.Config

// GeoResult aggregates a geo run: per-site reports plus fleet-level
// totals and the aggregate grid/backlog peaks.
type GeoResult = geo.Result

// GeoSiteResult is one site's slice of a geo run.
type GeoSiteResult = geo.SiteResult

// RunGeo steps a geo-distributed fleet through the sharded multi-site
// engine: per-site traces, precomputed workload routing, one concurrent
// session per site behind a deterministic reduce. Results are
// byte-identical at every parallelism level, and a one-site fleet with
// GeoRouterNone reproduces Simulate exactly.
func RunGeo(cfg GeoOptions) (*GeoResult, error) { return geo.Run(cfg) }
