#!/bin/sh
# serve-smoke: end-to-end check of the dpss-serve daemon.
#
# 1. Self-check: start the daemon on a bounded replay source with an
#    ephemeral HTTP port, scrape /metrics and /healthz over real HTTP,
#    and validate the OpenMetrics exposition (serve.ValidateExposition:
#    TYPE-before-samples, counter _total suffixes, final `# EOF`).
# 2. Crash recovery: run half the horizon with a checkpoint file, then
#    restart and confirm the resumed process completes the full horizon.
#
# CI runs this via `make serve-smoke`.
set -eu
cd "$(dirname "$0")/.."

echo "==> smoke: scrape + OpenMetrics validation"
go run ./cmd/dpss-serve -smoke -days 2 -addr 127.0.0.1:0

echo "==> smoke: checkpoint write + cross-process resume"
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
ckpt="$tmpdir/dpss.ckpt"

go run ./cmd/dpss-serve -oneshot -days 2 -max-slots 24 -checkpoint "$ckpt" >"$tmpdir/first.out" 2>&1
grep -q '^slots       24$' "$tmpdir/first.out" || {
    echo "serve-smoke: first run did not stop at slot 24" >&2
    cat "$tmpdir/first.out" >&2
    exit 1
}
[ -s "$ckpt" ] || { echo "serve-smoke: no checkpoint written" >&2; exit 1; }

go run ./cmd/dpss-serve -oneshot -days 2 -checkpoint "$ckpt" >"$tmpdir/second.out" 2>&1
grep -q 'resumed from' "$tmpdir/second.out" || {
    echo "serve-smoke: second run did not resume from the checkpoint" >&2
    cat "$tmpdir/second.out" >&2
    exit 1
}
grep -q '^slots       48$' "$tmpdir/second.out" || {
    echo "serve-smoke: resumed run did not reach the full horizon" >&2
    cat "$tmpdir/second.out" >&2
    exit 1
}
echo "serve-smoke: checkpoint resume ok"
