#!/bin/sh
# lint-docs: fail when any package in the module lacks a package doc
# comment. Run by `make lint-docs` and the CI docs job.
#
# The documentation surface is tested like code here (see the docs CI
# job), so an undocumented package is a lint error, not a style nit: every
# package must have at least one non-test .go file whose package clause is
# immediately preceded by a doc comment (a `// Package ...` comment for
# libraries, a `// Command ...`-style comment for main packages, or a
# dedicated doc.go). Build-constraint and directive lines (`//go:...`) do
# not count as documentation.
set -eu

cd "$(dirname "$0")/.."

fail=0
for dir in $(go list -f '{{.Dir}}' ./...); do
	documented=0
	for f in "$dir"/*.go; do
		[ -e "$f" ] || continue
		case "$f" in
		*_test.go) continue ;;
		esac
		if awk '
			/^package / { exit found ? 0 : 1 }
			/^\/\/go:/ { next }
			/^\/\// || /\*\// { found = 1; next }
			/^$/ { found = 0; next }
			{ found = 0 }
		' "$f"; then
			documented=1
			break
		fi
	done
	if [ "$documented" -eq 0 ]; then
		echo "lint-docs: package $dir has no package doc comment" >&2
		fail=1
	fi
done
if [ "$fail" -ne 0 ]; then
	exit 1
fi
echo "lint-docs: every package is documented"
