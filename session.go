package smartdpss

import (
	"github.com/smartdpss/smartdpss/internal/engine"
)

// Sentinel errors of the session API. Branch on them with errors.Is;
// field-level validation failures additionally match a *ValidationError
// via errors.As.
var (
	// ErrInvalidOptions marks every Options validation failure.
	ErrInvalidOptions = engine.ErrInvalidOptions
	// ErrHorizonExhausted reports a Step past the session's last slot.
	ErrHorizonExhausted = engine.ErrHorizonExhausted
	// ErrSnapshotMismatch reports a Restore from a checkpoint taken under
	// a different configuration (options, policy, horizon, slot length or
	// checkpoint-format version).
	ErrSnapshotMismatch = engine.ErrSnapshotMismatch
	// ErrSnapshotUnsupported reports Snapshot/Restore on a policy that
	// cannot be checkpointed (the clairvoyant offline benchmarks).
	ErrSnapshotUnsupported = engine.ErrSnapshotUnsupported
)

// ValidationError reports one invalid field of an option or input
// struct, with the field name machine-readable (match via errors.As).
type ValidationError = engine.ValidationError

// SlotInput is one fine slot's exogenous inputs for streaming sessions:
// both demand classes, renewable production, the two market prices and
// the fuel-price multiplier (pass FuelScale 1 without a fuel market).
type SlotInput = engine.SlotInput

// Decision is a controller's planned fine-slot action: real-time
// purchase, backlog service, battery charge/discharge and on-site
// generation dispatch.
type Decision = engine.Decision

// SlotOutcome is one committed slot: the outcome fed back to the
// controller, the decision actually executed after the physical rescue
// chain, and the slot's cost.
type SlotOutcome = engine.SlotOutcome

// SessionStatus is a live mid-run view of a session — running cost and
// energy totals plus the current physical state — for monitoring
// surfaces such as the dpss-serve /metrics endpoint.
type SessionStatus = engine.SessionStatus

// Session is a resumable step-wise simulation of one policy: the
// streaming counterpart of Simulate, which is itself a thin batch loop
// over a replay session (batch and streaming reports are byte-identical
// by construction). Each slot is Step(input) → Decision, then Commit()
// → SlotOutcome; Finish() returns the Report. Between slots the full
// state can be checkpointed with Snapshot and reinstated with Restore
// on an identically configured session — in this process or another
// one — and the resumed run continues bit-for-bit.
type Session = engine.Session

// NewSession builds a streaming session over horizon fine slots: the
// caller supplies every slot's inputs through Step, so live telemetry
// can drive the controller online. Only trace-free policies qualify
// (PolicySmartDPSS, PolicyImpatient) — the clairvoyant benchmarks need
// the full future and go through NewReplaySession.
func NewSession(policy Policy, opts Options, horizon int) (*Session, error) {
	return engine.NewSession(policy, opts, horizon)
}

// NewReplaySession builds a session bound to a trace set: StepReplay
// feeds the next trace row each slot, exactly as batch Simulate does.
// All policies qualify.
func NewReplaySession(policy Policy, opts Options, traces *Traces) (*Session, error) {
	return engine.NewReplaySession(policy, opts, traces)
}
