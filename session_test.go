package smartdpss_test

import (
	"errors"
	"testing"

	dpss "github.com/smartdpss/smartdpss"
)

// TestSessionSentinels: the public error identities must be branchable
// through the facade with errors.Is / errors.As.
func TestSessionSentinels(t *testing.T) {
	t.Run("invalid options", func(t *testing.T) {
		opts := dpss.DefaultOptions()
		opts.CarbonUSDPerTon = -1
		_, err := dpss.NewSession(dpss.PolicySmartDPSS, opts, 24)
		if !errors.Is(err, dpss.ErrInvalidOptions) {
			t.Errorf("err = %v, want ErrInvalidOptions", err)
		}
	})
	t.Run("snapshot mismatch", func(t *testing.T) {
		a, err := dpss.NewSession(dpss.PolicySmartDPSS, dpss.DefaultOptions(), 24)
		if err != nil {
			t.Fatal(err)
		}
		blob, err := a.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		other := dpss.DefaultOptions()
		other.V = 9
		b, err := dpss.NewSession(dpss.PolicySmartDPSS, other, 24)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.Restore(blob); !errors.Is(err, dpss.ErrSnapshotMismatch) {
			t.Errorf("err = %v, want ErrSnapshotMismatch", err)
		}
	})
	t.Run("snapshot unsupported", func(t *testing.T) {
		traces := testTraces(t, 2)
		s, err := dpss.NewReplaySession(dpss.PolicyOfflineOptimal, dpss.DefaultOptions(), traces)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Snapshot(); !errors.Is(err, dpss.ErrSnapshotUnsupported) {
			t.Errorf("err = %v, want ErrSnapshotUnsupported", err)
		}
	})
	t.Run("horizon exhausted", func(t *testing.T) {
		traces := testTraces(t, 2)
		s, err := dpss.NewReplaySession(dpss.PolicySmartDPSS, dpss.DefaultOptions(), traces)
		if err != nil {
			t.Fatal(err)
		}
		for !s.Done() {
			if _, err := s.StepReplay(); err != nil {
				t.Fatal(err)
			}
		}
		_, err = s.Step(traces.InputAt(0))
		if !errors.Is(err, dpss.ErrHorizonExhausted) {
			t.Errorf("err = %v, want ErrHorizonExhausted", err)
		}
	})
}

// TestSimulateMatchesReplaySession pins the layering contract of the
// redesigned API at the outermost surface: batch Simulate is the replay
// session loop, byte for byte.
func TestSimulateMatchesReplaySession(t *testing.T) {
	traces := testTraces(t, 7)
	batch, err := dpss.Simulate(dpss.PolicySmartDPSS, dpss.DefaultOptions(), traces)
	if err != nil {
		t.Fatal(err)
	}
	s, err := dpss.NewReplaySession(dpss.PolicySmartDPSS, dpss.DefaultOptions(), traces)
	if err != nil {
		t.Fatal(err)
	}
	for !s.Done() {
		if _, err := s.StepReplay(); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if batch.TotalCostUSD != rep.TotalCostUSD || batch.Slots != rep.Slots ||
		batch.MeanDelaySlots != rep.MeanDelaySlots {
		t.Errorf("session run diverged: batch cost %g vs %g", batch.TotalCostUSD, rep.TotalCostUSD)
	}
}
