// Command experiments drives the SmartDPSS scenario suite: it reproduces
// the figures of the paper's evaluation (ICDCS 2013, Sec. VI), the
// extension studies, the on-site power provisioning family
// (arXiv:1303.6775), and the geo-distributed multi-site family
// (arXiv:1308.0585; the "geo" tag), running scenarios and their inner
// sweeps on a worker pool.
//
// Usage:
//
//	experiments [-list] [-run selectors] [-parallel N] [-json]
//	            [-days N] [-seed S] [-seeds N] [-skip-offline]
//	            [-csv path] [-out-dir dir]
//
// Flags:
//
//	-list          print every registered scenario (name, tags,
//	               description) and exit
//	-run           comma-separated scenario names and/or tags to run
//	               (e.g. "fig6v", "ext", "provision", "fig5,ext-cycle");
//	               default is the "paper" tag — the seven figures in
//	               paper order
//	-fig           deprecated alias for -run (kept for old scripts)
//	-parallel      worker-pool width; 0 (default) uses GOMAXPROCS, 1
//	               forces sequential execution; results are
//	               byte-identical at every level
//	-json          emit the tables as a JSON array instead of aligned
//	               text
//	-days          trace horizon in days (paper: 31)
//	-seed          generator seed
//	-seeds         seed count for the ext-seeds scenario
//	-skip-offline  skip the clairvoyant offline-LP benchmark columns
//	               (they dominate the runtime)
//	-csv           export the Fig. 5 raw traces to this CSV file
//	-out-dir       also write each table as <scenario>.csv into this
//	               directory
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/smartdpss/smartdpss/internal/experiments"
	"github.com/smartdpss/smartdpss/internal/suite"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	days := fs.Int("days", 31, "trace horizon in days")
	seed := fs.Int64("seed", 1, "generator seed")
	skipOffline := fs.Bool("skip-offline", false, "skip the clairvoyant benchmark columns")
	seeds := fs.Int("seeds", 5, "seed count for the ext-seeds scenario")
	parallel := fs.Int("parallel", 0, "worker-pool width (0 = GOMAXPROCS, 1 = sequential)")
	list := fs.Bool("list", false, "list registered scenarios and exit")
	runSel := fs.String("run", "", "comma-separated scenario names and/or tags (default: the paper figures)")
	fig := fs.String("fig", "", "deprecated alias for -run")
	asJSON := fs.Bool("json", false, "emit tables as JSON instead of aligned text")
	csvPath := fs.String("csv", "", "export the Fig. 5 raw traces to this CSV file")
	outDir := fs.String("out-dir", "", "also write each table as CSV into this directory")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		return listScenarios(os.Stdout)
	}

	cfg := suite.Config{
		Days:        *days,
		Seed:        *seed,
		SkipOffline: *skipOffline,
		Seeds:       *seeds,
		Parallel:    *parallel,
	}

	selectors := splitSelectors(*runSel)
	selectors = append(selectors, splitSelectors(*fig)...)
	if len(selectors) == 0 {
		selectors = []string{experiments.TagPaper}
	}
	scenarios, err := suite.Select(selectors...)
	if err != nil {
		return err
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		if err := experiments.ExportFig5CSV(cfg, f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		if !*asJSON {
			fmt.Printf("wrote raw traces to %s\n\n", *csvPath)
		}
	}

	results := suite.Run(cfg, scenarios)
	for _, r := range results {
		if r.Err != nil {
			return r.Err
		}
	}

	if *asJSON {
		if err := emitJSON(os.Stdout, results); err != nil {
			return err
		}
	} else {
		for _, r := range results {
			if err := r.Table.Fprint(os.Stdout); err != nil {
				return err
			}
		}
	}

	if *outDir == "" {
		return nil
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}
	for _, r := range results {
		f, err := os.Create(filepath.Join(*outDir, r.Scenario.Name+".csv"))
		if err != nil {
			return err
		}
		if err := r.Table.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// splitSelectors parses a comma-separated selector list.
func splitSelectors(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// listScenarios prints the registry as an aligned table.
func listScenarios(w *os.File) error {
	t := &suite.Table{
		Title:   "Registered scenarios",
		Note:    "select by name or tag with -run; the default run is the \"paper\" tag.",
		Columns: []string{"name", "tags", "description"},
	}
	for _, s := range suite.Scenarios() {
		t.AddRow(s.Name, strings.Join(s.Tags, ","), s.Description)
	}
	return t.Fprint(w)
}

// jsonTable is the -json wire format for one scenario result.
type jsonTable struct {
	Name    string     `json:"name"`
	Title   string     `json:"title"`
	Note    string     `json:"note,omitempty"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

// emitJSON writes the results as one indented JSON array.
func emitJSON(w *os.File, results []suite.Result) error {
	out := make([]jsonTable, len(results))
	for i, r := range results {
		out[i] = jsonTable{
			Name:    r.Scenario.Name,
			Title:   r.Table.Title,
			Note:    r.Table.Note,
			Columns: r.Table.Columns,
			Rows:    r.Table.Rows,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
