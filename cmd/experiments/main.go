// Command experiments reproduces the figures of the SmartDPSS evaluation
// (ICDCS 2013, Sec. VI) and prints each as an aligned text table.
//
// Usage:
//
//	experiments [-days N] [-seed S] [-skip-offline] [-fig name] [-csv path]
//
// With -fig the run is limited to one figure (fig5, fig6v, fig6t, fig7,
// fig8, fig9, fig10); otherwise all figures run in paper order. With -csv
// the Fig. 5 raw traces are also exported to the given file.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/smartdpss/smartdpss/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	days := fs.Int("days", 31, "trace horizon in days")
	seed := fs.Int64("seed", 1, "generator seed")
	skipOffline := fs.Bool("skip-offline", false, "skip the clairvoyant benchmark columns")
	seeds := fs.Int("seeds", 5, "seed count for -fig ext-seeds")
	fig := fs.String("fig", "", "run a single figure: fig5|fig6v|fig6t|fig7|fig8|fig9|fig10|ext-peak|ext-cycle|ext-mix|ext-est|ext-mpc|ext-seeds|ext-cool")
	csvPath := fs.String("csv", "", "export the Fig. 5 raw traces to this CSV file")
	outDir := fs.String("out-dir", "", "also write each table as CSV into this directory")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := experiments.Config{Days: *days, Seed: *seed, SkipOffline: *skipOffline}

	runners := map[string]func(experiments.Config) (*experiments.Table, error){
		"fig5":      experiments.Fig5Traces,
		"fig6v":     experiments.Fig6VSweep,
		"fig6t":     experiments.Fig6TSweep,
		"fig7":      experiments.Fig7Factors,
		"fig8":      experiments.Fig8Penetration,
		"fig9":      experiments.Fig9Robustness,
		"fig10":     experiments.Fig10Scaling,
		"ext-peak":  experiments.ExtPeakManagement,
		"ext-cycle": experiments.ExtCycleBudget,
		"ext-mix":   experiments.ExtRenewableMix,
		"ext-est":   experiments.ExtEstimatorAblation,
		"ext-mpc":   experiments.ExtForesight,
		"ext-seeds": func(c experiments.Config) (*experiments.Table, error) {
			return experiments.MultiSeedSummary(c, *seeds)
		},
		"ext-cool": experiments.ExtCooling,
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		if err := experiments.ExportFig5CSV(cfg, f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote raw traces to %s\n\n", *csvPath)
	}

	emit := func(name string, tbl *experiments.Table) error {
		if err := tbl.Fprint(os.Stdout); err != nil {
			return err
		}
		if *outDir == "" {
			return nil
		}
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(*outDir, name+".csv"))
		if err != nil {
			return err
		}
		if err := tbl.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}

	if *fig != "" {
		runner, ok := runners[*fig]
		if !ok {
			return fmt.Errorf("unknown figure %q", *fig)
		}
		tbl, err := runner(cfg)
		if err != nil {
			return err
		}
		return emit(*fig, tbl)
	}

	names := []string{"fig5", "fig6v", "fig6t", "fig7", "fig8", "fig9", "fig10"}
	tables, err := experiments.All(cfg)
	if err != nil {
		return err
	}
	for i, tbl := range tables {
		name := fmt.Sprintf("table%d", i)
		if i < len(names) {
			name = names[i]
		}
		if err := emit(name, tbl); err != nil {
			return err
		}
	}
	return nil
}
