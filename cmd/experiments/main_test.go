package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleFigure(t *testing.T) {
	for _, fig := range []string{"fig5", "ext-cycle"} {
		if err := run([]string{"-days", "2", "-skip-offline", "-fig", fig}); err != nil {
			t.Errorf("fig %s: %v", fig, err)
		}
	}
}

func TestRunSelectors(t *testing.T) {
	// -run accepts names, tags and comma-separated mixes.
	for _, sel := range []string{"fig5", "ext-cycle,fig5"} {
		if err := run([]string{"-days", "2", "-skip-offline", "-run", sel}); err != nil {
			t.Errorf("-run %s: %v", sel, err)
		}
	}
	if err := run([]string{"-days", "2", "-run", "no-such-tag"}); err == nil {
		t.Error("unknown selector accepted")
	}
}

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunJSON(t *testing.T) {
	// Capture stdout to validate the JSON envelope.
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := run([]string{"-days", "2", "-skip-offline", "-run", "fig5", "-json"})
	w.Close()
	os.Stdout = old
	if runErr != nil {
		t.Fatal(runErr)
	}
	var tables []struct {
		Name    string     `json:"name"`
		Title   string     `json:"title"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	}
	if err := json.NewDecoder(r).Decode(&tables); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(tables) != 1 || tables[0].Name != "fig5" {
		t.Fatalf("tables = %+v, want one fig5", tables)
	}
	if len(tables[0].Rows) != 5 {
		t.Errorf("fig5 rows = %d, want 5", len(tables[0].Rows))
	}
}

func TestRunParallelLevels(t *testing.T) {
	for _, p := range []string{"1", "4"} {
		if err := run([]string{"-days", "2", "-skip-offline", "-run", "fig7", "-parallel", p}); err != nil {
			t.Errorf("-parallel %s: %v", p, err)
		}
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if err := run([]string{"-days", "2", "-fig", "fig99"}); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestRunCSVExport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "fig5.csv")
	if err := run([]string{"-days", "2", "-fig", "fig5", "-csv", out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "slot,") {
		t.Error("csv export malformed")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run([]string{"-days", "1", "-csv", filepath.Join(t.TempDir(), "no", "dir.csv")}); err == nil {
		t.Error("unwritable csv path accepted")
	}
}

func TestRunOutDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "tables")
	if err := run([]string{"-days", "2", "-fig", "fig5", "-out-dir", dir}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig5.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "series,") {
		t.Errorf("table csv header = %q", strings.SplitN(string(data), "\n", 2)[0])
	}
}
