package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleFigure(t *testing.T) {
	for _, fig := range []string{"fig5", "ext-cycle"} {
		if err := run([]string{"-days", "2", "-skip-offline", "-fig", fig}); err != nil {
			t.Errorf("fig %s: %v", fig, err)
		}
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if err := run([]string{"-days", "2", "-fig", "fig99"}); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestRunCSVExport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "fig5.csv")
	if err := run([]string{"-days", "2", "-fig", "fig5", "-csv", out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "slot,") {
		t.Error("csv export malformed")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run([]string{"-days", "1", "-csv", filepath.Join(t.TempDir(), "no", "dir.csv")}); err == nil {
		t.Error("unwritable csv path accepted")
	}
}

func TestRunOutDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "tables")
	if err := run([]string{"-days", "2", "-fig", "fig5", "-out-dir", dir}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig5.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "series,") {
		t.Errorf("table csv header = %q", strings.SplitN(string(data), "\n", 2)[0])
	}
}
