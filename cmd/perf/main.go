// Command perf turns `go test -bench -benchmem` output into the
// repository's machine-readable benchmark trajectory file (BENCH_*.json)
// and gates allocation regressions in CI.
//
// Usage:
//
//	go test -bench='...' -benchmem -run '^$' . | go run ./cmd/perf -out BENCH_4.json
//	go test -bench='...' -benchmem -run '^$' . | go run ./cmd/perf -check BENCH_4.json -out /tmp/bench.json
//
// The tool reads benchmark result lines from stdin. With -out it writes
// a JSON file holding the parsed numbers as the "current" block; when
// the output file already exists (or -check names a committed file) its
// "baseline" block is carried over unchanged, so the pre-refactor
// reference measurements survive regeneration.
//
// With -check FILE the parsed results are additionally compared against
// FILE's "current" block: the run fails (exit 1) when the allocation
// count of any gated benchmark regresses beyond the tolerance.
// Allocations per op are deterministic — unlike ns/op they do not
// depend on CI machine load — which makes them the right regression
// signal for an allocation-free hot path. Two further gate families run
// on the -check path: same-run speedup ratios (sparse vs dense
// reference, load-independent) and coarse absolute wall-clock budgets
// (the annual LP's ≤20 s hyper-sparsity pin).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strconv"
)

// Result is one benchmark measurement.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"b_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Block is a named set of measurements with provenance.
type Block struct {
	Note       string            `json:"note,omitempty"`
	Go         string            `json:"go,omitempty"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

// File is the on-disk BENCH_*.json schema.
type File struct {
	Schema   string `json:"schema"`
	Baseline *Block `json:"baseline,omitempty"`
	Current  *Block `json:"current"`
}

// gated lists the benchmarks whose allocs/op may not regress, with the
// multiplicative headroom the check allows (buffer-growth paths can
// differ by a few allocations between environments).
var gated = map[string]float64{
	"BenchmarkDefaultsSimulation":       1.10,
	"BenchmarkFleetDispatch":            1.10,
	"BenchmarkAblationP5LP":             1.10,
	"BenchmarkAblationOfflineHorizonLP": 1.10,
	// The geo fan-out gate: allocations are proportional to site count
	// (setup only), with zero allocations in the per-slot sharded step.
	// A regression that allocates per slot multiplies allocs/op by the
	// 168-slot horizon and trips every fleet size at once.
	"BenchmarkGeoStep/sites=1": 1.10,
	"BenchmarkGeoStep/sites=2": 1.10,
	"BenchmarkGeoStep/sites=4": 1.10,
	"BenchmarkGeoStep/sites=8": 1.10,
	// One tuner objective evaluation: the unit of work RunTune repeats
	// for its whole budget, so a per-evaluation allocation regression
	// multiplies across every tuning run.
	"BenchmarkTuneEvaluate": 1.10,
}

// speedupGates are same-run ns/op ratio assertions: each entry requires
// fast ≤ maxRatio × slow whenever both benchmarks appear in the parsed
// input. Comparing two measurements from the same run keeps the gate
// machine-load independent (both sides see the same CPU), unlike an
// absolute ns/op threshold. The horizon entry is the sparse revised
// simplex's reason to exist: if the sparse staircase path stops clearly
// beating the dense chain reference, the migration has regressed.
var speedupGates = []struct {
	fast, slow string
	maxRatio   float64
}{
	{"BenchmarkAblationOfflineHorizonLP", "BenchmarkAblationOfflineHorizonLPDense", 0.70},
}

// wallGates are absolute wall-clock budgets in ns/op. Unlike the alloc
// and same-run ratio gates these are machine-load sensitive, so each
// budget carries roughly 2x headroom over the measured value and exists
// to catch order-of-magnitude regressions, not percent-level drift. The
// annual entry pins the hyper-sparse revised simplex: the year-long
// (8760-slot) whole-horizon LP measured ~10 s when the hyper-sparse
// FTRAN/BTRAN kernels landed, versus ~200 s before them — a return to
// the dense-vector per-pivot cost blows this budget immediately.
var wallGates = map[string]float64{
	"BenchmarkAblationOfflineAnnualLP": 20e9,
}

var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op\s+(\d+) B/op\s+(\d+) allocs/op`)

func main() {
	out := flag.String("out", "", "write the parsed results to this JSON file")
	check := flag.String("check", "", "fail if allocs/op regress versus this committed JSON file")
	note := flag.String("note", "", "provenance note stored with the current block")
	flag.Parse()

	results := make(map[string]Result)
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass the raw output through for the log
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ns, _ := strconv.ParseFloat(m[2], 64)
		bytes, _ := strconv.ParseInt(m[3], 10, 64)
		allocs, _ := strconv.ParseInt(m[4], 10, 64)
		results[m[1]] = Result{NsPerOp: ns, BytesPerOp: bytes, AllocsPerOp: allocs}
	}
	if err := sc.Err(); err != nil {
		fatalf("reading stdin: %v", err)
	}
	if len(results) == 0 {
		fatalf("no benchmark result lines found on stdin (did you pass -benchmem?)")
	}

	if *check != "" {
		committed, err := load(*check)
		if err != nil {
			fatalf("loading %s: %v", *check, err)
		}
		if err := gate(results, committed); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("perf: allocation gate passed against %s\n", *check)
		if err := gateSpeedups(results); err != nil {
			fatalf("%v", err)
		}
		if err := gateWall(results); err != nil {
			fatalf("%v", err)
		}
	}

	if *out != "" {
		f := File{Schema: "smartdpss-bench/v1"}
		// Carry the committed baseline block forward so regeneration never
		// loses the pre-refactor reference.
		for _, prev := range []string{*out, *check} {
			if prev == "" {
				continue
			}
			if old, err := load(prev); err == nil && old.Baseline != nil {
				f.Baseline = old.Baseline
				break
			}
		}
		f.Current = &Block{Note: *note, Go: runtime.Version(), Benchmarks: results}
		buf, err := json.MarshalIndent(f, "", "  ")
		if err != nil {
			fatalf("encoding: %v", err)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			fatalf("writing %s: %v", *out, err)
		}
		fmt.Printf("perf: wrote %s (%d benchmarks)\n", *out, len(results))
	}
}

func load(path string) (*File, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(buf, &f); err != nil {
		return nil, err
	}
	return &f, nil
}

// gate compares fresh allocs/op against the committed current block.
func gate(fresh map[string]Result, committed *File) error {
	if committed.Current == nil {
		return fmt.Errorf("committed file has no current block")
	}
	for name, slack := range gated {
		want, ok := committed.Current.Benchmarks[name]
		if !ok {
			continue // benchmark not tracked yet
		}
		got, ok := fresh[name]
		if !ok {
			return fmt.Errorf("gated benchmark %s missing from this run", name)
		}
		limit := int64(float64(want.AllocsPerOp)*slack) + 2
		if got.AllocsPerOp > limit {
			return fmt.Errorf("%s allocations regressed: %d allocs/op vs committed %d (limit %d)",
				name, got.AllocsPerOp, want.AllocsPerOp, limit)
		}
		fmt.Printf("perf: %s at %d allocs/op (committed %d, limit %d)\n",
			name, got.AllocsPerOp, want.AllocsPerOp, limit)
	}
	return nil
}

// gateSpeedups enforces the same-run ns/op ratio gates. A gate only
// fires when both of its benchmarks were measured in this run, so
// partial benchmark selections skip it rather than failing.
func gateSpeedups(fresh map[string]Result) error {
	for _, g := range speedupGates {
		fast, okF := fresh[g.fast]
		slow, okS := fresh[g.slow]
		if !okF || !okS {
			continue
		}
		if slow.NsPerOp <= 0 {
			return fmt.Errorf("%s measured at %.0f ns/op; cannot gate a ratio against it",
				g.slow, slow.NsPerOp)
		}
		ratio := fast.NsPerOp / slow.NsPerOp
		if ratio > g.maxRatio {
			return fmt.Errorf("%s/%s ratio %.3f exceeds %.2f: the sparse path no longer beats the dense reference",
				g.fast, g.slow, ratio, g.maxRatio)
		}
		fmt.Printf("perf: %s at %.3fx of %s (gate %.2f)\n", g.fast, ratio, g.slow, g.maxRatio)
	}
	return nil
}

// gateWall enforces the absolute wall-clock budgets. A gate only fires
// when its benchmark was measured in this run.
func gateWall(fresh map[string]Result) error {
	for name, budget := range wallGates {
		got, ok := fresh[name]
		if !ok {
			continue
		}
		if got.NsPerOp > budget {
			return fmt.Errorf("%s wall clock %.1f s exceeds the %.0f s budget",
				name, got.NsPerOp/1e9, budget/1e9)
		}
		fmt.Printf("perf: %s at %.1f s (budget %.0f s)\n", name, got.NsPerOp/1e9, budget/1e9)
	}
	return nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "perf: "+format+"\n", args...)
	os.Exit(1)
}
