// Command dpss-serve runs the SmartDPSS controller as a long-lived
// service: a resumable session stepped slot-by-slot from an ingest
// source, with periodic disk checkpoints for crash recovery and an HTTP
// monitoring surface (/metrics in OpenMetrics text, /healthz, /status).
// The current ingest source replays generated traces; live telemetry
// adapters plug in behind the same serve.Source interface.
//
// Usage:
//
//	dpss-serve [-addr host:port] [-policy smartdpss|impatient]
//	           [-days N] [-seed S]
//	           [-checkpoint file] [-checkpoint-every N]
//	           [-interval dur] [-max-slots N]
//	           [-oneshot] [-smoke]
//
// Examples:
//
//	dpss-serve                                    # serve a 31-day replay on :9464
//	dpss-serve -interval 1s -checkpoint dpss.ckpt # paced, crash-recoverable
//	dpss-serve -oneshot                           # batch run via the ingest loop
//	dpss-serve -smoke                             # self-check: scrape + validate
//
// On SIGINT/SIGTERM the daemon writes a final checkpoint (when
// -checkpoint is set) and exits cleanly; restarting with the same flags
// resumes bit-for-bit from the checkpoint.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	dpss "github.com/smartdpss/smartdpss"
	"github.com/smartdpss/smartdpss/internal/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dpss-serve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dpss-serve", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", "127.0.0.1:9464", "HTTP listen address for /metrics, /healthz, /status")
		policy     = fs.String("policy", "smartdpss", "control policy: smartdpss|impatient (resumable online policies)")
		days       = fs.Int("days", 31, "replay trace horizon in days")
		seed       = fs.Int64("seed", 1, "trace generator seed")
		checkpoint = fs.String("checkpoint", "", "checkpoint file for crash recovery (empty disables)")
		ckptEvery  = fs.Int("checkpoint-every", 24, "committed slots between checkpoint writes")
		interval   = fs.Duration("interval", 0, "wall-clock pacing between slots (0 free-runs the replay)")
		maxSlots   = fs.Int("max-slots", 0, "stop after committing this many slots in this process (0 = run to the horizon)")
		oneshot    = fs.Bool("oneshot", false, "run the ingest loop to completion, print the report, exit without serving HTTP")
		smoke      = fs.Bool("smoke", false, "self-check: serve, scrape /metrics over HTTP, validate OpenMetrics, exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var pol dpss.Policy
	switch *policy {
	case "smartdpss":
		pol = dpss.PolicySmartDPSS
	case "impatient":
		pol = dpss.PolicyImpatient
	case "lyapunov":
		pol = dpss.PolicyLyapunov
	default:
		return fmt.Errorf("unknown policy %q (want smartdpss, impatient or lyapunov)", *policy)
	}

	tc := dpss.DefaultTraceConfig()
	tc.Days = *days
	tc.Seed = *seed
	traces, err := dpss.GenerateTraces(tc)
	if err != nil {
		return err
	}
	sess, err := dpss.NewReplaySession(pol, dpss.DefaultOptions(), traces)
	if err != nil {
		return err
	}
	var src serve.Source
	src, err = serve.NewReplaySource(traces)
	if err != nil {
		return err
	}
	limit := *maxSlots
	if *smoke && limit == 0 {
		limit = minInt(48, sess.Horizon()) // two simulated days is plenty for a scrape
	}
	if limit > 0 {
		src = &limitedSource{Source: src, remaining: limit}
	}

	d, err := serve.New(serve.Config{
		Session:         sess,
		Source:          src,
		CheckpointPath:  *checkpoint,
		CheckpointEvery: *ckptEvery,
		Interval:        *interval,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "dpss-serve: "+format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *oneshot {
		if err := d.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
			return err
		}
		return printReport(d)
	}
	if *smoke {
		return runSmoke(ctx, d, *addr)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: d.Handler()}
	go srv.Serve(ln)
	fmt.Fprintf(os.Stderr, "dpss-serve: %s policy on http://%s (horizon %d slots, resuming at %d)\n",
		*policy, ln.Addr(), sess.Horizon(), sess.Slot())

	runErr := d.Run(ctx)
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && runErr == nil {
		runErr = err
	}
	if errors.Is(runErr, context.Canceled) {
		runErr = nil // clean signal-driven shutdown
	}
	if runErr != nil {
		return runErr
	}
	fmt.Fprintf(os.Stderr, "dpss-serve: ingest finished at slot %d/%d (%d checkpoints)\n",
		sess.Slot(), sess.Horizon(), d.Checkpoints())
	return nil
}

// runSmoke is the CI self-check: serve on addr (falling back to an
// ephemeral port), drive the bounded replay to completion, scrape
// /metrics and /healthz over real HTTP, validate the OpenMetrics
// exposition, and shut down cleanly.
func runSmoke(ctx context.Context, d *serve.Daemon, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		if ln, err = net.Listen("tcp", "127.0.0.1:0"); err != nil {
			return err
		}
	}
	srv := &http.Server{Handler: d.Handler()}
	go srv.Serve(ln)
	defer func() {
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(shutCtx)
	}()

	if err := d.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
		return err
	}

	base := "http://" + ln.Addr().String()
	body, contentType, err := get(ctx, base+"/metrics")
	if err != nil {
		return err
	}
	if ct := "application/openmetrics-text"; len(contentType) < len(ct) || contentType[:len(ct)] != ct {
		return fmt.Errorf("smoke: /metrics Content-Type %q is not OpenMetrics", contentType)
	}
	if err := serve.ValidateExposition(body); err != nil {
		return fmt.Errorf("smoke: %w", err)
	}
	if sess := d.Session(); sess.Slot() == 0 {
		return errors.New("smoke: no slots committed")
	}
	if health, _, err := get(ctx, base+"/healthz"); err != nil {
		return err
	} else if string(health) != "ok\n" {
		return fmt.Errorf("smoke: /healthz returned %q", health)
	}
	fmt.Printf("serve-smoke: ok (%d slots, %d bytes of metrics from %s)\n",
		d.Session().Slot(), len(body), base)
	return nil
}

func get(ctx context.Context, url string) (body []byte, contentType string, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, "", err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, "", fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	body, err = io.ReadAll(resp.Body)
	return body, resp.Header.Get("Content-Type"), err
}

func printReport(d *serve.Daemon) error {
	rep, err := d.Session().Finish()
	if err != nil {
		return err
	}
	fmt.Printf("policy      %s\n", rep.Controller)
	fmt.Printf("slots       %d\n", rep.Slots)
	fmt.Printf("total cost  %.2f USD\n", rep.TotalCostUSD)
	fmt.Printf("avg cost    %.4f USD/slot\n", rep.TimeAvgCostUSD)
	fmt.Printf("avg delay   %.4f slots\n", rep.MeanDelaySlots)
	fmt.Printf("checkpoints %d\n", d.Checkpoints())
	return nil
}

// limitedSource caps the number of observations handed out in this
// process — the knob behind -max-slots and the crash-recovery tests.
type limitedSource struct {
	serve.Source
	remaining int
}

func (l *limitedSource) Next(ctx context.Context) (serve.Observation, error) {
	if l.remaining <= 0 {
		return serve.Observation{}, io.EOF
	}
	obs, err := l.Source.Next(ctx)
	if err == nil {
		l.remaining--
	}
	return obs, err
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
