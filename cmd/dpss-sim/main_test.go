package main

import "testing"

func TestRunDefaultsShortHorizon(t *testing.T) {
	if err := run([]string{"-days", "2"}); err != nil {
		t.Fatalf("run failed: %v", err)
	}
}

func TestRunAllPolicies(t *testing.T) {
	for _, policy := range []string{"smartdpss", "impatient", "offline"} {
		if err := run([]string{"-days", "2", "-policy", policy}); err != nil {
			t.Errorf("policy %s: %v", policy, err)
		}
	}
}

func TestRunWithKnobs(t *testing.T) {
	args := []string{
		"-days", "2", "-v", "2.5", "-epsilon", "1",
		"-t", "12", "-battery-minutes", "30",
		"-penetration", "0.4", "-bounds",
	}
	if err := run(args); err != nil {
		t.Fatalf("run failed: %v", err)
	}
}

func TestRunRTM(t *testing.T) {
	if err := run([]string{"-days", "2", "-rtm"}); err != nil {
		t.Fatalf("run failed: %v", err)
	}
}

func TestRunNoise(t *testing.T) {
	if err := run([]string{"-days", "2", "-noise", "0.5"}); err != nil {
		t.Fatalf("run failed: %v", err)
	}
}

func TestRunRejectsBadArgs(t *testing.T) {
	cases := [][]string{
		{"-days", "0"},
		{"-policy", "nonsense", "-days", "1"},
		{"-noise", "2", "-days", "1"},
		{"-penetration", "0.5", "-solar-mw", "0", "-days", "1"},
		{"-not-a-flag"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
