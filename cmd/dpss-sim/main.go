// Command dpss-sim runs one DPSS simulation and prints its report.
//
// Usage:
//
//	dpss-sim [-policy smartdpss|impatient|offline|offline-horizon]
//	         [-days N] [-seed S] [-v V] [-epsilon E] [-t T]
//	         [-battery-minutes M] [-peak-mw P] [-solar-mw S]
//	         [-penetration F] [-noise F] [-rtm] [-use-lp]
//	         [-gen-mw G] [-gen-min-load F] [-fuel C] [-gen-startup U]
//
// Examples:
//
//	dpss-sim                                  # SmartDPSS, paper defaults
//	dpss-sim -policy impatient                # the strawman baseline
//	dpss-sim -v 5                             # cheaper, slower service
//	dpss-sim -penetration 0.6 -battery-minutes 30
//	dpss-sim -gen-mw 0.5 -fuel 45             # with on-site generation
package main

import (
	"flag"
	"fmt"
	"os"

	dpss "github.com/smartdpss/smartdpss"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dpss-sim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dpss-sim", flag.ContinueOnError)
	var (
		policy      = fs.String("policy", "smartdpss", "control policy: smartdpss|impatient|offline|offline-horizon")
		days        = fs.Int("days", 31, "trace horizon in days")
		seed        = fs.Int64("seed", 1, "generator seed")
		v           = fs.Float64("v", 1.0, "Lyapunov cost-delay parameter V")
		epsilon     = fs.Float64("epsilon", 0.5, "delay-control parameter ε")
		t           = fs.Int("t", 24, "fine slots per coarse slot T")
		battMinutes = fs.Float64("battery-minutes", 15, "UPS size in minutes of peak demand (0 disables)")
		peakMW      = fs.Float64("peak-mw", 2.0, "datacenter peak in MW (grid cap)")
		solarMW     = fs.Float64("solar-mw", 3.0, "solar plant capacity in MW")
		penetration = fs.Float64("penetration", -1, "override renewable penetration (0..1, negative keeps the generated level)")
		noise       = fs.Float64("noise", 0, "uniform observation error fraction (Fig. 9 uses 0.5)")
		genMW       = fs.Float64("gen-mw", 0, "dispatchable on-site generator capacity in MW (0 disables)")
		genMinLoad  = fs.Float64("gen-min-load", 0.2, "generator minimum stable load as a fraction of capacity")
		fuel        = fs.Float64("fuel", 0, "generator fuel price in USD/MWh (0 uses the 85 default)")
		genStartup  = fs.Float64("gen-startup", 10, "generator cold-start cost in USD")
		rtm         = fs.Bool("rtm", false, "disable the long-term-ahead market (real-time only)")
		useLP       = fs.Bool("use-lp", false, "use the simplex P5 solver instead of the closed form")
		showBounds  = fs.Bool("bounds", false, "print the Theorem 2 bounds for these options")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	tc := dpss.TraceConfig{Days: *days, Seed: *seed, SolarCapacityMW: *solarMW, PeakMW: *peakMW}
	traces, err := dpss.GenerateTraces(tc)
	if err != nil {
		return err
	}
	if *penetration >= 0 {
		if err := traces.SetPenetration(*penetration); err != nil {
			return err
		}
	}

	opts := dpss.DefaultOptions()
	opts.V = *v
	opts.Epsilon = *epsilon
	opts.T = *t
	opts.BatteryMinutes = *battMinutes
	opts.PeakMW = *peakMW
	opts.DisableLongTerm = *rtm
	opts.UseLP = *useLP
	opts.ObservationNoise = *noise
	opts.NoiseSeed = *seed + 1
	opts.GeneratorMW = *genMW
	opts.GeneratorMinLoadFrac = *genMinLoad
	opts.FuelUSDPerMWh = *fuel
	opts.GeneratorStartupUSD = *genStartup

	if *showBounds {
		b := dpss.Bounds(opts)
		fmt.Printf("Theorem 2 bounds: Qmax=%.3f MWh Ymax=%.3f Umax=%.3f λmax=%d slots Vmax=%.3f\n\n",
			b.QMax, b.YMax, b.UMax, b.LambdaMax, b.VMax)
	}

	rep, err := dpss.Simulate(dpss.Policy(*policy), opts, traces)
	if err != nil {
		return err
	}
	fmt.Printf("renewable penetration: %.1f%%, demand std: %.3f MWh\n",
		100*traces.RenewablePenetration(), traces.DemandStdDev())
	fmt.Print(rep)
	return nil
}
