// Command trace-gen generates the synthetic input traces (demand, solar,
// two-timescale prices) and writes them as CSV.
//
// Usage:
//
//	trace-gen [-days N] [-seed S] [-solar-mw C] [-peak-mw P]
//	          [-penetration F] [-out file]
//
// Without -out the CSV goes to stdout; summary statistics go to stderr so
// the CSV stream stays clean for piping.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	dpss "github.com/smartdpss/smartdpss"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "trace-gen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("trace-gen", flag.ContinueOnError)
	var (
		days        = fs.Int("days", 31, "horizon in days")
		seed        = fs.Int64("seed", 1, "generator seed")
		solarMW     = fs.Float64("solar-mw", 3.0, "solar plant capacity in MW")
		peakMW      = fs.Float64("peak-mw", 2.0, "datacenter peak in MW")
		penetration = fs.Float64("penetration", -1, "override renewable penetration (0..1)")
		outPath     = fs.String("out", "", "output CSV path (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	traces, err := dpss.GenerateTraces(dpss.TraceConfig{
		Days: *days, Seed: *seed, SolarCapacityMW: *solarMW, PeakMW: *peakMW,
	})
	if err != nil {
		return err
	}
	if *penetration >= 0 {
		if err := traces.SetPenetration(*penetration); err != nil {
			return err
		}
	}

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if err := traces.WriteCSV(out); err != nil {
		return err
	}

	stats, err := dpss.TraceStatistics(traces)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "horizon: %d slots; penetration %.1f%%\n",
		traces.Horizon(), 100*traces.RenewablePenetration())
	for _, s := range stats {
		fmt.Fprintf(os.Stderr, "  %-10s mean=%8.3f std=%8.3f min=%8.3f max=%8.3f %s\n",
			s.Name, s.Mean, s.Std, s.Min, s.Max, s.Unit)
	}
	return nil
}
