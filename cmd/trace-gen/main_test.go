package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunWritesCSV(t *testing.T) {
	out := filepath.Join(t.TempDir(), "traces.csv")
	if err := run([]string{"-days", "2", "-out", out}); err != nil {
		t.Fatalf("run failed: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 2*24+1 {
		t.Fatalf("lines = %d, want %d", len(lines), 2*24+1)
	}
	if !strings.HasPrefix(lines[0], "slot,") {
		t.Errorf("header = %q", lines[0])
	}
}

func TestRunPenetrationOverride(t *testing.T) {
	out := filepath.Join(t.TempDir(), "traces.csv")
	if err := run([]string{"-days", "2", "-penetration", "0.5", "-out", out}); err != nil {
		t.Fatalf("run failed: %v", err)
	}
}

func TestRunRejectsBadArgs(t *testing.T) {
	cases := [][]string{
		{"-days", "0"},
		{"-penetration", "0.5", "-solar-mw", "0", "-days", "1"},
		{"-out", filepath.Join(t.TempDir(), "missing-dir", "x.csv"), "-days", "1"},
		{"-bogus"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
