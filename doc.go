// Package smartdpss is a Go implementation of SmartDPSS, the
// cost-minimizing multi-source datacenter power supply controller of
// Deng, Liu, Jin and Wu (ICDCS 2013).
//
// A datacenter power supply system (DPSS) draws energy from a two-market
// smart grid (long-term-ahead and real-time), on-site renewable
// production, a UPS battery, and — beyond the paper — a dispatchable
// on-site generator (the provisioning setting of arXiv:1303.6775),
// serving a mix of delay-sensitive and delay-tolerant demand. SmartDPSS
// is an online two-timescale Lyapunov controller that minimizes long-run
// operation cost without any knowledge of future demand, renewable
// output or prices, trading cost against service delay through a single
// parameter V (Theorem 2's [O(1/V), O(V)] tradeoff).
//
// # Quickstart
//
//	traces, err := smartdpss.GenerateTraces(smartdpss.DefaultTraceConfig())
//	if err != nil { ... }
//	report, err := smartdpss.Simulate(smartdpss.PolicySmartDPSS,
//		smartdpss.DefaultOptions(), traces)
//	if err != nil { ... }
//	fmt.Println(report)
//
// The library also ships the paper's comparison policies (Impatient, two
// clairvoyant offline benchmarks and a receding-horizon lookahead),
// synthetic trace generators standing in for the paper's MIDC solar,
// NYISO price and Google-cluster workload datasets, and an experiment
// harness reproducing every figure of the paper's evaluation.
//
// # On-site generation
//
// Options carries a generator block (GeneratorMW, GeneratorMinLoadFrac,
// GeneratorRampMW, FuelUSDPerMWh, FuelQuadUSD, GeneratorStartupUSD,
// GeneratorStartupLagSlots). With GeneratorMW > 0 every optimizing
// policy — SmartDPSS, the two offline benchmarks and the lookahead
// controller — gains a fourth dispatch arm: fuel-priced output competing
// with the two markets and the battery; Report gains the generator cost
// and energy lines. The Impatient strawman ignores the unit by design
// (it models an operator with no cost optimization at all). With
// GeneratorMW == 0 the subsystem is inert and results are identical to
// generator-free builds.
//
// # Generator fleets, unit commitment and emissions
//
// Options.Fleet generalizes the single unit to N heterogeneous units
// (UnitSpec: capacity, minimum stable load, ramp, fuel curve, startup
// cost/lag, CO₂ intensity), dispatched in merit order; the legacy
// GeneratorMW options are exactly a one-unit fleet. Options.CommitWindow
// W > 1 replaces the per-slot amortized-startup hysteresis with a
// rolling unit-commitment lookahead: starts and stops weigh the
// projected margin over the next W slots (forecast price × the demand
// envelope) against the full startup cost, holding units through the
// short price dips the myopic W ≤ 1 arm flaps on. Report carries
// per-unit accounting (GenUnits) and fleet emissions (GenCO2Kg);
// Options.CarbonUSDPerTon folds each unit's emission intensity into its
// marginal fuel price so dispatch internalizes the carbon bill.
//
// # Price scaling: grid vs fuel
//
// TraceConfig.PriceScale multiplies the two GRID price series
// (long-term and real-time) only — fuel costs never move with it. The
// fuel side has its own axis: TraceConfig.FuelPriceScale sets the mean
// level of a per-slot fuel-price multiplier series applied to every
// unit's fuel curve, and TraceConfig.FuelVolatility adds a seeded
// mean-reverting walk around that level, so fuel can vary over time
// like the gas markets of arXiv:1308.0585. Leaving both at their zero
// values generates no fuel series and reproduces static-fuel runs
// exactly.
//
// # Scenario suite
//
// Every experiment registers itself as a named, tagged Scenario in a
// registry; RunSuite fans the selected scenarios out across a worker
// pool and returns their tables in deterministic registration order:
//
//	tables, err := smartdpss.RunSuite(smartdpss.DefaultSuiteConfig(), "paper")
//
// Selectors are scenario names ("fig6v", "prov-grid", "fleet-uc") or
// tags ("paper", "ext", "provision", "fleet", "geo"); output is
// byte-identical at every parallelism level for a fixed seed, and the
// paper figures are additionally pinned against committed golden
// snapshots (internal/experiments/testdata/golden, enforced by
// TestSuiteGolden).
//
// # Geo-distributed fleets
//
// RunGeo lifts the single-site engine to N sites in different pricing
// regions, coupled by a front end that routes delay-sensitive request
// traffic between them (the workload-modulation formulation of
// arXiv:1308.0585). Each GeoSiteSpec carries its own Options and
// TraceConfig; sites step concurrently — one goroutine per site behind
// a deterministic fixed-order reduce — so a GeoResult is byte-identical
// at every GOMAXPROCS, and a one-site fleet with GeoRouterNone
// reproduces Simulate exactly. GeoRouterGreedy moves load from the most
// expensive region to cheaper ones per slot using only that slot's
// observables; GeoRouterLP solves one coupled routing+supply LP over
// the whole horizon on the sparse simplex and replays its routing
// through each site's controller. The "geo" scenario family sweeps
// price divergence, site count (1→8) and the latency-penalty frontier.
//
// # Batch and streaming: one computation, two drivers
//
// Simulate is a thin loop over the resumable session API. NewSession
// builds a streaming session for the online policies (PolicySmartDPSS,
// PolicyImpatient): each slot is Step(SlotInput) → Decision, then
// Commit() → SlotOutcome, with Status() exposing live totals between
// slots and Finish() producing the same Report Simulate returns.
// NewReplaySession binds a session to a generated trace set (StepReplay
// feeds the next row each slot) and accepts every policy, including the
// clairvoyant offline benchmarks.
//
// The layering guarantee is byte-equivalence: driving a session slot by
// slot — in one process, or split across processes via Snapshot/Restore
// checkpoints — produces a Report byte-identical to batch Simulate over
// the same inputs. Checkpoints embed a configuration digest, so Restore
// refuses state from a differently configured run (ErrSnapshotMismatch)
// instead of resuming one run's state under another run's physics; all
// construction-time failures are branchable via errors.Is with
// ErrInvalidOptions and friends, and field-level causes via errors.As
// with *ValidationError.
//
// cmd/dpss-serve wraps the session in a long-lived daemon: a pluggable
// ingest source (trace replay today; live telemetry adapters behind the
// same interface), periodic atomic checkpoints for crash recovery, and
// an OpenMetrics /metrics endpoint plus /healthz and /status.
//
// # Architecture: a facade over internal packages
//
// This package contains no logic of its own — it re-exports, via type
// aliases and thin wrappers, the layers below:
//
//	smartdpss (public facade: aliases + wrappers, this package)
//	  ├── internal/engine       Options/TraceConfig/Simulate/Session —
//	  │     │                   wires the pieces together behind the facade
//	  │     ├── internal/core       the SmartDPSS controller (P4/P5)
//	  │     ├── internal/baseline   Impatient, offline LPs, lookahead
//	  │     ├── internal/sim        the slot-by-slot execution engine
//	  │     ├── internal/battery    the UPS model (Eq. 3, Nmax budget)
//	  │     ├── internal/generator  dispatchable on-site generation
//	  │     ├── internal/market     the two-timescale grid account
//	  │     └── internal/{workload,solar,wind,pricing,thermal,trace}
//	  │                           synthetic input generators
//	  ├── internal/geo          geo-distributed fleet: per-site
//	  │                         sessions stepped concurrently behind a
//	  │                         deterministic reduce, workload routers
//	  ├── internal/serve        service harness for cmd/dpss-serve:
//	  │                         ingest sources, checkpointing daemon,
//	  │                         OpenMetrics exposition + validator
//	  ├── internal/suite        scenario registry, deterministic worker
//	  │                         pool (Map), memoized trace cache
//	  └── internal/experiments  one registered runner per reproduced
//	                            figure / extension / provisioning study
//
// Keeping the implementation internal means the public surface is the
// stable, documented subset: policies, options, traces, reports, bounds,
// the session API and the suite entry points. cmd/dpss-sim,
// cmd/trace-gen, cmd/experiments and cmd/dpss-serve are thin CLIs over
// the same facade.
package smartdpss
