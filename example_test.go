package smartdpss_test

// Godoc examples for the public API. They run as part of the test suite;
// output lines are checked verbatim, so everything printed must be
// deterministic (seeded generators guarantee that).

import (
	"fmt"
	"log"

	dpss "github.com/smartdpss/smartdpss"
)

// Example runs one week of SmartDPSS and prints whether it beat the
// serve-immediately baseline.
func Example() {
	tc := dpss.DefaultTraceConfig()
	tc.Days = 7
	traces, err := dpss.GenerateTraces(tc)
	if err != nil {
		log.Fatal(err)
	}
	smart, err := dpss.Simulate(dpss.PolicySmartDPSS, dpss.DefaultOptions(), traces)
	if err != nil {
		log.Fatal(err)
	}
	impatient, err := dpss.Simulate(dpss.PolicyImpatient, dpss.DefaultOptions(), traces)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("SmartDPSS cheaper:", smart.TotalCostUSD < impatient.TotalCostUSD)
	// Output:
	// SmartDPSS cheaper: true
}

// ExampleBounds shows the deterministic Theorem 2 guarantees for a
// configuration before running anything.
func ExampleBounds() {
	opts := dpss.DefaultOptions() // V = 1, ε = 0.5, T = 24, Pmax = 150
	b := dpss.Bounds(opts)
	fmt.Printf("Qmax = %.2f MWh\n", b.QMax)
	fmt.Printf("worst-case delay = %d slots\n", b.LambdaMax)
	// Output:
	// Qmax = 7.25 MWh
	// worst-case delay = 28 slots
}

// ExampleTraces_SetPenetration rescales the renewable series to a target
// share of total demand.
func ExampleTraces_SetPenetration() {
	tc := dpss.DefaultTraceConfig()
	tc.Days = 7
	traces, err := dpss.GenerateTraces(tc)
	if err != nil {
		log.Fatal(err)
	}
	if err := traces.SetPenetration(0.5); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("penetration = %.0f%%\n", 100*traces.RenewablePenetration())
	// Output:
	// penetration = 50%
}

// ExampleSimulate_generator equips the datacenter with a dispatchable
// on-site generator (arXiv:1303.6775) whose fuel undercuts the grid and
// shows that SmartDPSS dispatches it to cut cost.
func ExampleSimulate_generator() {
	tc := dpss.DefaultTraceConfig()
	tc.Days = 7
	traces, err := dpss.GenerateTraces(tc)
	if err != nil {
		log.Fatal(err)
	}
	plain, err := dpss.Simulate(dpss.PolicySmartDPSS, dpss.DefaultOptions(), traces)
	if err != nil {
		log.Fatal(err)
	}
	opts := dpss.DefaultOptions()
	opts.GeneratorMW = 0.5          // half a megawatt of on-site capacity
	opts.GeneratorMinLoadFrac = 0.2 // cannot run below 20% of nameplate
	opts.GeneratorStartupUSD = 10
	opts.FuelUSDPerMWh = 30 // cheaper than the grid: near-baseload duty
	withGen, err := dpss.Simulate(dpss.PolicySmartDPSS, opts, traces)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("generator dispatched:", withGen.GenEnergyMWh > 0)
	fmt.Println("on-site generation cheaper:", withGen.TotalCostUSD < plain.TotalCostUSD)
	// Output:
	// generator dispatched: true
	// on-site generation cheaper: true
}

// ExampleNewSession drives the controller slot by slot through the
// streaming session API and checkpoints it halfway: the resumed second
// half completes the exact run the batch Simulate would have produced.
func ExampleNewSession() {
	tc := dpss.DefaultTraceConfig()
	tc.Days = 2
	traces, err := dpss.GenerateTraces(tc)
	if err != nil {
		log.Fatal(err)
	}
	opts := dpss.DefaultOptions()

	sess, err := dpss.NewSession(dpss.PolicySmartDPSS, opts, traces.Horizon())
	if err != nil {
		log.Fatal(err)
	}
	// First half: in a live deployment each input would arrive from
	// building telemetry; here the generated traces stand in.
	for sess.Slot() < traces.Horizon()/2 {
		if _, err := sess.Step(traces.InputAt(sess.Slot())); err != nil {
			log.Fatal(err)
		}
		if _, err := sess.Commit(); err != nil {
			log.Fatal(err)
		}
	}
	checkpoint, err := sess.Snapshot() // persist across restarts
	if err != nil {
		log.Fatal(err)
	}

	// A fresh, identically configured session resumes bit-for-bit.
	resumed, err := dpss.NewSession(dpss.PolicySmartDPSS, opts, traces.Horizon())
	if err != nil {
		log.Fatal(err)
	}
	if err := resumed.Restore(checkpoint); err != nil {
		log.Fatal(err)
	}
	for !resumed.Done() {
		if _, err := resumed.Step(traces.InputAt(resumed.Slot())); err != nil {
			log.Fatal(err)
		}
		if _, err := resumed.Commit(); err != nil {
			log.Fatal(err)
		}
	}
	rep, err := resumed.Finish()
	if err != nil {
		log.Fatal(err)
	}

	batch, err := dpss.Simulate(dpss.PolicySmartDPSS, opts, traces)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("slots:", rep.Slots)
	fmt.Println("matches batch:", rep.TotalCostUSD == batch.TotalCostUSD)
	// Output:
	// slots: 48
	// matches batch: true
}

// ExampleSimulate_lookahead compares SmartDPSS with an MPC controller
// holding six hours of perfect foresight.
func ExampleSimulate_lookahead() {
	tc := dpss.DefaultTraceConfig()
	tc.Days = 7
	traces, err := dpss.GenerateTraces(tc)
	if err != nil {
		log.Fatal(err)
	}
	smart, err := dpss.Simulate(dpss.PolicySmartDPSS, dpss.DefaultOptions(), traces)
	if err != nil {
		log.Fatal(err)
	}
	opts := dpss.DefaultOptions()
	opts.LookaheadWindow = 6
	mpc, err := dpss.Simulate(dpss.PolicyLookahead, opts, traces)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("forecast-free SmartDPSS beats 6h-perfect MPC:",
		smart.TotalCostUSD < mpc.TotalCostUSD)
	// Output:
	// forecast-free SmartDPSS beats 6h-perfect MPC: true
}
