package battery

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func newTestBattery(t *testing.T) *Battery {
	t.Helper()
	b, err := New(Sized(2.0, 15, 1))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestSizedParams(t *testing.T) {
	p := Sized(2.0, 15, 1)
	if math.Abs(p.CapacityMWh-0.5) > 1e-12 {
		t.Errorf("CapacityMWh = %g, want 0.5 (15 min at 2 MW)", p.CapacityMWh)
	}
	if math.Abs(p.MinLevelMWh-2.0/60) > 1e-12 {
		t.Errorf("MinLevelMWh = %g, want %g (1 min at 2 MW)", p.MinLevelMWh, 2.0/60)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("Sized params invalid: %v", err)
	}
}

func TestSizedZeroCapacity(t *testing.T) {
	p := Sized(2.0, 0, 1)
	if p.CapacityMWh != 0 || p.MinLevelMWh != 0 {
		t.Errorf("zero-capacity sizing = %+v", p)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("no-battery params must validate: %v", err)
	}
}

func TestApplyCharge(t *testing.T) {
	b := newTestBattery(t)
	before := b.Level()
	if err := b.Apply(0.1, 0); err != nil {
		t.Fatal(err)
	}
	want := before + 0.1*b.Params().ChargeEff
	if math.Abs(b.Level()-want) > 1e-12 {
		t.Errorf("level = %g, want %g", b.Level(), want)
	}
	if b.Ops() != 1 {
		t.Errorf("ops = %d, want 1", b.Ops())
	}
	if math.Abs(b.OpCostTotal()-0.1) > 1e-12 {
		t.Errorf("op cost = %g, want 0.1", b.OpCostTotal())
	}
}

func TestApplyDischarge(t *testing.T) {
	b := newTestBattery(t)
	before := b.Level()
	if err := b.Apply(0, 0.05); err != nil {
		t.Fatal(err)
	}
	want := before - 0.05*b.Params().DischargeEff
	if math.Abs(b.Level()-want) > 1e-12 {
		t.Errorf("level = %g, want %g", b.Level(), want)
	}
	if b.DischargedTotal() != 0.05 {
		t.Errorf("discharged total = %g", b.DischargedTotal())
	}
}

func TestApplyIdleCostsNothing(t *testing.T) {
	b := newTestBattery(t)
	if err := b.Apply(0, 0); err != nil {
		t.Fatal(err)
	}
	if b.Ops() != 0 || b.OpCostTotal() != 0 {
		t.Errorf("idle slot counted as operation: ops=%d cost=%g", b.Ops(), b.OpCostTotal())
	}
}

func TestApplyRejectsBothDirections(t *testing.T) {
	b := newTestBattery(t)
	if err := b.Apply(0.1, 0.1); !errors.Is(err, ErrBothDirections) {
		t.Fatalf("err = %v, want ErrBothDirections", err)
	}
}

func TestApplyRejectsNegative(t *testing.T) {
	b := newTestBattery(t)
	if err := b.Apply(-0.1, 0); !errors.Is(err, ErrNegative) {
		t.Fatalf("err = %v, want ErrNegative", err)
	}
	if err := b.Apply(0, -0.1); !errors.Is(err, ErrNegative) {
		t.Fatalf("err = %v, want ErrNegative", err)
	}
}

func TestApplyRejectsRateLimit(t *testing.T) {
	b := newTestBattery(t)
	if err := b.Apply(b.Params().MaxChargeMWh+0.01, 0); !errors.Is(err, ErrRateLimit) {
		t.Fatalf("err = %v, want ErrRateLimit", err)
	}
	if err := b.Apply(0, b.Params().MaxDischargeMWh+0.01); !errors.Is(err, ErrRateLimit) {
		t.Fatalf("err = %v, want ErrRateLimit", err)
	}
}

func TestApplyRejectsBounds(t *testing.T) {
	b := newTestBattery(t)
	// Drain to the floor first.
	if err := b.Apply(0, b.MaxDischargeNow()); err != nil {
		t.Fatal(err)
	}
	if err := b.Apply(0, 0.05); !errors.Is(err, ErrBounds) {
		t.Fatalf("discharging past Bmin: err = %v, want ErrBounds", err)
	}
	// Fill to the ceiling.
	for b.MaxChargeNow() > 1e-9 {
		if err := b.Apply(b.MaxChargeNow(), 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Apply(0.05, 0); !errors.Is(err, ErrBounds) {
		t.Fatalf("charging past Bmax: err = %v, want ErrBounds", err)
	}
}

func TestApplyErrorLeavesStateUnchanged(t *testing.T) {
	b := newTestBattery(t)
	level, ops := b.Level(), b.Ops()
	_ = b.Apply(0.1, 0.1) // error
	if b.Level() != level || b.Ops() != ops {
		t.Error("failed Apply mutated state")
	}
}

func TestOpBudget(t *testing.T) {
	p := Sized(2.0, 15, 1)
	p.MaxOps = 2
	b, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Apply(0.01, 0); err != nil {
		t.Fatal(err)
	}
	if err := b.Apply(0, 0.01); err != nil {
		t.Fatal(err)
	}
	if !b.OpsExhausted() {
		t.Fatal("budget should be exhausted after 2 ops")
	}
	if err := b.Apply(0.01, 0); !errors.Is(err, ErrOpBudget) {
		t.Fatalf("err = %v, want ErrOpBudget", err)
	}
	if b.MaxChargeNow() != 0 || b.MaxDischargeNow() != 0 {
		t.Error("exhausted battery must report zero head-room")
	}
}

func TestHeadroomAccessors(t *testing.T) {
	b := newTestBattery(t)
	p := b.Params()
	wantCharge := math.Min(p.MaxChargeMWh, (p.CapacityMWh-b.Level())/p.ChargeEff)
	if got := b.MaxChargeNow(); math.Abs(got-wantCharge) > 1e-12 {
		t.Errorf("MaxChargeNow = %g, want %g", got, wantCharge)
	}
	wantDis := math.Min(p.MaxDischargeMWh, (b.Level()-p.MinLevelMWh)/p.DischargeEff)
	if got := b.MaxDischargeNow(); math.Abs(got-wantDis) > 1e-12 {
		t.Errorf("MaxDischargeNow = %g, want %g", got, wantDis)
	}
}

func TestParamsValidate(t *testing.T) {
	mut := func(f func(*Params)) Params {
		p := Sized(2.0, 15, 1)
		f(&p)
		return p
	}
	bad := []Params{
		mut(func(p *Params) { p.CapacityMWh = -1 }),
		mut(func(p *Params) { p.MinLevelMWh = -1 }),
		mut(func(p *Params) { p.MinLevelMWh = p.CapacityMWh + 1 }),
		mut(func(p *Params) { p.MaxChargeMWh = -1 }),
		mut(func(p *Params) { p.MaxDischargeMWh = -1 }),
		mut(func(p *Params) { p.ChargeEff = 0 }),
		mut(func(p *Params) { p.ChargeEff = 1.2 }),
		mut(func(p *Params) { p.DischargeEff = 0.9 }),
		mut(func(p *Params) { p.OpCostUSD = -1 }),
		mut(func(p *Params) { p.MaxOps = -1 }),
		mut(func(p *Params) { p.InitialMWh = p.CapacityMWh + 1 }),
		mut(func(p *Params) { p.InitialMWh = p.MinLevelMWh - 0.01 }),
	}
	for i, p := range bad {
		if _, err := New(p); err == nil {
			t.Errorf("case %d: invalid params accepted: %+v", i, p)
		}
	}
}

// TestPropertyLevelAlwaysInBounds drives a battery with random admissible
// actions and verifies the paper's availability invariant
// Bmin ≤ b(τ) ≤ Bmax at every step (Theorem 2(2) precondition).
func TestPropertyLevelAlwaysInBounds(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	f := func() bool {
		b, err := New(Sized(2.0, 15, 1))
		if err != nil {
			return false
		}
		p := b.Params()
		for step := 0; step < 200; step++ {
			if r.Intn(2) == 0 {
				if err := b.Apply(r.Float64()*b.MaxChargeNow(), 0); err != nil {
					return false
				}
			} else {
				if err := b.Apply(0, r.Float64()*b.MaxDischargeNow()); err != nil {
					return false
				}
			}
			if b.Level() < p.MinLevelMWh-1e-9 || b.Level() > p.CapacityMWh+1e-9 {
				return false
			}
			if !b.Available() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyEnergyConservation checks that the level change equals
// ηc·charged − ηd·discharged over any admissible action sequence.
func TestPropertyEnergyConservation(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	f := func() bool {
		b, err := New(Sized(2.0, 30, 1))
		if err != nil {
			return false
		}
		start := b.Level()
		for step := 0; step < 100; step++ {
			if r.Intn(2) == 0 {
				_ = b.Apply(r.Float64()*b.MaxChargeNow(), 0)
			} else {
				_ = b.Apply(0, r.Float64()*b.MaxDischargeNow())
			}
		}
		p := b.Params()
		want := start + p.ChargeEff*b.ChargedTotal() - p.DischargeEff*b.DischargedTotal()
		return math.Abs(b.Level()-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
