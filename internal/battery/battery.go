// Package battery models the datacenter UPS energy store of SmartDPSS
// (Sec. II-A.3, II-B.4, II-B.5): a finite battery with capacity bounds
// [Bmin, Bmax], per-slot charge/discharge rate limits Bcmax/Bdmax,
// charge/discharge efficiencies ηc ≤ 1 and ηd ≥ 1, a per-use operation
// cost Cb = Cbuy/Ccycle, and an optional lifetime operation budget Nmax.
//
// Energy accounting follows Eq. (3) of the paper: charging brc increases
// the stored level by ηc·brc; delivering bdc to the load drains ηd·bdc
// from the store. Each slot either charges or discharges, never both
// (brc(τ)·bdc(τ) ≡ 0).
//
// The package owns the battery state machine and its parameter
// validation. internal/sim executes charge/discharge decisions against
// it, internal/core reads its limits for the P5 weights and the shifted
// tracker X(t), internal/baseline copies the same limits into its LP
// bounds, and internal/engine sizes it from Options (battery.Sized).
package battery

import (
	"errors"
	"fmt"
	"math"
)

// Params describes a UPS battery.
type Params struct {
	// CapacityMWh is Bmax, the maximum stored energy.
	CapacityMWh float64
	// MinLevelMWh is Bmin, the availability reserve that must always remain
	// (sized to ride through a power outage, Sec. II-B.4).
	MinLevelMWh float64
	// MaxChargeMWh is Bcmax, the maximum grid-side energy absorbed per slot.
	MaxChargeMWh float64
	// MaxDischargeMWh is Bdmax, the maximum load-side energy delivered per slot.
	MaxDischargeMWh float64
	// ChargeEff is ηc ∈ (0, 1]: stored fraction of absorbed energy.
	ChargeEff float64
	// DischargeEff is ηd ≥ 1: stored energy drained per delivered unit.
	DischargeEff float64
	// OpCostUSD is Cb, charged once per slot in which the battery moves.
	OpCostUSD float64
	// MaxOps is Nmax, the total operation budget over the horizon
	// (0 means unlimited).
	MaxOps int
	// InitialMWh is b(0). It must lie within [MinLevelMWh, CapacityMWh].
	InitialMWh float64
}

// Sized returns paper-style parameters for a battery able to power a
// datacenter peak of peakMW for maxMinutes (Bmax) with a minMinutes
// availability reserve (Bmin), using the constants of Sec. VI-A and
// one-hour fine slots.
func Sized(peakMW, maxMinutes, minMinutes float64) Params {
	return SizedSlot(peakMW, maxMinutes, minMinutes, 60)
}

// SizedSlot is Sized for an arbitrary fine-slot length: capacities are
// slot-independent energies, while the per-slot charge/discharge limits
// scale with the slot duration (the paper's Bcmax = Bdmax = 0.5 MW are
// power ratings).
func SizedSlot(peakMW, maxMinutes, minMinutes float64, slotMinutes int) Params {
	bmax := peakMW * maxMinutes / 60
	bmin := math.Min(peakMW*minMinutes/60, bmax)
	slotHours := float64(slotMinutes) / 60
	return Params{
		CapacityMWh:     bmax,
		MinLevelMWh:     bmin,
		MaxChargeMWh:    0.5 * slotHours,
		MaxDischargeMWh: 0.5 * slotHours,
		ChargeEff:       0.8,
		DischargeEff:    1.25,
		OpCostUSD:       0.1,
		InitialMWh:      bmin + 0.5*(bmax-bmin),
	}
}

// Validate reports parameter errors.
func (p Params) Validate() error {
	switch {
	case p.CapacityMWh < 0:
		return errors.New("battery: negative capacity")
	case p.MinLevelMWh < 0 || p.MinLevelMWh > p.CapacityMWh:
		return errors.New("battery: MinLevelMWh outside [0, CapacityMWh]")
	case p.MaxChargeMWh < 0 || p.MaxDischargeMWh < 0:
		return errors.New("battery: negative rate limit")
	case p.ChargeEff <= 0 || p.ChargeEff > 1:
		return errors.New("battery: ChargeEff must be in (0, 1]")
	case p.DischargeEff < 1:
		return errors.New("battery: DischargeEff must be >= 1")
	case p.OpCostUSD < 0:
		return errors.New("battery: negative operation cost")
	case p.MaxOps < 0:
		return errors.New("battery: negative MaxOps")
	case p.InitialMWh < p.MinLevelMWh || p.InitialMWh > p.CapacityMWh:
		return errors.New("battery: InitialMWh outside [MinLevelMWh, CapacityMWh]")
	}
	return nil
}

// Errors returned by Apply.
var (
	ErrBothDirections = errors.New("battery: cannot charge and discharge in the same slot")
	ErrRateLimit      = errors.New("battery: rate limit exceeded")
	ErrBounds         = errors.New("battery: level bound violated")
	ErrOpBudget       = errors.New("battery: operation budget Nmax exhausted")
	ErrNegative       = errors.New("battery: negative energy amount")
)

// Battery is a stateful UPS instance.
type Battery struct {
	params Params
	level  float64
	ops    int
	// lifetime counters
	chargedMWh    float64 // grid-side energy absorbed
	dischargedMWh float64 // load-side energy delivered
	opCostUSD     float64
}

// New returns a battery initialized to p.InitialMWh.
func New(p Params) (*Battery, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Battery{params: p, level: p.InitialMWh}, nil
}

// Params returns the battery's configuration.
func (b *Battery) Params() Params { return b.params }

// Level returns the current stored energy b(τ) in MWh.
func (b *Battery) Level() float64 { return b.level }

// Ops returns the number of slots in which the battery moved (Σ n(τ)).
func (b *Battery) Ops() int { return b.ops }

// OpCostTotal returns the accumulated operation cost in USD.
func (b *Battery) OpCostTotal() float64 { return b.opCostUSD }

// ChargedTotal returns lifetime grid-side absorbed energy in MWh.
func (b *Battery) ChargedTotal() float64 { return b.chargedMWh }

// DischargedTotal returns lifetime load-side delivered energy in MWh.
func (b *Battery) DischargedTotal() float64 { return b.dischargedMWh }

// Available reports whether the availability reserve holds (b ≥ Bmin).
func (b *Battery) Available() bool { return b.level >= b.params.MinLevelMWh-1e-9 }

// OpsExhausted reports whether the Nmax operation budget is used up.
func (b *Battery) OpsExhausted() bool {
	return b.params.MaxOps > 0 && b.ops >= b.params.MaxOps
}

// MaxChargeNow returns the largest grid-side energy the battery can absorb
// this slot, limited by both the rate cap and the remaining headroom.
func (b *Battery) MaxChargeNow() float64 {
	if b.OpsExhausted() {
		return 0
	}
	room := (b.params.CapacityMWh - b.level) / b.params.ChargeEff
	return math.Max(0, math.Min(b.params.MaxChargeMWh, room))
}

// MaxDischargeNow returns the largest load-side energy the battery can
// deliver this slot without breaching Bmin, limited by the rate cap.
func (b *Battery) MaxDischargeNow() float64 {
	if b.OpsExhausted() {
		return 0
	}
	avail := (b.level - b.params.MinLevelMWh) / b.params.DischargeEff
	return math.Max(0, math.Min(b.params.MaxDischargeMWh, avail))
}

// State is the battery's mutable state, exported for session checkpoints
// (the configuration is not part of it — a checkpoint's config hash pins
// that separately). All fields round-trip exactly through JSON, so a
// restored battery continues bit-for-bit where the snapshot was taken.
type State struct {
	LevelMWh      float64 `json:"levelMWh"`
	Ops           int     `json:"ops"`
	ChargedMWh    float64 `json:"chargedMWh"`
	DischargedMWh float64 `json:"dischargedMWh"`
	OpCostUSD     float64 `json:"opCostUSD"`
}

// State captures the battery's mutable state for a checkpoint.
func (b *Battery) State() State {
	return State{
		LevelMWh:      b.level,
		Ops:           b.ops,
		ChargedMWh:    b.chargedMWh,
		DischargedMWh: b.dischargedMWh,
		OpCostUSD:     b.opCostUSD,
	}
}

// Restore overwrites the battery's mutable state from a checkpoint. The
// level must lie within the configured bounds; lifetime counters are
// taken verbatim.
func (b *Battery) Restore(s State) error {
	if s.LevelMWh < b.params.MinLevelMWh-1e-9 || s.LevelMWh > b.params.CapacityMWh+1e-9 {
		return fmt.Errorf("%w: restored level %g outside [%g, %g]",
			ErrBounds, s.LevelMWh, b.params.MinLevelMWh, b.params.CapacityMWh)
	}
	if s.Ops < 0 {
		return errors.New("battery: negative restored ops count")
	}
	b.level = s.LevelMWh
	b.ops = s.Ops
	b.chargedMWh = s.ChargedMWh
	b.dischargedMWh = s.DischargedMWh
	b.opCostUSD = s.OpCostUSD
	return nil
}

// Apply executes one slot of battery action: absorb charge MWh from the
// supply and/or deliver discharge MWh to the load. Exactly one of the two
// may be positive. The level, operation counter and cost are updated
// atomically; on error the battery is unchanged.
func (b *Battery) Apply(charge, discharge float64) error {
	const eps = 1e-9
	if charge < -eps || discharge < -eps {
		return ErrNegative
	}
	charge = math.Max(0, charge)
	discharge = math.Max(0, discharge)
	if charge > eps && discharge > eps {
		return ErrBothDirections
	}
	if charge <= eps && discharge <= eps {
		return nil // idle slot: no operation counted
	}
	if b.OpsExhausted() {
		return ErrOpBudget
	}
	if charge > b.params.MaxChargeMWh+eps || discharge > b.params.MaxDischargeMWh+eps {
		return fmt.Errorf("%w: charge=%g discharge=%g", ErrRateLimit, charge, discharge)
	}
	next := b.level + charge*b.params.ChargeEff - discharge*b.params.DischargeEff
	if next > b.params.CapacityMWh+eps || next < b.params.MinLevelMWh-eps {
		return fmt.Errorf("%w: level %g -> %g outside [%g, %g]",
			ErrBounds, b.level, next, b.params.MinLevelMWh, b.params.CapacityMWh)
	}
	b.level = math.Min(b.params.CapacityMWh, math.Max(b.params.MinLevelMWh, next))
	b.ops++
	b.opCostUSD += b.params.OpCostUSD
	b.chargedMWh += charge
	b.dischargedMWh += discharge
	return nil
}
