package engine

import (
	"math"
	"testing"
)

// TestGenerateTracesValidation: every invalid TraceConfig axis must be
// rejected with an error, not a bad trace set.
func TestGenerateTracesValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*TraceConfig)
	}{
		{"zero days", func(tc *TraceConfig) { tc.Days = 0 }},
		{"negative days", func(tc *TraceConfig) { tc.Days = -3 }},
		{"negative price scale", func(tc *TraceConfig) { tc.PriceScale = -0.5 }},
		{"negative fuel price scale", func(tc *TraceConfig) { tc.FuelPriceScale = -1 }},
		{"negative fuel volatility", func(tc *TraceConfig) { tc.FuelVolatility = -0.1 }},
		{"fuel volatility >= 1", func(tc *TraceConfig) { tc.FuelVolatility = 1.0 }},
		// NaN makes every ordered comparison false: without explicit
		// finite checks these poisoned configs sailed through the guards.
		{"NaN price scale", func(tc *TraceConfig) { tc.PriceScale = math.NaN() }},
		{"Inf price scale", func(tc *TraceConfig) { tc.PriceScale = math.Inf(1) }},
		{"NaN fuel price scale", func(tc *TraceConfig) { tc.FuelPriceScale = math.NaN() }},
		{"Inf fuel price scale", func(tc *TraceConfig) { tc.FuelPriceScale = math.Inf(1) }},
		{"NaN fuel volatility", func(tc *TraceConfig) { tc.FuelVolatility = math.NaN() }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			tc := DefaultTraceConfig()
			c.mut(&tc)
			if _, err := GenerateTraces(tc); err == nil {
				t.Fatalf("invalid config accepted: %+v", tc)
			}
		})
	}
}

// TestUnitSpecValidation: every poisoned UnitSpec field must be rejected
// by Simulate before it reaches the per-slot physics.
func TestUnitSpecValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*UnitSpec)
	}{
		{"NaN capacity", func(u *UnitSpec) { u.CapacityMW = math.NaN() }},
		{"Inf capacity", func(u *UnitSpec) { u.CapacityMW = math.Inf(1) }},
		{"negative capacity", func(u *UnitSpec) { u.CapacityMW = -1 }},
		{"NaN min load", func(u *UnitSpec) { u.MinLoadFrac = math.NaN() }},
		{"min load above 1", func(u *UnitSpec) { u.MinLoadFrac = 1.5 }},
		{"negative ramp", func(u *UnitSpec) { u.RampMWPerHour = -1 }},
		{"NaN fuel", func(u *UnitSpec) { u.FuelUSDPerMWh = math.NaN() }},
		{"negative fuel", func(u *UnitSpec) { u.FuelUSDPerMWh = -20 }},
		{"Inf fuel quad", func(u *UnitSpec) { u.FuelQuadUSD = math.Inf(1) }},
		{"negative startup", func(u *UnitSpec) { u.StartupUSD = -5 }},
		{"negative lag", func(u *UnitSpec) { u.StartupLagSlots = -1 }},
		{"NaN co2", func(u *UnitSpec) { u.CO2KgPerMWh = math.NaN() }},
	}
	tc := DefaultTraceConfig()
	tc.Days = 1
	traces, err := GenerateTraces(tc)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			u := UnitSpec{CapacityMW: 0.5, MinLoadFrac: 0.2, FuelUSDPerMWh: 40}
			c.mut(&u)
			if err := u.Validate(); err == nil {
				t.Fatalf("poisoned spec accepted by Validate: %+v", u)
			}
			opts := DefaultOptions()
			opts.Fleet = []UnitSpec{u}
			if _, err := Simulate(PolicySmartDPSS, opts, traces); err == nil {
				t.Fatalf("Simulate accepted poisoned fleet unit: %+v", u)
			}
		})
	}
	// The untouched baseline spec must stay valid.
	if err := (UnitSpec{CapacityMW: 0.5, MinLoadFrac: 0.2, FuelUSDPerMWh: 40}).Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

// TestFuelScaleSeriesGating: the fuel series must exist exactly when the
// fuel market is configured, and stay strictly positive.
func TestFuelScaleSeriesGating(t *testing.T) {
	tc := DefaultTraceConfig()
	tc.Days = 2
	plain, err := GenerateTraces(tc)
	if err != nil {
		t.Fatal(err)
	}
	if plain.set.FuelScale != nil {
		t.Fatal("fuel series generated without a fuel market configured")
	}
	if got := plain.set.FuelScaleAt(0); got != 1 {
		t.Fatalf("FuelScaleAt without series = %g, want 1", got)
	}

	tc.FuelPriceScale = 1.5
	tc.FuelVolatility = 0.05
	fueled, err := GenerateTraces(tc)
	if err != nil {
		t.Fatal(err)
	}
	fs := fueled.set.FuelScale
	if fs == nil {
		t.Fatal("no fuel series despite FuelPriceScale=1.5")
	}
	if fs.Len() != plain.set.Horizon() {
		t.Fatalf("fuel series has %d slots, want %d", fs.Len(), plain.set.Horizon())
	}
	if fs.Min() <= 0 {
		t.Fatalf("fuel series has non-positive samples: min=%g", fs.Min())
	}
	if m := fs.Mean(); m < 1.0 || m > 2.0 {
		t.Fatalf("fuel series mean %g far from the 1.5 level", m)
	}
	// The fuel market must not disturb the other generators' seeds.
	if fueled.set.PriceRT.Values[7] != plain.set.PriceRT.Values[7] ||
		fueled.set.DemandDS.Values[7] != plain.set.DemandDS.Values[7] {
		t.Fatal("adding a fuel market changed the grid/demand traces")
	}

	// Zero volatility: flat at the level.
	tc.FuelVolatility = 0
	flat, err := GenerateTraces(tc)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range flat.set.FuelScale.Values {
		if math.Abs(v-1.5) > 1e-12 {
			t.Fatalf("flat fuel series sample %d = %g, want 1.5", i, v)
		}
	}
}

// TestPriceScaleLeavesFuelUntouched pins the PriceScale contract (see
// TraceConfig and doc.go): it multiplies the two GRID price series and
// nothing else — in particular it must not create or scale the fuel
// multiplier series, whose axis is FuelPriceScale.
func TestPriceScaleLeavesFuelUntouched(t *testing.T) {
	base := DefaultTraceConfig()
	base.Days = 2
	plain, err := GenerateTraces(base)
	if err != nil {
		t.Fatal(err)
	}
	scaled := base
	scaled.PriceScale = 2.0
	doubled, err := GenerateTraces(scaled)
	if err != nil {
		t.Fatal(err)
	}
	if doubled.set.FuelScale != nil {
		t.Fatal("PriceScale generated a fuel series")
	}
	for i := range plain.set.PriceLT.Values {
		if doubled.set.PriceLT.Values[i] != 2*plain.set.PriceLT.Values[i] ||
			doubled.set.PriceRT.Values[i] != 2*plain.set.PriceRT.Values[i] {
			t.Fatalf("slot %d: grid prices not scaled by exactly 2", i)
		}
		if doubled.set.DemandDS.Values[i] != plain.set.DemandDS.Values[i] {
			t.Fatalf("slot %d: PriceScale touched demand", i)
		}
	}
	// End to end: a unit's fuel bill per MWh is the configured curve in
	// both worlds — only the grid side moved.
	for _, tr := range []*Traces{plain, doubled} {
		o := DefaultOptions()
		o.PmaxUSD = 400 // keep scaled price spikes under the cap
		o.Fleet = []UnitSpec{{CapacityMW: 0.5, FuelUSDPerMWh: 20}}
		rep, err := Simulate(PolicySmartDPSS, o, tr)
		if err != nil {
			t.Fatal(err)
		}
		if rep.GenEnergyMWh <= 0 {
			t.Fatal("cheap unit never ran")
		}
		if got := rep.GenFuelUSD / rep.GenEnergyMWh; math.Abs(got-20) > 1e-9 {
			t.Fatalf("fuel bill %g USD/MWh, want the configured 20", got)
		}
	}
}

// TestOptionsCoreParamsPlumbing: the Options→core.Params translation
// must scale datacenter-level settings into per-slot quantities.
func TestOptionsCoreParamsPlumbing(t *testing.T) {
	o := DefaultOptions()
	o.SlotMinutes = 15 // h = 0.25
	o.PeakMW = 4.0
	o.GeneratorMW = 1.0
	o.GeneratorMinLoadFrac = 0.5
	o.GeneratorRampMW = 2.0
	o.FuelUSDPerMWh = 60
	p := o.coreParams()

	h := 0.25
	if p.PgridMWh != o.PeakMW*h {
		t.Errorf("PgridMWh = %g, want %g", p.PgridMWh, o.PeakMW*h)
	}
	if p.SmaxMWh != 2*o.PeakMW*h {
		t.Errorf("SmaxMWh = %g, want %g", p.SmaxMWh, 2*o.PeakMW*h)
	}
	g := p.Generator
	if g.CapacityMWh != 1.0*h || g.MinLoadMWh != 0.5*1.0*h {
		t.Errorf("generator window = (%g, %g), want (%g, %g)", g.MinLoadMWh, g.CapacityMWh, 0.5*h, h)
	}
	if g.RampMWh != 2.0*h*h {
		t.Errorf("RampMWh = %g, want %g", g.RampMWh, 2.0*h*h)
	}
	if g.FuelUSDPerMWh != 60 {
		t.Errorf("fuel = %g, want 60", g.FuelUSDPerMWh)
	}
}

// TestOptionsFleetPlumbing: Fleet specs must translate per unit, the
// fuel default must apply, and a carbon price must fold each unit's
// intensity into its marginal price.
func TestOptionsFleetPlumbing(t *testing.T) {
	o := DefaultOptions()
	o.Fleet = []UnitSpec{
		{CapacityMW: 0.5, MinLoadFrac: 0.2, FuelUSDPerMWh: 45, CO2KgPerMWh: 600},
		{CapacityMW: 0.25, StartupUSD: 10}, // fuel 0 → 85 default
	}
	o.CommitWindow = 12
	o.CarbonUSDPerTon = 50
	p := o.coreParams()

	if p.CommitWindow != 12 {
		t.Errorf("CommitWindow = %d, want 12", p.CommitWindow)
	}
	if len(p.Fleet) != 2 {
		t.Fatalf("fleet has %d units, want 2", len(p.Fleet))
	}
	// Carbon: 600 kg/MWh × $50/t = $30/MWh on top of the $45 fuel.
	if got, want := p.Fleet[0].FuelUSDPerMWh, 45+600*50.0/1000; got != want {
		t.Errorf("unit 0 fuel = %g, want %g (carbon folded in)", got, want)
	}
	if p.Fleet[0].CO2KgPerMWh != 600 {
		t.Errorf("unit 0 CO2 intensity lost: %g", p.Fleet[0].CO2KgPerMWh)
	}
	if got, want := p.Fleet[1].FuelUSDPerMWh, 85.0; got != want {
		t.Errorf("unit 1 fuel = %g, want the %g default", got, want)
	}
	if p.Fleet[0].CapacityMWh != 0.5 || p.Fleet[0].MinLoadMWh != 0.2*0.5 {
		t.Errorf("unit 0 window = (%g, %g)", p.Fleet[0].MinLoadMWh, p.Fleet[0].CapacityMWh)
	}
	// The same fleet must reach the engine and baseline configurations.
	if sc := o.simConfig(); len(sc.Fleet) != 2 {
		t.Errorf("simConfig fleet has %d units", len(sc.Fleet))
	}
	if bc := o.baselineConfig(); len(bc.Fleet) != 2 {
		t.Errorf("baselineConfig fleet has %d units", len(bc.Fleet))
	}
}

// TestSimulateRejectsBadFleetOptions: conflicting or invalid fleet
// options must error out of Simulate, not silently misconfigure.
func TestSimulateRejectsBadFleetOptions(t *testing.T) {
	tc := DefaultTraceConfig()
	tc.Days = 1
	traces, err := GenerateTraces(tc)
	if err != nil {
		t.Fatal(err)
	}
	both := DefaultOptions()
	both.GeneratorMW = 0.5
	both.Fleet = []UnitSpec{{CapacityMW: 0.5}}
	if _, err := Simulate(PolicySmartDPSS, both, traces); err == nil {
		t.Error("GeneratorMW+Fleet conflict accepted")
	}
	carbon := DefaultOptions()
	carbon.CarbonUSDPerTon = -1
	if _, err := Simulate(PolicySmartDPSS, carbon, traces); err == nil {
		t.Error("negative carbon price accepted")
	}
	window := DefaultOptions()
	window.CommitWindow = -2
	if _, err := Simulate(PolicySmartDPSS, window, traces); err == nil {
		t.Error("negative CommitWindow accepted")
	}
}
