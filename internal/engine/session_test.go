package engine

import (
	"encoding/json"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

func monthTraces(t *testing.T) *Traces {
	t.Helper()
	traces, err := GenerateTraces(DefaultTraceConfig())
	if err != nil {
		t.Fatal(err)
	}
	return traces
}

func reportJSON(t *testing.T, rep *Report) string {
	t.Helper()
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestSessionSoakMatchesSimulate is the headline equivalence soak: a full
// one-month run driven slot-by-slot through the streaming Session API
// must produce a byte-identical report to batch Simulate — for the
// Lyapunov controller and the strawman baseline.
func TestSessionSoakMatchesSimulate(t *testing.T) {
	traces := monthTraces(t)
	for _, policy := range []Policy{PolicySmartDPSS, PolicyImpatient} {
		t.Run(string(policy), func(t *testing.T) {
			opts := DefaultOptions()
			batch, err := Simulate(policy, opts, traces)
			if err != nil {
				t.Fatal(err)
			}

			s, err := NewSession(policy, opts, traces.Horizon())
			if err != nil {
				t.Fatal(err)
			}
			for !s.Done() {
				if _, err := s.Step(traces.InputAt(s.Slot())); err != nil {
					t.Fatalf("step %d: %v", s.Slot(), err)
				}
				if _, err := s.Commit(); err != nil {
					t.Fatalf("commit %d: %v", s.Slot(), err)
				}
			}
			streamed, err := s.Finish()
			if err != nil {
				t.Fatal(err)
			}

			if a, b := reportJSON(t, batch), reportJSON(t, streamed); a != b {
				t.Errorf("streamed month differs from batch Simulate")
			}
		})
	}
}

// TestReplaySessionMatchesSimulate: the replay convenience loop is the
// exact same computation as Simulate (Simulate is built on it).
func TestReplaySessionMatchesSimulate(t *testing.T) {
	traces := monthTraces(t)
	opts := DefaultOptions()
	batch, err := Simulate(PolicySmartDPSS, opts, traces)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewReplaySession(PolicySmartDPSS, opts, traces)
	if err != nil {
		t.Fatal(err)
	}
	for !s.Done() {
		if _, err := s.StepReplay(); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if reportJSON(t, batch) != reportJSON(t, rep) {
		t.Error("replay session differs from batch Simulate")
	}
}

// TestSnapshotRestoreMidMonth: checkpoint mid-horizon, restore onto a
// fresh session, and the completed run must match the uninterrupted one
// byte for byte — including through the noise-wrapped controller, whose
// RNG position must survive the round trip.
func TestSnapshotRestoreMidMonth(t *testing.T) {
	traces := monthTraces(t)
	for _, tc := range []struct {
		name string
		mut  func(*Options)
	}{
		{"smartdpss", func(*Options) {}},
		{"smartdpss+noise", func(o *Options) { o.ObservationNoise = 0.5; o.NoiseSeed = 7 }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			opts := DefaultOptions()
			tc.mut(&opts)
			want, err := Simulate(PolicySmartDPSS, opts, traces)
			if err != nil {
				t.Fatal(err)
			}

			first, err := NewReplaySession(PolicySmartDPSS, opts, traces)
			if err != nil {
				t.Fatal(err)
			}
			cut := traces.Horizon() / 3
			for first.Slot() < cut {
				if _, err := first.StepReplay(); err != nil {
					t.Fatal(err)
				}
			}
			blob, err := first.Snapshot()
			if err != nil {
				t.Fatal(err)
			}

			second, err := NewReplaySession(PolicySmartDPSS, opts, traces)
			if err != nil {
				t.Fatal(err)
			}
			if err := second.Restore(blob); err != nil {
				t.Fatal(err)
			}
			if second.Slot() != cut {
				t.Fatalf("restored slot = %d, want %d", second.Slot(), cut)
			}
			for !second.Done() {
				if _, err := second.StepReplay(); err != nil {
					t.Fatal(err)
				}
			}
			got, err := second.Finish()
			if err != nil {
				t.Fatal(err)
			}
			if reportJSON(t, want) != reportJSON(t, got) {
				t.Error("restored run differs from uninterrupted run")
			}
		})
	}
}

// TestSnapshotOptionsMismatch: a checkpoint must not restore under any
// different tuning — even one that the sim layer's own Config cannot
// see, like the Lyapunov V parameter.
func TestSnapshotOptionsMismatch(t *testing.T) {
	traces := monthTraces(t)
	opts := DefaultOptions()
	s, err := NewReplaySession(PolicySmartDPSS, opts, traces)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	other := opts
	other.V = opts.V * 2
	s2, err := NewReplaySession(PolicySmartDPSS, other, traces)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Restore(blob); !errors.Is(err, ErrSnapshotMismatch) {
		t.Errorf("restore under different V: err = %v, want ErrSnapshotMismatch", err)
	}

	imp, err := NewReplaySession(PolicyImpatient, opts, traces)
	if err != nil {
		t.Fatal(err)
	}
	if err := imp.Restore(blob); !errors.Is(err, ErrSnapshotMismatch) {
		t.Errorf("restore under different policy: err = %v, want ErrSnapshotMismatch", err)
	}
}

// TestOfflineSnapshotUnsupported: the clairvoyant benchmarks precompute
// their plans and cannot be checkpointed; the API says so explicitly.
func TestOfflineSnapshotUnsupported(t *testing.T) {
	traces := monthTraces(t)
	s, err := NewReplaySession(PolicyOfflineHorizon, DefaultOptions(), traces)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Snapshot(); !errors.Is(err, ErrSnapshotUnsupported) {
		t.Errorf("err = %v, want ErrSnapshotUnsupported", err)
	}
}

// TestErrInvalidOptions: every construction-time validation failure is
// branchable via errors.Is(err, ErrInvalidOptions) while keeping its
// historical message text.
func TestErrInvalidOptions(t *testing.T) {
	traces := monthTraces(t)
	t.Run("bad carbon price", func(t *testing.T) {
		opts := DefaultOptions()
		opts.CarbonUSDPerTon = -1
		_, err := Simulate(PolicySmartDPSS, opts, traces)
		if !errors.Is(err, ErrInvalidOptions) {
			t.Errorf("err = %v, want ErrInvalidOptions", err)
		}
	})
	t.Run("unknown policy", func(t *testing.T) {
		_, err := Simulate(Policy("bogus"), DefaultOptions(), traces)
		if !errors.Is(err, ErrInvalidOptions) {
			t.Errorf("err = %v, want ErrInvalidOptions", err)
		}
	})
	t.Run("offline policy without traces", func(t *testing.T) {
		_, err := NewSession(PolicyOfflineOptimal, DefaultOptions(), 24)
		if !errors.Is(err, ErrInvalidOptions) {
			t.Errorf("err = %v, want ErrInvalidOptions", err)
		}
	})
	t.Run("non-positive horizon", func(t *testing.T) {
		_, err := NewSession(PolicySmartDPSS, DefaultOptions(), 0)
		if !errors.Is(err, ErrInvalidOptions) {
			t.Errorf("err = %v, want ErrInvalidOptions", err)
		}
	})
	t.Run("valid options pass", func(t *testing.T) {
		if _, err := NewSession(PolicySmartDPSS, DefaultOptions(), 24); err != nil {
			t.Errorf("valid session rejected: %v", err)
		}
	})
}

// TestCrossProcessRestore proves the checkpoint survives process death:
// the parent runs a third of the month and writes a checkpoint file; a
// re-executed copy of this test binary restores it, runs the tail and
// reports back; the child's report must match the uninterrupted run
// byte for byte.
func TestCrossProcessRestore(t *testing.T) {
	if os.Getenv("DPSS_RESTORE_HELPER") == "1" {
		crossProcessChild(t)
		return
	}

	traces := monthTraces(t)
	opts := DefaultOptions()
	want, err := Simulate(PolicySmartDPSS, opts, traces)
	if err != nil {
		t.Fatal(err)
	}

	first, err := NewReplaySession(PolicySmartDPSS, opts, traces)
	if err != nil {
		t.Fatal(err)
	}
	cut := traces.Horizon() / 3
	for first.Slot() < cut {
		if _, err := first.StepReplay(); err != nil {
			t.Fatal(err)
		}
	}
	blob, err := first.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	ckpt := filepath.Join(dir, "checkpoint.json")
	out := filepath.Join(dir, "report.json")
	if err := os.WriteFile(ckpt, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command(os.Args[0], "-test.run=TestCrossProcessRestore$")
	cmd.Env = append(os.Environ(),
		"DPSS_RESTORE_HELPER=1",
		"DPSS_RESTORE_CKPT="+ckpt,
		"DPSS_RESTORE_OUT="+out,
	)
	if outp, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("helper process failed: %v\n%s", err, outp)
	}

	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if reportJSON(t, want) != string(got) {
		t.Error("cross-process restored run differs from uninterrupted run")
	}
}

// crossProcessChild is the re-executed half of TestCrossProcessRestore:
// a fresh process with no shared memory, only the checkpoint file.
func crossProcessChild(t *testing.T) {
	ckpt := os.Getenv("DPSS_RESTORE_CKPT")
	out := os.Getenv("DPSS_RESTORE_OUT")
	blob, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	// The trace config is deterministic, so the child regenerates the
	// identical world the parent simulated.
	traces, err := GenerateTraces(DefaultTraceConfig())
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewReplaySession(PolicySmartDPSS, DefaultOptions(), traces)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Restore(blob); err != nil {
		t.Fatal(err)
	}
	for !s.Done() {
		if _, err := s.StepReplay(); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestSessionAccessors covers the monitoring surface the daemon scrapes.
func TestSessionAccessors(t *testing.T) {
	traces := monthTraces(t)
	s, err := NewReplaySession(PolicySmartDPSS, DefaultOptions(), traces)
	if err != nil {
		t.Fatal(err)
	}
	if s.Policy() != PolicySmartDPSS {
		t.Errorf("policy = %q", s.Policy())
	}
	if s.Horizon() != traces.Horizon() {
		t.Errorf("horizon = %d, want %d", s.Horizon(), traces.Horizon())
	}
	for i := 0; i < 48; i++ {
		if _, err := s.StepReplay(); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Status()
	if st.Slot != 48 || st.TotalCostUSD <= 0 {
		t.Errorf("status slot=%d cost=%g", st.Slot, st.TotalCostUSD)
	}
	if s.LPFailures() != 0 {
		t.Errorf("LPFailures = %d, want 0 for the closed-form path", s.LPFailures())
	}
	if name := s.ControllerName(); name == "" {
		t.Error("empty controller name")
	}
	if s.Pending() {
		t.Error("pending between slots")
	}
}

// TestStreamingSessionRejectsStepReplay: a session built without traces
// cannot replay.
func TestStreamingSessionRejectsStepReplay(t *testing.T) {
	s, err := NewSession(PolicySmartDPSS, DefaultOptions(), 24)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.StepReplay(); err == nil {
		t.Error("StepReplay on a streaming session succeeded")
	}
}
