// Package engine holds the SmartDPSS implementation behind the public
// smartdpss package: policies, options, trace generation and the
// simulation entry point. The root package re-exports everything here
// via type aliases and thin wrappers; internal packages (experiments,
// suite) import engine directly so they can sit below the public facade
// without creating an import cycle.
package engine

import (
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"

	"github.com/smartdpss/smartdpss/internal/baseline"
	"github.com/smartdpss/smartdpss/internal/battery"
	"github.com/smartdpss/smartdpss/internal/core"
	"github.com/smartdpss/smartdpss/internal/generator"
	"github.com/smartdpss/smartdpss/internal/market"
	"github.com/smartdpss/smartdpss/internal/pricing"
	"github.com/smartdpss/smartdpss/internal/sim"
	"github.com/smartdpss/smartdpss/internal/solar"
	"github.com/smartdpss/smartdpss/internal/thermal"
	"github.com/smartdpss/smartdpss/internal/trace"
	"github.com/smartdpss/smartdpss/internal/wind"
	"github.com/smartdpss/smartdpss/internal/workload"
)

// Policy selects a control algorithm.
type Policy string

// Available policies.
const (
	// PolicySmartDPSS is the paper's online Lyapunov controller.
	PolicySmartDPSS Policy = "smartdpss"
	// PolicyImpatient serves all demand immediately (Sec. VI-A strawman).
	PolicyImpatient Policy = "impatient"
	// PolicyOfflineOptimal is the clairvoyant per-interval benchmark
	// (paper Sec. II-D).
	PolicyOfflineOptimal Policy = "offline"
	// PolicyOfflineHorizon is a single clairvoyant LP over the whole
	// horizon; use only on short horizons.
	PolicyOfflineHorizon Policy = "offline-horizon"
	// PolicyLookahead is a receding-horizon (MPC) controller with
	// Options.LookaheadWindow fine slots of perfect foresight — the
	// "T-Step Lookahead" family of the paper's related work.
	PolicyLookahead Policy = "lookahead"
	// PolicyLyapunov is the forecast-free stored-energy baseline of
	// Urgaonkar et al. (arXiv:1103.3099): price-threshold battery
	// charge/discharge around a perturbed target level, from
	// slot-observable state only. Tuned by Options.LyapunovV and
	// Options.LyapunovTheta.
	PolicyLyapunov Policy = "lyapunov"
)

// Report is the simulation outcome: cost decomposition, energy totals,
// delay statistics, battery and availability accounting.
type Report = sim.Report

// Options tunes the controller and the simulated plant.
type Options struct {
	// V is the Lyapunov cost–delay tradeoff parameter (paper Fig. 6(a,b)).
	V float64
	// Epsilon is the delay-queue growth parameter ε (paper Fig. 7).
	Epsilon float64
	// T is the number of fine slots per coarse slot (paper Fig. 6(c,d)).
	T int
	// SlotMinutes is the fine-slot length; the paper uses 15 or 60 minutes
	// (Sec. II). Zero means 60. It must match the traces' resolution.
	SlotMinutes int
	// PeakMW sizes the datacenter (grid cap Pgrid and battery sizing).
	PeakMW float64
	// BatteryMinutes sizes Bmax as minutes of peak demand (0 disables the
	// battery; the paper uses 0, 15 and 30).
	BatteryMinutes float64
	// BatteryMinMinutes sizes the availability reserve Bmin.
	BatteryMinMinutes float64
	// BatteryReferenceMW, when positive, sizes the battery against this
	// peak instead of PeakMW. The scaling experiment (Fig. 10) grows the
	// datacenter while the UPS "stays fixed due to limits of space and
	// capital cost" (Sec. V-C).
	BatteryReferenceMW float64
	// PmaxUSD is the market price cap.
	PmaxUSD float64
	// DisableLongTerm removes the long-term-ahead market ("RTM" in Fig. 7).
	DisableLongTerm bool
	// UseLP selects the simplex-based subproblem solver over the
	// closed-form one (identical decisions, slower; for validation).
	UseLP bool
	// BatteryMaxOps is Nmax, the UPS operation budget over the horizon
	// (Eq. 9); zero means unlimited. Once exhausted the battery freezes
	// and the controller falls back to grid-only operation.
	BatteryMaxOps int
	// PeakChargeUSDPerMW applies an optional demand charge to the peak
	// grid draw (the paper's declared future work on peak management,
	// Sec. IV-C); reported separately from Cost(τ).
	PeakChargeUSDPerMW float64
	// SnapshotPlanning makes SmartDPSS plan each coarse interval from the
	// boundary-slot snapshot (the paper's literal Algorithm 1) instead of
	// the previous interval's trailing means — an ablation switch.
	SnapshotPlanning bool
	// LookaheadWindow is the foresight length (fine slots) of
	// PolicyLookahead; zero defaults to one coarse interval (T).
	LookaheadWindow int
	// LyapunovV is the cost-vs-queue weight of PolicyLyapunov's battery
	// thresholds; zero selects the scale-aware default (usable battery
	// span divided by PmaxUSD). Exposed to the tuner.
	LyapunovV float64
	// LyapunovTheta places PolicyLyapunov's battery target level as a
	// fraction of the usable band [Bmin, Bmax]; zero defaults to 0.6.
	LyapunovTheta float64
	// HorizonLPDense forces PolicyOfflineHorizon onto the legacy dense
	// chain LP instead of the sparse staircase formulation. Same optimal
	// objective, quadratic in the horizon — a benchmark/debugging knob
	// that cannot reach annual scale.
	HorizonLPDense bool
	// GeneratorMW is the dispatchable on-site generation capacity in MW
	// (arXiv:1303.6775's self-generation source). Zero disables the
	// generator entirely, reproducing generator-free results exactly;
	// every other Generator*/Fuel* field is then ignored.
	GeneratorMW float64
	// GeneratorMinLoadFrac is the minimum stable load as a fraction of
	// GeneratorMW: a running unit cannot be dispatched below it.
	GeneratorMinLoadFrac float64
	// GeneratorRampMW bounds the unit's output increase in MW per hour
	// while synchronized (0 means unconstrained).
	GeneratorRampMW float64
	// FuelUSDPerMWh is the linear fuel price of the generator's cost
	// curve Fuel(g) = b·g + c·g². Zero means the 85 USD/MWh default.
	FuelUSDPerMWh float64
	// FuelQuadUSD is the quadratic fuel-curve coefficient c (USD/MWh²).
	FuelQuadUSD float64
	// GeneratorStartupUSD is the fixed cost per cold start.
	GeneratorStartupUSD float64
	// GeneratorStartupLagSlots is the synchronization delay in fine
	// slots between a start request and the first delivered energy.
	GeneratorStartupLagSlots int
	// Fleet configures a multi-unit on-site generation fleet (the
	// generalization of the single GeneratorMW unit). Units keep their
	// order; setting both Fleet and GeneratorMW is a configuration
	// error. A one-unit Fleet with the same parameters reproduces the
	// GeneratorMW run exactly, and an empty Fleet is exactly
	// generation-free.
	Fleet []UnitSpec
	// CommitWindow is the unit-commitment lookahead W in fine slots:
	// with W > 1 the controller decides fleet starts/stops from the
	// projected margin over the next W slots instead of per-slot
	// amortized hysteresis (the W ≤ 1 myopic default, which is the
	// pre-fleet behavior).
	CommitWindow int
	// CarbonUSDPerTon is an optional carbon price: each unit's emission
	// intensity (UnitSpec.CO2KgPerMWh) folds into its marginal fuel
	// price at CarbonUSDPerTon/1000 USD per kg, so dispatch economics
	// and the reported fuel bill internalize emissions. Zero leaves
	// dispatch purely fuel-priced; emissions are reported either way.
	CarbonUSDPerTon float64
	// ObservationNoise adds uniform ±frac multiplicative errors to the
	// controller's view of demand, renewables and prices (Fig. 9).
	ObservationNoise float64
	// NoiseSeed seeds the observation noise stream.
	NoiseSeed int64
	// KeepSeries retains per-slot cost/backlog/battery series in the
	// report.
	KeepSeries bool
}

// UnitSpec describes one unit of an on-site generation fleet in
// datacenter-level units (MW and fractions; the engine converts to
// per-slot MWh like the single-generator options).
type UnitSpec struct {
	// CapacityMW is the unit's nameplate power (0 disables the unit).
	CapacityMW float64
	// MinLoadFrac is the minimum stable load as a fraction of
	// CapacityMW.
	MinLoadFrac float64
	// RampMWPerHour bounds the output increase while synchronized
	// (0 means unconstrained).
	RampMWPerHour float64
	// FuelUSDPerMWh is the linear fuel price b of Fuel(g) = b·g + c·g².
	// Zero means the 85 USD/MWh default.
	FuelUSDPerMWh float64
	// FuelQuadUSD is the quadratic fuel-curve coefficient c (USD/MWh²).
	FuelQuadUSD float64
	// StartupUSD is the fixed cost per cold start.
	StartupUSD float64
	// StartupLagSlots is the synchronization delay in fine slots.
	StartupLagSlots int
	// CO2KgPerMWh is the emission intensity (kg CO₂ per delivered MWh);
	// see Options.CarbonUSDPerTon.
	CO2KgPerMWh float64
}

// Validate rejects non-finite and negative unit parameters before they
// are converted to per-slot physics. Without it, a NaN or −Inf spec
// field would silently disable the unit (every guard comparison is false
// for NaN) or default a negative fuel price to the 85 USD/MWh fallback,
// instead of surfacing the configuration error.
func (u UnitSpec) Validate() error {
	fields := [...]struct {
		name string
		v    float64
	}{
		{"CapacityMW", u.CapacityMW},
		{"MinLoadFrac", u.MinLoadFrac},
		{"RampMWPerHour", u.RampMWPerHour},
		{"FuelUSDPerMWh", u.FuelUSDPerMWh},
		{"FuelQuadUSD", u.FuelQuadUSD},
		{"StartupUSD", u.StartupUSD},
		{"CO2KgPerMWh", u.CO2KgPerMWh},
	}
	for _, f := range fields {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("smartdpss: unit %s is not finite", f.name)
		}
		if f.v < 0 {
			return fmt.Errorf("smartdpss: negative unit %s", f.name)
		}
	}
	if u.MinLoadFrac > 1 {
		return errors.New("smartdpss: unit MinLoadFrac above 1")
	}
	if u.StartupLagSlots < 0 {
		return errors.New("smartdpss: negative unit StartupLagSlots")
	}
	return nil
}

// DefaultOptions mirrors the paper's Sec. VI-A defaults: V = 1, ε = 0.5,
// T = 24 hourly slots, a 2 MW datacenter and a 15-minute UPS.
func DefaultOptions() Options {
	return Options{
		V:                 1.0,
		Epsilon:           0.5,
		T:                 24,
		PeakMW:            2.0,
		BatteryMinutes:    15,
		BatteryMinMinutes: 1,
		PmaxUSD:           150,
	}
}

// slotHours returns the fine-slot duration in hours (default 1).
func (o Options) slotHours() float64 {
	if o.SlotMinutes <= 0 {
		return 1
	}
	return float64(o.SlotMinutes) / 60
}

// coreParams translates Options into the controller configuration.
func (o Options) coreParams() core.Params {
	h := o.slotHours()
	p := core.DefaultParams()
	p.V = o.V
	p.Epsilon = o.Epsilon
	p.T = o.T
	p.PmaxUSD = o.PmaxUSD
	p.PgridMWh = o.PeakMW * h
	p.SmaxMWh = 2 * o.PeakMW * h
	// Service and arrival caps are datacenter capabilities: they scale
	// with the installation (Fig. 10 grows the system while the UPS
	// stays fixed).
	p.SdtMaxMWh = o.PeakMW / 2 * h
	p.DdtMaxMWh = o.PeakMW / 2 * h
	p.Battery = batteryParams(o)
	p.Generator = generatorParams(o)
	p.Fleet = fleetParams(o)
	p.CommitWindow = o.CommitWindow
	p.DisableLongTerm = o.DisableLongTerm
	p.UseLP = o.UseLP
	p.SnapshotPlanning = o.SnapshotPlanning
	return p
}

// baselineConfig translates Options into the baseline configuration.
func (o Options) baselineConfig() baseline.Config {
	h := o.slotHours()
	c := baseline.DefaultConfig()
	c.T = o.T
	c.PgridMWh = o.PeakMW * h
	c.PmaxUSD = o.PmaxUSD
	c.SmaxMWh = 2 * o.PeakMW * h
	c.SdtMaxMWh = o.PeakMW / 2 * h
	c.Battery = batteryParams(o)
	c.Generator = generatorParams(o)
	c.Fleet = fleetParams(o)
	c.HorizonDense = o.HorizonLPDense
	return c
}

// BaselineConfig exposes the options→baseline translation for internal
// consumers that build baseline solvers directly over engine options —
// the geo coupled routing+supply LP constructs one baseline.Config per
// site. The root facade does not re-export it.
func (o Options) BaselineConfig() baseline.Config { return o.baselineConfig() }

func batteryParams(o Options) battery.Params {
	ref := o.PeakMW
	if o.BatteryReferenceMW > 0 {
		ref = o.BatteryReferenceMW
	}
	slotMinutes := o.SlotMinutes
	if slotMinutes <= 0 {
		slotMinutes = 60
	}
	p := battery.SizedSlot(ref, o.BatteryMinutes, o.BatteryMinMinutes, slotMinutes)
	p.MaxOps = o.BatteryMaxOps
	return p
}

// generatorParams translates the generator options into slot-scaled unit
// parameters. A zero GeneratorMW returns the zero value — no generator —
// regardless of the other fields, so generator-free configurations are
// reproduced exactly.
func generatorParams(o Options) generator.Params {
	if o.GeneratorMW <= 0 {
		return generator.Params{}
	}
	h := o.slotHours()
	fuel := o.FuelUSDPerMWh
	if fuel <= 0 {
		fuel = 85
	}
	p := generator.Params{
		CapacityMWh: o.GeneratorMW * h,
		MinLoadMWh:  o.GeneratorMinLoadFrac * o.GeneratorMW * h,
		// MW/h → MWh per slot: the per-slot power step is RampMW·h,
		// and that power sustained for one slot is another factor h.
		RampMWh:         o.GeneratorRampMW * h * h,
		FuelUSDPerMWh:   fuel,
		FuelQuadUSD:     o.FuelQuadUSD,
		StartupUSD:      o.GeneratorStartupUSD,
		StartupLagSlots: o.GeneratorStartupLagSlots,
	}
	return p
}

// fleetParams translates the fleet options into slot-scaled unit
// parameters. A configured carbon price folds each unit's emission
// intensity into its linear fuel price, so merit order, commitment and
// the billed fuel cost all internalize emissions.
func fleetParams(o Options) []generator.Params {
	if len(o.Fleet) == 0 {
		return nil
	}
	h := o.slotHours()
	out := make([]generator.Params, len(o.Fleet))
	for i, u := range o.Fleet {
		fuel := u.FuelUSDPerMWh
		if fuel <= 0 {
			fuel = 85
		}
		fuel += u.CO2KgPerMWh * o.CarbonUSDPerTon / 1000
		out[i] = generator.Params{
			CapacityMWh: u.CapacityMW * h,
			MinLoadMWh:  u.MinLoadFrac * u.CapacityMW * h,
			// MW/h → MWh per slot, as in generatorParams.
			RampMWh:         u.RampMWPerHour * h * h,
			FuelUSDPerMWh:   fuel,
			FuelQuadUSD:     u.FuelQuadUSD,
			StartupUSD:      u.StartupUSD,
			StartupLagSlots: u.StartupLagSlots,
			CO2KgPerMWh:     u.CO2KgPerMWh,
		}
	}
	return out
}

// simConfig translates Options into the engine configuration.
func (o Options) simConfig() sim.Config {
	p := o.coreParams()
	return sim.Config{
		Battery:            p.Battery,
		Generator:          p.Generator,
		Fleet:              p.Fleet,
		Market:             market.Params{PgridMWh: p.PgridMWh, PmaxUSD: p.PmaxUSD},
		WasteCostUSD:       p.WasteCostUSD,
		EmergencyCostUSD:   p.EmergencyCostUSD,
		SdtMaxMWh:          p.SdtMaxMWh,
		SmaxMWh:            p.SmaxMWh,
		PeakChargeUSDPerMW: o.PeakChargeUSDPerMW,
		KeepSeries:         o.KeepSeries,
	}
}

// TraceConfig parameterizes the synthetic January scenario standing in for
// the paper's MIDC solar, NYISO price and Google-cluster workload traces.
type TraceConfig struct {
	// Days is the horizon length (the paper uses 31).
	Days int
	// Seed drives all generators (each gets a derived sub-seed).
	Seed int64
	// SolarCapacityMW is the solar plant size.
	SolarCapacityMW float64
	// WindCapacityMW is the wind farm size (0 disables wind; the paper
	// names both "solar and wind energies" as DPSS renewable sources).
	WindCapacityMW float64
	// PeakMW is the datacenter peak (grid cap for clipping).
	PeakMW float64
	// SlotMinutes is the trace resolution (0 means 60; the paper uses 15
	// or 60 minutes).
	SlotMinutes int
	// StartDayOfYear shifts the season (0 means Jan 1, the paper's month;
	// 172 is late June for summer solar studies).
	StartDayOfYear int
	// PriceScale multiplies both generated GRID price series (long-term
	// and real-time) after generation; 0 or 1 leaves them unchanged. It
	// never touches fuel costs — fuel has its own axis below — so it
	// moves the grid-price level against fixed fuel prices, the axis of
	// the on-site provisioning economics (arXiv:1303.6775): at
	// PriceScale below the fuel/grid break-even the generator is idle
	// capital, above it self-generation displaces the markets.
	PriceScale float64
	// FuelPriceScale is the fuel-side counterpart of PriceScale: the
	// mean level of a per-slot fuel-price multiplier series applied to
	// every generation unit's fuel curve (grid prices are untouched).
	// 0 or 1 with zero FuelVolatility leaves fuel at the configured
	// static price and generates no series, reproducing fuel-trace-free
	// runs exactly.
	FuelPriceScale float64
	// FuelVolatility adds a seeded mean-reverting walk around the
	// FuelPriceScale level (fractional per-slot step, e.g. 0.02), so
	// fuel prices vary over time like the volatile gas markets of
	// arXiv:1308.0585. Zero keeps the multiplier flat.
	FuelVolatility float64
}

// DefaultTraceConfig returns the one-month default scenario. The solar
// plant is sized so that winter-January production covers roughly 15% of
// demand, in line with the visible solar share of the paper's Fig. 5.
func DefaultTraceConfig() TraceConfig {
	return TraceConfig{Days: 31, Seed: 1, SolarCapacityMW: 3.0, PeakMW: 2.0}
}

// Traces bundles the five input series of a simulation.
type Traces struct {
	set *trace.Set
}

// TracesFromSet wraps an existing trace set as engine traces. Internal
// consumers that derive new sets from generated ones — the geo router
// rewrites per-site demand series — use it to re-enter the engine API;
// the set is validated when a session is built over it.
func TracesFromSet(set *trace.Set) *Traces { return &Traces{set: set} }

// Set exposes the underlying trace set for internal consumers (the geo
// router reads demand and price series directly). The root facade does
// not re-export it; external callers stay behind the Traces methods.
func (t *Traces) Set() *trace.Set { return t.set }

// GenerateTraces builds the synthetic trace set: interactive plus batch
// demand, solar production, and two-timescale prices.
func GenerateTraces(tc TraceConfig) (*Traces, error) {
	if tc.Days <= 0 {
		return nil, errors.New("smartdpss: Days must be positive")
	}
	slotMinutes := tc.SlotMinutes
	if slotMinutes <= 0 {
		slotMinutes = 60
	}
	rng := rand.New(rand.NewSource(tc.Seed))
	wc := workload.Defaults()
	wc.Days = tc.Days
	wc.SlotMinutes = slotMinutes
	wc.PgridMW = tc.PeakMW
	wc.Seed = rng.Int63()
	ds, dt, err := workload.Generate(wc)
	if err != nil {
		return nil, fmt.Errorf("smartdpss: workload: %w", err)
	}
	sc := solar.Defaults()
	sc.Days = tc.Days
	sc.SlotMinutes = slotMinutes
	sc.CapacityMW = tc.SolarCapacityMW
	if tc.StartDayOfYear > 0 {
		sc.StartDayOfYear = tc.StartDayOfYear
	}
	sc.Seed = rng.Int63()
	sun, err := solar.Generate(sc)
	if err != nil {
		return nil, fmt.Errorf("smartdpss: solar: %w", err)
	}
	renewable := sun
	renewable.Name = "renewable"
	if tc.WindCapacityMW > 0 {
		wcfg := wind.Defaults()
		wcfg.Days = tc.Days
		wcfg.SlotMinutes = slotMinutes
		wcfg.CapacityMW = tc.WindCapacityMW
		wcfg.Seed = rng.Int63()
		gusts, err := wind.Generate(wcfg)
		if err != nil {
			return nil, fmt.Errorf("smartdpss: wind: %w", err)
		}
		if _, err := renewable.AddSeries(gusts); err != nil {
			return nil, fmt.Errorf("smartdpss: renewable mix: %w", err)
		}
	}
	pc := pricing.Defaults()
	pc.Days = tc.Days
	pc.SlotMinutes = slotMinutes
	pc.Seed = rng.Int63()
	lt, rt, err := pricing.Generate(pc)
	if err != nil {
		return nil, fmt.Errorf("smartdpss: pricing: %w", err)
	}
	if tc.PriceScale < 0 || math.IsNaN(tc.PriceScale) || math.IsInf(tc.PriceScale, 0) {
		return nil, errors.New("smartdpss: PriceScale must be finite and non-negative")
	}
	if tc.PriceScale > 0 && tc.PriceScale != 1 {
		for _, sr := range []*trace.Series{lt, rt} {
			for i, v := range sr.Values {
				sr.Values[i] = v * tc.PriceScale
			}
		}
	}
	set := &trace.Set{DemandDS: ds, DemandDT: dt, Renewable: renewable, PriceLT: lt, PriceRT: rt}
	// NaN needs explicit rejection in both guards: every comparison below
	// is false for NaN, so a NaN scale would otherwise slip through as "no
	// fuel market configured" and a NaN volatility as "flat multiplier".
	if tc.FuelPriceScale < 0 || math.IsNaN(tc.FuelPriceScale) || math.IsInf(tc.FuelPriceScale, 0) {
		return nil, errors.New("smartdpss: FuelPriceScale must be finite and non-negative")
	}
	if !(tc.FuelVolatility >= 0 && tc.FuelVolatility < 1) {
		return nil, errors.New("smartdpss: FuelVolatility must be in [0, 1)")
	}
	if (tc.FuelPriceScale > 0 && tc.FuelPriceScale != 1) || tc.FuelVolatility > 0 {
		// The fuel seed is drawn last so that configurations without a
		// fuel market consume exactly the pre-fuel-trace seed sequence.
		set.FuelScale = fuelScaleSeries(tc, slotMinutes, ds.Len(), rng.Int63())
	}
	if err := set.Validate(); err != nil {
		return nil, fmt.Errorf("smartdpss: traces: %w", err)
	}
	return &Traces{set: set}, nil
}

// fuelScaleSeries builds the per-slot fuel-price multiplier: a seeded
// mean-reverting walk (reversion 0.05 per slot) around the
// FuelPriceScale level, clipped to stay strictly positive. With zero
// volatility the series is flat at the level — a pure static rescale of
// every unit's fuel curve over time.
func fuelScaleSeries(tc TraceConfig, slotMinutes, slots int, seed int64) *trace.Series {
	level := tc.FuelPriceScale
	if level <= 0 {
		level = 1
	}
	rng := rand.New(rand.NewSource(seed))
	sr := trace.New("fuel_scale", "x", slotMinutes, slots)
	x := 1.0
	for i := range sr.Values {
		sr.Values[i] = level * x
		x += 0.05*(1-x) + tc.FuelVolatility*(2*rng.Float64()-1)
		if x < 0.1 {
			x = 0.1
		}
	}
	return sr
}

// Horizon returns the number of fine slots.
func (t *Traces) Horizon() int { return t.set.Horizon() }

// Clone deep-copies the traces.
func (t *Traces) Clone() *Traces { return &Traces{set: t.set.Clone()} }

// CloneInto deep-copies the traces into dst, reusing dst's buffers where
// the shapes allow, and returns dst (freshly allocated when nil). Sweep
// engines recycle one buffer set across many points this way instead of
// paying a full deep copy per point.
func (t *Traces) CloneInto(dst *Traces) *Traces {
	if dst == nil {
		dst = &Traces{}
	}
	dst.set = t.set.CloneInto(dst.set)
	return dst
}

// ScaleSystem multiplies demand and renewables by β (the system expansion
// of Sec. V-C / Fig. 10); prices are unchanged.
func (t *Traces) ScaleSystem(beta float64) *Traces {
	t.set.ScaleSystem(beta)
	return t
}

// RenewablePenetration returns Σrenewable / Σdemand (Fig. 8's x-axis).
func (t *Traces) RenewablePenetration() float64 { return t.set.RenewablePenetration() }

// SetPenetration rescales the renewable series to the target penetration.
func (t *Traces) SetPenetration(p float64) error { return t.set.SetPenetration(p) }

// ScaleDemandVariation stretches demand around its mean by factor k
// (Fig. 8's demand-variation axis); the mean is preserved up to clipping.
func (t *Traces) ScaleDemandVariation(k float64) error { return t.set.ScaleDemandVariation(k) }

// PerturbUniform returns a copy of the traces with every sample of every
// series multiplied by an independent factor drawn uniformly from
// [1−frac, 1+frac], clipping prices to [0, pmax] and energy to
// non-negative. This is the paper's Fig. 9 protocol: the controller makes
// all decisions on (and is evaluated against) the erroneous dataset.
func (t *Traces) PerturbUniform(seed int64, frac, pmax float64) (*Traces, error) {
	if frac < 0 || frac >= 1 {
		return nil, errors.New("smartdpss: perturbation fraction must be in [0, 1)")
	}
	rng := rand.New(rand.NewSource(seed))
	out := t.Clone()
	perturb := func(sr *trace.Series, hi float64) {
		for i, v := range sr.Values {
			nv := v * (1 + frac*(2*rng.Float64()-1))
			if nv < 0 {
				nv = 0
			}
			if hi > 0 && nv > hi {
				nv = hi
			}
			sr.Values[i] = nv
		}
	}
	perturb(out.set.DemandDS, 0)
	perturb(out.set.DemandDT, 0)
	perturb(out.set.Renewable, 0)
	perturb(out.set.PriceLT, pmax)
	perturb(out.set.PriceRT, pmax)
	return out, nil
}

// DemandStdDev returns the standard deviation of total demand per slot
// (Fig. 8's demand-variation axis).
func (t *Traces) DemandStdDev() float64 { return t.set.TotalDemand().StdDev() }

// CoolingConfig parameterizes the cooling coupling of ApplyCooling.
type CoolingConfig struct {
	// MeanTempC is the long-run outside temperature (2 = winter site,
	// ~26 = summer chiller regime).
	MeanTempC float64
	// Seed drives the temperature generator.
	Seed int64
	// PgridMW caps the coupled facility demand (0 uses 2 MW).
	PgridMW float64
}

// ApplyCooling couples the demand traces through an outside-temperature
// trace and a PUE curve (the paper's declared cooling-cost future work,
// Sec. IV-C): below the free-cooling threshold the facility runs at the
// base PUE, above it chiller load grows with temperature. It returns the
// average applied PUE.
func (t *Traces) ApplyCooling(cc CoolingConfig) (float64, error) {
	tc := thermal.Defaults()
	tc.Days = t.set.Horizon() * t.set.DemandDS.SlotMinutes / (24 * 60)
	if tc.Days <= 0 {
		return 0, errors.New("smartdpss: horizon shorter than one day")
	}
	tc.SlotMinutes = t.set.DemandDS.SlotMinutes
	tc.MeanC = cc.MeanTempC
	if cc.Seed != 0 {
		tc.Seed = cc.Seed
	}
	pgrid := cc.PgridMW
	if pgrid <= 0 {
		pgrid = 2.0
	}
	temps, err := thermal.GenerateTemperature(tc)
	if err != nil {
		return 0, fmt.Errorf("smartdpss: temperature: %w", err)
	}
	slotHours := float64(t.set.DemandDS.SlotMinutes) / 60
	return thermal.ApplyCooling(t.set, temps, tc, pgrid*slotHours)
}

// RenewableNightSplit returns the renewable energy produced at night
// (22:00–06:00) and in total, in MWh — an intermittency-smoothing
// indicator for mixed solar/wind portfolios.
func (t *Traces) RenewableNightSplit() (night, total float64) {
	r := t.set.Renewable
	slotsPerDay := 24 * 60 / r.SlotMinutes
	for i, v := range r.Values {
		total += v
		hour := float64(i%slotsPerDay) * float64(r.SlotMinutes) / 60
		if hour >= 22 || hour < 6 {
			night += v
		}
	}
	return night, total
}

// WriteCSV exports all five series as CSV.
func (t *Traces) WriteCSV(w io.Writer) error {
	s := t.set
	return trace.WriteCSV(w, s.DemandDS, s.DemandDT, s.Renewable, s.PriceLT, s.PriceRT)
}

// SeriesStats summarizes one input series.
type SeriesStats struct {
	Name string
	Unit string
	Mean float64
	Std  float64
	Min  float64
	Max  float64
	Sum  float64
}

// TraceStatistics returns summary statistics for all five input series in
// a fixed order (demand_ds, demand_dt, renewable, price_lt, price_rt).
func TraceStatistics(t *Traces) ([]SeriesStats, error) {
	if t == nil {
		return nil, errors.New("smartdpss: nil traces")
	}
	s := t.set
	out := make([]SeriesStats, 0, 5)
	for _, sr := range []*trace.Series{s.DemandDS, s.DemandDT, s.Renewable, s.PriceLT, s.PriceRT} {
		out = append(out, SeriesStats{
			Name: sr.Name,
			Unit: sr.Unit,
			Mean: sr.Mean(),
			Std:  sr.StdDev(),
			Min:  sr.Min(),
			Max:  sr.Max(),
			Sum:  sr.Sum(),
		})
	}
	return out, nil
}

// Simulate runs the selected policy over the traces and returns its
// report. It is a thin batch loop over a replay Session — batch and
// streaming execution share one code path, so their reports are
// byte-identical by construction.
func Simulate(policy Policy, opts Options, traces *Traces) (*Report, error) {
	s, err := NewReplaySession(policy, opts, traces)
	if err != nil {
		return nil, err
	}
	for !s.Done() {
		if _, err := s.StepReplay(); err != nil {
			return nil, err
		}
	}
	return s.Finish()
}

// newController instantiates the requested policy.
func newController(policy Policy, opts Options, traces *Traces) (sim.Controller, error) {
	switch policy {
	case PolicySmartDPSS:
		return core.New(opts.coreParams())
	case PolicyImpatient:
		return baseline.NewImpatient(opts.baselineConfig())
	case PolicyLyapunov:
		return baseline.NewLyapunov(opts.baselineConfig(), opts.LyapunovV, opts.LyapunovTheta)
	case PolicyOfflineOptimal:
		return baseline.NewOfflineOptimal(opts.baselineConfig(), traces.set)
	case PolicyOfflineHorizon:
		return baseline.NewOfflineHorizon(opts.baselineConfig(), traces.set)
	case PolicyLookahead:
		window := opts.LookaheadWindow
		if window <= 0 {
			window = opts.T
		}
		return baseline.NewLookahead(opts.baselineConfig(), traces.set, window)
	default:
		return nil, fmt.Errorf("smartdpss: unknown policy %q", policy)
	}
}

// TheoremBounds reports the deterministic bounds of Theorem 2 for the
// given options: the backlog bound Qmax, delay-queue bound Ymax, their sum
// Umax, the worst-case delay λmax (slots) and Vmax.
type TheoremBounds struct {
	QMax      float64
	YMax      float64
	UMax      float64
	LambdaMax int
	VMax      float64
}

// Bounds computes the Theorem 2 bounds for the options.
func Bounds(opts Options) TheoremBounds {
	p := opts.coreParams()
	return TheoremBounds{
		QMax:      p.QMax(),
		YMax:      p.YMax(),
		UMax:      p.UMax(),
		LambdaMax: p.LambdaMax(),
		VMax:      p.VMax(),
	}
}
