package engine

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math"

	"github.com/smartdpss/smartdpss/internal/sim"
)

// Sentinel errors of the public session API, re-exported by the root
// package. The sim-layer sentinels pass through engine calls unchanged,
// so callers can branch on any of them with errors.Is.
var (
	// ErrInvalidOptions marks every Options/TraceConfig validation
	// failure. The concrete message keeps its historical text; wrapping
	// makes it machine-checkable: errors.Is(err, ErrInvalidOptions).
	ErrInvalidOptions = errors.New("smartdpss: invalid options")

	// ErrHorizonExhausted aliases the sim sentinel: Step past the last
	// slot of the session's horizon.
	ErrHorizonExhausted = sim.ErrHorizonExhausted

	// ErrSnapshotMismatch aliases the sim sentinel: a checkpoint from a
	// differently-configured session (options, policy, horizon, slot
	// length or checkpoint version).
	ErrSnapshotMismatch = sim.ErrSnapshotMismatch

	// ErrSnapshotUnsupported aliases the sim sentinel: the policy cannot
	// be checkpointed (the offline benchmarks precompute their plans).
	ErrSnapshotUnsupported = sim.ErrSnapshotUnsupported
)

// invalidOptionsError attaches the ErrInvalidOptions identity to a
// validation failure without changing its message text.
type invalidOptionsError struct{ err error }

func (e *invalidOptionsError) Error() string { return e.err.Error() }
func (e *invalidOptionsError) Unwrap() error { return e.err }
func (e *invalidOptionsError) Is(target error) bool {
	return target == ErrInvalidOptions
}

// invalidOptions wraps err so errors.Is(err, ErrInvalidOptions) holds;
// the original error stays reachable through Unwrap (and errors.As for
// field-level sim.ValidationError values).
func invalidOptions(err error) error {
	if err == nil {
		return nil
	}
	return &invalidOptionsError{err: err}
}

// ValidationError reports one invalid field of an option or input
// struct, with the field name machine-readable (match via errors.As).
type ValidationError = sim.ValidationError

// SlotInput is one fine slot's exogenous inputs for streaming sessions
// (demands, renewable production, both market prices and the fuel-price
// multiplier — pass FuelScale 1 without a fuel market).
type SlotInput = sim.SlotInput

// Decision is a controller's planned fine-slot action.
type Decision = sim.Decision

// SlotOutcome is one committed slot: outcome, executed decision, cost.
type SlotOutcome = sim.SlotOutcome

// SessionStatus is a live mid-run view of a session for monitoring.
type SessionStatus = sim.Status

// Session is a resumable step-wise simulation of one policy: the
// streaming counterpart of Simulate. Each slot is Step(input) →
// Decision, then Commit() → SlotOutcome; Finish() returns the Report.
// Between slots the full state — controller, battery, fleet, market
// account, backlog, report accumulators — can be checkpointed with
// Snapshot and reinstated with Restore on an identically configured
// session, in this process or another one; the resumed run is
// byte-identical to an uninterrupted one.
type Session struct {
	inner  *sim.Session
	policy Policy
	opts   Options
	traces *Traces // replay source; nil for pure streaming sessions
}

// optionsFingerprint digests the policy and the full Options so two
// sessions share checkpoints only when every tuning knob matches. Some
// options (V, Epsilon, noise parameters, …) configure the controller
// rather than the sim.Config, so the sim layer alone could not tell the
// configurations apart.
func optionsFingerprint(policy Policy, opts Options) string {
	h := sha256.New()
	enc := json.NewEncoder(h)
	_ = enc.Encode(struct {
		Policy  Policy
		Options Options
	}{policy, opts})
	return hex.EncodeToString(h.Sum(nil))
}

// validateSimulateOptions is the shared option screen of Simulate and
// the session constructors.
func validateSimulateOptions(opts Options) error {
	if opts.CarbonUSDPerTon < 0 || math.IsNaN(opts.CarbonUSDPerTon) || math.IsInf(opts.CarbonUSDPerTon, 0) {
		return invalidOptions(errors.New("smartdpss: CarbonUSDPerTon must be finite and non-negative"))
	}
	for i, u := range opts.Fleet {
		if err := u.Validate(); err != nil {
			return invalidOptions(fmt.Errorf("smartdpss: fleet unit %d: %w", i, err))
		}
	}
	return nil
}

// newSession builds the session core shared by both constructors.
func newSession(policy Policy, opts Options, traces *Traces, horizon, slotMinutes int) (*Session, error) {
	if err := validateSimulateOptions(opts); err != nil {
		return nil, err
	}
	ctrl, err := newController(policy, opts, traces)
	if err != nil {
		return nil, invalidOptions(err)
	}
	if opts.ObservationNoise > 0 {
		ctrl, err = sim.WithObservationNoise(ctrl, opts.NoiseSeed, opts.ObservationNoise)
		if err != nil {
			return nil, invalidOptions(err)
		}
	}
	cfg := opts.simConfig()
	if err := cfg.Validate(); err != nil {
		return nil, invalidOptions(err)
	}
	// The fingerprint thunk defers the sha256-over-JSON digest to the
	// first Snapshot/Restore, keeping batch Simulate's allocation budget
	// free of checkpoint machinery it never uses.
	inner, err := sim.NewSession(cfg, ctrl, horizon, slotMinutes, func() string {
		return optionsFingerprint(policy, opts)
	})
	if err != nil {
		return nil, invalidOptions(err)
	}
	return &Session{inner: inner, policy: policy, opts: opts, traces: traces}, nil
}

// NewSession builds a streaming session over horizon fine slots: the
// caller supplies every slot's inputs through Step. Only trace-free
// policies qualify — the offline benchmarks need the full future and
// must go through NewReplaySession.
func NewSession(policy Policy, opts Options, horizon int) (*Session, error) {
	switch policy {
	case PolicySmartDPSS, PolicyImpatient, PolicyLyapunov:
	default:
		return nil, invalidOptions(fmt.Errorf(
			"smartdpss: policy %q needs traces; use NewReplaySession", policy))
	}
	if horizon <= 0 {
		return nil, invalidOptions(errors.New("smartdpss: horizon must be positive"))
	}
	slotMinutes := opts.SlotMinutes
	if slotMinutes <= 0 {
		slotMinutes = 60
	}
	return newSession(policy, opts, nil, horizon, slotMinutes)
}

// NewReplaySession builds a session bound to a trace set: StepReplay
// feeds the next trace row each slot, which is exactly what batch
// Simulate does. All policies qualify, including the clairvoyant
// offline benchmarks (which read the traces at construction).
func NewReplaySession(policy Policy, opts Options, traces *Traces) (*Session, error) {
	if traces == nil {
		return nil, errors.New("smartdpss: nil traces")
	}
	if err := traces.set.Validate(); err != nil {
		return nil, err
	}
	return newSession(policy, opts, traces, traces.set.Horizon(), traces.set.DemandDS.SlotMinutes)
}

// InputAt reads slot's row of the traces as a session input — the
// bridge replay sources and batch Simulate share.
func (t *Traces) InputAt(slot int) SlotInput { return sim.InputAt(t.set, slot) }

// Policy returns the session's policy.
func (s *Session) Policy() Policy { return s.policy }

// Slot returns the index of the next slot to Step (the number of
// committed slots).
func (s *Session) Slot() int { return s.inner.Slot() }

// Horizon returns the total number of fine slots.
func (s *Session) Horizon() int { return s.inner.Horizon() }

// Done reports whether every slot of the horizon has been committed.
func (s *Session) Done() bool { return s.inner.Slot() >= s.inner.Horizon() }

// Pending reports whether a planned decision awaits Commit.
func (s *Session) Pending() bool { return s.inner.Pending() }

// ControllerName returns the policy's report name.
func (s *Session) ControllerName() string { return s.inner.ControllerName() }

// LPFailures returns the controller's LP-fallback count, or 0 when the
// policy has no LP path (a solver-health counter for metrics surfaces).
func (s *Session) LPFailures() int {
	if c, ok := s.inner.Controller().(interface{ LPFailures() int }); ok {
		return c.LPFailures()
	}
	return 0
}

// Status returns the live mid-run view (running cost/energy totals and
// physical state) for monitoring surfaces.
func (s *Session) Status() SessionStatus { return s.inner.Status() }

// Step plans the next slot from the given inputs and returns the
// controller's validated decision. Commit executes it.
func (s *Session) Step(in SlotInput) (Decision, error) { return s.inner.Step(in) }

// Commit executes the pending decision and advances to the next slot.
func (s *Session) Commit() (SlotOutcome, error) { return s.inner.Commit() }

// StepReplay plans and commits the next slot from the bound traces (the
// batch path; only valid on replay sessions).
func (s *Session) StepReplay() (SlotOutcome, error) {
	if s.traces == nil {
		return SlotOutcome{}, errors.New("smartdpss: streaming session has no traces; use Step")
	}
	if _, err := s.inner.Step(sim.InputAt(s.traces.set, s.inner.Slot())); err != nil {
		return SlotOutcome{}, err
	}
	return s.inner.Commit()
}

// Finish finalizes the session and returns its report. A session may
// finish before its horizon is exhausted; the report covers the
// committed slots.
func (s *Session) Finish() (*Report, error) { return s.inner.Finish() }

// Snapshot captures the full session state as a self-describing JSON
// checkpoint (see sim.Checkpoint for the format). Valid only between
// slots; the policy must support snapshots (ErrSnapshotUnsupported
// otherwise — the offline benchmarks do not).
func (s *Session) Snapshot() ([]byte, error) { return s.inner.Snapshot() }

// Restore reinstates a checkpoint onto this session. The session must be
// configured identically to the snapshotting one — same policy, options,
// horizon and slot length, enforced via the embedded configuration hash
// (ErrSnapshotMismatch otherwise). Execution resumes bit-for-bit at the
// checkpoint's slot.
func (s *Session) Restore(data []byte) error { return s.inner.Restore(data) }
