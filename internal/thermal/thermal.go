// Package thermal models datacenter cooling overhead, the paper's second
// declared future-work item ("Incorporating cooling cost and power peaks
// management is part of our future work", Sec. IV-C).
//
// The model has two parts. A synthetic outside-temperature trace combines
// a diurnal cycle with slow weather fronts (mean-reverting noise). A PUE
// (power usage effectiveness) curve then maps temperature to facility
// overhead: below the free-cooling threshold the facility runs economizers
// at a flat base PUE; above it, chiller load grows linearly with
// temperature. Coupling a demand trace through the curve turns IT power
// into facility power — raising both the level and the variance of the
// demand SmartDPSS must serve, since hot afternoons coincide with the
// interactive peak.
//
// The package owns the temperature process and the PUE curve.
// internal/engine is its sole consumer: when cooling is enabled it maps
// the workload trace through the curve during trace generation, so the
// simulator and policies only ever see the already-inflated facility
// demand.
package thermal

import (
	"errors"
	"math"
	"math/rand"

	"github.com/smartdpss/smartdpss/internal/trace"
)

// Config parameterizes the temperature generator and PUE curve.
type Config struct {
	// Days is the number of simulated days.
	Days int
	// SlotMinutes is the trace resolution.
	SlotMinutes int
	// MeanC is the long-run mean outside temperature in °C.
	MeanC float64
	// DiurnalAmpC is the half-amplitude of the day/night swing in °C.
	DiurnalAmpC float64
	// WeatherStdC scales the slow mean-reverting weather deviation.
	WeatherStdC float64
	// FreeCoolingC is the threshold below which economizers carry the
	// whole cooling load.
	FreeCoolingC float64
	// BasePUE is the facility overhead under free cooling (≥ 1).
	BasePUE float64
	// PUESlopePerC is the PUE increase per °C above the threshold.
	PUESlopePerC float64
	// MaxPUE caps the curve (chillers at full load).
	MaxPUE float64
	// Seed drives the deterministic random source.
	Seed int64
}

// Defaults returns a continental winter configuration (free cooling
// dominates; the summer scenario raises MeanC).
func Defaults() Config {
	return Config{
		Days:         31,
		SlotMinutes:  60,
		MeanC:        2.0,
		DiurnalAmpC:  5.0,
		WeatherStdC:  3.0,
		FreeCoolingC: 18.0,
		BasePUE:      1.12,
		PUESlopePerC: 0.02,
		MaxPUE:       1.6,
		Seed:         8,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Days <= 0:
		return errors.New("thermal: Days must be positive")
	case c.SlotMinutes <= 0 || c.SlotMinutes > 24*60:
		return errors.New("thermal: SlotMinutes out of range")
	case c.DiurnalAmpC < 0:
		return errors.New("thermal: negative DiurnalAmpC")
	case c.WeatherStdC < 0:
		return errors.New("thermal: negative WeatherStdC")
	case c.BasePUE < 1:
		return errors.New("thermal: BasePUE must be >= 1")
	case c.PUESlopePerC < 0:
		return errors.New("thermal: negative PUESlopePerC")
	case c.MaxPUE < c.BasePUE:
		return errors.New("thermal: MaxPUE must be >= BasePUE")
	}
	return nil
}

// GenerateTemperature produces the outside-temperature series in °C.
func GenerateTemperature(c Config) (*trace.Series, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(c.Seed))
	slotsPerDay := 24 * 60 / c.SlotMinutes
	n := c.Days * slotsPerDay
	out := trace.New("temperature", "C", c.SlotMinutes, n)
	slotHours := float64(c.SlotMinutes) / 60.0

	weather := 0.0
	for i := 0; i < n; i++ {
		hour := (float64(i%slotsPerDay) + 0.5) * slotHours
		// Coldest around 5am, warmest mid-afternoon.
		diurnal := c.DiurnalAmpC * math.Sin(2*math.Pi*(hour-11)/24)
		weather += 0.05*(0-weather) + 0.3*c.WeatherStdC*math.Sqrt(slotHours)*rng.NormFloat64()
		out.Values[i] = c.MeanC + diurnal + weather
	}
	return out, nil
}

// PUE maps an outside temperature to the facility power usage
// effectiveness under the configured curve.
func (c Config) PUE(tempC float64) float64 {
	if tempC <= c.FreeCoolingC {
		return c.BasePUE
	}
	return math.Min(c.MaxPUE, c.BasePUE+c.PUESlopePerC*(tempC-c.FreeCoolingC))
}

// ApplyCooling scales both demand classes of the set by the PUE of the
// given temperature trace, slot by slot, clipping the combined demand at
// pgridMWh (facility power may not exceed the grid connection). It
// returns the average applied PUE.
//
// Note: temperature values below any physically sensible range are used
// as-is; Validate only guards the generator's own parameters.
func ApplyCooling(set *trace.Set, temps *trace.Series, c Config, pgridMWh float64) (float64, error) {
	if err := set.Validate(); err != nil {
		return 0, err
	}
	if temps.Len() != set.Horizon() {
		return 0, errors.New("thermal: temperature trace length mismatch")
	}
	if pgridMWh <= 0 {
		return 0, errors.New("thermal: pgridMWh must be positive")
	}
	sum := 0.0
	for i := 0; i < set.Horizon(); i++ {
		pue := c.PUE(temps.At(i))
		sum += pue
		set.DemandDS.Values[i] *= pue
		set.DemandDT.Values[i] *= pue
		if over := set.DemandDS.Values[i] + set.DemandDT.Values[i] - pgridMWh; over > 0 {
			set.DemandDT.Values[i] = math.Max(0, set.DemandDT.Values[i]-over)
			if rem := set.DemandDS.Values[i] + set.DemandDT.Values[i] - pgridMWh; rem > 0 {
				set.DemandDS.Values[i] -= rem
			}
		}
	}
	return sum / float64(set.Horizon()), nil
}
