package thermal

import (
	"math"
	"testing"

	"github.com/smartdpss/smartdpss/internal/trace"
)

func TestGenerateTemperatureShape(t *testing.T) {
	c := Defaults()
	temps, err := GenerateTemperature(c)
	if err != nil {
		t.Fatal(err)
	}
	if temps.Len() != 31*24 {
		t.Fatalf("len = %d", temps.Len())
	}
	// Mean near the configured level.
	if math.Abs(temps.Mean()-c.MeanC) > 4 {
		t.Errorf("mean = %g, want near %g", temps.Mean(), c.MeanC)
	}
	// Afternoon warmer than pre-dawn on average.
	afternoon, dawn := 0.0, 0.0
	for d := 0; d < c.Days; d++ {
		afternoon += temps.Values[d*24+15]
		dawn += temps.Values[d*24+4]
	}
	if afternoon <= dawn {
		t.Error("afternoon not warmer than pre-dawn")
	}
}

func TestGenerateTemperatureDeterministic(t *testing.T) {
	a, err := GenerateTemperature(Defaults())
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateTemperature(Defaults())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Values {
		if a.Values[i] != b.Values[i] {
			t.Fatalf("diverged at %d", i)
		}
	}
}

func TestPUECurve(t *testing.T) {
	c := Defaults() // free cooling below 18°C, base 1.12, slope 0.02, max 1.6
	tests := []struct {
		temp float64
		want float64
	}{
		{-10, 1.12},
		{18, 1.12},
		{23, 1.22},
		{28, 1.32},
		{100, 1.6}, // capped
	}
	for _, tt := range tests {
		if got := c.PUE(tt.temp); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("PUE(%g) = %g, want %g", tt.temp, got, tt.want)
		}
	}
	// Monotone non-decreasing.
	prev := 0.0
	for temp := -20.0; temp <= 60; temp += 0.5 {
		v := c.PUE(temp)
		if v < prev {
			t.Fatalf("PUE not monotone at %g", temp)
		}
		prev = v
	}
}

func testSet(n int) *trace.Set {
	mk := func(name string, base float64) *trace.Series {
		s := trace.New(name, "MWh", 60, n)
		for i := range s.Values {
			s.Values[i] = base
		}
		return s
	}
	return &trace.Set{
		DemandDS:  mk("demand_ds", 1.0),
		DemandDT:  mk("demand_dt", 0.5),
		Renewable: mk("renewable", 0.1),
		PriceLT:   mk("price_lt", 40),
		PriceRT:   mk("price_rt", 50),
	}
}

func TestApplyCoolingWinterIsNeutral(t *testing.T) {
	c := Defaults() // 2°C mean: always free cooling
	c.Days = 1
	temps, err := GenerateTemperature(c)
	if err != nil {
		t.Fatal(err)
	}
	set := testSet(24)
	avgPUE, err := ApplyCooling(set, temps, c, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(avgPUE-c.BasePUE) > 1e-9 {
		t.Errorf("winter avg PUE = %g, want base %g", avgPUE, c.BasePUE)
	}
	// Demand scaled exactly by the base PUE.
	if math.Abs(set.DemandDS.Values[0]-1.0*c.BasePUE) > 1e-9 {
		t.Errorf("dds = %g", set.DemandDS.Values[0])
	}
}

func TestApplyCoolingSummerRaisesDemand(t *testing.T) {
	c := Defaults()
	c.Days = 1
	c.MeanC = 26 // chiller regime
	temps, err := GenerateTemperature(c)
	if err != nil {
		t.Fatal(err)
	}
	set := testSet(24)
	before := set.TotalDemand().Sum()
	avgPUE, err := ApplyCooling(set, temps, c, 4.0)
	if err != nil {
		t.Fatal(err)
	}
	if avgPUE <= c.BasePUE {
		t.Errorf("summer avg PUE = %g, want above base", avgPUE)
	}
	after := set.TotalDemand().Sum()
	if after <= before {
		t.Error("summer cooling did not raise demand")
	}
}

func TestApplyCoolingClipsAtPgrid(t *testing.T) {
	c := Defaults()
	c.Days = 1
	c.MeanC = 30
	temps, err := GenerateTemperature(c)
	if err != nil {
		t.Fatal(err)
	}
	set := testSet(24)
	if _, err := ApplyCooling(set, temps, c, 1.6); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 24; i++ {
		if tot := set.DemandDS.Values[i] + set.DemandDT.Values[i]; tot > 1.6+1e-9 {
			t.Fatalf("slot %d: total %g above Pgrid 1.6", i, tot)
		}
	}
}

func TestApplyCoolingErrors(t *testing.T) {
	c := Defaults()
	c.Days = 1
	temps, err := GenerateTemperature(c)
	if err != nil {
		t.Fatal(err)
	}
	short := testSet(12)
	if _, err := ApplyCooling(short, temps, c, 2.0); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := ApplyCooling(testSet(24), temps, c, 0); err == nil {
		t.Error("zero Pgrid accepted")
	}
	bad := testSet(24)
	bad.PriceLT = nil
	if _, err := ApplyCooling(bad, temps, c, 2.0); err == nil {
		t.Error("invalid set accepted")
	}
}

func TestConfigValidate(t *testing.T) {
	mut := func(f func(*Config)) Config {
		c := Defaults()
		f(&c)
		return c
	}
	bad := []Config{
		mut(func(c *Config) { c.Days = 0 }),
		mut(func(c *Config) { c.SlotMinutes = 0 }),
		mut(func(c *Config) { c.DiurnalAmpC = -1 }),
		mut(func(c *Config) { c.WeatherStdC = -1 }),
		mut(func(c *Config) { c.BasePUE = 0.9 }),
		mut(func(c *Config) { c.PUESlopePerC = -1 }),
		mut(func(c *Config) { c.MaxPUE = 1.0 }),
	}
	for i, c := range bad {
		if _, err := GenerateTemperature(c); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}
