package generator

import (
	"fmt"
	"sort"
)

// Fleet is an ordered collection of heterogeneous on-site generation
// units dispatched together: the multi-unit generalization of the single
// self-generation source of arXiv:1303.6775, stepping toward the
// unit-commitment formulations of the power-systems literature. Units
// keep their individual physics (capacity, minimum stable load, ramp,
// fuel curve, startup cost and lag, CO₂ intensity); the fleet adds
// merit-order allocation across them and aggregate accounting.
//
// A Fleet with no units is inert: every method is a no-op returning
// zeros, so fleet-free configurations reproduce fleet-free results
// exactly (the empty-fleet byte-identity invariant).
type Fleet struct {
	units []*Generator
	merit []int // unit indices in ascending base-marginal order

	// Per-slot buffers reused across calls (see Observe, Dispatch and
	// SplitTotal): the engine consumes each slot's views before the next
	// slot begins, so one buffer per role suffices for a whole run.
	obs  []UnitObs
	outs []Outcome
	reqs []float64
}

// MeritOrder returns the unit indices in ascending base-marginal-price
// order; ties resolve by unit index so the order (and therefore every
// planning and dispatch split that follows it) is deterministic. The
// controller and the fleet share this single definition so plan and
// execution can never order units differently.
func MeritOrder(specs []Params) []int {
	merit := make([]int, len(specs))
	for i := range merit {
		merit[i] = i
	}
	sort.SliceStable(merit, func(a, b int) bool {
		return specs[merit[a]].MarginalAt(0) < specs[merit[b]].MarginalAt(0)
	})
	return merit
}

// NewFleet builds a cold fleet from the unit specifications, preserving
// their order (unit i of the fleet is specs[i]).
func NewFleet(specs []Params) (*Fleet, error) {
	f := &Fleet{units: make([]*Generator, len(specs))}
	for i, p := range specs {
		g, err := New(p)
		if err != nil {
			return nil, fmt.Errorf("unit %d: %w", i, err)
		}
		f.units[i] = g
	}
	f.merit = MeritOrder(specs)
	return f, nil
}

// Size returns the number of units.
func (f *Fleet) Size() int { return len(f.units) }

// Enabled reports whether the fleet has at least one enabled unit.
func (f *Fleet) Enabled() bool {
	for _, u := range f.units {
		if u.Params().Enabled() {
			return true
		}
	}
	return false
}

// Unit returns unit i (fleet order, not merit order).
func (f *Fleet) Unit(i int) *Generator { return f.units[i] }

// MeritOrder returns the fleet's unit indices in ascending
// base-marginal-price order (ties by index).
func (f *Fleet) MeritOrder() []int { return f.merit }

// Tick advances every unit's synchronization countdown (one call per
// fine slot, before the controller observes the fleet).
func (f *Fleet) Tick() {
	for _, u := range f.units {
		u.Tick()
	}
}

// UnitObs is one unit's dispatch state as a controller observes it.
type UnitObs struct {
	// Running reports a synchronized, producing-capable unit.
	Running bool
	// Starting reports an in-progress start (lag not yet elapsed).
	Starting bool
	// MinMWh and MaxMWh are the deliverable output band this slot
	// ((0, 0) when the unit cannot produce now).
	MinMWh float64
	// MaxMWh is the band's upper end.
	MaxMWh float64
	// RequestMax is the largest meaningful dispatch request (exceeds
	// MaxMWh only for an off unit behind a startup lag, where a positive
	// request signals a cold start delivering nothing yet).
	RequestMax float64
	// MarginalUSDPerMWh is the unit's base marginal fuel price at zero
	// output, before any slot fuel-price scaling.
	MarginalUSDPerMWh float64
}

// Observe returns every unit's dispatch state in fleet order (nil for an
// empty fleet). The slice is fleet-owned and valid until the next
// Observe call.
func (f *Fleet) Observe() []UnitObs {
	if len(f.units) == 0 {
		return nil
	}
	if cap(f.obs) < len(f.units) {
		f.obs = make([]UnitObs, len(f.units))
	}
	obs := f.obs[:len(f.units)]
	for i, u := range f.units {
		min, max := u.Window()
		obs[i] = UnitObs{
			Running:           u.Running(),
			Starting:          u.Starting(),
			MinMWh:            min,
			MaxMWh:            max,
			RequestMax:        u.RequestMax(),
			MarginalUSDPerMWh: u.Params().MarginalAt(0),
		}
	}
	return obs
}

// Dispatch executes one slot: requests[i] goes to unit i (missing
// entries are zero, so a short — or nil — slice shuts the tail of the
// fleet down), with the slot's fuel-price multiplier applied to every
// unit's fuel bill. Outcomes come back in fleet order, in a fleet-owned
// slice valid until the next Dispatch call.
func (f *Fleet) Dispatch(requests []float64, fuelScale float64) []Outcome {
	if len(f.units) == 0 {
		return nil
	}
	if cap(f.outs) < len(f.units) {
		f.outs = make([]Outcome, len(f.units))
	}
	outs := f.outs[:len(f.units)]
	for i, u := range f.units {
		req := 0.0
		if i < len(requests) {
			req = requests[i]
		}
		outs[i] = u.DispatchAt(req, fuelScale)
	}
	return outs
}

// SplitTotal allocates an aggregate dispatch request across the fleet in
// merit order (cheapest base marginal first): each unit receives as much
// of the remainder as it can meaningfully accept (its RequestMax), and a
// remainder too small to hold a unit's minimum stable load skips that
// unit. For a one-unit fleet the split is the identity, which keeps the
// legacy scalar Decision.Generate path byte-identical. The returned
// slice is fleet-owned and valid until the next SplitTotal call.
func (f *Fleet) SplitTotal(total float64) []float64 {
	if len(f.units) == 0 {
		return nil
	}
	if cap(f.reqs) < len(f.units) {
		f.reqs = make([]float64, len(f.units))
	}
	reqs := f.reqs[:len(f.units)]
	for i := range reqs {
		reqs[i] = 0
	}
	if len(f.units) == 1 {
		reqs[0] = total
		return reqs
	}
	remaining := total
	for _, i := range f.merit {
		if remaining <= tol {
			break
		}
		u := f.units[i]
		take := remaining
		if max := u.RequestMax(); take > max {
			take = max
		}
		if take < u.Params().MinLoadMWh-tol {
			continue
		}
		reqs[i] = take
		remaining -= take
	}
	return reqs
}

// State captures every unit's mutable state in fleet order for a
// checkpoint (nil for an empty fleet).
func (f *Fleet) State() []State {
	if len(f.units) == 0 {
		return nil
	}
	states := make([]State, len(f.units))
	for i, u := range f.units {
		states[i] = u.State()
	}
	return states
}

// Restore overwrites every unit's mutable state from a checkpoint. The
// state count must match the fleet size (the checkpoint's config hash
// already pins the unit specs, this is a second line of defense).
func (f *Fleet) Restore(states []State) error {
	if len(states) != len(f.units) {
		return fmt.Errorf("generator: checkpoint has %d unit states, fleet has %d units",
			len(states), len(f.units))
	}
	for i, s := range states {
		if err := f.units[i].Restore(s); err != nil {
			return fmt.Errorf("unit %d: %w", i, err)
		}
	}
	return nil
}

// FleetTotals aggregates lifetime accounting across the units.
type FleetTotals struct {
	EnergyMWh  float64
	FuelUSD    float64
	StartupUSD float64
	CO2Kg      float64
	Starts     int
	OpSlots    int
}

// Totals returns the fleet-wide lifetime accounting.
func (f *Fleet) Totals() FleetTotals {
	var t FleetTotals
	for _, u := range f.units {
		t.EnergyMWh += u.EnergyTotal()
		t.FuelUSD += u.FuelCostTotal()
		t.StartupUSD += u.StartupCostTotal()
		t.CO2Kg += u.CO2Total()
		t.Starts += u.Starts()
		t.OpSlots += u.OpSlots()
	}
	return t
}
