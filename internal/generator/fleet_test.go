package generator

import (
	"math"
	"testing"
)

// fleetSpecs returns a small heterogeneous fleet: a cheap mid-size unit,
// an expensive peaker, and a big unit with a high minimum stable load.
func fleetSpecs() []Params {
	return []Params{
		{CapacityMWh: 0.5, MinLoadMWh: 0.1, FuelUSDPerMWh: 40, StartupUSD: 5, CO2KgPerMWh: 500},
		{CapacityMWh: 0.25, MinLoadMWh: 0.05, FuelUSDPerMWh: 90, CO2KgPerMWh: 700},
		{CapacityMWh: 1.0, MinLoadMWh: 0.6, FuelUSDPerMWh: 55, StartupUSD: 20, CO2KgPerMWh: 600},
	}
}

func TestNewFleetRejectsBadUnit(t *testing.T) {
	specs := fleetSpecs()
	specs[1].CapacityMWh = -1
	if _, err := NewFleet(specs); err == nil {
		t.Fatal("negative-capacity unit accepted")
	}
}

func TestFleetMeritOrder(t *testing.T) {
	f, err := NewFleet(fleetSpecs())
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 2, 1} // 40, 55, 90 USD/MWh
	got := f.MeritOrder()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merit order = %v, want %v", got, want)
		}
	}
}

func TestEmptyFleetInert(t *testing.T) {
	f, err := NewFleet(nil)
	if err != nil {
		t.Fatal(err)
	}
	if f.Enabled() || f.Size() != 0 {
		t.Fatalf("empty fleet not inert: size=%d enabled=%v", f.Size(), f.Enabled())
	}
	f.Tick()
	if obs := f.Observe(); obs != nil {
		t.Fatalf("empty fleet observed units: %+v", obs)
	}
	if outs := f.Dispatch([]float64{1, 2}, 1); outs != nil {
		t.Fatalf("empty fleet dispatched: %+v", outs)
	}
	if tot := f.Totals(); tot != (FleetTotals{}) {
		t.Fatalf("empty fleet accumulated: %+v", tot)
	}
}

func TestFleetSplitTotalMeritOrder(t *testing.T) {
	f, err := NewFleet(fleetSpecs())
	if err != nil {
		t.Fatal(err)
	}
	// 0.6 MWh: cheapest unit (0) takes its 0.5 cap; the next in merit
	// order (unit 2) cannot hold its 0.6 min load on the 0.1 remainder,
	// so the peaker (unit 1) takes it.
	reqs := f.SplitTotal(0.6)
	if math.Abs(reqs[0]-0.5) > 1e-12 || reqs[2] != 0 || math.Abs(reqs[1]-0.1) > 1e-12 {
		t.Fatalf("split = %v, want [0.5, 0.1, 0]", reqs)
	}
	// A one-unit fleet splits by identity (legacy scalar path).
	one, err := NewFleet(fleetSpecs()[:1])
	if err != nil {
		t.Fatal(err)
	}
	if reqs := one.SplitTotal(7.5); reqs[0] != 7.5 {
		t.Fatalf("one-unit split = %v, want [7.5]", reqs)
	}
}

func TestFleetDispatchAccountsPerUnit(t *testing.T) {
	f, err := NewFleet(fleetSpecs())
	if err != nil {
		t.Fatal(err)
	}
	f.Tick()
	outs := f.Dispatch([]float64{0.5, 0.25, 0}, 1)
	if outs[0].DeliveredMWh != 0.5 || outs[1].DeliveredMWh != 0.25 || outs[2].DeliveredMWh != 0 {
		t.Fatalf("delivered = %+v", outs)
	}
	if outs[0].StartupUSD != 5 {
		t.Fatalf("unit 0 startup = %g, want 5", outs[0].StartupUSD)
	}
	if math.Abs(outs[0].CO2Kg-0.5*500) > 1e-9 || math.Abs(outs[1].CO2Kg-0.25*700) > 1e-9 {
		t.Fatalf("CO2 = %g, %g", outs[0].CO2Kg, outs[1].CO2Kg)
	}
	tot := f.Totals()
	if tot.Starts != 2 || math.Abs(tot.EnergyMWh-0.75) > 1e-9 {
		t.Fatalf("totals = %+v", tot)
	}
	wantCO2 := 0.5*500 + 0.25*700
	if math.Abs(tot.CO2Kg-wantCO2) > 1e-9 {
		t.Fatalf("fleet CO2 = %g, want %g", tot.CO2Kg, wantCO2)
	}
}

func TestFleetDispatchFuelScale(t *testing.T) {
	f, err := NewFleet(fleetSpecs()[:1])
	if err != nil {
		t.Fatal(err)
	}
	f.Tick()
	outs := f.Dispatch([]float64{0.5}, 1.5)
	want := 1.5 * (40 * 0.5)
	if math.Abs(outs[0].FuelUSD-want) > 1e-9 {
		t.Fatalf("scaled fuel = %g, want %g", outs[0].FuelUSD, want)
	}
	// CO2 does not scale with the fuel price.
	if math.Abs(outs[0].CO2Kg-0.5*500) > 1e-9 {
		t.Fatalf("CO2 = %g, want %g", outs[0].CO2Kg, 0.5*500)
	}
}

func TestFleetShortRequestSliceShutsTail(t *testing.T) {
	f, err := NewFleet(fleetSpecs())
	if err != nil {
		t.Fatal(err)
	}
	f.Tick()
	f.Dispatch([]float64{0.5, 0.25, 1.0}, 1)
	outs := f.Dispatch([]float64{0.5}, 1) // units 1 and 2 get implicit zeros
	if outs[1].DeliveredMWh != 0 || outs[2].DeliveredMWh != 0 {
		t.Fatalf("tail units kept producing: %+v", outs)
	}
	if f.Unit(1).Running() || f.Unit(2).Running() {
		t.Fatal("tail units still running after zero request")
	}
}
