package generator

import (
	"math"
	"testing"
)

func testParams() Params {
	return Params{
		CapacityMWh:   1.0,
		MinLoadMWh:    0.2,
		RampMWh:       0.4,
		FuelUSDPerMWh: 80,
		StartupUSD:    25,
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Params)
		ok     bool
	}{
		{"default", func(p *Params) {}, true},
		{"disabled", func(p *Params) { *p = Params{} }, true},
		{"negative capacity", func(p *Params) { p.CapacityMWh = -1 }, false},
		{"min above capacity", func(p *Params) { p.MinLoadMWh = 2 }, false},
		{"negative ramp", func(p *Params) { p.RampMWh = -0.1 }, false},
		{"negative fuel", func(p *Params) { p.FuelUSDPerMWh = -1 }, false},
		{"concave curve", func(p *Params) { p.FuelQuadUSD = -1 }, false},
		{"negative startup", func(p *Params) { p.StartupUSD = -1 }, false},
		{"negative lag", func(p *Params) { p.StartupLagSlots = -1 }, false},
	}
	for _, tc := range cases {
		p := testParams()
		tc.mutate(&p)
		if err := p.Validate(); (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestFuelCurve(t *testing.T) {
	p := testParams()
	p.FuelQuadUSD = 10
	if got := p.FuelCost(0.5); math.Abs(got-(80*0.5+10*0.25)) > 1e-12 {
		t.Fatalf("FuelCost(0.5) = %g", got)
	}
	if got := p.MarginalAt(0.5); math.Abs(got-(80+2*10*0.5)) > 1e-12 {
		t.Fatalf("MarginalAt(0.5) = %g", got)
	}
	if p.FuelCost(-1) != 0 {
		t.Fatal("negative output must cost nothing")
	}
}

// TestSegments: the piecewise-linear decomposition must cover the band
// exactly, with non-decreasing marginals, and integrate back to the true
// quadratic cost.
func TestSegments(t *testing.T) {
	p := testParams()
	p.FuelQuadUSD = 30

	segs := p.Segments(0.2, 1.0)
	if len(segs) != 2 {
		t.Fatalf("quadratic curve: got %d segments, want 2", len(segs))
	}
	total, cost := 0.0, p.FuelCost(0.2)
	prev := math.Inf(-1)
	for _, s := range segs {
		if s.USDPerMWh < prev {
			t.Fatalf("marginals must be non-decreasing: %v", segs)
		}
		prev = s.USDPerMWh
		total += s.Cap
		cost += s.Cap * s.USDPerMWh
	}
	if math.Abs(total-0.8) > 1e-12 {
		t.Fatalf("segment caps sum to %g, want 0.8", total)
	}
	if math.Abs(cost-p.FuelCost(1.0)) > 1e-9 {
		t.Fatalf("piecewise cost %g != true cost %g at full band", cost, p.FuelCost(1.0))
	}

	// Flat curve: a single exact segment.
	p.FuelQuadUSD = 0
	segs = p.Segments(0, 1.0)
	if len(segs) != 1 || segs[0].USDPerMWh != 80 || math.Abs(segs[0].Cap-1.0) > 1e-12 {
		t.Fatalf("flat curve segments = %v", segs)
	}
	if got := p.Segments(0.5, 0.5); got != nil {
		t.Fatalf("empty band must yield no segments, got %v", got)
	}
}

func TestDisabledIsInert(t *testing.T) {
	g, err := New(Params{})
	if err != nil {
		t.Fatal(err)
	}
	g.Tick()
	if min, max := g.Window(); min != 0 || max != 0 {
		t.Fatalf("disabled window = (%g, %g)", min, max)
	}
	if g.RequestMax() != 0 {
		t.Fatal("disabled RequestMax must be 0")
	}
	out := g.Dispatch(5)
	if out != (Outcome{}) {
		t.Fatalf("disabled dispatch produced %+v", out)
	}
	if g.Starts() != 0 || g.EnergyTotal() != 0 || g.FuelCostTotal() != 0 {
		t.Fatal("disabled generator accumulated state")
	}
}

// TestColdStartNoLag: a lag-free start pays the startup cost once and
// produces in the same slot.
func TestColdStartNoLag(t *testing.T) {
	g, _ := New(testParams())
	if min, max := g.Window(); min != 0.2 || max != 1.0 {
		t.Fatalf("cold window = (%g, %g), want (0.2, 1)", min, max)
	}
	out := g.Dispatch(0.6)
	if out.DeliveredMWh != 0.6 || out.StartupUSD != 25 {
		t.Fatalf("start dispatch = %+v", out)
	}
	if math.Abs(out.FuelUSD-48) > 1e-12 {
		t.Fatalf("fuel = %g, want 48", out.FuelUSD)
	}
	if !g.Running() || g.Starts() != 1 || g.OpSlots() != 1 {
		t.Fatalf("state after start: running=%v starts=%d ops=%d", g.Running(), g.Starts(), g.OpSlots())
	}

	// Staying on must not pay startup again.
	g.Tick()
	out = g.Dispatch(0.8)
	if out.StartupUSD != 0 || out.DeliveredMWh != 0.8 {
		t.Fatalf("second slot = %+v", out)
	}
	if g.Starts() != 1 {
		t.Fatalf("starts = %d, want 1", g.Starts())
	}
}

// TestStartupLag: with lag L, a start at slot τ delivers first energy at
// slot τ+L, and the window stays closed while synchronizing.
func TestStartupLag(t *testing.T) {
	p := testParams()
	p.StartupLagSlots = 2
	g, _ := New(p)

	// Slot 0: the unit cannot deliver anything this slot (the window is
	// closed), but a start may be requested up to the nameplate.
	g.Tick()
	if min, max := g.Window(); min != 0 || max != 0 {
		t.Fatalf("cold window with lag = (%g, %g), want closed", min, max)
	}
	if g.RequestMax() != 1.0 {
		t.Fatalf("cold RequestMax = %g, want capacity", g.RequestMax())
	}
	out := g.Dispatch(0.5)
	if out.DeliveredMWh != 0 || out.StartupUSD != 25 {
		t.Fatalf("slot 0 = %+v", out)
	}
	if !g.Starting() {
		t.Fatal("must be synchronizing after a lagged start")
	}

	// Slot 1: still synchronizing; requests are ignored and free.
	g.Tick()
	if _, max := g.Window(); max != 0 {
		t.Fatalf("window open during synchronization (max=%g)", max)
	}
	if g.RequestMax() != 0 {
		t.Fatal("RequestMax must be 0 during synchronization")
	}
	out = g.Dispatch(0.5)
	if out != (Outcome{}) {
		t.Fatalf("slot 1 = %+v", out)
	}

	// Slot 2 (= τ+L): online, full window, produces.
	g.Tick()
	if !g.Running() {
		t.Fatal("must be running after the lag elapses")
	}
	if min, max := g.Window(); min != 0.2 || max != 1.0 {
		t.Fatalf("post-sync window = (%g, %g)", min, max)
	}
	out = g.Dispatch(0.5)
	if out.DeliveredMWh != 0.5 || out.StartupUSD != 0 {
		t.Fatalf("slot 2 = %+v", out)
	}
	if g.Starts() != 1 || g.StartupCostTotal() != 25 {
		t.Fatalf("starts=%d startupUSD=%g", g.Starts(), g.StartupCostTotal())
	}
}

// TestSubMinRequestWithLagStaysOff: a request below the minimum stable
// load must mean "stay off" for a lagged unit too — not a billed cold
// start that could never hold its load.
func TestSubMinRequestWithLagStaysOff(t *testing.T) {
	p := testParams()
	p.StartupLagSlots = 2
	g, _ := New(p)
	g.Tick()
	out := g.Dispatch(0.1) // below MinLoadMWh = 0.2
	if out != (Outcome{}) || g.Starts() != 0 || g.Starting() {
		t.Fatalf("sub-min request started a lagged unit: %+v starts=%d starting=%v",
			out, g.Starts(), g.Starting())
	}
}

// TestRampLimit: while synchronized, output may rise by at most RampMWh
// per slot; shutdown is instantaneous.
func TestRampLimit(t *testing.T) {
	g, _ := New(testParams()) // ramp 0.4
	g.Dispatch(0.3)
	g.Tick()
	if _, max := g.Window(); math.Abs(max-0.7) > 1e-12 {
		t.Fatalf("ramped max = %g, want 0.7", max)
	}
	out := g.Dispatch(1.0) // clamped to 0.3+0.4
	if math.Abs(out.DeliveredMWh-0.7) > 1e-12 {
		t.Fatalf("delivered = %g, want 0.7", out.DeliveredMWh)
	}
	g.Tick()
	out = g.Dispatch(0) // instantaneous shutdown
	if out.DeliveredMWh != 0 || g.Running() {
		t.Fatalf("shutdown failed: %+v running=%v", out, g.Running())
	}
}

// TestMinLoad: requests below the minimum stable load shut the unit down
// instead of producing, and a running unit's window never collapses
// below its minimum load even with a tight ramp.
func TestMinLoad(t *testing.T) {
	p := testParams()
	p.RampMWh = 0.05 // tighter than MinLoadMWh
	g, _ := New(p)
	g.Dispatch(0.2)
	g.Tick()
	if min, max := g.Window(); min != 0.2 || max < min {
		t.Fatalf("window (%g, %g) collapsed below min load", min, max)
	}
	g.Tick()
	out := g.Dispatch(0.1) // below min stable load
	if out.DeliveredMWh != 0 || g.Running() {
		t.Fatalf("sub-min request must shut down: %+v running=%v", out, g.Running())
	}
}
