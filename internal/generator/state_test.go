package generator

import (
	"strings"
	"testing"
)

// driveUnit runs a unit through a start (paying lag and startup cost)
// and a few dispatch slots so every mutable field is non-zero.
func driveUnit(t *testing.T, g *Generator) {
	t.Helper()
	for i := 0; i < 4; i++ {
		g.Tick()
		g.DispatchAt(0.4, 1.1)
	}
	if g.EnergyTotal() == 0 || g.Starts() == 0 {
		t.Fatalf("unit did not run: energy=%g starts=%d", g.EnergyTotal(), g.Starts())
	}
}

func TestGeneratorStateRoundTrip(t *testing.T) {
	p := testParams()
	p.StartupLagSlots = 1
	p.CO2KgPerMWh = 500
	mk := func() *Generator {
		g, err := New(p)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}

	ref := mk()
	driveUnit(t, ref)
	snap := ref.State()
	if !snap.Running || snap.EnergyMWh == 0 || snap.StartupUSD == 0 || snap.CO2Kg == 0 {
		t.Fatalf("snapshot missed state: %+v", snap)
	}
	if snap.OutputMWh != ref.Output() {
		t.Fatalf("snapshot output %g, unit reports %g", snap.OutputMWh, ref.Output())
	}

	fresh := mk()
	if err := fresh.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if fresh.State() != snap {
		t.Fatalf("restored state %+v, want %+v", fresh.State(), snap)
	}

	// The restored unit must evolve identically to the original.
	refOut := ref.DispatchAt(0.6, 1.0)
	freshOut := fresh.DispatchAt(0.6, 1.0)
	if refOut != freshOut {
		t.Fatalf("post-restore dispatch diverged: %+v vs %+v", refOut, freshOut)
	}
}

func TestGeneratorRestoreRejectsCorruptState(t *testing.T) {
	p := testParams()
	p.StartupLagSlots = 2
	g, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func(*State)
		want   string
	}{
		{"negative countdown", func(s *State) { s.Countdown = -1 }, "countdown"},
		{"countdown beyond lag", func(s *State) { s.Countdown = 3 }, "countdown"},
		{"negative output", func(s *State) { s.OutputMWh = -0.1 }, "output"},
		{"output beyond capacity", func(s *State) { s.OutputMWh = 2 }, "output"},
	}
	for _, tc := range cases {
		s := g.State()
		tc.mutate(&s)
		err := g.Restore(s)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Restore() = %v, want error mentioning %q", tc.name, err, tc.want)
		}
	}
}

func TestFleetStateRoundTrip(t *testing.T) {
	mk := func() *Fleet {
		f, err := NewFleet(fleetSpecs())
		if err != nil {
			t.Fatal(err)
		}
		return f
	}

	ref := mk()
	for i := 0; i < 3; i++ {
		ref.Tick()
		ref.Dispatch(ref.SplitTotal(1.2), 1.0)
	}
	states := ref.State()
	if len(states) != ref.Size() {
		t.Fatalf("State() returned %d entries, fleet has %d units", len(states), ref.Size())
	}

	fresh := mk()
	if err := fresh.Restore(states); err != nil {
		t.Fatal(err)
	}
	if fresh.Totals() != ref.Totals() {
		t.Fatalf("restored totals %+v, want %+v", fresh.Totals(), ref.Totals())
	}
	refOuts := ref.Dispatch(ref.SplitTotal(0.9), 1.0)
	freshOuts := fresh.Dispatch(fresh.SplitTotal(0.9), 1.0)
	for i := range refOuts {
		if refOuts[i] != freshOuts[i] {
			t.Fatalf("unit %d diverged after restore: %+v vs %+v", i, refOuts[i], freshOuts[i])
		}
	}
}

func TestFleetStateEmptyAndMismatch(t *testing.T) {
	empty, err := NewFleet(nil)
	if err != nil {
		t.Fatal(err)
	}
	if empty.State() != nil {
		t.Fatal("empty fleet must snapshot to nil")
	}
	if err := empty.Restore(nil); err != nil {
		t.Fatalf("empty fleet restore: %v", err)
	}

	f, err := NewFleet(fleetSpecs())
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Restore(make([]State, 1)); err == nil {
		t.Fatal("unit-count mismatch accepted")
	}
	// A corrupt per-unit state surfaces the unit index.
	states := f.State()
	states[1].OutputMWh = -1
	if err := f.Restore(states); err == nil || !strings.Contains(err.Error(), "unit 1") {
		t.Fatalf("corrupt unit state: Restore() = %v, want unit 1 error", err)
	}
}
