// Package generator models dispatchable on-site power production — the
// diesel/gas-turbine "self-generation" source of "Dynamic Provisioning
// in Next-Generation Data Centers with On-site Power Production"
// (arXiv:1303.6775) — as a fourth supply source next to the two grid
// markets, the renewables and the UPS battery.
//
// The model captures the constraints that make on-site generation a
// genuinely different asset from a grid purchase:
//
//   - a nameplate capacity per fine slot (CapacityMWh);
//   - a minimum stable load (MinLoadMWh): a running unit cannot be
//     dispatched below it — the admissible output set is {0} ∪
//     [MinLoadMWh, max];
//   - an up-ramp limit (RampMWh) while synchronized: output may rise by
//     at most RampMWh per slot (shutdown is instantaneous);
//   - a convex fuel cost curve Fuel(g) = FuelUSDPerMWh·g +
//     FuelQuadUSD·g², the classical linear-plus-quadratic heat-rate
//     approximation;
//   - a fixed startup cost and a startup lag: a cold start costs
//     StartupUSD and delivers its first energy StartupLagSlots slots
//     after the start request (synchronization time).
//
// A Generator with CapacityMWh == 0 is disabled: every method reports a
// closed dispatch window and Dispatch is a no-op, so configurations
// without on-site generation reproduce generator-free results exactly.
package generator

import (
	"errors"
	"fmt"
	"math"
)

// tol absorbs round-off in dispatch requests.
const tol = 1e-9

// Params describes one dispatchable on-site generation unit.
type Params struct {
	// CapacityMWh is the nameplate output per fine slot (0 disables the
	// generator entirely).
	CapacityMWh float64
	// MinLoadMWh is the minimum stable load: a running unit produces at
	// least this much. Requests below it shut the unit down.
	MinLoadMWh float64
	// RampMWh bounds the per-slot output increase while synchronized
	// (0 means unconstrained). Shutdown is instantaneous, and the first
	// producing slot after a start may sit anywhere in
	// [MinLoadMWh, CapacityMWh] (synchronization brings the unit to its
	// dispatch point).
	RampMWh float64
	// FuelUSDPerMWh is the linear fuel price b of the cost curve
	// Fuel(g) = b·g + c·g².
	FuelUSDPerMWh float64
	// FuelQuadUSD is the quadratic coefficient c (USD/MWh²) of the fuel
	// cost curve; 0 gives a flat marginal price.
	FuelQuadUSD float64
	// StartupUSD is the fixed cost charged once per cold start.
	StartupUSD float64
	// StartupLagSlots is the synchronization delay: a start requested at
	// slot τ delivers its first energy at slot τ + StartupLagSlots.
	StartupLagSlots int
	// CO2KgPerMWh is the unit's emission intensity: kilograms of CO₂
	// released per MWh of delivered energy. It does not enter the fuel
	// bill by itself — a carbon price folds it into the marginal cost at
	// configuration time (see engine.Options.CarbonUSDPerTon) — but every
	// delivered MWh is accounted in the emissions totals.
	CO2KgPerMWh float64
}

// Enabled reports whether the unit exists at all.
func (p Params) Enabled() bool { return p.CapacityMWh > 0 }

// Validate reports parameter errors. NaN and ±Inf are rejected up front:
// every comparison below is false for NaN, so without the explicit check
// a NaN field would sail through validation and poison dispatch, fuel
// and emission series downstream.
func (p Params) Validate() error {
	for _, v := range [...]float64{
		p.CapacityMWh, p.MinLoadMWh, p.RampMWh,
		p.FuelUSDPerMWh, p.FuelQuadUSD, p.StartupUSD, p.CO2KgPerMWh,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return errors.New("generator: non-finite parameter")
		}
	}
	switch {
	case p.CapacityMWh < 0:
		return errors.New("generator: negative capacity")
	case p.MinLoadMWh < 0 || p.MinLoadMWh > p.CapacityMWh:
		return errors.New("generator: MinLoadMWh outside [0, CapacityMWh]")
	case p.RampMWh < 0:
		return errors.New("generator: negative ramp limit")
	case p.FuelUSDPerMWh < 0:
		return errors.New("generator: negative fuel price")
	case p.FuelQuadUSD < 0:
		return errors.New("generator: negative quadratic fuel coefficient (non-convex curve)")
	case p.StartupUSD < 0:
		return errors.New("generator: negative startup cost")
	case p.StartupLagSlots < 0:
		return errors.New("generator: negative startup lag")
	case p.CO2KgPerMWh < 0:
		return errors.New("generator: negative CO2 intensity")
	}
	return nil
}

// FuelCost returns the fuel cost of producing g MWh in one slot.
func (p Params) FuelCost(g float64) float64 {
	if g <= 0 {
		return 0
	}
	return p.FuelUSDPerMWh*g + p.FuelQuadUSD*g*g
}

// MarginalAt returns the marginal fuel price dFuel/dg at output g.
func (p Params) MarginalAt(g float64) float64 {
	return p.FuelUSDPerMWh + 2*p.FuelQuadUSD*g
}

// Segment is one piece of a piecewise-linear view of the fuel curve:
// Cap MWh of output available at constant marginal price USDPerMWh.
// Because the curve is convex, marginals are non-decreasing across
// consecutive segments, which is exactly what a merit-order (or LP)
// dispatch needs.
type Segment struct {
	Cap       float64
	USDPerMWh float64
}

// Segments decomposes the output band (lo, hi] into pieces with constant
// marginal prices: one exact piece for a flat curve, two equal pieces
// priced at their exact average marginal for a quadratic curve (the
// piecewise approximation is cost-exact at the segment boundaries).
func (p Params) Segments(lo, hi float64) []Segment {
	return p.AppendSegments(nil, lo, hi)
}

// AppendSegments appends the Segments decomposition of (lo, hi] to dst
// and returns it, letting hot paths reuse a scratch buffer instead of
// allocating per call.
func (p Params) AppendSegments(dst []Segment, lo, hi float64) []Segment {
	if hi <= lo+tol {
		return dst
	}
	if p.FuelQuadUSD == 0 {
		return append(dst, Segment{Cap: hi - lo, USDPerMWh: p.FuelUSDPerMWh})
	}
	mid := lo + (hi-lo)/2
	// Average marginal over (a, b] is (Fuel(b)−Fuel(a))/(b−a).
	avg := func(a, b float64) float64 { return (p.FuelCost(b) - p.FuelCost(a)) / (b - a) }
	return append(dst,
		Segment{Cap: mid - lo, USDPerMWh: avg(lo, mid)},
		Segment{Cap: hi - mid, USDPerMWh: avg(mid, hi)},
	)
}

// Generator is a stateful on-site generation unit.
type Generator struct {
	params Params

	running   bool
	output    float64 // energy delivered in the previous slot
	countdown int     // startup-lag slots remaining
	fresh     bool    // first slot after synchronization: ramp-free

	// lifetime accounting
	energyMWh  float64
	fuelUSD    float64
	startupUSD float64
	co2Kg      float64
	starts     int
	opSlots    int
}

// New returns a cold (off) generator.
func New(p Params) (*Generator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Generator{params: p}, nil
}

// Params returns the unit's configuration.
func (g *Generator) Params() Params { return g.params }

// Running reports whether the unit is synchronized and producing-capable.
func (g *Generator) Running() bool { return g.running }

// Starting reports whether a start is pending (lag not yet elapsed).
func (g *Generator) Starting() bool { return g.countdown > 0 }

// Output returns the energy delivered in the previous slot.
func (g *Generator) Output() float64 { return g.output }

// EnergyTotal returns lifetime delivered energy in MWh.
func (g *Generator) EnergyTotal() float64 { return g.energyMWh }

// FuelCostTotal returns lifetime fuel cost in USD.
func (g *Generator) FuelCostTotal() float64 { return g.fuelUSD }

// StartupCostTotal returns lifetime startup cost in USD.
func (g *Generator) StartupCostTotal() float64 { return g.startupUSD }

// CO2Total returns lifetime emissions in kg CO₂.
func (g *Generator) CO2Total() float64 { return g.co2Kg }

// Starts returns the number of cold starts.
func (g *Generator) Starts() int { return g.starts }

// OpSlots returns the number of slots with positive output.
func (g *Generator) OpSlots() int { return g.opSlots }

// Window returns the deliverable output band for the current slot:
// (0, 0) when the unit is disabled, still synchronizing, or off behind
// a startup lag (a start requested now delivers nothing this slot);
// otherwise [MinLoadMWh, max] where max respects the nameplate and,
// while synchronized, the up-ramp limit. Zero output (shutdown / stay
// off) is always admissible in addition to the band.
func (g *Generator) Window() (min, max float64) {
	p := g.params
	if !p.Enabled() || g.countdown > 0 || (!g.running && p.StartupLagSlots > 0) {
		return 0, 0
	}
	max = p.CapacityMWh
	if g.running && p.RampMWh > 0 && !g.fresh {
		max = math.Min(max, g.output+p.RampMWh)
		// A synchronized unit can always hold its minimum stable load.
		max = math.Max(max, p.MinLoadMWh)
	}
	return p.MinLoadMWh, max
}

// RequestMax returns the largest meaningful dispatch request this slot:
// the deliverable maximum while running or startable without lag, the
// nameplate capacity when off with a pending synchronization lag (the
// request then signals a start and delivers nothing yet), and 0 while a
// start is already in progress or the unit is disabled.
func (g *Generator) RequestMax() float64 {
	p := g.params
	if !p.Enabled() || g.countdown > 0 {
		return 0
	}
	if !g.running && p.StartupLagSlots > 0 {
		return p.CapacityMWh
	}
	_, max := g.Window()
	return max
}

// State is one unit's mutable state, exported for session checkpoints
// (Params are pinned by the checkpoint's config hash, not stored here).
type State struct {
	Running    bool    `json:"running"`
	OutputMWh  float64 `json:"outputMWh"`
	Countdown  int     `json:"countdown"`
	Fresh      bool    `json:"fresh"`
	EnergyMWh  float64 `json:"energyMWh"`
	FuelUSD    float64 `json:"fuelUSD"`
	StartupUSD float64 `json:"startupUSD"`
	CO2Kg      float64 `json:"co2Kg"`
	Starts     int     `json:"starts"`
	OpSlots    int     `json:"opSlots"`
}

// State captures the unit's mutable state for a checkpoint.
func (g *Generator) State() State {
	return State{
		Running:    g.running,
		OutputMWh:  g.output,
		Countdown:  g.countdown,
		Fresh:      g.fresh,
		EnergyMWh:  g.energyMWh,
		FuelUSD:    g.fuelUSD,
		StartupUSD: g.startupUSD,
		CO2Kg:      g.co2Kg,
		Starts:     g.starts,
		OpSlots:    g.opSlots,
	}
}

// Restore overwrites the unit's mutable state from a checkpoint.
func (g *Generator) Restore(s State) error {
	if s.Countdown < 0 || s.Countdown > g.params.StartupLagSlots {
		return fmt.Errorf("generator: restored countdown %d outside [0, %d]",
			s.Countdown, g.params.StartupLagSlots)
	}
	if s.OutputMWh < 0 || s.OutputMWh > g.params.CapacityMWh+tol {
		return fmt.Errorf("generator: restored output %g outside [0, %g]",
			s.OutputMWh, g.params.CapacityMWh)
	}
	g.running = s.Running
	g.output = s.OutputMWh
	g.countdown = s.Countdown
	g.fresh = s.Fresh
	g.energyMWh = s.EnergyMWh
	g.fuelUSD = s.FuelUSD
	g.startupUSD = s.StartupUSD
	g.co2Kg = s.CO2Kg
	g.starts = s.Starts
	g.opSlots = s.OpSlots
	return nil
}

// Outcome reports one executed dispatch slot.
type Outcome struct {
	// DeliveredMWh is the energy actually produced this slot.
	DeliveredMWh float64
	// FuelUSD is the fuel cost of the delivered energy.
	FuelUSD float64
	// StartupUSD is the startup cost charged this slot (on cold starts).
	StartupUSD float64
	// CO2Kg is the emitted CO₂ of the delivered energy.
	CO2Kg float64
}

// Tick advances the synchronization countdown at the start of a slot,
// BEFORE the controller observes the unit: a start requested at slot τ
// with lag L becomes visible (and dispatchable) at slot τ+L. Callers
// drive one Tick per fine slot, then read Window/RequestMax, then
// Dispatch.
func (g *Generator) Tick() {
	if g.countdown == 0 {
		return
	}
	g.countdown--
	if g.countdown == 0 {
		g.running = true
		g.output = 0
		g.fresh = true
	}
}

// Dispatch executes one slot with the requested output at the unit's
// configured fuel price; see DispatchAt.
func (g *Generator) Dispatch(request float64) Outcome {
	return g.DispatchAt(request, 1)
}

// DispatchAt executes one slot with the requested output and returns what
// was delivered and charged, with the whole fuel curve scaled by the
// slot's fuel-price multiplier (1 reproduces the configured curve
// exactly). Requests are clamped to the admissible set:
// below the minimum stable load the unit shuts down (or stays off), and
// a positive request while off triggers a cold start — paying StartupUSD
// once and, with a synchronization lag, delivering its first energy
// StartupLagSlots slots later. Requests during an in-progress start are
// ignored (the start is already committed).
func (g *Generator) DispatchAt(request, fuelScale float64) Outcome {
	p := g.params
	if !p.Enabled() {
		return Outcome{}
	}
	if g.countdown > 0 {
		// Still synchronizing: no output yet, no further charges.
		return Outcome{}
	}
	// The minimum-stable-load guard uses the configured parameter, not
	// the window minimum: an off unit behind a startup lag has a closed
	// (0, 0) window, and a sub-min request must mean "stay off" there
	// too — not a billed cold start that can never hold its load.
	if request <= tol || request < p.MinLoadMWh-tol {
		// Below minimum stable load: shut down (or stay off).
		g.running = false
		g.output = 0
		g.fresh = false
		return Outcome{}
	}
	_, max := g.Window()
	var out Outcome
	if !g.running {
		out.StartupUSD = p.StartupUSD
		g.startupUSD += p.StartupUSD
		g.starts++
		if p.StartupLagSlots > 0 {
			g.countdown = p.StartupLagSlots
			return out
		}
		g.running = true
	}
	delivered := math.Min(request, max)
	out.DeliveredMWh = delivered
	out.FuelUSD = fuelScale * p.FuelCost(delivered)
	out.CO2Kg = p.CO2KgPerMWh * delivered
	g.output = delivered
	g.fresh = false
	g.energyMWh += delivered
	g.fuelUSD += out.FuelUSD
	g.co2Kg += out.CO2Kg
	g.opSlots++
	return out
}
