// Package workload generates synthetic datacenter power-demand traces with
// the two demand classes of SmartDPSS (Sec. II-A.2).
//
// The paper uses a Google cluster trace (following reference [19]):
// delay-sensitive Websearch/Webmail services plus delay-tolerant MapReduce
// batch work, scaled to the modelled datacenter "by removing demand peaks
// above Pgrid". This package substitutes a seeded generator:
//
//   - Delay-sensitive demand follows a diurnal double-hump interactive
//     curve with weekday/weekend modulation, multiplicative AR(1) noise and
//     occasional flash crowds.
//   - Delay-tolerant demand is a clustered batch-arrival process: jobs of
//     random total energy spread over a random duration, submitted in
//     bursts, bounded per slot by DdtMax (the paper's Ddtmax).
//
// The pair is non-stationary and bursty — the "arbitrary demand" regime the
// algorithm is designed for — and the combined demand is clipped at Pgrid
// exactly as in the paper's preprocessing.
//
// The package owns the demand generators and their parameters.
// internal/engine is its sole consumer: trace generation materializes the
// two demand series into a trace.Set that the simulator and every policy
// read from.
package workload

import (
	"errors"
	"math"
	"math/rand"

	"github.com/smartdpss/smartdpss/internal/trace"
)

// Config parameterizes the demand generator.
type Config struct {
	// Days is the number of simulated days.
	Days int
	// SlotMinutes is the trace resolution.
	SlotMinutes int
	// InteractivePeakMW is the peak of the diurnal delay-sensitive curve.
	InteractivePeakMW float64
	// InteractiveBase is the overnight floor as a fraction of the peak.
	InteractiveBase float64
	// BatchMeanMW is the long-run average delay-tolerant power.
	BatchMeanMW float64
	// DdtMax bounds delay-tolerant arrivals per slot in MWh
	// (paper: 0 ≤ ddt(τ) ≤ Ddtmax).
	DdtMax float64
	// PgridMW caps the combined demand (peaks above are clipped, matching
	// the paper's trace preprocessing).
	PgridMW float64
	// WeekendFactor scales interactive demand on weekends.
	WeekendFactor float64
	// FlashProb is the per-slot probability that a flash crowd starts.
	FlashProb float64
	// NoiseSigma is the relative AR(1) noise scale for interactive demand.
	NoiseSigma float64
	// Seed drives the deterministic random source.
	Seed int64
}

// Defaults returns the configuration of the paper-like scenario: a 2 MW
// datacenter with roughly two-thirds interactive and one-third batch load.
func Defaults() Config {
	return Config{
		Days:              31,
		SlotMinutes:       60,
		InteractivePeakMW: 1.3,
		InteractiveBase:   0.45,
		BatchMeanMW:       0.45,
		DdtMax:            1.0,
		PgridMW:           2.0,
		WeekendFactor:     0.8,
		FlashProb:         0.01,
		NoiseSigma:        0.06,
		Seed:              3,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Days <= 0:
		return errors.New("workload: Days must be positive")
	case c.SlotMinutes <= 0 || c.SlotMinutes > 24*60:
		return errors.New("workload: SlotMinutes out of range")
	case c.InteractivePeakMW <= 0:
		return errors.New("workload: InteractivePeakMW must be positive")
	case c.InteractiveBase <= 0 || c.InteractiveBase > 1:
		return errors.New("workload: InteractiveBase must be in (0, 1]")
	case c.BatchMeanMW < 0:
		return errors.New("workload: negative BatchMeanMW")
	case c.DdtMax <= 0:
		return errors.New("workload: DdtMax must be positive")
	case c.PgridMW <= 0:
		return errors.New("workload: PgridMW must be positive")
	case c.WeekendFactor <= 0 || c.WeekendFactor > 1:
		return errors.New("workload: WeekendFactor must be in (0, 1]")
	case c.FlashProb < 0 || c.FlashProb > 1:
		return errors.New("workload: FlashProb must be in [0, 1]")
	case c.NoiseSigma < 0:
		return errors.New("workload: negative NoiseSigma")
	}
	return nil
}

// Generate produces the delay-sensitive and delay-tolerant demand series in
// MWh per slot.
func Generate(c Config) (ds, dt *trace.Series, err error) {
	if err := c.Validate(); err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(c.Seed))
	slotsPerDay := 24 * 60 / c.SlotMinutes
	n := c.Days * slotsPerDay
	ds = trace.New("demand_ds", "MWh", c.SlotMinutes, n)
	dt = trace.New("demand_dt", "MWh", c.SlotMinutes, n)
	slotHours := float64(c.SlotMinutes) / 60.0

	// --- Delay-sensitive interactive curve ---
	noise := 0.0
	flashLeft := 0
	flashMul := 1.0
	for i := 0; i < n; i++ {
		day := i / slotsPerDay
		hour := (float64(i%slotsPerDay) + 0.5) * slotHours

		shape := interactiveShape(hour) // in [0, 1]
		level := c.InteractivePeakMW * (c.InteractiveBase + (1-c.InteractiveBase)*shape)
		if day%7 == 5 || day%7 == 6 {
			level *= c.WeekendFactor
		}
		noise += -0.4*noise + c.NoiseSigma*rng.NormFloat64()
		if flashLeft > 0 {
			flashLeft--
		} else if rng.Float64() < c.FlashProb {
			flashLeft = 2 + rng.Intn(4)
			flashMul = 1.3 + 0.7*rng.Float64()
		}
		mul := 1.0
		if flashLeft > 0 {
			mul = flashMul
		}
		powerMW := math.Max(0, level*(1+noise)*mul)
		ds.Values[i] = math.Min(powerMW, c.PgridMW) * slotHours
	}

	// --- Delay-tolerant batch arrivals ---
	// Jobs arrive in bursts; each job deposits energy over several slots.
	// Expected arrivals are tuned so the long-run mean matches BatchMeanMW.
	meanJobMWh := 1.5 * slotHours // average total energy per job
	jobsPerSlot := c.BatchMeanMW * slotHours / meanJobMWh
	for i := 0; i < n; i++ {
		hour := (float64(i%slotsPerDay) + 0.5) * slotHours
		// Batch submissions skew towards working hours.
		rate := jobsPerSlot * (0.6 + 0.8*interactiveShape(hour))
		for j := poisson(rng, rate); j > 0; j-- {
			energy := meanJobMWh * (0.4 + 1.2*rng.Float64())
			duration := 1 + rng.Intn(4)
			per := energy / float64(duration)
			for k := 0; k < duration && i+k < n; k++ {
				dt.Values[i+k] += per
			}
		}
	}
	for i := range dt.Values {
		dt.Values[i] = math.Min(dt.Values[i], c.DdtMax)
	}

	// Clip combined demand at Pgrid (the paper removes peaks above Pgrid).
	budget := c.PgridMW * slotHours
	for i := 0; i < n; i++ {
		if over := ds.Values[i] + dt.Values[i] - budget; over > 0 {
			dt.Values[i] = math.Max(0, dt.Values[i]-over)
			if ds.Values[i]+dt.Values[i] > budget {
				ds.Values[i] = budget - dt.Values[i]
			}
		}
	}
	return ds, dt, nil
}

// interactiveShape is a smooth [0, 1] diurnal curve with a midday plateau
// and evening peak, lowest around 4am.
func interactiveShape(hour float64) float64 {
	midday := math.Exp(-sq(hour-14) / (2 * sq(3.5)))
	evening := math.Exp(-sq(hour-20) / (2 * sq(1.8)))
	v := 0.85*midday + 0.55*evening
	return math.Min(1, v)
}

// poisson draws a Poisson variate via Knuth's method; adequate for the
// small rates used here.
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 1000 {
			return k // guard against pathological rates
		}
	}
}

func sq(x float64) float64 { return x * x }
