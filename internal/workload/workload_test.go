package workload

import (
	"testing"
)

func mustGenerate(t *testing.T, c Config) (ds, dt []float64) {
	t.Helper()
	dsS, dtS, err := Generate(c)
	if err != nil {
		t.Fatal(err)
	}
	return dsS.Values, dtS.Values
}

func TestGenerateLengthsAndBounds(t *testing.T) {
	c := Defaults()
	ds, dt := mustGenerate(t, c)
	if len(ds) != 31*24 || len(dt) != 31*24 {
		t.Fatalf("lengths = %d, %d, want %d", len(ds), len(dt), 31*24)
	}
	budget := c.PgridMW // 1-hour slots: MWh == MW
	for i := range ds {
		if ds[i] < 0 || dt[i] < 0 {
			t.Fatalf("negative demand at %d: ds=%g dt=%g", i, ds[i], dt[i])
		}
		if dt[i] > c.DdtMax+1e-12 {
			t.Fatalf("dt[%d] = %g exceeds DdtMax %g", i, dt[i], c.DdtMax)
		}
		if ds[i]+dt[i] > budget+1e-9 {
			t.Fatalf("total demand %g at slot %d exceeds Pgrid budget %g",
				ds[i]+dt[i], i, budget)
		}
	}
}

func TestGenerateDiurnalPattern(t *testing.T) {
	c := Defaults()
	c.FlashProb = 0
	c.NoiseSigma = 0
	ds, _ := mustGenerate(t, c)
	day, night := 0.0, 0.0
	for d := 0; d < c.Days; d++ {
		day += ds[d*24+14]
		night += ds[d*24+4]
	}
	if day <= night {
		t.Fatalf("2pm total %g not above 4am total %g", day, night)
	}
}

func TestGenerateWeekendDip(t *testing.T) {
	c := Defaults()
	c.FlashProb = 0
	c.NoiseSigma = 0
	ds, _ := mustGenerate(t, c)
	weekday, weekend := 0.0, 0.0
	nWd, nWe := 0, 0
	for i, v := range ds {
		if (i/24)%7 >= 5 {
			weekend += v
			nWe++
		} else {
			weekday += v
			nWd++
		}
	}
	if weekend/float64(nWe) >= weekday/float64(nWd) {
		t.Fatalf("weekend mean %g not below weekday mean %g",
			weekend/float64(nWe), weekday/float64(nWd))
	}
}

func TestGenerateBatchMeanApproximatelyTuned(t *testing.T) {
	c := Defaults()
	c.Days = 62 // longer horizon tightens the estimate
	_, dt := mustGenerate(t, c)
	sum := 0.0
	for _, v := range dt {
		sum += v
	}
	mean := sum / float64(len(dt))
	// Clipping at DdtMax and Pgrid biases the mean down; accept a wide band.
	if mean < 0.5*c.BatchMeanMW || mean > 1.5*c.BatchMeanMW {
		t.Fatalf("batch mean %g MW, want within 50%% of %g", mean, c.BatchMeanMW)
	}
}

func TestGenerateBatchBurstierThanInteractive(t *testing.T) {
	c := Defaults()
	dsS, dtS, err := Generate(c)
	if err != nil {
		t.Fatal(err)
	}
	// Coefficient of variation: batch arrivals are the bursty class.
	cvDS := dsS.StdDev() / dsS.Mean()
	cvDT := dtS.StdDev() / dtS.Mean()
	if cvDT <= cvDS {
		t.Fatalf("batch CV %g not above interactive CV %g", cvDT, cvDS)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	ds1, dt1 := mustGenerate(t, Defaults())
	ds2, dt2 := mustGenerate(t, Defaults())
	for i := range ds1 {
		if ds1[i] != ds2[i] || dt1[i] != dt2[i] {
			t.Fatalf("same seed diverged at slot %d", i)
		}
	}
	c := Defaults()
	c.Seed = 1234
	ds3, _ := mustGenerate(t, c)
	same := true
	for i := range ds1 {
		if ds1[i] != ds3[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestGenerateFlashCrowdsRaisePeak(t *testing.T) {
	quiet := Defaults()
	quiet.FlashProb = 0
	quiet.NoiseSigma = 0
	crowded := quiet
	crowded.FlashProb = 0.05
	qDS, _, err := Generate(quiet)
	if err != nil {
		t.Fatal(err)
	}
	cDS, _, err := Generate(crowded)
	if err != nil {
		t.Fatal(err)
	}
	if cDS.Max() <= qDS.Max() {
		t.Fatalf("flash crowds should raise the peak: %g vs %g", cDS.Max(), qDS.Max())
	}
}

func TestConfigValidate(t *testing.T) {
	mut := func(f func(*Config)) Config {
		c := Defaults()
		f(&c)
		return c
	}
	bad := []Config{
		mut(func(c *Config) { c.Days = 0 }),
		mut(func(c *Config) { c.SlotMinutes = 0 }),
		mut(func(c *Config) { c.InteractivePeakMW = 0 }),
		mut(func(c *Config) { c.InteractiveBase = 0 }),
		mut(func(c *Config) { c.InteractiveBase = 1.5 }),
		mut(func(c *Config) { c.BatchMeanMW = -1 }),
		mut(func(c *Config) { c.DdtMax = 0 }),
		mut(func(c *Config) { c.PgridMW = 0 }),
		mut(func(c *Config) { c.WeekendFactor = 0 }),
		mut(func(c *Config) { c.FlashProb = 2 }),
		mut(func(c *Config) { c.NoiseSigma = -0.1 }),
	}
	for i, c := range bad {
		if _, _, err := Generate(c); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestPoisson(t *testing.T) {
	// Deterministic sanity: rate 0 must give 0 and the mean must roughly
	// track lambda for a moderate rate.
	dsS, _, err := Generate(Defaults())
	if err != nil {
		t.Fatal(err)
	}
	_ = dsS
}

func TestInteractiveShapeBounds(t *testing.T) {
	for h := 0.0; h < 24; h += 0.25 {
		v := interactiveShape(h)
		if v < 0 || v > 1 {
			t.Fatalf("interactiveShape(%g) = %g outside [0, 1]", h, v)
		}
	}
	if interactiveShape(14) <= interactiveShape(4) {
		t.Error("2pm shape must exceed 4am shape")
	}
}
