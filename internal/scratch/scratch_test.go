package scratch

import "testing"

func TestForReusesCapacity(t *testing.T) {
	buf := make([]float64, 8)
	buf[3] = 7
	got := For(buf, 4)
	if len(got) != 4 || cap(got) != 8 {
		t.Fatalf("len=%d cap=%d, want 4/8", len(got), cap(got))
	}
	if got[3] != 7 {
		t.Fatal("For must not clear contents")
	}
	grown := For(buf, 16)
	if len(grown) != 16 {
		t.Fatalf("len=%d, want 16", len(grown))
	}
}

func TestZeroedClears(t *testing.T) {
	buf := []int{1, 2, 3, 4}
	got := Zeroed(buf, 3)
	for i, v := range got {
		if v != 0 {
			t.Fatalf("got[%d] = %d, want 0", i, v)
		}
	}
	if len(Zeroed[bool](nil, 5)) != 5 {
		t.Fatal("Zeroed(nil, 5) must allocate")
	}
}
