// Package scratch holds the one slice-reuse idiom every hot-path
// package shares: grow a caller-owned buffer to the requested length,
// reallocating only when the capacity no longer fits. Centralizing it
// keeps the zeroing contract explicit — For hands back unspecified
// contents for buffers the caller overwrites entirely, Zeroed clears
// every element for buffers that accumulate — so call sites cannot
// silently inherit stale data by picking a divergent local helper.
//
// The package owns nothing but the two generic helpers; it imports
// nothing. Its consumers are the allocation-free hot paths: internal/lp
// (tableau arena, standard-form scratch), internal/core (slot scratch)
// and internal/baseline (LP model build buffers).
package scratch

// For returns buf resized to n, reallocating only on growth. Contents
// are unspecified: callers must overwrite every element they read.
func For[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	return buf[:n]
}

// Zeroed returns buf resized to n with every element set to the zero
// value.
func Zeroed[T any](buf []T, n int) []T {
	buf = For(buf, n)
	var zero T
	for i := range buf {
		buf[i] = zero
	}
	return buf
}
