// Package wind generates synthetic on-site wind production traces.
//
// The paper's DPSS integrates "renewable energy, such as solar and wind
// energies" (Sec. I); its evaluation uses only the MIDC solar trace, so
// wind is the natural first extension. The generator models hub-height
// wind speed as a mean-reverting (Ornstein–Uhlenbeck-like) process with a
// weak diurnal modulation and synoptic-scale weather fronts (a slow
// random walk of the regional mean), then maps speed to power through the
// standard turbine curve: zero below cut-in, cubic between cut-in and
// rated speed, flat at rated output, and a hard cut-out in storms.
//
// Compared to solar, wind is not day-night gated and its autocorrelation
// is weather-scale rather than astronomical — mixing the two (see the
// facade's TraceConfig.WindCapacityMW) smooths the renewable profile,
// which is exactly why operators pair them.
//
// The package owns the wind-speed process and the turbine curve.
// internal/engine is its sole consumer: trace generation merges its
// output with solar into the renewable series of the trace.Set that the
// simulator and policies read.
package wind

import (
	"errors"
	"math"
	"math/rand"

	"github.com/smartdpss/smartdpss/internal/trace"
)

// Config parameterizes the wind generator.
type Config struct {
	// Days is the number of simulated days.
	Days int
	// SlotMinutes is the trace resolution.
	SlotMinutes int
	// CapacityMW is the rated (nameplate) farm output.
	CapacityMW float64
	// MeanSpeedMS is the long-run mean hub-height wind speed in m/s.
	MeanSpeedMS float64
	// SpeedStdMS is the standard deviation of the fast speed fluctuations.
	SpeedStdMS float64
	// CutInMS, RatedMS and CutOutMS define the turbine power curve.
	CutInMS  float64
	RatedMS  float64
	CutOutMS float64
	// FrontStdMS scales the slow synoptic random walk of the regional
	// mean (weather fronts passing over days).
	FrontStdMS float64
	// DiurnalAmp is the relative amplitude of the weak diurnal speed
	// modulation (surface heating; typically small).
	DiurnalAmp float64
	// Seed drives the deterministic random source.
	Seed int64
}

// Defaults returns a mid-continental winter wind site.
func Defaults() Config {
	return Config{
		Days:        31,
		SlotMinutes: 60,
		CapacityMW:  1.0,
		MeanSpeedMS: 7.5,
		SpeedStdMS:  1.8,
		CutInMS:     3.0,
		RatedMS:     12.0,
		CutOutMS:    25.0,
		FrontStdMS:  0.35,
		DiurnalAmp:  0.08,
		Seed:        4,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Days <= 0:
		return errors.New("wind: Days must be positive")
	case c.SlotMinutes <= 0 || c.SlotMinutes > 24*60:
		return errors.New("wind: SlotMinutes out of range")
	case c.CapacityMW < 0:
		return errors.New("wind: negative capacity")
	case c.MeanSpeedMS <= 0:
		return errors.New("wind: MeanSpeedMS must be positive")
	case c.SpeedStdMS < 0:
		return errors.New("wind: negative SpeedStdMS")
	case c.CutInMS <= 0 || c.RatedMS <= c.CutInMS || c.CutOutMS <= c.RatedMS:
		return errors.New("wind: power curve must satisfy 0 < cut-in < rated < cut-out")
	case c.FrontStdMS < 0:
		return errors.New("wind: negative FrontStdMS")
	case c.DiurnalAmp < 0 || c.DiurnalAmp > 1:
		return errors.New("wind: DiurnalAmp must be in [0, 1]")
	}
	return nil
}

// Generate produces the production series in MWh per slot.
func Generate(c Config) (*trace.Series, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(c.Seed))
	slotsPerDay := 24 * 60 / c.SlotMinutes
	n := c.Days * slotsPerDay
	out := trace.New("wind", "MWh", c.SlotMinutes, n)
	slotHours := float64(c.SlotMinutes) / 60.0

	front := 0.0           // slow synoptic deviation of the regional mean
	speed := c.MeanSpeedMS // fast mean-reverting speed process
	for i := 0; i < n; i++ {
		hour := (float64(i%slotsPerDay) + 0.5) * slotHours

		// Weather fronts: a bounded random walk updated each slot.
		front += c.FrontStdMS * math.Sqrt(slotHours) * rng.NormFloat64()
		front = clamp(front, -0.5*c.MeanSpeedMS, c.MeanSpeedMS)

		// Fast fluctuations: mean reversion towards the modulated mean.
		target := (c.MeanSpeedMS + front) * (1 + c.DiurnalAmp*math.Sin(2*math.Pi*(hour-15)/24))
		speed += 0.35*(target-speed) + c.SpeedStdMS*math.Sqrt(slotHours)*0.6*rng.NormFloat64()
		speed = math.Max(0, speed)

		powerMW := c.CapacityMW * powerCurve(speed, c.CutInMS, c.RatedMS, c.CutOutMS)
		out.Values[i] = powerMW * slotHours
	}
	return out, nil
}

// powerCurve maps wind speed to the per-unit turbine output.
func powerCurve(speed, cutIn, rated, cutOut float64) float64 {
	switch {
	case speed < cutIn || speed >= cutOut:
		return 0
	case speed >= rated:
		return 1
	default:
		// Cubic interpolation between cut-in and rated speeds.
		num := speed*speed*speed - cutIn*cutIn*cutIn
		den := rated*rated*rated - cutIn*cutIn*cutIn
		return num / den
	}
}

func clamp(x, lo, hi float64) float64 { return math.Min(hi, math.Max(lo, x)) }
