package wind

import (
	"math"
	"testing"
)

func mustGenerate(t *testing.T, c Config) []float64 {
	t.Helper()
	s, err := Generate(c)
	if err != nil {
		t.Fatal(err)
	}
	return s.Values
}

func TestGenerateBounds(t *testing.T) {
	c := Defaults()
	vals := mustGenerate(t, c)
	if len(vals) != 31*24 {
		t.Fatalf("len = %d, want %d", len(vals), 31*24)
	}
	capMWh := c.CapacityMW // 1-hour slots
	for i, v := range vals {
		if v < 0 || v > capMWh+1e-12 {
			t.Fatalf("vals[%d] = %g outside [0, %g]", i, v, capMWh)
		}
	}
}

func TestGenerateProducesEnergy(t *testing.T) {
	c := Defaults()
	vals := mustGenerate(t, c)
	total := 0.0
	for _, v := range vals {
		total += v
	}
	// A 7.5 m/s site with a 12 m/s rated turbine should run at a
	// plausible capacity factor.
	cf := total / (float64(len(vals)) * c.CapacityMW)
	if cf < 0.1 || cf > 0.7 {
		t.Fatalf("capacity factor = %.3f, expected 0.1..0.7", cf)
	}
}

func TestGenerateNotDayNightGated(t *testing.T) {
	// Unlike solar, wind must produce at night on a typical site.
	vals := mustGenerate(t, Defaults())
	night := 0.0
	for day := 0; day < 31; day++ {
		night += vals[day*24+2]
	}
	if night == 0 {
		t.Fatal("no night production in a month — wind should not be day-gated")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := mustGenerate(t, Defaults())
	b := mustGenerate(t, Defaults())
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at slot %d", i)
		}
	}
	c := Defaults()
	c.Seed = 99
	d := mustGenerate(t, c)
	same := true
	for i := range a {
		if a[i] != d[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds identical")
	}
}

func TestGenerateMeanSpeedEffect(t *testing.T) {
	calm := Defaults()
	calm.MeanSpeedMS = 5
	windy := Defaults()
	windy.MeanSpeedMS = 10
	c, err := Generate(calm)
	if err != nil {
		t.Fatal(err)
	}
	w, err := Generate(windy)
	if err != nil {
		t.Fatal(err)
	}
	if w.Sum() <= c.Sum() {
		t.Fatalf("10 m/s site %g not above 5 m/s site %g", w.Sum(), c.Sum())
	}
}

func TestPowerCurve(t *testing.T) {
	tests := []struct {
		speed float64
		want  float64
	}{
		{0, 0},
		{2.9, 0}, // below cut-in
		{3.0, 0}, // at cut-in: cubic starts at zero
		{12, 1},  // rated
		{20, 1},  // between rated and cut-out
		{25, 0},  // cut-out
		{30, 0},  // storm
	}
	for _, tt := range tests {
		got := powerCurve(tt.speed, 3, 12, 25)
		if math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("powerCurve(%g) = %g, want %g", tt.speed, got, tt.want)
		}
	}
	// Monotone between cut-in and rated.
	prev := -1.0
	for s := 3.0; s <= 12.0; s += 0.5 {
		v := powerCurve(s, 3, 12, 25)
		if v < prev {
			t.Fatalf("power curve not monotone at %g m/s", s)
		}
		prev = v
	}
}

func TestConfigValidate(t *testing.T) {
	mut := func(f func(*Config)) Config {
		c := Defaults()
		f(&c)
		return c
	}
	bad := []Config{
		mut(func(c *Config) { c.Days = 0 }),
		mut(func(c *Config) { c.SlotMinutes = 0 }),
		mut(func(c *Config) { c.CapacityMW = -1 }),
		mut(func(c *Config) { c.MeanSpeedMS = 0 }),
		mut(func(c *Config) { c.SpeedStdMS = -1 }),
		mut(func(c *Config) { c.CutInMS = 0 }),
		mut(func(c *Config) { c.RatedMS = c.CutInMS }),
		mut(func(c *Config) { c.CutOutMS = c.RatedMS }),
		mut(func(c *Config) { c.FrontStdMS = -1 }),
		mut(func(c *Config) { c.DiurnalAmp = 2 }),
	}
	for i, c := range bad {
		if _, err := Generate(c); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestGenerateFineResolution(t *testing.T) {
	c := Defaults()
	c.SlotMinutes = 15
	c.Days = 2
	s, err := Generate(c)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2*24*4 {
		t.Fatalf("len = %d, want %d", s.Len(), 2*24*4)
	}
	capMWh := c.CapacityMW * 0.25
	for i, v := range s.Values {
		if v < 0 || v > capMWh+1e-12 {
			t.Fatalf("15-min vals[%d] = %g outside [0, %g]", i, v, capMWh)
		}
	}
}
