package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"github.com/smartdpss/smartdpss/internal/battery"
	"github.com/smartdpss/smartdpss/internal/generator"
	"github.com/smartdpss/smartdpss/internal/market"
	"github.com/smartdpss/smartdpss/internal/queue"
)

// CheckpointVersion is the on-disk checkpoint format version. Restore
// rejects any other value with ErrSnapshotMismatch: a format change gets
// a new version, never a silent reinterpretation.
const CheckpointVersion = 1

// Checkpoint is the JSON image of a session between two slots: every
// mutable component state plus the controller's own blob. Configuration
// is NOT stored — it is pinned by ConfigHash, a digest of the session's
// Config, controller name, horizon, slot length and the caller's
// fingerprint. Restore therefore requires an identically configured
// session and fails with ErrSnapshotMismatch otherwise, instead of
// silently resuming one run's state under another run's physics.
//
// All float64 fields round-trip exactly through Go's JSON encoding
// (shortest-representation formatting is read back to the identical
// bits), so a restored session continues bit-for-bit.
type Checkpoint struct {
	Version    int    `json:"version"`
	ConfigHash string `json:"configHash"`
	Controller string `json:"controller"`

	Slot        int `json:"slot"`
	Horizon     int `json:"horizon"`
	SlotMinutes int `json:"slotMinutes"`

	Battery battery.State      `json:"battery"`
	Market  market.State       `json:"market"`
	Backlog queue.BacklogState `json:"backlog"`
	Fleet   []generator.State  `json:"fleet,omitempty"`
	Report  ReportState        `json:"report"`

	// ControllerState is the controller's Snapshotter blob
	// (policy-specific: virtual queues, trailing means, RNG position).
	ControllerState json.RawMessage `json:"controllerState,omitempty"`
}

// configHash digests everything that must match between the session that
// snapshots and the session that restores.
func configHash(cfg Config, controller string, horizon, slotMinutes int, fingerprint string) string {
	h := sha256.New()
	enc := json.NewEncoder(h)
	// Config contains only exported scalar/struct/slice fields, so the
	// encode cannot fail; the encoder writes a trailing newline, which is
	// as good a field separator as any.
	_ = enc.Encode(struct {
		Fingerprint string
		Config      Config
		Controller  string
		Horizon     int
		SlotMinutes int
	}{fingerprint, cfg, controller, horizon, slotMinutes})
	return hex.EncodeToString(h.Sum(nil))
}

// ConfigHash returns the session's configuration digest (the value a
// matching checkpoint carries). The digest is computed on first use and
// cached, so pure batch runs that never checkpoint skip the hashing —
// that keeps the hot path's allocation budget unchanged.
func (s *Session) ConfigHash() string {
	if s.hash == "" {
		fp := ""
		if s.fingerprint != nil {
			fp = s.fingerprint()
		}
		s.hash = configHash(s.cfg, s.ctrl.Name(), s.horizon, s.slotMinutes, fp)
	}
	return s.hash
}

// Snapshot captures the full simulation state as a self-describing JSON
// checkpoint. It is only valid between slots: with a Step pending Commit
// it fails with ErrPendingDecision, and after Finish with
// ErrSessionFinished. The controller must implement Snapshotter
// (ErrSnapshotUnsupported otherwise).
func (s *Session) Snapshot() ([]byte, error) {
	if s.finished {
		return nil, ErrSessionFinished
	}
	if s.pending {
		return nil, ErrPendingDecision
	}
	snap, ok := s.ctrl.(Snapshotter)
	if !ok {
		return nil, fmt.Errorf("%w: controller %q", ErrSnapshotUnsupported, s.ctrl.Name())
	}
	ctrlState, err := snap.SnapshotState()
	if err != nil {
		return nil, fmt.Errorf("sim: controller snapshot: %w", err)
	}
	cp := Checkpoint{
		Version:         CheckpointVersion,
		ConfigHash:      s.ConfigHash(),
		Controller:      s.ctrl.Name(),
		Slot:            s.slot,
		Horizon:         s.horizon,
		SlotMinutes:     s.slotMinutes,
		Battery:         s.batt.State(),
		Market:          s.acct.State(),
		Backlog:         s.backlog.State(),
		Fleet:           s.fleet.State(),
		Report:          s.rep.state(),
		ControllerState: ctrlState,
	}
	return json.Marshal(cp)
}

// Restore reinstates a checkpoint onto this session, which must be
// configured identically to the one that produced it (same Config,
// controller, horizon, slot length and fingerprint — enforced through
// the embedded hash). The session may be fresh or mid-run; either way
// its entire state is overwritten and execution resumes bit-for-bit at
// the checkpoint's slot.
func (s *Session) Restore(data []byte) error {
	if s.pending {
		return ErrPendingDecision
	}
	snap, ok := s.ctrl.(Snapshotter)
	if !ok {
		return fmt.Errorf("%w: controller %q", ErrSnapshotUnsupported, s.ctrl.Name())
	}
	var cp Checkpoint
	if err := json.Unmarshal(data, &cp); err != nil {
		return fmt.Errorf("sim: decode checkpoint: %w", err)
	}
	if cp.Version != CheckpointVersion {
		return fmt.Errorf("%w: checkpoint version %d, want %d",
			ErrSnapshotMismatch, cp.Version, CheckpointVersion)
	}
	if cp.ConfigHash != s.ConfigHash() {
		return fmt.Errorf("%w: config hash %.12s, session has %.12s",
			ErrSnapshotMismatch, cp.ConfigHash, s.ConfigHash())
	}
	if cp.Controller != s.ctrl.Name() {
		return fmt.Errorf("%w: checkpoint controller %q, session has %q",
			ErrSnapshotMismatch, cp.Controller, s.ctrl.Name())
	}
	if cp.Slot < 0 || cp.Slot > cp.Horizon {
		return fmt.Errorf("%w: checkpoint slot %d outside [0, %d]",
			ErrSnapshotMismatch, cp.Slot, cp.Horizon)
	}
	if err := s.batt.Restore(cp.Battery); err != nil {
		return fmt.Errorf("sim: restore battery: %w", err)
	}
	if err := s.acct.Restore(cp.Market); err != nil {
		return fmt.Errorf("sim: restore market: %w", err)
	}
	if err := s.fleet.Restore(cp.Fleet); err != nil {
		return fmt.Errorf("sim: restore fleet: %w", err)
	}
	s.backlog.Restore(cp.Backlog)
	s.rep = restoreReport(cp.Report, s.ctrl.Name(), s.horizon, s.cfg.KeepSeries)
	if err := snap.RestoreState(cp.ControllerState); err != nil {
		return fmt.Errorf("sim: restore controller: %w", err)
	}
	s.slot = cp.Slot
	s.finished = false
	return nil
}
