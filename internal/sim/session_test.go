package sim

import (
	"encoding/json"
	"errors"
	"math"
	"strings"
	"testing"
)

// snapController is a scriptController that can be checkpointed: its
// only mutable state is the outcome count, enough to prove the blob
// round-trips.
type snapController struct {
	scriptController
}

func (s *snapController) SnapshotState() ([]byte, error) {
	return json.Marshal(struct{ Outcomes int }{len(s.outcomes)})
}

func (s *snapController) RestoreState(data []byte) error {
	var v struct{ Outcomes int }
	if err := json.Unmarshal(data, &v); err != nil {
		return err
	}
	s.outcomes = s.outcomes[:0]
	for i := 0; i < v.Outcomes; i++ {
		s.outcomes = append(s.outcomes, Outcome{})
	}
	return nil
}

// fpFn wraps a literal fingerprint as the lazy thunk NewSession takes.
func fpFn(fp string) func() string { return func() string { return fp } }

var fpTest = fpFn("fp")

func reportBytes(t *testing.T, rep *Report) []byte {
	t.Helper()
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestSessionMatchesRun pins the tentpole invariant at the sim layer:
// stepping a session slot by slot produces a byte-identical report to
// the batch Run loop.
func TestSessionMatchesRun(t *testing.T) {
	set := flatSet(10, 1.0, 0.4, 0.2, 40, 50)
	cfg := testConfig()

	batch, err := Run(cfg, set, &scriptController{name: "eq", gbef: 3})
	if err != nil {
		t.Fatal(err)
	}

	s, err := NewSession(cfg, &scriptController{name: "eq", gbef: 3}, set.Horizon(), 60, nil)
	if err != nil {
		t.Fatal(err)
	}
	for !s.Finished() && s.Slot() < s.Horizon() {
		if _, err := s.Step(InputAt(set, s.Slot())); err != nil {
			t.Fatalf("step %d: %v", s.Slot(), err)
		}
		if _, err := s.Commit(); err != nil {
			t.Fatalf("commit %d: %v", s.Slot(), err)
		}
	}
	stepped, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}

	if a, b := reportBytes(t, batch), reportBytes(t, stepped); string(a) != string(b) {
		t.Errorf("stepped report differs from batch:\nbatch:   %s\nstepped: %s", a, b)
	}
}

func TestSessionProtocolErrors(t *testing.T) {
	set := flatSet(4, 1, 0, 0, 40, 50)
	cfg := testConfig()
	newSess := func(t *testing.T) *Session {
		s, err := NewSession(cfg, &scriptController{name: "proto", gbef: 4}, 4, 60, nil)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	t.Run("commit without step", func(t *testing.T) {
		s := newSess(t)
		if _, err := s.Commit(); !errors.Is(err, ErrNoPendingDecision) {
			t.Errorf("err = %v, want ErrNoPendingDecision", err)
		}
	})
	t.Run("step while pending", func(t *testing.T) {
		s := newSess(t)
		if _, err := s.Step(InputAt(set, 0)); err != nil {
			t.Fatal(err)
		}
		if !s.Pending() {
			t.Error("Pending() = false after Step")
		}
		if _, err := s.Step(InputAt(set, 1)); !errors.Is(err, ErrPendingDecision) {
			t.Errorf("err = %v, want ErrPendingDecision", err)
		}
	})
	t.Run("step past horizon", func(t *testing.T) {
		s := newSess(t)
		for i := 0; i < 4; i++ {
			if _, err := s.Step(InputAt(set, i)); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Commit(); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := s.Step(InputAt(set, 0)); !errors.Is(err, ErrHorizonExhausted) {
			t.Errorf("err = %v, want ErrHorizonExhausted", err)
		}
	})
	t.Run("step after finish", func(t *testing.T) {
		s := newSess(t)
		if _, err := s.Finish(); err != nil {
			t.Fatal(err)
		}
		if !s.Finished() {
			t.Error("Finished() = false after Finish")
		}
		if _, err := s.Step(InputAt(set, 0)); !errors.Is(err, ErrSessionFinished) {
			t.Errorf("err = %v, want ErrSessionFinished", err)
		}
	})
	t.Run("invalid input field", func(t *testing.T) {
		s := newSess(t)
		in := InputAt(set, 0)
		in.PriceRT = math.NaN()
		_, err := s.Step(in)
		var verr *ValidationError
		if !errors.As(err, &verr) {
			t.Fatalf("err = %v, want *ValidationError", err)
		}
		if verr.Field != "PriceRT" {
			t.Errorf("field = %q, want PriceRT", verr.Field)
		}
	})
}

func TestSessionStatus(t *testing.T) {
	set := flatSet(8, 1.0, 0.4, 0, 40, 50)
	s, err := NewSession(testConfig(), &scriptController{name: "status", gbef: 4}, 8, 60, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := s.Step(InputAt(set, i)); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Status()
	if st.Slot != 4 || st.Horizon != 8 {
		t.Errorf("slot/horizon = %d/%d, want 4/8", st.Slot, st.Horizon)
	}
	if st.TotalCostUSD <= 0 {
		t.Errorf("mid-run total cost = %g, want > 0", st.TotalCostUSD)
	}
	if st.BacklogMWh <= 0 {
		t.Errorf("backlog = %g, want > 0 (nothing serves DT)", st.BacklogMWh)
	}
	if st.LTEnergyMWh <= 0 {
		t.Errorf("LT energy = %g, want > 0", st.LTEnergyMWh)
	}
}

// TestSessionSnapshotRestoreTail checks the crash-recovery contract:
// snapshot mid-run, restore onto a fresh identically-configured session,
// and the tail must be byte-identical to the uninterrupted run.
func TestSessionSnapshotRestoreTail(t *testing.T) {
	const horizon = 12
	set := flatSet(horizon, 1.0, 0.4, 0.2, 40, 50)
	cfg := testConfig()
	mk := func() *snapController {
		return &snapController{scriptController{name: "tail", gbef: 3}}
	}

	// Uninterrupted reference run.
	ref, err := NewSession(cfg, mk(), horizon, 60, fpTest)
	if err != nil {
		t.Fatal(err)
	}
	run := func(s *Session, from, to int) {
		t.Helper()
		for i := from; i < to; i++ {
			if _, err := s.Step(InputAt(set, i)); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
			if _, err := s.Commit(); err != nil {
				t.Fatalf("commit %d: %v", i, err)
			}
		}
	}
	run(ref, 0, horizon)
	want, err := ref.Finish()
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: snapshot at the midpoint.
	first, err := NewSession(cfg, mk(), horizon, 60, fpTest)
	if err != nil {
		t.Fatal(err)
	}
	run(first, 0, horizon/2)
	blob, err := first.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	second, err := NewSession(cfg, mk(), horizon, 60, fpTest)
	if err != nil {
		t.Fatal(err)
	}
	if err := second.Restore(blob); err != nil {
		t.Fatal(err)
	}
	if second.Slot() != horizon/2 {
		t.Fatalf("restored slot = %d, want %d", second.Slot(), horizon/2)
	}
	run(second, horizon/2, horizon)
	got, err := second.Finish()
	if err != nil {
		t.Fatal(err)
	}

	if a, b := reportBytes(t, want), reportBytes(t, got); string(a) != string(b) {
		t.Errorf("restored tail differs from uninterrupted run:\nwant: %s\ngot:  %s", a, b)
	}
}

func TestSessionSnapshotErrors(t *testing.T) {
	set := flatSet(4, 1, 0, 0, 40, 50)
	cfg := testConfig()
	mk := func(fp string) *Session {
		s, err := NewSession(cfg, &snapController{scriptController{name: "snap", gbef: 4}}, 4, 60, fpFn(fp))
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	t.Run("pending decision", func(t *testing.T) {
		s := mk("a")
		if _, err := s.Step(InputAt(set, 0)); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Snapshot(); !errors.Is(err, ErrPendingDecision) {
			t.Errorf("Snapshot err = %v, want ErrPendingDecision", err)
		}
		if err := s.Restore(nil); !errors.Is(err, ErrPendingDecision) {
			t.Errorf("Restore err = %v, want ErrPendingDecision", err)
		}
	})
	t.Run("unsupported controller", func(t *testing.T) {
		s, err := NewSession(cfg, &scriptController{name: "plain", gbef: 4}, 4, 60, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Snapshot(); !errors.Is(err, ErrSnapshotUnsupported) {
			t.Errorf("Snapshot err = %v, want ErrSnapshotUnsupported", err)
		}
		if err := s.Restore([]byte("{}")); !errors.Is(err, ErrSnapshotUnsupported) {
			t.Errorf("Restore err = %v, want ErrSnapshotUnsupported", err)
		}
	})
	t.Run("finished", func(t *testing.T) {
		s := mk("a")
		if _, err := s.Finish(); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Snapshot(); !errors.Is(err, ErrSessionFinished) {
			t.Errorf("err = %v, want ErrSessionFinished", err)
		}
	})
	t.Run("fingerprint mismatch", func(t *testing.T) {
		blob, err := mk("a").Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if err := mk("b").Restore(blob); !errors.Is(err, ErrSnapshotMismatch) {
			t.Errorf("err = %v, want ErrSnapshotMismatch", err)
		}
	})
	t.Run("version mismatch", func(t *testing.T) {
		s := mk("a")
		blob, err := s.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		tampered := strings.Replace(string(blob), `"version":1`, `"version":99`, 1)
		if tampered == string(blob) {
			t.Fatal("version field not found in checkpoint")
		}
		if err := s.Restore([]byte(tampered)); !errors.Is(err, ErrSnapshotMismatch) {
			t.Errorf("err = %v, want ErrSnapshotMismatch", err)
		}
	})
	t.Run("garbage blob", func(t *testing.T) {
		if err := mk("a").Restore([]byte("not json")); err == nil {
			t.Error("garbage checkpoint accepted")
		}
	})
}

func TestCheckpointIsSelfDescribing(t *testing.T) {
	cfg := testConfig()
	s, err := NewSession(cfg, &snapController{scriptController{name: "desc", gbef: 4}}, 4, 60, nil)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var cp Checkpoint
	if err := json.Unmarshal(blob, &cp); err != nil {
		t.Fatal(err)
	}
	if cp.Version != CheckpointVersion {
		t.Errorf("version = %d, want %d", cp.Version, CheckpointVersion)
	}
	if cp.ConfigHash != s.ConfigHash() {
		t.Errorf("hash = %s, want %s", cp.ConfigHash, s.ConfigHash())
	}
	if cp.Controller != "desc" || cp.Horizon != 4 || cp.SlotMinutes != 60 {
		t.Errorf("identity fields = %q/%d/%d", cp.Controller, cp.Horizon, cp.SlotMinutes)
	}
}
