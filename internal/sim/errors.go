package sim

import (
	"errors"
	"fmt"
)

// Sentinel errors of the session API. Callers branch on them with
// errors.Is; every error a Session returns wraps exactly one of these
// (or comes from a component package, whose sentinels — battery.ErrBounds,
// market.ErrGridCap, … — pass through unwrapped).
var (
	// ErrSessionFinished reports a Step/Commit/Snapshot on a session
	// whose Finish has already run.
	ErrSessionFinished = errors.New("sim: session already finished")

	// ErrPendingDecision reports a Step, Snapshot or Finish while a
	// planned decision awaits Commit: mid-slot state (fleet ticked,
	// trailing means observed) is not a consistent checkpoint boundary.
	ErrPendingDecision = errors.New("sim: planned decision pending Commit")

	// ErrNoPendingDecision reports a Commit without a preceding Step.
	ErrNoPendingDecision = errors.New("sim: no planned decision to commit")

	// ErrHorizonExhausted reports a Step past the session's last slot.
	ErrHorizonExhausted = errors.New("sim: horizon exhausted")

	// ErrSnapshotMismatch reports a Restore from a checkpoint taken under
	// a different configuration, controller or checkpoint-format version.
	// Resuming silently would graft one run's state onto another run's
	// physics, so the mismatch is fatal.
	ErrSnapshotMismatch = errors.New("sim: checkpoint does not match session configuration")

	// ErrSnapshotUnsupported reports a Snapshot/Restore on a session
	// whose controller does not implement Snapshotter (the offline
	// benchmarks, which precompute plans from the full trace).
	ErrSnapshotUnsupported = errors.New("sim: controller does not support snapshots")
)

// ValidationError reports one invalid field of a session or option
// struct, keeping the field name machine-readable. It is matched with
// errors.As; engine.ErrInvalidOptions wraps these on the public surface.
type ValidationError struct {
	// Field names the offending field (Go field name).
	Field string
	// Reason says what is wrong with it.
	Reason string
}

// Error implements error.
func (e *ValidationError) Error() string {
	return fmt.Sprintf("sim: invalid %s: %s", e.Field, e.Reason)
}
