package sim

import (
	"math"
	"testing"
)

// recordingController captures the observations it is shown.
type recordingController struct {
	fineObs   []FineObs
	coarseObs []CoarseObs
	outcomes  []Outcome
}

func (r *recordingController) Name() string     { return "recorder" }
func (r *recordingController) CoarseSlots() int { return 4 }
func (r *recordingController) PlanCoarse(obs CoarseObs) float64 {
	r.coarseObs = append(r.coarseObs, obs)
	return 0
}
func (r *recordingController) PlanFine(obs FineObs) Decision {
	r.fineObs = append(r.fineObs, obs)
	return Decision{}
}
func (r *recordingController) RecordOutcome(out Outcome) { r.outcomes = append(r.outcomes, out) }

func TestWithObservationNoiseValidation(t *testing.T) {
	if _, err := WithObservationNoise(nil, 1, 0.5); err == nil {
		t.Error("nil inner accepted")
	}
	inner := &recordingController{}
	if _, err := WithObservationNoise(inner, 1, -0.1); err == nil {
		t.Error("negative fraction accepted")
	}
	if _, err := WithObservationNoise(inner, 1, 1.0); err == nil {
		t.Error("fraction 1.0 accepted")
	}
}

func TestNoisyControllerPerturbsExogenousOnly(t *testing.T) {
	inner := &recordingController{}
	noisy, err := WithObservationNoise(inner, 42, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if noisy.Name() != "recorder+noise" {
		t.Errorf("Name = %q", noisy.Name())
	}
	if noisy.CoarseSlots() != 4 {
		t.Errorf("CoarseSlots = %d", noisy.CoarseSlots())
	}

	obs := FineObs{
		PriceRT: 50, DemandDS: 1, DemandDT: 0.5, Renewable: 0.3,
		Backlog: 2, Battery: 0.4, RTHeadroom: 1, SdtMax: 1, Smax: 4,
		MaxCharge: 0.5, MaxDischarge: 0.5,
	}
	noisy.PlanFine(obs)
	got := inner.fineObs[0]
	// Exogenous fields perturbed within ±50%.
	for _, f := range []struct {
		name       string
		seen, true float64
	}{
		{"PriceRT", got.PriceRT, 50},
		{"DemandDS", got.DemandDS, 1},
		{"DemandDT", got.DemandDT, 0.5},
		{"Renewable", got.Renewable, 0.3},
	} {
		if f.seen < 0.5*f.true-1e-12 || f.seen > 1.5*f.true+1e-12 {
			t.Errorf("%s = %g outside ±50%% of %g", f.name, f.seen, f.true)
		}
	}
	// Internal state passes through exactly.
	if got.Backlog != 2 || got.Battery != 0.4 || got.RTHeadroom != 1 {
		t.Errorf("internal state perturbed: %+v", got)
	}
}

func TestNoisyControllerClampsDecisions(t *testing.T) {
	over := &scriptController{
		name: "over",
		decide: func(o FineObs) Decision {
			// The inner controller sizes against its (noisy) view; return
			// something beyond every true cap.
			return Decision{Grt: 100, ServeDT: 100, Discharge: 100}
		},
	}
	noisy, err := WithObservationNoise(over, 7, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	obs := FineObs{
		PriceRT: 50, DemandDS: 1, Backlog: 0.7, RTHeadroom: 1.2,
		SdtMax: 1, Smax: 4, MaxCharge: 0.5, MaxDischarge: 0.4,
	}
	dec := noisy.PlanFine(obs)
	if dec.Grt > obs.RTHeadroom+1e-12 {
		t.Errorf("Grt = %g beyond true headroom", dec.Grt)
	}
	if dec.ServeDT > obs.Backlog+1e-12 {
		t.Errorf("ServeDT = %g beyond true backlog", dec.ServeDT)
	}
	if dec.Discharge > obs.MaxDischarge+1e-12 {
		t.Errorf("Discharge = %g beyond true cap", dec.Discharge)
	}
}

func TestNoisyControllerOutcomesPassThrough(t *testing.T) {
	inner := &recordingController{}
	noisy, err := WithObservationNoise(inner, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	noisy.RecordOutcome(Outcome{ServedDT: 0.3, BacklogBefore: 1})
	if len(inner.outcomes) != 1 || inner.outcomes[0].ServedDT != 0.3 {
		t.Error("outcome not passed through unperturbed")
	}
}

func TestTrailingMeans(t *testing.T) {
	var m TrailingMeans
	if m.Ready() {
		t.Error("fresh estimator reports ready")
	}
	if a, b, c := m.Means(); a != 0 || b != 0 || c != 0 {
		t.Error("empty means not zero")
	}
	m.Observe(1, 2, 3)
	m.Observe(3, 4, 5)
	if !m.Ready() {
		t.Error("estimator with data not ready")
	}
	dds, ddt, ren := m.Means()
	if dds != 2 || ddt != 3 || ren != 4 {
		t.Errorf("means = %g, %g, %g", dds, ddt, ren)
	}
	m.Reset()
	if m.Ready() {
		t.Error("reset estimator still ready")
	}
}

func TestNoisyControllerZeroFraction(t *testing.T) {
	inner := &recordingController{}
	noisy, err := WithObservationNoise(inner, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	obs := FineObs{PriceRT: 50, DemandDS: 1, Smax: 4, RTHeadroom: 2}
	noisy.PlanFine(obs)
	got := inner.fineObs[0]
	if math.Abs(got.PriceRT-50) > 1e-12 || math.Abs(got.DemandDS-1) > 1e-12 {
		t.Error("zero fraction perturbed observations")
	}
}
