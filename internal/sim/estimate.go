package sim

// TrailingMeans accumulates per-slot observations of the exogenous inputs
// and reports their means since the last reset. Controllers use it to
// estimate the upcoming coarse interval's per-slot demand and renewable
// production from the interval just finished.
//
// The paper's Algorithm 1 reads a single fine slot ("observing ... the
// demand d(t) and renewable r(t) generated during time slot t") — adequate
// for hourly slots and T = 24, but a one-slot snapshot taken at an interval
// boundary (often midnight) badly misestimates a multi-day interval. A
// trailing mean over the previous interval is the natural causal estimator
// and keeps the long-term purchase stable across the T sweep of Fig. 6(c).
type TrailingMeans struct {
	sumDS  float64
	sumDT  float64
	sumRen float64
	n      int
}

// Observe records one fine slot's exogenous values.
func (m *TrailingMeans) Observe(dds, ddt, renewable float64) {
	m.sumDS += dds
	m.sumDT += ddt
	m.sumRen += renewable
	m.n++
}

// Ready reports whether any observations have been recorded since the
// last reset.
func (m *TrailingMeans) Ready() bool { return m.n > 0 }

// Means returns the per-slot means since the last reset; zeros when empty.
func (m *TrailingMeans) Means() (dds, ddt, renewable float64) {
	if m.n == 0 {
		return 0, 0, 0
	}
	f := float64(m.n)
	return m.sumDS / f, m.sumDT / f, m.sumRen / f
}

// Reset clears the accumulator (call at each coarse boundary after
// planning).
func (m *TrailingMeans) Reset() {
	*m = TrailingMeans{}
}

// TrailingMeansState is the accumulator in checkpoint form.
type TrailingMeansState struct {
	SumDS  float64 `json:"sumDS"`
	SumDT  float64 `json:"sumDT"`
	SumRen float64 `json:"sumRen"`
	N      int     `json:"n"`
}

// State captures the accumulator for a checkpoint.
func (m *TrailingMeans) State() TrailingMeansState {
	return TrailingMeansState{SumDS: m.sumDS, SumDT: m.sumDT, SumRen: m.sumRen, N: m.n}
}

// Restore overwrites the accumulator from a checkpoint.
func (m *TrailingMeans) Restore(s TrailingMeansState) {
	m.sumDS = s.SumDS
	m.sumDT = s.SumDT
	m.sumRen = s.SumRen
	m.n = s.N
}
