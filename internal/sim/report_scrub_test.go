package sim

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// TestCleanZero pins the residual normalization: negative zero and
// sub-epsilon noise collapse to +0, real values pass through.
func TestCleanZero(t *testing.T) {
	negZero := math.Copysign(0, -1)
	cases := []struct {
		in, want float64
	}{
		{negZero, 0},
		{0, 0},
		{1e-18, 0},
		{-1e-18, 0},
		{-9.9e-10, 0},
		{1e-8, 1e-8},
		{-1e-8, -1e-8},
		{3.5, 3.5},
	}
	for _, c := range cases {
		got := cleanZero(c.in)
		if got != c.want || math.Signbit(got) != math.Signbit(c.want) {
			t.Errorf("cleanZero(%g) = %g (signbit %v), want %g", c.in, got, math.Signbit(got), c.want)
		}
	}
}

// TestReportScrubsNegativeZero feeds a report per-slot records whose
// residuals are IEEE negative zeros and sub-epsilon noise — the exact
// garbage the balance residual can produce — and asserts neither the
// printed lines nor the JSON export can ever show "-0".
func TestReportScrubsNegativeZero(t *testing.T) {
	negZero := math.Copysign(0, -1)
	r := newReport("scrub", 4, true)
	for i := 0; i < 4; i++ {
		r.recordSlot(slotRecord{
			slot:      i,
			cost:      negZero,
			wasteCost: negZero,
			waste:     negZero,
			unserved:  -1e-15,
			backlog:   negZero,
			battery:   negZero,
			available: true,
		})
	}
	// finalize needs live subsystem handles; scrub directly instead,
	// exactly as finalize does as its last step.
	r.TimeAvgCostUSD = r.TotalCostUSD / 4
	r.scrubZeros()

	for name, v := range map[string]float64{
		"TotalCostUSD":   r.TotalCostUSD,
		"WasteCostUSD":   r.WasteCostUSD,
		"WasteMWh":       r.WasteMWh,
		"UnservedMWh":    r.UnservedMWh,
		"TimeAvgCostUSD": r.TimeAvgCostUSD,
	} {
		if v != 0 || math.Signbit(v) {
			t.Errorf("%s = %g (signbit %v), want +0", name, v, math.Signbit(v))
		}
	}
	for i, v := range r.CostSeries {
		if v != 0 || math.Signbit(v) {
			t.Errorf("CostSeries[%d] = %g (signbit %v), want +0", i, v, math.Signbit(v))
		}
	}

	out, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(out), "-0") {
		t.Errorf("JSON export contains a negative zero: %s", out)
	}
	if strings.Contains(r.String(), "-0.00") {
		t.Errorf("report lines contain -0.00:\n%s", r.String())
	}
}
