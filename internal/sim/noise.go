package sim

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// NoisyController wraps a controller and perturbs the exogenous fields of
// its observations — demand, renewable production and prices — with
// uniform multiplicative errors, reproducing the robustness experiment of
// Sec. VI-C ("uniformly distributed ±50% errors"). Internal state
// (backlog, battery, market headroom) is left exact: the DPSS always knows
// its own queues, it is the world it mis-estimates. The engine executes
// decisions against the true traces, so estimation errors surface as real
// waste, purchases or shed load.
type NoisyController struct {
	inner Controller
	rng   *rand.Rand
	frac  float64

	// seed and draws position the RNG for checkpoints: math/rand exposes
	// no state extraction, but the stream is fully determined by the seed
	// and the number of draws consumed, so a restore re-seeds and replays
	// draws discards (see RestoreState).
	seed  int64
	draws uint64
}

var _ Controller = (*NoisyController)(nil)

// WithObservationNoise wraps inner so that every observation's exogenous
// fields are scaled by independent factors drawn uniformly from
// [1−frac, 1+frac].
func WithObservationNoise(inner Controller, seed int64, frac float64) (*NoisyController, error) {
	if inner == nil {
		return nil, errors.New("sim: nil inner controller")
	}
	if frac < 0 || frac >= 1 {
		return nil, errors.New("sim: noise fraction must be in [0, 1)")
	}
	return &NoisyController{
		inner: inner,
		rng:   rand.New(rand.NewSource(seed)),
		frac:  frac,
		seed:  seed,
	}, nil
}

// Name implements Controller.
func (n *NoisyController) Name() string { return n.inner.Name() + "+noise" }

// CoarseSlots implements Controller.
func (n *NoisyController) CoarseSlots() int { return n.inner.CoarseSlots() }

// PlanCoarse perturbs the exogenous coarse observations and delegates.
func (n *NoisyController) PlanCoarse(obs CoarseObs) float64 {
	obs.PriceLT *= n.factor()
	obs.DemandDS *= n.factor()
	obs.DemandDT *= n.factor()
	obs.Renewable *= n.factor()
	// The fuel-price multiplier is a market signal like the grid prices
	// and gets the same error treatment — but only when a fuel market is
	// configured (scale ≠ 1), so fuel-trace-free runs consume exactly
	// the pre-fuel-trace noise stream.
	if obs.FuelScale != 1 && obs.FuelScale != 0 {
		obs.FuelScale *= n.factor()
	}
	return n.inner.PlanCoarse(obs)
}

// PlanFine perturbs the exogenous fine observations, delegates, and clamps
// the inner decision back to the true admissible set (the inner controller
// sized its decision against mis-estimated inputs; physical limits still
// come from the truth).
func (n *NoisyController) PlanFine(obs FineObs) Decision {
	noisy := obs
	noisy.PriceRT *= n.factor()
	noisy.DemandDS *= n.factor()
	noisy.DemandDT *= n.factor()
	noisy.Renewable *= n.factor()
	if noisy.FuelScale != 1 && noisy.FuelScale != 0 {
		noisy.FuelScale *= n.factor() // see PlanCoarse: fuel market only
	}
	dec := n.inner.PlanFine(noisy)

	dec.Grt = clamp(dec.Grt, 0, math.Max(0,
		math.Min(obs.RTHeadroom, obs.Smax-obs.LongTermDue-obs.Renewable)))
	dec.ServeDT = clamp(dec.ServeDT, 0, math.Min(obs.Backlog, obs.SdtMax))
	dec.Charge = clamp(dec.Charge, 0, obs.MaxCharge)
	dec.Discharge = clamp(dec.Discharge, 0, obs.MaxDischarge)
	dec.Generate = clamp(dec.Generate, 0, obs.GenRequest)
	for u := range dec.GenerateUnits {
		limit := 0.0
		if u < len(obs.GenUnits) {
			limit = obs.GenUnits[u].RequestMax
		}
		dec.GenerateUnits[u] = clamp(dec.GenerateUnits[u], 0, math.Max(0, limit))
	}
	return dec
}

// RecordOutcome passes outcomes through unperturbed: queue updates use the
// executed truth (Algorithm 1 step 3 reads the actual queues).
func (n *NoisyController) RecordOutcome(out Outcome) { n.inner.RecordOutcome(out) }

func (n *NoisyController) factor() float64 {
	n.draws++
	return 1 + n.frac*(2*n.rng.Float64()-1)
}

var _ Snapshotter = (*NoisyController)(nil)

// noisyState is the wrapper's checkpoint form: the RNG position (seed +
// draws consumed) and the inner controller's own blob. The noise
// fraction is configuration and stays outside.
type noisyState struct {
	Seed  int64           `json:"seed"`
	Draws uint64          `json:"draws"`
	Inner json.RawMessage `json:"inner,omitempty"`
}

// SnapshotState implements Snapshotter. The wrapped controller must
// itself be a Snapshotter, or ErrSnapshotUnsupported is returned.
func (n *NoisyController) SnapshotState() ([]byte, error) {
	snap, ok := n.inner.(Snapshotter)
	if !ok {
		return nil, fmt.Errorf("%w: wrapped controller %q", ErrSnapshotUnsupported, n.inner.Name())
	}
	inner, err := snap.SnapshotState()
	if err != nil {
		return nil, err
	}
	return json.Marshal(noisyState{Seed: n.seed, Draws: n.draws, Inner: inner})
}

// RestoreState implements Snapshotter. The RNG is repositioned by
// re-seeding and discarding the recorded number of draws — the uniform
// stream then continues exactly where the snapshot left it.
func (n *NoisyController) RestoreState(data []byte) error {
	snap, ok := n.inner.(Snapshotter)
	if !ok {
		return fmt.Errorf("%w: wrapped controller %q", ErrSnapshotUnsupported, n.inner.Name())
	}
	var s noisyState
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("sim: decode noise state: %w", err)
	}
	if s.Seed != n.seed {
		return fmt.Errorf("%w: noise seed %d, session has %d", ErrSnapshotMismatch, s.Seed, n.seed)
	}
	rng := rand.New(rand.NewSource(s.Seed))
	for i := uint64(0); i < s.Draws; i++ {
		rng.Float64()
	}
	n.rng = rng
	n.draws = s.Draws
	return snap.RestoreState(s.Inner)
}
