package sim

import (
	"math"
	"strings"
	"testing"

	"github.com/smartdpss/smartdpss/internal/battery"
	"github.com/smartdpss/smartdpss/internal/market"
	"github.com/smartdpss/smartdpss/internal/trace"
)

// scriptController returns fixed decisions and records its observations.
type scriptController struct {
	name      string
	t         int
	gbef      float64
	decide    func(FineObs) Decision
	outcomes  []Outcome
	coarseObs []CoarseObs
}

func (s *scriptController) Name() string { return s.name }
func (s *scriptController) CoarseSlots() int {
	if s.t == 0 {
		return 4
	}
	return s.t
}
func (s *scriptController) PlanCoarse(obs CoarseObs) float64 {
	s.coarseObs = append(s.coarseObs, obs)
	return s.gbef
}
func (s *scriptController) PlanFine(obs FineObs) Decision {
	if s.decide == nil {
		return Decision{}
	}
	return s.decide(obs)
}
func (s *scriptController) RecordOutcome(out Outcome) { s.outcomes = append(s.outcomes, out) }

func flatSet(n int, dds, ddt, ren, plt, prt float64) *trace.Set {
	mk := func(name string, v float64) *trace.Series {
		s := trace.New(name, "", 60, n)
		for i := range s.Values {
			s.Values[i] = v
		}
		return s
	}
	return &trace.Set{
		DemandDS:  mk("demand_ds", dds),
		DemandDT:  mk("demand_dt", ddt),
		Renewable: mk("renewable", ren),
		PriceLT:   mk("price_lt", plt),
		PriceRT:   mk("price_rt", prt),
	}
}

func testConfig() Config {
	return Config{
		Battery:          battery.Sized(2.0, 15, 1),
		Market:           market.Params{PgridMWh: 2.0, PmaxUSD: 150},
		WasteCostUSD:     1.0,
		EmergencyCostUSD: 1e6,
		SdtMaxMWh:        1.0,
		SmaxMWh:          4.0,
		KeepSeries:       true,
	}
}

func TestRunValidation(t *testing.T) {
	good := testConfig()
	set := flatSet(8, 1, 0, 0, 40, 50)
	ctrl := &scriptController{name: "script"}

	t.Run("bad config", func(t *testing.T) {
		bad := good
		bad.SdtMaxMWh = 0
		if _, err := Run(bad, set, ctrl); err == nil {
			t.Error("invalid config accepted")
		}
	})
	t.Run("bad traces", func(t *testing.T) {
		badSet := flatSet(8, 1, 0, 0, 40, 50)
		badSet.PriceRT = nil
		if _, err := Run(good, badSet, ctrl); err == nil {
			t.Error("invalid traces accepted")
		}
	})
	t.Run("bad controller T", func(t *testing.T) {
		zeroT := &scriptController{name: "zero", t: -1}
		if _, err := Run(good, set, zeroT); err == nil {
			t.Error("non-positive T accepted")
		}
	})
}

func TestRunBalancedGridOnly(t *testing.T) {
	// Flat demand 1.0, gbef covers it exactly: no waste, no unserved.
	set := flatSet(8, 1.0, 0, 0, 40, 50)
	ctrl := &scriptController{name: "script", gbef: 4.0} // 4 slots × 1.0
	rep, err := Run(testConfig(), set, ctrl)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Slots != 8 {
		t.Fatalf("slots = %d", rep.Slots)
	}
	if math.Abs(rep.LTEnergyMWh-8.0) > 1e-9 {
		t.Errorf("LT energy = %g, want 8", rep.LTEnergyMWh)
	}
	if math.Abs(rep.TotalCostUSD-8*40) > 1e-9 {
		t.Errorf("cost = %g, want %g", rep.TotalCostUSD, 8.0*40)
	}
	if rep.WasteMWh > 1e-9 || rep.UnservedMWh > 1e-9 {
		t.Errorf("waste=%g unserved=%g, want 0", rep.WasteMWh, rep.UnservedMWh)
	}
	if rep.Availability != 1 {
		t.Errorf("availability = %g", rep.Availability)
	}
	if len(ctrl.coarseObs) != 2 {
		t.Errorf("coarse boundaries = %d, want 2", len(ctrl.coarseObs))
	}
}

func TestRunSurplusBecomesWaste(t *testing.T) {
	set := flatSet(4, 0.5, 0, 0, 40, 50)
	ctrl := &scriptController{name: "script", gbef: 4.0} // 1.0/slot vs 0.5 demand
	rep, err := Run(testConfig(), set, ctrl)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.WasteMWh-4*0.5) > 1e-9 {
		t.Errorf("waste = %g, want 2", rep.WasteMWh)
	}
	if math.Abs(rep.WasteCostUSD-2.0) > 1e-9 {
		t.Errorf("waste cost = %g, want 2", rep.WasteCostUSD)
	}
}

func TestRunRescueChain(t *testing.T) {
	// Demand 3.0 with zero planned purchases: the rescue chain must top up
	// from the real-time market (2.0, the Pgrid cap), then discharge the
	// UPS (0.5/slot), and shed only the remainder.
	set := flatSet(2, 3.0, 0, 0, 40, 50)
	ctrl := &scriptController{name: "script", gbef: 0}
	cfg := testConfig()
	cfg.Battery = battery.Sized(2.0, 30, 1) // 1 MWh battery
	cfg.Battery.InitialMWh = cfg.Battery.CapacityMWh
	rep, err := Run(cfg, set, ctrl)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.RTEnergyMWh-2*2.0) > 1e-9 {
		t.Errorf("reactive real-time energy = %g, want 4 (Pgrid-capped)", rep.RTEnergyMWh)
	}
	if rep.BatteryOutMWh <= 0 {
		t.Error("passive rescue did not discharge the battery")
	}
	if rep.UnservedMWh <= 0 {
		t.Error("expected some unserved energy beyond grid + battery")
	}
	if rep.AvailabilityViolations == 0 {
		t.Error("expected availability violations")
	}
	if rep.EmergencyCostUSD <= 0 {
		t.Error("expected emergency penalty")
	}
}

func TestRunRescueCancelsCharge(t *testing.T) {
	// The controller charges while demand is uncovered; the engine must
	// cancel the charge before shedding.
	set := flatSet(1, 1.0, 0, 0.5, 40, 50)
	ctrl := &scriptController{
		name: "script",
		decide: func(obs FineObs) Decision {
			return Decision{Charge: math.Min(0.5, obs.MaxCharge)}
		},
	}
	cfg := testConfig()
	cfg.Battery = battery.Sized(2.0, 30, 1) // full 1 MWh store covers the gap
	cfg.Battery.InitialMWh = cfg.Battery.CapacityMWh
	rep, err := Run(cfg, set, ctrl)
	if err != nil {
		t.Fatal(err)
	}
	// Renewable 0.5 vs demand 1.0: charge cancelled entirely, then the
	// real-time market covers the remaining 0.5 — the battery never moves.
	if rep.UnservedMWh > 1e-9 {
		t.Errorf("unserved = %g, want 0 (rescue should cover)", rep.UnservedMWh)
	}
	if rep.BatteryInMWh > 1e-9 {
		t.Errorf("charged = %g, want 0 (charge cancelled)", rep.BatteryInMWh)
	}
	if math.Abs(rep.RTEnergyMWh-0.5) > 1e-9 {
		t.Errorf("reactive purchase = %g, want 0.5", rep.RTEnergyMWh)
	}
	if rep.BatteryOutMWh != 0 {
		t.Errorf("battery discharged %g, want 0 (grid covers first)", rep.BatteryOutMWh)
	}
}

func TestRunRejectsBadDecisions(t *testing.T) {
	set := flatSet(4, 1.0, 0.5, 0, 40, 50)
	cases := []struct {
		name   string
		decide func(FineObs) Decision
	}{
		{"nan grt", func(FineObs) Decision { return Decision{Grt: math.NaN()} }},
		{"negative serve", func(FineObs) Decision { return Decision{ServeDT: -1} }},
		{"grt beyond headroom", func(o FineObs) Decision { return Decision{Grt: o.RTHeadroom + 1} }},
		{"serve beyond backlog", func(o FineObs) Decision { return Decision{ServeDT: o.Backlog + 1} }},
		{"charge beyond cap", func(o FineObs) Decision { return Decision{Charge: o.MaxCharge + 1} }},
		{"discharge beyond cap", func(o FineObs) Decision { return Decision{Discharge: o.MaxDischarge + 1} }},
		{"both directions", func(o FineObs) Decision {
			return Decision{Charge: 0.1, Discharge: 0.1}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ctrl := &scriptController{name: "bad", decide: tc.decide}
			if _, err := Run(testConfig(), set, ctrl); err == nil {
				t.Error("bad decision accepted")
			}
		})
	}
}

func TestRunToleratesRoundoff(t *testing.T) {
	set := flatSet(4, 1.0, 0, 0, 40, 50)
	ctrl := &scriptController{
		name: "roundoff",
		gbef: 4.0,
		decide: func(o FineObs) Decision {
			return Decision{Grt: -1e-9} // sub-tolerance negative
		},
	}
	if _, err := Run(testConfig(), set, ctrl); err != nil {
		t.Fatalf("round-off rejected: %v", err)
	}
}

func TestRunBacklogAndOutcomes(t *testing.T) {
	set := flatSet(6, 0.2, 0.4, 0, 40, 50)
	served := 0.15
	ctrl := &scriptController{
		name: "queue",
		gbef: 12.0, // plenty
		decide: func(o FineObs) Decision {
			return Decision{ServeDT: math.Min(served, o.Backlog)}
		},
	}
	rep, err := Run(testConfig(), set, ctrl)
	if err != nil {
		t.Fatal(err)
	}
	if len(ctrl.outcomes) != 6 {
		t.Fatalf("outcomes = %d, want 6", len(ctrl.outcomes))
	}
	// First slot: backlog 0 before arrivals → nothing served.
	if ctrl.outcomes[0].ServedDT != 0 {
		t.Errorf("slot 0 served %g, want 0", ctrl.outcomes[0].ServedDT)
	}
	if ctrl.outcomes[0].BacklogAfter != 0.4 {
		t.Errorf("slot 0 backlog after = %g, want 0.4", ctrl.outcomes[0].BacklogAfter)
	}
	// Later slots serve 0.15 each while 0.4 arrives: backlog grows.
	last := ctrl.outcomes[5]
	wantBacklog := 6*0.4 - 5*served
	if math.Abs(last.BacklogAfter-wantBacklog) > 1e-9 {
		t.Errorf("final backlog = %g, want %g", last.BacklogAfter, wantBacklog)
	}
	if math.Abs(rep.ServedDTMWh-5*served) > 1e-9 {
		t.Errorf("served total = %g, want %g", rep.ServedDTMWh, 5*served)
	}
}

func TestRunKeepSeries(t *testing.T) {
	set := flatSet(5, 1, 0, 0, 40, 50)
	ctrl := &scriptController{name: "series", gbef: 5}
	cfg := testConfig()
	rep, err := Run(cfg, set, ctrl)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.CostSeries) != 5 || len(rep.BacklogSeries) != 5 || len(rep.BatterySeries) != 5 {
		t.Errorf("series lengths = %d/%d/%d, want 5",
			len(rep.CostSeries), len(rep.BacklogSeries), len(rep.BatterySeries))
	}
	cfg.KeepSeries = false
	rep2, err := Run(cfg, set, ctrl)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.CostSeries != nil {
		t.Error("series retained despite KeepSeries=false")
	}
}

func TestRunShortFinalInterval(t *testing.T) {
	// Horizon 10 with T=4: intervals of 4, 4, 2 slots.
	set := flatSet(10, 1, 0, 0, 40, 50)
	ctrl := &scriptController{name: "short", gbef: 2}
	if _, err := Run(testConfig(), set, ctrl); err != nil {
		t.Fatal(err)
	}
	if len(ctrl.coarseObs) != 3 {
		t.Fatalf("coarse calls = %d, want 3", len(ctrl.coarseObs))
	}
	if ctrl.coarseObs[2].Slots != 2 {
		t.Errorf("final interval slots = %d, want 2", ctrl.coarseObs[2].Slots)
	}
}

func TestReportString(t *testing.T) {
	set := flatSet(4, 1, 0, 0, 40, 50)
	ctrl := &scriptController{name: "str", gbef: 4}
	rep, err := Run(testConfig(), set, ctrl)
	if err != nil {
		t.Fatal(err)
	}
	out := rep.String()
	for _, want := range []string{"controller=str", "cost:", "energy:", "delay:", "battery:"} {
		if !strings.Contains(out, want) {
			t.Errorf("report string missing %q:\n%s", want, out)
		}
	}
}

func TestRunClampsGbef(t *testing.T) {
	// Controller asks for more than T·Pgrid; the engine clamps it.
	set := flatSet(4, 1, 0, 0, 40, 50)
	ctrl := &scriptController{name: "greedy", gbef: 1e9}
	rep, err := Run(testConfig(), set, ctrl)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LTEnergyMWh > 8*2.0+1e-9 {
		t.Errorf("LT energy %g exceeds horizon Pgrid budget", rep.LTEnergyMWh)
	}
}
