package sim

import (
	"fmt"
	"strings"

	"github.com/smartdpss/smartdpss/internal/battery"
	"github.com/smartdpss/smartdpss/internal/generator"
	"github.com/smartdpss/smartdpss/internal/market"
	"github.com/smartdpss/smartdpss/internal/metrics"
	"github.com/smartdpss/smartdpss/internal/queue"
)

// slotRecord carries one executed slot into the report.
type slotRecord struct {
	slot          int
	gridDrawMW    float64
	nearPeak      bool
	cost          float64
	ltCost        float64
	rtCost        float64
	opCost        float64
	wasteCost     float64
	waste         float64
	unserved      float64
	emergencyCost float64
	backlog       float64
	battery       float64
	renewable     float64
	served        float64
	genMWh        float64
	genFuelUSD    float64
	genStartUSD   float64
	genCO2Kg      float64
	batteryMoved  bool
	available     bool
}

// Report summarizes one simulation run. Cost fields follow the paper's
// Cost(τ) decomposition: long-term grid, real-time grid, UPS operation and
// wasted energy. The emergency penalty (unserved delay-sensitive demand) is
// reported separately because the paper's model assumes it never happens.
type Report struct {
	Controller string `json:"controller"`
	Slots      int    `json:"slots"`

	// Cost totals in USD. The two generator lines (fuel and startup) are
	// part of TotalCostUSD, extending the paper's Cost(τ) decomposition
	// with the on-site generation source of arXiv:1303.6775.
	TotalCostUSD     float64 `json:"totalCostUSD"`
	LTCostUSD        float64 `json:"ltCostUSD"`
	RTCostUSD        float64 `json:"rtCostUSD"`
	BatteryOpUSD     float64 `json:"batteryOpUSD"`
	WasteCostUSD     float64 `json:"wasteCostUSD"`
	GenFuelUSD       float64 `json:"genFuelUSD,omitempty"`
	GenStartupUSD    float64 `json:"genStartupUSD,omitempty"`
	EmergencyCostUSD float64 `json:"emergencyCostUSD"`

	// TimeAvgCostUSD is TotalCostUSD / Slots, the paper's Cost_av.
	TimeAvgCostUSD float64 `json:"timeAvgCostUSD"`

	// Energy totals in MWh.
	LTEnergyMWh   float64 `json:"ltEnergyMWh"`
	RTEnergyMWh   float64 `json:"rtEnergyMWh"`
	RenewableMWh  float64 `json:"renewableMWh"`
	GenEnergyMWh  float64 `json:"genEnergyMWh,omitempty"`
	WasteMWh      float64 `json:"wasteMWh"`
	UnservedMWh   float64 `json:"unservedMWh"`
	ServedDTMWh   float64 `json:"servedDTMWh"`
	BatteryInMWh  float64 `json:"batteryInMWh"`
	BatteryOutMWh float64 `json:"batteryOutMWh"`

	// On-site generation accounting: cold starts, slots with positive
	// output, and fleet emissions (zero when no fleet is configured).
	GenStarts int     `json:"genStarts,omitempty"`
	GenSlots  int     `json:"genSlots,omitempty"`
	GenCO2Kg  float64 `json:"genCO2Kg,omitempty"`

	// GenUnits is the per-unit breakdown of the fleet accounting, in
	// fleet order (nil when no fleet is configured).
	GenUnits []GenUnitReport `json:"genUnits,omitempty"`

	// Delay statistics over served delay-tolerant energy, in slots.
	MeanDelaySlots float64 `json:"meanDelaySlots"`
	MaxDelaySlots  int     `json:"maxDelaySlots"`

	// Queue and battery extremes.
	BacklogMaxMWh  float64 `json:"backlogMaxMWh"`
	BacklogMeanMWh float64 `json:"backlogMeanMWh"`
	BatteryMinMWh  float64 `json:"batteryMinMWh"`
	BatteryMaxMWh  float64 `json:"batteryMaxMWh"`
	BatteryOps     int     `json:"batteryOps"`

	// PeakGridMW is the largest observed grid draw in MW; PeakChargeUSD is
	// the demand charge it incurs (reported separately from Cost(τ), like
	// the emergency penalty — see Config.PeakChargeUSDPerMW).
	// NearPeakSlots counts slots drawing above 95% of the Pgrid cap — the
	// "power peak emergencies" of the paper's Sec. IV-C remark.
	PeakGridMW    float64 `json:"peakGridMW"`
	PeakChargeUSD float64 `json:"peakChargeUSD"`
	NearPeakSlots int     `json:"nearPeakSlots"`

	// Availability is the fraction of slots with full delay-sensitive
	// service and the battery at or above its reserve.
	Availability           float64 `json:"availability"`
	AvailabilityViolations int     `json:"availabilityViolations"`

	// Optional per-slot series (see Config.KeepSeries).
	CostSeries    []float64 `json:"costSeries,omitempty"`
	BacklogSeries []float64 `json:"backlogSeries,omitempty"`
	BatterySeries []float64 `json:"batterySeries,omitempty"`

	costStream    *metrics.Stream
	backlogStream *metrics.Stream
	unavailable   int
}

// GenUnitReport is one fleet unit's lifetime accounting.
type GenUnitReport struct {
	CapacityMWh float64 `json:"capacityMWh"`
	EnergyMWh   float64 `json:"energyMWh"`
	FuelUSD     float64 `json:"fuelUSD"`
	StartupUSD  float64 `json:"startupUSD"`
	CO2Kg       float64 `json:"co2Kg"`
	Starts      int     `json:"starts"`
	OpSlots     int     `json:"opSlots"`
}

func newReport(controller string, horizon int, keepSeries bool) *Report {
	r := &Report{
		Controller:    controller,
		costStream:    metrics.NewStream(false),
		backlogStream: metrics.NewStream(false),
	}
	if keepSeries {
		r.CostSeries = make([]float64, 0, horizon)
		r.BacklogSeries = make([]float64, 0, horizon)
		r.BatterySeries = make([]float64, 0, horizon)
	}
	return r
}

// ReportState is the in-progress report in checkpoint form: the running
// accumulators (the exported Report fields, finalize-derived ones still
// zero mid-run) plus the streaming statistics and the availability
// counter that live in unexported fields.
type ReportState struct {
	Summary       Report              `json:"summary"`
	CostStream    metrics.StreamState `json:"costStream"`
	BacklogStream metrics.StreamState `json:"backlogStream"`
	Unavailable   int                 `json:"unavailable"`
}

// state captures the in-progress report for a checkpoint.
func (r *Report) state() ReportState {
	return ReportState{
		Summary:       *r,
		CostStream:    r.costStream.State(),
		BacklogStream: r.backlogStream.State(),
		Unavailable:   r.unavailable,
	}
}

// restoreReport rebuilds an in-progress report from a checkpoint. The
// session's own keepSeries setting governs the series (the config hash
// pins it to the snapshotting session's anyway); with series kept, the
// recorded prefix is copied into fresh capacity-horizon buffers so
// appends stay allocation-free for the rest of the run.
func restoreReport(s ReportState, controller string, horizon int, keepSeries bool) *Report {
	r := newReport(controller, horizon, keepSeries)
	costs, backlogs, batteries := r.CostSeries, r.BacklogSeries, r.BatterySeries
	costStream, backlogStream := r.costStream, r.backlogStream
	*r = s.Summary
	r.Controller = controller
	r.costStream, r.backlogStream = costStream, backlogStream
	r.costStream.Restore(s.CostStream)
	r.backlogStream.Restore(s.BacklogStream)
	r.unavailable = s.Unavailable
	if keepSeries {
		r.CostSeries = append(costs[:0], s.Summary.CostSeries...)
		r.BacklogSeries = append(backlogs[:0], s.Summary.BacklogSeries...)
		r.BatterySeries = append(batteries[:0], s.Summary.BatterySeries...)
	} else {
		r.CostSeries, r.BacklogSeries, r.BatterySeries = nil, nil, nil
	}
	return r
}

func (r *Report) recordSlot(rec slotRecord) {
	r.Slots++
	r.TotalCostUSD += rec.cost
	r.LTCostUSD += rec.ltCost
	r.RTCostUSD += rec.rtCost
	r.BatteryOpUSD += rec.opCost
	r.WasteCostUSD += rec.wasteCost
	r.EmergencyCostUSD += rec.emergencyCost
	r.GenFuelUSD += rec.genFuelUSD
	r.GenStartupUSD += rec.genStartUSD
	r.GenEnergyMWh += rec.genMWh
	r.GenCO2Kg += rec.genCO2Kg
	r.WasteMWh += rec.waste
	r.UnservedMWh += rec.unserved
	r.RenewableMWh += rec.renewable
	r.ServedDTMWh += rec.served
	r.costStream.Add(rec.cost)
	r.backlogStream.Add(rec.backlog)
	if rec.gridDrawMW > r.PeakGridMW {
		r.PeakGridMW = rec.gridDrawMW
	}
	if rec.nearPeak {
		r.NearPeakSlots++
	}
	if !rec.available {
		r.unavailable++
	}
	if r.CostSeries != nil {
		r.CostSeries = append(r.CostSeries, rec.cost)
		r.BacklogSeries = append(r.BacklogSeries, rec.backlog)
		r.BatterySeries = append(r.BatterySeries, rec.battery)
	}
}

func (r *Report) finalize(batt *battery.Battery, fleet *generator.Fleet, acct *market.Account, backlog *queue.Backlog) {
	if r.Slots > 0 {
		r.TimeAvgCostUSD = r.TotalCostUSD / float64(r.Slots)
		r.Availability = 1 - float64(r.unavailable)/float64(r.Slots)
	}
	r.AvailabilityViolations = r.unavailable
	r.LTEnergyMWh = acct.LongTermEnergy()
	r.RTEnergyMWh = acct.RealTimeEnergy()
	totals := fleet.Totals()
	r.GenStarts = totals.Starts
	r.GenSlots = totals.OpSlots
	if fleet.Size() > 0 {
		r.GenUnits = make([]GenUnitReport, fleet.Size())
		for i := range r.GenUnits {
			u := fleet.Unit(i)
			r.GenUnits[i] = GenUnitReport{
				CapacityMWh: u.Params().CapacityMWh,
				EnergyMWh:   u.EnergyTotal(),
				FuelUSD:     u.FuelCostTotal(),
				StartupUSD:  u.StartupCostTotal(),
				CO2Kg:       u.CO2Total(),
				Starts:      u.Starts(),
				OpSlots:     u.OpSlots(),
			}
		}
	}
	r.BatteryOps = batt.Ops()
	r.BatteryInMWh = batt.ChargedTotal()
	r.BatteryOutMWh = batt.DischargedTotal()
	r.MeanDelaySlots = backlog.MeanDelay()
	r.MaxDelaySlots = backlog.MaxDelay()
	r.BacklogMaxMWh = r.backlogStream.Max()
	r.BacklogMeanMWh = r.backlogStream.Mean()
	if r.BatterySeries != nil && len(r.BatterySeries) > 0 {
		min, max := r.BatterySeries[0], r.BatterySeries[0]
		for _, v := range r.BatterySeries {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		r.BatteryMinMWh, r.BatteryMaxMWh = min, max
	} else {
		r.BatteryMinMWh = batt.Level()
		r.BatteryMaxMWh = batt.Level()
	}
	r.scrubZeros()
}

// zeroEps is the residual magnitude below which an accumulated report
// value is numerical noise rather than signal: well under any printed
// precision, far above float64 round-off from a month of accumulation.
const zeroEps = 1e-9

// cleanZero collapses negative zero and sub-epsilon residuals to +0.
// Accumulating ±round-off (or IEEE negative zeros, which survive
// summation: -0 + -0 = -0) can leave a semantically zero total with a
// sign bit set, printing as "-0.00" and breaking byte-level comparisons
// between otherwise identical runs.
func cleanZero(v float64) float64 {
	if v > -zeroEps && v < zeroEps {
		return 0
	}
	return v
}

// scrubZeros normalizes every accumulated float the report exports —
// summary fields, per-unit breakdowns and the optional per-slot series —
// so sequential/parallel and pre/post-refactor runs can never differ by
// a sign bit on a zero, in text or JSON output.
func (r *Report) scrubZeros() {
	for _, f := range []*float64{
		&r.TotalCostUSD, &r.LTCostUSD, &r.RTCostUSD, &r.BatteryOpUSD,
		&r.WasteCostUSD, &r.GenFuelUSD, &r.GenStartupUSD, &r.EmergencyCostUSD,
		&r.TimeAvgCostUSD, &r.LTEnergyMWh, &r.RTEnergyMWh, &r.RenewableMWh,
		&r.GenEnergyMWh, &r.WasteMWh, &r.UnservedMWh, &r.ServedDTMWh,
		&r.BatteryInMWh, &r.BatteryOutMWh, &r.GenCO2Kg, &r.MeanDelaySlots,
		&r.BacklogMaxMWh, &r.BacklogMeanMWh, &r.BatteryMinMWh, &r.BatteryMaxMWh,
		&r.PeakGridMW, &r.PeakChargeUSD,
	} {
		*f = cleanZero(*f)
	}
	for i := range r.GenUnits {
		u := &r.GenUnits[i]
		u.EnergyMWh = cleanZero(u.EnergyMWh)
		u.FuelUSD = cleanZero(u.FuelUSD)
		u.StartupUSD = cleanZero(u.StartupUSD)
		u.CO2Kg = cleanZero(u.CO2Kg)
	}
	for _, series := range [][]float64{r.CostSeries, r.BacklogSeries, r.BatterySeries} {
		for i, v := range series {
			series[i] = cleanZero(v)
		}
	}
}

// String renders a compact multi-line summary for logs and CLI output.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "controller=%s slots=%d\n", r.Controller, r.Slots)
	fmt.Fprintf(&b, "  cost: total=$%.2f avg=$%.4f/slot (lt=$%.2f rt=$%.2f ups=$%.2f waste=$%.2f)\n",
		r.TotalCostUSD, r.TimeAvgCostUSD, r.LTCostUSD, r.RTCostUSD, r.BatteryOpUSD, r.WasteCostUSD)
	fmt.Fprintf(&b, "  energy: lt=%.1f rt=%.1f renewable=%.1f waste=%.2f unserved=%.4f MWh\n",
		r.LTEnergyMWh, r.RTEnergyMWh, r.RenewableMWh, r.WasteMWh, r.UnservedMWh)
	fmt.Fprintf(&b, "  delay: mean=%.2f max=%d slots; backlog mean=%.3f max=%.3f MWh\n",
		r.MeanDelaySlots, r.MaxDelaySlots, r.BacklogMeanMWh, r.BacklogMaxMWh)
	fmt.Fprintf(&b, "  battery: ops=%d in=%.2f out=%.2f MWh; availability=%.6f (%d violations)\n",
		r.BatteryOps, r.BatteryInMWh, r.BatteryOutMWh, r.Availability, r.AvailabilityViolations)
	// The generator lines appear only when on-site generation was used,
	// keeping generator-free reports byte-identical to earlier versions;
	// the CO₂ figure and the per-unit breakdown appear only for runs
	// that configure emission intensities / a multi-unit fleet.
	if r.GenStarts > 0 || r.GenEnergyMWh > 0 || r.GenFuelUSD > 0 {
		fmt.Fprintf(&b, "  generator: starts=%d slots=%d energy=%.2f MWh; fuel=$%.2f startup=$%.2f",
			r.GenStarts, r.GenSlots, r.GenEnergyMWh, r.GenFuelUSD, r.GenStartupUSD)
		if r.GenCO2Kg > 0 {
			fmt.Fprintf(&b, " co2=%.1f kg", r.GenCO2Kg)
		}
		fmt.Fprintln(&b)
		if len(r.GenUnits) > 1 {
			for i, u := range r.GenUnits {
				fmt.Fprintf(&b, "    unit %d (%.2f MWh cap): starts=%d slots=%d energy=%.2f MWh; fuel=$%.2f startup=$%.2f co2=%.1f kg\n",
					i, u.CapacityMWh, u.Starts, u.OpSlots, u.EnergyMWh, u.FuelUSD, u.StartupUSD, u.CO2Kg)
			}
		}
	}
	return b.String()
}
