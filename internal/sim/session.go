package sim

import (
	"errors"
	"fmt"
	"math"

	"github.com/smartdpss/smartdpss/internal/battery"
	"github.com/smartdpss/smartdpss/internal/generator"
	"github.com/smartdpss/smartdpss/internal/market"
	"github.com/smartdpss/smartdpss/internal/queue"
)

// SlotInput is one fine slot's exogenous inputs as a streaming caller
// supplies them: the trace row that batch Run reads from a trace.Set.
// All energies are MWh per fine slot, prices USD/MWh.
type SlotInput struct {
	// DemandDS is dds(τ), the delay-sensitive demand served this slot.
	DemandDS float64 `json:"demandDS"`
	// DemandDT is ddt(τ), the delay-tolerant demand joining the backlog.
	DemandDT float64 `json:"demandDT"`
	// Renewable is r(τ), the renewable production.
	Renewable float64 `json:"renewable"`
	// PriceRT is prt(τ), the real-time market price.
	PriceRT float64 `json:"priceRT"`
	// PriceLT is plt(t), the long-term market price. It is read only at
	// coarse boundaries (slot ≡ 0 mod T) but must be populated every
	// slot so a snapshot/restore cycle never changes what a boundary
	// sees.
	PriceLT float64 `json:"priceLT"`
	// FuelScale is the slot's fuel-price multiplier. Callers without a
	// fuel market MUST pass 1 (the engine honors the value verbatim —
	// including 0, which means free fuel — exactly as batch Run honors
	// trace.Set.FuelScaleAt).
	FuelScale float64 `json:"fuelScale"`
}

// validate rejects non-finite inputs up front: a NaN demand would sail
// through the slot arithmetic and poison every accumulator downstream.
func (in SlotInput) validate() error {
	for _, f := range [...]struct {
		name string
		v    float64
	}{
		{"DemandDS", in.DemandDS}, {"DemandDT", in.DemandDT},
		{"Renewable", in.Renewable}, {"PriceRT", in.PriceRT},
		{"PriceLT", in.PriceLT}, {"FuelScale", in.FuelScale},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return &ValidationError{Field: f.name, Reason: "non-finite value"}
		}
	}
	return nil
}

// SlotOutcome is one committed slot: the outcome the controller saw, the
// decision actually executed after the physical rescue chain, and the
// slot's cost contribution to the paper's Cost(τ).
type SlotOutcome struct {
	Outcome
	// Executed is the decision after validation clamps and the rescue
	// chain (real-time top-up, curtailed deferrable service, extra
	// discharge); it is what the physical state advanced with.
	Executed Decision
	// CostUSD is the slot's Cost(τ): long-term share, real-time buy, UPS
	// operation, waste penalty, and generation fuel + startup.
	CostUSD float64
	// GridMWh is the slot's total grid draw — the delivered long-term
	// share plus the executed real-time purchase. Multi-site reducers sum
	// it across concurrently stepped sessions to track the fleet-level
	// aggregate peak, which no per-site report can reconstruct.
	GridMWh float64
	// GenMWh is the slot's delivered on-site generation, so external
	// harnesses can close the slot's energy balance without fleet
	// internals (zero when no fleet is configured).
	GenMWh float64
}

// Snapshotter is implemented by controllers whose internal state can be
// checkpointed. SnapshotState returns an opaque blob (conventionally
// JSON) that RestoreState accepts on a freshly constructed controller of
// the same configuration; the session embeds it in its Checkpoint.
// Controllers without it (the offline benchmarks, which precompute plans
// from the full trace) make Session.Snapshot fail with
// ErrSnapshotUnsupported.
type Snapshotter interface {
	SnapshotState() ([]byte, error)
	RestoreState([]byte) error
}

// Session is a resumable step-wise simulation: the batch slot loop of
// Run split at its natural seam so callers — a streaming daemon, a test
// harness, Run itself — drive one slot at a time.
//
// The protocol per slot is Step(input) → Decision, then Commit() →
// SlotOutcome. Step plans: it opens the coarse interval at boundaries
// (PlanCoarse → market commitment), advances the fleet's synchronization
// countdowns, builds the controller's observation and validates the
// planned decision. Commit executes: fleet dispatch, the physical rescue
// chain, battery/market/backlog updates, report accounting and the
// controller's outcome callback. After the last Commit (or earlier, for
// a truncated run), Finish() finalizes and returns the Report.
//
// Between slots — never between a Step and its Commit — the full
// simulation state can be captured with Snapshot and later reinstated
// with Restore, on this session or an identically configured one in
// another process. A run resumed from a snapshot is bit-identical to one
// that never stopped: every component restores its state verbatim.
//
// Sessions are not safe for concurrent use.
type Session struct {
	cfg         Config
	ctrl        Controller
	horizon     int
	slotMinutes int
	fingerprint func() string
	hash        string // lazily computed by ConfigHash

	batt    *battery.Battery
	fleet   *generator.Fleet
	acct    *market.Account
	backlog *queue.Backlog
	rep     *Report

	slot     int
	finished bool

	// pending Step awaiting Commit
	pending bool
	pIn     SlotInput
	pObs    FineObs
	pDec    Decision
}

// NewSession builds a session over horizon fine slots of slotMinutes
// each. fingerprint supplies an opaque caller-defined configuration
// label folded into the checkpoint hash — engine.Session passes a
// digest of its Options so checkpoints cannot cross configurations that
// map to the same sim.Config (e.g. different V parameters); pass nil
// when the sim.Config is the whole configuration. It is a function, not
// a string, so batch runs that never checkpoint never pay for
// computing it (ConfigHash calls it lazily, at most once).
func NewSession(cfg Config, ctrl Controller, horizon, slotMinutes int, fingerprint func() string) (*Session, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if ctrl == nil {
		return nil, &ValidationError{Field: "Controller", Reason: "nil controller"}
	}
	if ctrl.CoarseSlots() <= 0 {
		return nil, fmt.Errorf("sim: controller %q has non-positive T", ctrl.Name())
	}
	if horizon < 0 {
		return nil, &ValidationError{Field: "Horizon", Reason: "negative horizon"}
	}
	if slotMinutes <= 0 {
		return nil, &ValidationError{Field: "SlotMinutes", Reason: "must be positive"}
	}
	batt, err := battery.New(cfg.Battery)
	if err != nil {
		return nil, err
	}
	fleet, err := generator.NewFleet(cfg.fleetSpecs())
	if err != nil {
		return nil, err
	}
	acct, err := market.NewAccount(cfg.Market)
	if err != nil {
		return nil, err
	}
	return &Session{
		cfg:         cfg,
		ctrl:        ctrl,
		horizon:     horizon,
		slotMinutes: slotMinutes,
		fingerprint: fingerprint,
		batt:        batt,
		fleet:       fleet,
		acct:        acct,
		backlog:     queue.NewBacklog(),
		rep:         newReport(ctrl.Name(), horizon, cfg.KeepSeries),
	}, nil
}

// Slot returns the index of the next fine slot to Step (equivalently,
// the number of committed slots).
func (s *Session) Slot() int { return s.slot }

// Horizon returns the total number of fine slots.
func (s *Session) Horizon() int { return s.horizon }

// SlotMinutes returns the fine-slot length in minutes.
func (s *Session) SlotMinutes() int { return s.slotMinutes }

// Pending reports whether a planned decision awaits Commit.
func (s *Session) Pending() bool { return s.pending }

// Finished reports whether Finish has run.
func (s *Session) Finished() bool { return s.finished }

// ControllerName returns the controller's report name.
func (s *Session) ControllerName() string { return s.ctrl.Name() }

// Controller returns the session's controller (for capability probing,
// e.g. solver-failure counters on a metrics surface).
func (s *Session) Controller() Controller { return s.ctrl }

// Status is a live mid-run view of the session for monitoring surfaces:
// running report accumulators plus the current physical state. It reads
// from the in-progress report, so derived figures (time averages,
// availability ratios) are intentionally absent — Finish computes those.
type Status struct {
	Slot    int `json:"slot"`
	Horizon int `json:"horizon"`

	TotalCostUSD     float64 `json:"totalCostUSD"`
	LTCostUSD        float64 `json:"ltCostUSD"`
	RTCostUSD        float64 `json:"rtCostUSD"`
	BatteryOpUSD     float64 `json:"batteryOpUSD"`
	WasteCostUSD     float64 `json:"wasteCostUSD"`
	GenFuelUSD       float64 `json:"genFuelUSD"`
	GenStartupUSD    float64 `json:"genStartupUSD"`
	EmergencyCostUSD float64 `json:"emergencyCostUSD"`

	LTEnergyMWh  float64 `json:"ltEnergyMWh"`
	RTEnergyMWh  float64 `json:"rtEnergyMWh"`
	RenewableMWh float64 `json:"renewableMWh"`
	GenEnergyMWh float64 `json:"genEnergyMWh"`
	WasteMWh     float64 `json:"wasteMWh"`
	UnservedMWh  float64 `json:"unservedMWh"`
	ServedDTMWh  float64 `json:"servedDTMWh"`
	GenCO2Kg     float64 `json:"genCO2Kg"`

	BacklogMWh  float64 `json:"backlogMWh"`
	BatteryMWh  float64 `json:"batteryMWh"`
	BatteryOps  int     `json:"batteryOps"`
	PeakGridMW  float64 `json:"peakGridMW"`
	Unavailable int     `json:"unavailable"`
}

// Status returns the live mid-run view.
func (s *Session) Status() Status {
	return Status{
		Slot:             s.slot,
		Horizon:          s.horizon,
		TotalCostUSD:     s.rep.TotalCostUSD,
		LTCostUSD:        s.rep.LTCostUSD,
		RTCostUSD:        s.rep.RTCostUSD,
		BatteryOpUSD:     s.rep.BatteryOpUSD,
		WasteCostUSD:     s.rep.WasteCostUSD,
		GenFuelUSD:       s.rep.GenFuelUSD,
		GenStartupUSD:    s.rep.GenStartupUSD,
		EmergencyCostUSD: s.rep.EmergencyCostUSD,
		LTEnergyMWh:      s.acct.LongTermEnergy(),
		RTEnergyMWh:      s.acct.RealTimeEnergy(),
		RenewableMWh:     s.rep.RenewableMWh,
		GenEnergyMWh:     s.rep.GenEnergyMWh,
		WasteMWh:         s.rep.WasteMWh,
		UnservedMWh:      s.rep.UnservedMWh,
		ServedDTMWh:      s.rep.ServedDTMWh,
		GenCO2Kg:         s.rep.GenCO2Kg,
		BacklogMWh:       s.backlog.Len(),
		BatteryMWh:       s.batt.Level(),
		BatteryOps:       s.batt.Ops(),
		PeakGridMW:       s.rep.PeakGridMW,
		Unavailable:      s.rep.unavailable,
	}
}

// Step plans the next fine slot: at a coarse boundary it first runs
// PlanCoarse and commits the long-term purchase, then it advances the
// fleet, builds the controller's observation from the input, and
// validates the planned decision. The returned Decision is the
// controller's plan after validation clamps but before the rescue chain;
// the decision actually executed comes back from Commit.
func (s *Session) Step(in SlotInput) (Decision, error) {
	if s.finished {
		return Decision{}, ErrSessionFinished
	}
	if s.pending {
		return Decision{}, ErrPendingDecision
	}
	if s.slot >= s.horizon {
		return Decision{}, fmt.Errorf("%w: slot %d of horizon %d", ErrHorizonExhausted, s.slot, s.horizon)
	}
	if err := in.validate(); err != nil {
		return Decision{}, err
	}

	slot := s.slot
	T := s.ctrl.CoarseSlots()
	if slot%T == 0 {
		if err := s.coarseBoundary(in, slot, minInt(T, s.horizon-slot)); err != nil {
			return Decision{}, err
		}
	}

	// Advance every unit's synchronization countdown before the
	// controller observes the fleet, so a unit coming online this slot is
	// visible (and dispatchable) rather than silently shut down.
	s.fleet.Tick()
	units := s.fleet.Observe()
	obs := FineObs{
		Slot:         slot,
		Horizon:      s.horizon,
		PriceRT:      in.PriceRT,
		DemandDS:     in.DemandDS,
		DemandDT:     in.DemandDT,
		Renewable:    in.Renewable,
		LongTermDue:  s.acct.LongTermDue(),
		RTHeadroom:   s.acct.RealTimeHeadroom(),
		Battery:      s.batt.Level(),
		MaxCharge:    s.batt.MaxChargeNow(),
		MaxDischarge: s.batt.MaxDischargeNow(),
		Backlog:      s.backlog.Len(),
		SdtMax:       s.cfg.SdtMaxMWh,
		Smax:         s.cfg.SmaxMWh,
		FuelScale:    in.FuelScale,
		GenUnits:     units,
	}
	for _, u := range units {
		obs.GenRunning = obs.GenRunning || u.Running
		obs.GenMinMWh += u.MinMWh
		obs.GenMaxMWh += u.MaxMWh
		obs.GenRequest += u.RequestMax
	}
	dec := s.ctrl.PlanFine(obs)
	if err := s.validateDecision(&dec, obs); err != nil {
		return Decision{}, fmt.Errorf("sim: slot %d controller %q: %w", slot, s.ctrl.Name(), err)
	}

	s.pending = true
	s.pIn = in
	s.pObs = obs
	s.pDec = dec
	return dec, nil
}

func (s *Session) coarseBoundary(in SlotInput, slot, slots int) error {
	obs := CoarseObs{
		Slot:         slot,
		Interval:     slot / s.ctrl.CoarseSlots(),
		Slots:        slots,
		PriceLT:      in.PriceLT,
		DemandDS:     in.DemandDS,
		DemandDT:     in.DemandDT,
		Renewable:    in.Renewable,
		Battery:      s.batt.Level(),
		MaxDischarge: s.batt.MaxDischargeNow(),
		Backlog:      s.backlog.Len(),
		FuelScale:    in.FuelScale,
	}
	gbef := s.ctrl.PlanCoarse(obs)
	if math.IsNaN(gbef) || math.IsInf(gbef, 0) {
		return fmt.Errorf("sim: controller %q returned non-finite gbef", s.ctrl.Name())
	}
	gbef = clamp(gbef, 0, s.cfg.Market.PgridMWh*float64(slots))
	if err := s.acct.BeginCoarse(gbef, obs.PriceLT, slots); err != nil {
		return fmt.Errorf("sim: coarse plan at slot %d: %w", slot, err)
	}
	return nil
}

// Commit executes the pending decision against the physical state and
// advances the session to the next slot.
func (s *Session) Commit() (SlotOutcome, error) {
	if s.finished {
		return SlotOutcome{}, ErrSessionFinished
	}
	if !s.pending {
		return SlotOutcome{}, ErrNoPendingDecision
	}

	var (
		slot = s.slot
		in   = s.pIn
		obs  = s.pObs
		dec  = s.pDec
		dds  = in.DemandDS
		ddt  = in.DemandDT
		r    = in.Renewable
		prt  = in.PriceRT
	)

	// Dispatch the on-site fleet first: its delivered energy is
	// committed supply for the balance below (a no-op when no fleet is
	// configured). A per-unit plan is executed as given; an aggregate
	// request is split across the units in merit order.
	requests := dec.GenerateUnits
	if requests == nil {
		requests = s.fleet.SplitTotal(dec.Generate)
	}
	var gen generator.Outcome
	for _, out := range s.fleet.Dispatch(requests, obs.FuelScale) {
		gen.DeliveredMWh += out.DeliveredMWh
		gen.FuelUSD += out.FuelUSD
		gen.StartupUSD += out.StartupUSD
		gen.CO2Kg += out.CO2Kg
	}

	// Execute the slot: the balance residual becomes waste or unserved
	// delay-sensitive energy, so Eq. (4) holds by construction:
	//   s(τ) + bdc(τ) − brc(τ) = dds_served + sdt(τ) + W(τ).
	supply := obs.LongTermDue + dec.Grt + r + gen.DeliveredMWh
	net := supply + dec.Discharge - dds - dec.ServeDT - dec.Charge

	// Physical rescue chain for residual deficits. A grid-connected
	// datacenter cannot under-draw by plan: unplanned consumption settles
	// reactively on the real-time market within the Pgrid cap; deferrable
	// service is curtailed next (the energy simply stays queued); the
	// inline UPS bridges what remains; only then is delay-sensitive load
	// shed (the availability role the paper assigns to the Bmin reserve,
	// Sec. II-B.4).
	if net < 0 && dec.Charge > 0 {
		cancel := math.Min(dec.Charge, -net)
		dec.Charge -= cancel
		net += cancel
	}
	if net < 0 {
		headroom := s.acct.RealTimeHeadroom() - dec.Grt
		smaxRoom := s.cfg.SmaxMWh - (obs.LongTermDue + dec.Grt + r + gen.DeliveredMWh)
		topup := math.Min(-net, math.Max(0, math.Min(headroom, smaxRoom)))
		if topup > 0 {
			dec.Grt += topup
			supply += topup
			net += topup
		}
	}
	if net < 0 && dec.ServeDT > 0 {
		cut := math.Min(dec.ServeDT, -net)
		dec.ServeDT -= cut
		net += cut
	}
	if net < 0 && dec.Charge <= decisionTol {
		dec.Charge = 0
		extra := math.Min(obs.MaxDischarge-dec.Discharge, -net)
		if extra > 0 {
			dec.Discharge += extra
			net += extra
		}
	}

	// The balance residual is numerical round-off when it is sub-epsilon:
	// normalize it (and IEEE negative zero) before it enters the
	// accounting, so report totals cannot pick up a stray sign bit.
	waste, unserved := 0.0, 0.0
	if net >= 0 {
		waste = cleanZero(net)
	} else {
		unserved = cleanZero(-net)
	}

	if err := s.batt.Apply(dec.Charge, dec.Discharge); err != nil {
		return SlotOutcome{}, fmt.Errorf("sim: slot %d battery: %w", slot, err)
	}
	ltCost, err := s.acct.SettleLongTermSlot()
	if err != nil {
		return SlotOutcome{}, fmt.Errorf("sim: slot %d settle: %w", slot, err)
	}
	rtCost, err := s.acct.BuyRealTime(dec.Grt, prt)
	if err != nil {
		return SlotOutcome{}, fmt.Errorf("sim: slot %d real-time buy: %w", slot, err)
	}

	backlogBefore := s.backlog.Len()
	served := s.backlog.Serve(slot, dec.ServeDT)
	if math.Abs(served-dec.ServeDT) > decisionTol {
		return SlotOutcome{}, fmt.Errorf("sim: slot %d served %g != requested %g", slot, served, dec.ServeDT)
	}
	s.backlog.Arrive(slot, ddt)

	// Verify the balance identity (engine invariant).
	lhs := supply + dec.Discharge - dec.Charge
	rhs := (dds - unserved) + served + waste
	if math.Abs(lhs-rhs) > 1e-6 {
		return SlotOutcome{}, fmt.Errorf("sim: slot %d energy balance violated: %g != %g", slot, lhs, rhs)
	}

	opCost := 0.0
	if dec.Charge > 0 || dec.Discharge > 0 {
		opCost = s.cfg.Battery.OpCostUSD
	}
	wasteCost := waste * s.cfg.WasteCostUSD
	slotCost := ltCost + rtCost + opCost + wasteCost + gen.FuelUSD + gen.StartupUSD

	slotHours := float64(s.slotMinutes) / 60
	gridDraw := obs.LongTermDue + dec.Grt
	s.rep.recordSlot(slotRecord{
		slot:          slot,
		gridDrawMW:    gridDraw / slotHours,
		nearPeak:      gridDraw > 0.95*s.cfg.Market.PgridMWh,
		cost:          slotCost,
		ltCost:        ltCost,
		rtCost:        rtCost,
		opCost:        opCost,
		wasteCost:     wasteCost,
		waste:         waste,
		unserved:      unserved,
		emergencyCost: unserved * s.cfg.EmergencyCostUSD,
		backlog:       s.backlog.Len(),
		battery:       s.batt.Level(),
		renewable:     r,
		served:        served,
		genMWh:        gen.DeliveredMWh,
		genFuelUSD:    gen.FuelUSD,
		genStartUSD:   gen.StartupUSD,
		genCO2Kg:      gen.CO2Kg,
		batteryMoved:  dec.Charge > 0 || dec.Discharge > 0,
		available:     s.batt.Available() && unserved <= decisionTol,
	})

	out := Outcome{
		Slot:          slot,
		ServedDT:      served,
		BacklogBefore: backlogBefore,
		BacklogAfter:  s.backlog.Len(),
		Waste:         waste,
		Unserved:      unserved,
		Battery:       s.batt.Level(),
	}
	s.ctrl.RecordOutcome(out)

	s.pending = false
	s.slot++
	return SlotOutcome{Outcome: out, Executed: dec, CostUSD: slotCost, GridMWh: gridDraw, GenMWh: gen.DeliveredMWh}, nil
}

// Finish finalizes and returns the report. It may run before the horizon
// is exhausted (a truncated run reports the committed slots); afterwards
// the session accepts no further calls.
func (s *Session) Finish() (*Report, error) {
	if s.finished {
		return nil, ErrSessionFinished
	}
	if s.pending {
		return nil, ErrPendingDecision
	}
	s.finished = true
	s.rep.finalize(s.batt, s.fleet, s.acct, s.backlog)
	s.rep.PeakChargeUSD = s.rep.PeakGridMW * s.cfg.PeakChargeUSDPerMW
	return s.rep, nil
}

// checkDecisionField validates one decision field against its admissible
// maximum, clamping sub-tolerance overshoot and rejecting anything
// larger. Field-by-field calls keep the decision off the heap — the old
// pointer-table formulation forced every slot's Decision to escape.
func checkDecisionField(name string, val *float64, max float64) error {
	if math.IsNaN(*val) || math.IsInf(*val, 0) {
		return fmt.Errorf("non-finite %s", name)
	}
	limit := math.Max(0, max)
	if *val < -decisionTol || *val > limit+decisionTol {
		return fmt.Errorf("%s = %g outside [0, %g]", name, *val, limit)
	}
	*val = clamp(*val, 0, limit)
	return nil
}

// validateDecision checks the decision against the slot's admissible set,
// clamping sub-tolerance overshoot and rejecting anything larger.
func (s *Session) validateDecision(dec *Decision, obs FineObs) error {
	if err := checkDecisionField("grt", &dec.Grt,
		math.Min(obs.RTHeadroom, s.cfg.SmaxMWh-obs.LongTermDue-obs.Renewable)); err != nil {
		return err
	}
	if err := checkDecisionField("serveDT", &dec.ServeDT, math.Min(obs.Backlog, obs.SdtMax)); err != nil {
		return err
	}
	if err := checkDecisionField("charge", &dec.Charge, obs.MaxCharge); err != nil {
		return err
	}
	if err := checkDecisionField("discharge", &dec.Discharge, obs.MaxDischarge); err != nil {
		return err
	}
	if dec.GenerateUnits == nil {
		if err := checkDecisionField("generate", &dec.Generate, obs.GenRequest); err != nil {
			return err
		}
	}
	if dec.GenerateUnits != nil {
		if len(dec.GenerateUnits) > len(obs.GenUnits) {
			return fmt.Errorf("generateUnits has %d entries for a %d-unit fleet",
				len(dec.GenerateUnits), len(obs.GenUnits))
		}
		for u := range dec.GenerateUnits {
			val := &dec.GenerateUnits[u]
			if math.IsNaN(*val) || math.IsInf(*val, 0) {
				return fmt.Errorf("non-finite generateUnits[%d]", u)
			}
			limit := math.Max(0, obs.GenUnits[u].RequestMax)
			if *val < -decisionTol || *val > limit+decisionTol {
				return fmt.Errorf("generateUnits[%d] = %g outside [0, %g]", u, *val, limit)
			}
			*val = clamp(*val, 0, limit)
		}
	}
	if dec.Charge > decisionTol && dec.Discharge > decisionTol {
		return errors.New("charge and discharge in the same slot")
	}
	return nil
}
