// Package sim is the discrete-time, two-timescale simulation engine of the
// SmartDPSS evaluation (Sec. VI). It owns the physical state — UPS battery,
// grid market account, and the delay-tolerant backlog queue — and executes
// controller decisions under the paper's constraints: the supply/demand
// balance (Eq. 4), the grid cap (Eq. 5), battery bounds and rate limits
// (Eqs. 7–8), and the per-slot service cap Sdtmax.
//
// Controllers (SmartDPSS, Impatient, the offline benchmarks) implement the
// Controller interface; because every algorithm runs through the same
// engine and accounting, their reported costs are directly comparable.
package sim

import (
	"errors"
	"fmt"
	"math"

	"github.com/smartdpss/smartdpss/internal/battery"
	"github.com/smartdpss/smartdpss/internal/generator"
	"github.com/smartdpss/smartdpss/internal/market"
	"github.com/smartdpss/smartdpss/internal/queue"
	"github.com/smartdpss/smartdpss/internal/trace"
)

// CoarseObs is what a controller sees at the start of a coarse slot t = kT
// (paper Fig. 2): the current fine slot's demand and renewable production,
// the long-term price for the upcoming interval, and system state.
type CoarseObs struct {
	Slot         int     // fine-slot index of the interval start
	Interval     int     // coarse interval index k
	Slots        int     // fine slots in this interval (T, shorter at horizon end)
	PriceLT      float64 // plt(t) in USD/MWh
	DemandDS     float64 // dds observed during the current fine slot, MWh
	DemandDT     float64 // ddt observed during the current fine slot, MWh
	Renewable    float64 // r observed during the current fine slot, MWh
	Battery      float64 // b(t) in MWh
	MaxDischarge float64 // deliverable battery energy this slot, MWh
	Backlog      float64 // Q(t) in MWh
	FuelScale    float64 // fuel-price multiplier at the boundary slot (1 without a fuel trace)
}

// FineObs is what a controller sees each fine slot τ.
type FineObs struct {
	Slot int
	// Horizon is the total number of fine slots in the run (0 on
	// hand-built observations: unknown). Controllers with lookahead arms
	// clamp their projection windows to Horizon − Slot so they never
	// forecast past the end of the trace.
	Horizon      int
	PriceRT      float64 // prt(τ) in USD/MWh
	DemandDS     float64 // dds(τ), must be served now
	DemandDT     float64 // ddt(τ), joins the queue this slot
	Renewable    float64 // r(τ)
	LongTermDue  float64 // gbef(t)/T delivered this slot
	RTHeadroom   float64 // Pgrid − gbef(t)/T
	Battery      float64 // b(τ)
	MaxCharge    float64 // admissible brc(τ) this slot
	MaxDischarge float64 // admissible bdc(τ) this slot
	Backlog      float64 // Q(τ) before this slot's arrivals
	SdtMax       float64 // per-slot service cap Sdtmax
	Smax         float64 // per-slot supply cap (Eq. 1)

	// FuelScale is the slot's fuel-price multiplier (1 without a fuel
	// trace): every generation unit's fuel curve is scaled by it.
	FuelScale float64

	// GenUnits is the per-unit dispatch state of the on-site generation
	// fleet, in fleet order (nil when no fleet is configured). A
	// controller addresses unit u through Decision.GenerateUnits[u].
	GenUnits []generator.UnitObs

	// Aggregate on-site generation state (all zero when no fleet is
	// configured). For a one-unit fleet these are exactly the unit's
	// values, matching the pre-fleet single-generator observation.
	GenRunning bool    // at least one unit is synchronized and producing-capable
	GenMinMWh  float64 // summed minimum stable load of the open dispatch windows
	GenMaxMWh  float64 // summed max deliverable output this slot (0: cannot produce now)
	GenRequest float64 // summed largest admissible dispatch request; exceeds
	// GenMaxMWh only when units are off with a synchronization lag, where
	// a positive request signals a cold start that delivers nothing yet
}

// Decision is a controller's fine-slot action. The engine derives waste and
// unserved energy from the balance residual, so a Decision can never break
// Eq. (4) — it can only waste energy or fail demand, both of which are
// priced and reported.
type Decision struct {
	Grt       float64 // real-time purchase grt(τ), MWh
	ServeDT   float64 // backlog service sdt(τ) = γ(τ)Q(τ), MWh
	Charge    float64 // battery charge brc(τ), MWh (grid side)
	Discharge float64 // battery discharge bdc(τ), MWh (load side)
	// Generate is the requested aggregate on-site generation output g(τ),
	// MWh, split across the fleet in merit order (for a one-unit fleet it
	// addresses the unit directly, the pre-fleet behavior). The engine
	// clamps each unit's share to its admissible set: requests below the
	// minimum stable load shut the unit down, and a positive request
	// while the unit is off triggers a cold start (see FineObs.GenUnits
	// and package generator). Ignored when no fleet is configured or when
	// GenerateUnits is set.
	Generate float64
	// GenerateUnits is the per-unit dispatch request in fleet order.
	// When non-nil it takes precedence over Generate; entries beyond the
	// slice's length are zero (shut down). Fleet-aware controllers use
	// this to place each unit exactly.
	GenerateUnits []float64
}

// Outcome reports the executed slot back to the controller so it can update
// its internal (virtual) queues.
type Outcome struct {
	Slot          int
	ServedDT      float64 // energy actually removed from the backlog
	BacklogBefore float64 // Q(τ) before serving/arrivals
	BacklogAfter  float64 // Q(τ+1)
	Waste         float64 // W(τ)
	Unserved      float64 // delay-sensitive energy shed (availability event)
	Battery       float64 // b(τ+1)
}

// Controller is a DPSS control policy.
type Controller interface {
	// Name identifies the policy in reports.
	Name() string
	// CoarseSlots returns T, the number of fine slots per coarse slot.
	CoarseSlots() int
	// PlanCoarse returns gbef(t), the total long-term-ahead purchase for
	// the upcoming interval (delivered evenly across its slots).
	PlanCoarse(obs CoarseObs) float64
	// PlanFine returns the fine-slot decision.
	PlanFine(obs FineObs) Decision
	// RecordOutcome delivers the executed slot for internal bookkeeping.
	RecordOutcome(out Outcome)
}

// Config parameterizes the engine.
type Config struct {
	// Battery is the UPS configuration (Sec. VI-A constants by default).
	Battery battery.Params
	// Generator is the optional dispatchable on-site generation unit
	// (zero value: no generator, reproducing generator-free results
	// exactly). It is the one-unit shorthand for Fleet; setting both is
	// a configuration error.
	Generator generator.Params
	// Fleet is the multi-unit on-site generation fleet in dispatch
	// order (nil/empty: no fleet). Each unit keeps its own physics and
	// accounting; Decision.GenerateUnits addresses them individually.
	Fleet []generator.Params
	// Market bounds the grid interface (Pgrid, Pmax).
	Market market.Params
	// WasteCostUSD prices wasted energy per MWh (the paper adds W(τ) to
	// Cost(τ) directly, i.e. an implicit unit price).
	WasteCostUSD float64
	// EmergencyCostUSD prices unserved delay-sensitive energy per MWh.
	// It is reported separately from the paper's Cost(τ).
	EmergencyCostUSD float64
	// SdtMaxMWh is Sdtmax, the per-slot cap on delay-tolerant service.
	SdtMaxMWh float64
	// SmaxMWh is Smax, the per-slot cap on total supply s(τ) (Eq. 1).
	SmaxMWh float64
	// PeakChargeUSDPerMW is an optional demand charge applied once per run
	// to the peak grid draw (in MW). Peak/demand-charge management is the
	// paper's declared future work (Sec. IV-C); the engine measures it and
	// reports the charge separately from the paper's Cost(τ).
	PeakChargeUSDPerMW float64
	// KeepSeries retains per-slot series (cost, backlog, battery) in the
	// report for plotting and robustness analysis.
	KeepSeries bool
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.Battery.Validate(); err != nil {
		return err
	}
	if err := c.Generator.Validate(); err != nil {
		return err
	}
	if len(c.Fleet) > 0 && c.Generator.Enabled() {
		return errors.New("sim: both Generator and Fleet configured (use Fleet alone)")
	}
	for i, u := range c.Fleet {
		if err := u.Validate(); err != nil {
			return fmt.Errorf("sim: fleet unit %d: %w", i, err)
		}
	}
	if err := c.Market.Validate(); err != nil {
		return err
	}
	switch {
	case c.WasteCostUSD < 0:
		return errors.New("sim: negative WasteCostUSD")
	case c.EmergencyCostUSD < 0:
		return errors.New("sim: negative EmergencyCostUSD")
	case c.SdtMaxMWh <= 0:
		return errors.New("sim: SdtMaxMWh must be positive")
	case c.SmaxMWh <= 0:
		return errors.New("sim: SmaxMWh must be positive")
	case c.PeakChargeUSDPerMW < 0:
		return errors.New("sim: negative PeakChargeUSDPerMW")
	}
	return nil
}

// decisionTol absorbs controller round-off before decisions are validated;
// anything beyond it is treated as a controller bug.
const decisionTol = 1e-6

// fleetSpecs resolves the configured fleet: the explicit Fleet slice, or
// the legacy single Generator wrapped as a one-unit fleet (the shim that
// keeps Generator-only configurations byte-identical).
func (c Config) fleetSpecs() []generator.Params {
	if len(c.Fleet) > 0 {
		return c.Fleet
	}
	if c.Generator.Enabled() {
		return []generator.Params{c.Generator}
	}
	return nil
}

// Run simulates the controller over the trace set and returns the report.
func Run(cfg Config, set *trace.Set, ctrl Controller) (*Report, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := set.Validate(); err != nil {
		return nil, err
	}
	if ctrl.CoarseSlots() <= 0 {
		return nil, fmt.Errorf("sim: controller %q has non-positive T", ctrl.Name())
	}

	batt, err := battery.New(cfg.Battery)
	if err != nil {
		return nil, err
	}
	fleet, err := generator.NewFleet(cfg.fleetSpecs())
	if err != nil {
		return nil, err
	}
	acct, err := market.NewAccount(cfg.Market)
	if err != nil {
		return nil, err
	}
	e := &engine{
		cfg:     cfg,
		set:     set,
		ctrl:    ctrl,
		batt:    batt,
		fleet:   fleet,
		acct:    acct,
		backlog: queue.NewBacklog(),
		rep:     newReport(ctrl.Name(), set.Horizon(), cfg.KeepSeries),
	}
	if err := e.run(); err != nil {
		return nil, err
	}
	return e.rep, nil
}

// engine holds the mutable simulation state for one run.
type engine struct {
	cfg     Config
	set     *trace.Set
	ctrl    Controller
	batt    *battery.Battery
	fleet   *generator.Fleet
	acct    *market.Account
	backlog *queue.Backlog
	rep     *Report
}

func (e *engine) run() error {
	horizon := e.set.Horizon()
	T := e.ctrl.CoarseSlots()

	for slot := 0; slot < horizon; slot++ {
		if slot%T == 0 {
			if err := e.coarseBoundary(slot, minInt(T, horizon-slot)); err != nil {
				return err
			}
		}
		if err := e.fineSlot(slot); err != nil {
			return err
		}
	}
	e.rep.finalize(e.batt, e.fleet, e.acct, e.backlog)
	e.rep.PeakChargeUSD = e.rep.PeakGridMW * e.cfg.PeakChargeUSDPerMW
	return nil
}

func (e *engine) coarseBoundary(slot, slots int) error {
	obs := CoarseObs{
		Slot:         slot,
		Interval:     slot / e.ctrl.CoarseSlots(),
		Slots:        slots,
		PriceLT:      e.set.PriceLT.At(slot),
		DemandDS:     e.set.DemandDS.At(slot),
		DemandDT:     e.set.DemandDT.At(slot),
		Renewable:    e.set.Renewable.At(slot),
		Battery:      e.batt.Level(),
		MaxDischarge: e.batt.MaxDischargeNow(),
		Backlog:      e.backlog.Len(),
		FuelScale:    e.set.FuelScaleAt(slot),
	}
	gbef := e.ctrl.PlanCoarse(obs)
	if math.IsNaN(gbef) || math.IsInf(gbef, 0) {
		return fmt.Errorf("sim: controller %q returned non-finite gbef", e.ctrl.Name())
	}
	gbef = clamp(gbef, 0, e.cfg.Market.PgridMWh*float64(slots))
	if err := e.acct.BeginCoarse(gbef, obs.PriceLT, slots); err != nil {
		return fmt.Errorf("sim: coarse plan at slot %d: %w", slot, err)
	}
	return nil
}

func (e *engine) fineSlot(slot int) error {
	var (
		dds = e.set.DemandDS.At(slot)
		ddt = e.set.DemandDT.At(slot)
		r   = e.set.Renewable.At(slot)
		prt = e.set.PriceRT.At(slot)
	)
	// Advance every unit's synchronization countdown before the
	// controller observes the fleet, so a unit coming online this slot is
	// visible (and dispatchable) rather than silently shut down.
	e.fleet.Tick()
	units := e.fleet.Observe()
	obs := FineObs{
		Slot:         slot,
		Horizon:      e.set.Horizon(),
		PriceRT:      prt,
		DemandDS:     dds,
		DemandDT:     ddt,
		Renewable:    r,
		LongTermDue:  e.acct.LongTermDue(),
		RTHeadroom:   e.acct.RealTimeHeadroom(),
		Battery:      e.batt.Level(),
		MaxCharge:    e.batt.MaxChargeNow(),
		MaxDischarge: e.batt.MaxDischargeNow(),
		Backlog:      e.backlog.Len(),
		SdtMax:       e.cfg.SdtMaxMWh,
		Smax:         e.cfg.SmaxMWh,
		FuelScale:    e.set.FuelScaleAt(slot),
		GenUnits:     units,
	}
	for _, u := range units {
		obs.GenRunning = obs.GenRunning || u.Running
		obs.GenMinMWh += u.MinMWh
		obs.GenMaxMWh += u.MaxMWh
		obs.GenRequest += u.RequestMax
	}
	dec := e.ctrl.PlanFine(obs)
	if err := e.validateDecision(&dec, obs); err != nil {
		return fmt.Errorf("sim: slot %d controller %q: %w", slot, e.ctrl.Name(), err)
	}

	// Dispatch the on-site fleet first: its delivered energy is
	// committed supply for the balance below (a no-op when no fleet is
	// configured). A per-unit plan is executed as given; an aggregate
	// request is split across the units in merit order.
	requests := dec.GenerateUnits
	if requests == nil {
		requests = e.fleet.SplitTotal(dec.Generate)
	}
	var gen generator.Outcome
	for _, out := range e.fleet.Dispatch(requests, obs.FuelScale) {
		gen.DeliveredMWh += out.DeliveredMWh
		gen.FuelUSD += out.FuelUSD
		gen.StartupUSD += out.StartupUSD
		gen.CO2Kg += out.CO2Kg
	}

	// Execute the slot: the balance residual becomes waste or unserved
	// delay-sensitive energy, so Eq. (4) holds by construction:
	//   s(τ) + bdc(τ) − brc(τ) = dds_served + sdt(τ) + W(τ).
	supply := obs.LongTermDue + dec.Grt + r + gen.DeliveredMWh
	net := supply + dec.Discharge - dds - dec.ServeDT - dec.Charge

	// Physical rescue chain for residual deficits. A grid-connected
	// datacenter cannot under-draw by plan: unplanned consumption settles
	// reactively on the real-time market within the Pgrid cap; deferrable
	// service is curtailed next (the energy simply stays queued); the
	// inline UPS bridges what remains; only then is delay-sensitive load
	// shed (the availability role the paper assigns to the Bmin reserve,
	// Sec. II-B.4).
	if net < 0 && dec.Charge > 0 {
		cancel := math.Min(dec.Charge, -net)
		dec.Charge -= cancel
		net += cancel
	}
	if net < 0 {
		headroom := e.acct.RealTimeHeadroom() - dec.Grt
		smaxRoom := e.cfg.SmaxMWh - (obs.LongTermDue + dec.Grt + r + gen.DeliveredMWh)
		topup := math.Min(-net, math.Max(0, math.Min(headroom, smaxRoom)))
		if topup > 0 {
			dec.Grt += topup
			supply += topup
			net += topup
		}
	}
	if net < 0 && dec.ServeDT > 0 {
		cut := math.Min(dec.ServeDT, -net)
		dec.ServeDT -= cut
		net += cut
	}
	if net < 0 && dec.Charge <= decisionTol {
		dec.Charge = 0
		extra := math.Min(obs.MaxDischarge-dec.Discharge, -net)
		if extra > 0 {
			dec.Discharge += extra
			net += extra
		}
	}

	// The balance residual is numerical round-off when it is sub-epsilon:
	// normalize it (and IEEE negative zero) before it enters the
	// accounting, so report totals cannot pick up a stray sign bit.
	waste, unserved := 0.0, 0.0
	if net >= 0 {
		waste = cleanZero(net)
	} else {
		unserved = cleanZero(-net)
	}

	if err := e.batt.Apply(dec.Charge, dec.Discharge); err != nil {
		return fmt.Errorf("sim: slot %d battery: %w", slot, err)
	}
	ltCost, err := e.acct.SettleLongTermSlot()
	if err != nil {
		return fmt.Errorf("sim: slot %d settle: %w", slot, err)
	}
	rtCost, err := e.acct.BuyRealTime(dec.Grt, prt)
	if err != nil {
		return fmt.Errorf("sim: slot %d real-time buy: %w", slot, err)
	}

	backlogBefore := e.backlog.Len()
	served := e.backlog.Serve(slot, dec.ServeDT)
	if math.Abs(served-dec.ServeDT) > decisionTol {
		return fmt.Errorf("sim: slot %d served %g != requested %g", slot, served, dec.ServeDT)
	}
	e.backlog.Arrive(slot, ddt)

	// Verify the balance identity (engine invariant).
	lhs := supply + dec.Discharge - dec.Charge
	rhs := (dds - unserved) + served + waste
	if math.Abs(lhs-rhs) > 1e-6 {
		return fmt.Errorf("sim: slot %d energy balance violated: %g != %g", slot, lhs, rhs)
	}

	opCost := 0.0
	if dec.Charge > 0 || dec.Discharge > 0 {
		opCost = e.cfg.Battery.OpCostUSD
	}
	wasteCost := waste * e.cfg.WasteCostUSD
	slotCost := ltCost + rtCost + opCost + wasteCost + gen.FuelUSD + gen.StartupUSD

	slotHours := float64(e.set.DemandDS.SlotMinutes) / 60
	gridDraw := obs.LongTermDue + dec.Grt
	e.rep.recordSlot(slotRecord{
		slot:          slot,
		gridDrawMW:    gridDraw / slotHours,
		nearPeak:      gridDraw > 0.95*e.cfg.Market.PgridMWh,
		cost:          slotCost,
		ltCost:        ltCost,
		rtCost:        rtCost,
		opCost:        opCost,
		wasteCost:     wasteCost,
		waste:         waste,
		unserved:      unserved,
		emergencyCost: unserved * e.cfg.EmergencyCostUSD,
		backlog:       e.backlog.Len(),
		battery:       e.batt.Level(),
		renewable:     r,
		served:        served,
		genMWh:        gen.DeliveredMWh,
		genFuelUSD:    gen.FuelUSD,
		genStartUSD:   gen.StartupUSD,
		genCO2Kg:      gen.CO2Kg,
		batteryMoved:  dec.Charge > 0 || dec.Discharge > 0,
		available:     e.batt.Available() && unserved <= decisionTol,
	})

	e.ctrl.RecordOutcome(Outcome{
		Slot:          slot,
		ServedDT:      served,
		BacklogBefore: backlogBefore,
		BacklogAfter:  e.backlog.Len(),
		Waste:         waste,
		Unserved:      unserved,
		Battery:       e.batt.Level(),
	})
	return nil
}

// checkDecisionField validates one decision field against its admissible
// maximum, clamping sub-tolerance overshoot and rejecting anything
// larger. Field-by-field calls keep the decision off the heap — the old
// pointer-table formulation forced every slot's Decision to escape.
func checkDecisionField(name string, val *float64, max float64) error {
	if math.IsNaN(*val) || math.IsInf(*val, 0) {
		return fmt.Errorf("non-finite %s", name)
	}
	limit := math.Max(0, max)
	if *val < -decisionTol || *val > limit+decisionTol {
		return fmt.Errorf("%s = %g outside [0, %g]", name, *val, limit)
	}
	*val = clamp(*val, 0, limit)
	return nil
}

// validateDecision checks the decision against the slot's admissible set,
// clamping sub-tolerance overshoot and rejecting anything larger.
func (e *engine) validateDecision(dec *Decision, obs FineObs) error {
	if err := checkDecisionField("grt", &dec.Grt,
		math.Min(obs.RTHeadroom, e.cfg.SmaxMWh-obs.LongTermDue-obs.Renewable)); err != nil {
		return err
	}
	if err := checkDecisionField("serveDT", &dec.ServeDT, math.Min(obs.Backlog, obs.SdtMax)); err != nil {
		return err
	}
	if err := checkDecisionField("charge", &dec.Charge, obs.MaxCharge); err != nil {
		return err
	}
	if err := checkDecisionField("discharge", &dec.Discharge, obs.MaxDischarge); err != nil {
		return err
	}
	if dec.GenerateUnits == nil {
		if err := checkDecisionField("generate", &dec.Generate, obs.GenRequest); err != nil {
			return err
		}
	}
	if dec.GenerateUnits != nil {
		if len(dec.GenerateUnits) > len(obs.GenUnits) {
			return fmt.Errorf("generateUnits has %d entries for a %d-unit fleet",
				len(dec.GenerateUnits), len(obs.GenUnits))
		}
		for u := range dec.GenerateUnits {
			val := &dec.GenerateUnits[u]
			if math.IsNaN(*val) || math.IsInf(*val, 0) {
				return fmt.Errorf("non-finite generateUnits[%d]", u)
			}
			limit := math.Max(0, obs.GenUnits[u].RequestMax)
			if *val < -decisionTol || *val > limit+decisionTol {
				return fmt.Errorf("generateUnits[%d] = %g outside [0, %g]", u, *val, limit)
			}
			*val = clamp(*val, 0, limit)
		}
	}
	if dec.Charge > decisionTol && dec.Discharge > decisionTol {
		return errors.New("charge and discharge in the same slot")
	}
	return nil
}

func clamp(x, lo, hi float64) float64 { return math.Min(hi, math.Max(lo, x)) }

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
