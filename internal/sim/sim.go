// Package sim is the discrete-time, two-timescale simulation engine of the
// SmartDPSS evaluation (Sec. VI). It owns the physical state — UPS battery,
// grid market account, and the delay-tolerant backlog queue — and executes
// controller decisions under the paper's constraints: the supply/demand
// balance (Eq. 4), the grid cap (Eq. 5), battery bounds and rate limits
// (Eqs. 7–8), and the per-slot service cap Sdtmax.
//
// Controllers (SmartDPSS, Impatient, the offline benchmarks) implement the
// Controller interface; because every algorithm runs through the same
// engine and accounting, their reported costs are directly comparable.
package sim

import (
	"errors"
	"fmt"
	"math"

	"github.com/smartdpss/smartdpss/internal/battery"
	"github.com/smartdpss/smartdpss/internal/generator"
	"github.com/smartdpss/smartdpss/internal/market"
	"github.com/smartdpss/smartdpss/internal/trace"
)

// CoarseObs is what a controller sees at the start of a coarse slot t = kT
// (paper Fig. 2): the current fine slot's demand and renewable production,
// the long-term price for the upcoming interval, and system state.
type CoarseObs struct {
	Slot         int     // fine-slot index of the interval start
	Interval     int     // coarse interval index k
	Slots        int     // fine slots in this interval (T, shorter at horizon end)
	PriceLT      float64 // plt(t) in USD/MWh
	DemandDS     float64 // dds observed during the current fine slot, MWh
	DemandDT     float64 // ddt observed during the current fine slot, MWh
	Renewable    float64 // r observed during the current fine slot, MWh
	Battery      float64 // b(t) in MWh
	MaxDischarge float64 // deliverable battery energy this slot, MWh
	Backlog      float64 // Q(t) in MWh
	FuelScale    float64 // fuel-price multiplier at the boundary slot (1 without a fuel trace)
}

// FineObs is what a controller sees each fine slot τ.
type FineObs struct {
	Slot int
	// Horizon is the total number of fine slots in the run (0 on
	// hand-built observations: unknown). Controllers with lookahead arms
	// clamp their projection windows to Horizon − Slot so they never
	// forecast past the end of the trace.
	Horizon      int
	PriceRT      float64 // prt(τ) in USD/MWh
	DemandDS     float64 // dds(τ), must be served now
	DemandDT     float64 // ddt(τ), joins the queue this slot
	Renewable    float64 // r(τ)
	LongTermDue  float64 // gbef(t)/T delivered this slot
	RTHeadroom   float64 // Pgrid − gbef(t)/T
	Battery      float64 // b(τ)
	MaxCharge    float64 // admissible brc(τ) this slot
	MaxDischarge float64 // admissible bdc(τ) this slot
	Backlog      float64 // Q(τ) before this slot's arrivals
	SdtMax       float64 // per-slot service cap Sdtmax
	Smax         float64 // per-slot supply cap (Eq. 1)

	// FuelScale is the slot's fuel-price multiplier (1 without a fuel
	// trace): every generation unit's fuel curve is scaled by it.
	FuelScale float64

	// GenUnits is the per-unit dispatch state of the on-site generation
	// fleet, in fleet order (nil when no fleet is configured). A
	// controller addresses unit u through Decision.GenerateUnits[u].
	GenUnits []generator.UnitObs

	// Aggregate on-site generation state (all zero when no fleet is
	// configured). For a one-unit fleet these are exactly the unit's
	// values, matching the pre-fleet single-generator observation.
	GenRunning bool    // at least one unit is synchronized and producing-capable
	GenMinMWh  float64 // summed minimum stable load of the open dispatch windows
	GenMaxMWh  float64 // summed max deliverable output this slot (0: cannot produce now)
	GenRequest float64 // summed largest admissible dispatch request; exceeds
	// GenMaxMWh only when units are off with a synchronization lag, where
	// a positive request signals a cold start that delivers nothing yet
}

// Decision is a controller's fine-slot action. The engine derives waste and
// unserved energy from the balance residual, so a Decision can never break
// Eq. (4) — it can only waste energy or fail demand, both of which are
// priced and reported.
type Decision struct {
	Grt       float64 // real-time purchase grt(τ), MWh
	ServeDT   float64 // backlog service sdt(τ) = γ(τ)Q(τ), MWh
	Charge    float64 // battery charge brc(τ), MWh (grid side)
	Discharge float64 // battery discharge bdc(τ), MWh (load side)
	// Generate is the requested aggregate on-site generation output g(τ),
	// MWh, split across the fleet in merit order (for a one-unit fleet it
	// addresses the unit directly, the pre-fleet behavior). The engine
	// clamps each unit's share to its admissible set: requests below the
	// minimum stable load shut the unit down, and a positive request
	// while the unit is off triggers a cold start (see FineObs.GenUnits
	// and package generator). Ignored when no fleet is configured or when
	// GenerateUnits is set.
	Generate float64
	// GenerateUnits is the per-unit dispatch request in fleet order.
	// When non-nil it takes precedence over Generate; entries beyond the
	// slice's length are zero (shut down). Fleet-aware controllers use
	// this to place each unit exactly.
	GenerateUnits []float64
}

// Outcome reports the executed slot back to the controller so it can update
// its internal (virtual) queues.
type Outcome struct {
	Slot          int
	ServedDT      float64 // energy actually removed from the backlog
	BacklogBefore float64 // Q(τ) before serving/arrivals
	BacklogAfter  float64 // Q(τ+1)
	Waste         float64 // W(τ)
	Unserved      float64 // delay-sensitive energy shed (availability event)
	Battery       float64 // b(τ+1)
}

// Controller is a DPSS control policy.
type Controller interface {
	// Name identifies the policy in reports.
	Name() string
	// CoarseSlots returns T, the number of fine slots per coarse slot.
	CoarseSlots() int
	// PlanCoarse returns gbef(t), the total long-term-ahead purchase for
	// the upcoming interval (delivered evenly across its slots).
	PlanCoarse(obs CoarseObs) float64
	// PlanFine returns the fine-slot decision.
	PlanFine(obs FineObs) Decision
	// RecordOutcome delivers the executed slot for internal bookkeeping.
	RecordOutcome(out Outcome)
}

// Config parameterizes the engine.
type Config struct {
	// Battery is the UPS configuration (Sec. VI-A constants by default).
	Battery battery.Params
	// Generator is the optional dispatchable on-site generation unit
	// (zero value: no generator, reproducing generator-free results
	// exactly). It is the one-unit shorthand for Fleet; setting both is
	// a configuration error.
	Generator generator.Params
	// Fleet is the multi-unit on-site generation fleet in dispatch
	// order (nil/empty: no fleet). Each unit keeps its own physics and
	// accounting; Decision.GenerateUnits addresses them individually.
	Fleet []generator.Params
	// Market bounds the grid interface (Pgrid, Pmax).
	Market market.Params
	// WasteCostUSD prices wasted energy per MWh (the paper adds W(τ) to
	// Cost(τ) directly, i.e. an implicit unit price).
	WasteCostUSD float64
	// EmergencyCostUSD prices unserved delay-sensitive energy per MWh.
	// It is reported separately from the paper's Cost(τ).
	EmergencyCostUSD float64
	// SdtMaxMWh is Sdtmax, the per-slot cap on delay-tolerant service.
	SdtMaxMWh float64
	// SmaxMWh is Smax, the per-slot cap on total supply s(τ) (Eq. 1).
	SmaxMWh float64
	// PeakChargeUSDPerMW is an optional demand charge applied once per run
	// to the peak grid draw (in MW). Peak/demand-charge management is the
	// paper's declared future work (Sec. IV-C); the engine measures it and
	// reports the charge separately from the paper's Cost(τ).
	PeakChargeUSDPerMW float64
	// KeepSeries retains per-slot series (cost, backlog, battery) in the
	// report for plotting and robustness analysis.
	KeepSeries bool
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.Battery.Validate(); err != nil {
		return err
	}
	if err := c.Generator.Validate(); err != nil {
		return err
	}
	if len(c.Fleet) > 0 && c.Generator.Enabled() {
		return errors.New("sim: both Generator and Fleet configured (use Fleet alone)")
	}
	for i, u := range c.Fleet {
		if err := u.Validate(); err != nil {
			return fmt.Errorf("sim: fleet unit %d: %w", i, err)
		}
	}
	if err := c.Market.Validate(); err != nil {
		return err
	}
	switch {
	case c.WasteCostUSD < 0:
		return errors.New("sim: negative WasteCostUSD")
	case c.EmergencyCostUSD < 0:
		return errors.New("sim: negative EmergencyCostUSD")
	case c.SdtMaxMWh <= 0:
		return errors.New("sim: SdtMaxMWh must be positive")
	case c.SmaxMWh <= 0:
		return errors.New("sim: SmaxMWh must be positive")
	case c.PeakChargeUSDPerMW < 0:
		return errors.New("sim: negative PeakChargeUSDPerMW")
	}
	return nil
}

// decisionTol absorbs controller round-off before decisions are validated;
// anything beyond it is treated as a controller bug.
const decisionTol = 1e-6

// fleetSpecs resolves the configured fleet: the explicit Fleet slice, or
// the legacy single Generator wrapped as a one-unit fleet (the shim that
// keeps Generator-only configurations byte-identical).
func (c Config) fleetSpecs() []generator.Params {
	if len(c.Fleet) > 0 {
		return c.Fleet
	}
	if c.Generator.Enabled() {
		return []generator.Params{c.Generator}
	}
	return nil
}

// Run simulates the controller over the trace set and returns the report.
// It is a thin batch loop over a Session: every slot Steps with the
// trace row and Commits, so batch and streaming execution share one code
// path and produce byte-identical reports.
func Run(cfg Config, set *trace.Set, ctrl Controller) (*Report, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := set.Validate(); err != nil {
		return nil, err
	}
	s, err := NewSession(cfg, ctrl, set.Horizon(), set.DemandDS.SlotMinutes, nil)
	if err != nil {
		return nil, err
	}
	for slot := 0; slot < s.horizon; slot++ {
		if _, err := s.Step(InputAt(set, slot)); err != nil {
			return nil, err
		}
		if _, err := s.Commit(); err != nil {
			return nil, err
		}
	}
	return s.Finish()
}

// InputAt reads slot's row of the trace set as a session input (the
// bridge batch Run and replay sources share).
func InputAt(set *trace.Set, slot int) SlotInput {
	return SlotInput{
		DemandDS:  set.DemandDS.At(slot),
		DemandDT:  set.DemandDT.At(slot),
		Renewable: set.Renewable.At(slot),
		PriceRT:   set.PriceRT.At(slot),
		PriceLT:   set.PriceLT.At(slot),
		FuelScale: set.FuelScaleAt(slot),
	}
}

func clamp(x, lo, hi float64) float64 { return math.Min(hi, math.Max(lo, x)) }

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
