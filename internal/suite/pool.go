package suite

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// poolWidth resolves the configured worker-pool width.
func (c Config) poolWidth() int {
	w := c.Parallel
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		w = 1
	}
	return w
}

// newTokens builds the shared spawn budget: poolWidth−1 tokens, since
// the goroutine entering the pool always works itself.
func (c Config) newTokens() chan struct{} {
	budget := c.poolWidth() - 1
	tokens := make(chan struct{}, budget)
	for i := 0; i < budget; i++ {
		tokens <- struct{}{}
	}
	return tokens
}

// Map runs fn for every index in [0, n) on the worker pool and returns
// the results in index order. The calling goroutine is always one of
// the workers; extra workers spawn only while a token from the run's
// shared budget (Config.Parallel total, GOMAXPROCS when zero) is
// available. The budget spans nested fan-outs: when suite.Run fans
// scenarios out and each scenario's runner calls Map for its own sweep,
// total concurrency across both levels stays bounded by the configured
// width instead of multiplying. Acquisition is non-blocking, so nesting
// can never deadlock — with no token to spare, a Map simply runs its
// jobs sequentially in its caller.
//
// Every job runs even after another job has failed (jobs are
// independent and cheap relative to scheduling bookkeeping); the error
// returned is the failed job with the lowest index, so error reporting
// is deterministic regardless of completion order.
func Map[T any](cfg Config, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if n == 0 {
		return out, nil
	}
	tokens := cfg.tokens
	if tokens == nil {
		// Direct call outside a suite run: this Map is the pool.
		tokens = cfg.newTokens()
	}
	errs := make([]error, n)
	var next atomic.Int64
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			out[i], errs[i] = fn(i)
		}
	}
	var wg sync.WaitGroup
spawn:
	for spawned := 0; spawned < n-1; spawned++ {
		select {
		case <-tokens:
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { tokens <- struct{}{} }()
				work()
			}()
		default:
			break spawn
		}
	}
	work()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("job %d: %w", i, err)
		}
	}
	return out, nil
}

// Result pairs a scenario with its outcome.
type Result struct {
	Scenario Scenario
	Table    *Table
	Err      error
}

// Run executes the scenarios as pool jobs — sharing one worker budget
// with every nested Map the scenario runners issue — and returns one
// Result per scenario, in input order. Unlike Map it does not stop at
// the first failure: drivers like cmd/experiments want every table that
// did succeed plus the per-scenario errors.
func Run(cfg Config, scns []Scenario) []Result {
	if cfg.tokens == nil {
		cfg.tokens = cfg.newTokens()
	}
	results, _ := Map(cfg, len(scns), func(i int) (Result, error) {
		tbl, err := scns[i].Run(cfg)
		if err != nil {
			err = fmt.Errorf("suite: scenario %s: %w", scns[i].Name, err)
		}
		return Result{Scenario: scns[i], Table: tbl, Err: err}, nil
	})
	return results
}

// RunSuite resolves the selectors (names or tags; none selects every
// registered scenario) and runs the matching scenarios on the pool. On
// failure it returns the error of the first failing scenario in
// registration order.
func RunSuite(cfg Config, selectors ...string) ([]*Table, error) {
	scns, err := Select(selectors...)
	if err != nil {
		return nil, err
	}
	results := Run(cfg, scns)
	tables := make([]*Table, len(results))
	for i, r := range results {
		if r.Err != nil {
			return nil, r.Err
		}
		tables[i] = r.Table
	}
	return tables, nil
}
