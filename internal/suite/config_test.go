package suite

import "testing"

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Days != 31 || cfg.Seed != 1 {
		t.Fatalf("DefaultConfig = %+v, want the paper's one-month setup", cfg)
	}
}

func TestConfigTraceConfig(t *testing.T) {
	cfg := Config{Days: 7, Seed: 42}
	tc := cfg.TraceConfig()
	if tc.Days != 7 || tc.Seed != 42 {
		t.Fatalf("TraceConfig = %+v", tc)
	}
	// Everything else keeps the engine defaults.
	def := Config{Days: 31, Seed: 1}.TraceConfig()
	tc.Days, tc.Seed = def.Days, def.Seed
	if tc != def {
		t.Fatalf("TraceConfig diverges from defaults: %+v vs %+v", tc, def)
	}
}

func TestConfigPointSeed(t *testing.T) {
	cfg := Config{Seed: 5}
	if cfg.PointSeed(0) != 5 {
		t.Errorf("PointSeed(0) = %d", cfg.PointSeed(0))
	}
	seen := map[int64]bool{}
	for i := 0; i < 10; i++ {
		s := cfg.PointSeed(i)
		if seen[s] {
			t.Fatalf("PointSeed collision at %d", i)
		}
		seen[s] = true
	}
}

func TestConfigSeedCount(t *testing.T) {
	if got := (Config{}).SeedCount(); got != 5 {
		t.Errorf("default SeedCount = %d, want 5", got)
	}
	if got := (Config{Seeds: 3}).SeedCount(); got != 3 {
		t.Errorf("SeedCount = %d, want 3", got)
	}
}
