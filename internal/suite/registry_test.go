package suite

import (
	"strings"
	"testing"
)

// testScenario registers a no-op scenario under the given name/tags.
func testScenario(t *testing.T, name string, tags ...string) Scenario {
	t.Helper()
	s := Scenario{
		Name:        name,
		Description: "test scenario " + name,
		Tags:        tags,
		Run: func(Config) (*Table, error) {
			return &Table{Title: name, Columns: []string{"x"}, Rows: [][]string{{name}}}, nil
		},
	}
	Register(s)
	return s
}

func TestRegisterLookup(t *testing.T) {
	testScenario(t, "reg-a", "reg-test")
	testScenario(t, "reg-b", "reg-test", "reg-extra")

	s, ok := Lookup("reg-a")
	if !ok || s.Name != "reg-a" {
		t.Fatalf("Lookup(reg-a) = %+v, %v", s, ok)
	}
	if _, ok := Lookup("reg-missing"); ok {
		t.Error("Lookup(reg-missing) found a scenario")
	}
	if !s.HasTag("reg-test") || s.HasTag("reg-extra") {
		t.Errorf("HasTag wrong for %+v", s)
	}
}

func TestRegisterPanics(t *testing.T) {
	mustPanic := func(name string, s Scenario) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: Register did not panic", name)
			}
		}()
		Register(s)
	}
	mustPanic("empty name", Scenario{Run: func(Config) (*Table, error) { return nil, nil }})
	mustPanic("nil run", Scenario{Name: "reg-nil-run"})
	testScenario(t, "reg-dup")
	mustPanic("duplicate", Scenario{Name: "reg-dup", Run: func(Config) (*Table, error) { return nil, nil }})
}

func TestScenariosOrder(t *testing.T) {
	testScenario(t, "reg-order-1", "reg-order")
	testScenario(t, "reg-order-2", "reg-order")
	var got []string
	for _, s := range Scenarios() {
		if s.HasTag("reg-order") {
			got = append(got, s.Name)
		}
	}
	if len(got) != 2 || got[0] != "reg-order-1" || got[1] != "reg-order-2" {
		t.Fatalf("registration order = %v", got)
	}
}

func TestSelect(t *testing.T) {
	testScenario(t, "sel-a", "sel-tag")
	testScenario(t, "sel-b", "sel-tag")
	testScenario(t, "sel-c", "sel-other")

	byTag, err := Select("sel-tag")
	if err != nil {
		t.Fatal(err)
	}
	if len(byTag) != 2 || byTag[0].Name != "sel-a" || byTag[1].Name != "sel-b" {
		t.Fatalf("Select(sel-tag) = %v", names(byTag))
	}

	// Name + overlapping tag dedupes and keeps registration order.
	mixed, err := Select("sel-b", "sel-tag", "sel-c")
	if err != nil {
		t.Fatal(err)
	}
	if len(mixed) != 3 || mixed[0].Name != "sel-a" || mixed[2].Name != "sel-c" {
		t.Fatalf("Select(mixed) = %v", names(mixed))
	}

	if _, err := Select("sel-unknown"); err == nil {
		t.Fatal("unknown selector accepted")
	} else if !strings.Contains(err.Error(), "sel-unknown") {
		t.Errorf("error %q does not name the selector", err)
	}

	// No selectors selects everything registered so far.
	all, err := Select()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(Scenarios()) {
		t.Errorf("Select() = %d scenarios, want %d", len(all), len(Scenarios()))
	}
}

func TestTags(t *testing.T) {
	testScenario(t, "tag-a", "tag-z", "tag-y")
	tags := Tags()
	for i := 1; i < len(tags); i++ {
		if tags[i-1] >= tags[i] {
			t.Fatalf("Tags() not sorted: %v", tags)
		}
	}
	found := 0
	for _, tag := range tags {
		if tag == "tag-z" || tag == "tag-y" {
			found++
		}
	}
	if found != 2 {
		t.Errorf("Tags() = %v missing tag-y/tag-z", tags)
	}
}

func names(scns []Scenario) []string {
	out := make([]string, len(scns))
	for i, s := range scns {
		out[i] = s.Name
	}
	return out
}
