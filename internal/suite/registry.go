package suite

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Scenario is a registered experiment: a named runner that reproduces
// one figure or extension table.
type Scenario struct {
	// Name is the stable lookup key (e.g. "fig6v", "ext-cycle").
	Name string
	// Description is a one-line summary for listings.
	Description string
	// Tags group scenarios for selection (e.g. "paper", "ext").
	Tags []string
	// Run produces the scenario's table.
	Run func(Config) (*Table, error)
}

// HasTag reports whether the scenario carries the tag.
func (s Scenario) HasTag(tag string) bool {
	for _, t := range s.Tags {
		if t == tag {
			return true
		}
	}
	return false
}

var registry = struct {
	mu     sync.RWMutex
	order  []string
	byName map[string]Scenario
}{byName: make(map[string]Scenario)}

// Register adds a scenario to the registry. It panics on a nil runner,
// an empty name, or a duplicate name: registration happens in init
// functions, where a bad scenario is a programming error.
func Register(s Scenario) {
	if s.Name == "" {
		panic("suite: Register with empty scenario name")
	}
	if s.Run == nil {
		panic(fmt.Sprintf("suite: scenario %q has no Run", s.Name))
	}
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if _, dup := registry.byName[s.Name]; dup {
		panic(fmt.Sprintf("suite: duplicate scenario %q", s.Name))
	}
	registry.byName[s.Name] = s
	registry.order = append(registry.order, s.Name)
}

// Scenarios returns every registered scenario in registration order
// (the paper's figure order, then extensions).
func Scenarios() []Scenario {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	out := make([]Scenario, 0, len(registry.order))
	for _, name := range registry.order {
		out = append(out, registry.byName[name])
	}
	return out
}

// Lookup returns the scenario registered under name.
func Lookup(name string) (Scenario, bool) {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	s, ok := registry.byName[name]
	return s, ok
}

// Tags returns every distinct tag in use, sorted.
func Tags() []string {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	seen := make(map[string]bool)
	for _, s := range registry.byName {
		for _, t := range s.Tags {
			seen[t] = true
		}
	}
	out := make([]string, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Select resolves selectors — scenario names or tags — into scenarios in
// registration order, deduplicated. No selectors selects everything. An
// unknown selector is an error listing what is available.
func Select(selectors ...string) ([]Scenario, error) {
	all := Scenarios()
	if len(selectors) == 0 {
		return all, nil
	}
	picked := make(map[string]bool)
	for _, sel := range selectors {
		matched := false
		for _, s := range all {
			if s.Name == sel || s.HasTag(sel) {
				picked[s.Name] = true
				matched = true
			}
		}
		if !matched {
			names := make([]string, len(all))
			for i, s := range all {
				names[i] = s.Name
			}
			return nil, fmt.Errorf("suite: unknown scenario or tag %q (scenarios: %s; tags: %s)",
				sel, strings.Join(names, ", "), strings.Join(Tags(), ", "))
		}
	}
	out := make([]Scenario, 0, len(picked))
	for _, s := range all {
		if picked[s.Name] {
			out = append(out, s)
		}
	}
	return out, nil
}
