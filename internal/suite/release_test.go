package suite

import (
	"reflect"
	"testing"

	"github.com/smartdpss/smartdpss/internal/engine"
)

// TestTracesReleaseHandsOutPristineCopies mutates a clone, releases it
// to the pool, and re-requests the same configuration: the next handout
// must carry the memoized master's pristine values even when it reuses
// the released buffers — CloneInto overwrites everything.
func TestTracesReleaseHandsOutPristineCopies(t *testing.T) {
	ResetTraceCache()
	tc := engine.TraceConfig{Days: 1, Seed: 97, SolarCapacityMW: 2, PeakMW: 2}

	first, err := Traces(tc)
	if err != nil {
		t.Fatal(err)
	}
	want, err := engine.TraceStatistics(first)
	if err != nil {
		t.Fatal(err)
	}

	// Corrupt the clone thoroughly, then hand its buffers back.
	first.ScaleSystem(7.5)
	Release(first)

	second, err := Traces(tc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := engine.TraceStatistics(second)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("recycled handout is not pristine:\nwant %+v\ngot  %+v", want, got)
	}

	// And handouts stay isolated from each other.
	third, err := Traces(tc)
	if err != nil {
		t.Fatal(err)
	}
	second.ScaleSystem(3)
	stats3, err := engine.TraceStatistics(third)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, stats3) {
		t.Fatal("mutating one handout leaked into another")
	}
}

// TestReleaseNilIsNoop pins the nil contract.
func TestReleaseNilIsNoop(t *testing.T) {
	Release(nil) // must not panic
}
