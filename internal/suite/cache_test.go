package suite

import (
	"strings"
	"testing"

	"github.com/smartdpss/smartdpss/internal/engine"
)

func testTraceConfig(days int) engine.TraceConfig {
	tc := engine.DefaultTraceConfig()
	tc.Days = days
	return tc
}

func TestTraceCacheHits(t *testing.T) {
	ResetTraceCache()
	tc := testTraceConfig(2)

	if _, err := Traces(tc); err != nil {
		t.Fatal(err)
	}
	hits, misses := TraceCacheStats()
	if hits != 0 || misses != 1 {
		t.Fatalf("after first fetch: hits=%d misses=%d, want 0/1", hits, misses)
	}

	if _, err := Traces(tc); err != nil {
		t.Fatal(err)
	}
	hits, misses = TraceCacheStats()
	if hits != 1 || misses != 1 {
		t.Fatalf("after second fetch: hits=%d misses=%d, want 1/1", hits, misses)
	}

	// A different configuration generates again.
	other := tc
	other.Seed = 99
	if _, err := Traces(other); err != nil {
		t.Fatal(err)
	}
	if _, misses = TraceCacheStats(); misses != 2 {
		t.Fatalf("distinct config did not miss: misses=%d", misses)
	}
}

func TestTraceCacheHandsOutClones(t *testing.T) {
	ResetTraceCache()
	tc := testTraceConfig(2)

	a, err := Traces(tc)
	if err != nil {
		t.Fatal(err)
	}
	before := a.DemandStdDev()
	if err := a.ScaleDemandVariation(3); err != nil {
		t.Fatal(err)
	}
	if a.DemandStdDev() == before {
		t.Fatal("mutation had no effect; test is vacuous")
	}

	// The cached copy must be unaffected by the caller's mutation.
	b, err := Traces(tc)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.DemandStdDev(); got != before {
		t.Fatalf("cache corrupted: std dev %g, want %g", got, before)
	}
}

func TestTraceCacheConcurrentSingleGeneration(t *testing.T) {
	ResetTraceCache()
	tc := testTraceConfig(2)

	_, err := Map(Config{Parallel: 8}, 16, func(i int) (*engine.Traces, error) {
		return Traces(tc)
	})
	if err != nil {
		t.Fatal(err)
	}
	hits, misses := TraceCacheStats()
	if misses != 1 || hits != 15 {
		t.Fatalf("hits=%d misses=%d, want 15/1", hits, misses)
	}
}

func TestTraceCacheErrorPropagation(t *testing.T) {
	ResetTraceCache()
	bad := engine.TraceConfig{} // Days == 0 is rejected by the generator
	if _, err := Traces(bad); err == nil {
		t.Fatal("invalid TraceConfig accepted")
	} else if !strings.Contains(err.Error(), "Days") {
		t.Errorf("error %q does not explain the rejection", err)
	}
	// The error repeats on a second fetch instead of caching a nil set.
	if _, err := Traces(bad); err == nil {
		t.Fatal("second fetch of invalid TraceConfig accepted")
	}
}

func TestTraceCacheReset(t *testing.T) {
	ResetTraceCache()
	tc := testTraceConfig(2)
	if _, err := Traces(tc); err != nil {
		t.Fatal(err)
	}
	ResetTraceCache()
	if hits, misses := TraceCacheStats(); hits != 0 || misses != 0 {
		t.Fatalf("stats after reset: %d/%d", hits, misses)
	}
	if _, err := Traces(tc); err != nil {
		t.Fatal(err)
	}
	if _, misses := TraceCacheStats(); misses != 1 {
		t.Fatal("reset did not drop the cached set")
	}
}
