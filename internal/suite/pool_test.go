package suite

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrderAcrossParallelLevels(t *testing.T) {
	const n = 100
	var want []int
	for i := 0; i < n; i++ {
		want = append(want, i*i)
	}
	for _, parallel := range []int{1, 2, 8, n + 5} {
		got, err := Map(Config{Parallel: parallel}, n, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("parallel=%d: out[%d] = %d, want %d", parallel, i, got[i], want[i])
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(Config{}, 0, func(i int) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("Map(0 jobs) = %v, %v", out, err)
	}
}

func TestMapFirstErrorByIndex(t *testing.T) {
	// Two failing jobs; the reported error must be the lowest index no
	// matter which goroutine finishes first.
	for _, parallel := range []int{1, 8} {
		_, err := Map(Config{Parallel: parallel}, 10, func(i int) (int, error) {
			if i == 3 || i == 7 {
				return 0, fmt.Errorf("boom %d", i)
			}
			return i, nil
		})
		if err == nil {
			t.Fatalf("parallel=%d: no error", parallel)
		}
		if !strings.Contains(err.Error(), "job 3") || !strings.Contains(err.Error(), "boom 3") {
			t.Errorf("parallel=%d: error %q, want job 3's", parallel, err)
		}
	}
}

func TestConfigPoolWidth(t *testing.T) {
	if got := (Config{Parallel: 4}).poolWidth(); got != 4 {
		t.Errorf("poolWidth(4) = %d", got)
	}
	if got := (Config{Parallel: -3}).poolWidth(); got != 1 {
		t.Errorf("poolWidth(-3) = %d, want 1", got)
	}
	if got := (Config{}).poolWidth(); got < 1 {
		t.Errorf("poolWidth(0) = %d < 1", got)
	}
}

func TestNestedFanOutSharesBudget(t *testing.T) {
	// A suite of scenarios that each fan out their own sweep must stay
	// within one shared Parallel budget, not Parallel per level.
	const width = 2
	var cur, peak atomic.Int64
	job := func(i int) (int, error) {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return i, nil
	}
	scn := Scenario{Name: "nested-budget", Run: func(cfg Config) (*Table, error) {
		if _, err := Map(cfg, 6, job); err != nil {
			return nil, err
		}
		return &Table{}, nil
	}}
	results := Run(Config{Parallel: width}, []Scenario{scn, scn, scn, scn})
	for _, r := range results {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	if p := peak.Load(); p > width {
		t.Fatalf("peak concurrency %d exceeds the Parallel=%d budget", p, width)
	}
}

func TestRunCollectsPerScenarioErrors(t *testing.T) {
	ok := Scenario{Name: "run-ok", Run: func(Config) (*Table, error) {
		return &Table{Title: "ok"}, nil
	}}
	bad := Scenario{Name: "run-bad", Run: func(Config) (*Table, error) {
		return nil, errors.New("scenario exploded")
	}}
	results := Run(Config{Parallel: 2}, []Scenario{ok, bad, ok})
	if len(results) != 3 {
		t.Fatalf("results = %d, want 3", len(results))
	}
	if results[0].Err != nil || results[2].Err != nil {
		t.Errorf("healthy scenarios errored: %v, %v", results[0].Err, results[2].Err)
	}
	if results[0].Table == nil || results[0].Table.Title != "ok" {
		t.Errorf("result 0 table = %+v", results[0].Table)
	}
	err := results[1].Err
	if err == nil {
		t.Fatal("failing scenario reported no error")
	}
	if !strings.Contains(err.Error(), "run-bad") || !strings.Contains(err.Error(), "scenario exploded") {
		t.Errorf("error %q does not name the scenario and cause", err)
	}
}

func TestRunSuiteErrorPropagation(t *testing.T) {
	testScenario(t, "rs-ok-1", "rs-fail-suite")
	Register(Scenario{
		Name: "rs-fail",
		Tags: []string{"rs-fail-suite"},
		Run: func(Config) (*Table, error) {
			return nil, errors.New("mid-suite failure")
		},
	})
	testScenario(t, "rs-ok-2", "rs-fail-suite")

	if _, err := RunSuite(Config{Parallel: 4}, "rs-fail-suite"); err == nil {
		t.Fatal("RunSuite swallowed the failure")
	} else if !strings.Contains(err.Error(), "rs-fail") {
		t.Errorf("error %q does not name the failing scenario", err)
	}

	// A healthy selection still returns its tables in order.
	tables, err := RunSuite(Config{Parallel: 4}, "rs-ok-2", "rs-ok-1")
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 || tables[0].Title != "rs-ok-1" || tables[1].Title != "rs-ok-2" {
		t.Fatalf("tables = %+v", tables)
	}

	if _, err := RunSuite(Config{}, "rs-no-such"); err == nil {
		t.Fatal("unknown selector accepted")
	}
}
