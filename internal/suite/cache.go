package suite

import (
	"sync"

	"github.com/smartdpss/smartdpss/internal/engine"
)

// maxCachedTraces bounds the memoized trace sets. Sweeps reuse a
// handful of configurations (most scenarios share the suite's base
// TraceConfig); multi-seed runs add one entry per seed. Past the bound
// the cache resets rather than evicting — simpler, and a full suite
// never gets close.
const maxCachedTraces = 128

// traceEntry memoizes one generation. The sync.Once lets concurrent
// scenarios request the same configuration while it is still being
// generated: exactly one goroutine generates, the rest wait.
type traceEntry struct {
	once sync.Once
	tr   *engine.Traces
	err  error
}

var traceCache = struct {
	mu     sync.Mutex
	m      map[engine.TraceConfig]*traceEntry
	hits   int64
	misses int64
}{m: make(map[engine.TraceConfig]*traceEntry)}

// tracePool recycles released trace clones: a sweep point that calls
// Release hands its buffers to the next Traces call, which copies the
// memoized master over them instead of allocating a fresh deep copy.
// Entries of a different shape are handled transparently — CloneInto
// reallocates any series that does not fit.
var tracePool sync.Pool

// Traces returns the synthetic trace set for tc, generating it at most
// once per distinct configuration and handing out a private deep copy.
// The copy is essential: scenarios mutate their traces (SetPenetration,
// ScaleSystem, ApplyCooling), and a shared set would race and corrupt
// other scenarios' inputs. Call Release when a sweep point is done with
// its copy to let the next point reuse the buffers.
func Traces(tc engine.TraceConfig) (*engine.Traces, error) {
	traceCache.mu.Lock()
	e, ok := traceCache.m[tc]
	if ok {
		traceCache.hits++
	} else {
		if len(traceCache.m) >= maxCachedTraces {
			traceCache.m = make(map[engine.TraceConfig]*traceEntry)
		}
		e = &traceEntry{}
		traceCache.m[tc] = e
		traceCache.misses++
	}
	traceCache.mu.Unlock()
	e.once.Do(func() {
		e.tr, e.err = engine.GenerateTraces(tc)
	})
	if e.err != nil {
		return nil, e.err
	}
	if buf, ok := tracePool.Get().(*engine.Traces); ok {
		return e.tr.CloneInto(buf), nil
	}
	return e.tr.Clone(), nil
}

// Release returns a trace set obtained from Traces to the clone pool so
// a later sweep point can reuse its buffers. Callers must not touch the
// set afterwards; releasing is optional (an unreleased set is simply
// garbage-collected) and nil is a no-op.
func Release(tr *engine.Traces) {
	if tr != nil {
		tracePool.Put(tr)
	}
}

// TraceCacheStats reports cumulative cache hits and misses (a miss is a
// generation).
func TraceCacheStats() (hits, misses int64) {
	traceCache.mu.Lock()
	defer traceCache.mu.Unlock()
	return traceCache.hits, traceCache.misses
}

// ResetTraceCache drops every memoized trace set and zeroes the stats.
func ResetTraceCache() {
	traceCache.mu.Lock()
	defer traceCache.mu.Unlock()
	traceCache.m = make(map[engine.TraceConfig]*traceEntry)
	traceCache.hits, traceCache.misses = 0, 0
}
