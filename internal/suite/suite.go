// Package suite is the parallel scenario-suite engine behind
// cmd/experiments and the public smartdpss.RunSuite API.
//
// It provides four pieces:
//
//   - a Scenario registry (registry.go): every experiment runner in
//     internal/experiments registers itself under a stable name with
//     tags ("paper", "ext", ...), so callers can enumerate, look up and
//     select scenarios without hard-coding the list in every driver;
//
//   - a worker-pool executor (pool.go): Map fans N independent jobs out
//     across a bounded number of goroutines and returns their results in
//     index order, so a sweep parallelized with Map is byte-identical to
//     the sequential loop it replaced;
//
//   - a memoized trace cache (cache.go): Traces returns a private clone
//     of the synthetic trace set for a TraceConfig, generating each
//     distinct configuration exactly once even when many scenarios
//     request it concurrently;
//
//   - the suite driver (RunSuite): resolves name/tag selectors and runs
//     whole scenarios as pool jobs, propagating the first failure by
//     registration order.
//
// Determinism is the design invariant: results depend only on Config,
// never on Parallel. Jobs derive any randomness from Config.Seed plus
// their point index (see Config.PointSeed) and never share a rand.Rand;
// the executor assigns results by index, not completion order.
package suite

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"

	"github.com/smartdpss/smartdpss/internal/engine"
)

// Config scopes a suite run.
type Config struct {
	// Days is the trace horizon (paper: 31).
	Days int
	// Seed drives the synthetic generators.
	Seed int64
	// SkipOffline drops the clairvoyant offline-LP benchmark columns
	// (useful for quick runs; the offline LPs dominate the runtime).
	SkipOffline bool
	// Seeds is the seed count for multi-seed scenarios (0 means 5).
	Seeds int
	// Parallel bounds the worker pool (0 means GOMAXPROCS). The bound
	// is global per run: scenario-level fan-out and the scenarios'
	// inner sweeps draw from one shared budget. Results are identical
	// at every level; only wall-clock changes.
	Parallel int

	// tokens is the run's shared worker budget, installed by Run (nil
	// for direct Map calls, which then budget themselves). Carrying it
	// in the Config keeps nested fan-outs bounded by Parallel without
	// any global state.
	tokens chan struct{}
}

// SpawnBudget returns the run's shared worker-token channel (nil outside
// Run). Scenario code that fans out below Map — the geo multi-site
// stepper runs one goroutine per site — passes it along so nested
// parallelism stays bounded by the same global Parallel budget instead
// of multiplying it.
func (c Config) SpawnBudget() chan struct{} { return c.tokens }

// DefaultConfig matches the paper's one-month setup.
func DefaultConfig() Config {
	return Config{Days: 31, Seed: 1}
}

// TraceConfig translates the suite scope into a trace request.
func (c Config) TraceConfig() engine.TraceConfig {
	tc := engine.DefaultTraceConfig()
	tc.Days = c.Days
	tc.Seed = c.Seed
	return tc
}

// PointSeed derives an independent child seed for sweep point i. Jobs
// that need their own randomness must use a derived seed instead of
// sharing a rand.Rand, or results would depend on execution order.
func (c Config) PointSeed(i int) int64 {
	return c.Seed + int64(i)*1000
}

// SeedCount returns the effective multi-seed scenario width.
func (c Config) SeedCount() int {
	if c.Seeds <= 0 {
		return 5
	}
	return c.Seeds
}

// Table is a printable scenario result.
type Table struct {
	// Title names the reproduced figure.
	Title string
	// Note captures the fixed parameters and reading guidance.
	Note string
	// Columns are the header cells.
	Columns []string
	// Rows are the data cells, already formatted.
	Rows [][]string
}

// AddRow appends one formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if _, err := fmt.Fprintf(w, "## %s\n", t.Title); err != nil {
		return err
	}
	if t.Note != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Note); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = pad(cell, widths[i])
		}
		_, err := fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
		return err
	}
	if err := line(t.Columns); err != nil {
		return err
	}
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	if err := line(seps); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// WriteCSV renders the table as CSV (one header row plus data rows), for
// piping experiment results into plotting tools.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return fmt.Errorf("suite: write header: %w", err)
	}
	for i, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("suite: write row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}
