// Package queue implements the queueing substrate of SmartDPSS: the
// delay-tolerant demand backlog Q(τ) (Eq. 2) with FIFO cohort tracking for
// exact delay measurement, the ε-persistent delay-aware virtual queue Y(τ)
// (Eq. 12), and the shifted battery tracker X(t) (Eq. 14).
//
// The package owns all queue state and its update rules; the backlog's
// cohort ring is the allocation-free compacting buffer the PR-4 hot path
// introduced. internal/sim owns a Backlog per run for arrivals, service
// and delay accounting; internal/core additionally drives the virtual
// queues Y and X that steer the Lyapunov drift-plus-penalty weights.
package queue

import (
	"errors"
	"math"
)

// cohort is demand energy that arrived together in one slot.
type cohort struct {
	arrivalSlot int
	remaining   float64
}

// Backlog is the delay-tolerant demand queue Q(τ). Energy is served FIFO
// so that per-unit queueing delay can be measured exactly; the aggregate
// dynamics follow Eq. (2): Q(τ+1) = max(Q(τ) − sdt(τ), 0) + ddt(τ).
//
// Cohorts live in a compacting ring: Serve advances a head index instead
// of re-slicing, and Arrive reuses the drained prefix once the live
// window would otherwise force the backing array to grow. Steady-state
// simulation therefore enqueues without allocating, where the historical
// slice-shift version leaked capacity at the front and reallocated
// forever.
type Backlog struct {
	cohorts []cohort
	head    int // cohorts[:head] are fully served and reusable
	total   float64

	// lifetime delay statistics over served energy
	servedMWh     float64
	delayWeighted float64 // Σ served·delay (slot units)
	maxDelay      int
}

// NewBacklog returns an empty backlog queue.
func NewBacklog() *Backlog {
	return &Backlog{}
}

// Len returns the current backlog Q(τ) in MWh.
func (q *Backlog) Len() float64 { return q.total }

// Arrive enqueues amount MWh of delay-tolerant demand arriving at slot.
func (q *Backlog) Arrive(slot int, amount float64) {
	if amount <= 0 {
		return
	}
	if len(q.cohorts) == q.head {
		// Empty: rewind to the start of the backing array.
		q.cohorts = q.cohorts[:0]
		q.head = 0
	} else if q.head > 0 && len(q.cohorts) == cap(q.cohorts) {
		// Compact the live window over the drained prefix instead of
		// growing the backing array.
		n := copy(q.cohorts, q.cohorts[q.head:])
		q.cohorts = q.cohorts[:n]
		q.head = 0
	}
	q.cohorts = append(q.cohorts, cohort{arrivalSlot: slot, remaining: amount})
	q.total += amount
}

// Serve removes up to amount MWh from the queue FIFO at the given slot and
// returns the energy actually served. Delay statistics are updated per
// served cohort.
func (q *Backlog) Serve(slot int, amount float64) float64 {
	if amount <= 0 || q.total <= 0 {
		return 0
	}
	served := 0.0
	for q.head < len(q.cohorts) && amount > 1e-12 {
		c := &q.cohorts[q.head]
		take := math.Min(c.remaining, amount)
		c.remaining -= take
		amount -= take
		served += take
		delay := slot - c.arrivalSlot
		if delay < 0 {
			delay = 0
		}
		q.servedMWh += take
		q.delayWeighted += take * float64(delay)
		if delay > q.maxDelay {
			q.maxDelay = delay
		}
		if c.remaining <= 1e-12 {
			q.head++
		}
	}
	q.total = math.Max(0, q.total-served)
	return served
}

// CohortState is one live cohort in a backlog checkpoint.
type CohortState struct {
	ArrivalSlot  int     `json:"arrivalSlot"`
	RemainingMWh float64 `json:"remainingMWh"`
}

// BacklogState is the backlog's mutable state, exported for session
// checkpoints: the live FIFO window (drained cohorts are dropped — only
// the compaction position changes, never the served arithmetic) plus the
// running total and the lifetime delay statistics.
type BacklogState struct {
	Cohorts       []CohortState `json:"cohorts,omitempty"`
	TotalMWh      float64       `json:"totalMWh"`
	ServedMWh     float64       `json:"servedMWh"`
	DelayWeighted float64       `json:"delayWeighted"`
	MaxDelay      int           `json:"maxDelay"`
}

// State captures the backlog for a checkpoint.
func (q *Backlog) State() BacklogState {
	s := BacklogState{
		TotalMWh:      q.total,
		ServedMWh:     q.servedMWh,
		DelayWeighted: q.delayWeighted,
		MaxDelay:      q.maxDelay,
	}
	if live := q.cohorts[q.head:]; len(live) > 0 {
		s.Cohorts = make([]CohortState, len(live))
		for i, c := range live {
			s.Cohorts[i] = CohortState{ArrivalSlot: c.arrivalSlot, RemainingMWh: c.remaining}
		}
	}
	return s
}

// Restore overwrites the backlog from a checkpoint. The total is restored
// verbatim (it is maintained incrementally during a run, so recomputing
// it from the cohorts could differ by round-off and break bit-exact
// resumption).
func (q *Backlog) Restore(s BacklogState) {
	q.cohorts = q.cohorts[:0]
	q.head = 0
	for _, c := range s.Cohorts {
		q.cohorts = append(q.cohorts, cohort{arrivalSlot: c.ArrivalSlot, remaining: c.RemainingMWh})
	}
	q.total = s.TotalMWh
	q.servedMWh = s.ServedMWh
	q.delayWeighted = s.DelayWeighted
	q.maxDelay = s.MaxDelay
}

// OldestArrival returns the arrival slot of the oldest queued energy and
// true, or 0 and false when the queue is empty.
func (q *Backlog) OldestArrival() (int, bool) {
	if q.head == len(q.cohorts) {
		return 0, false
	}
	return q.cohorts[q.head].arrivalSlot, true
}

// ServedTotal returns the lifetime energy served from the queue in MWh.
func (q *Backlog) ServedTotal() float64 { return q.servedMWh }

// MeanDelay returns the served-energy-weighted mean queueing delay in
// slots, or 0 when nothing has been served.
func (q *Backlog) MeanDelay() float64 {
	if q.servedMWh == 0 {
		return 0
	}
	return q.delayWeighted / q.servedMWh
}

// MaxDelay returns the largest observed per-unit delay in slots.
func (q *Backlog) MaxDelay() int { return q.maxDelay }

// Delay is the ε-persistent delay-aware virtual queue Y(τ) of Eq. (12):
//
//	Y(τ+1) = max(Y(τ) − sdt(τ) + ε·1[Q(τ)>0], 0)
//
// Y grows whenever backlogged demand is left unserved, which (with Lemma 2)
// upper-bounds the worst-case delay by (Qmax + Ymax)/ε.
type Delay struct {
	epsilon float64
	value   float64
}

// NewDelay returns a delay queue with the given ε > 0.
func NewDelay(epsilon float64) (*Delay, error) {
	if epsilon <= 0 {
		return nil, errors.New("queue: epsilon must be positive")
	}
	return &Delay{epsilon: epsilon}, nil
}

// Epsilon returns ε.
func (d *Delay) Epsilon() float64 { return d.epsilon }

// Value returns Y(τ).
func (d *Delay) Value() float64 { return d.value }

// Restore overwrites Y(τ) from a checkpoint (negative values clamp to 0,
// the queue's own floor).
func (d *Delay) Restore(value float64) {
	d.value = math.Max(0, value)
}

// Update advances Y given the energy served this slot and whether the
// backlog was non-empty at the start of the slot.
func (d *Delay) Update(served float64, backlogPositive bool) {
	inc := 0.0
	if backlogPositive {
		inc = d.epsilon
	}
	d.value = math.Max(0, d.value-served+inc)
}

// BatteryTracker computes the shifted battery queue X(t) of Eq. (14):
//
//	X(t) = b(t) − Umax − Bmin − Bdmax·ηd
//
// Because b(t) evolves by Eq. (3) and X is an affine shift, tracking X
// separately (Eq. 15) is equivalent to deriving it from the actual level;
// we derive it to keep a single source of truth.
type BatteryTracker struct {
	shift float64
}

// NewBatteryTracker builds a tracker for the given bound parameters.
func NewBatteryTracker(umax, bmin, bdmax, etaD float64) *BatteryTracker {
	return &BatteryTracker{shift: umax + bmin + bdmax*etaD}
}

// Shift returns the constant Umax + Bmin + Bdmax·ηd.
func (x *BatteryTracker) Shift() float64 { return x.shift }

// Value maps a battery level b(t) to X(t).
func (x *BatteryTracker) Value(level float64) float64 { return level - x.shift }
