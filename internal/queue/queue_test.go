package queue

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBacklogFIFOAndDelay(t *testing.T) {
	q := NewBacklog()
	q.Arrive(0, 2)
	q.Arrive(1, 3)
	if q.Len() != 5 {
		t.Fatalf("Len = %g, want 5", q.Len())
	}

	served := q.Serve(4, 2.5) // serves all of cohort 0 (delay 4) and 0.5 of cohort 1 (delay 3)
	if served != 2.5 {
		t.Fatalf("served = %g, want 2.5", served)
	}
	if math.Abs(q.Len()-2.5) > 1e-12 {
		t.Fatalf("Len = %g, want 2.5", q.Len())
	}
	wantMean := (2*4.0 + 0.5*3.0) / 2.5
	if math.Abs(q.MeanDelay()-wantMean) > 1e-12 {
		t.Errorf("MeanDelay = %g, want %g", q.MeanDelay(), wantMean)
	}
	if q.MaxDelay() != 4 {
		t.Errorf("MaxDelay = %d, want 4", q.MaxDelay())
	}

	// Drain the rest at slot 10: cohort 1 delay 9.
	q.Serve(10, 100)
	if q.Len() != 0 {
		t.Fatalf("Len = %g after drain, want 0", q.Len())
	}
	if q.MaxDelay() != 9 {
		t.Errorf("MaxDelay = %d, want 9", q.MaxDelay())
	}
	if q.ServedTotal() != 5 {
		t.Errorf("ServedTotal = %g, want 5", q.ServedTotal())
	}
}

func TestBacklogIgnoresNonPositive(t *testing.T) {
	q := NewBacklog()
	q.Arrive(0, 0)
	q.Arrive(0, -1)
	if q.Len() != 0 {
		t.Fatalf("Len = %g, want 0", q.Len())
	}
	if got := q.Serve(1, -2); got != 0 {
		t.Fatalf("Serve negative = %g, want 0", got)
	}
}

func TestBacklogServeEmpty(t *testing.T) {
	q := NewBacklog()
	if got := q.Serve(0, 5); got != 0 {
		t.Fatalf("Serve on empty = %g, want 0", got)
	}
	if q.MeanDelay() != 0 {
		t.Errorf("MeanDelay on empty = %g, want 0", q.MeanDelay())
	}
}

func TestBacklogOldestArrival(t *testing.T) {
	q := NewBacklog()
	if _, ok := q.OldestArrival(); ok {
		t.Fatal("empty queue reported an oldest arrival")
	}
	q.Arrive(7, 1)
	q.Arrive(9, 1)
	if slot, ok := q.OldestArrival(); !ok || slot != 7 {
		t.Fatalf("OldestArrival = %d, %v; want 7, true", slot, ok)
	}
	q.Serve(10, 1)
	if slot, ok := q.OldestArrival(); !ok || slot != 9 {
		t.Fatalf("after serve OldestArrival = %d, %v; want 9, true", slot, ok)
	}
}

func TestBacklogClampedDelay(t *testing.T) {
	q := NewBacklog()
	q.Arrive(10, 1)
	q.Serve(5, 1) // serving "before" arrival clamps delay at 0
	if q.MaxDelay() != 0 {
		t.Errorf("MaxDelay = %d, want 0", q.MaxDelay())
	}
}

// TestPropertyBacklogConservation: arrivals = served + remaining.
func TestPropertyBacklogConservation(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	f := func() bool {
		q := NewBacklog()
		arrived := 0.0
		for slot := 0; slot < 100; slot++ {
			a := r.Float64()
			q.Arrive(slot, a)
			arrived += a
			q.Serve(slot, r.Float64()*1.5)
		}
		return math.Abs(arrived-(q.ServedTotal()+q.Len())) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyBacklogMatchesEq2: the aggregate queue follows
// Q(τ+1) = max(Q(τ) − sdt, 0) + ddt when served before arrivals.
func TestPropertyBacklogMatchesEq2(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	f := func() bool {
		q := NewBacklog()
		qRef := 0.0
		for slot := 0; slot < 200; slot++ {
			sdt := r.Float64()
			ddt := r.Float64() * 0.8
			// Our Serve caps at the backlog, which equals max(Q-sdt, 0).
			q.Serve(slot, sdt)
			q.Arrive(slot, ddt)
			qRef = math.Max(qRef-sdt, 0) + ddt
			if math.Abs(q.Len()-qRef) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDelayQueue(t *testing.T) {
	d, err := NewDelay(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if d.Epsilon() != 0.5 {
		t.Errorf("Epsilon = %g", d.Epsilon())
	}
	d.Update(0, true) // Y = 0.5
	d.Update(0, true) // Y = 1.0
	if d.Value() != 1.0 {
		t.Fatalf("Y = %g, want 1.0", d.Value())
	}
	d.Update(0.7, true) // Y = 1.0 - 0.7 + 0.5 = 0.8
	if math.Abs(d.Value()-0.8) > 1e-12 {
		t.Fatalf("Y = %g, want 0.8", d.Value())
	}
	d.Update(5, false) // floors at 0
	if d.Value() != 0 {
		t.Fatalf("Y = %g, want 0", d.Value())
	}
	d.Update(0, false) // no backlog: no growth
	if d.Value() != 0 {
		t.Fatalf("Y = %g, want 0 (no backlog)", d.Value())
	}
}

func TestNewDelayRejectsNonPositiveEpsilon(t *testing.T) {
	if _, err := NewDelay(0); err == nil {
		t.Error("epsilon 0 accepted")
	}
	if _, err := NewDelay(-1); err == nil {
		t.Error("negative epsilon accepted")
	}
}

// TestPropertyDelayQueueGrowthBound: Y grows by at most ε per slot and
// never goes negative (the ε-persistence property behind Lemma 2).
func TestPropertyDelayQueueGrowthBound(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	f := func() bool {
		d, err := NewDelay(0.5)
		if err != nil {
			return false
		}
		prev := 0.0
		for i := 0; i < 300; i++ {
			d.Update(r.Float64(), r.Intn(2) == 0)
			if d.Value() < 0 || d.Value() > prev+0.5+1e-12 {
				return false
			}
			prev = d.Value()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBatteryTracker(t *testing.T) {
	x := NewBatteryTracker(2.0, 0.0333, 0.5, 1.25)
	wantShift := 2.0 + 0.0333 + 0.5*1.25
	if math.Abs(x.Shift()-wantShift) > 1e-12 {
		t.Fatalf("Shift = %g, want %g", x.Shift(), wantShift)
	}
	if got := x.Value(0.5); math.Abs(got-(0.5-wantShift)) > 1e-12 {
		t.Errorf("Value(0.5) = %g, want %g", got, 0.5-wantShift)
	}
	// X is monotone in the battery level.
	if x.Value(0.6) <= x.Value(0.1) {
		t.Error("X must increase with the battery level")
	}
}
