package experiments

import (
	"reflect"
	"strings"
	"testing"

	dpss "github.com/smartdpss/smartdpss/internal/engine"
)

func tuneTestOptions(parallel int) TuneOptions {
	return TuneOptions{
		Policy:   dpss.PolicySmartDPSS,
		Base:     dpss.DefaultOptions(),
		Suite:    Config{Days: 2, Seed: 1, SkipOffline: true, Seeds: 2, Parallel: parallel},
		Seed:     1,
		MaxEvals: 25,
	}
}

// TestRunTuneParallelDeterminism is the tuner's core contract: the same
// TuneOptions produce a bit-identical result — winner, scores, and the
// full simplex trajectory — whether the multi-seed objective evaluates
// on one worker or eight.
func TestRunTuneParallelDeterminism(t *testing.T) {
	seq, err := RunTune(tuneTestOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunTune(tuneTestOptions(8))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("tune diverged between -parallel 1 and -parallel 8:\n%+v\nvs\n%+v", seq, par)
	}
}

// TestRunTuneImproves: the tuned point can never score worse than the
// default (the default is the optimizer's start vertex), and here it
// must find a strictly better one.
func TestRunTuneImproves(t *testing.T) {
	for _, policy := range []dpss.Policy{dpss.PolicySmartDPSS, dpss.PolicyLyapunov} {
		topts := tuneTestOptions(4)
		topts.Policy = policy
		res, err := RunTune(topts)
		if err != nil {
			t.Fatal(err)
		}
		if res.TunedScore > res.DefaultScore {
			t.Errorf("%s: tuned %g worse than default %g", policy, res.TunedScore, res.DefaultScore)
		}
		if res.Gap() < 0 {
			t.Errorf("%s: negative gap %g", policy, res.Gap())
		}
		if len(res.Names) != len(res.Tuned) || len(res.Names) != len(res.Default) {
			t.Errorf("%s: ragged vectors: %d names, %d tuned, %d default",
				policy, len(res.Names), len(res.Tuned), len(res.Default))
		}
		if s := res.ParamString(); !strings.Contains(s, "=") {
			t.Errorf("%s: param string %q", policy, s)
		}
		// The tuned options must actually simulate.
		tc := topts.Suite.TraceConfig()
		traces, err := dpss.GenerateTraces(tc)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := dpss.Simulate(policy, res.Options, traces); err != nil {
			t.Errorf("%s: tuned options rejected: %v", policy, err)
		}
	}
}

// TestRunTuneFleetAddsCommitWindow: a fleet-configured base exposes the
// unit-commitment window as a fourth integer dimension.
func TestRunTuneFleetAddsCommitWindow(t *testing.T) {
	base := dpss.DefaultOptions()
	base.GeneratorMW = 1
	space, err := newTuneSpace(dpss.PolicySmartDPSS, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(space.names) != 4 || space.names[3] != "W" || !space.integer[3] {
		t.Fatalf("fleet space = %v (integer %v), want trailing integer W", space.names, space.integer)
	}
	var o dpss.Options
	space.apply([]float64{1, 0.5, 24.4, 6.6}, &o)
	if o.T != 24 || o.CommitWindow != 7 {
		t.Errorf("apply rounded to T=%d W=%d, want 24/7", o.T, o.CommitWindow)
	}
}

// TestTuneSpaceLyapunovScalesDefault: vscale 1 must reproduce the
// policy's own scale-aware default V.
func TestTuneSpaceLyapunovScalesDefault(t *testing.T) {
	base := dpss.DefaultOptions()
	space, err := newTuneSpace(dpss.PolicyLyapunov, base)
	if err != nil {
		t.Fatal(err)
	}
	var o dpss.Options
	space.apply([]float64{1, 0.6}, &o)
	bc := base.BaselineConfig()
	want := (bc.Battery.CapacityMWh - bc.Battery.MinLevelMWh) / bc.PmaxUSD
	if o.LyapunovV != want {
		t.Errorf("vscale=1 → V=%g, want default %g", o.LyapunovV, want)
	}
	if o.LyapunovTheta != 0.6 {
		t.Errorf("theta = %g, want 0.6", o.LyapunovTheta)
	}
}

func TestRunTuneRejectsUntunable(t *testing.T) {
	topts := tuneTestOptions(1)
	topts.Policy = dpss.PolicyImpatient
	if _, err := RunTune(topts); err == nil {
		t.Error("untunable policy accepted")
	}
	if _, err := NewTuneObjective(topts); err == nil {
		t.Error("untunable objective accepted")
	}
	// Lyapunov with no battery has no tunable surface.
	topts = tuneTestOptions(1)
	topts.Policy = dpss.PolicyLyapunov
	topts.Base.BatteryMinutes = 0
	if _, err := RunTune(topts); err == nil {
		t.Error("batteryless lyapunov tune accepted")
	}
}

// TestTuneObjectiveWorstSeedGuard: with full worst-weight the score is
// the max over seeds, with disabled guard it is the mean; the blended
// default sits between them.
func TestTuneObjectiveWorstSeedGuard(t *testing.T) {
	mk := func(w float64) float64 {
		topts := tuneTestOptions(2)
		topts.WorstWeight = w
		obj, err := NewTuneObjective(topts)
		if err != nil {
			t.Fatal(err)
		}
		space, err := newTuneSpace(topts.Policy, topts.Base)
		if err != nil {
			t.Fatal(err)
		}
		f, err := obj(space.x0)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	mean, blend, worst := mk(-1), mk(0), mk(1)
	if !(mean <= blend && blend <= worst) {
		t.Errorf("score ordering broken: mean %g, blend %g, worst %g", mean, blend, worst)
	}
	if mean == worst {
		t.Skip("degenerate: all seeds scored identically")
	}
}
