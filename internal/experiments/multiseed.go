package experiments

import (
	"fmt"
	"math"

	dpss "github.com/smartdpss/smartdpss/internal/engine"
	"github.com/smartdpss/smartdpss/internal/metrics"
	"github.com/smartdpss/smartdpss/internal/suite"
)

// MultiSeedSummary (EXT-6) re-runs the headline comparison (Fig. 6(a) at
// V = 1) across independent trace seeds and reports means with standard
// deviations — the statistical robustness check the paper's single-trace
// evaluation lacks. The claim under test: the cost ordering
// Offline < SmartDPSS < Impatient and a double-digit percentage saving
// hold across scenario draws, not just for one lucky month.
//
// Each seed is a pool job with its own derived trace seed
// (Config.PointSeed); the metric streams accumulate in seed order
// afterwards, so the summary is identical at every parallelism level.
func MultiSeedSummary(cfg Config, seeds int) (*Table, error) {
	if seeds < 2 {
		return nil, fmt.Errorf("experiments: need at least 2 seeds, got %d", seeds)
	}
	opts := dpss.DefaultOptions()

	type seedRun struct {
		smart, imp, off *dpss.Report
	}
	runs, err := suite.Map(cfg, seeds, func(s int) (seedRun, error) {
		tc := cfg.TraceConfig()
		tc.Seed = cfg.PointSeed(s)
		traces, err := suite.Traces(tc)
		if err != nil {
			return seedRun{}, err
		}
		defer suite.Release(traces)
		var r seedRun
		if r.smart, err = simulate(dpss.PolicySmartDPSS, opts, traces); err != nil {
			return r, err
		}
		if r.imp, err = simulate(dpss.PolicyImpatient, opts, traces); err != nil {
			return r, err
		}
		if !cfg.SkipOffline {
			if r.off, err = simulate(dpss.PolicyOfflineOptimal, opts, traces); err != nil {
				return r, err
			}
		}
		return r, nil
	})
	if err != nil {
		return nil, err
	}

	var (
		smartCost = metrics.NewStream(false)
		smartWins = 0
		impCost   = metrics.NewStream(false)
		offCost   = metrics.NewStream(false)
		saving    = metrics.NewStream(false)
		delay     = metrics.NewStream(false)
		orderOK   = 0
	)
	for _, r := range runs {
		smartCost.Add(r.smart.TimeAvgCostUSD)
		impCost.Add(r.imp.TimeAvgCostUSD)
		saving.Add(1 - r.smart.TotalCostUSD/r.imp.TotalCostUSD)
		delay.Add(r.smart.MeanDelaySlots)
		if r.smart.TotalCostUSD < r.imp.TotalCostUSD {
			smartWins++
		}
		if r.off != nil {
			offCost.Add(r.off.TimeAvgCostUSD)
			if r.off.TotalCostUSD < r.smart.TotalCostUSD && r.smart.TotalCostUSD < r.imp.TotalCostUSD {
				orderOK++
			}
		}
	}

	t := &Table{
		Title: fmt.Sprintf("EXT-6 — headline result across %d independent seeds", seeds),
		Note: "V=1, T=24, Bmax=15 min; mean ± population std over seeds;\n" +
			"claim under test: the Fig. 6(a) ordering holds across scenario draws.",
		Columns: []string{"metric", "mean", "std", "detail"},
	}
	t.AddRow("SmartDPSS cost $/slot", fmtUSD(smartCost.Mean()), fmtUSD(smartCost.StdDev()),
		fmt.Sprintf("range %.2f..%.2f", smartCost.Min(), smartCost.Max()))
	t.AddRow("Impatient cost $/slot", fmtUSD(impCost.Mean()), fmtUSD(impCost.StdDev()),
		fmt.Sprintf("SmartDPSS cheaper in %d/%d seeds", smartWins, seeds))
	if offCost.Count() > 0 {
		t.AddRow("Offline cost $/slot", fmtUSD(offCost.Mean()), fmtUSD(offCost.StdDev()),
			fmt.Sprintf("full ordering held in %d/%d seeds", orderOK, seeds))
	}
	t.AddRow("cost saving vs Impatient", fmtPct(saving.Mean()), fmtPct(saving.StdDev()),
		fmt.Sprintf("worst seed %s", fmtPct(saving.Min())))
	t.AddRow("mean delay (slots)", fmtF(delay.Mean()), fmtF(delay.StdDev()),
		fmt.Sprintf("max %.2f", delay.Max()))
	if math.IsNaN(saving.Mean()) {
		return nil, fmt.Errorf("experiments: NaN in multi-seed summary")
	}
	return t, nil
}
