package experiments

import (
	"fmt"
	"math"

	dpss "github.com/smartdpss/smartdpss"
	"github.com/smartdpss/smartdpss/internal/metrics"
)

// MultiSeedSummary (EXT-6) re-runs the headline comparison (Fig. 6(a) at
// V = 1) across independent trace seeds and reports means with standard
// deviations — the statistical robustness check the paper's single-trace
// evaluation lacks. The claim under test: the cost ordering
// Offline < SmartDPSS < Impatient and a double-digit percentage saving
// hold across scenario draws, not just for one lucky month.
func MultiSeedSummary(cfg Config, seeds int) (*Table, error) {
	if seeds < 2 {
		return nil, fmt.Errorf("experiments: need at least 2 seeds, got %d", seeds)
	}
	opts := dpss.DefaultOptions()

	var (
		smartCost = metrics.NewStream(false)
		smartWins = 0
		impCost   = metrics.NewStream(false)
		offCost   = metrics.NewStream(false)
		saving    = metrics.NewStream(false)
		delay     = metrics.NewStream(false)
		orderOK   = 0
	)
	for s := 0; s < seeds; s++ {
		tc := cfg.traceConfig()
		tc.Seed = cfg.Seed + int64(s)*1000
		traces, err := dpss.GenerateTraces(tc)
		if err != nil {
			return nil, err
		}
		smart, err := simulate(dpss.PolicySmartDPSS, opts, traces)
		if err != nil {
			return nil, err
		}
		imp, err := simulate(dpss.PolicyImpatient, opts, traces)
		if err != nil {
			return nil, err
		}
		smartCost.Add(smart.TimeAvgCostUSD)
		impCost.Add(imp.TimeAvgCostUSD)
		saving.Add(1 - smart.TotalCostUSD/imp.TotalCostUSD)
		delay.Add(smart.MeanDelaySlots)
		if smart.TotalCostUSD < imp.TotalCostUSD {
			smartWins++
		}
		if !cfg.SkipOffline {
			off, err := simulate(dpss.PolicyOfflineOptimal, opts, traces)
			if err != nil {
				return nil, err
			}
			offCost.Add(off.TimeAvgCostUSD)
			if off.TotalCostUSD < smart.TotalCostUSD && smart.TotalCostUSD < imp.TotalCostUSD {
				orderOK++
			}
		}
	}

	t := &Table{
		Title: fmt.Sprintf("EXT-6 — headline result across %d independent seeds", seeds),
		Note: "V=1, T=24, Bmax=15 min; mean ± population std over seeds;\n" +
			"claim under test: the Fig. 6(a) ordering holds across scenario draws.",
		Columns: []string{"metric", "mean", "std", "detail"},
	}
	t.AddRow("SmartDPSS cost $/slot", fmtUSD(smartCost.Mean()), fmtUSD(smartCost.StdDev()),
		fmt.Sprintf("range %.2f..%.2f", smartCost.Min(), smartCost.Max()))
	t.AddRow("Impatient cost $/slot", fmtUSD(impCost.Mean()), fmtUSD(impCost.StdDev()),
		fmt.Sprintf("SmartDPSS cheaper in %d/%d seeds", smartWins, seeds))
	if offCost.Count() > 0 {
		t.AddRow("Offline cost $/slot", fmtUSD(offCost.Mean()), fmtUSD(offCost.StdDev()),
			fmt.Sprintf("full ordering held in %d/%d seeds", orderOK, seeds))
	}
	t.AddRow("cost saving vs Impatient", fmtPct(saving.Mean()), fmtPct(saving.StdDev()),
		fmt.Sprintf("worst seed %s", fmtPct(saving.Min())))
	t.AddRow("mean delay (slots)", fmtF(delay.Mean()), fmtF(delay.StdDev()),
		fmt.Sprintf("max %.2f", delay.Max()))
	if math.IsNaN(saving.Mean()) {
		return nil, fmt.Errorf("experiments: NaN in multi-seed summary")
	}
	return t, nil
}
