package experiments

import (
	"fmt"

	dpss "github.com/smartdpss/smartdpss/internal/engine"
	"github.com/smartdpss/smartdpss/internal/suite"
)

// ExtAnnualDays is the horizon of the annual study: a full year of
// hourly slots (8760), the scale the paper's one-month evaluation
// cannot reach.
const ExtAnnualDays = 365

// ExtAnnual is the year-long scenario the sparse revised simplex
// unlocks: the whole-horizon clairvoyant LP spans 8760 fine slots —
// far beyond what the dense chain formulation's quadratic constraint
// matrix could factor — and is compared against the per-interval
// offline decomposition and the online policies over the same year.
// Seasonal solar amplitude makes the cross-interval planning question
// real: the annual horizon LP can shift service across months, the
// per-interval benchmark cannot. Each policy is a pool job; the runner
// always forces a 365-day trace set regardless of cfg.Days so the
// scenario measures the annual scale by construction. SkipOffline
// drops the two clairvoyant rows (they dominate the runtime).
func ExtAnnual(cfg Config) (*Table, error) {
	tc := cfg.TraceConfig()
	tc.Days = ExtAnnualDays
	traces, err := suite.Traces(tc)
	if err != nil {
		return nil, err
	}
	defer suite.Release(traces)
	opts := dpss.DefaultOptions()

	type entry struct {
		label   string
		policy  dpss.Policy
		offline bool
	}
	entries := []entry{
		{"SmartDPSS", dpss.PolicySmartDPSS, false},
		{"Impatient", dpss.PolicyImpatient, false},
		{"OfflineOptimal", dpss.PolicyOfflineOptimal, true},
		{"OfflineHorizon", dpss.PolicyOfflineHorizon, true},
	}
	rows, err := suite.Map(cfg, len(entries), func(i int) ([]string, error) {
		en := entries[i]
		if en.offline && cfg.SkipOffline {
			return nil, nil
		}
		rep, err := simulate(en.policy, opts, traces)
		if err != nil {
			return nil, err
		}
		return []string{en.label, fmtUSD(rep.TimeAvgCostUSD), fmtF(rep.MeanDelaySlots),
			fmtF(rep.UnservedMWh), fmt.Sprintf("%d", rep.Slots)}, nil
	})
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title: "ANNUAL-1 — year-long comparison (8760 hourly slots)",
		Note: "Days=365 forced; V=1, T=24, Bmax=15 min; the OfflineHorizon row is one\n" +
			"8760-slot LP on the sparse revised simplex; expected: the annual horizon\n" +
			"LP lower-bounds the per-interval offline decomposition.",
		Columns: []string{"policy", "cost $/slot", "mean delay", "unserved MWh", "slots"},
	}
	for _, r := range rows {
		if r != nil {
			t.Rows = append(t.Rows, r)
		}
	}
	return t, nil
}
