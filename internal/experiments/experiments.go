// Package experiments reproduces every figure of the SmartDPSS evaluation
// (Sec. VI): the one-month input traces (Fig. 5), the V and T sensitivity
// sweeps (Fig. 6), the ε/market-structure/battery-size factors (Fig. 7),
// renewable penetration and demand variation (Fig. 8), robustness to
// estimation errors (Fig. 9), and system-expansion scalability (Fig. 10).
// Beyond the paper it adds the extension studies (TagExt, ext-*) and the
// on-site power provisioning family (TagProvision, prov-*): the
// generator/battery sizing grid and fuel break-even of arXiv:1303.6775
// plus the full V×T cross sweep.
//
// Each runner returns a Table whose rows mirror the series the paper
// plots; cmd/experiments prints them and EXPERIMENTS.md records measured
// outputs against the paper's qualitative claims. Absolute dollar values
// differ from the paper (synthetic traces stand in for MIDC/NYISO/Google
// data), but the shapes — who wins, what is monotone, where benefits
// order — are the reproduction targets.
//
// Every runner registers itself as a suite.Scenario (see registry.go),
// and every inner sweep loop is fanned out on the suite worker pool via
// suite.Map with results assembled in index order, so tables are
// byte-identical at any parallelism level. Trace sets come from the
// shared suite cache: concurrent scenarios that need the same synthetic
// month get private clones of one generation instead of regenerating it.
package experiments

import (
	"fmt"

	dpss "github.com/smartdpss/smartdpss/internal/engine"
	"github.com/smartdpss/smartdpss/internal/suite"
)

// Config scopes an experiment run (an alias of suite.Config, so runners
// plug straight into the suite registry).
type Config = suite.Config

// DefaultConfig matches the paper's one-month setup.
func DefaultConfig() Config { return suite.DefaultConfig() }

// Table is a printable experiment result (an alias of suite.Table).
type Table = suite.Table

// baseTraces fetches the run's base trace set from the shared suite
// cache.
func baseTraces(cfg Config) (*dpss.Traces, error) {
	return suite.Traces(cfg.TraceConfig())
}

// fmtUSD formats a dollar amount.
func fmtUSD(v float64) string { return fmt.Sprintf("%.2f", v) }

// fmtF formats a generic float.
func fmtF(v float64) string { return fmt.Sprintf("%.3f", v) }

// fmtPct formats a ratio as a signed percentage.
func fmtPct(v float64) string { return fmt.Sprintf("%+.2f%%", 100*v) }

// simulate is a small helper with uniform error context.
func simulate(policy dpss.Policy, opts dpss.Options, tr *dpss.Traces) (*dpss.Report, error) {
	rep, err := dpss.Simulate(policy, opts, tr)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", policy, err)
	}
	return rep, nil
}
