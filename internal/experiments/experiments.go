// Package experiments reproduces every figure of the SmartDPSS evaluation
// (Sec. VI): the one-month input traces (Fig. 5), the V and T sensitivity
// sweeps (Fig. 6), the ε/market-structure/battery-size factors (Fig. 7),
// renewable penetration and demand variation (Fig. 8), robustness to
// estimation errors (Fig. 9), and system-expansion scalability (Fig. 10).
//
// Each runner returns a Table whose rows mirror the series the paper
// plots; cmd/experiments prints them and EXPERIMENTS.md records measured
// outputs against the paper's qualitative claims. Absolute dollar values
// differ from the paper (synthetic traces stand in for MIDC/NYISO/Google
// data), but the shapes — who wins, what is monotone, where benefits
// order — are the reproduction targets.
package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"

	dpss "github.com/smartdpss/smartdpss"
)

// Config scopes an experiment run.
type Config struct {
	// Days is the trace horizon (paper: 31).
	Days int
	// Seed drives the synthetic generators.
	Seed int64
	// SkipOffline drops the clairvoyant benchmark columns (useful for
	// quick runs; the offline LPs dominate the runtime).
	SkipOffline bool
}

// DefaultConfig matches the paper's one-month setup.
func DefaultConfig() Config {
	return Config{Days: 31, Seed: 1}
}

// traceConfig translates the experiment scope into a trace request.
func (c Config) traceConfig() dpss.TraceConfig {
	tc := dpss.DefaultTraceConfig()
	tc.Days = c.Days
	tc.Seed = c.Seed
	return tc
}

// Table is a printable experiment result.
type Table struct {
	// Title names the reproduced figure.
	Title string
	// Note captures the fixed parameters and reading guidance.
	Note string
	// Columns are the header cells.
	Columns []string
	// Rows are the data cells, already formatted.
	Rows [][]string
}

// AddRow appends one formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if _, err := fmt.Fprintf(w, "## %s\n", t.Title); err != nil {
		return err
	}
	if t.Note != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Note); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = pad(cell, widths[i])
		}
		_, err := fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
		return err
	}
	if err := line(t.Columns); err != nil {
		return err
	}
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	if err := line(seps); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// fmtUSD formats a dollar amount.
func fmtUSD(v float64) string { return fmt.Sprintf("%.2f", v) }

// fmtF formats a generic float.
func fmtF(v float64) string { return fmt.Sprintf("%.3f", v) }

// fmtPct formats a ratio as a signed percentage.
func fmtPct(v float64) string { return fmt.Sprintf("%+.2f%%", 100*v) }

// simulate is a small helper with uniform error context.
func simulate(policy dpss.Policy, opts dpss.Options, tr *dpss.Traces) (*dpss.Report, error) {
	rep, err := dpss.Simulate(policy, opts, tr)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", policy, err)
	}
	return rep, nil
}

// WriteCSV renders the table as CSV (one header row plus data rows), for
// piping experiment results into plotting tools.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return fmt.Errorf("experiments: write header: %w", err)
	}
	for i, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("experiments: write row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}
