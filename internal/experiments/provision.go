package experiments

// The "provision" scenario family extends the paper's evaluation with
// the on-site power production questions of "Dynamic Provisioning in
// Next-Generation Data Centers with On-site Power Production"
// (arXiv:1303.6775): how much dispatchable generation and how much
// storage a datacenter should buy (PROV-1), where the fuel/grid
// break-even sits (PROV-2), and the ROADMAP's wider V × T cross sweep
// now that the parallel suite engine makes dense grids cheap (PROV-3).
// Every sweep point is an independent pool job, so the tables are
// byte-identical at any parallelism level.

import (
	"fmt"

	dpss "github.com/smartdpss/smartdpss/internal/engine"
	"github.com/smartdpss/smartdpss/internal/suite"
)

// ProvisionGenMW are the generator capacities of the provisioning grid
// (MW of dispatchable on-site production; 0 = none).
var ProvisionGenMW = []float64{0, 0.25, 0.5, 1.0}

// ProvisionBatteryMinutes are the UPS sizes of the provisioning grid
// (minutes of peak demand, the Fig. 7 axis).
var ProvisionBatteryMinutes = []float64{0, 15, 30, 60}

// provisionGenOptions applies the family's shared generator constants:
// a 20% minimum stable load, a modest startup charge and a fuel price of
// 45 USD/MWh — above the long-term price level (~38) but below the
// real-time mean (~47), so the unit substitutes real-time purchases and
// peak prices without being free baseload.
func provisionGenOptions(o dpss.Options, genMW float64) dpss.Options {
	o.GeneratorMW = genMW
	o.GeneratorMinLoadFrac = 0.2
	o.GeneratorStartupUSD = 10
	o.FuelUSDPerMWh = 45
	return o
}

// ProvisionGrid reproduces the provisioning question of arXiv:1303.6775
// as a generator-capacity × battery-size grid under SmartDPSS: each cell
// reports its cost and how much the generation capacity saves over the
// generator-free column at the same battery size. Expected reading: the
// generator's saving shrinks as the battery grows (both assets harvest
// the same price spreads), and capacity beyond the spiky share of demand
// is idle capital.
func ProvisionGrid(cfg Config) (*Table, error) {
	traces, err := baseTraces(cfg)
	if err != nil {
		return nil, err
	}
	nb := len(ProvisionBatteryMinutes)
	jobs := len(ProvisionGenMW) * nb
	reports, err := suite.Map(cfg, jobs, func(i int) (*dpss.Report, error) {
		o := provisionGenOptions(dpss.DefaultOptions(), ProvisionGenMW[i/nb])
		o.BatteryMinutes = ProvisionBatteryMinutes[i%nb]
		return simulate(dpss.PolicySmartDPSS, o, traces)
	})
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title: "PROV-1 — on-site generator capacity × battery size provisioning grid",
		Note: "SmartDPSS, V=1, T=24; fuel 45 $/MWh, min load 20%, startup $10;\n" +
			"'saving' is against the generator-free cell at the same battery size;\n" +
			"expected: saving grows (sublinearly) with capacity, and generator and\n" +
			"battery savings overlap — each shrinks the other's.",
		Columns: []string{"gen MW", "Bmax (min)", "cost $/slot", "saving", "gen MWh", "gen share", "battery ops", "mean delay"},
	}
	for i, rep := range reports {
		base := reports[i%nb] // generator-free cell of this battery column
		supplied := rep.LTEnergyMWh + rep.RTEnergyMWh + rep.RenewableMWh + rep.GenEnergyMWh
		share := 0.0
		if supplied > 0 {
			share = rep.GenEnergyMWh / supplied
		}
		t.AddRow(
			fmt.Sprintf("%.2f", ProvisionGenMW[i/nb]),
			fmt.Sprintf("%g", ProvisionBatteryMinutes[i%nb]),
			fmtUSD(rep.TimeAvgCostUSD),
			fmtPct(1-rep.TotalCostUSD/base.TotalCostUSD),
			fmtF(rep.GenEnergyMWh),
			fmtPct(share),
			fmt.Sprintf("%d", rep.BatteryOps),
			fmtF(rep.MeanDelaySlots),
		)
	}
	return t, nil
}

// ProvisionFuelValues are the fuel prices of the sensitivity sweep
// (USD/MWh), spanning below-long-term (baseload-cheap) to above the
// real-time spike range (idle capital).
var ProvisionFuelValues = []float64{30, 45, 60, 85, 110, 140}

// ProvisionPriceScales are the grid-price multipliers of the second
// sweep block (TraceConfig.PriceScale), moving the markets against a
// fixed fuel price.
var ProvisionPriceScales = []float64{0.8, 1.25}

// ProvisionFuel sweeps the fuel price at a fixed 0.5 MW unit, then the
// grid-price scale at a fixed 45 $/MWh fuel price — the two directions
// of the same break-even. Expected reading: generation share falls
// monotonically with the fuel price and rises with the grid price.
func ProvisionFuel(cfg Config) (*Table, error) {
	traces, err := baseTraces(cfg)
	if err != nil {
		return nil, err
	}
	nf := len(ProvisionFuelValues)
	jobs := nf + len(ProvisionPriceScales)
	reports, err := suite.Map(cfg, jobs, func(i int) (*dpss.Report, error) {
		o := provisionGenOptions(dpss.DefaultOptions(), 0.5)
		if i < nf {
			o.FuelUSDPerMWh = ProvisionFuelValues[i]
			return simulate(dpss.PolicySmartDPSS, o, traces)
		}
		// Grid-price block: same scenario, scaled price series (its own
		// cached trace generation per scale). Scaling the price world
		// scales the market cap with it, or scaled-up spikes would fall
		// outside [0, Pmax].
		scale := ProvisionPriceScales[i-nf]
		tc := cfg.TraceConfig()
		tc.PriceScale = scale
		scaled, err := suite.Traces(tc)
		if err != nil {
			return nil, err
		}
		defer suite.Release(scaled)
		o.PmaxUSD *= scale
		return simulate(dpss.PolicySmartDPSS, o, scaled)
	})
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title: "PROV-2 — fuel-price and grid-price sensitivity of on-site generation",
		Note: "SmartDPSS, 0.5 MW unit, min load 20%, startup $10; Bmax=15 min;\n" +
			"'price xk' rows rescale both market price series at fuel 45 $/MWh;\n" +
			"expected: generation share ↓ with fuel price, ↑ with grid prices.",
		Columns: []string{"variant", "cost $/slot", "gen MWh", "gen share", "fuel $", "grid MWh", "battery ops"},
	}
	for i, rep := range reports {
		label := ""
		if i < nf {
			label = fmt.Sprintf("fuel=%g $/MWh", ProvisionFuelValues[i])
		} else {
			// ASCII only: Table.Fprint pads by byte length.
			label = fmt.Sprintf("price x%.2f fuel=45", ProvisionPriceScales[i-nf])
		}
		supplied := rep.LTEnergyMWh + rep.RTEnergyMWh + rep.RenewableMWh + rep.GenEnergyMWh
		share := 0.0
		if supplied > 0 {
			share = rep.GenEnergyMWh / supplied
		}
		t.AddRow(label,
			fmtUSD(rep.TimeAvgCostUSD),
			fmtF(rep.GenEnergyMWh),
			fmtPct(share),
			fmtUSD(rep.GenFuelUSD+rep.GenStartupUSD),
			fmtF(rep.LTEnergyMWh+rep.RTEnergyMWh),
			fmt.Sprintf("%d", rep.BatteryOps),
		)
	}
	return t, nil
}

// ProvisionVValues and ProvisionTValues span the V × T cross sweep of
// the ROADMAP's wider-grid item.
var (
	ProvisionVValues = []float64{0.25, 1, 4}
	ProvisionTValues = []int{6, 12, 24, 48}
)

// ProvisionVT runs the full V × T cross sweep the paper only samples
// axis-by-axis (Fig. 6): every combination of the cost–delay knob V and
// the market period T. Expected reading: delay grows with V and shrinks
// with T (both queue bounds carry V·Pmax/T), while cost falls with V and
// stays roughly flat in T — i.e. the axes are nearly separable, which is
// what makes the paper's per-axis tuning sound.
func ProvisionVT(cfg Config) (*Table, error) {
	traces, err := baseTraces(cfg)
	if err != nil {
		return nil, err
	}
	nt := len(ProvisionTValues)
	jobs := len(ProvisionVValues) * nt
	reports, err := suite.Map(cfg, jobs, func(i int) (*dpss.Report, error) {
		o := dpss.DefaultOptions()
		o.V = ProvisionVValues[i/nt]
		o.T = ProvisionTValues[i%nt]
		return simulate(dpss.PolicySmartDPSS, o, traces)
	})
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title: "PROV-3 — V × T cross sweep (cost and delay over the full grid)",
		Note: "SmartDPSS, ε=0.5, Bmax=15 min, no generator; Fig. 6 samples these axes\n" +
			"one at a time — the cross grid checks they stay separable.",
		Columns: []string{"V", "T (slots)", "cost $/slot", "mean delay", "max delay", "backlog max MWh"},
	}
	for i, rep := range reports {
		t.AddRow(
			fmt.Sprintf("%.2f", ProvisionVValues[i/nt]),
			fmt.Sprintf("%d", ProvisionTValues[i%nt]),
			fmtUSD(rep.TimeAvgCostUSD),
			fmtF(rep.MeanDelaySlots),
			fmt.Sprintf("%d", rep.MaxDelaySlots),
			fmtF(rep.BacklogMaxMWh),
		)
	}
	return t, nil
}
