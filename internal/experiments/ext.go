package experiments

import (
	"fmt"

	dpss "github.com/smartdpss/smartdpss/internal/engine"
	"github.com/smartdpss/smartdpss/internal/suite"
)

// ExtPeakManagement is an extension beyond the paper's evaluation,
// addressing its declared future work ("Incorporating cooling cost and
// power peaks management is part of our future work", Sec. IV-C). The
// paper observes that SmartDPSS "may incur power peaks due to its goal of
// executing as much demand as possible during periods of more available
// renewable energy and lower electricity price", bounded only by Pgrid.
// This experiment measures that effect: the peak grid draw and the
// resulting demand charge for each policy, with and without the UPS.
// Each policy/battery variant is a pool job.
func ExtPeakManagement(cfg Config) (*Table, error) {
	traces, err := baseTraces(cfg)
	if err != nil {
		return nil, err
	}

	const demandChargeUSDPerMW = 8000 // a typical monthly demand charge

	type variant struct {
		label   string
		policy  dpss.Policy
		minutes float64
	}
	variants := []variant{
		{"SmartDPSS", dpss.PolicySmartDPSS, 15},
		{"SmartDPSS", dpss.PolicySmartDPSS, 0},
		{"Impatient", dpss.PolicyImpatient, 15},
		{"Impatient", dpss.PolicyImpatient, 0},
	}
	rows, err := suite.Map(cfg, len(variants), func(i int) ([]string, error) {
		v := variants[i]
		opts := dpss.DefaultOptions()
		opts.BatteryMinutes = v.minutes
		opts.PeakChargeUSDPerMW = demandChargeUSDPerMW
		rep, err := simulate(v.policy, opts, traces)
		if err != nil {
			return nil, err
		}
		combined := rep.TimeAvgCostUSD + rep.PeakChargeUSD/float64(rep.Slots)
		batt := fmt.Sprintf("%g min", v.minutes)
		if v.minutes == 0 {
			batt = "none"
		}
		return []string{v.label, batt, fmtUSD(rep.TimeAvgCostUSD),
			fmtF(rep.PeakGridMW), fmt.Sprintf("%d", rep.NearPeakSlots), fmtUSD(combined)}, nil
	})
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title: "EXT-1 — power peaks and demand charges (paper future work, Sec. IV-C)",
		Note: "demand charge $8000/MW-month applied to the peak grid draw, reported\n" +
			"separately from Cost(τ); paper prediction: SmartDPSS peaks harder than\n" +
			"Impatient but stays bounded by Pgrid.",
		Columns: []string{"policy", "battery", "energy $/slot", "peak MW", "near-peak slots", "combined $/slot"},
	}
	t.Rows = rows
	return t, nil
}

// ExtCycleBudgetValues are the Nmax operation budgets swept by
// ExtCycleBudget (0 = unlimited).
var ExtCycleBudgetValues = []int{0, 300, 150, 75, 30}

// ExtCycleBudget is an extension exercising the paper's UPS lifetime
// constraint (Eq. 9): the total number of charge/discharge operations over
// the horizon is capped at Nmax. The paper models the constraint but never
// evaluates it; this experiment sweeps Nmax and shows how the battery's
// cost benefit decays as the budget tightens, and that the controller
// degrades gracefully to grid-only operation once the budget is spent.
// Each Nmax is a pool job.
func ExtCycleBudget(cfg Config) (*Table, error) {
	traces, err := baseTraces(cfg)
	if err != nil {
		return nil, err
	}

	rows, err := suite.Map(cfg, len(ExtCycleBudgetValues), func(i int) ([]string, error) {
		nmax := ExtCycleBudgetValues[i]
		opts := dpss.DefaultOptions()
		opts.BatteryMaxOps = nmax
		rep, err := simulate(dpss.PolicySmartDPSS, opts, traces)
		if err != nil {
			return nil, err
		}
		label := fmt.Sprintf("%d", nmax)
		if nmax == 0 {
			label = "unlimited"
		}
		return []string{label, fmtUSD(rep.TimeAvgCostUSD),
			fmt.Sprintf("%d", rep.BatteryOps), fmtF(rep.BatteryInMWh), fmtF(rep.UnservedMWh)}, nil
	})
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title: "EXT-2 — UPS lifetime budget Nmax (Eq. 9)",
		Note: "V=1, T=24, Bmax=15 min; Nmax caps total battery operations over the horizon\n" +
			"(0 = unlimited); expected: cost rises towards the no-battery level as Nmax → 0.",
		Columns: []string{"Nmax", "cost $/slot", "battery ops", "battery in MWh", "unserved MWh"},
	}
	t.Rows = rows
	return t, nil
}

// ExtRenewableMix is an extension comparing solar-only, wind-only and
// mixed renewable portfolios at equal penetration (the paper names "solar
// and wind energies" as DPSS sources but evaluates solar only). Mixing
// smooths intermittency — wind produces at night — which shows up as less
// curtailment and lower cost at the same penetration. Each portfolio is a
// pool job generating its own trace set (distinct TraceConfigs, so they
// cache independently).
func ExtRenewableMix(cfg Config) (*Table, error) {
	const targetPenetration = 0.3

	type portfolio struct {
		label   string
		solarMW float64
		windMW  float64
	}
	portfolios := []portfolio{
		{"solar only", 3.0, 0},
		{"wind only", 0, 1.5},
		{"solar + wind", 1.5, 0.75},
	}
	rows, err := suite.Map(cfg, len(portfolios), func(i int) ([]string, error) {
		pf := portfolios[i]
		tc := cfg.TraceConfig()
		tc.SolarCapacityMW = pf.solarMW
		tc.WindCapacityMW = pf.windMW
		traces, err := suite.Traces(tc)
		if err != nil {
			return nil, err
		}
		defer suite.Release(traces)
		if err := traces.SetPenetration(targetPenetration); err != nil {
			return nil, err
		}
		rep, err := simulate(dpss.PolicySmartDPSS, dpss.DefaultOptions(), traces)
		if err != nil {
			return nil, err
		}
		return []string{pf.label, fmtUSD(rep.TimeAvgCostUSD), fmtF(rep.WasteMWh),
			fmt.Sprintf("%.1f%%", 100*nightShare(traces))}, nil
	})
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title: "EXT-3 — renewable portfolio mix at equal penetration",
		Note: fmt.Sprintf("penetration fixed at %.0f%%; V=1, T=24, Bmax=15 min;\n"+
			"expected: the mixed portfolio wastes less and costs least.", 100*targetPenetration),
		Columns: []string{"portfolio", "cost $/slot", "waste MWh", "night share"},
	}
	t.Rows = rows
	return t, nil
}

// nightShare returns the fraction of renewable energy produced between
// 22:00 and 06:00 (an intermittency-smoothing indicator).
func nightShare(traces *dpss.Traces) float64 {
	night, total := traces.RenewableNightSplit()
	if total == 0 {
		return 0
	}
	return night / total
}
