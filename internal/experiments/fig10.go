package experiments

import (
	"fmt"

	dpss "github.com/smartdpss/smartdpss/internal/engine"
	"github.com/smartdpss/smartdpss/internal/suite"
)

// Fig10Betas are the system-expansion factors of Fig. 10.
var Fig10Betas = []float64{1, 2, 5, 10}

// Fig10Scaling reproduces Fig. 10: time-average total cost as the system
// expands to β times the current demand and renewable production
// (Sec. V-C). The grid connection grows with the datacenter, but the UPS
// "cannot be enlarged proportionally and stays fixed due to limits of
// space and capital cost". The paper's reading: total cost grows almost
// linearly with β while the per-unit cost falls (the growth rate slows).
// Each β is a pool job scaling its own private clone of the cached
// traces.
func Fig10Scaling(cfg Config) (*Table, error) {
	rows, err := suite.Map(cfg, len(Fig10Betas), func(i int) ([]string, error) {
		beta := Fig10Betas[i]
		traces, err := baseTraces(cfg)
		if err != nil {
			return nil, err
		}
		defer suite.Release(traces)
		traces.ScaleSystem(beta)

		opts := dpss.DefaultOptions()
		opts.PeakMW = 2.0 * beta      // grid connection grows with the DC
		opts.BatteryReferenceMW = 2.0 // UPS stays at the original size
		rep, err := simulate(dpss.PolicySmartDPSS, opts, traces)
		if err != nil {
			return nil, err
		}
		return []string{fmt.Sprintf("%.0f", beta),
			fmtUSD(rep.TimeAvgCostUSD), fmtUSD(rep.TimeAvgCostUSD / beta),
			fmtF(rep.MeanDelaySlots), fmtF(rep.UnservedMWh)}, nil
	})
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title: "Fig. 10 — time-average total cost under system expansion β",
		Note: "demand and renewables scaled by β, Pgrid scaled, UPS fixed at the β=1 size;\n" +
			"expected: total cost near-linear in β, per-unit cost ↓.",
		Columns: []string{"beta", "cost $/slot", "cost per unit ($/slot/beta)", "mean delay", "unserved MWh"},
	}
	t.Rows = rows
	return t, nil
}

// All runs every paper figure's experiment sequentially in this
// goroutine (each runner still fans its sweep out on the pool) and
// returns the tables in paper order. The figure list is the registry's
// TagPaper selection — one source of truth with cmd/experiments and
// RunSuite. Suite-level fan-out lives in suite.RunSuite; this helper
// remains for callers that want just the paper figures as a slice.
func All(cfg Config) ([]*Table, error) {
	scns, err := suite.Select(TagPaper)
	if err != nil {
		return nil, err
	}
	tables := make([]*Table, 0, len(scns))
	for _, s := range scns {
		tbl, err := s.Run(cfg)
		if err != nil {
			return tables, err
		}
		tables = append(tables, tbl)
	}
	return tables, nil
}
