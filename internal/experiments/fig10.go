package experiments

import (
	"fmt"

	dpss "github.com/smartdpss/smartdpss"
)

// Fig10Betas are the system-expansion factors of Fig. 10.
var Fig10Betas = []float64{1, 2, 5, 10}

// Fig10Scaling reproduces Fig. 10: time-average total cost as the system
// expands to β times the current demand and renewable production
// (Sec. V-C). The grid connection grows with the datacenter, but the UPS
// "cannot be enlarged proportionally and stays fixed due to limits of
// space and capital cost". The paper's reading: total cost grows almost
// linearly with β while the per-unit cost falls (the growth rate slows).
func Fig10Scaling(cfg Config) (*Table, error) {
	t := &Table{
		Title: "Fig. 10 — time-average total cost under system expansion β",
		Note: "demand and renewables scaled by β, Pgrid scaled, UPS fixed at the β=1 size;\n" +
			"expected: total cost near-linear in β, per-unit cost ↓.",
		Columns: []string{"beta", "cost $/slot", "cost per unit ($/slot/beta)", "mean delay", "unserved MWh"},
	}
	for _, beta := range Fig10Betas {
		traces, err := dpss.GenerateTraces(cfg.traceConfig())
		if err != nil {
			return nil, err
		}
		traces.ScaleSystem(beta)

		opts := dpss.DefaultOptions()
		opts.PeakMW = 2.0 * beta      // grid connection grows with the DC
		opts.BatteryReferenceMW = 2.0 // UPS stays at the original size
		rep, err := simulate(dpss.PolicySmartDPSS, opts, traces)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%.0f", beta),
			fmtUSD(rep.TimeAvgCostUSD), fmtUSD(rep.TimeAvgCostUSD/beta),
			fmtF(rep.MeanDelaySlots), fmtF(rep.UnservedMWh))
	}
	return t, nil
}

// All runs every figure's experiment and returns the tables in paper
// order. SkipOffline in cfg shortens the run considerably.
func All(cfg Config) ([]*Table, error) {
	runners := []func(Config) (*Table, error){
		Fig5Traces,
		Fig6VSweep,
		Fig6TSweep,
		Fig7Factors,
		Fig8Penetration,
		Fig9Robustness,
		Fig10Scaling,
	}
	tables := make([]*Table, 0, len(runners))
	for _, run := range runners {
		tbl, err := run(cfg)
		if err != nil {
			return tables, err
		}
		tables = append(tables, tbl)
	}
	return tables, nil
}
