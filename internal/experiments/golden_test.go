package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"github.com/smartdpss/smartdpss/internal/suite"
)

// update regenerates the golden snapshots instead of diffing against
// them:
//
//	go test ./internal/experiments -run TestSuiteGolden -update
//
// Regenerate ONLY when an output change is intended and reviewed — the
// whole point of the harness is that refactors reproduce these bytes.
var update = flag.Bool("update", false, "rewrite testdata/golden snapshots")

// goldenConfig is the pinned scenario scope: the full one-month paper
// suite at the default seed, forced sequential. It must match the
// cmd/experiments defaults so `go run ./cmd/experiments -run <name>
// -parallel 1` reproduces each file byte for byte.
func goldenConfig() Config {
	return Config{Days: 31, Seed: 1, Seeds: 5, Parallel: 1}
}

// TestSuiteGolden byte-diffs every paper figure against its committed
// snapshot in testdata/golden. The snapshots were captured before the
// generator-fleet refactor, so this test is also the empty-fleet
// byte-identity acceptance check: a fleet-free suite run must still
// produce the exact pre-fleet bytes. Combined with
// TestSuiteParallelDeterminism (same bytes at any parallelism) and the
// CI golden job, any refactor that silently drifts results fails here
// with a readable diff.
func TestSuiteGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full one-month paper suite in -short mode")
	}
	cfg := goldenConfig()
	scenarios, err := suite.Select(TagPaper)
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			tbl, err := sc.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := tbl.Fprint(&buf); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", "golden", sc.Name+".txt")
			if *update {
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden snapshot (run with -update to create): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("output drifted from %s\n--- got ---\n%s--- want ---\n%s",
					path, buf.String(), string(want))
			}
		})
	}
}

// TestGoldenFilesComplete: every paper scenario must have a snapshot on
// disk, so a newly registered figure cannot silently skip the harness.
func TestGoldenFilesComplete(t *testing.T) {
	scenarios, err := suite.Select(TagPaper)
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range scenarios {
		path := filepath.Join("testdata", "golden", sc.Name+".txt")
		if _, err := os.Stat(path); err != nil {
			t.Errorf("paper scenario %q has no golden snapshot: %v", sc.Name, err)
		}
	}
}
