package experiments

import (
	"testing"

	dpss "github.com/smartdpss/smartdpss/internal/engine"
)

// TestFig6vOfflineDelayPinned replays the fig6v golden's OfflineOptimal
// column directly: the one-month clairvoyant run at the default options
// must still report a mean delay that formats to exactly 3.098 slots (and
// the matching cost). The full golden diff also covers this, but this
// test names the contract the sparse-simplex migration must respect —
// OfflineOptimal stays on the dense row-bound LP path whose pivot
// sequence produced these bytes — so a drift here points straight at the
// alternate-optima contract instead of at a wall of table-diff noise.
func TestFig6vOfflineDelayPinned(t *testing.T) {
	if testing.Short() {
		t.Skip("full one-month OfflineOptimal run in -short mode")
	}
	traces, err := baseTraces(goldenConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := simulate(dpss.PolicyOfflineOptimal, dpss.DefaultOptions(), traces)
	if err != nil {
		t.Fatal(err)
	}
	if got := fmtF(rep.MeanDelaySlots); got != "3.098" {
		t.Errorf("OfflineOptimal mean delay = %s slots, golden pins 3.098", got)
	}
	if got := fmtUSD(rep.TimeAvgCostUSD); got != "40.99" {
		t.Errorf("OfflineOptimal time-average cost = $%s/slot, golden pins 40.99", got)
	}
}
