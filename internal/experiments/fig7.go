package experiments

import (
	"fmt"

	dpss "github.com/smartdpss/smartdpss/internal/engine"
	"github.com/smartdpss/smartdpss/internal/suite"
)

// Fig7EpsilonValues are the delay-control parameters of Fig. 7.
var Fig7EpsilonValues = []float64{0.25, 0.5, 1, 2}

// Fig7BatteryMinutes are the UPS sizes of Fig. 7 (minutes of peak demand).
var Fig7BatteryMinutes = []float64{0, 15, 30}

// Fig7Factors reproduces Fig. 7: the impact of ε, the market structure
// (two markets "TM" vs real-time only "RTM") and the battery size Bmax on
// time-average total cost, with V = 1 and T = 24. The paper's reading:
// cost ↑ with ε; TM < RTM; cost ↓ with Bmax; and the benefit ordering is
// battery > market structure > ε. Each configuration is a pool job.
func Fig7Factors(cfg Config) (*Table, error) {
	traces, err := baseTraces(cfg)
	if err != nil {
		return nil, err
	}
	base := dpss.DefaultOptions()

	type variant struct {
		label string
		opts  dpss.Options
	}
	var variants []variant

	// ε sweep (TM, Bmax = 15 min).
	for _, eps := range Fig7EpsilonValues {
		o := base
		o.Epsilon = eps
		variants = append(variants, variant{fmt.Sprintf("eps=%.2f TM Bmax=15", eps), o})
	}

	// Market structure (ε = 0.5, Bmax = 15 min).
	rtm := base
	rtm.DisableLongTerm = true
	variants = append(variants, variant{"eps=0.50 RTM Bmax=15", rtm})

	// Battery sizes (TM, ε = 0.5).
	for _, minutes := range Fig7BatteryMinutes {
		o := base
		o.BatteryMinutes = minutes
		label := fmt.Sprintf("eps=0.50 TM Bmax=%g", minutes)
		if minutes == 0 {
			label = "eps=0.50 TM NB (no battery)"
		}
		variants = append(variants, variant{label, o})
	}

	reports, err := suite.Map(cfg, len(variants), func(i int) (*dpss.Report, error) {
		return simulate(dpss.PolicySmartDPSS, variants[i].opts, traces)
	})
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title: "Fig. 7 — impact of ε, market structure and Bmax on time-average total cost",
		Note: "V=1, T=24; TM = two-timescale markets, RTM = real-time market only, NB = no battery;\n" +
			"expected: cost ↑ with ε; TM < RTM; cost ↓ with Bmax.",
		Columns: []string{"configuration", "cost $/slot", "mean delay", "battery ops"},
	}
	for i, v := range variants {
		rep := reports[i]
		t.AddRow(v.label, fmtUSD(rep.TimeAvgCostUSD), fmtF(rep.MeanDelaySlots),
			fmt.Sprintf("%d", rep.BatteryOps))
	}
	return t, nil
}
