package experiments

import (
	"fmt"

	dpss "github.com/smartdpss/smartdpss"
)

// Fig7EpsilonValues are the delay-control parameters of Fig. 7.
var Fig7EpsilonValues = []float64{0.25, 0.5, 1, 2}

// Fig7BatteryMinutes are the UPS sizes of Fig. 7 (minutes of peak demand).
var Fig7BatteryMinutes = []float64{0, 15, 30}

// Fig7Factors reproduces Fig. 7: the impact of ε, the market structure
// (two markets "TM" vs real-time only "RTM") and the battery size Bmax on
// time-average total cost, with V = 1 and T = 24. The paper's reading:
// cost ↑ with ε; TM < RTM; cost ↓ with Bmax; and the benefit ordering is
// battery > market structure > ε.
func Fig7Factors(cfg Config) (*Table, error) {
	traces, err := dpss.GenerateTraces(cfg.traceConfig())
	if err != nil {
		return nil, err
	}
	base := dpss.DefaultOptions()

	t := &Table{
		Title: "Fig. 7 — impact of ε, market structure and Bmax on time-average total cost",
		Note: "V=1, T=24; TM = two-timescale markets, RTM = real-time market only, NB = no battery;\n" +
			"expected: cost ↑ with ε; TM < RTM; cost ↓ with Bmax.",
		Columns: []string{"configuration", "cost $/slot", "mean delay", "battery ops"},
	}

	addRun := func(label string, o dpss.Options) error {
		rep, err := simulate(dpss.PolicySmartDPSS, o, traces)
		if err != nil {
			return err
		}
		t.AddRow(label, fmtUSD(rep.TimeAvgCostUSD), fmtF(rep.MeanDelaySlots),
			fmt.Sprintf("%d", rep.BatteryOps))
		return nil
	}

	// ε sweep (TM, Bmax = 15 min).
	for _, eps := range Fig7EpsilonValues {
		o := base
		o.Epsilon = eps
		if err := addRun(fmt.Sprintf("eps=%.2f TM Bmax=15", eps), o); err != nil {
			return nil, err
		}
	}

	// Market structure (ε = 0.5, Bmax = 15 min).
	rtm := base
	rtm.DisableLongTerm = true
	if err := addRun("eps=0.50 RTM Bmax=15", rtm); err != nil {
		return nil, err
	}

	// Battery sizes (TM, ε = 0.5).
	for _, minutes := range Fig7BatteryMinutes {
		o := base
		o.BatteryMinutes = minutes
		label := fmt.Sprintf("eps=0.50 TM Bmax=%g", minutes)
		if minutes == 0 {
			label = "eps=0.50 TM NB (no battery)"
		}
		if err := addRun(label, o); err != nil {
			return nil, err
		}
	}
	return t, nil
}
