package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// fastConfig keeps experiment tests quick: one week, no offline columns
// where they dominate runtime.
func fastConfig() Config {
	return Config{Days: 7, Seed: 1, SkipOffline: true}
}

// cell parses a table cell as a float, stripping formatting.
func cell(t *testing.T, tbl *Table, row, col int) float64 {
	t.Helper()
	raw := tbl.Rows[row][col]
	raw = strings.TrimSuffix(raw, "%")
	raw = strings.TrimPrefix(raw, "+")
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q is not numeric: %v", row, col, tbl.Rows[row][col], err)
	}
	return v
}

func TestFig5Traces(t *testing.T) {
	tbl, err := Fig5Traces(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 series", len(tbl.Rows))
	}
	names := []string{"demand_ds", "demand_dt", "renewable", "price_lt", "price_rt"}
	for i, want := range names {
		if tbl.Rows[i][0] != want {
			t.Errorf("row %d series = %q, want %q", i, tbl.Rows[i][0], want)
		}
	}
	// price_rt mean (row 4, col "mean" = 2) must exceed price_lt mean.
	if cell(t, tbl, 4, 2) <= cell(t, tbl, 3, 2) {
		t.Error("real-time price mean must exceed long-term mean")
	}
	// Solar min must be 0 (night).
	if cell(t, tbl, 2, 4) != 0 {
		t.Error("solar min must be zero")
	}
}

func TestExportFig5CSV(t *testing.T) {
	var buf bytes.Buffer
	if err := ExportFig5CSV(fastConfig(), &buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 7*24+1 {
		t.Fatalf("csv lines = %d, want %d", len(lines), 7*24+1)
	}
	if !strings.HasPrefix(lines[0], "slot,demand_ds") {
		t.Errorf("csv header = %q", lines[0])
	}
}

func TestFig6VSweepShape(t *testing.T) {
	tbl, err := Fig6VSweep(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != len(Fig6VValues) {
		t.Fatalf("rows = %d, want %d", len(tbl.Rows), len(Fig6VValues))
	}
	first := 0
	last := len(tbl.Rows) - 1
	// Fig. 6(a): cost decreases from the smallest to the largest V.
	if cell(t, tbl, last, 1) >= cell(t, tbl, first, 1) {
		t.Errorf("cost at V=%s (%s) not below cost at V=%s (%s)",
			tbl.Rows[last][0], tbl.Rows[last][1], tbl.Rows[first][0], tbl.Rows[first][1])
	}
	// Fig. 6(b): delay increases from the smallest to the largest V.
	if cell(t, tbl, last, 2) <= cell(t, tbl, first, 2) {
		t.Errorf("delay at V=%s not above delay at V=%s", tbl.Rows[last][0], tbl.Rows[first][0])
	}
	// Impatient has the lowest delay of all.
	for r := range tbl.Rows {
		if cell(t, tbl, r, 4) > cell(t, tbl, r, 2) {
			t.Errorf("row %d: Impatient delay %s above SmartDPSS %s",
				r, tbl.Rows[r][4], tbl.Rows[r][2])
		}
	}
}

func TestFig6VSweepWithOffline(t *testing.T) {
	cfg := fastConfig()
	cfg.SkipOffline = false
	tbl, err := Fig6VSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Offline cost must be below Impatient cost in every row.
	for r := range tbl.Rows {
		if cell(t, tbl, r, 5) >= cell(t, tbl, r, 3) {
			t.Errorf("row %d: offline %s not below impatient %s",
				r, tbl.Rows[r][5], tbl.Rows[r][3])
		}
	}
}

func TestFig6TSweepShape(t *testing.T) {
	tbl, err := Fig6TSweep(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != len(Fig6TValues) {
		t.Fatalf("rows = %d, want %d", len(tbl.Rows), len(Fig6TValues))
	}
	// Delay direction: the paper contradicts itself on Fig. 6(d) — it
	// claims "delay decreases with the increase of T" but argues in the
	// same paragraph that "with more frequent (smaller T) power
	// management, the power demand is easier to meet (less delay)". The
	// implementation follows the stated rationale: state-freezing over
	// longer intervals lengthens waits, so delay grows with T (see
	// EXPERIMENTS.md).
	if cell(t, tbl, len(tbl.Rows)-1, 3) <= cell(t, tbl, 0, 3) {
		t.Errorf("delay at T=%s not above delay at T=%s",
			tbl.Rows[len(tbl.Rows)-1][0], tbl.Rows[0][0])
	}
	// Fig. 6(c): cost varies within a modest band (paper: −3.65%..+6.23%;
	// allow a wider band for the short synthetic horizon).
	for r := range tbl.Rows {
		if v := cell(t, tbl, r, 2); v < -20 || v > 20 {
			t.Errorf("row %d: cost deviation %s exceeds ±20%%", r, tbl.Rows[r][2])
		}
	}
}

func TestFig7FactorsShape(t *testing.T) {
	tbl, err := Fig7Factors(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Rows: 4 ε values, then RTM, then Bmax ∈ {0, 15, 30}.
	if len(tbl.Rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(tbl.Rows))
	}
	// ε raises cost: eps=0.25 (row 0) <= eps=2 (row 3), and delay falls.
	if cell(t, tbl, 0, 1) > cell(t, tbl, 3, 1) {
		t.Errorf("cost at eps=0.25 (%s) above cost at eps=2 (%s)",
			tbl.Rows[0][1], tbl.Rows[3][1])
	}
	if cell(t, tbl, 0, 2) < cell(t, tbl, 3, 2) {
		t.Errorf("delay at eps=0.25 (%s) below delay at eps=2 (%s): ε should shorten waits",
			tbl.Rows[0][2], tbl.Rows[3][2])
	}
	// TM (row 1: eps=0.5) beats RTM (row 4).
	if cell(t, tbl, 1, 1) >= cell(t, tbl, 4, 1) {
		t.Errorf("TM cost %s not below RTM cost %s", tbl.Rows[1][1], tbl.Rows[4][1])
	}
	// Battery: NB (row 5) >= Bmax=15 (row 6) >= Bmax=30 (row 7).
	if cell(t, tbl, 5, 1) < cell(t, tbl, 6, 1) {
		t.Errorf("no-battery cost %s below Bmax=15 cost %s", tbl.Rows[5][1], tbl.Rows[6][1])
	}
	if cell(t, tbl, 6, 1) < cell(t, tbl, 7, 1)-0.5 {
		t.Errorf("Bmax=15 cost %s well below Bmax=30 cost %s", tbl.Rows[6][1], tbl.Rows[7][1])
	}
	// No battery ⇒ zero battery operations.
	if cell(t, tbl, 5, 3) != 0 {
		t.Errorf("no-battery ops = %s, want 0", tbl.Rows[5][3])
	}
}

func TestFig8PenetrationShape(t *testing.T) {
	tbl, err := Fig8Penetration(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	nPen := len(Fig8PenetrationLevels)
	nVar := len(Fig8VariationFactors)
	if len(tbl.Rows) != nPen+nVar {
		t.Fatalf("rows = %d, want %d", len(tbl.Rows), nPen+nVar)
	}
	// Cost falls with penetration: essentially monotone (allow 1%
	// flattening near saturation) and strongly lower at 100% than at 0%.
	for r := 1; r < nPen; r++ {
		if cell(t, tbl, r, 2) > cell(t, tbl, r-1, 2)*1.01 {
			t.Errorf("cost at %s (%s) above cost at %s (%s)",
				tbl.Rows[r][1], tbl.Rows[r][2], tbl.Rows[r-1][1], tbl.Rows[r-1][2])
		}
	}
	if cell(t, tbl, nPen-1, 2) > 0.85*cell(t, tbl, 0, 2) {
		t.Errorf("cost at full penetration (%s) not well below zero-penetration (%s)",
			tbl.Rows[nPen-1][2], tbl.Rows[0][2])
	}
	// Demand variation rises across the variation rows.
	if cell(t, tbl, nPen+nVar-1, 4) <= cell(t, tbl, nPen, 4) {
		t.Error("demand std must grow with the variation factor")
	}
	// The variation trend is upward overall (the paper: cost increases
	// slightly with variation); compare the extremes rather than demand
	// per-step monotonicity.
	if cell(t, tbl, nPen+nVar-1, 2) <= cell(t, tbl, nPen+2, 2) {
		t.Errorf("cost at k=1.5 (%s) not above baseline k=1.0 (%s)",
			tbl.Rows[nPen+nVar-1][2], tbl.Rows[nPen+2][2])
	}
}

func TestFig9RobustnessShape(t *testing.T) {
	tbl, err := Fig9Robustness(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != len(Fig6VValues) {
		t.Fatalf("rows = %d, want %d", len(tbl.Rows), len(Fig6VValues))
	}
	// The paper-protocol reduction difference stays bounded for every V
	// (paper: within [−1.6, +2.1] pp over a month; allow ±8 pp for the
	// one-week test horizon).
	for r := range tbl.Rows {
		if d := cell(t, tbl, r, 3); d < -8 || d > 8 {
			t.Errorf("row %d (V=%s): difference %s pp outside ±8",
				r, tbl.Rows[r][0], tbl.Rows[r][3])
		}
	}
	// The stricter observation-noise protocol must still leave SmartDPSS
	// no more than modestly behind Impatient at mid/large V.
	for r := 3; r < len(tbl.Rows); r++ {
		if d := cell(t, tbl, r, 4); d < -10 {
			t.Errorf("row %d (V=%s): obs-noise reduction %s below -10%%",
				r, tbl.Rows[r][0], tbl.Rows[r][4])
		}
	}
}

func TestFig10ScalingShape(t *testing.T) {
	tbl, err := Fig10Scaling(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != len(Fig10Betas) {
		t.Fatalf("rows = %d, want %d", len(tbl.Rows), len(Fig10Betas))
	}
	// Total cost grows with β...
	for r := 1; r < len(tbl.Rows); r++ {
		if cell(t, tbl, r, 1) <= cell(t, tbl, r-1, 1) {
			t.Errorf("cost at beta=%s not above beta=%s", tbl.Rows[r][0], tbl.Rows[r-1][0])
		}
	}
	// ...and the growth is near-linear: the per-unit cost stays within a
	// moderate band of the β=1 level. (The paper claims the growth rate
	// slows, attributing it to revenue amortization, which is outside
	// the cost model; see EXPERIMENTS.md.)
	if cell(t, tbl, len(tbl.Rows)-1, 2) > cell(t, tbl, 0, 2)*1.35 {
		t.Errorf("per-unit cost grew superlinearly: %s vs %s",
			tbl.Rows[len(tbl.Rows)-1][2], tbl.Rows[0][2])
	}
	// Demand must remain served at scale (Pgrid scales with β).
	for r := range tbl.Rows {
		if cell(t, tbl, r, 4) > 1 {
			t.Errorf("beta=%s: unserved %s MWh", tbl.Rows[r][0], tbl.Rows[r][4])
		}
	}
}

func TestTableFprint(t *testing.T) {
	tbl := &Table{
		Title:   "demo",
		Note:    "a note",
		Columns: []string{"a", "long-column"},
	}
	tbl.AddRow("1", "2")
	tbl.AddRow("333333", "4")
	var buf bytes.Buffer
	if err := tbl.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"## demo", "a note", "long-column", "333333"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestAllRunners(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep in -short mode")
	}
	cfg := fastConfig()
	tables, err := All(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 7 {
		t.Fatalf("tables = %d, want 7", len(tables))
	}
	var buf bytes.Buffer
	for _, tbl := range tables {
		if err := tbl.Fprint(&buf); err != nil {
			t.Fatal(err)
		}
	}
	if buf.Len() == 0 {
		t.Fatal("no output")
	}
}

// TestDeterminism: the same config must reproduce identical tables.
func TestDeterminism(t *testing.T) {
	a, err := Fig6VSweep(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig6VSweep(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	for r := range a.Rows {
		for c := range a.Rows[r] {
			if a.Rows[r][c] != b.Rows[r][c] {
				t.Fatalf("non-deterministic cell (%d,%d): %q vs %q", r, c, a.Rows[r][c], b.Rows[r][c])
			}
		}
	}
}
