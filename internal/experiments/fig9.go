package experiments

import (
	"fmt"

	dpss "github.com/smartdpss/smartdpss"
)

// Fig9Robustness reproduces Fig. 9: the impact of estimation errors on
// operation-cost reduction. Following Sec. VI-C, uniform ±50% errors are
// injected into the dataset (demand, solar production, prices) and
// SmartDPSS "makes all the control decisions based on the data set with
// random errors"; the resulting cost reduction over Impatient is compared
// against the clean-trace reduction. The paper finds the difference
// fluctuates only within [−1.6%, +2.1%] across V.
//
// The table also reports an "obs-noise" column — a stricter protocol this
// library supports where only the controller's *observations* are noisy
// while execution uses the true traces (see Options.ObservationNoise);
// mis-planned slots then settle reactively on the real-time market, so
// the measured sensitivity is larger. EXPERIMENTS.md discusses both.
func Fig9Robustness(cfg Config) (*Table, error) {
	clean, err := dpss.GenerateTraces(cfg.traceConfig())
	if err != nil {
		return nil, err
	}
	base := dpss.DefaultOptions()
	noisy, err := clean.PerturbUniform(cfg.Seed+977, 0.5, base.PmaxUSD)
	if err != nil {
		return nil, err
	}

	impClean, err := simulate(dpss.PolicyImpatient, base, clean)
	if err != nil {
		return nil, err
	}
	impNoisy, err := simulate(dpss.PolicyImpatient, base, noisy)
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title: "Fig. 9 — impact of ±50% estimation errors on cost reduction",
		Note: "reduction = 1 − cost(SmartDPSS)/cost(Impatient), each pair on the same dataset;\n" +
			"difference = noisy − clean in percentage points (paper: within [−1.6%, +2.1%]);\n" +
			"obs-noise = extension protocol where only observations are perturbed.",
		Columns: []string{"V", "clean reduction", "noisy reduction", "difference (pp)", "obs-noise reduction"},
	}
	for _, v := range Fig6VValues {
		opts := base
		opts.V = v
		cleanRep, err := simulate(dpss.PolicySmartDPSS, opts, clean)
		if err != nil {
			return nil, err
		}
		noisyRep, err := simulate(dpss.PolicySmartDPSS, opts, noisy)
		if err != nil {
			return nil, err
		}
		obsOpts := opts
		obsOpts.ObservationNoise = 0.5
		obsOpts.NoiseSeed = cfg.Seed + 978
		obsRep, err := simulate(dpss.PolicySmartDPSS, obsOpts, clean)
		if err != nil {
			return nil, err
		}

		cleanRed := 1 - cleanRep.TotalCostUSD/impClean.TotalCostUSD
		noisyRed := 1 - noisyRep.TotalCostUSD/impNoisy.TotalCostUSD
		obsRed := 1 - obsRep.TotalCostUSD/impClean.TotalCostUSD
		t.AddRow(fmt.Sprintf("%.2f", v),
			fmtPct(cleanRed), fmtPct(noisyRed), fmtPct(noisyRed-cleanRed), fmtPct(obsRed))
	}
	return t, nil
}
