package experiments

import (
	"fmt"

	dpss "github.com/smartdpss/smartdpss/internal/engine"
	"github.com/smartdpss/smartdpss/internal/suite"
)

// Fig9Robustness reproduces Fig. 9: the impact of estimation errors on
// operation-cost reduction. Following Sec. VI-C, uniform ±50% errors are
// injected into the dataset (demand, solar production, prices) and
// SmartDPSS "makes all the control decisions based on the data set with
// random errors"; the resulting cost reduction over Impatient is compared
// against the clean-trace reduction. The paper finds the difference
// fluctuates only within [−1.6%, +2.1%] across V.
//
// The table also reports an "obs-noise" column — a stricter protocol this
// library supports where only the controller's *observations* are noisy
// while execution uses the true traces (see Options.ObservationNoise);
// mis-planned slots then settle reactively on the real-time market, so
// the measured sensitivity is larger. EXPERIMENTS.md discusses both.
//
// The two Impatient baselines and each V point (three simulations per
// point) run as independent pool jobs.
func Fig9Robustness(cfg Config) (*Table, error) {
	clean, err := baseTraces(cfg)
	if err != nil {
		return nil, err
	}
	base := dpss.DefaultOptions()
	noisy, err := clean.PerturbUniform(cfg.Seed+977, 0.5, base.PmaxUSD)
	if err != nil {
		return nil, err
	}

	// Per-V triples: decisions on the noisy dataset, on the clean one,
	// and under observation noise.
	type point struct {
		clean, noisy, obs *dpss.Report
	}
	nV := len(Fig6VValues)
	jobs := nV + 2 // trailing jobs: Impatient on clean and noisy traces
	results, err := suite.Map(cfg, jobs, func(i int) (point, error) {
		switch i {
		case nV:
			rep, err := simulate(dpss.PolicyImpatient, base, clean)
			return point{clean: rep}, err
		case nV + 1:
			rep, err := simulate(dpss.PolicyImpatient, base, noisy)
			return point{noisy: rep}, err
		}
		opts := base
		opts.V = Fig6VValues[i]
		var p point
		var err error
		if p.clean, err = simulate(dpss.PolicySmartDPSS, opts, clean); err != nil {
			return p, err
		}
		if p.noisy, err = simulate(dpss.PolicySmartDPSS, opts, noisy); err != nil {
			return p, err
		}
		obsOpts := opts
		obsOpts.ObservationNoise = 0.5
		obsOpts.NoiseSeed = cfg.Seed + 978
		p.obs, err = simulate(dpss.PolicySmartDPSS, obsOpts, clean)
		return p, err
	})
	if err != nil {
		return nil, err
	}
	impClean := results[nV].clean
	impNoisy := results[nV+1].noisy

	t := &Table{
		Title: "Fig. 9 — impact of ±50% estimation errors on cost reduction",
		Note: "reduction = 1 − cost(SmartDPSS)/cost(Impatient), each pair on the same dataset;\n" +
			"difference = noisy − clean in percentage points (paper: within [−1.6%, +2.1%]);\n" +
			"obs-noise = extension protocol where only observations are perturbed.",
		Columns: []string{"V", "clean reduction", "noisy reduction", "difference (pp)", "obs-noise reduction"},
	}
	for i, v := range Fig6VValues {
		p := results[i]
		cleanRed := 1 - p.clean.TotalCostUSD/impClean.TotalCostUSD
		noisyRed := 1 - p.noisy.TotalCostUSD/impNoisy.TotalCostUSD
		obsRed := 1 - p.obs.TotalCostUSD/impClean.TotalCostUSD
		t.AddRow(fmt.Sprintf("%.2f", v),
			fmtPct(cleanRed), fmtPct(noisyRed), fmtPct(noisyRed-cleanRed), fmtPct(obsRed))
	}
	return t, nil
}
