package experiments

// The "fleet" scenario family evaluates the multi-unit generator fleet
// and its unit-commitment lookahead: how nameplate should be divided
// across unit sizes (FLEET-1), what the commitment window W recovers
// near the fuel break-even that the myopic arm leaves on the table
// (FLEET-2, the ROADMAP's "underuses small units" note), and the
// cost-vs-emissions frontier a carbon price traces over a dirty/clean
// fleet (FLEET-3). Every sweep point is an independent pool job, so the
// tables are byte-identical at any parallelism level.

import (
	"fmt"

	dpss "github.com/smartdpss/smartdpss/internal/engine"
	"github.com/smartdpss/smartdpss/internal/suite"
)

// FleetMixSplits are the FLEET-1 fleet compositions: one nameplate MW
// divided into equal units (1 big unit, 2 halves, 4 quarters).
var FleetMixSplits = []int{1, 2, 4}

// fleetMixNameplateMW is the total capacity shared by every FLEET-1
// composition.
const fleetMixNameplateMW = 1.0

// fleetMixUnits builds an n-way split of the shared nameplate: each
// unit keeps the family's 40% minimum stable load and a startup cost
// proportional to its size ($40 per MW), so compositions differ only in
// granularity. Fuel sits at 36 $/MWh — below the long-term price level
// (~38), the baseload regime where the commitment lookahead holds units
// on and P4 plans around their capacity.
func fleetMixUnits(n int) []dpss.UnitSpec {
	units := make([]dpss.UnitSpec, n)
	for i := range units {
		cap := fleetMixNameplateMW / float64(n)
		units[i] = dpss.UnitSpec{
			CapacityMW:    cap,
			MinLoadFrac:   0.4,
			FuelUSDPerMWh: 36,
			StartupUSD:    40 * cap,
		}
	}
	return units
}

// FleetMix compares fleet granularities at equal nameplate (FLEET-1):
// one big unit versus N small ones. Expected reading: the monolith's
// 0.4 MWh minimum stable load overshoots the overnight residual demand
// and wastes the surplus, while smaller units commit only the
// granularity the demand envelope supports — so savings grow with the
// split even as per-unit starts multiply, the provisioning argument
// for modular generation.
func FleetMix(cfg Config) (*Table, error) {
	traces, err := baseTraces(cfg)
	if err != nil {
		return nil, err
	}
	reports, err := suite.Map(cfg, len(FleetMixSplits)+1, func(i int) (*dpss.Report, error) {
		o := dpss.DefaultOptions()
		o.CommitWindow = 12 // the lookahead arm: FLEET-2 shows why
		if i > 0 {
			o.Fleet = fleetMixUnits(FleetMixSplits[i-1])
		}
		return simulate(dpss.PolicySmartDPSS, o, traces)
	})
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title: "FLEET-1 — one nameplate MW split across 1, 2 or 4 equal units",
		Note: "SmartDPSS, V=1, T=24, W=12; fuel 36 $/MWh, min load 40%, startup $40/MW;\n" +
			"'saving' is against the fleet-free row; expected: the monolith wastes\n" +
			"min-load energy overnight while finer splits track the residual demand,\n" +
			"so saving grows with granularity.",
		Columns: []string{"fleet", "cost $/slot", "saving", "gen MWh", "starts", "waste MWh", "mean delay"},
	}
	base := reports[0]
	for i, rep := range reports {
		label := "none"
		if i > 0 {
			n := FleetMixSplits[i-1]
			label = fmt.Sprintf("%dx %.2f MW", n, fleetMixNameplateMW/float64(n))
		}
		t.AddRow(label,
			fmtUSD(rep.TimeAvgCostUSD),
			fmtPct(1-rep.TotalCostUSD/base.TotalCostUSD),
			fmtF(rep.GenEnergyMWh),
			fmt.Sprintf("%d", rep.GenStarts),
			fmtF(rep.WasteMWh),
			fmtF(rep.MeanDelaySlots),
		)
	}
	return t, nil
}

// FleetUCWindows are the FLEET-2 commitment-window values (fine slots);
// 1 is the myopic amortized-hysteresis arm.
var FleetUCWindows = []int{1, 4, 12, 24, 48}

// fleetUCUnit is the FLEET-2 study unit: small and near the fuel
// break-even (fuel 45 between the long-term level ~38 and the real-time
// mean ~47), exactly where the ROADMAP notes the myopic arm flaps.
func fleetUCUnit() []dpss.UnitSpec {
	return []dpss.UnitSpec{{CapacityMW: 0.25, MinLoadFrac: 0.2, FuelUSDPerMWh: 45, StartupUSD: 15}}
}

// FleetUC sweeps the unit-commitment window W at a near-break-even fuel
// point (FLEET-2). Expected reading: the myopic W=1 arm pays for dozens
// of cold starts as real-time prices cross the marginal fuel price slot
// by slot; a modest lookahead holds the unit through the dips, cutting
// starts by an order of magnitude and recovering the savings the
// ROADMAP flagged as left on the table.
func FleetUC(cfg Config) (*Table, error) {
	traces, err := baseTraces(cfg)
	if err != nil {
		return nil, err
	}
	reports, err := suite.Map(cfg, len(FleetUCWindows), func(i int) (*dpss.Report, error) {
		o := dpss.DefaultOptions()
		o.Fleet = fleetUCUnit()
		o.CommitWindow = FleetUCWindows[i]
		return simulate(dpss.PolicySmartDPSS, o, traces)
	})
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title: "FLEET-2 — unit-commitment window W at a near-break-even fuel price",
		Note: "SmartDPSS, one 0.25 MW unit, fuel 45 $/MWh, startup $15; W=1 is the\n" +
			"myopic amortized-hysteresis arm; 'saving' is against that row;\n" +
			"expected: the lookahead slashes cold starts and strictly beats W=1.",
		Columns: []string{"W (slots)", "cost $/slot", "saving", "gen MWh", "starts", "startup $"},
	}
	base := reports[0]
	for i, rep := range reports {
		t.AddRow(
			fmt.Sprintf("%d", FleetUCWindows[i]),
			fmtUSD(rep.TimeAvgCostUSD),
			fmtPct(1-rep.TotalCostUSD/base.TotalCostUSD),
			fmtF(rep.GenEnergyMWh),
			fmt.Sprintf("%d", rep.GenStarts),
			fmtUSD(rep.GenStartupUSD),
		)
	}
	return t, nil
}

// FleetCO2Prices are the FLEET-3 carbon prices in USD per ton of CO₂.
// The sweep brackets the dirty/clean merit crossover (~$7/t for the
// units below) and the price level that shuts on-site generation down
// entirely against this trace's grid prices.
var FleetCO2Prices = []float64{0, 10, 20, 40, 80}

// fleetCO2Units is the FLEET-3 fleet: a cheap, dirty unit (think
// diesel) next to a pricier, cleaner one (think gas turbine). A rising
// carbon price first reorders their merit, then prices both out.
func fleetCO2Units() []dpss.UnitSpec {
	return []dpss.UnitSpec{
		{CapacityMW: 0.5, MinLoadFrac: 0.2, FuelUSDPerMWh: 39, StartupUSD: 10, CO2KgPerMWh: 850},
		{CapacityMW: 0.5, MinLoadFrac: 0.2, FuelUSDPerMWh: 43, StartupUSD: 10, CO2KgPerMWh: 250},
	}
}

// FleetCO2 traces the cost-vs-emissions frontier under a carbon price
// sweep (FLEET-3). Expected reading: emissions fall monotonically with
// the carbon price — first by shifting dispatch from the dirty to the
// clean unit (their merit order flips near $7/t where 39 + 0.85·p
// crosses 43 + 0.25·p), then by shutting on-site generation down — while
// the billed cost rises, sketching the frontier a carbon-aware operator
// moves along.
func FleetCO2(cfg Config) (*Table, error) {
	traces, err := baseTraces(cfg)
	if err != nil {
		return nil, err
	}
	reports, err := suite.Map(cfg, len(FleetCO2Prices), func(i int) (*dpss.Report, error) {
		o := dpss.DefaultOptions()
		o.Fleet = fleetCO2Units()
		o.CommitWindow = 12
		o.CarbonUSDPerTon = FleetCO2Prices[i]
		return simulate(dpss.PolicySmartDPSS, o, traces)
	})
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title: "FLEET-3 — cost vs emissions under a carbon price (dirty + clean unit)",
		Note: "SmartDPSS, W=12; dirty: 0.5 MW, fuel 39, 850 kg/MWh; clean: 0.5 MW,\n" +
			"fuel 43, 250 kg/MWh; the carbon charge is folded into each unit's\n" +
			"marginal price; expected: CO2 falls monotonically as the price rises.",
		Columns: []string{"carbon $/t", "cost $/slot", "co2 t", "dirty MWh", "clean MWh", "gen share"},
	}
	for i, rep := range reports {
		dirty, clean := 0.0, 0.0
		if len(rep.GenUnits) == 2 {
			dirty, clean = rep.GenUnits[0].EnergyMWh, rep.GenUnits[1].EnergyMWh
		}
		supplied := rep.LTEnergyMWh + rep.RTEnergyMWh + rep.RenewableMWh + rep.GenEnergyMWh
		share := 0.0
		if supplied > 0 {
			share = rep.GenEnergyMWh / supplied
		}
		t.AddRow(
			fmt.Sprintf("%g", FleetCO2Prices[i]),
			fmtUSD(rep.TimeAvgCostUSD),
			fmtF(rep.GenCO2Kg/1000),
			fmtF(dirty),
			fmtF(clean),
			fmtPct(share),
		)
	}
	return t, nil
}
