package experiments

import (
	"fmt"

	dpss "github.com/smartdpss/smartdpss/internal/engine"
	"github.com/smartdpss/smartdpss/internal/suite"
)

// ExtForesightValues are the lookahead windows (fine slots) swept by
// ExtForesight.
var ExtForesightValues = []int{1, 6, 24}

// ExtForesight (EXT-5) prices perfect short-range forecasts: it compares
// forecast-free SmartDPSS against receding-horizon Lookahead controllers
// with growing windows of perfect foresight (the "T-Step Lookahead" family
// of the paper's related work [29], [30]) and the clairvoyant offline
// benchmark. The gap between SmartDPSS and Lookahead(W) is the most a
// W-slot forecaster could be worth; the paper's thesis is that this gap
// is small — Lyapunov control extracts most of the value without any
// forecasting machinery. SmartDPSS, every window and the offline
// benchmark run as independent pool jobs.
func ExtForesight(cfg Config) (*Table, error) {
	traces, err := baseTraces(cfg)
	if err != nil {
		return nil, err
	}
	opts := dpss.DefaultOptions()

	// Job 0 is SmartDPSS, jobs 1..len(W) the lookahead windows, and the
	// last job the offline benchmark (skipped under SkipOffline).
	nW := len(ExtForesightValues)
	reports, err := suite.Map(cfg, nW+2, func(i int) (*dpss.Report, error) {
		switch {
		case i == 0:
			return simulate(dpss.PolicySmartDPSS, opts, traces)
		case i == nW+1:
			if cfg.SkipOffline {
				return nil, nil
			}
			return simulate(dpss.PolicyOfflineOptimal, opts, traces)
		default:
			o := opts
			o.LookaheadWindow = ExtForesightValues[i-1]
			return simulate(dpss.PolicyLookahead, o, traces)
		}
	})
	if err != nil {
		return nil, err
	}
	smart := reports[0]

	t := &Table{
		Title: "EXT-5 — the value of foresight: SmartDPSS vs T-step lookahead",
		Note: "V=1, T=24, Bmax=15 min; Lookahead(W) re-solves an LP over the next W slots with\n" +
			"perfect foresight each slot; SmartDPSS uses none. Expected: foresight helps, but the\n" +
			"forecast-free Lyapunov policy stays close.",
		Columns: []string{"controller", "cost $/slot", "mean delay", "vs SmartDPSS"},
	}
	t.AddRow("SmartDPSS (no foresight)", fmtUSD(smart.TimeAvgCostUSD),
		fmtF(smart.MeanDelaySlots), "+0.00%")
	for i, w := range ExtForesightValues {
		rep := reports[i+1]
		t.AddRow(fmt.Sprintf("Lookahead(%d)", w), fmtUSD(rep.TimeAvgCostUSD),
			fmtF(rep.MeanDelaySlots), fmtPct(rep.TimeAvgCostUSD/smart.TimeAvgCostUSD-1))
	}
	if off := reports[nW+1]; off != nil {
		t.AddRow("OfflineOptimal (full)", fmtUSD(off.TimeAvgCostUSD),
			fmtF(off.MeanDelaySlots), fmtPct(off.TimeAvgCostUSD/smart.TimeAvgCostUSD-1))
	}
	return t, nil
}
