package experiments

import (
	"bytes"
	"testing"

	"github.com/smartdpss/smartdpss/internal/suite"
)

// TestScenariosRegistered: every runner in this package must be in the
// registry, paper figures first.
func TestScenariosRegistered(t *testing.T) {
	want := []string{"fig5", "fig6v", "fig6t", "fig7", "fig8", "fig9", "fig10",
		"ext-peak", "ext-cycle", "ext-mix", "ext-est", "ext-mpc", "ext-seeds", "ext-cool",
		"prov-grid", "prov-fuel", "prov-vt",
		"fleet-mix", "fleet-uc", "fleet-co2"}
	var got []string
	for _, s := range suite.Scenarios() {
		if s.HasTag(TagPaper) || s.HasTag(TagExt) || s.HasTag(TagProvision) || s.HasTag(TagFleet) {
			got = append(got, s.Name)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("registered = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registered[%d] = %q, want %q (order matters)", i, got[i], want[i])
		}
	}
	paper, err := suite.Select(TagPaper)
	if err != nil {
		t.Fatal(err)
	}
	if len(paper) != 7 {
		t.Fatalf("paper scenarios = %d, want 7", len(paper))
	}
	prov, err := suite.Select(TagProvision)
	if err != nil {
		t.Fatal(err)
	}
	if len(prov) != 3 {
		t.Fatalf("provision scenarios = %d, want 3", len(prov))
	}
	fleet, err := suite.Select(TagFleet)
	if err != nil {
		t.Fatal(err)
	}
	if len(fleet) != 3 {
		t.Fatalf("fleet scenarios = %d, want 3", len(fleet))
	}
	geoScen, err := suite.Select(TagGeo)
	if err != nil {
		t.Fatal(err)
	}
	wantGeo := []string{"geo-div", "geo-scale", "geo-lat"}
	if len(geoScen) != len(wantGeo) {
		t.Fatalf("geo scenarios = %d, want %d", len(geoScen), len(wantGeo))
	}
	for i := range wantGeo {
		if geoScen[i].Name != wantGeo[i] {
			t.Fatalf("geo[%d] = %q, want %q (order matters)", i, geoScen[i].Name, wantGeo[i])
		}
	}
	tuneScen, err := suite.Select(TagTune)
	if err != nil {
		t.Fatal(err)
	}
	wantTune := []string{"tune-gap", "tune-xfer", "tune-frontier"}
	if len(tuneScen) != len(wantTune) {
		t.Fatalf("tune scenarios = %d, want %d", len(tuneScen), len(wantTune))
	}
	for i := range wantTune {
		if tuneScen[i].Name != wantTune[i] {
			t.Fatalf("tune[%d] = %q, want %q (order matters)", i, tuneScen[i].Name, wantTune[i])
		}
	}
}

// renderSuite runs every registered experiment scenario — the paper
// figures, the extensions, the provisioning family, the fleet family,
// the geo family and the tune family — and renders all tables into one
// byte stream.
func renderSuite(t *testing.T, cfg Config) []byte {
	t.Helper()
	tables, err := suite.RunSuite(cfg, TagPaper, TagExt, TagProvision, TagFleet, TagGeo, TagTune)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, tbl := range tables {
		if err := tbl.Fprint(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestSuiteParallelDeterminism is the tentpole invariant: the full suite
// at -parallel 1 and -parallel 8 must produce byte-identical tables at a
// fixed seed.
func TestSuiteParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite twice in -short mode")
	}
	cfg := Config{Days: 7, Seed: 1, SkipOffline: true, Seeds: 3, Parallel: 1}
	sequential := renderSuite(t, cfg)
	if len(sequential) == 0 {
		t.Fatal("no output")
	}
	cfg.Parallel = 8
	parallel := renderSuite(t, cfg)
	if !bytes.Equal(sequential, parallel) {
		t.Fatalf("suite output differs between -parallel 1 and -parallel 8:\n--- parallel=1 ---\n%s\n--- parallel=8 ---\n%s",
			sequential, parallel)
	}
}

// TestSuiteMatchesDirectRunners: a scenario run through the registry and
// pool must equal the direct function call (the pre-suite code path).
func TestSuiteMatchesDirectRunners(t *testing.T) {
	cfg := Config{Days: 7, Seed: 1, SkipOffline: true, Parallel: 4}
	direct, err := Fig7Factors(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tables, err := suite.RunSuite(cfg, "fig7")
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := direct.Fprint(&a); err != nil {
		t.Fatal(err)
	}
	if err := tables[0].Fprint(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("registry run differs from direct call:\n%s\nvs\n%s", a.String(), b.String())
	}
}
