package experiments

import "github.com/smartdpss/smartdpss/internal/suite"

// Scenario tags. Every runner carries exactly one of "paper"/"ext" plus
// any trait tags that cut across that split.
const (
	// TagPaper marks the figures of the paper's own evaluation
	// (Sec. VI), in paper order.
	TagPaper = "paper"
	// TagExt marks the extension studies beyond the paper's evaluation.
	TagExt = "ext"
	// TagProvision marks the on-site power provisioning family
	// (arXiv:1303.6775): generator/battery sizing, fuel sensitivity and
	// the wide V×T cross sweep.
	TagProvision = "provision"
	// TagFleet marks the multi-unit generator-fleet family: fleet
	// granularity, the unit-commitment lookahead window, and the
	// carbon-price cost/emissions frontier.
	TagFleet = "fleet"
	// TagAnnual marks the year-long (8760-slot) scenario family
	// unlocked by the sparse revised simplex. It is outside the default
	// paper/ext split so the one-month determinism and golden harnesses
	// never pay for a year of simulation; `make suite` opts in
	// explicitly.
	TagAnnual = "annual"
	// TagGeo marks the geo-distributed multi-site family
	// (arXiv:1308.0585): price-divergence routing, site-count scaling
	// and the latency-penalty frontier over internal/geo's sharded
	// fleet.
	TagGeo = "geo"
	// TagTune marks the self-tuning family: simulator-in-the-loop
	// parameter search (internal/optimize) over the tunable policy
	// arms, and the SmartDPSS-vs-Lyapunov battery-baseline frontier.
	TagTune = "tune"
	// TagSweep marks scenarios whose runner fans a multi-point sweep
	// out on the worker pool.
	TagSweep = "sweep"
	// TagSlow marks scenarios dominated by offline-LP benchmarks or
	// many full simulations; SkipOffline shortens most of them.
	TagSlow = "slow"
)

// init registers every experiment runner with the suite registry; the
// registration order fixes the default run order (paper figures first,
// then extensions).
func init() {
	for _, s := range []suite.Scenario{
		{
			Name:        "fig5",
			Description: "Fig. 5 — one-month input traces: summary statistics of demand, solar and prices",
			Tags:        []string{TagPaper},
			Run:         Fig5Traces,
		},
		{
			Name:        "fig6v",
			Description: "Fig. 6(a)(b) — cost and delay vs the Lyapunov tradeoff parameter V",
			Tags:        []string{TagPaper, TagSweep, TagSlow},
			Run:         Fig6VSweep,
		},
		{
			Name:        "fig6t",
			Description: "Fig. 6(c)(d) — cost and delay vs the long-term market period T",
			Tags:        []string{TagPaper, TagSweep},
			Run:         Fig6TSweep,
		},
		{
			Name:        "fig7",
			Description: "Fig. 7 — impact of ε, market structure and battery size on cost",
			Tags:        []string{TagPaper, TagSweep},
			Run:         Fig7Factors,
		},
		{
			Name:        "fig8",
			Description: "Fig. 8 — cost vs renewable penetration and demand variation",
			Tags:        []string{TagPaper, TagSweep},
			Run:         Fig8Penetration,
		},
		{
			Name:        "fig9",
			Description: "Fig. 9 — robustness of the cost reduction to ±50% estimation errors",
			Tags:        []string{TagPaper, TagSweep},
			Run:         Fig9Robustness,
		},
		{
			Name:        "fig10",
			Description: "Fig. 10 — total cost under system expansion with a fixed UPS",
			Tags:        []string{TagPaper, TagSweep},
			Run:         Fig10Scaling,
		},
		{
			Name:        "ext-peak",
			Description: "EXT-1 — power peaks and demand charges (paper future work, Sec. IV-C)",
			Tags:        []string{TagExt, TagSweep},
			Run:         ExtPeakManagement,
		},
		{
			Name:        "ext-cycle",
			Description: "EXT-2 — UPS lifetime operation budget Nmax (Eq. 9)",
			Tags:        []string{TagExt, TagSweep},
			Run:         ExtCycleBudget,
		},
		{
			Name:        "ext-mix",
			Description: "EXT-3 — solar/wind/mixed renewable portfolios at equal penetration",
			Tags:        []string{TagExt, TagSweep},
			Run:         ExtRenewableMix,
		},
		{
			Name:        "ext-est",
			Description: "EXT-4 — P4 interval estimator ablation (snapshot vs trailing mean)",
			Tags:        []string{TagExt, TagSweep},
			Run:         ExtEstimatorAblation,
		},
		{
			Name:        "ext-mpc",
			Description: "EXT-5 — the value of foresight: SmartDPSS vs T-step lookahead",
			Tags:        []string{TagExt, TagSweep, TagSlow},
			Run:         ExtForesight,
		},
		{
			Name:        "ext-seeds",
			Description: "EXT-6 — headline comparison across independent trace seeds (Config.Seeds)",
			Tags:        []string{TagExt, TagSweep, TagSlow},
			Run: func(cfg Config) (*Table, error) {
				return MultiSeedSummary(cfg, cfg.SeedCount())
			},
		},
		{
			Name:        "ext-cool",
			Description: "EXT-7 — cooling coupling through temperature and PUE (paper future work)",
			Tags:        []string{TagExt, TagSweep},
			Run:         ExtCooling,
		},
		{
			Name:        "prov-grid",
			Description: "PROV-1 — generator capacity × battery size provisioning grid (arXiv:1303.6775)",
			Tags:        []string{TagProvision, TagSweep},
			Run:         ProvisionGrid,
		},
		{
			Name:        "prov-fuel",
			Description: "PROV-2 — fuel-price and grid-price sensitivity of on-site generation",
			Tags:        []string{TagProvision, TagSweep},
			Run:         ProvisionFuel,
		},
		{
			Name:        "prov-vt",
			Description: "PROV-3 — V × T cross sweep over the full parameter grid",
			Tags:        []string{TagProvision, TagSweep},
			Run:         ProvisionVT,
		},
		{
			Name:        "fleet-mix",
			Description: "FLEET-1 — one nameplate MW split across 1, 2 or 4 equal units",
			Tags:        []string{TagFleet, TagSweep},
			Run:         FleetMix,
		},
		{
			Name:        "fleet-uc",
			Description: "FLEET-2 — unit-commitment window sweep at a near-break-even fuel price",
			Tags:        []string{TagFleet, TagSweep},
			Run:         FleetUC,
		},
		{
			Name:        "fleet-co2",
			Description: "FLEET-3 — cost vs emissions frontier under a carbon price sweep",
			Tags:        []string{TagFleet, TagSweep},
			Run:         FleetCO2,
		},
		{
			Name:        "ext-annual",
			Description: "ANNUAL-1 — year-long comparison with an 8760-slot horizon LP (sparse simplex)",
			Tags:        []string{TagAnnual, TagSweep, TagSlow},
			Run:         ExtAnnual,
		},
		{
			Name:        "geo-div",
			Description: "GEO-1 — workload routing vs regional price divergence (3 sites)",
			Tags:        []string{TagGeo, TagSweep},
			Run:         GeoDivergence,
		},
		{
			Name:        "geo-scale",
			Description: "GEO-2 — fleet scaling from 1 to 8 sites through the sharded step",
			Tags:        []string{TagGeo, TagSweep},
			Run:         GeoScale,
		},
		{
			Name:        "geo-lat",
			Description: "GEO-3 — routing latency-penalty frontier",
			Tags:        []string{TagGeo, TagSweep},
			Run:         GeoLatency,
		},
		{
			Name:        "tune-gap",
			Description: "TUNE-1 — tuned vs default controller parameters per policy arm",
			Tags:        []string{TagTune, TagSweep, TagSlow},
			Run:         TuneGap,
		},
		{
			Name:        "tune-xfer",
			Description: "TUNE-2 — tuning transfer across held-out seeds and price regimes",
			Tags:        []string{TagTune, TagSweep, TagSlow},
			Run:         TuneTransfer,
		},
		{
			Name:        "tune-frontier",
			Description: "TUNE-3 — SmartDPSS vs Lyapunov battery baseline cost frontier",
			Tags:        []string{TagTune, TagSweep, TagSlow},
			Run:         TuneFrontier,
		},
	} {
		suite.Register(s)
	}
}
