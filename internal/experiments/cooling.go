package experiments

import (
	"fmt"

	dpss "github.com/smartdpss/smartdpss/internal/engine"
	"github.com/smartdpss/smartdpss/internal/suite"
)

// ExtCooling (EXT-7) exercises the paper's other declared future-work
// item: cooling cost (Sec. IV-C). Demand is coupled through an
// outside-temperature trace and a PUE curve — free cooling at a flat base
// overhead in cold weather, chiller load growing with temperature in hot
// weather. Because hot afternoons coincide with the interactive peak,
// summer cooling raises both the level and the variance of facility
// demand; the experiment measures whether SmartDPSS's advantage over
// Impatient survives the coupling. Each climate is a pool job coupling
// its own private clone of the cached traces.
func ExtCooling(cfg Config) (*Table, error) {
	climates := []struct {
		label string
		meanC float64
	}{
		{"no cooling model", -1000}, // sentinel: skip coupling
		{"winter (2 C)", 2},
		{"mild (16 C)", 16},
		{"summer (26 C)", 26},
	}
	rows, err := suite.Map(cfg, len(climates), func(i int) ([]string, error) {
		cl := climates[i]
		traces, err := baseTraces(cfg)
		if err != nil {
			return nil, err
		}
		defer suite.Release(traces)
		avgPUE := 1.0
		if cl.meanC > -999 {
			avgPUE, err = traces.ApplyCooling(dpss.CoolingConfig{
				MeanTempC: cl.meanC,
				Seed:      cfg.Seed + 31,
			})
			if err != nil {
				return nil, err
			}
		}
		stats, err := dpss.TraceStatistics(traces)
		if err != nil {
			return nil, err
		}
		demand := stats[0].Sum + stats[1].Sum

		opts := dpss.DefaultOptions()
		smart, err := simulate(dpss.PolicySmartDPSS, opts, traces)
		if err != nil {
			return nil, err
		}
		imp, err := simulate(dpss.PolicyImpatient, opts, traces)
		if err != nil {
			return nil, err
		}
		return []string{cl.label, fmt.Sprintf("%.3f", avgPUE), fmtF(demand),
			fmtUSD(smart.TimeAvgCostUSD), fmtUSD(imp.TimeAvgCostUSD),
			fmtPct(1 - smart.TotalCostUSD/imp.TotalCostUSD)}, nil
	})
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title: "EXT-7 — cooling coupling (paper future work, Sec. IV-C)",
		Note: "facility demand = IT demand × PUE(outside temperature); winter ≈ free cooling,\n" +
			"summer ≈ chiller regime; expected: demand and cost rise with temperature, the\n" +
			"SmartDPSS saving over Impatient persists.",
		Columns: []string{"climate", "avg PUE", "demand MWh", "smart $/slot", "impatient $/slot", "saving"},
	}
	t.Rows = rows
	return t, nil
}
