package experiments

import (
	"fmt"

	dpss "github.com/smartdpss/smartdpss/internal/engine"
	"github.com/smartdpss/smartdpss/internal/suite"
)

// ExtEstimatorAblationTValues are the coarse-interval lengths compared
// by ExtEstimatorAblation.
var ExtEstimatorAblationTValues = []int{6, 24, 72, 144}

// ExtEstimatorAblation (EXT-4) compares the two P4 interval estimators
// across the T sweep: the paper's literal Algorithm 1 reading (plan each
// coarse interval from the single boundary-slot observation) versus this
// library's default (the trailing means of the previous interval). The
// snapshot is adequate at T = 24 with hourly slots but misestimates
// multi-day intervals badly — the reason DESIGN.md adopts trailing means
// as the default. Each T (a trailing/snapshot simulation pair) is a pool
// job.
func ExtEstimatorAblation(cfg Config) (*Table, error) {
	traces, err := baseTraces(cfg)
	if err != nil {
		return nil, err
	}

	rows, err := suite.Map(cfg, len(ExtEstimatorAblationTValues), func(i int) ([]string, error) {
		T := ExtEstimatorAblationTValues[i]
		trailing := dpss.DefaultOptions()
		trailing.T = T
		tRep, err := simulate(dpss.PolicySmartDPSS, trailing, traces)
		if err != nil {
			return nil, err
		}
		snapshot := trailing
		snapshot.SnapshotPlanning = true
		sRep, err := simulate(dpss.PolicySmartDPSS, snapshot, traces)
		if err != nil {
			return nil, err
		}
		return []string{fmt.Sprintf("%d", T),
			fmtUSD(tRep.TimeAvgCostUSD), fmtUSD(sRep.TimeAvgCostUSD),
			fmtPct(sRep.TimeAvgCostUSD/tRep.TimeAvgCostUSD - 1),
			fmtF(tRep.MeanDelaySlots), fmtF(sRep.MeanDelaySlots)}, nil
	})
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title: "EXT-4 — P4 interval estimator ablation (snapshot vs trailing mean)",
		Note: "V=1, ε=0.5, Bmax=15 min; snapshot = the paper's literal single-slot observation;\n" +
			"expected: comparable at T=24, snapshot degrades on multi-day intervals.",
		Columns: []string{"T (slots)", "trailing $/slot", "snapshot $/slot", "snapshot penalty",
			"trailing delay", "snapshot delay"},
	}
	t.Rows = rows
	return t, nil
}
