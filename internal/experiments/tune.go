package experiments

import (
	"fmt"
	"math"
	"strings"

	dpss "github.com/smartdpss/smartdpss/internal/engine"
	"github.com/smartdpss/smartdpss/internal/optimize"
	"github.com/smartdpss/smartdpss/internal/suite"
)

// TuneOptions scopes a self-tuning run: which policy arm to tune, the
// starting engine options, and the evaluation budget. The simulator is
// the objective — each candidate is scored over TuneOptions.Suite's
// seeds (Config.Seeds trace draws fanned out on the suite worker pool)
// as a weighted blend of the mean and the worst per-slot cost, so tuning
// cannot overfit one lucky trace.
type TuneOptions struct {
	// Policy is the arm to tune: PolicySmartDPSS (V, ε, T, and
	// CommitWindow when a fleet is configured) or PolicyLyapunov (V
	// scale and battery target θ).
	Policy dpss.Policy
	// Base is the starting point; tuned parameters override its fields,
	// everything else is inherited by every candidate.
	Base dpss.Options
	// Suite scopes the evaluation: trace horizon, seed family and the
	// worker-pool parallelism. Results depend only on its Days/Seed/
	// Seeds, never on Parallel.
	Suite Config
	// Seed drives the optimizer's restart jitter (not the traces).
	Seed int64
	// MaxEvals bounds simulator evaluations (default 60).
	MaxEvals int
	// WorstWeight blends the worst seed into the score:
	// (1−w)·mean + w·worst. Zero selects the 0.25 default; negative
	// disables the guard (pure mean).
	WorstWeight float64
}

// TuneResult reports a finished tuning run.
type TuneResult struct {
	// Policy is the tuned arm.
	Policy dpss.Policy
	// Names labels the tuned dimensions, in vector order.
	Names []string
	// Default is the starting parameter vector (from Base).
	Default []float64
	// Tuned is the winning parameter vector.
	Tuned []float64
	// Options is Base with the tuned vector applied — ready for Simulate.
	Options dpss.Options
	// DefaultScore and TunedScore are the objective (blended $/slot) at
	// Default and Tuned.
	DefaultScore float64
	TunedScore   float64
	// Evals counts simulator-backed objective evaluations.
	Evals int
	// Trajectory is the optimizer's incumbent history.
	Trajectory []optimize.Step
}

// Gap returns the fractional cost reduction of Tuned vs Default
// (positive = tuned is cheaper).
func (r *TuneResult) Gap() float64 {
	if r.DefaultScore == 0 {
		return 0
	}
	return 1 - r.TunedScore/r.DefaultScore
}

// ParamString renders the tuned vector as "name=value" pairs.
func (r *TuneResult) ParamString() string {
	parts := make([]string, len(r.Names))
	for i, n := range r.Names {
		parts[i] = fmt.Sprintf("%s=%.3g", n, r.Tuned[i])
	}
	return strings.Join(parts, " ")
}

// tuneSpace is one policy arm's searchable parameter box.
type tuneSpace struct {
	names   []string
	bounds  optimize.Bounds
	x0      []float64
	integer []bool
	apply   func(x []float64, o *dpss.Options)
}

// quantize snaps integer dimensions onto the lattice.
func (s tuneSpace) quantize(x []float64) {
	for i, isInt := range s.integer {
		if isInt {
			x[i] = math.Round(x[i])
		}
	}
}

// newTuneSpace builds the search space for a policy arm. SmartDPSS
// exposes the paper's knobs (V, ε, T, plus the unit-commitment window
// when a fleet is configured); Lyapunov exposes its V as a dimensionless
// scale on the policy's own scale-aware default plus the battery target
// fraction θ.
func newTuneSpace(policy dpss.Policy, base dpss.Options) (tuneSpace, error) {
	switch policy {
	case dpss.PolicySmartDPSS:
		s := tuneSpace{
			names:   []string{"V", "eps", "T"},
			bounds:  optimize.Bounds{Lo: []float64{0.05, 0.1, 3}, Hi: []float64{5, 2, 48}},
			x0:      []float64{base.V, base.Epsilon, float64(base.T)},
			integer: []bool{false, false, true},
		}
		hasFleet := len(base.Fleet) > 0 || base.GeneratorMW > 0
		if hasFleet {
			s.names = append(s.names, "W")
			s.bounds.Lo = append(s.bounds.Lo, 1)
			s.bounds.Hi = append(s.bounds.Hi, 48)
			s.x0 = append(s.x0, math.Max(1, float64(base.CommitWindow)))
			s.integer = append(s.integer, true)
		}
		s.apply = func(x []float64, o *dpss.Options) {
			o.V = x[0]
			o.Epsilon = x[1]
			o.T = int(math.Round(x[2]))
			if hasFleet {
				o.CommitWindow = int(math.Round(x[3]))
			}
		}
		return s, nil
	case dpss.PolicyLyapunov:
		bc := base.BaselineConfig()
		defV := (bc.Battery.CapacityMWh - bc.Battery.MinLevelMWh) / bc.PmaxUSD
		if defV <= 0 {
			return tuneSpace{}, fmt.Errorf("experiments: tune lyapunov: battery disabled (no usable span)")
		}
		s := tuneSpace{
			names:   []string{"vscale", "theta"},
			bounds:  optimize.Bounds{Lo: []float64{0.1, 0.05}, Hi: []float64{20, 0.95}},
			x0:      []float64{1, 0.6},
			integer: []bool{false, false},
		}
		if base.LyapunovV > 0 {
			s.x0[0] = base.LyapunovV / defV
		}
		if base.LyapunovTheta > 0 {
			s.x0[1] = base.LyapunovTheta
		}
		s.apply = func(x []float64, o *dpss.Options) {
			o.LyapunovV = x[0] * defV
			o.LyapunovTheta = x[1]
		}
		return s, nil
	default:
		return tuneSpace{}, fmt.Errorf("experiments: policy %q is not tunable (want %s or %s)",
			policy, dpss.PolicySmartDPSS, dpss.PolicyLyapunov)
	}
}

// NewTuneObjective builds the simulator-backed objective for a tuning
// run: each evaluation applies the candidate vector to the base options
// and scores it as (1−w)·mean + w·worst of the per-slot cost over the
// suite's seeds, each seed a pool job with its own derived trace seed.
// The score depends only on the candidate and the suite's Days/Seed/
// Seeds — never on Parallel — which is what makes the whole tuning run
// byte-identical at every parallelism level.
func NewTuneObjective(topts TuneOptions) (optimize.Objective, error) {
	space, err := newTuneSpace(topts.Policy, topts.Base)
	if err != nil {
		return nil, err
	}
	w := topts.WorstWeight
	if w == 0 {
		w = 0.25
	} else if w < 0 {
		w = 0
	}
	cfg := topts.Suite
	seeds := cfg.SeedCount()
	return func(x []float64) (float64, error) {
		opts := topts.Base
		space.apply(x, &opts)
		costs, err := suite.Map(cfg, seeds, func(s int) (float64, error) {
			tc := cfg.TraceConfig()
			tc.Seed = cfg.PointSeed(s)
			traces, err := suite.Traces(tc)
			if err != nil {
				return 0, err
			}
			defer suite.Release(traces)
			rep, err := simulate(topts.Policy, opts, traces)
			if err != nil {
				return 0, err
			}
			return rep.TimeAvgCostUSD, nil
		})
		if err != nil {
			return 0, err
		}
		mean, worst := 0.0, math.Inf(-1)
		for _, c := range costs {
			mean += c
			worst = math.Max(worst, c)
		}
		mean /= float64(len(costs))
		return (1-w)*mean + w*worst, nil
	}, nil
}

// RunTune tunes one policy arm against the simulator: a deterministic
// seeded Nelder–Mead over the arm's parameter box, with the multi-seed
// blended cost as the objective. Same TuneOptions → bit-identical
// TuneResult at every Suite.Parallel level.
func RunTune(topts TuneOptions) (*TuneResult, error) {
	space, err := newTuneSpace(topts.Policy, topts.Base)
	if err != nil {
		return nil, err
	}
	obj, err := NewTuneObjective(topts)
	if err != nil {
		return nil, err
	}
	x0 := append([]float64(nil), space.x0...)
	space.bounds.Clamp(x0)
	space.quantize(x0)
	defScore, err := obj(x0)
	if err != nil {
		return nil, err
	}
	maxEvals := topts.MaxEvals
	if maxEvals <= 0 {
		maxEvals = 60
	}
	res, err := optimize.Minimize(obj, x0, space.bounds, optimize.Options{
		Seed:     topts.Seed,
		MaxEvals: maxEvals,
		Quantize: space.quantize,
	})
	if err != nil {
		return nil, err
	}
	tuned := topts.Base
	space.apply(res.X, &tuned)
	return &TuneResult{
		Policy:       topts.Policy,
		Names:        space.names,
		Default:      x0,
		Tuned:        res.X,
		Options:      tuned,
		DefaultScore: defScore,
		TunedScore:   res.F,
		Evals:        res.Evals + 1,
		Trajectory:   res.Trajectory,
	}, nil
}

// TuneGap (TUNE-1) tunes both tunable policy arms against the suite's
// seed family and reports the tuned-vs-default cost gap — the measured
// value of simulator-in-the-loop parameter search over the paper's
// hand-set defaults.
func TuneGap(cfg Config) (*Table, error) {
	t := &Table{
		Title: "TUNE-1 — tuned vs default controller parameters",
		Note: "seeded Nelder–Mead over the simulator; score = 0.75·mean + 0.25·worst\n" +
			"$/slot across the suite seed family; gap > 0 means tuning found a cheaper point.",
		Columns: []string{"policy", "default $/slot", "tuned $/slot", "gap", "tuned params", "evals"},
	}
	for _, policy := range []dpss.Policy{dpss.PolicySmartDPSS, dpss.PolicyLyapunov} {
		res, err := RunTune(TuneOptions{
			Policy: policy,
			Base:   dpss.DefaultOptions(),
			Suite:  cfg,
			Seed:   1,
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(string(policy), fmtUSD(res.DefaultScore), fmtUSD(res.TunedScore),
			fmtPct(res.Gap()), res.ParamString(), fmt.Sprintf("%d", res.Evals))
	}
	return t, nil
}

// TuneTransfer (TUNE-2) tests whether tuned parameters generalize: tune
// SmartDPSS on the suite's training seeds at the base price regime, then
// replay default-vs-tuned on held-out seeds under scaled price series.
// The claim under test: the tuned point is not an artifact of the
// training traces.
func TuneTransfer(cfg Config) (*Table, error) {
	res, err := RunTune(TuneOptions{
		Policy: dpss.PolicySmartDPSS,
		Base:   dpss.DefaultOptions(),
		Suite:  cfg,
		Seed:   1,
	})
	if err != nil {
		return nil, err
	}

	scales := []float64{0.7, 1.0, 1.4}
	seeds := cfg.SeedCount()
	type point struct{ def, tuned float64 }
	// One pool job per (regime, held-out seed): seeds offset past the
	// training family so evaluation never reuses a tuning trace.
	runs, err := suite.Map(cfg, len(scales)*seeds, func(i int) (point, error) {
		scale := scales[i/seeds]
		tc := cfg.TraceConfig()
		tc.Seed = cfg.PointSeed(seeds + i%seeds)
		tc.PriceScale = scale
		traces, err := suite.Traces(tc)
		if err != nil {
			return point{}, err
		}
		defer suite.Release(traces)
		// The price cap moves with the regime (as in the provisioning
		// sweeps), identically for both arms.
		defOpts := dpss.DefaultOptions()
		defOpts.PmaxUSD *= scale
		def, err := simulate(dpss.PolicySmartDPSS, defOpts, traces)
		if err != nil {
			return point{}, err
		}
		tunedOpts := res.Options
		tunedOpts.PmaxUSD *= scale
		tuned, err := simulate(dpss.PolicySmartDPSS, tunedOpts, traces)
		if err != nil {
			return point{}, err
		}
		return point{def: def.TimeAvgCostUSD, tuned: tuned.TimeAvgCostUSD}, nil
	})
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title: "TUNE-2 — tuning transfer across held-out seeds and price regimes",
		Note: fmt.Sprintf("SmartDPSS tuned on the training seed family at PriceScale 1.0 (%s),\n"+
			"then replayed on held-out seeds; mean $/slot per regime.", res.ParamString()),
		Columns: []string{"price regime", "default $/slot", "tuned $/slot", "gap"},
	}
	for si, scale := range scales {
		var def, tuned float64
		for s := 0; s < seeds; s++ {
			p := runs[si*seeds+s]
			def += p.def
			tuned += p.tuned
		}
		def /= float64(seeds)
		tuned /= float64(seeds)
		t.AddRow(fmt.Sprintf("PriceScale %.1f", scale), fmtUSD(def), fmtUSD(tuned),
			fmtPct(1-tuned/def))
	}
	return t, nil
}

// TuneFrontier (TUNE-3) traces the SmartDPSS-vs-Lyapunov cost frontier:
// each arm's V swept over its range on the base trace, plus the tuned
// point of each arm — the head-to-head answer to whether forecast-driven
// multi-source dispatch beats forecast-free battery control, and by how
// much at the knee.
func TuneFrontier(cfg Config) (*Table, error) {
	traces, err := baseTraces(cfg)
	if err != nil {
		return nil, err
	}
	defer suite.Release(traces)

	smartVs := []float64{0.1, 0.5, 1, 2, 5}
	lyapScales := []float64{0.1, 0.5, 1, 2, 5, 10, 20}
	defV := (dpss.DefaultOptions().BaselineConfig().Battery.CapacityMWh -
		dpss.DefaultOptions().BaselineConfig().Battery.MinLevelMWh) /
		dpss.DefaultOptions().BaselineConfig().PmaxUSD

	type point struct{ cost, delay float64 }
	runs, err := suite.Map(cfg, len(smartVs)+len(lyapScales), func(i int) (point, error) {
		opts := dpss.DefaultOptions()
		policy := dpss.PolicySmartDPSS
		if i < len(smartVs) {
			opts.V = smartVs[i]
		} else {
			policy = dpss.PolicyLyapunov
			opts.LyapunovV = lyapScales[i-len(smartVs)] * defV
		}
		rep, err := simulate(policy, opts, traces)
		if err != nil {
			return point{}, err
		}
		return point{cost: rep.TimeAvgCostUSD, delay: rep.MeanDelaySlots}, nil
	})
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title: "TUNE-3 — SmartDPSS vs Lyapunov battery baseline: cost frontier",
		Note: "base trace; SmartDPSS sweeps its Lyapunov tradeoff V, the battery baseline\n" +
			"sweeps its V as a multiple of the scale-aware default; tuned rows from TUNE-1's search.",
		Columns: []string{"policy", "parameter", "cost $/slot", "mean delay (slots)"},
	}
	for i, v := range smartVs {
		t.AddRow("smartdpss", fmt.Sprintf("V=%.1f", v),
			fmtUSD(runs[i].cost), fmtF(runs[i].delay))
	}
	for i, s := range lyapScales {
		p := runs[len(smartVs)+i]
		t.AddRow("lyapunov", fmt.Sprintf("vscale=%.1f", s), fmtUSD(p.cost), fmtF(p.delay))
	}
	for _, policy := range []dpss.Policy{dpss.PolicySmartDPSS, dpss.PolicyLyapunov} {
		res, err := RunTune(TuneOptions{
			Policy: policy, Base: dpss.DefaultOptions(), Suite: cfg, Seed: 1,
		})
		if err != nil {
			return nil, err
		}
		rep, err := simulate(policy, res.Options, traces)
		if err != nil {
			return nil, err
		}
		t.AddRow(string(policy), "tuned: "+res.ParamString(),
			fmtUSD(rep.TimeAvgCostUSD), fmtF(rep.MeanDelaySlots))
	}
	return t, nil
}
