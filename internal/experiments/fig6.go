package experiments

import (
	"fmt"

	dpss "github.com/smartdpss/smartdpss/internal/engine"
	"github.com/smartdpss/smartdpss/internal/suite"
)

// Fig6VValues are the control-parameter points of Fig. 6(a)(b).
var Fig6VValues = []float64{0.05, 0.1, 0.25, 0.5, 1, 2.5, 5}

// Fig6VSweep reproduces Fig. 6(a)(b): time-average operation cost and
// average service delay as V varies, for SmartDPSS against the Impatient
// and offline-optimal baselines, with T = 24, ε = 0.5 and a 15-minute UPS.
// The V-independent baselines and every V point run as independent pool
// jobs.
func Fig6VSweep(cfg Config) (*Table, error) {
	traces, err := baseTraces(cfg)
	if err != nil {
		return nil, err
	}
	opts := dpss.DefaultOptions()

	// Jobs 0..len(V)-1 are the V points; the two trailing jobs are the
	// V-independent Impatient and (unless skipped) offline baselines.
	jobs := len(Fig6VValues) + 2
	reports, err := suite.Map(cfg, jobs, func(i int) (*dpss.Report, error) {
		switch i {
		case len(Fig6VValues):
			return simulate(dpss.PolicyImpatient, opts, traces)
		case len(Fig6VValues) + 1:
			if cfg.SkipOffline {
				return nil, nil
			}
			return simulate(dpss.PolicyOfflineOptimal, opts, traces)
		default:
			o := opts
			o.V = Fig6VValues[i]
			return simulate(dpss.PolicySmartDPSS, o, traces)
		}
	})
	if err != nil {
		return nil, err
	}
	impatient := reports[len(Fig6VValues)]
	offline := reports[len(Fig6VValues)+1]

	t := &Table{
		Title: "Fig. 6(a)(b) — time-average cost and mean delay vs V",
		Note: "T=24, ε=0.5, Bmax=15 min; Impatient and OfflineOptimal are V-independent;\n" +
			"expected shape: cost ↓ towards offline as V grows, delay ↑ roughly linearly (Theorem 2).",
		Columns: []string{"V", "smart $/slot", "smart delay", "impatient $/slot", "impatient delay",
			"offline $/slot", "offline delay"},
	}
	for i, v := range Fig6VValues {
		rep := reports[i]
		offCost, offDelay := "n/a", "n/a"
		if offline != nil {
			offCost, offDelay = fmtUSD(offline.TimeAvgCostUSD), fmtF(offline.MeanDelaySlots)
		}
		t.AddRow(fmt.Sprintf("%.2f", v),
			fmtUSD(rep.TimeAvgCostUSD), fmtF(rep.MeanDelaySlots),
			fmtUSD(impatient.TimeAvgCostUSD), fmtF(impatient.MeanDelaySlots),
			offCost, offDelay)
	}
	return t, nil
}

// Fig6TValues are the coarse-interval lengths of Fig. 6(c)(d), in fine
// slots (3 hours to 6 days).
var Fig6TValues = []int{3, 6, 12, 24, 48, 72, 144}

// Fig6TSweep reproduces Fig. 6(c)(d): cost and delay as the long-term
// market period T varies, with V = 1 and ε = 0.5. The paper reports cost
// fluctuating only within [−3.65%, +6.23%] of the T=24 level while delay
// falls as T grows (queue bounds ∝ V·Pmax/T). Each T point is a pool job.
func Fig6TSweep(cfg Config) (*Table, error) {
	traces, err := baseTraces(cfg)
	if err != nil {
		return nil, err
	}
	opts := dpss.DefaultOptions()

	points, err := suite.Map(cfg, len(Fig6TValues), func(i int) (*dpss.Report, error) {
		o := opts
		o.T = Fig6TValues[i]
		return simulate(dpss.PolicySmartDPSS, o, traces)
	})
	if err != nil {
		return nil, err
	}
	var ref float64
	for i, T := range Fig6TValues {
		if T == 24 {
			ref = points[i].TimeAvgCostUSD
		}
	}
	if ref == 0 && len(points) > 0 {
		ref = points[0].TimeAvgCostUSD
	}

	t := &Table{
		Title: "Fig. 6(c)(d) — time-average cost and mean delay vs T",
		Note: "V=1, ε=0.5, Bmax=15 min; 'vs T=24' is the relative cost change against the day-ahead setting;\n" +
			"expected shape: cost roughly flat in T, delay ↓ as T grows.",
		Columns: []string{"T (slots)", "cost $/slot", "vs T=24", "mean delay (slots)", "max delay"},
	}
	for i, T := range Fig6TValues {
		p := points[i]
		t.AddRow(fmt.Sprintf("%d", T), fmtUSD(p.TimeAvgCostUSD), fmtPct(p.TimeAvgCostUSD/ref-1),
			fmtF(p.MeanDelaySlots), fmt.Sprintf("%d", p.MaxDelaySlots))
	}
	return t, nil
}
