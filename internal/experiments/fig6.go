package experiments

import (
	"fmt"

	dpss "github.com/smartdpss/smartdpss"
)

// Fig6VValues are the control-parameter points of Fig. 6(a)(b).
var Fig6VValues = []float64{0.05, 0.1, 0.25, 0.5, 1, 2.5, 5}

// Fig6VSweep reproduces Fig. 6(a)(b): time-average operation cost and
// average service delay as V varies, for SmartDPSS against the Impatient
// and offline-optimal baselines, with T = 24, ε = 0.5 and a 15-minute UPS.
func Fig6VSweep(cfg Config) (*Table, error) {
	traces, err := dpss.GenerateTraces(cfg.traceConfig())
	if err != nil {
		return nil, err
	}
	opts := dpss.DefaultOptions()

	impatient, err := simulate(dpss.PolicyImpatient, opts, traces)
	if err != nil {
		return nil, err
	}
	var offline *dpss.Report
	if !cfg.SkipOffline {
		offline, err = simulate(dpss.PolicyOfflineOptimal, opts, traces)
		if err != nil {
			return nil, err
		}
	}

	t := &Table{
		Title: "Fig. 6(a)(b) — time-average cost and mean delay vs V",
		Note: "T=24, ε=0.5, Bmax=15 min; Impatient and OfflineOptimal are V-independent;\n" +
			"expected shape: cost ↓ towards offline as V grows, delay ↑ roughly linearly (Theorem 2).",
		Columns: []string{"V", "smart $/slot", "smart delay", "impatient $/slot", "impatient delay",
			"offline $/slot", "offline delay"},
	}
	for _, v := range Fig6VValues {
		o := opts
		o.V = v
		rep, err := simulate(dpss.PolicySmartDPSS, o, traces)
		if err != nil {
			return nil, err
		}
		offCost, offDelay := "n/a", "n/a"
		if offline != nil {
			offCost, offDelay = fmtUSD(offline.TimeAvgCostUSD), fmtF(offline.MeanDelaySlots)
		}
		t.AddRow(fmt.Sprintf("%.2f", v),
			fmtUSD(rep.TimeAvgCostUSD), fmtF(rep.MeanDelaySlots),
			fmtUSD(impatient.TimeAvgCostUSD), fmtF(impatient.MeanDelaySlots),
			offCost, offDelay)
	}
	return t, nil
}

// Fig6TValues are the coarse-interval lengths of Fig. 6(c)(d), in fine
// slots (3 hours to 6 days).
var Fig6TValues = []int{3, 6, 12, 24, 48, 72, 144}

// Fig6TSweep reproduces Fig. 6(c)(d): cost and delay as the long-term
// market period T varies, with V = 1 and ε = 0.5. The paper reports cost
// fluctuating only within [−3.65%, +6.23%] of the T=24 level while delay
// falls as T grows (queue bounds ∝ V·Pmax/T).
func Fig6TSweep(cfg Config) (*Table, error) {
	traces, err := dpss.GenerateTraces(cfg.traceConfig())
	if err != nil {
		return nil, err
	}
	opts := dpss.DefaultOptions()

	type point struct {
		T        int
		cost     float64
		delay    float64
		maxDelay int
	}
	points := make([]point, 0, len(Fig6TValues))
	var ref float64
	for _, T := range Fig6TValues {
		o := opts
		o.T = T
		rep, err := simulate(dpss.PolicySmartDPSS, o, traces)
		if err != nil {
			return nil, err
		}
		points = append(points, point{
			T: T, cost: rep.TimeAvgCostUSD,
			delay: rep.MeanDelaySlots, maxDelay: rep.MaxDelaySlots,
		})
		if T == 24 {
			ref = rep.TimeAvgCostUSD
		}
	}
	if ref == 0 && len(points) > 0 {
		ref = points[0].cost
	}

	t := &Table{
		Title: "Fig. 6(c)(d) — time-average cost and mean delay vs T",
		Note: "V=1, ε=0.5, Bmax=15 min; 'vs T=24' is the relative cost change against the day-ahead setting;\n" +
			"expected shape: cost roughly flat in T, delay ↓ as T grows.",
		Columns: []string{"T (slots)", "cost $/slot", "vs T=24", "mean delay (slots)", "max delay"},
	}
	for _, p := range points {
		t.AddRow(fmt.Sprintf("%d", p.T), fmtUSD(p.cost), fmtPct(p.cost/ref-1),
			fmtF(p.delay), fmt.Sprintf("%d", p.maxDelay))
	}
	return t, nil
}
