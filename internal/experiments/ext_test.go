package experiments

import (
	"bytes"
	"testing"
)

func TestExtPeakManagement(t *testing.T) {
	tbl, err := ExtPeakManagement(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tbl.Rows))
	}
	// Peaks are bounded by Pgrid = 2 MW for every policy (the paper's
	// Sec. IV-C remark).
	for r := range tbl.Rows {
		if peak := cell(t, tbl, r, 3); peak > 2.0+1e-9 {
			t.Errorf("row %d: peak %g MW exceeds Pgrid", r, peak)
		}
	}
	// Combined cost (energy + demand charge) keeps SmartDPSS ahead of
	// Impatient at equal battery.
	if cell(t, tbl, 0, 5) >= cell(t, tbl, 2, 5) {
		t.Errorf("SmartDPSS combined %s not below Impatient %s",
			tbl.Rows[0][5], tbl.Rows[2][5])
	}
}

func TestExtCycleBudget(t *testing.T) {
	tbl, err := ExtCycleBudget(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != len(ExtCycleBudgetValues) {
		t.Fatalf("rows = %d, want %d", len(tbl.Rows), len(ExtCycleBudgetValues))
	}
	// Battery operations respect each budget.
	for r := 1; r < len(tbl.Rows); r++ {
		budget := float64(ExtCycleBudgetValues[r])
		if ops := cell(t, tbl, r, 2); ops > budget {
			t.Errorf("row %d: ops %g exceed budget %g", r, ops, budget)
		}
	}
	// Cost is non-decreasing as the budget tightens (within round-off).
	for r := 2; r < len(tbl.Rows); r++ {
		if cell(t, tbl, r, 1) < cell(t, tbl, r-1, 1)-0.05 {
			t.Errorf("cost at Nmax=%s (%s) below looser budget (%s)",
				tbl.Rows[r][0], tbl.Rows[r][1], tbl.Rows[r-1][1])
		}
	}
	// The controller must degrade gracefully: nothing unserved.
	for r := range tbl.Rows {
		if cell(t, tbl, r, 4) > 1e-6 {
			t.Errorf("row %d: unserved %s under a cycle budget", r, tbl.Rows[r][4])
		}
	}
}

func TestExtEstimatorAblation(t *testing.T) {
	tbl, err := ExtEstimatorAblation(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tbl.Rows))
	}
	// The two estimators must stay within a moderate band of each other;
	// the ablation is informative, not pathological.
	for r := range tbl.Rows {
		if p := cell(t, tbl, r, 3); p < -20 || p > 20 {
			t.Errorf("row %d: snapshot penalty %s outside ±20%%", r, tbl.Rows[r][3])
		}
	}
}

func TestExtForesight(t *testing.T) {
	tbl, err := ExtForesight(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 1+len(ExtForesightValues) {
		t.Fatalf("rows = %d, want %d", len(tbl.Rows), 1+len(ExtForesightValues))
	}
	// More foresight is monotone valuable across the lookahead ladder
	// (allow a small receding-horizon tolerance).
	for r := 2; r < len(tbl.Rows); r++ {
		if cell(t, tbl, r, 1) > cell(t, tbl, r-1, 1)*1.03 {
			t.Errorf("%s cost %s above %s cost %s",
				tbl.Rows[r][0], tbl.Rows[r][1], tbl.Rows[r-1][0], tbl.Rows[r-1][1])
		}
	}
	// Myopic lookahead must lose to SmartDPSS (the paper's thesis: the
	// Lyapunov policy extracts deferral value without foresight).
	if cell(t, tbl, 1, 1) <= cell(t, tbl, 0, 1) {
		t.Errorf("Lookahead(1) %s not above SmartDPSS %s", tbl.Rows[1][1], tbl.Rows[0][1])
	}
}

func TestExtRenewableMix(t *testing.T) {
	tbl, err := ExtRenewableMix(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tbl.Rows))
	}
	// Solar-only has no night production; wind-dominated portfolios do.
	if tbl.Rows[0][3] != "0.0%" {
		t.Errorf("solar-only night share = %s, want 0.0%%", tbl.Rows[0][3])
	}
	// The mixed portfolio wastes no more than solar alone at equal
	// penetration (the smoothing effect).
	if cell(t, tbl, 2, 2) > cell(t, tbl, 0, 2) {
		t.Errorf("mixed waste %s above solar-only %s", tbl.Rows[2][2], tbl.Rows[0][2])
	}
	// And costs no more than solar alone.
	if cell(t, tbl, 2, 1) > cell(t, tbl, 0, 1) {
		t.Errorf("mixed cost %s above solar-only %s", tbl.Rows[2][1], tbl.Rows[0][1])
	}
}

func TestMultiSeedSummary(t *testing.T) {
	cfg := fastConfig()
	tbl, err := MultiSeedSummary(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 { // offline skipped in fastConfig
		t.Fatalf("rows = %d, want 4", len(tbl.Rows))
	}
	// SmartDPSS mean cost below Impatient mean cost.
	if cell(t, tbl, 0, 1) >= cell(t, tbl, 1, 1) {
		t.Errorf("SmartDPSS mean %s not below Impatient mean %s",
			tbl.Rows[0][1], tbl.Rows[1][1])
	}
	if _, err := MultiSeedSummary(cfg, 1); err == nil {
		t.Error("single seed accepted")
	}
}

func TestExtCooling(t *testing.T) {
	tbl, err := ExtCooling(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tbl.Rows))
	}
	// PUE and demand rise with climate temperature.
	for r := 2; r < len(tbl.Rows); r++ {
		if cell(t, tbl, r, 1) < cell(t, tbl, r-1, 1) {
			t.Errorf("PUE at %s below %s", tbl.Rows[r][0], tbl.Rows[r-1][0])
		}
		if cell(t, tbl, r, 2) < cell(t, tbl, r-1, 2) {
			t.Errorf("demand at %s below %s", tbl.Rows[r][0], tbl.Rows[r-1][0])
		}
	}
	// The saving persists in every climate.
	for r := range tbl.Rows {
		if cell(t, tbl, r, 5) <= 0 {
			t.Errorf("%s: saving %s not positive", tbl.Rows[r][0], tbl.Rows[r][5])
		}
	}
}

func TestTableWriteCSV(t *testing.T) {
	tbl := &Table{Columns: []string{"a", "b"}}
	tbl.AddRow("1", "2")
	tbl.AddRow("3", "4")
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,2\n3,4\n"
	if buf.String() != want {
		t.Errorf("csv = %q, want %q", buf.String(), want)
	}
}
