package experiments

// The "geo" scenario family evaluates the geo-distributed fleet of
// internal/geo: what workload routing between pricing regions is worth
// as regional prices diverge (GEO-1), how the sharded multi-site step
// scales from one site to eight (GEO-2), and how the latency penalty
// prices routing out (GEO-3). Site 0 of every fleet is the exact
// single-site default scope, so the one-site row of GEO-2 is the legacy
// path byte for byte; every sweep point is an independent pool job and
// each geo run's per-site fan-out draws from the same shared budget, so
// the tables are byte-identical at any parallelism level.

import (
	"fmt"

	dpss "github.com/smartdpss/smartdpss/internal/engine"
	"github.com/smartdpss/smartdpss/internal/geo"
	"github.com/smartdpss/smartdpss/internal/suite"
)

// geoSiteSpecs builds an n-site fleet: site 0 is the exact base scope
// (the legacy pin), sites 1..n−1 take derived seeds and a symmetric
// multiplicative price spread from 1−spread (cheapest) to 1+spread
// (dearest). The market price cap scales with a site's prices so dear
// sites stay within their own Pmax.
func geoSiteSpecs(cfg Config, n int, spread, penaltyUSD float64) []geo.SiteSpec {
	sites := make([]geo.SiteSpec, n)
	for i := range sites {
		tc := cfg.TraceConfig()
		opts := dpss.DefaultOptions()
		if i > 0 {
			tc.Seed = cfg.Seed + int64(i)*7919
			frac := 1.0
			if n > 2 {
				frac = float64(i-1) / float64(n-2)
			}
			scale := 1 - spread + 2*spread*frac
			tc.PriceScale = scale
			if scale > 1 {
				opts.PmaxUSD *= scale
			}
		}
		sites[i] = geo.SiteSpec{
			Name:                   fmt.Sprintf("s%d", i),
			Options:                opts,
			Trace:                  tc,
			ImportPenaltyUSDPerMWh: penaltyUSD,
		}
	}
	return sites
}

// geoRun executes one geo sweep point on the shared worker budget.
func geoRun(cfg Config, sites []geo.SiteSpec, router geo.Router) (*geo.Result, error) {
	return geo.Run(geo.Config{
		Sites:    sites,
		Policy:   dpss.PolicySmartDPSS,
		Router:   router,
		Parallel: cfg.Parallel,
		Tokens:   cfg.SpawnBudget(),
	})
}

// geoAllIn is a result's supply cost plus routing penalty per slot —
// the honest routing comparison, since the penalty prices the latency
// the routed requests actually suffer.
func geoAllIn(r *geo.Result) float64 {
	return (r.TotalCostUSD + r.RoutingPenaltyUSD) / float64(r.Slots)
}

// GeoDivSpreads are the GEO-1 price-divergence points: the ±fraction the
// regional prices spread around the base trace.
var GeoDivSpreads = []float64{0, 0.15, 0.3, 0.45}

// geoDivSites and geoDivPenaltyUSD fix the GEO-1 fleet shape: three
// regions, 5 $/MWh latency penalty.
const (
	geoDivSites      = 3
	geoDivPenaltyUSD = 5
)

// GeoDivergence sweeps regional price divergence (GEO-1). Expected
// reading: with identical prices routing moves nothing, and the greedy
// saving grows with the spread as the router ships demand from the dear
// region to the cheap one; the clairvoyant LP router bounds what per-slot
// greedy decisions leave on the table.
func GeoDivergence(cfg Config) (*Table, error) {
	routers := []geo.Router{geo.RouterNone, geo.RouterGreedy}
	if !cfg.SkipOffline {
		routers = append(routers, geo.RouterLP)
	}
	nR := len(routers)
	results, err := suite.Map(cfg, len(GeoDivSpreads)*nR, func(i int) (*geo.Result, error) {
		sites := geoSiteSpecs(cfg, geoDivSites, GeoDivSpreads[i/nR], geoDivPenaltyUSD)
		return geoRun(cfg, sites, routers[i%nR])
	})
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title: "GEO-1 — workload routing vs regional price divergence (3 sites)",
		Note: "SmartDPSS per site; site 0 is the base region, sites 1-2 spread\n" +
			"their prices by ±s; import penalty 5 $/MWh; costs are all-in\n" +
			"(supply + routing penalty) per slot; 'saving' is greedy vs none.",
		Columns: []string{"spread", "none $/slot", "greedy $/slot", "saving", "lp $/slot", "moved MWh", "penalty $"},
	}
	for si, spread := range GeoDivSpreads {
		none := results[si*nR+0]
		greedy := results[si*nR+1]
		lpCell := "-"
		if nR == 3 {
			lpCell = fmtUSD(geoAllIn(results[si*nR+2]))
		}
		t.AddRow(
			fmt.Sprintf("±%g%%", spread*100),
			fmtUSD(geoAllIn(none)),
			fmtUSD(geoAllIn(greedy)),
			fmtPct(1-geoAllIn(greedy)/geoAllIn(none)),
			lpCell,
			fmtF(greedy.MovedMWh),
			fmtUSD(greedy.RoutingPenaltyUSD),
		)
	}
	return t, nil
}

// GeoScaleCounts are the GEO-2 site counts.
var GeoScaleCounts = []int{1, 2, 4, 8}

// GeoScale grows the fleet from one site to eight under the greedy
// router (GEO-2). Expected reading: the one-site row is the legacy
// single-site path byte for byte (no routing partner, nothing moves);
// cost grows roughly linearly with the fleet while routing trims the
// dear sites, and the fleet-level aggregate peak grows sublinearly
// because regional demand peaks do not align.
func GeoScale(cfg Config) (*Table, error) {
	results, err := suite.Map(cfg, len(GeoScaleCounts), func(i int) (*geo.Result, error) {
		sites := geoSiteSpecs(cfg, GeoScaleCounts[i], 0.3, geoDivPenaltyUSD)
		return geoRun(cfg, sites, geo.RouterGreedy)
	})
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title: "GEO-2 — fleet scaling from 1 to 8 sites (greedy router)",
		Note: "SmartDPSS per site, price spread ±30%, import penalty 5 $/MWh;\n" +
			"the 1-site row is the legacy single-site path; 'peak grid' is the\n" +
			"fleet-level aggregate peak across concurrently stepped sites.",
		Columns: []string{"sites", "all-in $/slot", "per-site $/slot", "moved MWh", "peak grid MW", "peak backlog MWh"},
	}
	for i, res := range results {
		n := float64(GeoScaleCounts[i])
		t.AddRow(
			fmt.Sprintf("%d", GeoScaleCounts[i]),
			fmtUSD(geoAllIn(res)),
			fmtUSD(geoAllIn(res)/n),
			fmtF(res.MovedMWh),
			fmtF(res.PeakGridMW),
			fmtF(res.PeakBacklogMWh),
		)
	}
	return t, nil
}

// GeoLatPenalties are the GEO-3 latency-penalty points in USD/MWh.
var GeoLatPenalties = []float64{0, 5, 10, 20, 40, 80}

// GeoLatency sweeps the import penalty at a fixed ±30% price spread
// (GEO-3). Expected reading: a frontier — at zero penalty the router
// moves the most demand and books the largest supply saving, and rising
// penalties price routing out until the fleet behaves like unrouted
// islands.
func GeoLatency(cfg Config) (*Table, error) {
	results, err := suite.Map(cfg, len(GeoLatPenalties), func(i int) (*geo.Result, error) {
		sites := geoSiteSpecs(cfg, geoDivSites, 0.3, GeoLatPenalties[i])
		return geoRun(cfg, sites, geo.RouterGreedy)
	})
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title: "GEO-3 — routing latency-penalty frontier (3 sites, ±30% spread)",
		Note: "SmartDPSS per site, greedy router; the penalty prices serving a\n" +
			"request away from its home region; expected: moved demand falls\n" +
			"monotonically as the penalty rises.",
		Columns: []string{"penalty $/MWh", "supply $/slot", "routing $", "all-in $/slot", "moved MWh"},
	}
	for i, res := range results {
		t.AddRow(
			fmt.Sprintf("%g", GeoLatPenalties[i]),
			fmtUSD(res.TimeAvgCostUSD),
			fmtUSD(res.RoutingPenaltyUSD),
			fmtUSD(geoAllIn(res)),
			fmtF(res.MovedMWh),
		)
	}
	return t, nil
}
