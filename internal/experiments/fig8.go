package experiments

import (
	"fmt"

	dpss "github.com/smartdpss/smartdpss/internal/engine"
	"github.com/smartdpss/smartdpss/internal/suite"
)

// Fig8PenetrationLevels are the renewable shares of Fig. 8 (fraction of
// total demand the on-site production could cover).
var Fig8PenetrationLevels = []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0}

// Fig8VariationFactors stretch demand around its mean for Fig. 8's
// demand-variation axis.
var Fig8VariationFactors = []float64{0.5, 0.75, 1.0, 1.25, 1.5}

// Fig8Penetration reproduces Fig. 8: DPSS operation cost at increasing
// renewable penetration and increasing demand variation. The paper's
// reading: cost falls sharply with penetration (renewables are free at
// the margin) and rises mildly with demand variation (approximation
// errors grow, buffered by the battery and the two markets). Each level
// is a pool job mutating its own private clone of the cached traces.
func Fig8Penetration(cfg Config) (*Table, error) {
	opts := dpss.DefaultOptions()

	nPen := len(Fig8PenetrationLevels)
	jobs := nPen + len(Fig8VariationFactors)
	rows, err := suite.Map(cfg, jobs, func(i int) ([]string, error) {
		traces, err := baseTraces(cfg)
		if err != nil {
			return nil, err
		}
		defer suite.Release(traces)
		axis, level := "penetration", ""
		if i < nPen {
			pen := Fig8PenetrationLevels[i]
			if err := traces.SetPenetration(pen); err != nil {
				return nil, err
			}
			level = fmt.Sprintf("%.0f%%", 100*pen)
		} else {
			k := Fig8VariationFactors[i-nPen]
			if err := traces.ScaleDemandVariation(k); err != nil {
				return nil, err
			}
			axis, level = "variation", fmt.Sprintf("k=%.2f", k)
		}
		rep, err := simulate(dpss.PolicySmartDPSS, opts, traces)
		if err != nil {
			return nil, err
		}
		return []string{axis, level,
			fmtUSD(rep.TimeAvgCostUSD), fmtF(rep.WasteMWh), fmtF(traces.DemandStdDev())}, nil
	})
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title: "Fig. 8 — cost vs renewable penetration and demand variation",
		Note: "V=1, T=24, ε=0.5, Bmax=15 min;\n" +
			"expected: cost ↓ strongly with penetration, ↑ mildly with variation.",
		Columns: []string{"axis", "level", "cost $/slot", "waste MWh", "demand std MWh"},
	}
	t.Rows = rows
	return t, nil
}
