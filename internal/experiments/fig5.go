package experiments

import (
	"fmt"
	"io"

	dpss "github.com/smartdpss/smartdpss/internal/engine"
)

// Fig5Traces reproduces Fig. 5: one-month traces of power demand, solar
// power and electricity price. The paper plots the raw series; this runner
// reports their summary statistics and the diurnal profile, which is what
// the figure is meant to convey ("peaks and variances, suggesting that
// SmartDPSS can help"). Use ExportFig5CSV for the raw series.
func Fig5Traces(cfg Config) (*Table, error) {
	traces, err := baseTraces(cfg)
	if err != nil {
		return nil, err
	}
	stats, err := dpss.TraceStatistics(traces)
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title: "Fig. 5 — one-month traces of power demand, solar power and electricity price",
		Note: fmt.Sprintf("horizon %d days; renewable penetration %.1f%%; demand std dev %.3f MWh",
			cfg.Days, 100*traces.RenewablePenetration(), traces.DemandStdDev()),
		Columns: []string{"series", "unit", "mean", "std", "min", "max", "sum"},
	}
	for _, s := range stats {
		t.AddRow(s.Name, s.Unit, fmtF(s.Mean), fmtF(s.Std), fmtF(s.Min), fmtF(s.Max), fmtF(s.Sum))
	}
	return t, nil
}

// ExportFig5CSV writes the raw five-series trace set as CSV.
func ExportFig5CSV(cfg Config, w io.Writer) error {
	traces, err := baseTraces(cfg)
	if err != nil {
		return err
	}
	return traces.WriteCSV(w)
}
