// Package optimize implements the deterministic, seeded derivative-free
// optimizer behind the self-tuning controller: a Nelder–Mead downhill
// simplex with box-bound projection and seeded restarts, in the style of
// the kapacitor neldermead package.
//
// The optimizer is pure sequential control logic over a pluggable
// Objective — any parallelism (the controller tuner fans its multi-seed
// simulations out on the suite worker pool) lives inside the objective,
// so a minimization at -parallel 8 walks the exact simplex trajectory of
// the -parallel 1 run: results depend only on the Options, never on the
// execution schedule.
//
// Determinism contract: Minimize with equal (objective values, Bounds,
// Options) produces bit-identical Results — every candidate is generated
// in a fixed order from a rand.Rand seeded by Options.Seed alone, ties
// break by vertex index, and no map iteration or wall clock enters the
// control flow.
package optimize

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Objective evaluates one candidate point and returns the scalar cost to
// minimize. The optimizer treats it as a black box; an error aborts the
// minimization and is returned verbatim.
type Objective func(x []float64) (float64, error)

// Bounds is the box constraint: every candidate is projected into
// [Lo[i], Hi[i]] before evaluation, so the objective never sees an
// out-of-range point.
type Bounds struct {
	Lo []float64
	Hi []float64
}

// Dim returns the search-space dimension.
func (b Bounds) Dim() int { return len(b.Lo) }

// Validate reports malformed boxes: mismatched lengths, non-finite or
// inverted edges, and the empty box.
func (b Bounds) Validate() error {
	if len(b.Lo) == 0 {
		return errors.New("optimize: empty bounds")
	}
	if len(b.Lo) != len(b.Hi) {
		return fmt.Errorf("optimize: bounds length mismatch: %d lo vs %d hi", len(b.Lo), len(b.Hi))
	}
	for i := range b.Lo {
		if math.IsNaN(b.Lo[i]) || math.IsInf(b.Lo[i], 0) || math.IsNaN(b.Hi[i]) || math.IsInf(b.Hi[i], 0) {
			return fmt.Errorf("optimize: non-finite bound in dimension %d", i)
		}
		if b.Lo[i] > b.Hi[i] {
			return fmt.Errorf("optimize: inverted bounds in dimension %d: [%g, %g]", i, b.Lo[i], b.Hi[i])
		}
	}
	return nil
}

// Clamp projects x into the box in place.
func (b Bounds) Clamp(x []float64) {
	for i := range x {
		x[i] = math.Min(b.Hi[i], math.Max(b.Lo[i], x[i]))
	}
}

// Options tunes the minimization. The zero value selects the documented
// defaults; only Seed has no default (zero is a valid seed).
type Options struct {
	// Seed drives the restart jitter and any randomized placement. Equal
	// seeds walk equal trajectories.
	Seed int64
	// MaxEvals bounds objective evaluations (default 200 per dimension).
	MaxEvals int
	// Tol is the convergence tolerance: the minimization restarts (or
	// stops, once Restarts is exhausted) when the simplex collapses below
	// Tol in both coordinate spread and objective spread (default 1e-6).
	Tol float64
	// Restarts is the number of seeded re-inflations around the incumbent
	// after a collapse — the standard escape from degenerate simplexes on
	// noisy or flat objectives (default 2).
	Restarts int
	// InitStep is the initial simplex edge length as a fraction of each
	// dimension's box width (default 0.15).
	InitStep float64
	// Quantize, when non-nil, snaps a candidate onto its feasible lattice
	// after the box projection and before evaluation — integer-valued
	// controller parameters (T, CommitWindow) round here, the way the
	// kapacitor exemplar rounds through its constraint callback. It must
	// be deterministic and keep the point inside the bounds.
	Quantize func(x []float64)
}

// withDefaults resolves the documented defaults against the dimension.
func (o Options) withDefaults(dim int) Options {
	if o.MaxEvals <= 0 {
		o.MaxEvals = 200 * dim
	}
	if o.Tol <= 0 {
		o.Tol = 1e-6
	}
	if o.Restarts < 0 {
		o.Restarts = 0
	} else if o.Restarts == 0 {
		o.Restarts = 2
	}
	if o.InitStep <= 0 || o.InitStep > 1 {
		o.InitStep = 0.15
	}
	return o
}

// Step is one trajectory entry: the incumbent after an improving
// iteration.
type Step struct {
	// Eval is the number of objective evaluations spent when the
	// incumbent was accepted.
	Eval int
	// F is the incumbent objective value.
	F float64
	// X is the incumbent point (a private copy).
	X []float64
}

// Result is a finished minimization.
type Result struct {
	// X is the best point found, inside the bounds.
	X []float64
	// F is the objective at X.
	F float64
	// Evals counts objective evaluations.
	Evals int
	// Restarts counts simplex re-inflations actually taken.
	Restarts int
	// Trajectory records every improvement of the incumbent in
	// acceptance order; two runs agree iff their trajectories agree.
	Trajectory []Step
}

// vertex is one simplex corner.
type vertex struct {
	x []float64
	f float64
}

// Minimize runs the bounded Nelder–Mead search from start (clamped into
// the box; nil starts from the box center).
func Minimize(obj Objective, start []float64, b Bounds, opts Options) (*Result, error) {
	if obj == nil {
		return nil, errors.New("optimize: nil objective")
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	dim := b.Dim()
	if start != nil && len(start) != dim {
		return nil, fmt.Errorf("optimize: start has %d dimensions, bounds have %d", len(start), dim)
	}
	opts = opts.withDefaults(dim)
	rng := rand.New(rand.NewSource(opts.Seed))

	x0 := make([]float64, dim)
	if start == nil {
		for i := range x0 {
			x0[i] = b.Lo[i] + 0.5*(b.Hi[i]-b.Lo[i])
		}
	} else {
		copy(x0, start)
	}
	b.Clamp(x0)

	m := &minimizer{obj: obj, bounds: b, opts: opts, rng: rng, res: &Result{}}
	best, err := m.run(x0)
	if err != nil {
		return nil, err
	}
	m.res.X = best.x
	m.res.F = best.f
	return m.res, nil
}

type minimizer struct {
	obj    Objective
	bounds Bounds
	opts   Options
	rng    *rand.Rand
	res    *Result
	best   vertex
}

// eval projects, quantizes and evaluates one candidate, tracking the
// incumbent and the trajectory.
func (m *minimizer) eval(x []float64) (vertex, error) {
	p := make([]float64, len(x))
	copy(p, x)
	m.bounds.Clamp(p)
	if m.opts.Quantize != nil {
		m.opts.Quantize(p)
		m.bounds.Clamp(p)
	}
	f, err := m.obj(p)
	if err != nil {
		return vertex{}, err
	}
	if math.IsNaN(f) {
		return vertex{}, fmt.Errorf("optimize: objective returned NaN at %v", p)
	}
	m.res.Evals++
	v := vertex{x: p, f: f}
	if m.best.x == nil || f < m.best.f {
		m.best = v
		step := Step{Eval: m.res.Evals, F: f, X: append([]float64(nil), p...)}
		m.res.Trajectory = append(m.res.Trajectory, step)
	}
	return v, nil
}

// run executes the restart loop: a full Nelder–Mead descent, then up to
// opts.Restarts re-inflations around the incumbent with seeded jitter.
func (m *minimizer) run(x0 []float64) (vertex, error) {
	center := x0
	for attempt := 0; ; attempt++ {
		if err := m.descend(center, attempt); err != nil {
			return vertex{}, err
		}
		if m.res.Evals >= m.opts.MaxEvals || attempt >= m.opts.Restarts {
			return m.best, nil
		}
		m.res.Restarts++
		center = m.best.x
	}
}

// descend is one simplex descent from an initial simplex around center.
// attempt > 0 jitters the re-inflated simplex so a restart never rebuilds
// the collapsed geometry it is escaping.
func (m *minimizer) descend(center []float64, attempt int) error {
	const (
		alpha = 1.0 // reflection
		gamma = 2.0 // expansion
		rho   = 0.5 // contraction
		sigma = 0.5 // shrink
	)
	dim := m.bounds.Dim()

	simplex := make([]vertex, 0, dim+1)
	v, err := m.eval(center)
	if err != nil {
		return err
	}
	simplex = append(simplex, v)
	for i := 0; i < dim; i++ {
		x := append([]float64(nil), center...)
		step := m.opts.InitStep * (m.bounds.Hi[i] - m.bounds.Lo[i])
		if attempt > 0 {
			// Jittered re-inflation: direction and scale drawn from the
			// seeded stream, so restarts explore fresh geometry
			// deterministically.
			step *= 0.5 + m.rng.Float64()
			if m.rng.Intn(2) == 0 {
				step = -step
			}
		}
		if step == 0 { // degenerate dimension (Lo == Hi)
			step = m.opts.Tol
		}
		// Walk downhill from the upper edge: if the step leaves the box,
		// flip it so the simplex spans the interior.
		if x[i]+step > m.bounds.Hi[i] || x[i]+step < m.bounds.Lo[i] {
			step = -step
		}
		x[i] += step
		if v, err = m.eval(x); err != nil {
			return err
		}
		simplex = append(simplex, v)
		if m.res.Evals >= m.opts.MaxEvals {
			return nil
		}
	}

	centroid := make([]float64, dim)
	cand := make([]float64, dim)
	for m.res.Evals < m.opts.MaxEvals {
		sortSimplex(simplex)
		if m.collapsed(simplex) {
			return nil
		}

		// Centroid of all but the worst vertex.
		for i := range centroid {
			centroid[i] = 0
		}
		for _, v := range simplex[:dim] {
			for i, xi := range v.x {
				centroid[i] += xi
			}
		}
		for i := range centroid {
			centroid[i] /= float64(dim)
		}
		worst := simplex[dim]

		// Reflection.
		for i := range cand {
			cand[i] = centroid[i] + alpha*(centroid[i]-worst.x[i])
		}
		refl, err := m.eval(cand)
		if err != nil {
			return err
		}
		switch {
		case refl.f < simplex[0].f:
			// Expansion.
			if m.res.Evals >= m.opts.MaxEvals {
				simplex[dim] = refl
				continue
			}
			for i := range cand {
				cand[i] = centroid[i] + gamma*(refl.x[i]-centroid[i])
			}
			exp, err := m.eval(cand)
			if err != nil {
				return err
			}
			if exp.f < refl.f {
				simplex[dim] = exp
			} else {
				simplex[dim] = refl
			}
		case refl.f < simplex[dim-1].f:
			simplex[dim] = refl
		default:
			// Contraction (outside towards the better of worst/reflected).
			if m.res.Evals >= m.opts.MaxEvals {
				return nil
			}
			toward := worst
			if refl.f < worst.f {
				toward = refl
			}
			for i := range cand {
				cand[i] = centroid[i] + rho*(toward.x[i]-centroid[i])
			}
			con, err := m.eval(cand)
			if err != nil {
				return err
			}
			if con.f < toward.f {
				simplex[dim] = con
				continue
			}
			// Shrink towards the best vertex.
			for j := 1; j < len(simplex); j++ {
				if m.res.Evals >= m.opts.MaxEvals {
					return nil
				}
				for i := range cand {
					cand[i] = simplex[0].x[i] + sigma*(simplex[j].x[i]-simplex[0].x[i])
				}
				if simplex[j], err = m.eval(cand); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// collapsed reports whether the simplex has converged: both the
// coordinate spread and the objective spread are below Tol (scaled by the
// incumbent's magnitude).
func (m *minimizer) collapsed(simplex []vertex) bool {
	tol := m.opts.Tol
	fSpread := math.Abs(simplex[len(simplex)-1].f - simplex[0].f)
	if fSpread > tol*(1+math.Abs(simplex[0].f)) {
		return false
	}
	for _, v := range simplex[1:] {
		for i, xi := range v.x {
			if math.Abs(xi-simplex[0].x[i]) > tol*(1+math.Abs(simplex[0].x[i])) {
				return false
			}
		}
	}
	return true
}

// sortSimplex orders vertices best-first. The sort is stable and ties
// break by the pre-sort index, so equal objective values cannot reorder
// between runs — part of the determinism contract.
func sortSimplex(s []vertex) {
	sort.SliceStable(s, func(i, j int) bool { return s[i].f < s[j].f })
}
