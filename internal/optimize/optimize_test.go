package optimize

import (
	"errors"
	"math"
	"reflect"
	"testing"
)

func quadratic(center []float64) Objective {
	return func(x []float64) (float64, error) {
		s := 0.0
		for i, xi := range x {
			d := xi - center[i]
			s += d * d
		}
		return s, nil
	}
}

func rosenbrock(x []float64) (float64, error) {
	a, b := x[0], x[1]
	return 100*(b-a*a)*(b-a*a) + (1-a)*(1-a), nil
}

func TestMinimizeQuadraticBowl(t *testing.T) {
	b := Bounds{Lo: []float64{-5, -5, -5}, Hi: []float64{5, 5, 5}}
	want := []float64{1.25, -2.5, 0.75}
	res, err := Minimize(quadratic(want), nil, b, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, xi := range res.X {
		if math.Abs(xi-want[i]) > 1e-3 {
			t.Errorf("dim %d: got %g want %g", i, xi, want[i])
		}
	}
	if res.F > 1e-6 {
		t.Errorf("F = %g, want ~0", res.F)
	}
	if res.Evals == 0 || len(res.Trajectory) == 0 {
		t.Errorf("empty bookkeeping: evals=%d trajectory=%d", res.Evals, len(res.Trajectory))
	}
	last := res.Trajectory[len(res.Trajectory)-1]
	if last.F != res.F || !reflect.DeepEqual(last.X, res.X) {
		t.Errorf("trajectory tail %v/%g disagrees with result %v/%g", last.X, last.F, res.X, res.F)
	}
}

func TestMinimizeRosenbrock(t *testing.T) {
	b := Bounds{Lo: []float64{-2, -2}, Hi: []float64{2, 2}}
	start := []float64{-1.2, 1.0}
	res, err := Minimize(rosenbrock, start, b, Options{Seed: 7, MaxEvals: 2000, Restarts: 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-1) > 1e-2 || math.Abs(res.X[1]-1) > 1e-2 {
		t.Errorf("got %v, want near (1, 1); F=%g", res.X, res.F)
	}
}

func TestMinimizeRespectsBounds(t *testing.T) {
	// Optimum at (10, 10) lies outside the box: the best feasible point
	// is the corner (2, 2), and no evaluation may leave the box.
	b := Bounds{Lo: []float64{-2, -2}, Hi: []float64{2, 2}}
	obj := func(x []float64) (float64, error) {
		for i, xi := range x {
			if xi < b.Lo[i]-1e-12 || xi > b.Hi[i]+1e-12 {
				t.Fatalf("evaluated out-of-bounds point %v", x)
			}
		}
		return quadratic([]float64{10, 10})(x)
	}
	res, err := Minimize(obj, nil, b, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-2) > 1e-3 || math.Abs(res.X[1]-2) > 1e-3 {
		t.Errorf("got %v, want corner (2, 2)", res.X)
	}
}

func TestMinimizeSameSeedBitIdentical(t *testing.T) {
	b := Bounds{Lo: []float64{-2, -2}, Hi: []float64{2, 2}}
	opts := Options{Seed: 42, MaxEvals: 500, Restarts: 3}
	r1, err := Minimize(rosenbrock, []float64{-1.2, 1}, b, opts)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Minimize(rosenbrock, []float64{-1.2, 1}, b, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Errorf("same seed diverged:\n%+v\nvs\n%+v", r1, r2)
	}
}

func TestMinimizeDistinctSeedsStableWinners(t *testing.T) {
	// Distinct seeds may walk different trajectories (restart jitter) but
	// must land on the same documented optimum of a convex bowl.
	b := Bounds{Lo: []float64{-5, -5}, Hi: []float64{5, 5}}
	want := []float64{0.5, -1.5}
	for _, seed := range []int64{1, 2, 99, 12345} {
		res, err := Minimize(quadratic(want), []float64{4, 4}, b, Options{Seed: seed, Restarts: 3})
		if err != nil {
			t.Fatal(err)
		}
		for i, xi := range res.X {
			if math.Abs(xi-want[i]) > 1e-3 {
				t.Errorf("seed %d dim %d: got %g want %g", seed, i, xi, want[i])
			}
		}
	}
}

func TestMinimizeQuantize(t *testing.T) {
	// Dimension 1 is integer-valued; the quantized optimum of
	// (x-1.2)^2 + (y-6.7)^2 over integers in y is y = 7.
	b := Bounds{Lo: []float64{-10, 0}, Hi: []float64{10, 20}}
	q := func(x []float64) { x[1] = math.Round(x[1]) }
	seen := false
	obj := func(x []float64) (float64, error) {
		if x[1] != math.Round(x[1]) {
			t.Fatalf("unquantized candidate %v", x)
		}
		seen = true
		return quadratic([]float64{1.2, 6.7})(x)
	}
	res, err := Minimize(obj, nil, b, Options{Seed: 5, Quantize: q})
	if err != nil {
		t.Fatal(err)
	}
	if !seen {
		t.Fatal("objective never called")
	}
	if res.X[1] != 7 {
		t.Errorf("integer dim: got %g want 7", res.X[1])
	}
	if math.Abs(res.X[0]-1.2) > 1e-3 {
		t.Errorf("continuous dim: got %g want 1.2", res.X[0])
	}
}

func TestMinimizeRestartsEscapeCollapse(t *testing.T) {
	b := Bounds{Lo: []float64{-5, -5}, Hi: []float64{5, 5}}
	res, err := Minimize(quadratic([]float64{0, 0}), []float64{4, 4}, b,
		Options{Seed: 9, Restarts: 2, Tol: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts == 0 {
		t.Errorf("expected restarts after collapse at loose Tol, got 0")
	}
	if res.F > 1e-4 {
		t.Errorf("F = %g after restarts, want ~0", res.F)
	}
}

func TestMinimizeMaxEvalsBudget(t *testing.T) {
	b := Bounds{Lo: []float64{-5, -5}, Hi: []float64{5, 5}}
	res, err := Minimize(quadratic([]float64{0, 0}), nil, b,
		Options{Seed: 1, MaxEvals: 7, Restarts: 5})
	if err != nil {
		t.Fatal(err)
	}
	// The budget may overrun by at most one in-flight expansion pair.
	if res.Evals > 9 {
		t.Errorf("evals = %d, budget 7", res.Evals)
	}
}

func TestMinimizeDegenerateDimension(t *testing.T) {
	// Lo == Hi pins a dimension; the search must still converge in the
	// remaining ones.
	b := Bounds{Lo: []float64{3, -5}, Hi: []float64{3, 5}}
	res, err := Minimize(quadratic([]float64{0, 2}), nil, b, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.X[0] != 3 {
		t.Errorf("pinned dim moved to %g", res.X[0])
	}
	if math.Abs(res.X[1]-2) > 1e-3 {
		t.Errorf("free dim: got %g want 2", res.X[1])
	}
}

func TestMinimizeErrors(t *testing.T) {
	good := Bounds{Lo: []float64{0}, Hi: []float64{1}}
	cases := []struct {
		name  string
		obj   Objective
		start []float64
		b     Bounds
	}{
		{"nil objective", nil, nil, good},
		{"empty bounds", quadratic([]float64{0}), nil, Bounds{}},
		{"length mismatch", quadratic([]float64{0}), nil, Bounds{Lo: []float64{0}, Hi: []float64{1, 2}}},
		{"inverted", quadratic([]float64{0}), nil, Bounds{Lo: []float64{2}, Hi: []float64{1}}},
		{"non-finite", quadratic([]float64{0}), nil, Bounds{Lo: []float64{math.NaN()}, Hi: []float64{1}}},
		{"start dim", quadratic([]float64{0}), []float64{0, 0}, good},
	}
	for _, tc := range cases {
		if _, err := Minimize(tc.obj, tc.start, tc.b, Options{}); err == nil {
			t.Errorf("%s: want error", tc.name)
		}
	}

	objErr := errors.New("boom")
	if _, err := Minimize(func([]float64) (float64, error) { return 0, objErr }, nil, good, Options{}); !errors.Is(err, objErr) {
		t.Errorf("objective error not propagated: %v", err)
	}
	calls := 0
	nan := func(x []float64) (float64, error) {
		calls++
		if calls > 3 {
			return math.NaN(), nil
		}
		return x[0] * x[0], nil
	}
	if _, err := Minimize(nan, nil, Bounds{Lo: []float64{-1, -1}, Hi: []float64{1, 1}}, Options{}); err == nil {
		t.Error("NaN objective: want error")
	}
}
