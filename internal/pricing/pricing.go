// Package pricing generates synthetic two-timescale electricity price
// traces for the smart-grid markets of SmartDPSS (Sec. II-A.1).
//
// The paper uses NYISO locational prices for January 2012 (day-ahead as the
// long-term-ahead market, real-time as the balancing market). This package
// substitutes seeded stochastic processes with the properties that drive
// the algorithm: the long-term price is cheaper in expectation than the
// real-time price (Sec. II-B.2: E[prt] > E[plt], the contract discount for
// upfront payment), both lie in [0, Pmax], the real-time series carries a
// diurnal double peak, mean-reverting noise and occasional heavy-tailed
// spikes, and day-to-day levels wander slowly.
//
// The package owns only the price-process generators and their
// parameters. internal/engine is its sole consumer: trace generation
// calls it once per run, stores the result in a trace.Set, and everything
// downstream (policies, baselines, the simulator) reads prices from that
// set, never from here.
package pricing

import (
	"errors"
	"math"
	"math/rand"

	"github.com/smartdpss/smartdpss/internal/trace"
)

// Config parameterizes the price generator.
type Config struct {
	// Days is the number of simulated days.
	Days int
	// SlotMinutes is the trace resolution.
	SlotMinutes int
	// BaseLT is the mean long-term-ahead price in USD/MWh.
	BaseLT float64
	// RTPremium multiplies the long-term level to set the mean real-time
	// level (must be > 1 so that E[prt] > E[plt]).
	RTPremium float64
	// Pmax is the regulatory price cap (paper: upper bound on both markets).
	Pmax float64
	// PFloor is the lowest admissible price.
	PFloor float64
	// DiurnalAmp is the relative amplitude of the real-time diurnal shape.
	DiurnalAmp float64
	// NoiseSigma is the per-slot mean-reverting noise scale (USD/MWh).
	NoiseSigma float64
	// SpikeProb is the per-slot probability of a real-time price spike.
	SpikeProb float64
	// SpikeFactor is the mean multiplier applied during a spike.
	SpikeFactor float64
	// Seed drives the deterministic random source.
	Seed int64
}

// Defaults returns a NYISO-January-like configuration.
func Defaults() Config {
	return Config{
		Days:        31,
		SlotMinutes: 60,
		BaseLT:      38,
		RTPremium:   1.15,
		Pmax:        150,
		PFloor:      5,
		DiurnalAmp:  0.25,
		NoiseSigma:  4.0,
		SpikeProb:   0.012,
		SpikeFactor: 2.2,
		Seed:        2,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Days <= 0:
		return errors.New("pricing: Days must be positive")
	case c.SlotMinutes <= 0 || c.SlotMinutes > 24*60:
		return errors.New("pricing: SlotMinutes out of range")
	case c.BaseLT <= 0:
		return errors.New("pricing: BaseLT must be positive")
	case c.RTPremium <= 1:
		return errors.New("pricing: RTPremium must exceed 1 (E[prt] > E[plt])")
	case c.Pmax <= c.BaseLT:
		return errors.New("pricing: Pmax must exceed BaseLT")
	case c.PFloor < 0 || c.PFloor >= c.BaseLT:
		return errors.New("pricing: PFloor must be in [0, BaseLT)")
	case c.DiurnalAmp < 0 || c.DiurnalAmp > 1:
		return errors.New("pricing: DiurnalAmp must be in [0, 1]")
	case c.NoiseSigma < 0:
		return errors.New("pricing: negative NoiseSigma")
	case c.SpikeProb < 0 || c.SpikeProb > 1:
		return errors.New("pricing: SpikeProb must be in [0, 1]")
	case c.SpikeFactor < 1:
		return errors.New("pricing: SpikeFactor must be >= 1")
	}
	return nil
}

// Generate produces the long-term and real-time price series in USD/MWh at
// fine-slot resolution. The long-term series is piecewise smooth so that
// sampling it at any coarse interval start (any T) is meaningful.
func Generate(c Config) (lt, rt *trace.Series, err error) {
	if err := c.Validate(); err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(c.Seed))
	slotsPerDay := 24 * 60 / c.SlotMinutes
	n := c.Days * slotsPerDay
	lt = trace.New("price_lt", "USD/MWh", c.SlotMinutes, n)
	rt = trace.New("price_rt", "USD/MWh", c.SlotMinutes, n)

	slotHours := float64(c.SlotMinutes) / 60.0

	// Daily long-term level: slow AR(1) walk around BaseLT with a weekly
	// shape (weekdays pricier than weekends).
	dayLevel := make([]float64, c.Days)
	level := c.BaseLT
	for d := range dayLevel {
		level += 0.3*(c.BaseLT-level) + 0.06*c.BaseLT*rng.NormFloat64()
		weekly := 1.0
		switch d % 7 {
		case 5, 6: // weekend
			weekly = 0.9
		}
		dayLevel[d] = clamp(level*weekly, c.PFloor, 0.9*c.Pmax)
	}

	noise := 0.0 // mean-reverting real-time deviation
	spikeLeft := 0
	spikeMul := 1.0
	for i := 0; i < n; i++ {
		day := i / slotsPerDay
		hour := (float64(i%slotsPerDay) + 0.5) * slotHours

		// Long-term price: the day's level with a faint diurnal tilt so
		// that intraday coarse intervals (T < 24h) still see structure.
		ltP := dayLevel[day] * (1 + 0.05*diurnalShape(hour))
		lt.Values[i] = clamp(ltP, c.PFloor, c.Pmax)

		// Real-time price: premium level, stronger diurnal shape,
		// mean-reverting noise and occasional multiplicative spikes.
		noise += -0.5*noise + c.NoiseSigma*rng.NormFloat64()
		if spikeLeft > 0 {
			spikeLeft--
		} else if rng.Float64() < c.SpikeProb {
			spikeLeft = 1 + rng.Intn(3)
			spikeMul = 1 + (c.SpikeFactor-1)*(0.5+rng.Float64())
		}
		mul := 1.0
		if spikeLeft > 0 {
			mul = spikeMul
		}
		rtP := dayLevel[day]*c.RTPremium*(1+c.DiurnalAmp*diurnalShape(hour))*mul + noise
		rt.Values[i] = clamp(rtP, c.PFloor, c.Pmax)
	}
	return lt, rt, nil
}

// diurnalShape returns a smooth [-1, 1] shape with morning and evening
// peaks typical of winter load-following prices.
func diurnalShape(hour float64) float64 {
	morning := math.Exp(-sq(hour-8.5) / (2 * sq(2.0)))
	evening := math.Exp(-sq(hour-18.5) / (2 * sq(2.5)))
	night := math.Exp(-sq(hour-3.5) / (2 * sq(3.0)))
	return clamp(0.9*morning+1.1*evening-0.8*night, -1, 1)
}

func sq(x float64) float64 { return x * x }

func clamp(x, lo, hi float64) float64 { return math.Min(hi, math.Max(lo, x)) }
