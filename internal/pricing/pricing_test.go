package pricing

import (
	"testing"
)

func mustGenerate(t *testing.T, c Config) (lt, rt []float64) {
	t.Helper()
	ltS, rtS, err := Generate(c)
	if err != nil {
		t.Fatal(err)
	}
	return ltS.Values, rtS.Values
}

func TestGenerateLengthsAndBounds(t *testing.T) {
	c := Defaults()
	lt, rt := mustGenerate(t, c)
	if len(lt) != 31*24 || len(rt) != 31*24 {
		t.Fatalf("lengths = %d, %d, want %d", len(lt), len(rt), 31*24)
	}
	for i := range lt {
		if lt[i] < c.PFloor || lt[i] > c.Pmax {
			t.Fatalf("lt[%d] = %g outside [%g, %g]", i, lt[i], c.PFloor, c.Pmax)
		}
		if rt[i] < c.PFloor || rt[i] > c.Pmax {
			t.Fatalf("rt[%d] = %g outside [%g, %g]", i, rt[i], c.PFloor, c.Pmax)
		}
	}
}

func TestGenerateRealTimePremium(t *testing.T) {
	ltS, rtS, err := Generate(Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if rtS.Mean() <= ltS.Mean() {
		t.Fatalf("E[prt] = %g must exceed E[plt] = %g (paper Sec. II-B.2)",
			rtS.Mean(), ltS.Mean())
	}
}

func TestGenerateRealTimeMoreVolatile(t *testing.T) {
	ltS, rtS, err := Generate(Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if rtS.StdDev() <= ltS.StdDev() {
		t.Fatalf("real-time std %g must exceed long-term std %g",
			rtS.StdDev(), ltS.StdDev())
	}
}

func TestGenerateSpikesOccur(t *testing.T) {
	c := Defaults()
	_, rt := mustGenerate(t, c)
	base := c.BaseLT * c.RTPremium
	spikes := 0
	for _, v := range rt {
		if v > 1.8*base {
			spikes++
		}
	}
	if spikes == 0 {
		t.Fatal("no real-time spikes in a month; spike process broken")
	}
}

func TestGenerateNoSpikesWhenDisabled(t *testing.T) {
	c := Defaults()
	c.SpikeProb = 0
	c.NoiseSigma = 0
	_, rt := mustGenerate(t, c)
	limit := 0.9*c.Pmax*c.RTPremium*(1+c.DiurnalAmp) + 1e-9
	for i, v := range rt {
		if v > limit {
			t.Fatalf("rt[%d] = %g exceeds spike-free envelope %g", i, v, limit)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	lt1, rt1 := mustGenerate(t, Defaults())
	lt2, rt2 := mustGenerate(t, Defaults())
	for i := range lt1 {
		if lt1[i] != lt2[i] || rt1[i] != rt2[i] {
			t.Fatalf("same seed diverged at slot %d", i)
		}
	}
	c := Defaults()
	c.Seed = 77
	_, rt3 := mustGenerate(t, c)
	same := true
	for i := range rt1 {
		if rt1[i] != rt3[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestGenerateWeekendDiscount(t *testing.T) {
	c := Defaults()
	c.NoiseSigma = 0
	c.SpikeProb = 0
	lt, _ := mustGenerate(t, c)
	weekday, weekend := 0.0, 0.0
	nWd, nWe := 0, 0
	for i, v := range lt {
		day := i / 24
		if day%7 == 5 || day%7 == 6 {
			weekend += v
			nWe++
		} else {
			weekday += v
			nWd++
		}
	}
	if weekend/float64(nWe) >= weekday/float64(nWd) {
		t.Fatalf("weekend mean %g not below weekday mean %g",
			weekend/float64(nWe), weekday/float64(nWd))
	}
}

func TestGenerateEveningPeak(t *testing.T) {
	c := Defaults()
	c.NoiseSigma = 0
	c.SpikeProb = 0
	_, rt := mustGenerate(t, c)
	evening, night := 0.0, 0.0
	for d := 0; d < c.Days; d++ {
		evening += rt[d*24+18]
		night += rt[d*24+3]
	}
	if evening <= night {
		t.Fatalf("evening total %g not above night total %g", evening, night)
	}
}

func TestConfigValidate(t *testing.T) {
	mut := func(f func(*Config)) Config {
		c := Defaults()
		f(&c)
		return c
	}
	bad := []Config{
		mut(func(c *Config) { c.Days = 0 }),
		mut(func(c *Config) { c.SlotMinutes = 0 }),
		mut(func(c *Config) { c.BaseLT = 0 }),
		mut(func(c *Config) { c.RTPremium = 1 }),
		mut(func(c *Config) { c.Pmax = c.BaseLT }),
		mut(func(c *Config) { c.PFloor = -1 }),
		mut(func(c *Config) { c.PFloor = c.BaseLT }),
		mut(func(c *Config) { c.DiurnalAmp = 2 }),
		mut(func(c *Config) { c.NoiseSigma = -1 }),
		mut(func(c *Config) { c.SpikeProb = 2 }),
		mut(func(c *Config) { c.SpikeFactor = 0.5 }),
	}
	for i, c := range bad {
		if _, _, err := Generate(c); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestDiurnalShapeBounded(t *testing.T) {
	for h := 0.0; h < 24; h += 0.25 {
		v := diurnalShape(h)
		if v < -1 || v > 1 {
			t.Fatalf("diurnalShape(%g) = %g outside [-1, 1]", h, v)
		}
	}
}
