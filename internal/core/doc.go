// Package core implements SmartDPSS, the paper's primary contribution: an
// online two-timescale Lyapunov (drift-plus-penalty) controller for a
// datacenter power supply system with long-term-ahead and real-time grid
// markets, on-site renewable production, a UPS battery, and a mix of
// delay-sensitive and delay-tolerant demand (Algorithm 1 of the paper).
//
// # Subproblems
//
// At each coarse slot t = kT the controller solves P4, choosing the
// long-term purchase gbef(t) to minimize
//
//	gbef(t) · [V·plt(t) − Q(t) − Y(t)]
//
// subject to covering the observed delay-sensitive deficit and the grid
// cap. At each fine slot τ it solves P5 over (grt, γ, brc, bdc, W):
//
//	grt(τ)·[V·prt(τ) − Q(t) − Y(t)]           (real-time purchase)
//	− sdt(τ)·[Q(t) + Y(t)]                     (backlog service, sdt = γQ)
//	+ [Q(t) + X(t) + Y(t)]·(brc(τ) − bdc(τ))   (battery pressure)
//	+ V·n(τ)·Cb + V·wW·W(τ)                    (UPS wear and waste)
//
// subject to the supply/demand balance (Eq. 4), the grid cap (Eq. 5),
// battery rate/level limits (Eqs. 7–8) and the service cap Sdtmax, using
// the queue states frozen at the interval start (the paper's Sec. IV-A
// approximation Q(τ) ≈ Q(t), X(τ) ≈ X(t), Y(τ) ≈ Y(t)).
//
// # Correction of printed sign typos
//
// The published P5 writes the service term as γ(τ)[Q(t)² − Q(t)Y(t)],
// i.e. +sdt·(Q − Y). Taken literally this *discourages* serving a large
// backlog, contradicting Lemma 3, the Qmax/Ymax bounds of Theorem 2 and
// the measured behaviour in Sec. VI. Re-deriving the T-slot
// drift-plus-penalty bound from the queue dynamics (Eqs. 2, 12, 15) gives
// the service weight −(Q(t) + Y(t))·sdt, which we implement. All other
// printed coefficients (purchases, battery, Theorem 2 bound formulas) are
// implemented exactly as published.
//
// # Exact handling of the UPS fixed charge
//
// The per-slot battery operation cost V·n(τ)·Cb is a fixed charge, which a
// plain LP cannot represent. Because n(τ) is a single binary per slot, the
// controller solves P5 twice — once with the battery frozen, once with it
// free — and keeps the cheaper alternative after adding V·Cb to the
// battery-active objective. This is exact.
//
// # Two interchangeable P5 solvers
//
// P5 is solved either through the dense-simplex substrate (internal/lp,
// mirroring the paper's "solve with linear programming, e.g. simplex") or
// through a closed-form merit-order solver that exploits P5's structure: a
// single balance node with per-leg linear costs, solvable by sorting
// source and sink legs and greedily matching negative-cost pairs. Property
// tests assert both solvers produce equal objectives; the analytic path is
// roughly two orders of magnitude faster (see the ablation benchmark).
//
// The controller is deliberately single-site: it owns no global state, so
// a geo-distributed fleet (internal/geo) composes per-site Controller
// instances stepped concurrently, one per site, coupled only through the
// workload router upstream of each site's demand inputs.
package core
