package core

import (
	"math"
	"testing"

	"github.com/smartdpss/smartdpss/internal/market"
	"github.com/smartdpss/smartdpss/internal/pricing"
	"github.com/smartdpss/smartdpss/internal/sim"
	"github.com/smartdpss/smartdpss/internal/solar"
	"github.com/smartdpss/smartdpss/internal/trace"
	"github.com/smartdpss/smartdpss/internal/workload"
)

// testTraces builds a deterministic paper-like trace set.
func testTraces(t *testing.T, days int) *trace.Set {
	t.Helper()
	wc := workload.Defaults()
	wc.Days = days
	ds, dt, err := workload.Generate(wc)
	if err != nil {
		t.Fatal(err)
	}
	sc := solar.Defaults()
	sc.Days = days
	sun, err := solar.Generate(sc)
	if err != nil {
		t.Fatal(err)
	}
	pc := pricing.Defaults()
	pc.Days = days
	lt, rt, err := pricing.Generate(pc)
	if err != nil {
		t.Fatal(err)
	}
	set := &trace.Set{DemandDS: ds, DemandDT: dt, Renewable: sun, PriceLT: lt, PriceRT: rt}
	if err := set.Validate(); err != nil {
		t.Fatal(err)
	}
	return set
}

func simMarket(p Params) market.Params {
	return market.Params{PgridMWh: p.PgridMWh, PmaxUSD: p.PmaxUSD}
}

func simConfig(p Params) sim.Config {
	return sim.Config{
		Battery:          p.Battery,
		Market:           simMarket(p),
		WasteCostUSD:     p.WasteCostUSD,
		EmergencyCostUSD: p.EmergencyCostUSD,
		SdtMaxMWh:        p.SdtMaxMWh,
		SmaxMWh:          p.SmaxMWh,
		KeepSeries:       true,
	}
}

func TestNewRejectsInvalidParams(t *testing.T) {
	p := DefaultParams()
	p.V = -1
	if _, err := New(p); err == nil {
		t.Fatal("invalid params accepted")
	}
}

func TestPlanCoarseFreezesState(t *testing.T) {
	c, err := New(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	obs := sim.CoarseObs{
		Slot: 0, Slots: 24, PriceLT: 40,
		DemandDS: 1.0, Renewable: 0.2, Battery: 0.3, Backlog: 2.5,
	}
	c.PlanCoarse(obs)
	q, x, y := c.FrozenState()
	if q != 2.5 {
		t.Errorf("frozen Q = %g, want 2.5", q)
	}
	if y != 0 {
		t.Errorf("frozen Y = %g, want 0 (fresh controller)", y)
	}
	wantX := 0.3 - c.Params().XShift()
	if math.Abs(x-wantX) > 1e-12 {
		t.Errorf("frozen X = %g, want %g", x, wantX)
	}
}

func TestPlanCoarseDeficitPurchase(t *testing.T) {
	p := DefaultParams()
	c, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	// Weight positive (V·plt = 40 > Q+Y = 0): buy exactly the deficit.
	obs := sim.CoarseObs{
		Slot: 0, Slots: 24, PriceLT: 40,
		DemandDS: 1.0, Renewable: 0.2,
		Battery: p.Battery.MinLevelMWh, // empty battery: no contribution
	}
	gbef := c.PlanCoarse(obs)
	want := 24 * (1.0 - 0.2)
	if math.Abs(gbef-want) > 1e-9 {
		t.Errorf("gbef = %g, want %g", gbef, want)
	}
}

func TestPlanCoarseBangBangWhenQueuesDominate(t *testing.T) {
	p := DefaultParams()
	p.V = 0.01 // V·plt tiny: queue pressure wins
	c, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	obs := sim.CoarseObs{
		Slot: 0, Slots: 24, PriceLT: 40,
		DemandDS: 0.5, Renewable: 0.2, Battery: 0.3,
		Backlog: 5.0, // V·plt = 0.4 < Q+Y = 5
	}
	gbef := c.PlanCoarse(obs)
	// The queue-pressure branch buys aggressively, capped at what the
	// system can consume (dds − r + backlog drain + battery headroom); it
	// must clearly exceed the deficit-only purchase of the normal branch.
	deficitOnly := 24 * (obs.DemandDS - obs.Renewable)
	if gbef <= deficitOnly {
		t.Errorf("gbef = %g, want above the deficit-only %g", gbef, deficitOnly)
	}
	if gbef > 24*p.PgridMWh+1e-9 {
		t.Errorf("gbef = %g exceeds the grid cap %g", gbef, 24*p.PgridMWh)
	}
	// Consumable estimate: 0.5 − 0.2 + drain(5/24 + ddt 0) + charge room.
	drain := 5.0 / 24
	if gbef < 24*(obs.DemandDS-obs.Renewable+drain)-1e-9 {
		t.Errorf("gbef = %g below demand+drain floor", gbef)
	}
}

func TestPlanCoarseDisabledLongTerm(t *testing.T) {
	p := DefaultParams()
	p.DisableLongTerm = true
	c, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	obs := sim.CoarseObs{Slot: 0, Slots: 24, PriceLT: 40, DemandDS: 1.5}
	if gbef := c.PlanCoarse(obs); gbef != 0 {
		t.Errorf("gbef = %g, want 0 with DisableLongTerm", gbef)
	}
}

func TestPlanCoarseBatteryReducesPurchase(t *testing.T) {
	p := DefaultParams()
	c, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	empty := sim.CoarseObs{Slot: 0, Slots: 24, PriceLT: 40, DemandDS: 1.0,
		Battery: p.Battery.MinLevelMWh}
	full := empty
	full.Battery = p.Battery.CapacityMWh
	gEmpty := c.PlanCoarse(empty)
	gFull := c.PlanCoarse(full)
	if gFull >= gEmpty {
		t.Errorf("full battery should reduce the purchase: %g vs %g", gFull, gEmpty)
	}
}

func TestRecordOutcomeUpdatesY(t *testing.T) {
	p := DefaultParams() // ε = 0.5
	c, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	c.RecordOutcome(sim.Outcome{ServedDT: 0, BacklogBefore: 1})
	if got := c.QueueY(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("Y = %g after unserved backlog slot, want 0.5", got)
	}
	c.RecordOutcome(sim.Outcome{ServedDT: 0.2, BacklogBefore: 1})
	if got := c.QueueY(); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("Y = %g, want 0.8", got)
	}
	c.RecordOutcome(sim.Outcome{ServedDT: 5, BacklogBefore: 0})
	if got := c.QueueY(); got != 0 {
		t.Fatalf("Y = %g, want 0", got)
	}
}

func TestEndToEndSimulation(t *testing.T) {
	p := DefaultParams()
	set := testTraces(t, 7)
	ctrl, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sim.Run(simConfig(p), set, ctrl)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Slots != 7*24 {
		t.Fatalf("slots = %d, want %d", rep.Slots, 7*24)
	}
	if rep.TotalCostUSD <= 0 {
		t.Error("total cost must be positive")
	}
	if rep.UnservedMWh > 1e-6 {
		t.Errorf("unserved = %g MWh under benign traces, want 0", rep.UnservedMWh)
	}
	if rep.Availability < 1-1e-9 {
		t.Errorf("availability = %g, want 1", rep.Availability)
	}
	// Physical battery bounds (stronger than Theorem 2's conditions).
	if rep.BatteryMinMWh < p.Battery.MinLevelMWh-1e-9 {
		t.Errorf("battery dipped to %g below Bmin %g", rep.BatteryMinMWh, p.Battery.MinLevelMWh)
	}
	if rep.BatteryMaxMWh > p.Battery.CapacityMWh+1e-9 {
		t.Errorf("battery rose to %g above Bmax %g", rep.BatteryMaxMWh, p.Battery.CapacityMWh)
	}
	if ctrl.LPFailures() != 0 {
		t.Errorf("LP fallbacks = %d, want 0", ctrl.LPFailures())
	}
}

func TestEndToEndBacklogWithinTheorem2Bound(t *testing.T) {
	p := DefaultParams()
	set := testTraces(t, 7)
	ctrl, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sim.Run(simConfig(p), set, ctrl)
	if err != nil {
		t.Fatal(err)
	}
	// Theorem 2(3) bounds Q(τ) by Qmax = V·Pmax/T + Ddtmax for the exact
	// drift; the implemented algorithm freezes Q(t) for T slots (Sec. IV-A,
	// Corollary 1), so arrivals during one coarse interval can add up to
	// T·Ddtmax of slack before the frozen weights react. Assert the
	// freezing-aware bound and record the strict-bound excess.
	strict := p.QMax()
	bound := strict + float64(p.T)*p.DdtMaxMWh
	if rep.BacklogMaxMWh > bound+1e-9 {
		t.Errorf("max backlog %g exceeds freezing-aware bound %g", rep.BacklogMaxMWh, bound)
	}
	t.Logf("max backlog %.3f vs strict Qmax %.3f (freezing slack %.3f)",
		rep.BacklogMaxMWh, strict, rep.BacklogMaxMWh-strict)
}

func TestLPAndAnalyticControllersAgree(t *testing.T) {
	set := testTraces(t, 3)

	run := func(useLP bool) *sim.Report {
		p := DefaultParams()
		p.UseLP = useLP
		ctrl, err := New(p)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sim.Run(simConfig(p), set, ctrl)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a := run(false)
	l := run(true)
	// Decisions can differ on exact ties, so compare the aggregate cost.
	if math.Abs(a.TotalCostUSD-l.TotalCostUSD) > 1e-3*math.Max(1, a.TotalCostUSD) {
		t.Errorf("analytic run $%.4f != LP run $%.4f", a.TotalCostUSD, l.TotalCostUSD)
	}
}

func TestHigherVReducesCostRaisesDelay(t *testing.T) {
	set := testTraces(t, 14)
	run := func(v float64) *sim.Report {
		p := DefaultParams()
		p.V = v
		ctrl, err := New(p)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sim.Run(simConfig(p), set, ctrl)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	low := run(0.05)
	high := run(5)
	if high.TotalCostUSD >= low.TotalCostUSD {
		t.Errorf("V=5 cost $%.2f not below V=0.05 cost $%.2f (O(1/V) side)",
			high.TotalCostUSD, low.TotalCostUSD)
	}
	if high.MeanDelaySlots <= low.MeanDelaySlots {
		t.Errorf("V=5 delay %.2f not above V=0.05 delay %.2f (O(V) side)",
			high.MeanDelaySlots, low.MeanDelaySlots)
	}
}
