package core

import (
	"encoding/json"
	"fmt"

	"github.com/smartdpss/smartdpss/internal/sim"
)

// controllerState is the SmartDPSS controller's mutable state in
// checkpoint form: the virtual-queue freeze Θ(t), the delay queue Y, the
// trailing-mean estimators (demand/renewable and real-time price), the
// frozen demand envelope and the LP fallback counter. The slot-loop
// scratch buffers are deliberately absent — they carry no information
// across slots. Configuration (Params) is pinned by the session
// checkpoint's config hash.
type controllerState struct {
	QT float64 `json:"qT"`
	YT float64 `json:"yT"`
	XT float64 `json:"xT"`

	DelayY float64                `json:"delayY"`
	Est    sim.TrailingMeansState `json:"est"`

	PrtSum   float64 `json:"prtSum"`
	PrtN     int     `json:"prtN"`
	PrtMean  float64 `json:"prtMean"`
	PrtReady bool    `json:"prtReady"`

	EnvDDS float64 `json:"envDDS"`
	EnvDDT float64 `json:"envDDT"`
	EnvRen float64 `json:"envRen"`

	LPFailures int `json:"lpFailures"`
}

var _ sim.Snapshotter = (*Controller)(nil)

// SnapshotState implements sim.Snapshotter: it captures everything the
// controller carries across fine slots, so a restored controller plans
// bit-identically to one that never stopped.
func (c *Controller) SnapshotState() ([]byte, error) {
	return json.Marshal(controllerState{
		QT:         c.qT,
		YT:         c.yT,
		XT:         c.xT,
		DelayY:     c.delay.Value(),
		Est:        c.est.State(),
		PrtSum:     c.prtSum,
		PrtN:       c.prtN,
		PrtMean:    c.prtMean,
		PrtReady:   c.prtReady,
		EnvDDS:     c.envDDS,
		EnvDDT:     c.envDDT,
		EnvRen:     c.envRen,
		LPFailures: c.lpFailures,
	})
}

// RestoreState implements sim.Snapshotter.
func (c *Controller) RestoreState(data []byte) error {
	var s controllerState
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("core: decode controller state: %w", err)
	}
	c.qT, c.yT, c.xT = s.QT, s.YT, s.XT
	c.delay.Restore(s.DelayY)
	c.est.Restore(s.Est)
	c.prtSum, c.prtN = s.PrtSum, s.PrtN
	c.prtMean, c.prtReady = s.PrtMean, s.PrtReady
	c.envDDS, c.envDDT, c.envRen = s.EnvDDS, s.EnvDDT, s.EnvRen
	c.lpFailures = s.LPFailures
	return nil
}
