package core

import (
	"fmt"
	"math"

	"github.com/smartdpss/smartdpss/internal/lp"
)

// p5LPScratch holds the LP reference path's reusable substrate: the
// problem rebuilt in place each slot and the solver whose tableau buffers
// persist across the run's near-identical solves. The zero value is ready
// to use. These per-slot LPs are a handful of variables and one row, so
// they deliberately stay on the dense tableau — the sparse revised
// simplex (lp.Problem.SetSparse) only pays off on the large structured
// horizon LPs; at this size its factorization overhead would dominate.
type p5LPScratch struct {
	solver lp.Solver
	prob   *lp.Problem
	gen    []lp.VarID
	terms  []lp.Term
}

// solveP5LP solves P5 through the simplex substrate with throwaway
// buffers; the hot path goes through p5LPScratch.solve. It is the
// reference path, mirroring the paper's "solve the two sub-problems using
// classical linear programming approaches, e.g., simplex method"
// (Sec. IV-B Remark).
func solveP5LP(in p5Input) (p5Result, error) {
	var s p5LPScratch
	var flows []float64
	if len(in.genSegs) > 0 {
		flows = make([]float64, len(in.genSegs))
	}
	return s.solve(in, flows)
}

// solve builds and solves the P5 linear program in the scratch's reusable
// problem/solver. flows receives the per-segment generation and becomes
// the result's genFlows (len(in.genSegs); nil without segments). The
// solve is cold and uses the bounded-variable simplex: every cap below is
// a column bound, so the tableau holds a single row (the balance
// equality) instead of one row per capped variable.
func (s *p5LPScratch) solve(in p5Input, flows []float64) (p5Result, error) {
	if s.prob == nil {
		s.prob = lp.NewProblem()
		s.prob.SetBounded(true)
	}
	prob := s.prob
	prob.Reset()
	grt := prob.AddVariable("grt", 0, math.Max(0, in.grtMax), in.wGrt)
	sdt := prob.AddVariable("sdt", 0, math.Max(0, in.sdtMax), in.wSdt)
	brc := prob.AddVariable("brc", 0, math.Max(0, in.chargeMax), in.wCharge)
	bdc := prob.AddVariable("bdc", 0, math.Max(0, in.dischargeMax), -in.wCharge)
	waste := prob.AddVariable("waste", 0, math.Inf(1), in.wWaste)
	emerg := prob.AddVariable("unserved", 0, math.Inf(1), in.wEmergency)
	// One variable per generator fuel-curve segment, mirroring the
	// analytic path's extra source legs.
	gen := s.gen[:0]
	for _, seg := range in.genSegs {
		gen = append(gen, prob.AddVariable("", 0, math.Max(0, seg.cap), seg.w))
	}
	s.gen = gen

	// Balance (Eq. 4): base + grt + bdc + g + unserved = dds + sdt + brc + W.
	terms := append(s.terms[:0],
		lp.Term{Var: grt, Coeff: 1},
		lp.Term{Var: bdc, Coeff: 1},
		lp.Term{Var: emerg, Coeff: 1},
		lp.Term{Var: sdt, Coeff: -1},
		lp.Term{Var: brc, Coeff: -1},
		lp.Term{Var: waste, Coeff: -1},
	)
	for _, g := range gen {
		terms = append(terms, lp.Term{Var: g, Coeff: 1})
	}
	s.terms = terms
	prob.AddConstraint(lp.EQ, in.dds-in.base, terms...)

	sol, err := s.solver.Solve(prob)
	if err != nil {
		return p5Result{}, fmt.Errorf("core: P5 solve: %w", err)
	}
	if sol.Status != lp.Optimal {
		return p5Result{}, fmt.Errorf("core: P5 status %v", sol.Status)
	}
	res := p5Result{
		grt:       sol.Value(grt),
		sdt:       sol.Value(sdt),
		charge:    sol.Value(brc),
		discharge: sol.Value(bdc),
		waste:     sol.Value(waste),
		unserved:  sol.Value(emerg),
		obj:       sol.Objective,
	}
	if len(gen) > 0 {
		res.genFlows = flows[:len(gen)]
		for i, g := range gen {
			v := sol.Value(g)
			res.gen += v
			res.genFlows[i] = v
		}
	}
	netChargeDischarge(&res, in.etaC, in.etaD)
	return res, nil
}
