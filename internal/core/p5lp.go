package core

import (
	"fmt"
	"math"

	"github.com/smartdpss/smartdpss/internal/lp"
)

// solveP5LP solves the same subproblem as solveP5Analytic through the
// dense-simplex substrate. It is the reference path, mirroring the paper's
// "solve the two sub-problems using classical linear programming
// approaches, e.g., simplex method" (Sec. IV-B Remark).
func solveP5LP(in p5Input) (p5Result, error) {
	prob := lp.NewProblem()
	grt := prob.AddVariable("grt", 0, math.Max(0, in.grtMax), in.wGrt)
	sdt := prob.AddVariable("sdt", 0, math.Max(0, in.sdtMax), in.wSdt)
	brc := prob.AddVariable("brc", 0, math.Max(0, in.chargeMax), in.wCharge)
	bdc := prob.AddVariable("bdc", 0, math.Max(0, in.dischargeMax), -in.wCharge)
	waste := prob.AddVariable("waste", 0, math.Inf(1), in.wWaste)
	emerg := prob.AddVariable("unserved", 0, math.Inf(1), in.wEmergency)
	// One variable per generator fuel-curve segment, mirroring the
	// analytic path's extra source legs.
	gen := make([]lp.VarID, len(in.genSegs))
	for i, s := range in.genSegs {
		gen[i] = prob.AddVariable(fmt.Sprintf("gen%d", i), 0, math.Max(0, s.cap), s.w)
	}

	// Balance (Eq. 4): base + grt + bdc + g + unserved = dds + sdt + brc + W.
	terms := []lp.Term{
		{Var: grt, Coeff: 1},
		{Var: bdc, Coeff: 1},
		{Var: emerg, Coeff: 1},
		{Var: sdt, Coeff: -1},
		{Var: brc, Coeff: -1},
		{Var: waste, Coeff: -1},
	}
	for _, g := range gen {
		terms = append(terms, lp.Term{Var: g, Coeff: 1})
	}
	prob.AddConstraint(lp.EQ, in.dds-in.base, terms...)

	sol, err := prob.Minimize()
	if err != nil {
		return p5Result{}, fmt.Errorf("core: P5 solve: %w", err)
	}
	if sol.Status != lp.Optimal {
		return p5Result{}, fmt.Errorf("core: P5 status %v", sol.Status)
	}
	res := p5Result{
		grt:       sol.Value(grt),
		sdt:       sol.Value(sdt),
		charge:    sol.Value(brc),
		discharge: sol.Value(bdc),
		waste:     sol.Value(waste),
		unserved:  sol.Value(emerg),
		obj:       sol.Objective,
	}
	if len(gen) > 0 {
		res.genFlows = make([]float64, len(gen))
		for i, g := range gen {
			res.gen += sol.Value(g)
			res.genFlows[i] = sol.Value(g)
		}
	}
	netChargeDischarge(&res, in.etaC, in.etaD)
	return res, nil
}
