package core

import (
	"math"
	"sort"
)

// p5Input is one fine-slot instance of subproblem P5 after the queue
// weights have been computed. All amounts are MWh, weights are objective
// units per MWh.
type p5Input struct {
	dds  float64 // delay-sensitive demand that must be covered
	base float64 // already-committed supply: gbef(t)/T + r(τ) (+ any
	// committed generator minimum load, see controller.go)

	grtMax       float64 // real-time purchase cap (headroom ∧ Smax)
	sdtMax       float64 // service cap (backlog ∧ Sdtmax)
	chargeMax    float64 // admissible brc this slot
	dischargeMax float64 // admissible bdc this slot

	etaC float64 // battery charge efficiency ηc (for overlap netting)
	etaD float64 // battery discharge efficiency ηd

	wGrt       float64 // V·prt − (Q+Y)
	wSdt       float64 // −(Q+Y)
	wCharge    float64 // +(Q+X+Y); discharge weight is its negation
	wWaste     float64 // V·wW + (Q+Y)  (see doc.go: waste serves no queue)
	wEmergency float64 // V·EmergencyCost, dwarfs every other weight

	// genSegs are optional extra source legs for the dispatchable
	// on-site generator above its committed minimum load: the convex
	// fuel curve decomposed into pieces with non-decreasing weights
	// V·marginal − (Q+Y). Empty when no generator dispatch is being
	// considered, in which case the solve is identical to the
	// generator-free subproblem.
	genSegs []genSeg
}

// genSeg is one piecewise-linear slice of a generation unit's dispatch
// band. With a fleet, segments of several units coexist in one P5
// instance; unit records which one a segment belongs to so the solved
// flows can be routed back to their units.
type genSeg struct {
	cap  float64 // MWh available at this marginal price
	w    float64 // V·marginal − (Q+Y)
	unit int     // owning fleet unit (0 for the single-unit arm)
}

// p5Result is the solved slot decision with its drift objective value.
type p5Result struct {
	grt, sdt, charge, discharge, waste, unserved float64
	gen                                          float64 // total generation above the committed minimum
	genFlows                                     []float64
	// genFlows is the per-segment generation, aligned with the input's
	// genSegs order (nil when the instance has no generator segments).
	obj float64
}

// batteryUsed reports whether the battery moves in this result.
func (r p5Result) batteryUsed() bool {
	return r.charge > 1e-12 || r.discharge > 1e-12
}

// frozen returns a copy of the input with the battery disabled.
func (in p5Input) frozen() p5Input {
	out := in
	out.chargeMax = 0
	out.dischargeMax = 0
	return out
}

// leg is one source or sink of the single-node balance in P5.
type leg struct {
	cost float64
	cap  float64
	flow float64
}

// p5Scratch holds the merit-order solver's working buffers. A Controller
// owns one and reuses it every fine slot, so steady-state solves allocate
// nothing; the zero value is ready to use (buffers grow on first solve).
type p5Scratch struct {
	srcs, snks []leg
	srcIdx     []int
	snkIdx     []int
}

// solveP5Analytic solves P5 exactly by merit order with throwaway
// buffers. The simulation hot path goes through p5Scratch.solveAnalytic
// instead; this wrapper serves tests and one-off callers.
func solveP5Analytic(in p5Input) p5Result {
	var s p5Scratch
	var flows []float64
	if len(in.genSegs) > 0 {
		flows = make([]float64, len(in.genSegs))
	}
	return s.solveAnalytic(in, flows)
}

// solveAnalytic solves P5 exactly by merit order. P5 is a single balance
// node with per-leg linear costs:
//
//	sources: grt (wGrt), bdc (−wCharge), emergency (wEmergency),
//	         plus one leg per generator fuel-curve segment (genSegs)
//	sinks:   sdt (wSdt), brc (wCharge), waste (wWaste)
//	balance: base + Σsources = dds + Σsinks
//
// The mandatory net (dds − base) is routed through the cheapest legs, then
// every (source, sink) pair with negative combined cost is saturated in
// ascending cost order. Because each leg's marginal cost is constant, the
// greedy exchange argument makes this optimal (the generator's convex fuel
// curve yields non-decreasing segment costs, so merit order fills its
// segments in curve order); TestPropertyAnalyticMatchesLP cross-checks it
// against the simplex solver.
//
// flows receives the per-segment generation and becomes the result's
// genFlows (it must have len(in.genSegs); nil is fine without segments) —
// caller-owned so results can outlive the scratch's next solve.
func (s *p5Scratch) solveAnalytic(in p5Input, flows []float64) p5Result {
	sources := append(s.srcs[:0],
		leg{cost: in.wGrt, cap: in.grtMax},
		leg{cost: -in.wCharge, cap: in.dischargeMax},
		leg{cost: in.wEmergency, cap: math.Inf(1)},
	)
	for _, g := range in.genSegs {
		sources = append(sources, leg{cost: g.w, cap: g.cap})
	}
	sinks := append(s.snks[:0],
		leg{cost: in.wSdt, cap: in.sdtMax},
		leg{cost: in.wCharge, cap: in.chargeMax},
		leg{cost: in.wWaste, cap: math.Inf(1)},
	)
	s.srcs, s.snks = sources, sinks
	srcOrder := sortedIdxInto(s.srcIdx, sources)
	sinkOrder := sortedIdxInto(s.snkIdx, sinks)
	s.srcIdx, s.snkIdx = srcOrder, sinkOrder

	obj := 0.0
	// Mandatory flow: cover the net deficit from the cheapest sources, or
	// absorb the net excess into the cheapest sinks.
	if net := in.dds - in.base; net > 0 {
		obj += allocate(sources, srcOrder, net)
	} else if net < 0 {
		obj += allocate(sinks, sinkOrder, -net)
	}

	// Profitable pairs: cheapest source with cheapest sink while their
	// combined marginal cost is negative.
	si, ki := 0, 0
	for si < len(srcOrder) && ki < len(sinkOrder) {
		src := &sources[srcOrder[si]]
		snk := &sinks[sinkOrder[ki]]
		if src.cost+snk.cost >= -1e-12 {
			break
		}
		room := math.Min(src.cap-src.flow, snk.cap-snk.flow)
		if room <= 0 {
			if src.cap-src.flow <= 0 {
				si++
			} else {
				ki++
			}
			continue
		}
		src.flow += room
		snk.flow += room
		obj += room * (src.cost + snk.cost)
	}

	res := p5Result{
		grt:       sources[0].flow,
		discharge: sources[1].flow,
		unserved:  sources[2].flow,
		sdt:       sinks[0].flow,
		charge:    sinks[1].flow,
		waste:     sinks[2].flow,
		obj:       obj,
	}
	if len(in.genSegs) > 0 {
		res.genFlows = flows[:len(in.genSegs)]
		for i, src := range sources[3:] {
			res.gen += src.flow
			res.genFlows[i] = src.flow
		}
	}
	netChargeDischarge(&res, in.etaC, in.etaD)
	return res
}

// netChargeDischarge restores the paper's brc(τ)·bdc(τ) ≡ 0 requirement
// when a solution charges and discharges in the same slot (a mandatory
// excess charging while a profitable pair discharges). The replacement is
// the unique pure action with the same stored-energy effect
// ηc·brc − ηd·bdc; the energy-balance residual the engine computes absorbs
// the difference as waste or purchase. A plain min() netting would NOT be
// level-preserving for ηc ≠ ηd — the offline LPs even exploit that gap by
// "pumping" the battery to burn surplus energy — so the conversion must go
// through the stored-energy delta.
func netChargeDischarge(res *p5Result, etaC, etaD float64) {
	if res.charge <= 1e-12 || res.discharge <= 1e-12 {
		return
	}
	if etaC <= 0 || etaD <= 0 {
		etaC, etaD = 1, 1
	}
	delta := etaC*res.charge - etaD*res.discharge
	if delta >= 0 {
		res.charge = delta / etaC
		res.discharge = 0
	} else {
		res.discharge = -delta / etaD
		res.charge = 0
	}
}

// maxInsertionLegs mirrors Go's sort-internal insertion-sort cutoff: a
// sort.Slice over at most this many elements runs exactly the insertion
// pass below.
const maxInsertionLegs = 12

// sortedIdxInto fills idx (reusing its storage) with leg indices in
// ascending cost order, reproducing the historical sort.Slice ordering
// bit for bit: up to maxInsertionLegs legs (three fixed legs plus a
// handful of fuel-curve segments — every shipped configuration) the
// allocation-free stable insertion sort below is exactly the pass Go's
// sort runs on slices that short, and larger leg counts (a fleet of
// many quadratic-curve units) fall back to sort.Slice itself so
// tie-breaks between equal-cost legs — and therefore dispatch splits
// among identical units — never diverge from the pre-refactor order.
func sortedIdxInto(idx []int, legs []leg) []int {
	if cap(idx) < len(legs) {
		idx = make([]int, len(legs))
	}
	idx = idx[:len(legs)]
	for i := range idx {
		idx[i] = i
	}
	if len(idx) > maxInsertionLegs {
		sort.Slice(idx, func(a, b int) bool { return legs[idx[a]].cost < legs[idx[b]].cost })
		return idx
	}
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && legs[idx[j]].cost < legs[idx[j-1]].cost; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	return idx
}

// allocate routes amount through the legs in the given order and returns
// the incurred cost. The final leg is expected to have infinite capacity.
func allocate(legs []leg, order []int, amount float64) float64 {
	cost := 0.0
	for _, i := range order {
		if amount <= 0 {
			break
		}
		l := &legs[i]
		take := math.Min(amount, l.cap-l.flow)
		if take <= 0 {
			continue
		}
		l.flow += take
		amount -= take
		cost += take * l.cost
	}
	return cost
}
