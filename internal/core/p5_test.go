package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// baseInput is a neutral P5 instance used as a mutation base in unit tests.
func baseInput() p5Input {
	return p5Input{
		dds:          1.0,
		base:         0.8,
		grtMax:       1.0,
		sdtMax:       0.5,
		chargeMax:    0.5,
		dischargeMax: 0.4,
		wGrt:         35, // V·prt − (Q+Y)
		wSdt:         -5, // −(Q+Y)
		wCharge:      -3, // Q+X+Y (battery below target)
		wWaste:       6,  // V·wW + (Q+Y)
		wEmergency:   1e6,
	}
}

func checkBalance(t *testing.T, in p5Input, r p5Result) {
	t.Helper()
	lhs := in.base + r.grt + r.discharge + r.gen + r.unserved
	rhs := in.dds + r.sdt + r.charge + r.waste
	if math.Abs(lhs-rhs) > 1e-9 {
		t.Fatalf("balance violated: %g != %g (in=%+v res=%+v)", lhs, rhs, in, r)
	}
	genCap := 0.0
	for _, s := range in.genSegs {
		genCap += s.cap
	}
	caps := []struct {
		name string
		v    float64
		cap  float64
	}{
		{"grt", r.grt, in.grtMax},
		{"sdt", r.sdt, in.sdtMax},
		{"charge", r.charge, in.chargeMax},
		{"discharge", r.discharge, in.dischargeMax},
		{"gen", r.gen, genCap},
	}
	for _, c := range caps {
		if c.v < -1e-12 || c.v > c.cap+1e-9 {
			t.Fatalf("%s = %g outside [0, %g]", c.name, c.v, c.cap)
		}
	}
	if r.waste < -1e-12 || r.unserved < -1e-12 {
		t.Fatalf("negative waste/unserved: %+v", r)
	}
	if r.charge > 1e-9 && r.discharge > 1e-9 {
		t.Fatalf("charge and discharge both positive: %+v", r)
	}
}

func TestAnalyticDeficitUsesCheapestSource(t *testing.T) {
	in := baseInput()
	// Deficit 0.2; battery source cost −wCharge = 3 beats grid 35.
	res := solveP5Analytic(in)
	checkBalance(t, in, res)
	if res.discharge < 0.2-1e-9 {
		t.Errorf("discharge = %g, want >= 0.2 (cheapest deficit source)", res.discharge)
	}
	if res.unserved > 1e-12 {
		t.Errorf("unserved = %g, want 0", res.unserved)
	}
}

func TestAnalyticDeficitFallsBackToGrid(t *testing.T) {
	in := baseInput()
	in.dischargeMax = 0.05 // battery nearly empty
	res := solveP5Analytic(in)
	checkBalance(t, in, res)
	if res.discharge < 0.05-1e-9 {
		t.Errorf("discharge = %g, want the full 0.05", res.discharge)
	}
	if res.grt < 0.15-1e-9 {
		t.Errorf("grt = %g, want >= 0.15 to cover the rest", res.grt)
	}
}

func TestAnalyticEmergencyWhenCapsExhausted(t *testing.T) {
	in := baseInput()
	in.grtMax = 0.0
	in.dischargeMax = 0.0
	res := solveP5Analytic(in)
	checkBalance(t, in, res)
	if math.Abs(res.unserved-0.2) > 1e-9 {
		t.Errorf("unserved = %g, want 0.2", res.unserved)
	}
}

func TestAnalyticExcessServesBacklogFirst(t *testing.T) {
	in := baseInput()
	in.base = 2.0 // excess 1.0
	// Sink costs: serve −5, charge −3, waste 6 → serve 0.5, charge 0.5.
	res := solveP5Analytic(in)
	checkBalance(t, in, res)
	if math.Abs(res.sdt-0.5) > 1e-9 {
		t.Errorf("sdt = %g, want 0.5 (cap)", res.sdt)
	}
	if math.Abs(res.charge-0.5) > 1e-9 {
		t.Errorf("charge = %g, want 0.5", res.charge)
	}
	if res.waste > 1e-9 {
		t.Errorf("waste = %g, want 0", res.waste)
	}
}

func TestAnalyticExcessWastesWhenSinksFull(t *testing.T) {
	in := baseInput()
	in.base = 3.0 // excess 2.0 > sdtMax + chargeMax
	res := solveP5Analytic(in)
	checkBalance(t, in, res)
	if math.Abs(res.waste-1.0) > 1e-9 {
		t.Errorf("waste = %g, want 1.0", res.waste)
	}
}

func TestAnalyticBuyToServeWhenPriceLow(t *testing.T) {
	in := baseInput()
	in.wGrt = 2 // V·prt − (Q+Y) = 2, serve weight −5: pair −3 < 0 → buy to serve
	res := solveP5Analytic(in)
	checkBalance(t, in, res)
	// Deficit 0.2 plus profitable buy-to-serve of 0.5 (sdt cap).
	if res.sdt < 0.5-1e-9 {
		t.Errorf("sdt = %g, want full cap 0.5", res.sdt)
	}
}

func TestAnalyticNoBuyToWaste(t *testing.T) {
	// Even with a low price, buying to waste must never be profitable
	// because the waste weight carries the +(Q+Y) correction (doc.go).
	in := baseInput()
	in.wGrt = 0.5
	in.sdtMax = 0    // nothing to serve
	in.chargeMax = 0 // battery full
	res := solveP5Analytic(in)
	checkBalance(t, in, res)
	if res.grt > 0.2+1e-9 { // only the mandatory deficit
		t.Errorf("grt = %g, want exactly the 0.2 deficit", res.grt)
	}
	if res.waste > 1e-9 {
		t.Errorf("waste = %g, want 0", res.waste)
	}
}

func TestAnalyticChargeFromGridWhenVeryCheap(t *testing.T) {
	in := baseInput()
	in.wGrt = 2     // cheap power
	in.wCharge = -4 // battery pressure (low level): pair cost 2−4 = −2 < 0
	in.grtMax = 2   // enough headroom for deficit + serve + charge
	res := solveP5Analytic(in)
	checkBalance(t, in, res)
	if res.charge < in.chargeMax-1e-9 {
		t.Errorf("charge = %g, want full cap %g (grid-to-battery arbitrage)", res.charge, in.chargeMax)
	}
}

func TestAnalyticIdleWhenBalanced(t *testing.T) {
	in := baseInput()
	in.base = in.dds
	in.wGrt = 40    // expensive
	in.wSdt = -1    // weak queue pressure: no profitable pair (40−1 > 0)
	in.wCharge = -3 // battery below target: discharge costs 3, charge "earns"
	// only via free surplus, of which there is none here
	res := solveP5Analytic(in)
	checkBalance(t, in, res)
	if res.grt > 1e-9 || res.sdt > 1e-9 || res.charge > 1e-9 || res.discharge > 1e-9 {
		t.Errorf("expected idle slot, got %+v", res)
	}
	if math.Abs(res.obj) > 1e-12 {
		t.Errorf("idle objective = %g, want 0", res.obj)
	}
}

func TestFrozenDisablesBattery(t *testing.T) {
	in := baseInput().frozen()
	if in.chargeMax != 0 || in.dischargeMax != 0 {
		t.Fatalf("frozen() kept battery caps: %+v", in)
	}
	res := solveP5Analytic(in)
	checkBalance(t, in, res)
	if res.batteryUsed() {
		t.Errorf("frozen solve used the battery: %+v", res)
	}
}

func TestLPMatchesAnalyticOnUnitCases(t *testing.T) {
	cases := []p5Input{
		baseInput(),
		func() p5Input { in := baseInput(); in.base = 2.0; return in }(),
		func() p5Input { in := baseInput(); in.wGrt = 2; return in }(),
		func() p5Input { in := baseInput(); in.grtMax, in.dischargeMax = 0, 0; return in }(),
	}
	for i, in := range cases {
		a := solveP5Analytic(in)
		l, err := solveP5LP(in)
		if err != nil {
			t.Fatalf("case %d: LP error: %v", i, err)
		}
		if math.Abs(a.obj-l.obj) > 1e-6*math.Max(1, math.Abs(a.obj)) {
			t.Errorf("case %d: analytic obj %g != LP obj %g", i, a.obj, l.obj)
		}
	}
}

// genP5 draws a random admissible P5 instance.
func genP5(r *rand.Rand) p5Input {
	qy := r.Float64() * 10
	x := -10 + r.Float64()*12
	in := p5Input{
		dds:          r.Float64() * 2,
		base:         r.Float64() * 3,
		grtMax:       r.Float64() * 2,
		sdtMax:       r.Float64() * 1.2,
		chargeMax:    r.Float64() * 0.6,
		dischargeMax: r.Float64() * 0.6,
		wGrt:         r.Float64()*150*2 - qy, // V ∈ (0,2] lumped into the price draw
		wSdt:         -qy,
		wCharge:      qy + x,
		wWaste:       1 + qy,
		wEmergency:   1e6,
	}
	// Half the instances carry an on-site generation arm: one or two
	// units, each with one or two fuel-curve segments. Marginals are
	// non-decreasing within a unit (convexity) but arbitrary across
	// units, the fleet case the merit-order solver must handle.
	if r.Intn(2) == 0 {
		for unit := r.Intn(2); unit >= 0; unit-- {
			marginal := r.Float64()*150 - qy
			for n := 1 + r.Intn(2); n > 0; n-- {
				in.genSegs = append(in.genSegs, genSeg{cap: r.Float64() * 0.8, w: marginal, unit: unit})
				marginal += r.Float64() * 40
			}
		}
	}
	return in
}

// TestPropertyAnalyticMatchesLP is the central solver cross-check: both P5
// paths must agree on the objective for random instances, and both must be
// balanced and within caps.
func TestPropertyAnalyticMatchesLP(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	f := func() bool {
		in := genP5(r)
		a := solveP5Analytic(in)
		l, err := solveP5LP(in)
		if err != nil {
			t.Logf("LP error: %v (in=%+v)", err, in)
			return false
		}
		checkBalance(t, in, a)
		checkBalance(t, in, l)
		if math.Abs(a.obj-l.obj) > 1e-6*math.Max(1, math.Abs(a.obj)) {
			t.Logf("objective mismatch: analytic %.9g vs LP %.9g (in=%+v)", a.obj, l.obj, in)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyAnalyticObjectiveBeatsRandomFeasible: no random feasible
// decision may beat the analytic optimum.
func TestPropertyAnalyticObjectiveBeatsRandomFeasible(t *testing.T) {
	r := rand.New(rand.NewSource(32))
	f := func() bool {
		in := genP5(r)
		best := solveP5Analytic(in)
		for trial := 0; trial < 100; trial++ {
			grt := r.Float64() * in.grtMax
			sdt := r.Float64() * in.sdtMax
			var charge, discharge float64
			if r.Intn(2) == 0 {
				charge = r.Float64() * in.chargeMax
			} else {
				discharge = r.Float64() * in.dischargeMax
			}
			net := in.base + grt + discharge - in.dds - sdt - charge
			waste, unserved := 0.0, 0.0
			if net >= 0 {
				waste = net
			} else {
				unserved = -net
			}
			obj := in.wGrt*grt + in.wSdt*sdt + in.wCharge*(charge-discharge) +
				in.wWaste*waste + in.wEmergency*unserved
			if obj < best.obj-1e-6*math.Max(1, math.Abs(best.obj)) {
				t.Logf("random decision beats optimum: %g < %g", obj, best.obj)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
