package core

import (
	"errors"
	"fmt"
	"math"

	"github.com/smartdpss/smartdpss/internal/battery"
	"github.com/smartdpss/smartdpss/internal/generator"
)

// Params configures a SmartDPSS controller. Energy is in MWh per fine
// slot, prices in USD/MWh.
type Params struct {
	// V is the Lyapunov cost–delay tradeoff parameter: larger V weights
	// cost reduction over queue (delay) control, giving the
	// [O(1/V), O(V)] tradeoff of Theorem 2.
	V float64
	// Epsilon is the ε of the delay-aware virtual queue Y (Eq. 12):
	// larger ε forces faster service and shorter worst-case delay.
	Epsilon float64
	// T is the number of fine slots per coarse slot (the long-term-ahead
	// market period).
	T int
	// PmaxUSD is the market price cap (both markets).
	PmaxUSD float64
	// PgridMWh is the per-slot grid draw cap Pgrid (Eq. 5).
	PgridMWh float64
	// SmaxMWh is the per-slot total supply cap Smax (Eq. 1).
	SmaxMWh float64
	// SdtMaxMWh is the per-slot delay-tolerant service cap Sdtmax.
	SdtMaxMWh float64
	// DdtMaxMWh is the per-slot delay-tolerant arrival bound Ddtmax.
	DdtMaxMWh float64
	// WasteCostUSD prices each wasted MWh (the paper's Cost(τ) adds W
	// directly, an implicit unit price).
	WasteCostUSD float64
	// EmergencyCostUSD is the shadow price per MWh of unserved
	// delay-sensitive demand inside P5 (must dwarf PmaxUSD).
	EmergencyCostUSD float64
	// Battery is the UPS configuration.
	Battery battery.Params
	// Generator is the optional dispatchable on-site generation unit
	// (zero value: none). When enabled, P5 gains a fourth source —
	// fuel-priced segments of the unit's dispatch window — and P4's
	// deficit estimate accounts for cheap self-generation. It is the
	// one-unit shorthand for Fleet; setting both is a configuration
	// error.
	Generator generator.Params
	// Fleet is the multi-unit on-site generation fleet in dispatch
	// order (nil: none). Every unit contributes its own fuel-priced
	// source legs to P5 and its committed capacity to P4's deficit
	// estimate.
	Fleet []generator.Params
	// CommitWindow is the unit-commitment lookahead W in fine slots:
	// start/stop decisions weigh the projected margin over the next W
	// slots (forecast long-term price and demand envelope) against the
	// full startup cost. W ≤ 1 is the myopic per-slot arm with
	// amortized-startup hysteresis — the pre-fleet behavior, and the
	// degenerate case the lookahead must reproduce.
	CommitWindow int
	// DisableLongTerm removes the long-term-ahead market, leaving only
	// real-time purchases (the "RTM" configuration of Fig. 7).
	DisableLongTerm bool
	// UseLP selects the simplex-based P5 solver instead of the
	// closed-form merit-order solver. Both produce identical decisions;
	// the LP path is the reference implementation.
	UseLP bool
	// SnapshotPlanning makes P4 estimate the upcoming interval from the
	// single boundary slot, as Algorithm 1 literally reads ("observing
	// ... the demand d(t) and renewable r(t) generated during time slot
	// t"), instead of the trailing means of the previous interval. Kept
	// as an ablation switch; see the EXT-4 experiment.
	SnapshotPlanning bool
}

// DefaultParams returns the paper's Sec. VI-A configuration: V = 1,
// ε = 0.5, T = 24 one-hour slots, Pgrid = 2 MW, and a 15-minute UPS.
func DefaultParams() Params {
	return Params{
		V:                1.0,
		Epsilon:          0.5,
		T:                24,
		PmaxUSD:          150,
		PgridMWh:         2.0,
		SmaxMWh:          4.0,
		SdtMaxMWh:        1.0,
		DdtMaxMWh:        1.0,
		WasteCostUSD:     1.0,
		EmergencyCostUSD: 1e6,
		Battery:          battery.Sized(2.0, 15, 1),
	}
}

// Validate reports parameter errors.
func (p Params) Validate() error {
	switch {
	case p.V <= 0:
		return errors.New("core: V must be positive")
	case p.Epsilon <= 0:
		return errors.New("core: Epsilon must be positive")
	case p.T <= 0:
		return errors.New("core: T must be positive")
	case p.PmaxUSD <= 0:
		return errors.New("core: PmaxUSD must be positive")
	case p.PgridMWh <= 0:
		return errors.New("core: PgridMWh must be positive")
	case p.SmaxMWh <= 0:
		return errors.New("core: SmaxMWh must be positive")
	case p.SdtMaxMWh <= 0:
		return errors.New("core: SdtMaxMWh must be positive")
	case p.DdtMaxMWh <= 0:
		return errors.New("core: DdtMaxMWh must be positive")
	case p.WasteCostUSD < 0:
		return errors.New("core: negative WasteCostUSD")
	case p.EmergencyCostUSD <= p.PmaxUSD:
		return errors.New("core: EmergencyCostUSD must dwarf PmaxUSD")
	}
	if err := p.Generator.Validate(); err != nil {
		return err
	}
	if len(p.Fleet) > 0 && p.Generator.Enabled() {
		return errors.New("core: both Generator and Fleet configured (use Fleet alone)")
	}
	for i, u := range p.Fleet {
		if err := u.Validate(); err != nil {
			return fmt.Errorf("core: fleet unit %d: %w", i, err)
		}
	}
	if p.CommitWindow < 0 {
		return errors.New("core: negative CommitWindow")
	}
	return p.Battery.Validate()
}

// fleetSpecs resolves the configured fleet: the explicit Fleet slice, or
// the legacy single Generator wrapped as a one-unit fleet.
func (p Params) fleetSpecs() []generator.Params {
	if len(p.Fleet) > 0 {
		return p.Fleet
	}
	if p.Generator.Enabled() {
		return []generator.Params{p.Generator}
	}
	return nil
}

// QMax is the deterministic backlog bound of Theorem 2(3):
// Qmax = V·Pmax/T + Ddtmax.
func (p Params) QMax() float64 {
	return p.V*p.PmaxUSD/float64(p.T) + p.DdtMaxMWh
}

// YMax is the delay-queue bound of Theorem 2(3): Ymax = V·Pmax/T + ε.
func (p Params) YMax() float64 {
	return p.V*p.PmaxUSD/float64(p.T) + p.Epsilon
}

// UMax bounds Q(t)+Y(t) (Eq. 25): Umax = V·Pmax/T + Ddtmax + ε.
func (p Params) UMax() float64 {
	return p.V*p.PmaxUSD/float64(p.T) + p.DdtMaxMWh + p.Epsilon
}

// LambdaMax is the worst-case delay bound of Theorem 2(4) in slots:
// λmax = ⌈(2V·Pmax/T + Ddtmax + ε)/ε⌉.
func (p Params) LambdaMax() int {
	return int(math.Ceil((2*p.V*p.PmaxUSD/float64(p.T) + p.DdtMaxMWh + p.Epsilon) / p.Epsilon))
}

// VMax is the largest V for which Theorem 2's battery-bound argument
// applies (Sec. V-A):
//
//	Vmax = T·(Bmax − Bmin − Bdmax·ηd − Bcmax·ηc − Ddtmax − ε)/Pmax.
//
// For small UPS installations the numerator can be negative, making the
// theorem vacuous; the controller still keeps b(τ) within its physical
// bounds through the hard rate and level limits.
func (p Params) VMax() float64 {
	b := p.Battery
	num := b.CapacityMWh - b.MinLevelMWh - b.MaxDischargeMWh*b.DischargeEff -
		b.MaxChargeMWh*b.ChargeEff - p.DdtMaxMWh - p.Epsilon
	return float64(p.T) * num / p.PmaxUSD
}

// XShift is the constant of the battery virtual queue (Eq. 14):
// X(t) = b(t) − (Umax + Bmin + Bdmax·ηd).
func (p Params) XShift() float64 {
	return p.UMax() + p.Battery.MinLevelMWh + p.Battery.MaxDischargeMWh*p.Battery.DischargeEff
}
