package core

import (
	"math"
	"testing"
)

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("DefaultParams invalid: %v", err)
	}
}

func TestParamsValidateRejects(t *testing.T) {
	mut := func(f func(*Params)) Params {
		p := DefaultParams()
		f(&p)
		return p
	}
	bad := []Params{
		mut(func(p *Params) { p.V = 0 }),
		mut(func(p *Params) { p.Epsilon = 0 }),
		mut(func(p *Params) { p.T = 0 }),
		mut(func(p *Params) { p.PmaxUSD = 0 }),
		mut(func(p *Params) { p.PgridMWh = 0 }),
		mut(func(p *Params) { p.SmaxMWh = 0 }),
		mut(func(p *Params) { p.SdtMaxMWh = 0 }),
		mut(func(p *Params) { p.DdtMaxMWh = 0 }),
		mut(func(p *Params) { p.WasteCostUSD = -1 }),
		mut(func(p *Params) { p.EmergencyCostUSD = 10 }),
		mut(func(p *Params) { p.Battery.ChargeEff = 2 }),
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestTheorem2Bounds(t *testing.T) {
	p := DefaultParams() // V=1, T=24, Pmax=150, Ddtmax=1, eps=0.5
	vp := 1.0 * 150 / 24
	if got := p.QMax(); math.Abs(got-(vp+1)) > 1e-12 {
		t.Errorf("QMax = %g, want %g", got, vp+1)
	}
	if got := p.YMax(); math.Abs(got-(vp+0.5)) > 1e-12 {
		t.Errorf("YMax = %g, want %g", got, vp+0.5)
	}
	if got := p.UMax(); math.Abs(got-(vp+1.5)) > 1e-12 {
		t.Errorf("UMax = %g, want %g", got, vp+1.5)
	}
	wantLambda := int(math.Ceil((2*vp + 1 + 0.5) / 0.5))
	if got := p.LambdaMax(); got != wantLambda {
		t.Errorf("LambdaMax = %d, want %d", got, wantLambda)
	}
}

func TestBoundsScaleWithV(t *testing.T) {
	small := DefaultParams()
	small.V = 0.1
	large := DefaultParams()
	large.V = 5
	if small.QMax() >= large.QMax() {
		t.Error("QMax must grow with V (O(V) delay side of the tradeoff)")
	}
	if small.LambdaMax() >= large.LambdaMax() {
		t.Error("LambdaMax must grow with V")
	}
	if small.UMax() >= large.UMax() {
		t.Error("UMax must grow with V")
	}
}

func TestBoundsShrinkWithT(t *testing.T) {
	shortT := DefaultParams()
	shortT.T = 3
	longT := DefaultParams()
	longT.T = 144
	// Queue bounds are proportional to V·Pmax/T (Theorem 2): larger T
	// means tighter backlog bounds and shorter worst-case delay.
	if shortT.QMax() <= longT.QMax() {
		t.Error("QMax must shrink as T grows")
	}
	if shortT.LambdaMax() <= longT.LambdaMax() {
		t.Error("LambdaMax must shrink as T grows")
	}
}

func TestVMax(t *testing.T) {
	p := DefaultParams()
	// The default 15-minute UPS is smaller than the drift slack, so the
	// theorem's Vmax is negative (vacuous) — the physical caps still hold.
	if got := p.VMax(); got >= 0 {
		t.Logf("VMax = %g (battery large enough for Theorem 2)", got)
	}
	// A big battery must produce a positive Vmax.
	big := p
	big.Battery.CapacityMWh = 100
	big.Battery.InitialMWh = 50
	if got := big.VMax(); got <= 0 {
		t.Errorf("VMax = %g for a 100 MWh battery, want positive", got)
	}
	// Vmax grows with capacity.
	bigger := big
	bigger.Battery.CapacityMWh = 200
	if bigger.VMax() <= big.VMax() {
		t.Error("VMax must grow with battery capacity")
	}
}

func TestXShift(t *testing.T) {
	p := DefaultParams()
	want := p.UMax() + p.Battery.MinLevelMWh + p.Battery.MaxDischargeMWh*p.Battery.DischargeEff
	if got := p.XShift(); math.Abs(got-want) > 1e-12 {
		t.Errorf("XShift = %g, want %g", got, want)
	}
}
