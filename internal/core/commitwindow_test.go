package core

import (
	"testing"

	"github.com/smartdpss/smartdpss/internal/generator"
	"github.com/smartdpss/smartdpss/internal/sim"
)

// commitTestController builds a controller with one lag-free unit whose
// cold start is only recoverable over many profitable slots, and primes
// its coarse-boundary state so the commitment lookahead sees a demand
// envelope worth serving.
func commitTestController(t *testing.T, window int) *Controller {
	t.Helper()
	p := DefaultParams()
	p.CommitWindow = window
	p.Fleet = []generator.Params{{
		CapacityMWh:   1.0,
		MinLoadMWh:    0.2,
		FuelUSDPerMWh: 40,
		StartupUSD:    500, // recoverable over ~50 profitable slots, never over 2
	}}
	c, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	c.PlanCoarse(sim.CoarseObs{
		Slot: 720, Interval: 30, Slots: 24,
		PriceLT: 60, DemandDS: 1.5, DemandDT: 0.2, Renewable: 0,
		Battery: 0.3, FuelScale: 1,
	})
	return c
}

// commitObs is a fine-slot observation near the end of a 744-slot trace
// with the unit off but startable.
func commitObs(slot, horizon int) sim.FineObs {
	return sim.FineObs{
		Slot: slot, Horizon: horizon,
		PriceRT: 55, DemandDS: 1.5, DemandDT: 0.2,
		RTHeadroom: 2, SdtMax: 1, Smax: 4, FuelScale: 1,
		GenUnits: []generator.UnitObs{{
			MinMWh: 0.2, MaxMWh: 1.0, RequestMax: 1.0, MarginalUSDPerMWh: 40,
		}},
	}
}

// TestCommitWindowClampedAtHorizon is the last-day-boundary regression:
// with W = 100 slots of projected profit but only 2 slots left in the
// trace, the commitment arm must not start the unit — the 100-slot
// margin would be earned from slots that never execute, and the startup
// cost could never be recovered. Before the clamp the arm committed
// here; with it the projection window shrinks to the remaining horizon.
func TestCommitWindowClampedAtHorizon(t *testing.T) {
	c := commitTestController(t, 100)
	dec := c.PlanFine(commitObs(742, 744))
	for ui, g := range dec.GenerateUnits {
		if g > 0 {
			t.Fatalf("unit %d dispatched %g MWh with only 2 slots left (W=100 unclamped)", ui, g)
		}
	}
}

// TestCommitWindowUnclampedFarFromHorizon pins the contrast: the same
// observation mid-trace (full window available) must commit the unit —
// proving the clamp, not some other condition, is what blocks the start
// at the boundary.
func TestCommitWindowUnclampedFarFromHorizon(t *testing.T) {
	c := commitTestController(t, 100)
	dec := c.PlanFine(commitObs(300, 744))
	total := 0.0
	for _, g := range dec.GenerateUnits {
		total += g
	}
	if total <= 0 {
		t.Fatal("unit not dispatched mid-trace: the commitment economics of this fixture are broken")
	}
}

// TestCommitWindowUnknownHorizonKeepsFullWindow covers hand-built
// observations (Horizon == 0): the clamp must not engage when the
// horizon is unknown.
func TestCommitWindowUnknownHorizonKeepsFullWindow(t *testing.T) {
	c := commitTestController(t, 100)
	dec := c.PlanFine(commitObs(742, 0))
	total := 0.0
	for _, g := range dec.GenerateUnits {
		total += g
	}
	if total <= 0 {
		t.Fatal("unknown horizon clamped the window: zero Horizon must mean no clamp")
	}
}
