package core

import (
	"math"

	"github.com/smartdpss/smartdpss/internal/queue"
	"github.com/smartdpss/smartdpss/internal/sim"
)

// Controller is the SmartDPSS online policy (Algorithm 1). It keeps the
// delay-aware virtual queue Y internally, freezes the concatenated queue
// state Θ(t) = [Q(t), X(t), Y(t)] at each coarse boundary (the Sec. IV-A
// approximation), and solves P4/P5 per slot.
type Controller struct {
	params Params
	delay  *queue.Delay

	// Queue state frozen at the current coarse-slot start.
	qT, yT, xT float64

	// est tracks trailing means of the exogenous inputs over the previous
	// coarse interval for P4's deficit estimate (see sim.TrailingMeans).
	est sim.TrailingMeans

	// lpFailures counts LP-path failures recovered by the analytic path
	// (expected to stay zero; exported for tests via LPFailures).
	lpFailures int
}

var _ sim.Controller = (*Controller)(nil)

// New returns a SmartDPSS controller for the given parameters.
func New(p Params) (*Controller, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	d, err := queue.NewDelay(p.Epsilon)
	if err != nil {
		return nil, err
	}
	return &Controller{params: p, delay: d}, nil
}

// Name implements sim.Controller.
func (c *Controller) Name() string { return "SmartDPSS" }

// CoarseSlots implements sim.Controller.
func (c *Controller) CoarseSlots() int { return c.params.T }

// Params returns the controller configuration.
func (c *Controller) Params() Params { return c.params }

// QueueY returns the current delay virtual queue value Y(τ).
func (c *Controller) QueueY() float64 { return c.delay.Value() }

// FrozenState returns the queue state Θ(t) = [Q(t), X(t), Y(t)] captured at
// the last coarse boundary.
func (c *Controller) FrozenState() (q, x, y float64) { return c.qT, c.xT, c.yT }

// LPFailures reports how many fine slots fell back from the LP path to the
// analytic path. It should be zero.
func (c *Controller) LPFailures() int { return c.lpFailures }

// PlanCoarse solves P4: pick gbef(t) minimizing
// gbef·[V·plt − Q(t) − Y(t)] subject to covering the observed
// delay-sensitive deficit and the per-slot grid cap. The objective is
// linear, so the optimum is bang-bang: buy the maximum when the weight is
// negative (grid cheap relative to queue pressure), otherwise buy exactly
// the deficit not coverable by renewables and the battery.
func (c *Controller) PlanCoarse(obs sim.CoarseObs) float64 {
	p := c.params
	c.qT = obs.Backlog
	c.yT = c.delay.Value()
	c.xT = obs.Battery - p.XShift()

	// Per-slot demand and renewable estimates: the trailing means of the
	// previous interval when available, otherwise the boundary snapshot
	// the paper's Algorithm 1 reads (SnapshotPlanning forces the latter;
	// see the EXT-4 ablation).
	dds, ddt, ren := obs.DemandDS, obs.DemandDT, obs.Renewable
	if c.est.Ready() && !p.SnapshotPlanning {
		dds, ddt, ren = c.est.Means()
	}
	c.est.Reset()

	if p.DisableLongTerm {
		return 0
	}
	weight := p.V*obs.PriceLT - (c.qT + c.yT)
	slots := float64(obs.Slots)
	if weight < 0 {
		// Queue pressure exceeds the weighted price: buy the maximum the
		// system can consume. The printed P4 is linear and its optimum is
		// the raw cap T·Pgrid, but P4 as printed drops the V·W waste term
		// of P3; retaining it caps the purchase at estimated serviceable
		// load — demand, backlog drain at the service rate, and battery
		// headroom — instead of flooding the plant (see doc.go).
		drain := math.Min(p.SdtMaxMWh, obs.Backlog/slots+ddt)
		chargeable := math.Max(0, (p.Battery.CapacityMWh-obs.Battery)/p.Battery.ChargeEff) / slots
		usable := dds - ren + drain + math.Min(chargeable, p.Battery.MaxChargeMWh)
		return slots * clamp(usable, 0, p.PgridMWh)
	}
	// Deliverable battery energy spread across the interval, respecting
	// the per-slot discharge cap.
	avail := math.Max(0, (obs.Battery-p.Battery.MinLevelMWh)/p.Battery.DischargeEff)
	battPerSlot := math.Min(p.Battery.MaxDischargeMWh, avail/slots)
	deficit := dds - ren - battPerSlot
	return slots * clamp(deficit, 0, p.PgridMWh)
}

// PlanFine solves P5 for one fine slot using the frozen queue state, with
// the UPS fixed charge handled exactly by comparing the battery-frozen and
// battery-free optima (see doc.go).
func (c *Controller) PlanFine(obs sim.FineObs) sim.Decision {
	p := c.params
	c.est.Observe(obs.DemandDS, obs.DemandDT, obs.Renewable)
	qy := c.qT + c.yT
	in := p5Input{
		dds:          obs.DemandDS,
		base:         obs.LongTermDue + obs.Renewable,
		grtMax:       math.Max(0, math.Min(obs.RTHeadroom, p.SmaxMWh-obs.LongTermDue-obs.Renewable)),
		sdtMax:       math.Max(0, math.Min(obs.Backlog, obs.SdtMax)),
		chargeMax:    math.Max(0, obs.MaxCharge),
		dischargeMax: math.Max(0, obs.MaxDischarge),
		etaC:         p.Battery.ChargeEff,
		etaD:         p.Battery.DischargeEff,
		wGrt:         p.V*obs.PriceRT - qy,
		wSdt:         -qy,
		wCharge:      c.qT + c.xT + c.yT,
		wWaste:       p.V*p.WasteCostUSD + qy,
		wEmergency:   p.V * p.EmergencyCostUSD,
	}

	free := c.solve(in)
	frozen := c.solve(in.frozen())
	freeTotal := free.obj
	if free.batteryUsed() {
		freeTotal += p.V * p.Battery.OpCostUSD
	}
	best := frozen
	if freeTotal < frozen.obj-1e-12 {
		best = free
	}
	return sim.Decision{
		Grt:       best.grt,
		ServeDT:   best.sdt,
		Charge:    best.charge,
		Discharge: best.discharge,
	}
}

// solve runs the configured P5 solver, falling back to the analytic path
// if the LP reference path fails (it cannot, short of a numerical bug).
func (c *Controller) solve(in p5Input) p5Result {
	if c.params.UseLP {
		res, err := solveP5LP(in)
		if err == nil {
			return res
		}
		c.lpFailures++
	}
	return solveP5Analytic(in)
}

// RecordOutcome implements sim.Controller: it advances the delay virtual
// queue Y with the executed service (Algorithm 1 step 3, Eq. 12).
func (c *Controller) RecordOutcome(out sim.Outcome) {
	c.delay.Update(out.ServedDT, out.BacklogBefore > 1e-12)
}

func clamp(x, lo, hi float64) float64 { return math.Min(hi, math.Max(lo, x)) }
