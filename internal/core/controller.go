package core

import (
	"math"

	"github.com/smartdpss/smartdpss/internal/generator"
	"github.com/smartdpss/smartdpss/internal/queue"
	"github.com/smartdpss/smartdpss/internal/scratch"
	"github.com/smartdpss/smartdpss/internal/sim"
)

// Controller is the SmartDPSS online policy (Algorithm 1). It keeps the
// delay-aware virtual queue Y internally, freezes the concatenated queue
// state Θ(t) = [Q(t), X(t), Y(t)] at each coarse boundary (the Sec. IV-A
// approximation), and solves P4/P5 per slot.
type Controller struct {
	params Params
	delay  *queue.Delay

	// Queue state frozen at the current coarse-slot start.
	qT, yT, xT float64

	// est tracks trailing means of the exogenous inputs over the previous
	// coarse interval for P4's deficit estimate (see sim.TrailingMeans).
	est sim.TrailingMeans

	// specs is the resolved on-site generation fleet (the legacy single
	// Generator appears as a one-unit fleet); merit holds the unit
	// indices in ascending base-marginal-price order.
	specs []generator.Params
	merit []int

	// Real-time price forecast for the unit-commitment lookahead: the
	// trailing mean of the previous coarse interval's observed prt, the
	// same causal estimator P4 uses for demand (see sim.TrailingMeans).
	prtSum   float64
	prtN     int
	prtMean  float64
	prtReady bool

	// Demand-envelope estimate frozen at the coarse boundary (the same
	// per-slot view P4 planned with), so commitment decisions are stable
	// within an interval instead of flapping on partial trailing means.
	envDDS, envDDT, envRen float64

	// lpFailures counts LP-path failures recovered by the analytic path
	// (expected to stay zero; exported for tests via LPFailures).
	lpFailures int

	// scr is the per-controller slot-loop scratch: every buffer the P5
	// solvers and the fleet planner need is owned here and reused across
	// fine slots, so steady-state planning allocates nothing.
	scr slotScratch
}

// slotScratch is the Controller's reusable slot-loop storage. Buffers
// grow to the fleet's size on first use and are reused verbatim after
// that; the zero value is ready.
type slotScratch struct {
	p5 p5Scratch   // merit-order solver legs and order buffers
	lp p5LPScratch // simplex reference path problem/solver

	flowsFree   []float64 // per-segment flows of the battery-free solve
	flowsFrozen []float64 // per-segment flows of the battery-frozen solve
	adopted     []float64 // flows of the adopted fleet solve (survives later solves)

	segsCur  []genSeg // committed segment set under construction
	segsCand []genSeg // candidate segment set (ping-pongs with segsCur on adoption)
	segTmp   []generator.Segment

	committedMin []float64
	starts       []float64
	committed    []bool
	units        []float64
	above        []float64
}

var _ sim.Controller = (*Controller)(nil)

// New returns a SmartDPSS controller for the given parameters.
func New(p Params) (*Controller, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	d, err := queue.NewDelay(p.Epsilon)
	if err != nil {
		return nil, err
	}
	c := &Controller{params: p, delay: d, specs: p.fleetSpecs()}
	c.merit = generator.MeritOrder(c.specs)
	return c, nil
}

// Name implements sim.Controller.
func (c *Controller) Name() string { return "SmartDPSS" }

// CoarseSlots implements sim.Controller.
func (c *Controller) CoarseSlots() int { return c.params.T }

// Params returns the controller configuration.
func (c *Controller) Params() Params { return c.params }

// QueueY returns the current delay virtual queue value Y(τ).
func (c *Controller) QueueY() float64 { return c.delay.Value() }

// FrozenState returns the queue state Θ(t) = [Q(t), X(t), Y(t)] captured at
// the last coarse boundary.
func (c *Controller) FrozenState() (q, x, y float64) { return c.qT, c.xT, c.yT }

// LPFailures reports how many fine slots fell back from the LP path to the
// analytic path. It should be zero.
func (c *Controller) LPFailures() int { return c.lpFailures }

// PlanCoarse solves P4: pick gbef(t) minimizing
// gbef·[V·plt − Q(t) − Y(t)] subject to covering the observed
// delay-sensitive deficit and the per-slot grid cap. The objective is
// linear, so the optimum is bang-bang: buy the maximum when the weight is
// negative (grid cheap relative to queue pressure), otherwise buy exactly
// the deficit not coverable by renewables and the battery.
func (c *Controller) PlanCoarse(obs sim.CoarseObs) float64 {
	p := c.params
	c.qT = obs.Backlog
	c.yT = c.delay.Value()
	c.xT = obs.Battery - p.XShift()

	// Per-slot demand and renewable estimates: the trailing means of the
	// previous interval when available, otherwise the boundary snapshot
	// the paper's Algorithm 1 reads (SnapshotPlanning forces the latter;
	// see the EXT-4 ablation).
	dds, ddt, ren := obs.DemandDS, obs.DemandDT, obs.Renewable
	if c.est.Ready() && !p.SnapshotPlanning {
		dds, ddt, ren = c.est.Means()
	}
	c.est.Reset()
	c.envDDS, c.envDDT, c.envRen = dds, ddt, ren
	// Roll the real-time price estimator over: the finished interval's
	// mean becomes the commitment lookahead's price forecast.
	if c.prtN > 0 {
		c.prtMean = c.prtSum / float64(c.prtN)
		c.prtReady = true
	}
	c.prtSum, c.prtN = 0, 0

	if p.DisableLongTerm {
		return 0
	}
	// On-site generation arm: when a unit's base fuel price undercuts
	// the offered long-term price — by enough that a full interval of
	// self-generation also recovers a cold start — P5 will prefer
	// self-generation, so the ahead-purchase should not cover the share
	// the fleet can carry. The startup condition keeps P4 from planning
	// around a unit whose startup economics P5 will veto. The committed
	// capacity sums across every unit that passes it.
	selfGen := 0.0
	fs := fuelScale(obs.FuelScale)
	for _, gp := range c.specs {
		if !gp.Enabled() {
			continue
		}
		margin := obs.PriceLT - gp.MarginalAt(0)*fs
		if margin > 0 && margin*gp.CapacityMWh*float64(p.T) > gp.StartupUSD {
			selfGen += gp.CapacityMWh
		}
	}
	weight := p.V*obs.PriceLT - (c.qT + c.yT)
	slots := float64(obs.Slots)
	if weight < 0 {
		// Queue pressure exceeds the weighted price: buy the maximum the
		// system can consume. The printed P4 is linear and its optimum is
		// the raw cap T·Pgrid, but P4 as printed drops the V·W waste term
		// of P3; retaining it caps the purchase at estimated serviceable
		// load — demand, backlog drain at the service rate, and battery
		// headroom — instead of flooding the plant (see doc.go).
		drain := math.Min(p.SdtMaxMWh, obs.Backlog/slots+ddt)
		chargeable := math.Max(0, (p.Battery.CapacityMWh-obs.Battery)/p.Battery.ChargeEff) / slots
		usable := dds - ren + drain + math.Min(chargeable, p.Battery.MaxChargeMWh)
		return slots * clamp(usable, 0, p.PgridMWh)
	}
	// Deliverable battery energy spread across the interval, respecting
	// the per-slot discharge cap.
	avail := math.Max(0, (obs.Battery-p.Battery.MinLevelMWh)/p.Battery.DischargeEff)
	battPerSlot := math.Min(p.Battery.MaxDischargeMWh, avail/slots)
	deficit := dds - ren - battPerSlot - selfGen
	return slots * clamp(deficit, 0, p.PgridMWh)
}

// PlanFine solves P5 for one fine slot using the frozen queue state, with
// the UPS fixed charge handled exactly by comparing the battery-frozen and
// battery-free optima (see doc.go). The returned Decision's GenerateUnits
// borrows controller-owned scratch and is valid until the next PlanFine
// call — the engine consumes each decision within its slot.
func (c *Controller) PlanFine(obs sim.FineObs) sim.Decision {
	p := c.params
	c.est.Observe(obs.DemandDS, obs.DemandDT, obs.Renewable)
	c.prtSum += obs.PriceRT
	c.prtN++
	qy := c.qT + c.yT
	in := p5Input{
		dds:          obs.DemandDS,
		base:         obs.LongTermDue + obs.Renewable,
		grtMax:       math.Max(0, math.Min(obs.RTHeadroom, p.SmaxMWh-obs.LongTermDue-obs.Renewable)),
		sdtMax:       math.Max(0, math.Min(obs.Backlog, obs.SdtMax)),
		chargeMax:    math.Max(0, obs.MaxCharge),
		dischargeMax: math.Max(0, obs.MaxDischarge),
		etaC:         p.Battery.ChargeEff,
		etaD:         p.Battery.DischargeEff,
		wGrt:         p.V*obs.PriceRT - qy,
		wSdt:         -qy,
		wCharge:      c.qT + c.xT + c.yT,
		wWaste:       p.V*p.WasteCostUSD + qy,
		wEmergency:   p.V * p.EmergencyCostUSD,
	}

	best, bestTotal := c.solveBest(in)
	dec := sim.Decision{
		Grt:       best.grt,
		ServeDT:   best.sdt,
		Charge:    best.charge,
		Discharge: best.discharge,
	}
	if len(c.specs) > 0 && len(obs.GenUnits) == len(c.specs) {
		c.planFleet(&dec, obs, in, qy, bestTotal)
	}
	return dec
}

// fuelScale normalizes an observation's fuel-price multiplier: the
// engine sends 1 when no fuel trace is configured, and a non-positive
// value (an unset field on a hand-built observation) falls back to the
// configured curve.
func fuelScale(v float64) float64 {
	if v <= 0 {
		return 1
	}
	return v
}

// unitSegs appends unit ui's dispatch band above its committed minimum
// as fuel-curve segments with drift weights V·(scaled marginal) − (Q+Y).
func (c *Controller) unitSegs(dst []genSeg, ui int, u generator.UnitObs, qy, fs float64) []genSeg {
	p := c.params
	c.scr.segTmp = c.specs[ui].AppendSegments(c.scr.segTmp[:0], u.MinMWh, u.MaxMWh)
	for _, s := range c.scr.segTmp {
		dst = append(dst, genSeg{cap: s.Cap, w: p.V*(s.USDPerMWh*fs) - qy, unit: ui})
	}
	return dst
}

// solveBest runs the battery-free/battery-frozen pair for one P5
// instance and returns the better result with its total (including the
// UPS fixed charge when the battery moves). The result's genFlows borrow
// a scratch buffer valid until the next solveBest call; adopters copy.
func (c *Controller) solveBest(in p5Input) (p5Result, float64) {
	p := c.params
	n := len(in.genSegs)
	c.scr.flowsFree = scratch.For(c.scr.flowsFree, n)
	c.scr.flowsFrozen = scratch.For(c.scr.flowsFrozen, n)
	free := c.solve(in, c.scr.flowsFree)
	frozen := c.solve(in.frozen(), c.scr.flowsFrozen)
	freeTotal := free.obj
	if free.batteryUsed() {
		freeTotal += p.V * p.Battery.OpCostUSD
	}
	if freeTotal < frozen.obj-1e-12 {
		return free, freeTotal
	}
	return frozen, frozen.obj
}

// fleetDecision rewrites dec from the solved committed-fleet P5: every
// committed unit runs its minimum stable load plus its segments' solved
// flows, pre-starting units carry their start signals, and the flexible
// real-time purchase is trimmed so committed supply stays inside the
// Smax cap (Eq. 1) the offline benchmarks optimize over.
func (c *Controller) fleetDecision(dec *sim.Decision, obs sim.FineObs, res p5Result,
	segs []genSeg, committedMin, starts []float64) {
	p := c.params
	units := scratch.Zeroed(c.scr.units, len(c.specs))
	above := scratch.Zeroed(c.scr.above, len(c.specs))
	c.scr.units, c.scr.above = units, above
	minSum := 0.0
	for si, flow := range res.genFlows {
		above[segs[si].unit] += flow
	}
	for ui, min := range committedMin {
		units[ui] = min + above[ui]
		minSum += min
	}
	for ui, req := range starts {
		if req > 0 {
			units[ui] = req // start signal; delivers after the lag
		}
	}
	// total groups as minSum + res.gen so the one-unit arm reproduces the
	// pre-fleet scalar arithmetic bit for bit.
	total := minSum + res.gen
	grt := math.Min(res.grt,
		math.Max(0, p.SmaxMWh-obs.LongTermDue-obs.Renewable-total))
	*dec = sim.Decision{
		Grt:           grt,
		ServeDT:       res.sdt,
		Charge:        res.charge,
		Discharge:     res.discharge,
		GenerateUnits: units,
	}
}

// planFleet evaluates the on-site generation arm of P5 and overwrites
// dec when dispatching wins. It has two phases:
//
// Phase 1 — rolling unit commitment (CommitWindow W > 1 only). Instead
// of re-litigating each unit's existence every slot against an
// amortized startup, starts and stops follow the projected profit over
// the next W slots: the forecastable price (the trailing real-time mean
// of the previous coarse interval, the same causal estimator P4 uses
// for demand) is earned only by energy inside the demand envelope —
// estimated demand not already covered by renewables and the committed
// long-term delivery — while fuel is paid on the full dispatch level,
// so min-load energy beyond the envelope counts as pure cost. A unit
// starts when W slots of that profit recover a full cold start, and a
// running unit stops only when W slots project losses beyond the
// restart it would eventually pay, which carries it through the short
// dips the myopic arm flaps on. Committed units are binding: their
// minimum loads enter the P5 balance and their fuel-curve segments
// price the dispatch level, with no per-slot veto. The envelope is
// consumed in merit order, so a fleet of small units commits only the
// granularity the demand supports — where a single big unit is
// all-or-nothing.
//
// Phase 2 — myopic per-slot arm over the remaining units (and the whole
// fleet when W ≤ 1, the pre-fleet degenerate case). Growing the set
// greedily in merit order, each unit's semi-continuous admissible set
// {0} ∪ [min, max] is handled by committing the minimum stable load
// into the balance (paying its exact fuel cost and collecting its queue
// relief), exposing the band above it as convex fuel-curve segments,
// and re-solving; the unit is adopted only when the drift objective
// improves. A cold start adds the startup cost amortized over one
// coarse interval (V·StartupUSD/T): startup is an inter-temporal cost a
// single-slot subproblem cannot attribute exactly, and a started unit
// typically runs for the remainder of the price regime that justified
// it — charging the full amount against one slot's gain would keep
// small units off while P4 has already planned around their output. A
// running unit receives the same amount as a keep-warm credit
// (hysteresis): shutting down during a short price dip forfeits the
// paid start and likely triggers a fresh one when the spike returns.
// Units off behind a synchronization lag cannot deliver this slot, so
// the arm instead pre-starts them whenever a slot of full output at the
// current real-time price beats fuel plus the amortized startup. For a
// one-unit fleet with W ≤ 1 this is exactly the pre-fleet
// single-generator arm.
func (c *Controller) planFleet(dec *sim.Decision, obs sim.FineObs, in p5Input, qy, bestTotal float64) {
	p := c.params
	fs := fuelScale(obs.FuelScale)
	committedMin := scratch.Zeroed(c.scr.committedMin, len(c.specs))
	starts := scratch.Zeroed(c.scr.starts, len(c.specs))
	c.scr.committedMin, c.scr.starts = committedMin, starts
	committed := scratch.Zeroed(c.scr.committed, len(c.specs))
	c.scr.committed = committed

	cur := in
	cur.genSegs = c.scr.segsCur[:0]
	curBest := bestTotal
	var lastRes p5Result
	var lastSegs []genSeg
	adopted, preStart := false, false

	// Phase 1: window commitment. The projection window is clamped to
	// the slots actually remaining in the trace: near the last-day
	// boundary an unclamped W would earn profit from slots that never
	// execute, committing starts whose cost the run can no longer
	// recover (and a clamped window of ≤ 1 slot degenerates to the
	// myopic arm below, exactly as a configured W ≤ 1 does).
	effW := p.CommitWindow
	if obs.Horizon > 0 && obs.Horizon-obs.Slot < effW {
		effW = obs.Horizon - obs.Slot
	}
	if effW > 1 {
		W := float64(effW)
		phat := obs.PriceRT
		if c.prtReady {
			phat = c.prtMean
		}
		env := math.Max(0, c.envDDS+c.envDDT-c.envRen-obs.LongTermDue)
		for _, ui := range c.merit {
			gp := c.specs[ui]
			u := obs.GenUnits[ui]
			if !gp.Enabled() {
				continue
			}
			m := gp.MarginalAt(0) * fs
			// Dispatch level if committed; only envelope-covered energy
			// earns the forecast price.
			gstar := clamp(env, gp.MinLoadMWh, gp.CapacityMWh)
			profit := phat*math.Min(gstar, env) - m*gstar
			switch {
			case u.MaxMWh > 0 && u.Running:
				if W*profit < -gp.StartupUSD {
					continue // release: projected losses exceed a restart
				}
			case u.MaxMWh > 0:
				if W*profit <= gp.StartupUSD {
					continue // margin does not recover a cold start
				}
			case u.RequestMax > 0 && !u.Running && !u.Starting:
				// Off behind a synchronization lag: send the start signal
				// on the same window economics; energy arrives after the
				// lag.
				if W*profit > gp.StartupUSD {
					starts[ui] = u.RequestMax
					preStart = true
				}
				continue
			default:
				continue
			}
			cur.base += u.MinMWh
			// Committed segments grow monotonically in phase 1, so they
			// append in place into the scratch-backed set.
			cur.genSegs = c.unitSegs(cur.genSegs, ui, u, qy, fs)
			committedMin[ui] = u.MinMWh
			committed[ui] = true
			env = math.Max(0, env-gstar)
			adopted = true
		}
		if adopted {
			lastRes, curBest = c.solveBest(cur)
			lastSegs = cur.genSegs
			c.adoptFlows(&lastRes)
		}
	}

	// Phase 2: myopic greedy over the units phase 1 left uncommitted.
	// The committed baseline is constant on both sides of each
	// comparison, so adding a unit is judged purely on its own merit.
	// Candidate segment sets build in a second scratch buffer that
	// ping-pongs with the committed set's on adoption, so the whole
	// greedy search reuses two buffers regardless of fleet size.
	candBuf := c.scr.segsCand
	for _, ui := range c.merit {
		if committed[ui] || starts[ui] > 0 {
			continue
		}
		gp := c.specs[ui]
		u := obs.GenUnits[ui]
		amortized := p.V * gp.StartupUSD / float64(p.T)
		if u.MaxMWh <= 0 {
			// Off behind a synchronization lag: pre-start when a slot of
			// full output at the current real-time price would beat both
			// the fuel bill and the amortized startup — the same
			// economics the lag-free arm applies through its offset.
			if u.RequestMax > 0 && !u.Running &&
				p.V*(obs.PriceRT-gp.MarginalAt(0)*fs)*gp.CapacityMWh > amortized {
				starts[ui] = u.RequestMax
				preStart = true
			}
			continue
		}

		cand := cur
		cand.base = cur.base + u.MinMWh
		cand.genSegs = c.unitSegs(append(candBuf[:0], cur.genSegs...), ui, u, qy, fs)
		candBuf = cand.genSegs
		offset := p.V*(fs*gp.FuelCost(u.MinMWh)) - u.MinMWh*qy
		if u.Running {
			offset -= amortized
		} else {
			offset += amortized
		}

		bestG, bestGTotal := c.solveBest(cand)
		if bestGTotal+offset < curBest-1e-12 {
			// Swap storage: the candidate set becomes the committed set
			// and the old committed backing hosts the next candidate
			// (nothing references it anymore).
			candBuf = cur.genSegs
			cur = cand
			// The adopted unit's offset is part of both sides of every
			// later comparison, so the rolling baseline carries the bare
			// solve total: adding the NEXT unit is judged purely on its
			// own offset against the marginal solve improvement.
			curBest = bestGTotal
			committedMin[ui] = u.MinMWh
			lastRes, lastSegs = bestG, cand.genSegs
			c.adoptFlows(&lastRes)
			adopted = true
		}
	}
	// Persist the (possibly regrown) backings for the next slot. Only the
	// slice headers shrink; lastSegs keeps its own view of the data until
	// the decision below is assembled.
	c.scr.segsCur = cur.genSegs[:0]
	c.scr.segsCand = candBuf[:0]

	switch {
	case adopted:
		c.fleetDecision(dec, obs, lastRes, lastSegs, committedMin, starts)
	case preStart:
		dec.GenerateUnits = starts
	}
}

// adoptFlows detaches an adopted result's per-segment flows from the
// solveBest scratch buffer they borrow, so later candidate solves cannot
// clobber them before the decision is assembled.
func (c *Controller) adoptFlows(res *p5Result) {
	if len(res.genFlows) == 0 {
		return
	}
	c.scr.adopted = append(c.scr.adopted[:0], res.genFlows...)
	res.genFlows = c.scr.adopted
}

// solve runs the configured P5 solver, falling back to the analytic path
// if the LP reference path fails (it cannot, short of a numerical bug).
// flows is the caller-owned buffer that receives the per-segment
// generation (see p5Scratch.solveAnalytic).
func (c *Controller) solve(in p5Input, flows []float64) p5Result {
	if c.params.UseLP {
		res, err := c.scr.lp.solve(in, flows)
		if err == nil {
			return res
		}
		c.lpFailures++
	}
	return c.scr.p5.solveAnalytic(in, flows)
}

// RecordOutcome implements sim.Controller: it advances the delay virtual
// queue Y with the executed service (Algorithm 1 step 3, Eq. 12).
func (c *Controller) RecordOutcome(out sim.Outcome) {
	c.delay.Update(out.ServedDT, out.BacklogBefore > 1e-12)
}

func clamp(x, lo, hi float64) float64 { return math.Min(hi, math.Max(lo, x)) }
