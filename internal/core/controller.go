package core

import (
	"math"

	"github.com/smartdpss/smartdpss/internal/queue"
	"github.com/smartdpss/smartdpss/internal/sim"
)

// Controller is the SmartDPSS online policy (Algorithm 1). It keeps the
// delay-aware virtual queue Y internally, freezes the concatenated queue
// state Θ(t) = [Q(t), X(t), Y(t)] at each coarse boundary (the Sec. IV-A
// approximation), and solves P4/P5 per slot.
type Controller struct {
	params Params
	delay  *queue.Delay

	// Queue state frozen at the current coarse-slot start.
	qT, yT, xT float64

	// est tracks trailing means of the exogenous inputs over the previous
	// coarse interval for P4's deficit estimate (see sim.TrailingMeans).
	est sim.TrailingMeans

	// lpFailures counts LP-path failures recovered by the analytic path
	// (expected to stay zero; exported for tests via LPFailures).
	lpFailures int
}

var _ sim.Controller = (*Controller)(nil)

// New returns a SmartDPSS controller for the given parameters.
func New(p Params) (*Controller, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	d, err := queue.NewDelay(p.Epsilon)
	if err != nil {
		return nil, err
	}
	return &Controller{params: p, delay: d}, nil
}

// Name implements sim.Controller.
func (c *Controller) Name() string { return "SmartDPSS" }

// CoarseSlots implements sim.Controller.
func (c *Controller) CoarseSlots() int { return c.params.T }

// Params returns the controller configuration.
func (c *Controller) Params() Params { return c.params }

// QueueY returns the current delay virtual queue value Y(τ).
func (c *Controller) QueueY() float64 { return c.delay.Value() }

// FrozenState returns the queue state Θ(t) = [Q(t), X(t), Y(t)] captured at
// the last coarse boundary.
func (c *Controller) FrozenState() (q, x, y float64) { return c.qT, c.xT, c.yT }

// LPFailures reports how many fine slots fell back from the LP path to the
// analytic path. It should be zero.
func (c *Controller) LPFailures() int { return c.lpFailures }

// PlanCoarse solves P4: pick gbef(t) minimizing
// gbef·[V·plt − Q(t) − Y(t)] subject to covering the observed
// delay-sensitive deficit and the per-slot grid cap. The objective is
// linear, so the optimum is bang-bang: buy the maximum when the weight is
// negative (grid cheap relative to queue pressure), otherwise buy exactly
// the deficit not coverable by renewables and the battery.
func (c *Controller) PlanCoarse(obs sim.CoarseObs) float64 {
	p := c.params
	c.qT = obs.Backlog
	c.yT = c.delay.Value()
	c.xT = obs.Battery - p.XShift()

	// Per-slot demand and renewable estimates: the trailing means of the
	// previous interval when available, otherwise the boundary snapshot
	// the paper's Algorithm 1 reads (SnapshotPlanning forces the latter;
	// see the EXT-4 ablation).
	dds, ddt, ren := obs.DemandDS, obs.DemandDT, obs.Renewable
	if c.est.Ready() && !p.SnapshotPlanning {
		dds, ddt, ren = c.est.Means()
	}
	c.est.Reset()

	if p.DisableLongTerm {
		return 0
	}
	// On-site generation arm: when the unit's base fuel price undercuts
	// the offered long-term price — by enough that a full interval of
	// self-generation also recovers a cold start — P5 will prefer
	// self-generation, so the ahead-purchase should not cover the share
	// the generator can carry. The startup condition keeps P4 from
	// planning around a unit whose startup economics P5 will veto.
	selfGen := 0.0
	if gp := p.Generator; gp.Enabled() {
		margin := obs.PriceLT - gp.MarginalAt(0)
		if margin > 0 && margin*gp.CapacityMWh*float64(p.T) > gp.StartupUSD {
			selfGen = gp.CapacityMWh
		}
	}
	weight := p.V*obs.PriceLT - (c.qT + c.yT)
	slots := float64(obs.Slots)
	if weight < 0 {
		// Queue pressure exceeds the weighted price: buy the maximum the
		// system can consume. The printed P4 is linear and its optimum is
		// the raw cap T·Pgrid, but P4 as printed drops the V·W waste term
		// of P3; retaining it caps the purchase at estimated serviceable
		// load — demand, backlog drain at the service rate, and battery
		// headroom — instead of flooding the plant (see doc.go).
		drain := math.Min(p.SdtMaxMWh, obs.Backlog/slots+ddt)
		chargeable := math.Max(0, (p.Battery.CapacityMWh-obs.Battery)/p.Battery.ChargeEff) / slots
		usable := dds - ren + drain + math.Min(chargeable, p.Battery.MaxChargeMWh)
		return slots * clamp(usable, 0, p.PgridMWh)
	}
	// Deliverable battery energy spread across the interval, respecting
	// the per-slot discharge cap.
	avail := math.Max(0, (obs.Battery-p.Battery.MinLevelMWh)/p.Battery.DischargeEff)
	battPerSlot := math.Min(p.Battery.MaxDischargeMWh, avail/slots)
	deficit := dds - ren - battPerSlot - selfGen
	return slots * clamp(deficit, 0, p.PgridMWh)
}

// PlanFine solves P5 for one fine slot using the frozen queue state, with
// the UPS fixed charge handled exactly by comparing the battery-frozen and
// battery-free optima (see doc.go).
func (c *Controller) PlanFine(obs sim.FineObs) sim.Decision {
	p := c.params
	c.est.Observe(obs.DemandDS, obs.DemandDT, obs.Renewable)
	qy := c.qT + c.yT
	in := p5Input{
		dds:          obs.DemandDS,
		base:         obs.LongTermDue + obs.Renewable,
		grtMax:       math.Max(0, math.Min(obs.RTHeadroom, p.SmaxMWh-obs.LongTermDue-obs.Renewable)),
		sdtMax:       math.Max(0, math.Min(obs.Backlog, obs.SdtMax)),
		chargeMax:    math.Max(0, obs.MaxCharge),
		dischargeMax: math.Max(0, obs.MaxDischarge),
		etaC:         p.Battery.ChargeEff,
		etaD:         p.Battery.DischargeEff,
		wGrt:         p.V*obs.PriceRT - qy,
		wSdt:         -qy,
		wCharge:      c.qT + c.xT + c.yT,
		wWaste:       p.V*p.WasteCostUSD + qy,
		wEmergency:   p.V * p.EmergencyCostUSD,
	}

	free := c.solve(in)
	frozen := c.solve(in.frozen())
	freeTotal := free.obj
	if free.batteryUsed() {
		freeTotal += p.V * p.Battery.OpCostUSD
	}
	best, bestTotal := frozen, frozen.obj
	if freeTotal < frozen.obj-1e-12 {
		best, bestTotal = free, freeTotal
	}
	dec := sim.Decision{
		Grt:       best.grt,
		ServeDT:   best.sdt,
		Charge:    best.charge,
		Discharge: best.discharge,
	}
	if gp := p.Generator; gp.Enabled() {
		c.planGenerator(&dec, obs, in, qy, bestTotal)
	}
	return dec
}

// planGenerator evaluates the on-site generation arm of P5 against the
// generator-free optimum bestTotal and overwrites dec when dispatching
// wins. The unit's admissible set {0} ∪ [min, max] is semi-continuous,
// so the arm commits the minimum stable load into the balance (paying
// its exact fuel cost and collecting its queue relief), exposes the band
// above it as convex fuel-curve segments, and re-solves. A cold start
// adds the startup cost amortized over one coarse interval
// (V·StartupUSD/T): startup is an inter-temporal cost a single-slot
// subproblem cannot attribute exactly, and a started unit typically runs
// for the remainder of the price regime that justified it — charging the
// full amount against one slot's gain would keep small units off while
// P4 has already planned around their output. When the unit is off
// behind a synchronization lag it cannot deliver this slot, so the arm
// instead pre-starts it whenever its base marginal fuel price undercuts
// the current real-time price.
func (c *Controller) planGenerator(dec *sim.Decision, obs sim.FineObs, in p5Input, qy, bestTotal float64) {
	p := c.params
	gp := p.Generator
	// Amortized startup with hysteresis: starting charges StartupUSD/T,
	// and a running unit receives the same amount as a keep-warm credit —
	// shutting down during a short price dip forfeits the paid start and
	// likely triggers a fresh one when the spike returns. The band keeps
	// the unit from flapping around its fuel/grid break-even (each real
	// flap is billed the full StartupUSD by the engine).
	amortized := p.V * gp.StartupUSD / float64(p.T)
	if obs.GenMaxMWh <= 0 {
		// Off behind a synchronization lag: pre-start when a slot of
		// full output at the current real-time price would beat both
		// the fuel bill and the amortized startup — the same economics
		// the lag-free arm applies through its offset.
		if obs.GenRequest > 0 && !obs.GenRunning &&
			p.V*(obs.PriceRT-gp.MarginalAt(0))*gp.CapacityMWh > amortized {
			dec.Generate = obs.GenRequest // start signal; delivers after the lag
		}
		return
	}

	inG := in
	inG.base = in.base + obs.GenMinMWh
	inG.genSegs = make([]genSeg, 0, 2)
	for _, s := range gp.Segments(obs.GenMinMWh, obs.GenMaxMWh) {
		inG.genSegs = append(inG.genSegs, genSeg{cap: s.Cap, w: p.V*s.USDPerMWh - qy})
	}
	offset := p.V*gp.FuelCost(obs.GenMinMWh) - obs.GenMinMWh*qy
	if obs.GenRunning {
		offset -= amortized
	} else {
		offset += amortized
	}

	freeG := c.solve(inG)
	frozenG := c.solve(inG.frozen())
	freeGTotal := freeG.obj
	if freeG.batteryUsed() {
		freeGTotal += p.V * p.Battery.OpCostUSD
	}
	bestG, bestGTotal := frozenG, frozenG.obj
	if freeGTotal < frozenG.obj-1e-12 {
		bestG, bestGTotal = freeG, freeGTotal
	}
	if bestGTotal+offset < bestTotal-1e-12 {
		gen := obs.GenMinMWh + bestG.gen
		// The merit-order legs cap grt and the generator independently;
		// the supply cap Smax (Eq. 1) binds their sum. Give the
		// committed unit priority and trim the flexible real-time
		// purchase so executed supply stays inside the same feasible
		// set the offline benchmarks optimize over.
		grt := math.Min(bestG.grt,
			math.Max(0, p.SmaxMWh-obs.LongTermDue-obs.Renewable-gen))
		*dec = sim.Decision{
			Grt:       grt,
			ServeDT:   bestG.sdt,
			Charge:    bestG.charge,
			Discharge: bestG.discharge,
			Generate:  gen,
		}
	}
}

// solve runs the configured P5 solver, falling back to the analytic path
// if the LP reference path fails (it cannot, short of a numerical bug).
func (c *Controller) solve(in p5Input) p5Result {
	if c.params.UseLP {
		res, err := solveP5LP(in)
		if err == nil {
			return res
		}
		c.lpFailures++
	}
	return solveP5Analytic(in)
}

// RecordOutcome implements sim.Controller: it advances the delay virtual
// queue Y with the executed service (Algorithm 1 step 3, Eq. 12).
func (c *Controller) RecordOutcome(out sim.Outcome) {
	c.delay.Update(out.ServedDT, out.BacklogBefore > 1e-12)
}

func clamp(x, lo, hi float64) float64 { return math.Min(hi, math.Max(lo, x)) }
