package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/smartdpss/smartdpss/internal/sim"
	"github.com/smartdpss/smartdpss/internal/trace"
)

// randomTraceSet builds an adversarial trace set: demand/renewable/prices
// drawn independently per slot with spikes, gaps and flat stretches — the
// "arbitrary demand" regime the paper targets (no stationarity at all).
func randomTraceSet(r *rand.Rand, slots int, pgrid, pmax float64) *trace.Set {
	mk := func(name string) *trace.Series { return trace.New(name, "MWh", 60, slots) }
	set := &trace.Set{
		DemandDS:  mk("demand_ds"),
		DemandDT:  mk("demand_dt"),
		Renewable: mk("renewable"),
		PriceLT:   mk("price_lt"),
		PriceRT:   mk("price_rt"),
	}
	for i := 0; i < slots; i++ {
		switch r.Intn(5) {
		case 0: // quiet slot
			set.DemandDS.Values[i] = r.Float64() * 0.3
		case 1: // spike
			set.DemandDS.Values[i] = pgrid * (0.8 + 0.2*r.Float64())
		default:
			set.DemandDS.Values[i] = r.Float64() * pgrid * 0.7
		}
		set.DemandDT.Values[i] = r.Float64() * pgrid / 2
		set.Renewable.Values[i] = r.Float64() * r.Float64() * pgrid // skewed low
		set.PriceLT.Values[i] = 1 + r.Float64()*(pmax*0.5)
		set.PriceRT.Values[i] = 1 + r.Float64()*(pmax-1)
	}
	return set
}

// TestFuzzControllerInvariants drives SmartDPSS over fully random
// (non-stationary, spiky) traces with random V/ε/T and checks the physical
// invariants the engine and Theorem 2 guarantee:
//   - the run completes without controller errors,
//   - the battery never leaves [Bmin, Bmax],
//   - delay-sensitive demand is always served (grid + rescue suffice since
//     dds ≤ Pgrid by construction),
//   - total cost is finite and non-negative.
func TestFuzzControllerInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	f := func() bool {
		p := DefaultParams()
		p.V = 0.02 + r.Float64()*5
		p.Epsilon = 0.1 + r.Float64()*2
		p.T = []int{3, 6, 12, 24, 48}[r.Intn(5)]
		p.UseLP = r.Intn(4) == 0 // occasionally exercise the LP path
		if r.Intn(3) == 0 {
			p.DisableLongTerm = true
		}
		if r.Intn(4) == 0 {
			p.Battery.MaxOps = 5 + r.Intn(30)
		}

		slots := 48 + r.Intn(120)
		set := randomTraceSet(r, slots, p.PgridMWh, p.PmaxUSD)

		ctrl, err := New(p)
		if err != nil {
			t.Logf("New: %v", err)
			return false
		}
		cfg := simConfig(p)
		cfg.KeepSeries = true
		rep, err := sim.Run(cfg, set, ctrl)
		if err != nil {
			t.Logf("Run: %v (V=%g eps=%g T=%d)", err, p.V, p.Epsilon, p.T)
			return false
		}
		if rep.BatteryMinMWh < p.Battery.MinLevelMWh-1e-9 ||
			rep.BatteryMaxMWh > p.Battery.CapacityMWh+1e-9 {
			t.Logf("battery bounds violated: [%g, %g]", rep.BatteryMinMWh, rep.BatteryMaxMWh)
			return false
		}
		if rep.UnservedMWh > 1e-6 {
			t.Logf("unserved %g with dds <= Pgrid", rep.UnservedMWh)
			return false
		}
		if math.IsNaN(rep.TotalCostUSD) || math.IsInf(rep.TotalCostUSD, 0) || rep.TotalCostUSD < 0 {
			t.Logf("cost = %g", rep.TotalCostUSD)
			return false
		}
		if ctrl.LPFailures() != 0 {
			t.Logf("LP fallbacks = %d", ctrl.LPFailures())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestFuzzExtremeTraces pushes degenerate inputs: all-zero demand,
// all-zero renewable, max-price stretches, zero-capacity battery.
func TestFuzzExtremeTraces(t *testing.T) {
	flat := func(v float64, slots int) []float64 {
		vals := make([]float64, slots)
		for i := range vals {
			vals[i] = v
		}
		return vals
	}
	const slots = 48
	cases := []struct {
		name string
		mut  func(*trace.Set, *Params)
	}{
		{"zero demand", func(s *trace.Set, p *Params) {
			s.DemandDS = trace.FromValues("demand_ds", "MWh", 60, flat(0, slots))
			s.DemandDT = trace.FromValues("demand_dt", "MWh", 60, flat(0, slots))
		}},
		{"zero renewable", func(s *trace.Set, p *Params) {
			s.Renewable = trace.FromValues("renewable", "MWh", 60, flat(0, slots))
		}},
		{"max prices", func(s *trace.Set, p *Params) {
			s.PriceLT = trace.FromValues("price_lt", "MWh", 60, flat(p.PmaxUSD, slots))
			s.PriceRT = trace.FromValues("price_rt", "MWh", 60, flat(p.PmaxUSD, slots))
		}},
		{"free power", func(s *trace.Set, p *Params) {
			s.PriceLT = trace.FromValues("price_lt", "MWh", 60, flat(0, slots))
			s.PriceRT = trace.FromValues("price_rt", "MWh", 60, flat(0, slots))
		}},
		{"no battery", func(s *trace.Set, p *Params) {
			p.Battery.CapacityMWh = 0
			p.Battery.MinLevelMWh = 0
			p.Battery.InitialMWh = 0
		}},
	}
	r := rand.New(rand.NewSource(72))
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := DefaultParams()
			set := randomTraceSet(r, slots, p.PgridMWh, p.PmaxUSD)
			tc.mut(set, &p)
			ctrl, err := New(p)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := sim.Run(simConfig(p), set, ctrl)
			if err != nil {
				t.Fatal(err)
			}
			if rep.UnservedMWh > 1e-6 {
				t.Errorf("unserved = %g", rep.UnservedMWh)
			}
		})
	}
}
