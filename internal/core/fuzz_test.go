package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/smartdpss/smartdpss/internal/generator"
	"github.com/smartdpss/smartdpss/internal/sim"
	"github.com/smartdpss/smartdpss/internal/trace"
)

// randomTraceSet builds an adversarial trace set: demand/renewable/prices
// drawn independently per slot with spikes, gaps and flat stretches — the
// "arbitrary demand" regime the paper targets (no stationarity at all).
func randomTraceSet(r *rand.Rand, slots int, pgrid, pmax float64) *trace.Set {
	mk := func(name string) *trace.Series { return trace.New(name, "MWh", 60, slots) }
	set := &trace.Set{
		DemandDS:  mk("demand_ds"),
		DemandDT:  mk("demand_dt"),
		Renewable: mk("renewable"),
		PriceLT:   mk("price_lt"),
		PriceRT:   mk("price_rt"),
	}
	for i := 0; i < slots; i++ {
		switch r.Intn(5) {
		case 0: // quiet slot
			set.DemandDS.Values[i] = r.Float64() * 0.3
		case 1: // spike
			set.DemandDS.Values[i] = pgrid * (0.8 + 0.2*r.Float64())
		default:
			set.DemandDS.Values[i] = r.Float64() * pgrid * 0.7
		}
		set.DemandDT.Values[i] = r.Float64() * pgrid / 2
		set.Renewable.Values[i] = r.Float64() * r.Float64() * pgrid // skewed low
		set.PriceLT.Values[i] = 1 + r.Float64()*(pmax*0.5)
		set.PriceRT.Values[i] = 1 + r.Float64()*(pmax-1)
	}
	return set
}

// TestFuzzControllerInvariants drives SmartDPSS over fully random
// (non-stationary, spiky) traces with random V/ε/T and checks the physical
// invariants the engine and Theorem 2 guarantee:
//   - the run completes without controller errors,
//   - the battery never leaves [Bmin, Bmax],
//   - delay-sensitive demand is always served (grid + rescue suffice since
//     dds ≤ Pgrid by construction),
//   - total cost is finite and non-negative.
func TestFuzzControllerInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	f := func() bool {
		p := DefaultParams()
		p.V = 0.02 + r.Float64()*5
		p.Epsilon = 0.1 + r.Float64()*2
		p.T = []int{3, 6, 12, 24, 48}[r.Intn(5)]
		p.UseLP = r.Intn(4) == 0 // occasionally exercise the LP path
		if r.Intn(3) == 0 {
			p.DisableLongTerm = true
		}
		if r.Intn(4) == 0 {
			p.Battery.MaxOps = 5 + r.Intn(30)
		}

		slots := 48 + r.Intn(120)
		set := randomTraceSet(r, slots, p.PgridMWh, p.PmaxUSD)

		ctrl, err := New(p)
		if err != nil {
			t.Logf("New: %v", err)
			return false
		}
		cfg := simConfig(p)
		cfg.KeepSeries = true
		rep, err := sim.Run(cfg, set, ctrl)
		if err != nil {
			t.Logf("Run: %v (V=%g eps=%g T=%d)", err, p.V, p.Epsilon, p.T)
			return false
		}
		if rep.BatteryMinMWh < p.Battery.MinLevelMWh-1e-9 ||
			rep.BatteryMaxMWh > p.Battery.CapacityMWh+1e-9 {
			t.Logf("battery bounds violated: [%g, %g]", rep.BatteryMinMWh, rep.BatteryMaxMWh)
			return false
		}
		if rep.UnservedMWh > 1e-6 {
			t.Logf("unserved %g with dds <= Pgrid", rep.UnservedMWh)
			return false
		}
		if math.IsNaN(rep.TotalCostUSD) || math.IsInf(rep.TotalCostUSD, 0) || rep.TotalCostUSD < 0 {
			t.Logf("cost = %g", rep.TotalCostUSD)
			return false
		}
		if ctrl.LPFailures() != 0 {
			t.Logf("LP fallbacks = %d", ctrl.LPFailures())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// randomUnitSpec draws one admissible fleet unit: capacity, minimum
// stable load, ramp, convex fuel curve, startup cost and lag.
func randomUnitSpec(r *rand.Rand) generator.Params {
	cap := 0.05 + r.Float64()*0.95
	p := generator.Params{
		CapacityMWh:   cap,
		MinLoadMWh:    r.Float64() * 0.6 * cap,
		FuelUSDPerMWh: 5 + r.Float64()*120,
		CO2KgPerMWh:   r.Float64() * 1000,
	}
	if r.Intn(2) == 0 {
		p.RampMWh = 0.1 + r.Float64()*cap
	}
	if r.Intn(2) == 0 {
		p.FuelQuadUSD = r.Float64() * 10
	}
	if r.Intn(2) == 0 {
		p.StartupUSD = r.Float64() * 50
	}
	if r.Intn(3) == 0 {
		p.StartupLagSlots = 1 + r.Intn(3)
	}
	return p
}

// TestFuzzFleetUnitDispatchInvariants drives single units through
// random request/fuel-scale sequences and checks the physics every
// controller relies on: output is {0} ∪ [minload, window max] within
// the nameplate, the up-ramp bound holds, fuel cost is the scaled curve
// (never negative), emissions track energy, and every cold start is
// billed exactly once.
func TestFuzzFleetUnitDispatchInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(73))
	f := func() bool {
		p := randomUnitSpec(r)
		g, err := generator.New(p)
		if err != nil {
			t.Logf("New(%+v): %v", p, err)
			return false
		}
		prev := 0.0
		running := false
		starts := 0
		for slot := 0; slot < 60; slot++ {
			g.Tick()
			min, max := g.Window()
			request := r.Float64() * p.CapacityMWh * 1.5
			scale := 0.25 + r.Float64()*2
			wasRunning, wasStarting := g.Running(), g.Starting()
			startsBefore := g.Starts()
			out := g.DispatchAt(request, scale)

			d := out.DeliveredMWh
			if d != 0 && (d < min-1e-9 || d > max+1e-9) {
				t.Logf("slot %d: delivered %g outside {0} ∪ [%g, %g]", slot, d, min, max)
				return false
			}
			if d > p.CapacityMWh+1e-9 {
				t.Logf("slot %d: delivered %g above nameplate %g", slot, d, p.CapacityMWh)
				return false
			}
			if p.RampMWh > 0 && wasRunning && running && d > prev+p.RampMWh+1e-9 {
				t.Logf("slot %d: ramp violated: %g -> %g (limit %g)", slot, prev, d, p.RampMWh)
				return false
			}
			if want := scale * p.FuelCost(d); out.FuelUSD < 0 || math.Abs(out.FuelUSD-want) > 1e-9 {
				t.Logf("slot %d: fuel %g, want %g", slot, out.FuelUSD, want)
				return false
			}
			if want := p.CO2KgPerMWh * d; math.Abs(out.CO2Kg-want) > 1e-9 {
				t.Logf("slot %d: co2 %g, want %g", slot, out.CO2Kg, want)
				return false
			}
			if g.Starts() > startsBefore {
				if wasRunning || wasStarting {
					t.Logf("slot %d: cold start on a warm unit", slot)
					return false
				}
				if math.Abs(out.StartupUSD-p.StartupUSD) > 1e-12 {
					t.Logf("slot %d: start billed %g, want %g", slot, out.StartupUSD, p.StartupUSD)
					return false
				}
				starts++
			} else if out.StartupUSD != 0 {
				t.Logf("slot %d: startup billed without a start", slot)
				return false
			}
			prev, running = d, g.Running() && d > 0
		}
		if g.Starts() != starts || math.Abs(g.StartupCostTotal()-float64(starts)*p.StartupUSD) > 1e-9 {
			t.Logf("starts %d billed %g, observed %d", g.Starts(), g.StartupCostTotal(), starts)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestFuzzFleetControllerInvariants drives SmartDPSS with random
// heterogeneous fleets (random unit specs, commitment windows, fuel
// traces) over random spiky traces and checks the run-level invariants:
// clean execution, served delay-sensitive demand, finite non-negative
// cost, zero LP fallbacks (the analytic P5 path with fleet source legs
// must keep matching the simplex reference the controller cross-runs
// under UseLP), battery bounds, and per-unit accounting that stays
// within nameplate physics.
func TestFuzzFleetControllerInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(74))
	f := func() bool {
		p := DefaultParams()
		p.V = 0.1 + r.Float64()*3
		p.T = []int{6, 12, 24}[r.Intn(3)]
		p.UseLP = r.Intn(3) == 0
		p.CommitWindow = []int{0, 1, 4, 12, 48}[r.Intn(5)]
		n := 1 + r.Intn(4)
		p.Fleet = make([]generator.Params, n)
		for i := range p.Fleet {
			p.Fleet[i] = randomUnitSpec(r)
		}

		slots := 48 + r.Intn(96)
		set := randomTraceSet(r, slots, p.PgridMWh, p.PmaxUSD)
		if r.Intn(2) == 0 {
			fs := trace.New("fuel_scale", "x", 60, slots)
			for i := range fs.Values {
				fs.Values[i] = 0.25 + r.Float64()*2
			}
			set.FuelScale = fs
		}

		ctrl, err := New(p)
		if err != nil {
			t.Logf("New: %v", err)
			return false
		}
		cfg := simConfig(p)
		cfg.Fleet = p.Fleet
		rep, err := sim.Run(cfg, set, ctrl)
		if err != nil {
			t.Logf("Run: %v (W=%d n=%d)", err, p.CommitWindow, n)
			return false
		}
		if rep.UnservedMWh > 1e-6 {
			t.Logf("unserved %g with dds <= Pgrid", rep.UnservedMWh)
			return false
		}
		if math.IsNaN(rep.TotalCostUSD) || math.IsInf(rep.TotalCostUSD, 0) || rep.TotalCostUSD < 0 {
			t.Logf("cost = %g", rep.TotalCostUSD)
			return false
		}
		if ctrl.LPFailures() != 0 {
			t.Logf("LP fallbacks = %d", ctrl.LPFailures())
			return false
		}
		if rep.GenFuelUSD < 0 || rep.GenStartupUSD < 0 || rep.GenCO2Kg < 0 {
			t.Logf("negative fleet accounting: %+v", rep)
			return false
		}
		if len(rep.GenUnits) != n {
			t.Logf("per-unit breakdown has %d entries, want %d", len(rep.GenUnits), n)
			return false
		}
		totalGen, totalCO2 := 0.0, 0.0
		for i, u := range rep.GenUnits {
			if u.EnergyMWh < 0 || u.EnergyMWh > p.Fleet[i].CapacityMWh*float64(slots)+1e-6 {
				t.Logf("unit %d energy %g outside [0, %g]", i, u.EnergyMWh, p.Fleet[i].CapacityMWh*float64(slots))
				return false
			}
			if u.FuelUSD < 0 || u.CO2Kg < 0 {
				t.Logf("unit %d negative accounting: %+v", i, u)
				return false
			}
			totalGen += u.EnergyMWh
			totalCO2 += u.CO2Kg
		}
		if math.Abs(totalGen-rep.GenEnergyMWh) > 1e-6 || math.Abs(totalCO2-rep.GenCO2Kg) > 1e-6 {
			t.Logf("fleet totals do not sum: %g vs %g, %g vs %g",
				totalGen, rep.GenEnergyMWh, totalCO2, rep.GenCO2Kg)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestFuzzUnitSpecErrorPath corrupts one random field of an otherwise
// admissible unit with NaN, ±Inf or a negative value and asserts the
// configuration is rejected at validation time — never silently carried
// into dispatch and fuel accounting. (NaN makes every comparison false,
// so before the explicit finite checks a NaN field sailed through both
// the generator guards and the fleet wiring.)
func TestFuzzUnitSpecErrorPath(t *testing.T) {
	r := rand.New(rand.NewSource(75))
	poisons := []float64{math.NaN(), math.Inf(1), math.Inf(-1), -0.5, -1e9}
	corrupt := []func(*generator.Params, float64){
		func(p *generator.Params, v float64) { p.CapacityMWh = v },
		func(p *generator.Params, v float64) { p.MinLoadMWh = v },
		func(p *generator.Params, v float64) { p.RampMWh = v },
		func(p *generator.Params, v float64) { p.FuelUSDPerMWh = v },
		func(p *generator.Params, v float64) { p.FuelQuadUSD = v },
		func(p *generator.Params, v float64) { p.StartupUSD = v },
		func(p *generator.Params, v float64) { p.CO2KgPerMWh = v },
	}
	f := func() bool {
		spec := randomUnitSpec(r)
		poison := poisons[r.Intn(len(poisons))]
		corrupt[r.Intn(len(corrupt))](&spec, poison)
		if err := spec.Validate(); err == nil {
			t.Logf("corrupted spec accepted: %+v", spec)
			return false
		}
		// The same spec inside a fleet must fail controller construction.
		p := DefaultParams()
		p.Fleet = []generator.Params{randomUnitSpec(r), spec}
		if _, err := New(p); err == nil {
			t.Logf("controller accepted corrupted fleet unit: %+v", spec)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestFuzzExtremeTraces pushes degenerate inputs: all-zero demand,
// all-zero renewable, max-price stretches, zero-capacity battery.
func TestFuzzExtremeTraces(t *testing.T) {
	flat := func(v float64, slots int) []float64 {
		vals := make([]float64, slots)
		for i := range vals {
			vals[i] = v
		}
		return vals
	}
	const slots = 48
	cases := []struct {
		name string
		mut  func(*trace.Set, *Params)
	}{
		{"zero demand", func(s *trace.Set, p *Params) {
			s.DemandDS = trace.FromValues("demand_ds", "MWh", 60, flat(0, slots))
			s.DemandDT = trace.FromValues("demand_dt", "MWh", 60, flat(0, slots))
		}},
		{"zero renewable", func(s *trace.Set, p *Params) {
			s.Renewable = trace.FromValues("renewable", "MWh", 60, flat(0, slots))
		}},
		{"max prices", func(s *trace.Set, p *Params) {
			s.PriceLT = trace.FromValues("price_lt", "MWh", 60, flat(p.PmaxUSD, slots))
			s.PriceRT = trace.FromValues("price_rt", "MWh", 60, flat(p.PmaxUSD, slots))
		}},
		{"free power", func(s *trace.Set, p *Params) {
			s.PriceLT = trace.FromValues("price_lt", "MWh", 60, flat(0, slots))
			s.PriceRT = trace.FromValues("price_rt", "MWh", 60, flat(0, slots))
		}},
		{"no battery", func(s *trace.Set, p *Params) {
			p.Battery.CapacityMWh = 0
			p.Battery.MinLevelMWh = 0
			p.Battery.InitialMWh = 0
		}},
	}
	r := rand.New(rand.NewSource(72))
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := DefaultParams()
			set := randomTraceSet(r, slots, p.PgridMWh, p.PmaxUSD)
			tc.mut(set, &p)
			ctrl, err := New(p)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := sim.Run(simConfig(p), set, ctrl)
			if err != nil {
				t.Fatal(err)
			}
			if rep.UnservedMWh > 1e-6 {
				t.Errorf("unserved = %g", rep.UnservedMWh)
			}
		})
	}
}
