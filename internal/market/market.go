// Package market provides the two-timescale smart-grid procurement
// bookkeeping of SmartDPSS (Sec. II-A.1, II-B.2): a long-term-ahead market
// committed once per coarse slot and delivered evenly over its T fine
// slots, and a real-time market purchased per fine slot, with the joint
// grid draw capped by Pgrid (Eq. 5) and prices capped by Pmax.
//
// The package owns the purchase ledgers — committed long-term energy, its
// per-slot delivery schedule, real-time buys and the headroom left under
// the caps. internal/sim drives it slot by slot (charging every purchase
// through it), and internal/engine configures it from Options; policy
// packages never touch it directly, they see its state through the
// observation structs.
package market

import (
	"errors"
	"fmt"
)

// Params bounds the grid interface.
type Params struct {
	// PgridMWh is the per-fine-slot cap on total grid energy
	// (gbef(t)/T + grt(τ) ≤ Pgrid, Eq. 5).
	PgridMWh float64
	// PmaxUSD is the price cap for both markets.
	PmaxUSD float64
}

// Validate reports parameter errors.
func (p Params) Validate() error {
	if p.PgridMWh <= 0 {
		return errors.New("market: PgridMWh must be positive")
	}
	if p.PmaxUSD <= 0 {
		return errors.New("market: PmaxUSD must be positive")
	}
	return nil
}

// Errors returned by Account methods.
var (
	ErrGridCap  = errors.New("market: Pgrid capacity exceeded")
	ErrPriceCap = errors.New("market: price outside [0, Pmax]")
	ErrNegative = errors.New("market: negative energy amount")
	ErrNoPeriod = errors.New("market: no active long-term commitment")
)

// Account tracks procurement across both markets for one datacenter.
type Account struct {
	params Params

	// current coarse interval
	ltDuePerSlot float64 // gbef(t)/T
	ltPrice      float64 // plt(t)
	active       bool

	// lifetime totals
	ltEnergyMWh float64
	rtEnergyMWh float64
	ltCostUSD   float64
	rtCostUSD   float64
}

// NewAccount returns an account with no active long-term commitment.
func NewAccount(p Params) (*Account, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Account{params: p}, nil
}

// Params returns the grid bounds.
func (a *Account) Params() Params { return a.params }

// BeginCoarse opens a coarse interval with a long-term purchase of
// gbefTotal MWh at price plt, delivered as gbefTotal/T per fine slot.
func (a *Account) BeginCoarse(gbefTotal, plt float64, slots int) error {
	if slots <= 0 {
		return fmt.Errorf("market: coarse interval needs positive slots, got %d", slots)
	}
	if gbefTotal < 0 {
		return ErrNegative
	}
	if plt < 0 || plt > a.params.PmaxUSD {
		return fmt.Errorf("%w: plt=%g", ErrPriceCap, plt)
	}
	perSlot := gbefTotal / float64(slots)
	if perSlot > a.params.PgridMWh+1e-9 {
		return fmt.Errorf("%w: gbef/T=%g > Pgrid=%g", ErrGridCap, perSlot, a.params.PgridMWh)
	}
	a.ltDuePerSlot = perSlot
	a.ltPrice = plt
	a.active = true
	return nil
}

// LongTermDue returns the energy delivered by the long-term market this
// fine slot (gbef(t)/T), zero before the first commitment.
func (a *Account) LongTermDue() float64 {
	if !a.active {
		return 0
	}
	return a.ltDuePerSlot
}

// RealTimeHeadroom returns the largest admissible real-time purchase this
// slot under the Pgrid cap.
func (a *Account) RealTimeHeadroom() float64 {
	h := a.params.PgridMWh - a.LongTermDue()
	if h < 0 {
		return 0
	}
	return h
}

// SettleLongTermSlot accrues one fine slot's share of the long-term bill
// (gbef(t)/T · plt(t), the first term of Cost(τ)) and returns that cost.
func (a *Account) SettleLongTermSlot() (float64, error) {
	if !a.active {
		return 0, ErrNoPeriod
	}
	cost := a.ltDuePerSlot * a.ltPrice
	a.ltEnergyMWh += a.ltDuePerSlot
	a.ltCostUSD += cost
	return cost, nil
}

// BuyRealTime purchases amount MWh at price prt this fine slot and returns
// its cost (the second term of Cost(τ)).
func (a *Account) BuyRealTime(amount, prt float64) (float64, error) {
	if amount < 0 {
		return 0, ErrNegative
	}
	if prt < 0 || prt > a.params.PmaxUSD {
		return 0, fmt.Errorf("%w: prt=%g", ErrPriceCap, prt)
	}
	if a.LongTermDue()+amount > a.params.PgridMWh+1e-9 {
		return 0, fmt.Errorf("%w: lt=%g + rt=%g > Pgrid=%g",
			ErrGridCap, a.LongTermDue(), amount, a.params.PgridMWh)
	}
	cost := amount * prt
	a.rtEnergyMWh += amount
	a.rtCostUSD += cost
	return cost, nil
}

// State is the account's mutable state, exported for session checkpoints
// (Params are pinned by the checkpoint's config hash, not stored here).
type State struct {
	LTDuePerSlot float64 `json:"ltDuePerSlot"`
	LTPrice      float64 `json:"ltPrice"`
	Active       bool    `json:"active"`
	LTEnergyMWh  float64 `json:"ltEnergyMWh"`
	RTEnergyMWh  float64 `json:"rtEnergyMWh"`
	LTCostUSD    float64 `json:"ltCostUSD"`
	RTCostUSD    float64 `json:"rtCostUSD"`
}

// State captures the account's mutable state for a checkpoint.
func (a *Account) State() State {
	return State{
		LTDuePerSlot: a.ltDuePerSlot,
		LTPrice:      a.ltPrice,
		Active:       a.active,
		LTEnergyMWh:  a.ltEnergyMWh,
		RTEnergyMWh:  a.rtEnergyMWh,
		LTCostUSD:    a.ltCostUSD,
		RTCostUSD:    a.rtCostUSD,
	}
}

// Restore overwrites the account's mutable state from a checkpoint.
func (a *Account) Restore(s State) error {
	if s.LTDuePerSlot < 0 || s.LTDuePerSlot > a.params.PgridMWh+1e-9 {
		return fmt.Errorf("%w: restored gbef/T=%g", ErrGridCap, s.LTDuePerSlot)
	}
	if s.LTPrice < 0 || s.LTPrice > a.params.PmaxUSD {
		return fmt.Errorf("%w: restored plt=%g", ErrPriceCap, s.LTPrice)
	}
	a.ltDuePerSlot = s.LTDuePerSlot
	a.ltPrice = s.LTPrice
	a.active = s.Active
	a.ltEnergyMWh = s.LTEnergyMWh
	a.rtEnergyMWh = s.RTEnergyMWh
	a.ltCostUSD = s.LTCostUSD
	a.rtCostUSD = s.RTCostUSD
	return nil
}

// LongTermEnergy returns lifetime long-term energy delivered in MWh.
func (a *Account) LongTermEnergy() float64 { return a.ltEnergyMWh }

// RealTimeEnergy returns lifetime real-time energy purchased in MWh.
func (a *Account) RealTimeEnergy() float64 { return a.rtEnergyMWh }

// LongTermCost returns the lifetime long-term bill in USD.
func (a *Account) LongTermCost() float64 { return a.ltCostUSD }

// RealTimeCost returns the lifetime real-time bill in USD.
func (a *Account) RealTimeCost() float64 { return a.rtCostUSD }

// TotalCost returns the lifetime grid bill in USD.
func (a *Account) TotalCost() float64 { return a.ltCostUSD + a.rtCostUSD }
