package market

import (
	"errors"
	"math"
	"testing"
)

func newTestAccount(t *testing.T) *Account {
	t.Helper()
	a, err := NewAccount(Params{PgridMWh: 2.0, PmaxUSD: 150})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewAccountValidates(t *testing.T) {
	if _, err := NewAccount(Params{PgridMWh: 0, PmaxUSD: 150}); err == nil {
		t.Error("zero Pgrid accepted")
	}
	if _, err := NewAccount(Params{PgridMWh: 2, PmaxUSD: 0}); err == nil {
		t.Error("zero Pmax accepted")
	}
}

func TestBeginCoarseAndSettle(t *testing.T) {
	a := newTestAccount(t)
	if err := a.BeginCoarse(24, 40, 24); err != nil {
		t.Fatal(err)
	}
	if got := a.LongTermDue(); got != 1.0 {
		t.Fatalf("LongTermDue = %g, want 1", got)
	}
	if got := a.RealTimeHeadroom(); got != 1.0 {
		t.Fatalf("RealTimeHeadroom = %g, want 1", got)
	}
	cost, err := a.SettleLongTermSlot()
	if err != nil {
		t.Fatal(err)
	}
	if cost != 40 {
		t.Fatalf("slot cost = %g, want 40", cost)
	}
	if a.LongTermEnergy() != 1 || a.LongTermCost() != 40 {
		t.Errorf("totals: energy=%g cost=%g", a.LongTermEnergy(), a.LongTermCost())
	}
}

func TestBeforeFirstCommitment(t *testing.T) {
	a := newTestAccount(t)
	if a.LongTermDue() != 0 {
		t.Error("LongTermDue before commitment must be 0")
	}
	if a.RealTimeHeadroom() != 2.0 {
		t.Error("headroom before commitment must be full Pgrid")
	}
	if _, err := a.SettleLongTermSlot(); !errors.Is(err, ErrNoPeriod) {
		t.Errorf("err = %v, want ErrNoPeriod", err)
	}
}

func TestBeginCoarseRejects(t *testing.T) {
	a := newTestAccount(t)
	if err := a.BeginCoarse(10, 40, 0); err == nil {
		t.Error("zero slots accepted")
	}
	if err := a.BeginCoarse(-1, 40, 24); !errors.Is(err, ErrNegative) {
		t.Errorf("negative energy: err = %v", err)
	}
	if err := a.BeginCoarse(10, -1, 24); !errors.Is(err, ErrPriceCap) {
		t.Errorf("negative price: err = %v", err)
	}
	if err := a.BeginCoarse(10, 200, 24); !errors.Is(err, ErrPriceCap) {
		t.Errorf("price above Pmax: err = %v", err)
	}
	if err := a.BeginCoarse(100, 40, 24); !errors.Is(err, ErrGridCap) {
		t.Errorf("gbef/T above Pgrid: err = %v", err)
	}
}

func TestBuyRealTime(t *testing.T) {
	a := newTestAccount(t)
	if err := a.BeginCoarse(24, 40, 24); err != nil {
		t.Fatal(err)
	}
	cost, err := a.BuyRealTime(0.5, 60)
	if err != nil {
		t.Fatal(err)
	}
	if cost != 30 {
		t.Fatalf("cost = %g, want 30", cost)
	}
	if a.RealTimeEnergy() != 0.5 || a.RealTimeCost() != 30 {
		t.Errorf("totals: energy=%g cost=%g", a.RealTimeEnergy(), a.RealTimeCost())
	}
	if a.TotalCost() != 30 {
		t.Errorf("TotalCost = %g, want 30 (no LT settled yet)", a.TotalCost())
	}
}

func TestBuyRealTimeRejects(t *testing.T) {
	a := newTestAccount(t)
	if err := a.BeginCoarse(24, 40, 24); err != nil {
		t.Fatal(err)
	}
	if _, err := a.BuyRealTime(-0.1, 60); !errors.Is(err, ErrNegative) {
		t.Errorf("negative amount: err = %v", err)
	}
	if _, err := a.BuyRealTime(0.1, 151); !errors.Is(err, ErrPriceCap) {
		t.Errorf("price above Pmax: err = %v", err)
	}
	if _, err := a.BuyRealTime(1.5, 60); !errors.Is(err, ErrGridCap) {
		t.Errorf("beyond headroom: err = %v", err)
	}
}

func TestHeadroomNeverNegative(t *testing.T) {
	a := newTestAccount(t)
	// Commit exactly Pgrid per slot.
	if err := a.BeginCoarse(2.0*24, 40, 24); err != nil {
		t.Fatal(err)
	}
	if got := a.RealTimeHeadroom(); got != 0 {
		t.Fatalf("headroom = %g, want 0", got)
	}
	if _, err := a.BuyRealTime(0.01, 60); !errors.Is(err, ErrGridCap) {
		t.Errorf("purchase with zero headroom: err = %v", err)
	}
}

func TestMultipleCoarseIntervals(t *testing.T) {
	a := newTestAccount(t)
	totalLT := 0.0
	for k := 0; k < 3; k++ {
		gbef := float64(k+1) * 3 // per-slot 0.5, 1.0, 1.5 — all under Pgrid
		if err := a.BeginCoarse(gbef, 40, 6); err != nil {
			t.Fatal(err)
		}
		for s := 0; s < 6; s++ {
			if _, err := a.SettleLongTermSlot(); err != nil {
				t.Fatal(err)
			}
		}
		totalLT += gbef
	}
	if math.Abs(a.LongTermEnergy()-totalLT) > 1e-9 {
		t.Fatalf("LongTermEnergy = %g, want %g", a.LongTermEnergy(), totalLT)
	}
	if math.Abs(a.LongTermCost()-totalLT*40) > 1e-9 {
		t.Fatalf("LongTermCost = %g, want %g", a.LongTermCost(), totalLT*40)
	}
}

func TestParamsAccessor(t *testing.T) {
	a := newTestAccount(t)
	if a.Params().PgridMWh != 2.0 || a.Params().PmaxUSD != 150 {
		t.Errorf("Params = %+v", a.Params())
	}
}
