package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// buildMode rebuilds g as a Problem in the requested bound mode.
func (g randomBoxLP) buildMode(bounded bool) (*Problem, []VarID) {
	p, ids := g.build()
	p.SetBounded(bounded)
	return p, ids
}

// TestBoundedMatchesRowFormulation is the row-vs-bound parity property:
// the same random box LP solved through the row formulation and through
// the bounded-variable simplex must agree on status and optimal objective,
// and both solutions must satisfy the original constraints and bounds.
// Solution vectors may differ on degenerate instances (alternate optimal
// vertices), so the cross-check is objective-level plus feasibility.
func TestBoundedMatchesRowFormulation(t *testing.T) {
	r := rand.New(rand.NewSource(501))
	f := func() bool {
		g := genBoxLP(r)
		pr, _ := g.buildMode(false)
		pb, _ := g.buildMode(true)
		rowSol, errR := pr.Minimize()
		bndSol, errB := pb.Minimize()
		if (errR != nil) != (errB != nil) {
			t.Logf("error mismatch: row %v vs bounded %v (problem %+v)", errR, errB, g)
			return false
		}
		if errR != nil {
			return true
		}
		if rowSol.Status != bndSol.Status {
			t.Logf("status mismatch: row %v vs bounded %v (problem %+v)",
				rowSol.Status, bndSol.Status, g)
			return false
		}
		if rowSol.Status != Optimal {
			return true
		}
		if math.Abs(rowSol.Objective-bndSol.Objective) > 1e-6*math.Max(1, math.Abs(rowSol.Objective)) {
			t.Logf("objective mismatch: row %.9g vs bounded %.9g (problem %+v)",
				rowSol.Objective, bndSol.Objective, g)
			return false
		}
		if !g.feasible(bndSol.Values(), 1e-6) {
			t.Logf("bounded optimum infeasible: %v (problem %+v)", bndSol.Values(), g)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 800}); err != nil {
		t.Fatal(err)
	}
}

// TestBoundedBruteForceCrossValidation repeats the exhaustive vertex
// enumeration cross-check against the bounded-variable simplex: on random
// small boxes the bound-flip pivot loop must reach the same optimum the
// enumerator finds.
func TestBoundedBruteForceCrossValidation(t *testing.T) {
	r := rand.New(rand.NewSource(1234))
	checked := 0
	for trial := 0; trial < 600; trial++ {
		g := genBoxLP(r)
		if g.nVars > 3 {
			continue // keep the C(n+m, n) enumeration cheap
		}
		p, _ := g.buildMode(true)
		sol, err := p.Minimize()
		if err != nil {
			t.Fatalf("trial %d: solver error: %v (problem %+v)", trial, err, g)
		}
		bfBest, bfFound := bruteForceMin(g)
		switch sol.Status {
		case Optimal:
			if !bfFound {
				if !g.feasible(sol.Values(), 1e-6) {
					t.Fatalf("trial %d: optimum not feasible (problem %+v)", trial, g)
				}
				continue
			}
			if math.Abs(bfBest-sol.Objective) > 1e-5*math.Max(1, math.Abs(bfBest)) {
				t.Fatalf("trial %d: bounded simplex %.9g vs brute force %.9g (problem %+v)",
					trial, sol.Objective, bfBest, g)
			}
			checked++
		case Infeasible:
			if bfFound {
				t.Fatalf("trial %d: bounded solver infeasible but brute force found obj %g (problem %+v)",
					trial, bfBest, g)
			}
		case Unbounded:
			t.Fatalf("trial %d: bounded box cannot be unbounded (problem %+v)", trial, g)
		}
	}
	if checked < 50 {
		t.Fatalf("only %d optimal instances cross-checked; generator too restrictive", checked)
	}
}

// TestBoundedPureBoxFlips exercises the bound-flip path in isolation: a
// problem with no constraint rows at all, where every negative-cost
// variable must flip to its upper bound and every non-negative-cost
// variable must stay at its lower bound.
func TestBoundedPureBoxFlips(t *testing.T) {
	p := NewProblem()
	p.SetBounded(true)
	x := p.AddVariable("x", 0, 3, -2)    // flips to 3
	y := p.AddVariable("y", 1, 4, 5)     // stays at 1
	z := p.AddVariable("z", -2, 2, -1)   // flips to 2
	w := p.AddVariable("w", 0.5, 9, 0)   // zero cost: stays at 0.5
	p.AddConstraint(LE, 100, Term{x, 1}) // keep the problem non-empty of rows

	sol, err := p.Minimize()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	want := -2.0*3 + 5*1 + -1.0*2
	if math.Abs(sol.Objective-want) > 1e-9 {
		t.Errorf("objective = %g, want %g", sol.Objective, want)
	}
	for i, exp := range map[VarID]float64{x: 3, y: 1, z: 2, w: 0.5} {
		if got := sol.Value(i); math.Abs(got-exp) > 1e-9 {
			t.Errorf("x%d = %g, want %g", int(i), got, exp)
		}
	}
}

// TestBoundedNoRows solves a bounded problem with zero constraint rows —
// the m = 0 tableau where the ratio test can only stop at the entering
// variable's own bound.
func TestBoundedNoRows(t *testing.T) {
	p := NewProblem()
	p.SetBounded(true)
	x := p.AddVariable("x", 0, 7, -1)
	y := p.AddVariable("y", 0, 2, 1)

	sol, err := p.Minimize()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || math.Abs(sol.Objective+7) > 1e-9 {
		t.Fatalf("got %v obj %g, want optimal -7", sol.Status, sol.Objective)
	}
	if sol.Value(x) != 7 || sol.Value(y) != 0 {
		t.Errorf("values (%g, %g), want (7, 0)", sol.Value(x), sol.Value(y))
	}
}

// TestBoundedReflectionPath pins the leaving-at-upper-bound case: x1
// enters the basis degenerately at zero, then x2's entry drives the basic
// x1 up to its bound, forcing the reflection rewrite before the pivot.
//
//	min −3x1 + x2   s.t. x1 − x2 ≤ 0,  x1 ∈ [0, 2],  x2 ∈ [0, 5]
//
// The optimum is x1 = 2 (at its upper bound), x2 = 2, objective −4.
func TestBoundedReflectionPath(t *testing.T) {
	p := NewProblem()
	p.SetBounded(true)
	x1 := p.AddVariable("x1", 0, 2, -3)
	x2 := p.AddVariable("x2", 0, 5, 1)
	p.AddConstraint(LE, 0, Term{x1, 1}, Term{x2, -1})

	sol, err := p.Minimize()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.Objective-(-4)) > 1e-9 {
		t.Errorf("objective = %g, want -4", sol.Objective)
	}
	if math.Abs(sol.Value(x1)-2) > 1e-9 || math.Abs(sol.Value(x2)-2) > 1e-9 {
		t.Errorf("solution (%g, %g), want (2, 2)", sol.Value(x1), sol.Value(x2))
	}
}

// TestBoundedBealeWithBound solves Beale's degenerate cycling example with
// the binding x6 ≤ 1 expressed as a variable bound instead of a row: the
// bounded pivot loop must terminate (anti-cycling) at the same optimum.
func TestBoundedBealeWithBound(t *testing.T) {
	p := NewProblem()
	p.SetBounded(true)
	x4 := p.AddVariable("x4", 0, math.Inf(1), -0.75)
	x5 := p.AddVariable("x5", 0, math.Inf(1), 150)
	x6 := p.AddVariable("x6", 0, 1, -0.02)
	x7 := p.AddVariable("x7", 0, math.Inf(1), 6)
	p.AddConstraint(LE, 0, Term{x4, 0.25}, Term{x5, -60}, Term{x6, -0.04}, Term{x7, 9})
	p.AddConstraint(LE, 0, Term{x4, 0.5}, Term{x5, -90}, Term{x6, -0.02}, Term{x7, 3})

	sol, err := p.Minimize()
	if err != nil {
		t.Fatalf("Beale example failed to terminate: %v", err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	if math.Abs(sol.Objective-(-0.05)) > 1e-9 {
		t.Errorf("objective = %g, want -0.05", sol.Objective)
	}
	if math.Abs(sol.Value(x6)-1) > 1e-9 {
		t.Errorf("x6 = %g, want 1", sol.Value(x6))
	}
}

// TestBoundedFixedVariables mixes variables fixed at lower == upper into a
// bounded problem: fixed variables must keep their value, contribute their
// constants to every row, and never enter the tableau.
func TestBoundedFixedVariables(t *testing.T) {
	p := NewProblem()
	p.SetBounded(true)
	fx := p.AddVariable("fx", 1.5, 1.5, 10) // fixed, cost contributes 15
	x := p.AddVariable("x", 0, 4, 1)
	fy := p.AddVariable("fy", -2, -2, 0) // fixed negative
	// x + fx + fy = 2  ⇒  x = 2.5.
	p.AddConstraint(EQ, 2, Term{fx, 1}, Term{x, 1}, Term{fy, 1})

	sol, err := p.Minimize()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if got := sol.Value(fx); got != 1.5 {
		t.Errorf("fx = %g, want 1.5", got)
	}
	if got := sol.Value(fy); got != -2 {
		t.Errorf("fy = %g, want -2", got)
	}
	if got := sol.Value(x); math.Abs(got-2.5) > 1e-9 {
		t.Errorf("x = %g, want 2.5", got)
	}
	if want := 10*1.5 + 2.5; math.Abs(sol.Objective-want) > 1e-9 {
		t.Errorf("objective = %g, want %g", sol.Objective, want)
	}
}

// TestBoundedDegenerateTies solves a degenerate bounded instance where
// several ratio-test limits coincide at zero and the bound flip competes
// with pivots: termination and the optimal objective are what matter.
func TestBoundedDegenerateTies(t *testing.T) {
	p := NewProblem()
	p.SetBounded(true)
	x := p.AddVariable("x", 0, 1, -1)
	y := p.AddVariable("y", 0, 1, -1)
	z := p.AddVariable("z", 0, 1, -1)
	// Three redundant constraints all tight at the origin.
	p.AddConstraint(LE, 0, Term{x, 1}, Term{y, -1})
	p.AddConstraint(LE, 0, Term{y, 1}, Term{z, -1})
	p.AddConstraint(LE, 0, Term{x, 1}, Term{z, -1})

	sol, err := p.Minimize()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	// x ≤ y ≤ z ≤ 1 and x ≤ z, all maximized: x = y = z = 1.
	if math.Abs(sol.Objective-(-3)) > 1e-9 {
		t.Errorf("objective = %g, want -3", sol.Objective)
	}
}

// TestBoundedInfeasibleAndUnbounded checks status classification survives
// the bounded rewrite.
func TestBoundedInfeasibleAndUnbounded(t *testing.T) {
	p := NewProblem()
	p.SetBounded(true)
	x := p.AddVariable("x", 0, 1, 1)
	p.AddConstraint(GE, 5, Term{x, 1}) // x ≤ 1 cannot reach 5
	sol, err := p.Minimize()
	if err != nil || sol.Status != Infeasible {
		t.Fatalf("infeasible case: %v %v", err, sol.Status)
	}

	p2 := NewProblem()
	p2.SetBounded(true)
	y := p2.AddVariable("y", 0, math.Inf(1), -1)
	z := p2.AddVariable("z", 0, 2, 1)
	p2.AddConstraint(GE, 0, Term{y, 1}, Term{z, 1})
	sol2, err := p2.Minimize()
	if err != nil || sol2.Status != Unbounded {
		t.Fatalf("unbounded case: %v %v", err, sol2.Status)
	}
}

// TestBoundedStandardFormShrinksTableau pins the tentpole's size win: the
// bounded conversion emits no row for variable upper bounds, so a box
// problem's standard form holds exactly the caller's constraint rows.
func TestBoundedStandardFormShrinksTableau(t *testing.T) {
	build := func(bounded bool) *standardForm {
		p := NewProblem()
		p.SetBounded(bounded)
		ids := make([]VarID, 6)
		for i := range ids {
			ids[i] = p.AddVariable("", 0, float64(i+1), 1)
		}
		free := p.AddVariable("free", 0, math.Inf(1), 1)
		p.AddConstraint(EQ, 3, Term{ids[0], 1}, Term{ids[1], 1}, Term{free, 1})
		p.AddConstraint(LE, 5, Term{ids[2], 1}, Term{ids[3], 2})
		var sf standardForm
		p.buildStandardForm(&sf)
		return &sf
	}
	row := build(false)
	bnd := build(true)
	if got, want := len(row.rows), 2+6; got != want {
		t.Fatalf("row mode emitted %d rows, want %d (2 constraints + 6 bounds)", got, want)
	}
	if got, want := len(bnd.rows), 2; got != want {
		t.Fatalf("bounded mode emitted %d rows, want %d (constraints only)", got, want)
	}
	finite := 0
	for _, u := range bnd.upper {
		if !math.IsInf(u, 1) {
			finite++
		}
	}
	if finite != 6 {
		t.Fatalf("bounded mode recorded %d column bounds, want 6", finite)
	}
}

// TestBoundedSolveWarmFallsBackCold: SolveWarm on a bounded problem must
// run the exact cold sequence (a remembered basis cannot carry the
// nonbasic-at-upper-bound set), solving correctly every time.
func TestBoundedSolveWarmFallsBackCold(t *testing.T) {
	s := NewSolver()
	for it := 0; it < 5; it++ {
		p := NewProblem()
		p.SetBounded(true)
		demand := 1.5 + float64(it)*0.1
		x1, _, _ := buildTransport(p, demand, 2, 2, 10, 20)
		sol, err := s.SolveWarm(p)
		if err != nil || sol.Status != Optimal {
			t.Fatalf("iter %d: %v %v", it, err, sol.Status)
		}
		if got := sol.Value(x1); math.Abs(got-demand) > 1e-9 {
			t.Fatalf("iter %d: x1 = %g, want %g (cheapest source covers demand)", it, got, demand)
		}
	}
}

// TestBoundedResetKeepsMode pins that Problem.Reset preserves the bound
// mode alongside the iteration budget.
func TestBoundedResetKeepsMode(t *testing.T) {
	p := NewProblem()
	p.SetBounded(true)
	p.AddVariable("x", 0, 1, -1)
	first, err := p.Minimize()
	if err != nil || first.Status != Optimal {
		t.Fatalf("%v %v", err, first.Status)
	}
	p.Reset()
	x := p.AddVariable("x", 0, 1, -1)
	second, err := p.Minimize()
	if err != nil || second.Status != Optimal {
		t.Fatalf("%v %v", err, second.Status)
	}
	if second.Value(x) != 1 || second.Objective != -1 {
		t.Fatalf("after Reset: x = %g obj %g, want 1, -1", second.Value(x), second.Objective)
	}
}
