package lp

import (
	"math"
	"math/rand"
	"testing"
)

// halfspace is one linear condition a·x {≤,=} b used by the brute-force
// vertex enumerator.
type halfspace struct {
	a   []float64
	rel Relation
	b   float64
}

// allHalfspaces flattens a randomBoxLP into halfspaces including bounds.
func (g randomBoxLP) allHalfspaces() []halfspace {
	var hs []halfspace
	for c, row := range g.rows {
		a := make([]float64, g.nVars)
		copy(a, row)
		hs = append(hs, halfspace{a: a, rel: g.rels[c], b: g.rhs[c]})
	}
	for i := 0; i < g.nVars; i++ {
		lo := make([]float64, g.nVars)
		lo[i] = 1
		hs = append(hs, halfspace{a: lo, rel: GE, b: g.lo[i]})
		hi := make([]float64, g.nVars)
		hi[i] = 1
		hs = append(hs, halfspace{a: hi, rel: LE, b: g.hi[i]})
	}
	return hs
}

// solveSquare solves an n×n dense linear system with partial pivoting,
// returning ok=false for singular systems.
func solveSquare(a [][]float64, b []float64) ([]float64, bool) {
	n := len(b)
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n+1)
		copy(m[i], a[i])
		m[i][n] = b[i]
	}
	for col := 0; col < n; col++ {
		piv, best := -1, 1e-9
		for r := col; r < n; r++ {
			if v := math.Abs(m[r][col]); v > best {
				piv, best = r, v
			}
		}
		if piv < 0 {
			return nil, false
		}
		m[col], m[piv] = m[piv], m[col]
		inv := 1 / m[col][col]
		for j := col; j <= n; j++ {
			m[col][j] *= inv
		}
		for r := 0; r < n; r++ {
			if r == col || m[r][col] == 0 {
				continue
			}
			f := m[r][col]
			for j := col; j <= n; j++ {
				m[r][j] -= f * m[col][j]
			}
		}
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = m[i][n]
	}
	return x, true
}

// bruteForceMin enumerates all vertices of the polytope (intersections of
// nVars constraint hyperplanes), and returns the best feasible objective.
func bruteForceMin(g randomBoxLP) (best float64, found bool) {
	hs := g.allHalfspaces()
	n := g.nVars
	best = math.Inf(1)

	idx := make([]int, n)
	var rec func(start, k int)
	rec = func(start, k int) {
		if k == n {
			a := make([][]float64, n)
			b := make([]float64, n)
			for i, hi := range idx {
				a[i] = hs[hi].a
				b[i] = hs[hi].b
			}
			x, ok := solveSquare(a, b)
			if !ok {
				return
			}
			if g.feasible(x, 1e-7) {
				found = true
				if obj := g.objective(x); obj < best {
					best = obj
				}
			}
			return
		}
		for i := start; i < len(hs); i++ {
			idx[k] = i
			rec(i+1, k+1)
		}
	}
	rec(0, 0)
	return best, found
}

// TestBruteForceCrossValidation compares the simplex optimum against
// exhaustive vertex enumeration on hundreds of random small LPs. Because the
// random boxes are bounded, an optimum always sits on a vertex.
func TestBruteForceCrossValidation(t *testing.T) {
	r := rand.New(rand.NewSource(1234))
	checked := 0
	for trial := 0; trial < 600; trial++ {
		g := genBoxLP(r)
		if g.nVars > 3 {
			continue // keep the C(n+m, n) enumeration cheap
		}
		p, _ := g.build()
		sol, err := p.Minimize()
		if err != nil {
			t.Fatalf("trial %d: solver error: %v (problem %+v)", trial, err, g)
		}
		bfBest, bfFound := bruteForceMin(g)
		switch sol.Status {
		case Optimal:
			if !bfFound {
				// The brute force can miss feasible regions whose optimum is
				// at a degenerate intersection it failed to solve; verify the
				// simplex point instead.
				if !g.feasible(sol.Values(), 1e-6) {
					t.Fatalf("trial %d: optimum not feasible (problem %+v)", trial, g)
				}
				continue
			}
			if math.Abs(bfBest-sol.Objective) > 1e-5*math.Max(1, math.Abs(bfBest)) {
				t.Fatalf("trial %d: simplex %.9g vs brute force %.9g (problem %+v)",
					trial, sol.Objective, bfBest, g)
			}
			checked++
		case Infeasible:
			if bfFound {
				t.Fatalf("trial %d: solver infeasible but brute force found vertex with obj %g (problem %+v)",
					trial, bfBest, g)
			}
		case Unbounded:
			t.Fatalf("trial %d: bounded box cannot be unbounded (problem %+v)", trial, g)
		}
	}
	if checked < 50 {
		t.Fatalf("only %d optimal instances cross-checked; generator too restrictive", checked)
	}
}
