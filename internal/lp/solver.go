package lp

import "github.com/smartdpss/smartdpss/internal/scratch"

// Solver owns every working buffer of the simplex — the standard-form
// rewrite, the dense tableau arena, and the solution vector — and reuses
// them across solves. Long sequences of similar problems (the per-slot P5
// instances, the per-interval and receding-horizon baseline LPs) solve
// allocation-free once the buffers have grown to the largest shape seen.
//
// A Solver additionally remembers the optimal basis of its last solve.
// SolveWarm re-installs that basis when the next problem has the same
// standard-form shape, skipping phase 1 and most phase-2 pivots for
// problem sequences that differ only in costs and right-hand sides; when
// the remembered basis cannot be installed or is infeasible for the new
// data it falls back to the exact cold path. Warm bases exist only for
// the row formulation: bounded-mode problems (Problem.SetBounded) always
// solve cold, and SolveWarm on them is exactly Solve.
//
// A Solver is not safe for concurrent use. The Solution returned by Solve
// and SolveWarm borrows the solver's buffers and is valid only until the
// next solve; use Solution.Values (a copy) to retain results.
type Solver struct {
	sf  standardForm
	t   tableau
	rev revised

	y    []float64 // standard-form solution scratch
	vals []float64 // recovered variable values (borrowed by Solution)

	warmOK    bool
	warmBasis []int
	// Shape signature of the solve that produced warmBasis: the basis can
	// only be reused when the next problem maps to identical standard-form
	// dimensions and auxiliary-column layout.
	warmM, warmN, warmCols, warmArt int
}

// NewSolver returns an empty solver; buffers grow on first use.
func NewSolver() *Solver { return &Solver{} }

// Solve runs the exact two-phase simplex with buffer reuse. The pivot
// sequence is identical to Problem.Minimize, so results are bit-for-bit
// the same; only the allocation behavior differs.
func (s *Solver) Solve(p *Problem) (Solution, error) { return s.run(p, false) }

// SolveWarm solves p starting from the previous solve's optimal basis
// when the shapes match (see the type comment), falling back to the exact
// cold path otherwise. Warm and cold solves of the same problem reach an
// optimal basis of identical objective value; for non-degenerate problems
// the solution vector is identical too.
func (s *Solver) SolveWarm(p *Problem) (Solution, error) { return s.run(p, true) }

// Reset drops the remembered warm basis (buffers are kept). Use it when
// switching to an unrelated problem sequence where a stale basis would
// only waste the failed installation attempt.
func (s *Solver) Reset() { s.warmOK = false }

func (s *Solver) run(p *Problem, warm bool) (Solution, error) {
	if err := p.validate(); err != nil {
		return Solution{}, err
	}
	// Bounded and sparse problems always solve cold: a remembered basis
	// does not carry the nonbasic-at-upper-bound set, so re-installing
	// it could silently start from the wrong solution point.
	warm = warm && !p.bounded && !p.sparse
	p.buildStandardForm(&s.sf)
	sf := &s.sf
	if p.sparse {
		if sol, ok := s.runSparse(p); ok {
			return sol, nil
		}
		// Numerical trouble on the sparse path: rebuild the rows dense
		// and fall through to the exact tableau solver, which owns the
		// final word on every problem.
		p.buildStandardFormDense(sf)
	}
	t := &s.t
	t.init(sf)

	maxIter := p.maxIter
	if maxIter <= 0 {
		maxIter = 200 + 60*(t.m+t.n)
	}

	warmApplied := false
	if warm && s.warmOK && t.m == s.warmM && t.n == s.warmN &&
		sf.ncols == s.warmCols && t.artStart == s.warmArt {
		switch t.applyBasis(s.warmBasis) {
		case applyOK:
			warmApplied = true
		case applyRepair:
			// Both costs and rhs moved since the remembered solve, so the
			// old optimal basis is slightly infeasible here: repair the few
			// violated rows in place instead of redoing phase 1.
			warmApplied = t.repairPrimal(maxIter)
		}
		if !warmApplied {
			// The failed installation left partial pivots behind; rebuild
			// for the exact cold path.
			t.init(sf)
		}
	}

	if !warmApplied {
		// Phase 1: minimize the sum of artificial variables.
		t.inPhase1 = true
		status, err := t.iterate(maxIter)
		if err != nil {
			return Solution{}, err
		}
		if status == Unbounded {
			// Phase-1 objective is bounded below by 0; unbounded here means a bug.
			return Solution{}, errNumericalBug
		}
		if t.p1val > feasTol {
			s.warmOK = false
			return Solution{Status: Infeasible, Iterations: t.pivots}, nil
		}
		t.leavePhase1()
	}

	// Phase 2: minimize the true objective.
	status, err := t.iterate(maxIter)
	if err != nil {
		return Solution{}, err
	}
	if status == Unbounded {
		s.warmOK = false
		return Solution{Status: Unbounded, Iterations: t.pivots}, nil
	}

	s.y = scratch.Zeroed(s.y, sf.ncols)
	if t.hasUB {
		// Nonbasic flipped columns sit at their upper bound; basic flipped
		// columns hold the complement, undone below.
		for j := 0; j < sf.ncols; j++ {
			if t.flip[j] {
				s.y[j] = t.ub[j]
			}
		}
	}
	for i := 0; i < t.m; i++ {
		if col := t.basis[i]; col < sf.ncols {
			if t.hasUB && t.flip[col] {
				s.y[col] = t.ub[col] - t.rhs[i]
			} else {
				s.y[col] = t.rhs[i]
			}
		}
	}
	s.vals = scratch.Zeroed(s.vals, len(sf.recover))
	sf.recoverValuesInto(s.y, s.vals)
	if !p.bounded && !p.sparse {
		s.rememberBasis(sf)
	}
	return Solution{
		Status:     Optimal,
		Objective:  t.objVal + sf.offset,
		Iterations: t.pivots,
		values:     s.vals,
	}, nil
}

// rememberBasis records the optimal basis for the next SolveWarm. A basis
// is only reusable when no redundant rows were dropped in leavePhase1
// (the row count still matches the problem shape).
func (s *Solver) rememberBasis(sf *standardForm) {
	t := &s.t
	if t.m != len(sf.rows) {
		s.warmOK = false
		return
	}
	s.warmBasis = scratch.For(s.warmBasis, t.m)
	copy(s.warmBasis, t.basis[:t.m])
	s.warmM, s.warmN, s.warmCols, s.warmArt = t.m, t.n, sf.ncols, t.artStart
	s.warmOK = true
}

// Minimize solves the problem with a throwaway solver, returning a
// Solution whose Status reports optimality, infeasibility or
// unboundedness. An error is returned only for structurally invalid
// problems or when the iteration budget is exhausted. Callers solving
// many problems should keep a Solver instead.
func (p *Problem) Minimize() (*Solution, error) {
	var s Solver
	sol, err := s.Solve(p)
	if err != nil {
		return nil, err
	}
	// Detach the values from the throwaway solver's buffer.
	out := sol
	if sol.values != nil {
		out.values = append([]float64(nil), sol.values...)
	}
	return &out, nil
}
