package lp

import "github.com/smartdpss/smartdpss/internal/scratch"

// luPivotTol is the smallest pivot magnitude factorize accepts before
// declaring a column numerically dependent and patching the basis with a
// placeholder unit column (see factorize). It sits well below the ratio
// test's pivotTol so a basis the pivot loop was willing to enter is
// normally factorizable as-is.
const luPivotTol = 1e-10

// Eta-file refactorization cadence: the basis is refactorized from
// scratch after maxEtas product-form updates, or earlier when the eta
// file's fill exceeds etaFillFactor nonzeros per row — but never before
// the fill reaches minEtaFill, so tiny bases (where etaFillFactor·m is a
// handful of entries) cannot thrash a refactorization every pivot. All
// triggers are deterministic functions of the pivot sequence, so solve
// results do not depend on timing or memory pressure.
const (
	maxEtas       = 64
	etaFillFactor = 16
	minEtaFill    = 64
)

// Hyper-sparse density threshold: ftranSparse/btranUnit keep their
// solutions as index lists while the pattern covers at most
// 1/hyperDenseDiv of the basis, and fall back to the dense loops past
// that (graph traversal overhead exceeds a plain sweep once the vector
// fills in). The floor keeps tiny bases on the sparse path so the parity
// and fuzz harnesses exercise it.
const (
	hyperDenseDiv     = 4
	hyperPatternFloor = 4
)

// basisLU holds an LU factorization of the simplex basis in product
// form: a sequence of elimination stages L_k (each clearing one pivot
// row) and a permuted upper-triangular factor, plus an eta file of
// rank-one updates appended by pivots since the last refactorization.
// The factorization is computed column-by-column in the style of
// Gilbert–Peierls: a depth-first search over the partially built L graph
// finds the fill pattern of each incoming column, and the numeric
// elimination then touches only that pattern. Columns are processed in
// ascending nonzero count — a cheap, deterministic approximation of
// Markowitz ordering that keeps fill near zero on the staircase bases
// the horizon LPs produce (most columns are singletons or couple two
// adjacent slots).
//
// All storage is flat and reused across factorizations; after the first
// few solves of a fixed-shape problem sequence the type allocates
// nothing.
type basisLU struct {
	m  int
	nk int // elimination steps completed (== m after factorize)

	// L stages in elimination order. Stage k eliminates pivot row
	// prow[k]; its off-pivot multipliers are lrow/lval[lstart[k]:lstart[k+1]].
	lstart []int32
	lrow   []int32
	lval   []float64

	// U columns in elimination order. Column k's off-diagonal entries
	// sit in rows that are pivot rows of earlier stages; urow stores the
	// elimination index of that stage (always < k).
	ustart []int32
	urow   []int32
	uval   []float64
	udiag  []float64

	prow   []int32 // elimination step -> pivot row
	pcol   []int32 // elimination step -> basis position
	kOfRow []int32 // row -> elimination step, -1 while unpivoted

	// Eta file: product-form updates appended by pivots. Eta e replaces
	// basis position epos[e]; ediag[e] is the pivot element of the
	// update column and erow/eval its off-pivot entries (basis
	// positions).
	neta   int
	estart []int32
	erow   []int32
	eval   []float64
	epos   []int32
	ediag  []float64

	// Per-position chains over the eta entries: eHead[p] is the latest
	// entry whose support row is p (-1 when none), eNext links back to
	// the previous one, eOf names the owning eta. btranUnit walks the
	// chains of its pattern positions to find the etas whose support it
	// touches, instead of scanning the whole file; ecand flags them
	// during one call.
	eHead []int32
	eNext []int32
	eOf   []int32
	ecand []bool

	// deficient counts the basis positions the last factorize had to
	// patch with placeholder unit columns (numerically dependent basis).
	deficient int

	// nfactor counts factorizations since the solver state was built;
	// observability for tests of the refactorization cadence.
	nfactor int

	// Transposed factor adjacency, rebuilt by factorize for the
	// hyper-sparse btranUnit. For each elimination step k, utK/utV list
	// the later steps whose U column references k (with the referencing
	// value), and ltK/ltV the steps whose L column references pivot row
	// prow[k]. kOfPos inverts pcol (basis position -> elimination step).
	utStart []int32
	utK     []int32
	utV     []float64
	ltStart []int32
	ltK     []int32
	ltV     []float64
	kOfPos  []int32

	// scratch, reused across calls
	x     []float64 // dense accumulator, kept all-zero between columns
	mark  []bool    // visited rows of the current column's DFS
	stack []int32   // DFS node stack
	si    []int32   // DFS per-depth child cursor
	topo  []int32   // DFS postorder (reverse = topological)
	topo2 []int32   // second postorder list for the two-stage sparse solves
	order []int32   // positions in factorization order
	cnt   []int32   // counting-sort buckets
	tk    []float64 // btran intermediate, by elimination index
	cs    []float64 // btranUnit position-space accumulator, all-zero invariant
	tks   []float64 // btranUnit step-space accumulator, all-zero invariant
}

// factorize rebuilds the LU factors from the current basis of rs and
// clears the eta file. Numerically dependent columns are replaced in
// rs's basis by placeholder unit columns (fixed at zero), which restores
// nonsingularity without aborting the solve; the caller observes the
// patch through lu.deficient and rs's updated statuses.
func (lu *basisLU) factorize(rs *revised) {
	m := rs.m
	lu.m = m
	lu.nk = 0
	lu.neta = 0
	lu.deficient = 0
	lu.lstart = append(lu.lstart[:0], 0)
	lu.lrow = lu.lrow[:0]
	lu.lval = lu.lval[:0]
	lu.ustart = append(lu.ustart[:0], 0)
	lu.urow = lu.urow[:0]
	lu.uval = lu.uval[:0]
	lu.udiag = scratch.For(lu.udiag, m)
	lu.prow = scratch.For(lu.prow, m)
	lu.pcol = scratch.For(lu.pcol, m)
	lu.kOfRow = scratch.For(lu.kOfRow, m)
	lu.estart = append(lu.estart[:0], 0)
	lu.erow = lu.erow[:0]
	lu.eval = lu.eval[:0]
	lu.epos = lu.epos[:0]
	lu.ediag = lu.ediag[:0]
	lu.eNext = lu.eNext[:0]
	lu.eOf = lu.eOf[:0]
	lu.eHead = scratch.For(lu.eHead, m)
	for i := range lu.eHead {
		lu.eHead[i] = -1
	}
	for i := range lu.kOfRow {
		lu.kOfRow[i] = -1
	}
	lu.x = scratch.Zeroed(lu.x, m)
	lu.mark = scratch.Zeroed(lu.mark, m)
	lu.stack = scratch.For(lu.stack, m)
	lu.si = scratch.For(lu.si, m)
	lu.topo = lu.topo[:0]
	lu.tk = scratch.For(lu.tk, m)

	lu.sortByColumnNnz(rs)

	for _, pos := range lu.order {
		lu.factorColumn(rs, int(pos))
	}

	lu.buildTransposes()
	lu.topo2 = lu.topo2[:0]
	lu.cs = scratch.Zeroed(lu.cs, m)
	lu.tks = scratch.Zeroed(lu.tks, m)
	lu.nfactor++
}

// buildTransposes derives the transposed adjacency of the U and L
// factors (counting-sort CSR builds, deterministic) plus the inverse
// basis-position permutation. The hyper-sparse btranUnit needs these to
// run its reachability DFS in the transposed direction.
func (lu *basisLU) buildTransposes() {
	m := lu.m
	lu.kOfPos = scratch.For(lu.kOfPos, m)
	for k := 0; k < m; k++ {
		lu.kOfPos[lu.pcol[k]] = int32(k)
	}

	lu.utStart = scratch.Zeroed(lu.utStart, m+1)
	for _, src := range lu.urow {
		lu.utStart[src+1]++
	}
	for k := 0; k < m; k++ {
		lu.utStart[k+1] += lu.utStart[k]
	}
	lu.utK = scratch.For(lu.utK, len(lu.urow))
	lu.utV = scratch.For(lu.utV, len(lu.urow))
	copy(lu.cnt[:m], lu.utStart[:m])
	for k2 := 0; k2 < m; k2++ {
		for i := lu.ustart[k2]; i < lu.ustart[k2+1]; i++ {
			src := lu.urow[i]
			lu.utK[lu.cnt[src]] = int32(k2)
			lu.utV[lu.cnt[src]] = lu.uval[i]
			lu.cnt[src]++
		}
	}

	lu.ltStart = scratch.Zeroed(lu.ltStart, m+1)
	for _, r := range lu.lrow {
		lu.ltStart[lu.kOfRow[r]+1]++
	}
	for k := 0; k < m; k++ {
		lu.ltStart[k+1] += lu.ltStart[k]
	}
	lu.ltK = scratch.For(lu.ltK, len(lu.lrow))
	lu.ltV = scratch.For(lu.ltV, len(lu.lrow))
	copy(lu.cnt[:m], lu.ltStart[:m])
	for k2 := 0; k2 < m; k2++ {
		for i := lu.lstart[k2]; i < lu.lstart[k2+1]; i++ {
			src := lu.kOfRow[lu.lrow[i]]
			lu.ltK[lu.cnt[src]] = int32(k2)
			lu.ltV[lu.cnt[src]] = lu.lval[i]
			lu.cnt[src]++
		}
	}
}

// sortByColumnNnz fills lu.order with the basis positions sorted by
// ascending nonzero count of their columns (stable counting sort, so the
// order is deterministic). Sparsest-first processing is the Markowitz
// approximation: singleton columns become free pivots and the staircase
// coupling columns eliminate against an almost fully pivoted front.
func (lu *basisLU) sortByColumnNnz(rs *revised) {
	m := rs.m
	lu.order = scratch.For(lu.order, m)
	lu.cnt = scratch.Zeroed(lu.cnt, m+2)
	nnzOf := func(pos int) int32 {
		v := rs.basisVar[pos]
		if int(v) >= rs.n { // placeholder unit column
			return 1
		}
		return rs.colStart[v+1] - rs.colStart[v]
	}
	for pos := 0; pos < m; pos++ {
		nz := nnzOf(pos)
		if int(nz) > m {
			nz = int32(m)
		}
		lu.cnt[nz+1]++
	}
	for i := 1; i < len(lu.cnt); i++ {
		lu.cnt[i] += lu.cnt[i-1]
	}
	for pos := 0; pos < m; pos++ {
		nz := nnzOf(pos)
		if int(nz) > m {
			nz = int32(m)
		}
		lu.order[lu.cnt[nz]] = int32(pos)
		lu.cnt[nz]++
	}
}

// factorColumn eliminates one basis column: symbolic DFS for the fill
// pattern, numeric elimination over that pattern in topological order,
// then pivot selection (largest magnitude, ties to the smallest row
// index for determinism).
func (lu *basisLU) factorColumn(rs *revised, pos int) {
	v := int(rs.basisVar[pos])

	// Scatter the column and run the reachability DFS from each nonzero.
	lu.topo = lu.topo[:0]
	if v >= rs.n {
		r := int32(v - rs.n)
		lu.x[r] = 1
		lu.dfs(r)
	} else {
		for i := rs.colStart[v]; i < rs.colStart[v+1]; i++ {
			r := rs.colRow[i]
			lu.x[r] += rs.colVal[i]
			if !lu.mark[r] {
				lu.dfs(r)
			}
		}
	}

	// Numeric elimination: reverse postorder is a topological order of
	// the pivotal stages reached, so each stage sees fully updated input.
	for ti := len(lu.topo) - 1; ti >= 0; ti-- {
		r := lu.topo[ti]
		k := lu.kOfRow[r]
		if k < 0 {
			continue
		}
		t := lu.x[r]
		if t == 0 {
			continue
		}
		for i := lu.lstart[k]; i < lu.lstart[k+1]; i++ {
			lu.x[lu.lrow[i]] -= lu.lval[i] * t
		}
	}

	// Pivot selection among non-pivotal rows of the pattern.
	best := -1.0
	pr := int32(-1)
	for _, r := range lu.topo {
		if lu.kOfRow[r] >= 0 {
			continue
		}
		a := lu.x[r]
		if a < 0 {
			a = -a
		}
		if a > best || (a == best && r < pr) {
			best, pr = a, r
		}
	}

	k := int32(lu.nk)
	if best <= luPivotTol {
		// Numerically dependent column: patch the basis position with a
		// placeholder unit column on the smallest unpivoted row. The
		// placeholder is fixed at zero, so the solve continues on a
		// nearby nonsingular basis; composite phase 1 re-establishes
		// feasibility if the demoted variable was carrying value.
		for _, r := range lu.topo { // clear the failed pattern first
			lu.x[r] = 0
			lu.mark[r] = false
		}
		pr = -1
		for r := 0; r < lu.m; r++ {
			if lu.kOfRow[r] < 0 {
				pr = int32(r)
				break
			}
		}
		rs.demoteToPlaceholder(pos, pr)
		lu.deficient++
		lu.udiag[k] = 1
		lu.prow[k] = pr
		lu.pcol[k] = int32(pos)
		lu.kOfRow[pr] = k
		lu.lstart = append(lu.lstart, int32(len(lu.lrow)))
		lu.ustart = append(lu.ustart, int32(len(lu.urow)))
		lu.nk++
		return
	}

	diag := lu.x[pr]
	for _, r := range lu.topo {
		xv := lu.x[r]
		if k2 := lu.kOfRow[r]; k2 >= 0 {
			if xv != 0 {
				lu.urow = append(lu.urow, k2)
				lu.uval = append(lu.uval, xv)
			}
		} else if r != pr && xv != 0 {
			lu.lrow = append(lu.lrow, r)
			lu.lval = append(lu.lval, xv/diag)
		}
		lu.x[r] = 0
		lu.mark[r] = false
	}
	lu.udiag[k] = diag
	lu.prow[k] = pr
	lu.pcol[k] = int32(pos)
	lu.kOfRow[pr] = k
	lu.lstart = append(lu.lstart, int32(len(lu.lrow)))
	lu.ustart = append(lu.ustart, int32(len(lu.urow)))
	lu.nk++
}

// dfs marks every row reachable from r through already-built L stages
// and appends the visited rows in postorder to lu.topo.
func (lu *basisLU) dfs(r int32) {
	top := 0
	lu.stack[top] = r
	lu.si[top] = 0
	lu.mark[r] = true
	for top >= 0 {
		node := lu.stack[top]
		k := lu.kOfRow[node]
		advanced := false
		if k >= 0 {
			for i := lu.lstart[k] + lu.si[top]; i < lu.lstart[k+1]; i++ {
				child := lu.lrow[i]
				lu.si[top] = i - lu.lstart[k] + 1
				if !lu.mark[child] {
					lu.mark[child] = true
					top++
					lu.stack[top] = child
					lu.si[top] = 0
					advanced = true
					break
				}
			}
		}
		if !advanced {
			lu.topo = append(lu.topo, node)
			top--
		}
	}
}

// ftran solves B·w = a. The input a is a dense row-space vector of
// length m and is consumed as scratch; w (length m, basis-position
// space) receives the result.
func (lu *basisLU) ftran(a, w []float64) {
	for k := 0; k < lu.nk; k++ {
		t := a[lu.prow[k]]
		if t != 0 {
			for i := lu.lstart[k]; i < lu.lstart[k+1]; i++ {
				a[lu.lrow[i]] -= lu.lval[i] * t
			}
		}
	}
	for k := lu.nk - 1; k >= 0; k-- {
		y := a[lu.prow[k]] / lu.udiag[k]
		if y != 0 {
			for i := lu.ustart[k]; i < lu.ustart[k+1]; i++ {
				a[lu.prow[lu.urow[i]]] -= lu.uval[i] * y
			}
		}
		w[lu.pcol[k]] = y
	}
	for e := 0; e < lu.neta; e++ {
		r := lu.epos[e]
		t := w[r] / lu.ediag[e]
		w[r] = t
		if t != 0 {
			for i := lu.estart[e]; i < lu.estart[e+1]; i++ {
				w[lu.erow[i]] -= lu.eval[i] * t
			}
		}
	}
}

// btran solves Bᵀ·y = c. The input c is a basis-position-space vector of
// length m and is consumed as scratch; y (length m, row space) receives
// the result.
func (lu *basisLU) btran(c, y []float64) {
	for e := lu.neta - 1; e >= 0; e-- {
		r := lu.epos[e]
		s := c[r]
		for i := lu.estart[e]; i < lu.estart[e+1]; i++ {
			s -= lu.eval[i] * c[lu.erow[i]]
		}
		c[r] = s / lu.ediag[e]
	}
	for k := 0; k < lu.nk; k++ {
		s := c[lu.pcol[k]]
		for i := lu.ustart[k]; i < lu.ustart[k+1]; i++ {
			s -= lu.uval[i] * lu.tk[lu.urow[i]]
		}
		lu.tk[k] = s / lu.udiag[k]
	}
	for k := 0; k < lu.nk; k++ {
		y[lu.prow[k]] = lu.tk[k]
	}
	for k := lu.nk - 1; k >= 0; k-- {
		s := y[lu.prow[k]]
		for i := lu.lstart[k]; i < lu.lstart[k+1]; i++ {
			s -= lu.lval[i] * y[lu.lrow[i]]
		}
		y[lu.prow[k]] = s
	}
}

// hyperThreshold is the pattern size past which the sparse solves hand
// over to the dense loops. The floor keeps small bases on the sparse
// path (the overhead is negligible there and the parity tests need the
// coverage).
func (lu *basisLU) hyperThreshold() int {
	t := lu.m / hyperDenseDiv
	if t < hyperPatternFloor {
		t = hyperPatternFloor
	}
	return t
}

// dfsOn marks every node reachable from n through the CSR adjacency
// (adjStart, adjTo) and appends the visited nodes in postorder to out,
// which it returns. Reverse postorder of the result is a topological
// order. The caller owns clearing lu.mark for the appended nodes.
func (lu *basisLU) dfsOn(n int32, adjStart, adjTo []int32, out []int32) []int32 {
	top := 0
	lu.stack[top] = n
	lu.si[top] = 0
	lu.mark[n] = true
	for top >= 0 {
		node := lu.stack[top]
		advanced := false
		for i := adjStart[node] + lu.si[top]; i < adjStart[node+1]; i++ {
			child := adjTo[i]
			lu.si[top] = i - adjStart[node] + 1
			if !lu.mark[child] {
				lu.mark[child] = true
				top++
				lu.stack[top] = child
				lu.si[top] = 0
				advanced = true
				break
			}
		}
		if !advanced {
			out = append(out, node)
			top--
		}
	}
	return out
}

// ftranSparse solves B·w = a for a sparse right-hand side given as
// parallel row/value slices. w must be all-zero on entry and receives
// the solution; the returned list is the solution's pattern in
// basis-position space (it may include exact numeric zeros), appended to
// wIdx[:0]. A false second return means the pattern crossed the
// hyper-sparse density threshold and the solve finished on the dense
// loops — every entry of w is then potentially nonzero and the returned
// slice is only the retained buffer. Either way lu.x is left all-zero.
func (lu *basisLU) ftranSparse(aRow []int32, aVal []float64, w []float64, wIdx []int32) ([]int32, bool) {
	thr := lu.hyperThreshold()

	// L stage: scatter the column, reachability DFS over the L graph
	// (same traversal the factorization uses), numeric in reverse
	// postorder.
	lu.topo = lu.topo[:0]
	for i, r := range aRow {
		lu.x[r] += aVal[i]
		if !lu.mark[r] {
			lu.dfs(r)
		}
	}
	if len(lu.topo) > thr {
		for _, r := range lu.topo {
			lu.mark[r] = false
		}
		lu.ftranDenseL()
		lu.ftranDenseU(w)
		lu.ftranDenseEta(w)
		return wIdx[:0], false
	}
	for ti := len(lu.topo) - 1; ti >= 0; ti-- {
		r := lu.topo[ti]
		lu.mark[r] = false
		k := lu.kOfRow[r]
		t := lu.x[r]
		if t == 0 {
			continue
		}
		for i := lu.lstart[k]; i < lu.lstart[k+1]; i++ {
			lu.x[lu.lrow[i]] -= lu.lval[i] * t
		}
	}

	// U stage: reachability in elimination-step space (column k's
	// off-diagonal entries name the earlier steps it updates), numeric in
	// reverse postorder consuming lu.x into w.
	lu.topo2 = lu.topo2[:0]
	for _, r := range lu.topo {
		k := lu.kOfRow[r]
		if !lu.mark[k] {
			lu.topo2 = lu.dfsOn(k, lu.ustart, lu.urow, lu.topo2)
		}
	}
	if len(lu.topo2) > thr {
		for _, k := range lu.topo2 {
			lu.mark[k] = false
		}
		lu.ftranDenseU(w)
		lu.ftranDenseEta(w)
		return wIdx[:0], false
	}
	wIdx = wIdx[:0]
	for ti := len(lu.topo2) - 1; ti >= 0; ti-- {
		k := lu.topo2[ti]
		lu.mark[k] = false
		y := lu.x[lu.prow[k]] / lu.udiag[k]
		lu.x[lu.prow[k]] = 0
		if y != 0 {
			for i := lu.ustart[k]; i < lu.ustart[k+1]; i++ {
				lu.x[lu.prow[lu.urow[i]]] -= lu.uval[i] * y
			}
		}
		w[lu.pcol[k]] = y
		wIdx = append(wIdx, lu.pcol[k])
	}

	// Eta stage: forward scan with value skips; the pattern can only grow
	// along eta columns whose pivot position is already nonzero.
	for _, p := range wIdx {
		lu.mark[p] = true
	}
	for e := 0; e < lu.neta; e++ {
		r := lu.epos[e]
		t := w[r]
		if t == 0 {
			continue
		}
		t /= lu.ediag[e]
		w[r] = t
		for i := lu.estart[e]; i < lu.estart[e+1]; i++ {
			rr := lu.erow[i]
			w[rr] -= lu.eval[i] * t
			if !lu.mark[rr] {
				lu.mark[rr] = true
				wIdx = append(wIdx, rr)
			}
		}
	}
	for _, p := range wIdx {
		lu.mark[p] = false
	}
	return wIdx, true
}

// ftranDenseL runs the dense L stage of ftran over lu.x in place.
func (lu *basisLU) ftranDenseL() {
	for k := 0; k < lu.nk; k++ {
		t := lu.x[lu.prow[k]]
		if t != 0 {
			for i := lu.lstart[k]; i < lu.lstart[k+1]; i++ {
				lu.x[lu.lrow[i]] -= lu.lval[i] * t
			}
		}
	}
}

// ftranDenseU runs the dense U stage, consuming lu.x (restoring its
// all-zero invariant) into w.
func (lu *basisLU) ftranDenseU(w []float64) {
	for k := lu.nk - 1; k >= 0; k-- {
		y := lu.x[lu.prow[k]] / lu.udiag[k]
		lu.x[lu.prow[k]] = 0
		if y != 0 {
			for i := lu.ustart[k]; i < lu.ustart[k+1]; i++ {
				lu.x[lu.prow[lu.urow[i]]] -= lu.uval[i] * y
			}
		}
		w[lu.pcol[k]] = y
	}
}

// ftranDenseEta applies the eta file to w in place (dense forward scan).
func (lu *basisLU) ftranDenseEta(w []float64) {
	for e := 0; e < lu.neta; e++ {
		r := lu.epos[e]
		t := w[r] / lu.ediag[e]
		w[r] = t
		if t != 0 {
			for i := lu.estart[e]; i < lu.estart[e+1]; i++ {
				w[lu.erow[i]] -= lu.eval[i] * t
			}
		}
	}
}

// btranUnit solves Bᵀ·y = e_pos for a unit right-hand side on basis
// position pos — the pivot-row solve feeding the PRICE update. y must be
// all-zero on entry and receives the solution in row space; the returned
// list is its pattern appended to yIdx[:0] (possibly including exact
// zeros). A false second return means the solve crossed the density
// threshold and finished densely, leaving y potentially dense. The
// summation order differs from the dense btran (push model vs pull
// model), so results may differ in the last ulp; both orders are
// deterministic.
func (lu *basisLU) btranUnit(pos int32, y []float64, yIdx []int32) ([]int32, bool) {
	thr := lu.hyperThreshold()

	// Eta stage, backward over the file. Position space; pattern collects
	// in lu.topo. An eta participates only when its pivot position is
	// already in the pattern or its support intersects it — the
	// per-position entry chains flag intersecting etas as the pattern
	// grows, so untouched etas cost one flag test instead of a dot
	// product over their fill.
	lu.topo = lu.topo[:0]
	lu.cs[pos] = 1
	lu.mark[pos] = true
	lu.topo = append(lu.topo, pos)
	if lu.neta > 0 {
		lu.ecand = scratch.Zeroed(lu.ecand, lu.neta)
		for i := lu.eHead[pos]; i >= 0; i = lu.eNext[i] {
			lu.ecand[lu.eOf[i]] = true
		}
		for e := lu.neta - 1; e >= 0; e-- {
			r := lu.epos[e]
			if !lu.ecand[e] && !lu.mark[r] {
				continue
			}
			s := lu.cs[r]
			for i := lu.estart[e]; i < lu.estart[e+1]; i++ {
				s -= lu.eval[i] * lu.cs[lu.erow[i]]
			}
			if s == 0 && !lu.mark[r] {
				continue
			}
			lu.cs[r] = s / lu.ediag[e]
			if !lu.mark[r] {
				lu.mark[r] = true
				lu.topo = append(lu.topo, r)
				for i := lu.eHead[r]; i >= 0; i = lu.eNext[i] {
					lu.ecand[lu.eOf[i]] = true
				}
			}
		}
	}
	if len(lu.topo) > thr {
		for _, p := range lu.topo {
			lu.mark[p] = false
		}
		lu.btranDenseFromCs(y)
		return yIdx[:0], false
	}

	// Uᵀ stage: move the position-space pattern into step space and run
	// the reachability DFS over the transposed U adjacency; numeric is a
	// push in topological order (finalize, then push to later steps).
	for _, p := range lu.topo {
		lu.mark[p] = false
	}
	lu.topo2 = lu.topo2[:0]
	for _, p := range lu.topo {
		k := lu.kOfPos[p]
		lu.tks[k] = lu.cs[p]
		lu.cs[p] = 0
		if !lu.mark[k] {
			lu.topo2 = lu.dfsOn(k, lu.utStart, lu.utK, lu.topo2)
		}
	}
	if len(lu.topo2) > thr {
		for _, k := range lu.topo2 {
			lu.mark[k] = false
		}
		lu.btranDenseUTLT(y)
		return yIdx[:0], false
	}
	for ti := len(lu.topo2) - 1; ti >= 0; ti-- {
		k := lu.topo2[ti]
		v := lu.tks[k] / lu.udiag[k]
		lu.tks[k] = v
		if v != 0 {
			for i := lu.utStart[k]; i < lu.utStart[k+1]; i++ {
				lu.tks[lu.utK[i]] -= lu.utV[i] * v
			}
		}
	}

	// Lᵀ stage: same step space, different adjacency — clear the Uᵀ marks
	// and re-run reachability over the transposed L edges, then push in
	// topological order, consuming lu.tks into y.
	for _, k := range lu.topo2 {
		lu.mark[k] = false
	}
	lu.topo = lu.topo[:0]
	for _, k := range lu.topo2 {
		if !lu.mark[k] {
			lu.topo = lu.dfsOn(k, lu.ltStart, lu.ltK, lu.topo)
		}
	}
	if len(lu.topo) > thr {
		for _, k := range lu.topo {
			lu.mark[k] = false
		}
		for k := 0; k < lu.nk; k++ {
			y[lu.prow[k]] = lu.tks[k]
			lu.tks[k] = 0
		}
		lu.btranDenseLT(y)
		return yIdx[:0], false
	}
	yIdx = yIdx[:0]
	for ti := len(lu.topo) - 1; ti >= 0; ti-- {
		k := lu.topo[ti]
		lu.mark[k] = false
		v := lu.tks[k]
		lu.tks[k] = 0
		r := lu.prow[k]
		y[r] = v
		yIdx = append(yIdx, r)
		if v != 0 {
			for i := lu.ltStart[k]; i < lu.ltStart[k+1]; i++ {
				lu.tks[lu.ltK[i]] -= lu.ltV[i] * v
			}
		}
	}
	return yIdx, true
}

// btranDenseFromCs finishes a btranUnit densely from the eta stage:
// consumes lu.cs (restoring its zero invariant) through the dense
// Uᵀ pull loop and the dense Lᵀ loop into y.
func (lu *basisLU) btranDenseFromCs(y []float64) {
	for k := 0; k < lu.nk; k++ {
		p := lu.pcol[k]
		s := lu.cs[p]
		lu.cs[p] = 0
		for i := lu.ustart[k]; i < lu.ustart[k+1]; i++ {
			s -= lu.uval[i] * lu.tk[lu.urow[i]]
		}
		lu.tk[k] = s / lu.udiag[k]
	}
	for k := 0; k < lu.nk; k++ {
		y[lu.prow[k]] = lu.tk[k]
	}
	lu.btranDenseLT(y)
}

// btranDenseUTLT finishes a btranUnit densely from the Uᵀ stage: lu.tks
// holds the sparse-seeded step-space right-hand side (all other entries
// zero); the dense push loop finalizes every step, then the Lᵀ loop runs
// on y. lu.tks is consumed back to all-zero.
func (lu *basisLU) btranDenseUTLT(y []float64) {
	for k := 0; k < lu.nk; k++ {
		v := lu.tks[k] / lu.udiag[k]
		lu.tks[k] = v
		if v != 0 {
			for i := lu.utStart[k]; i < lu.utStart[k+1]; i++ {
				lu.tks[lu.utK[i]] -= lu.utV[i] * v
			}
		}
	}
	for k := 0; k < lu.nk; k++ {
		y[lu.prow[k]] = lu.tks[k]
		lu.tks[k] = 0
	}
	lu.btranDenseLT(y)
}

// btranDenseLT runs the dense Lᵀ stage of btran over y in place.
func (lu *basisLU) btranDenseLT(y []float64) {
	for k := lu.nk - 1; k >= 0; k-- {
		s := y[lu.prow[k]]
		for i := lu.lstart[k]; i < lu.lstart[k+1]; i++ {
			s -= lu.lval[i] * y[lu.lrow[i]]
		}
		y[lu.prow[k]] = s
	}
}

// addEta appends the product-form update for a pivot that replaced basis
// position r with a column whose ftran image is w.
func (lu *basisLU) addEta(w []float64, r int) {
	for i, wi := range w {
		if i != r && wi != 0 {
			lu.eNext = append(lu.eNext, lu.eHead[i])
			lu.eOf = append(lu.eOf, int32(lu.neta))
			lu.eHead[i] = int32(len(lu.erow))
			lu.erow = append(lu.erow, int32(i))
			lu.eval = append(lu.eval, wi)
		}
	}
	lu.estart = append(lu.estart, int32(len(lu.erow)))
	lu.epos = append(lu.epos, int32(r))
	lu.ediag = append(lu.ediag, w[r])
	lu.neta++
}

// addEtaSparse is addEta over an explicit pattern: only the positions in
// wIdx are inspected. Entry order follows the pattern order (a valid
// order for the product form; it differs from addEta's ascending order,
// which only perturbs round-off, deterministically). A nil wIdx defers
// to the dense addEta.
func (lu *basisLU) addEtaSparse(w []float64, wIdx []int32, r int) {
	if wIdx == nil {
		lu.addEta(w, r)
		return
	}
	for _, i := range wIdx {
		if int(i) != r && w[i] != 0 {
			lu.eNext = append(lu.eNext, lu.eHead[i])
			lu.eOf = append(lu.eOf, int32(lu.neta))
			lu.eHead[i] = int32(len(lu.erow))
			lu.erow = append(lu.erow, i)
			lu.eval = append(lu.eval, w[i])
		}
	}
	lu.estart = append(lu.estart, int32(len(lu.erow)))
	lu.epos = append(lu.epos, int32(r))
	lu.ediag = append(lu.ediag, w[r])
	lu.neta++
}

// needsRefactor reports whether the eta file has grown past the cadence
// limits (see maxEtas/etaFillFactor/minEtaFill). The fill bound is
// clamped from below: for tiny bases etaFillFactor·m is a handful of
// entries and the unclamped bound refactorized nearly every pivot.
func (lu *basisLU) needsRefactor() bool {
	fillLimit := etaFillFactor * lu.m
	if fillLimit < minEtaFill {
		fillLimit = minEtaFill
	}
	return lu.neta >= maxEtas || len(lu.eval) > fillLimit
}
