package lp

import "github.com/smartdpss/smartdpss/internal/scratch"

// luPivotTol is the smallest pivot magnitude factorize accepts before
// declaring a column numerically dependent and patching the basis with a
// placeholder unit column (see factorize). It sits well below the ratio
// test's pivotTol so a basis the pivot loop was willing to enter is
// normally factorizable as-is.
const luPivotTol = 1e-10

// Eta-file refactorization cadence: the basis is refactorized from
// scratch after maxEtas product-form updates, or earlier when the eta
// file's fill exceeds etaFillFactor nonzeros per row. Both triggers are
// deterministic functions of the pivot sequence, so solve results do not
// depend on timing or memory pressure.
const (
	maxEtas       = 64
	etaFillFactor = 16
)

// basisLU holds an LU factorization of the simplex basis in product
// form: a sequence of elimination stages L_k (each clearing one pivot
// row) and a permuted upper-triangular factor, plus an eta file of
// rank-one updates appended by pivots since the last refactorization.
// The factorization is computed column-by-column in the style of
// Gilbert–Peierls: a depth-first search over the partially built L graph
// finds the fill pattern of each incoming column, and the numeric
// elimination then touches only that pattern. Columns are processed in
// ascending nonzero count — a cheap, deterministic approximation of
// Markowitz ordering that keeps fill near zero on the staircase bases
// the horizon LPs produce (most columns are singletons or couple two
// adjacent slots).
//
// All storage is flat and reused across factorizations; after the first
// few solves of a fixed-shape problem sequence the type allocates
// nothing.
type basisLU struct {
	m  int
	nk int // elimination steps completed (== m after factorize)

	// L stages in elimination order. Stage k eliminates pivot row
	// prow[k]; its off-pivot multipliers are lrow/lval[lstart[k]:lstart[k+1]].
	lstart []int32
	lrow   []int32
	lval   []float64

	// U columns in elimination order. Column k's off-diagonal entries
	// sit in rows that are pivot rows of earlier stages; urow stores the
	// elimination index of that stage (always < k).
	ustart []int32
	urow   []int32
	uval   []float64
	udiag  []float64

	prow   []int32 // elimination step -> pivot row
	pcol   []int32 // elimination step -> basis position
	kOfRow []int32 // row -> elimination step, -1 while unpivoted

	// Eta file: product-form updates appended by pivots. Eta e replaces
	// basis position epos[e]; ediag[e] is the pivot element of the
	// update column and erow/eval its off-pivot entries (basis
	// positions).
	neta   int
	estart []int32
	erow   []int32
	eval   []float64
	epos   []int32
	ediag  []float64

	// deficient counts the basis positions the last factorize had to
	// patch with placeholder unit columns (numerically dependent basis).
	deficient int

	// scratch, reused across calls
	x     []float64 // dense accumulator, kept all-zero between columns
	mark  []bool    // visited rows of the current column's DFS
	stack []int32   // DFS node stack
	si    []int32   // DFS per-depth child cursor
	topo  []int32   // DFS postorder (reverse = topological)
	order []int32   // positions in factorization order
	cnt   []int32   // counting-sort buckets
	tk    []float64 // btran intermediate, by elimination index
}

// factorize rebuilds the LU factors from the current basis of rs and
// clears the eta file. Numerically dependent columns are replaced in
// rs's basis by placeholder unit columns (fixed at zero), which restores
// nonsingularity without aborting the solve; the caller observes the
// patch through lu.deficient and rs's updated statuses.
func (lu *basisLU) factorize(rs *revised) {
	m := rs.m
	lu.m = m
	lu.nk = 0
	lu.neta = 0
	lu.deficient = 0
	lu.lstart = append(lu.lstart[:0], 0)
	lu.lrow = lu.lrow[:0]
	lu.lval = lu.lval[:0]
	lu.ustart = append(lu.ustart[:0], 0)
	lu.urow = lu.urow[:0]
	lu.uval = lu.uval[:0]
	lu.udiag = scratch.For(lu.udiag, m)
	lu.prow = scratch.For(lu.prow, m)
	lu.pcol = scratch.For(lu.pcol, m)
	lu.kOfRow = scratch.For(lu.kOfRow, m)
	lu.estart = append(lu.estart[:0], 0)
	lu.erow = lu.erow[:0]
	lu.eval = lu.eval[:0]
	lu.epos = lu.epos[:0]
	lu.ediag = lu.ediag[:0]
	for i := range lu.kOfRow {
		lu.kOfRow[i] = -1
	}
	lu.x = scratch.Zeroed(lu.x, m)
	lu.mark = scratch.Zeroed(lu.mark, m)
	lu.stack = scratch.For(lu.stack, m)
	lu.si = scratch.For(lu.si, m)
	lu.topo = lu.topo[:0]
	lu.tk = scratch.For(lu.tk, m)

	lu.sortByColumnNnz(rs)

	for _, pos := range lu.order {
		lu.factorColumn(rs, int(pos))
	}
}

// sortByColumnNnz fills lu.order with the basis positions sorted by
// ascending nonzero count of their columns (stable counting sort, so the
// order is deterministic). Sparsest-first processing is the Markowitz
// approximation: singleton columns become free pivots and the staircase
// coupling columns eliminate against an almost fully pivoted front.
func (lu *basisLU) sortByColumnNnz(rs *revised) {
	m := rs.m
	lu.order = scratch.For(lu.order, m)
	lu.cnt = scratch.Zeroed(lu.cnt, m+2)
	nnzOf := func(pos int) int32 {
		v := rs.basisVar[pos]
		if int(v) >= rs.n { // placeholder unit column
			return 1
		}
		return rs.colStart[v+1] - rs.colStart[v]
	}
	for pos := 0; pos < m; pos++ {
		nz := nnzOf(pos)
		if int(nz) > m {
			nz = int32(m)
		}
		lu.cnt[nz+1]++
	}
	for i := 1; i < len(lu.cnt); i++ {
		lu.cnt[i] += lu.cnt[i-1]
	}
	for pos := 0; pos < m; pos++ {
		nz := nnzOf(pos)
		if int(nz) > m {
			nz = int32(m)
		}
		lu.order[lu.cnt[nz]] = int32(pos)
		lu.cnt[nz]++
	}
}

// factorColumn eliminates one basis column: symbolic DFS for the fill
// pattern, numeric elimination over that pattern in topological order,
// then pivot selection (largest magnitude, ties to the smallest row
// index for determinism).
func (lu *basisLU) factorColumn(rs *revised, pos int) {
	v := int(rs.basisVar[pos])

	// Scatter the column and run the reachability DFS from each nonzero.
	lu.topo = lu.topo[:0]
	if v >= rs.n {
		r := int32(v - rs.n)
		lu.x[r] = 1
		lu.dfs(r)
	} else {
		for i := rs.colStart[v]; i < rs.colStart[v+1]; i++ {
			r := rs.colRow[i]
			lu.x[r] += rs.colVal[i]
			if !lu.mark[r] {
				lu.dfs(r)
			}
		}
	}

	// Numeric elimination: reverse postorder is a topological order of
	// the pivotal stages reached, so each stage sees fully updated input.
	for ti := len(lu.topo) - 1; ti >= 0; ti-- {
		r := lu.topo[ti]
		k := lu.kOfRow[r]
		if k < 0 {
			continue
		}
		t := lu.x[r]
		if t == 0 {
			continue
		}
		for i := lu.lstart[k]; i < lu.lstart[k+1]; i++ {
			lu.x[lu.lrow[i]] -= lu.lval[i] * t
		}
	}

	// Pivot selection among non-pivotal rows of the pattern.
	best := -1.0
	pr := int32(-1)
	for _, r := range lu.topo {
		if lu.kOfRow[r] >= 0 {
			continue
		}
		a := lu.x[r]
		if a < 0 {
			a = -a
		}
		if a > best || (a == best && r < pr) {
			best, pr = a, r
		}
	}

	k := int32(lu.nk)
	if best <= luPivotTol {
		// Numerically dependent column: patch the basis position with a
		// placeholder unit column on the smallest unpivoted row. The
		// placeholder is fixed at zero, so the solve continues on a
		// nearby nonsingular basis; composite phase 1 re-establishes
		// feasibility if the demoted variable was carrying value.
		for _, r := range lu.topo { // clear the failed pattern first
			lu.x[r] = 0
			lu.mark[r] = false
		}
		pr = -1
		for r := 0; r < lu.m; r++ {
			if lu.kOfRow[r] < 0 {
				pr = int32(r)
				break
			}
		}
		rs.demoteToPlaceholder(pos, pr)
		lu.deficient++
		lu.udiag[k] = 1
		lu.prow[k] = pr
		lu.pcol[k] = int32(pos)
		lu.kOfRow[pr] = k
		lu.lstart = append(lu.lstart, int32(len(lu.lrow)))
		lu.ustart = append(lu.ustart, int32(len(lu.urow)))
		lu.nk++
		return
	}

	diag := lu.x[pr]
	for _, r := range lu.topo {
		xv := lu.x[r]
		if k2 := lu.kOfRow[r]; k2 >= 0 {
			if xv != 0 {
				lu.urow = append(lu.urow, k2)
				lu.uval = append(lu.uval, xv)
			}
		} else if r != pr && xv != 0 {
			lu.lrow = append(lu.lrow, r)
			lu.lval = append(lu.lval, xv/diag)
		}
		lu.x[r] = 0
		lu.mark[r] = false
	}
	lu.udiag[k] = diag
	lu.prow[k] = pr
	lu.pcol[k] = int32(pos)
	lu.kOfRow[pr] = k
	lu.lstart = append(lu.lstart, int32(len(lu.lrow)))
	lu.ustart = append(lu.ustart, int32(len(lu.urow)))
	lu.nk++
}

// dfs marks every row reachable from r through already-built L stages
// and appends the visited rows in postorder to lu.topo.
func (lu *basisLU) dfs(r int32) {
	top := 0
	lu.stack[top] = r
	lu.si[top] = 0
	lu.mark[r] = true
	for top >= 0 {
		node := lu.stack[top]
		k := lu.kOfRow[node]
		advanced := false
		if k >= 0 {
			for i := lu.lstart[k] + lu.si[top]; i < lu.lstart[k+1]; i++ {
				child := lu.lrow[i]
				lu.si[top] = i - lu.lstart[k] + 1
				if !lu.mark[child] {
					lu.mark[child] = true
					top++
					lu.stack[top] = child
					lu.si[top] = 0
					advanced = true
					break
				}
			}
		}
		if !advanced {
			lu.topo = append(lu.topo, node)
			top--
		}
	}
}

// ftran solves B·w = a. The input a is a dense row-space vector of
// length m and is consumed as scratch; w (length m, basis-position
// space) receives the result.
func (lu *basisLU) ftran(a, w []float64) {
	for k := 0; k < lu.nk; k++ {
		t := a[lu.prow[k]]
		if t != 0 {
			for i := lu.lstart[k]; i < lu.lstart[k+1]; i++ {
				a[lu.lrow[i]] -= lu.lval[i] * t
			}
		}
	}
	for k := lu.nk - 1; k >= 0; k-- {
		y := a[lu.prow[k]] / lu.udiag[k]
		if y != 0 {
			for i := lu.ustart[k]; i < lu.ustart[k+1]; i++ {
				a[lu.prow[lu.urow[i]]] -= lu.uval[i] * y
			}
		}
		w[lu.pcol[k]] = y
	}
	for e := 0; e < lu.neta; e++ {
		r := lu.epos[e]
		t := w[r] / lu.ediag[e]
		w[r] = t
		if t != 0 {
			for i := lu.estart[e]; i < lu.estart[e+1]; i++ {
				w[lu.erow[i]] -= lu.eval[i] * t
			}
		}
	}
}

// btran solves Bᵀ·y = c. The input c is a basis-position-space vector of
// length m and is consumed as scratch; y (length m, row space) receives
// the result.
func (lu *basisLU) btran(c, y []float64) {
	for e := lu.neta - 1; e >= 0; e-- {
		r := lu.epos[e]
		s := c[r]
		for i := lu.estart[e]; i < lu.estart[e+1]; i++ {
			s -= lu.eval[i] * c[lu.erow[i]]
		}
		c[r] = s / lu.ediag[e]
	}
	for k := 0; k < lu.nk; k++ {
		s := c[lu.pcol[k]]
		for i := lu.ustart[k]; i < lu.ustart[k+1]; i++ {
			s -= lu.uval[i] * lu.tk[lu.urow[i]]
		}
		lu.tk[k] = s / lu.udiag[k]
	}
	for k := 0; k < lu.nk; k++ {
		y[lu.prow[k]] = lu.tk[k]
	}
	for k := lu.nk - 1; k >= 0; k-- {
		s := y[lu.prow[k]]
		for i := lu.lstart[k]; i < lu.lstart[k+1]; i++ {
			s -= lu.lval[i] * y[lu.lrow[i]]
		}
		y[lu.prow[k]] = s
	}
}

// addEta appends the product-form update for a pivot that replaced basis
// position r with a column whose ftran image is w.
func (lu *basisLU) addEta(w []float64, r int) {
	for i, wi := range w {
		if i != r && wi != 0 {
			lu.erow = append(lu.erow, int32(i))
			lu.eval = append(lu.eval, wi)
		}
	}
	lu.estart = append(lu.estart, int32(len(lu.erow)))
	lu.epos = append(lu.epos, int32(r))
	lu.ediag = append(lu.ediag, w[r])
	lu.neta++
}

// needsRefactor reports whether the eta file has grown past the cadence
// limits (see maxEtas/etaFillFactor).
func (lu *basisLU) needsRefactor() bool {
	return lu.neta >= maxEtas || len(lu.eval) > etaFillFactor*lu.m
}
