package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomBoxLP builds a random LP over a bounded box, so it is always
// feasible (the box corner) unless the random rows cut the box away.
type randomBoxLP struct {
	nVars int
	costs []float64
	rows  [][]float64
	rels  []Relation
	rhs   []float64
	lo    []float64
	hi    []float64
}

func genBoxLP(r *rand.Rand) randomBoxLP {
	nVars := 1 + r.Intn(4)
	nCons := r.Intn(5)
	g := randomBoxLP{
		nVars: nVars,
		costs: make([]float64, nVars),
		lo:    make([]float64, nVars),
		hi:    make([]float64, nVars),
	}
	for i := 0; i < nVars; i++ {
		g.costs[i] = math.Round((r.Float64()*10-5)*8) / 8
		g.lo[i] = math.Round((r.Float64()*4-2)*4) / 4
		g.hi[i] = g.lo[i] + math.Round(r.Float64()*5*4)/4
	}
	for c := 0; c < nCons; c++ {
		row := make([]float64, nVars)
		for i := range row {
			row[i] = math.Round((r.Float64()*6-3)*4) / 4
		}
		g.rows = append(g.rows, row)
		g.rels = append(g.rels, []Relation{LE, GE, EQ}[r.Intn(3)])
		g.rhs = append(g.rhs, math.Round((r.Float64()*20-10)*4)/4)
	}
	return g
}

func (g randomBoxLP) build() (*Problem, []VarID) {
	p := NewProblem()
	ids := make([]VarID, g.nVars)
	for i := 0; i < g.nVars; i++ {
		ids[i] = p.AddVariable("", g.lo[i], g.hi[i], g.costs[i])
	}
	for c, row := range g.rows {
		terms := make([]Term, 0, g.nVars)
		for i, coef := range row {
			if coef != 0 {
				terms = append(terms, Term{ids[i], coef})
			}
		}
		p.AddConstraint(g.rels[c], g.rhs[c], terms...)
	}
	return p, ids
}

// feasible reports whether x satisfies all constraints and bounds of g.
func (g randomBoxLP) feasible(x []float64, slack float64) bool {
	for i := 0; i < g.nVars; i++ {
		if x[i] < g.lo[i]-slack || x[i] > g.hi[i]+slack {
			return false
		}
	}
	for c, row := range g.rows {
		dot := 0.0
		for i, coef := range row {
			dot += coef * x[i]
		}
		switch g.rels[c] {
		case LE:
			if dot > g.rhs[c]+slack {
				return false
			}
		case GE:
			if dot < g.rhs[c]-slack {
				return false
			}
		case EQ:
			if math.Abs(dot-g.rhs[c]) > slack {
				return false
			}
		}
	}
	return true
}

func (g randomBoxLP) objective(x []float64) float64 {
	dot := 0.0
	for i, c := range g.costs {
		dot += c * x[i]
	}
	return dot
}

// TestPropertyOptimalSolutionsAreFeasible: any reported optimum must satisfy
// every constraint and bound of the original problem.
func TestPropertyOptimalSolutionsAreFeasible(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	f := func() bool {
		g := genBoxLP(r)
		p, _ := g.build()
		sol, err := p.Minimize()
		if err != nil {
			t.Logf("solver error: %v", err)
			return false
		}
		if sol.Status != Optimal {
			return true // nothing to verify for infeasible/unbounded here
		}
		x := sol.Values()
		if !g.feasible(x, 1e-6) {
			t.Logf("infeasible optimum %v for %+v", x, g)
			return false
		}
		if !almostEqual(g.objective(x), sol.Objective) {
			t.Logf("objective mismatch: reported %g computed %g", sol.Objective, g.objective(x))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyRandomPointsNeverBeatOptimum: random feasible samples of the
// box cannot achieve a lower objective than the reported optimum.
func TestPropertyRandomPointsNeverBeatOptimum(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	f := func() bool {
		g := genBoxLP(r)
		p, _ := g.build()
		sol, err := p.Minimize()
		if err != nil || sol.Status != Optimal {
			return true
		}
		for trial := 0; trial < 200; trial++ {
			x := make([]float64, g.nVars)
			for i := range x {
				x[i] = g.lo[i] + r.Float64()*(g.hi[i]-g.lo[i])
			}
			if g.feasible(x, 0) && g.objective(x) < sol.Objective-1e-6 {
				t.Logf("random point %v beats optimum: %g < %g", x, g.objective(x), sol.Objective)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyInfeasibleMeansNoBoxCorner: when the solver reports
// infeasible, no corner of the variable box may satisfy the constraints.
// (Corners do not cover the whole feasible set, but a feasible corner is a
// definite counterexample.)
func TestPropertyInfeasibleMeansNoBoxCorner(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	f := func() bool {
		g := genBoxLP(r)
		p, _ := g.build()
		sol, err := p.Minimize()
		if err != nil || sol.Status != Infeasible {
			return true
		}
		n := g.nVars
		for mask := 0; mask < 1<<n; mask++ {
			x := make([]float64, n)
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					x[i] = g.hi[i]
				} else {
					x[i] = g.lo[i]
				}
			}
			if g.feasible(x, 1e-9) {
				t.Logf("solver said infeasible but corner %v is feasible for %+v", x, g)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyScalingInvariance: scaling the objective by a positive factor
// scales the optimum accordingly and keeps the argmin feasible set.
func TestPropertyScalingInvariance(t *testing.T) {
	r := rand.New(rand.NewSource(2024))
	f := func() bool {
		g := genBoxLP(r)
		p1, _ := g.build()
		sol1, err1 := p1.Minimize()

		scaled := g
		scaled.costs = make([]float64, len(g.costs))
		const k = 3.5
		for i, c := range g.costs {
			scaled.costs[i] = k * c
		}
		p2, _ := scaled.build()
		sol2, err2 := p2.Minimize()

		if err1 != nil || err2 != nil {
			return err1 != nil && err2 != nil
		}
		if sol1.Status != sol2.Status {
			t.Logf("status changed under scaling: %v vs %v", sol1.Status, sol2.Status)
			return false
		}
		if sol1.Status != Optimal {
			return true
		}
		if !almostEqual(sol2.Objective, k*sol1.Objective) {
			t.Logf("scaled objective %g, want %g", sol2.Objective, k*sol1.Objective)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
