package lp_test

import (
	"fmt"

	"github.com/smartdpss/smartdpss/internal/lp"
)

// ExampleSolver dispatches a 4 MWh demand slot across three power
// sources with the bounded-variable simplex: every capacity limit is a
// variable bound, so the tableau holds a single row — the demand balance
// — instead of one extra row per capped source.
func ExampleSolver() {
	p := lp.NewProblem()
	p.SetBounded(true)

	grid := p.AddVariable("grid", 0, 2.0, 47.0)   // ≤ 2 MWh at 47 $/MWh
	gen := p.AddVariable("gen", 0, 1.5, 38.0)     // ≤ 1.5 MWh at 38 $/MWh
	battery := p.AddVariable("batt", 0, 1.0, 5.0) // ≤ 1 MWh at 5 $/MWh wear
	unserved := p.AddVariable("unserved", 0, 4.0, 1e6)

	// grid + gen + battery + unserved = demand.
	p.AddConstraint(lp.EQ, 4.0,
		lp.Term{Var: grid, Coeff: 1},
		lp.Term{Var: gen, Coeff: 1},
		lp.Term{Var: battery, Coeff: 1},
		lp.Term{Var: unserved, Coeff: 1},
	)

	solver := lp.NewSolver()
	sol, err := solver.Solve(p)
	if err != nil {
		fmt.Println("solve failed:", err)
		return
	}
	fmt.Println("status:", sol.Status)
	fmt.Printf("cost: $%.2f\n", sol.Objective)
	fmt.Printf("grid %.1f + gen %.1f + battery %.1f + unserved %.1f MWh\n",
		sol.Value(grid), sol.Value(gen), sol.Value(battery), sol.Value(unserved))
	// Output:
	// status: optimal
	// cost: $132.50
	// grid 1.5 + gen 1.5 + battery 1.0 + unserved 0.0 MWh
}
