package lp

import "math"

// Variable-recovery kinds used when mapping standard-form values back to the
// caller's variables.
const (
	recShifted = iota + 1 // x = base + y[col]
	recFlipped            // x = base − y[col]
	recSplit              // x = y[col] − y[col2]
	recFixed              // x = base
)

// varRecover describes how to reconstruct one original variable from the
// standard-form solution vector.
type varRecover struct {
	kind int
	col  int
	col2 int
	base float64
}

// sfRow is one constraint row over standard-form columns.
type sfRow struct {
	coeffs []float64
	rel    Relation
	rhs    float64
}

// standardForm is the problem rewritten over non-negative variables.
type standardForm struct {
	ncols   int
	rows    []sfRow
	costs   []float64
	offset  float64 // constant added to the objective by substitutions
	recover []varRecover
}

// toStandardForm rewrites the problem over non-negative variables,
// translating finite bounds into shifts, sign flips, splits and explicit
// upper-bound rows.
func (p *Problem) toStandardForm() *standardForm {
	sf := &standardForm{recover: make([]varRecover, len(p.vars))}

	// Column assignment and per-variable substitution.
	type colSub struct {
		col, col2 int     // standard columns (col2 only for split)
		scale     float64 // contribution of y[col] to x
		base      float64 // constant part of x
	}
	subs := make([]colSub, len(p.vars))
	var upperRows []sfRow // filled after ncols is known

	for i, v := range p.vars {
		switch {
		case v.lower == v.upper:
			sf.recover[i] = varRecover{kind: recFixed, base: v.lower}
			subs[i] = colSub{col: -1, base: v.lower}
		case !math.IsInf(v.lower, -1):
			col := sf.ncols
			sf.ncols++
			sf.recover[i] = varRecover{kind: recShifted, col: col, base: v.lower}
			subs[i] = colSub{col: col, scale: 1, base: v.lower}
			if !math.IsInf(v.upper, 1) {
				upperRows = append(upperRows, sfRow{
					coeffs: []float64{float64(col)}, // placeholder, fixed below
					rel:    LE,
					rhs:    v.upper - v.lower,
				})
			}
		case !math.IsInf(v.upper, 1):
			// lower = -Inf, upper finite: x = upper − y.
			col := sf.ncols
			sf.ncols++
			sf.recover[i] = varRecover{kind: recFlipped, col: col, base: v.upper}
			subs[i] = colSub{col: col, scale: -1, base: v.upper}
		default:
			// Free variable: x = y⁺ − y⁻.
			col := sf.ncols
			col2 := sf.ncols + 1
			sf.ncols += 2
			sf.recover[i] = varRecover{kind: recSplit, col: col, col2: col2}
			subs[i] = colSub{col: col, col2: col2, scale: 1}
		}
	}

	// Objective.
	sf.costs = make([]float64, sf.ncols)
	for i, v := range p.vars {
		s := subs[i]
		sf.offset += v.cost * s.base
		if s.col >= 0 && s.scale != 0 {
			sf.costs[s.col] += v.cost * s.scale
			if sf.recover[i].kind == recSplit {
				sf.costs[s.col2] -= v.cost
			}
		}
	}

	// Constraint rows.
	for _, c := range p.cons {
		row := sfRow{coeffs: make([]float64, sf.ncols), rel: c.rel, rhs: c.rhs}
		for _, t := range c.terms {
			s := subs[t.Var]
			row.rhs -= t.Coeff * s.base
			if s.col < 0 {
				continue
			}
			row.coeffs[s.col] += t.Coeff * s.scale
			if sf.recover[t.Var].kind == recSplit {
				row.coeffs[s.col2] -= t.Coeff
			}
		}
		sf.rows = append(sf.rows, row)
	}

	// Upper-bound rows (the placeholder coeffs hold the column index).
	for _, ur := range upperRows {
		col := int(ur.coeffs[0])
		row := sfRow{coeffs: make([]float64, sf.ncols), rel: LE, rhs: ur.rhs}
		row.coeffs[col] = 1
		sf.rows = append(sf.rows, row)
	}

	return sf
}

// recoverValues maps a standard-form solution vector back to original
// variable values.
func (sf *standardForm) recoverValues(y []float64) []float64 {
	out := make([]float64, len(sf.recover))
	for i, r := range sf.recover {
		switch r.kind {
		case recFixed:
			out[i] = r.base
		case recShifted:
			out[i] = r.base + y[r.col]
		case recFlipped:
			out[i] = r.base - y[r.col]
		case recSplit:
			out[i] = y[r.col] - y[r.col2]
		}
	}
	return out
}
