package lp

import (
	"math"

	"github.com/smartdpss/smartdpss/internal/scratch"
)

// Variable-recovery kinds used when mapping standard-form values back to the
// caller's variables.
const (
	recShifted = iota + 1 // x = base + y[col]
	recFlipped            // x = base − y[col]
	recSplit              // x = y[col] − y[col2]
	recFixed              // x = base
)

// varRecover describes how to reconstruct one original variable from the
// standard-form solution vector.
type varRecover struct {
	kind int
	col  int
	col2 int
	base float64
}

// sfRow is one constraint row over standard-form columns. coeffs is a view
// into the standardForm's shared arena.
type sfRow struct {
	coeffs []float64
	rel    Relation
	rhs    float64
}

// colSub is the per-variable substitution used while building rows.
type colSub struct {
	col, col2 int     // standard columns (col2 only for split)
	scale     float64 // contribution of y[col] to x
	base      float64 // constant part of x
}

// standardForm is the problem rewritten over non-negative variables. All
// slices are owned by the struct and reused across builds (a Solver keeps
// one standardForm alive across solves), so building allocates only when a
// problem outgrows every previous one.
type standardForm struct {
	ncols   int
	rows    []sfRow
	costs   []float64
	upper   []float64 // per-column upper bound; +Inf when none or in row mode
	bounded bool      // bound mode of the problem that built this form
	offset  float64   // constant added to the objective by substitutions
	recover []varRecover

	// Sparse row storage (sparse mode only): row i's entries are
	// rcol/rval[rowStart[i]:rowStart[i+1]] and rows[i].coeffs is nil.
	// The dense arena is never touched, so sparse builds stay linear in
	// the nonzero count rather than rows×cols.
	sparse   bool
	rowStart []int32
	rcol     []int32
	rval     []float64

	// build scratch, reused across calls
	subs  []colSub
	arena []float64 // backing storage for every row's coeffs
	stamp []int32   // sparse dedup: last row (1-based) that touched a column
	spos  []int32   // sparse dedup: entry index of that touch
}

// buildStandardForm rewrites the problem over non-negative variables into
// sf, translating finite bounds into shifts, sign flips and splits. In the
// default row mode a finite upper bound on a shifted variable additionally
// emits one explicit ≤ row; the construction order — and therefore every
// coefficient value — is identical to the historical allocating version,
// so downstream simplex arithmetic is bit-for-bit unchanged. In bounded
// mode (Problem.SetBounded) those rows are not emitted: the bound is
// recorded in sf.upper as a column bound for the bounded-variable pivot
// loop instead.
func (p *Problem) buildStandardForm(sf *standardForm) {
	p.buildStandardFormMode(sf, p.sparse)
}

// buildStandardFormDense forces a dense-row build regardless of the
// problem's sparse flag. The sparse solver uses it to hand a numerically
// troublesome problem to the exact dense tableau path.
func (p *Problem) buildStandardFormDense(sf *standardForm) {
	p.buildStandardFormMode(sf, false)
}

func (p *Problem) buildStandardFormMode(sf *standardForm, sparse bool) {
	nv := len(p.vars)
	if cap(sf.recover) < nv {
		sf.recover = make([]varRecover, nv)
	}
	sf.recover = sf.recover[:nv]
	if cap(sf.subs) < nv {
		sf.subs = make([]colSub, nv)
	}
	sf.subs = sf.subs[:nv]
	sf.ncols = 0
	sf.offset = 0
	sf.bounded = p.bounded
	sf.sparse = sparse

	// Column assignment and per-variable substitution. In row mode,
	// upper-bounded shifted variables contribute one extra ≤ row each,
	// appended after the caller's constraints in variable order; in
	// bounded mode they contribute a column bound instead.
	nupper := 0
	for i, v := range p.vars {
		switch {
		case v.lower == v.upper:
			sf.recover[i] = varRecover{kind: recFixed, base: v.lower}
			sf.subs[i] = colSub{col: -1, base: v.lower}
		case !math.IsInf(v.lower, -1):
			col := sf.ncols
			sf.ncols++
			sf.recover[i] = varRecover{kind: recShifted, col: col, base: v.lower}
			sf.subs[i] = colSub{col: col, scale: 1, base: v.lower}
			if !math.IsInf(v.upper, 1) && !p.bounded {
				nupper++
			}
		case !math.IsInf(v.upper, 1):
			// lower = -Inf, upper finite: x = upper − y.
			col := sf.ncols
			sf.ncols++
			sf.recover[i] = varRecover{kind: recFlipped, col: col, base: v.upper}
			sf.subs[i] = colSub{col: col, scale: -1, base: v.upper}
		default:
			// Free variable: x = y⁺ − y⁻.
			col := sf.ncols
			col2 := sf.ncols + 1
			sf.ncols += 2
			sf.recover[i] = varRecover{kind: recSplit, col: col, col2: col2}
			sf.subs[i] = colSub{col: col, col2: col2, scale: 1}
		}
	}

	// Column bounds (bounded mode only; all +Inf otherwise).
	sf.upper = scratch.For(sf.upper, sf.ncols)
	for j := range sf.upper {
		sf.upper[j] = math.Inf(1)
	}
	if p.bounded {
		for i, v := range p.vars {
			if r := sf.recover[i]; r.kind == recShifted && !math.IsInf(v.upper, 1) {
				sf.upper[r.col] = v.upper - v.lower
			}
		}
	}

	// Objective.
	sf.costs = scratch.Zeroed(sf.costs, sf.ncols)
	for i, v := range p.vars {
		s := sf.subs[i]
		sf.offset += v.cost * s.base
		if s.col >= 0 && s.scale != 0 {
			sf.costs[s.col] += v.cost * s.scale
			if sf.recover[i].kind == recSplit {
				sf.costs[s.col2] -= v.cost
			}
		}
	}

	nrows := len(p.cons) + nupper
	if cap(sf.rows) < nrows {
		sf.rows = make([]sfRow, nrows)
	}
	sf.rows = sf.rows[:nrows]
	if sparse {
		p.buildSparseRows(sf)
		return
	}

	// Row storage: one arena slab per build, sliced per row.
	sf.arena = scratch.Zeroed(sf.arena, nrows*sf.ncols)
	rowCoeffs := func(i int) []float64 {
		return sf.arena[i*sf.ncols : (i+1)*sf.ncols : (i+1)*sf.ncols]
	}

	// Constraint rows.
	for ci, c := range p.cons {
		row := sfRow{coeffs: rowCoeffs(ci), rel: c.rel, rhs: c.rhs}
		for _, t := range c.terms {
			s := sf.subs[t.Var]
			row.rhs -= t.Coeff * s.base
			if s.col < 0 {
				continue
			}
			row.coeffs[s.col] += t.Coeff * s.scale
			if sf.recover[t.Var].kind == recSplit {
				row.coeffs[s.col2] -= t.Coeff
			}
		}
		sf.rows[ci] = row
	}

	// Upper-bound rows, in variable order (row mode only: bounded mode
	// carries these limits in sf.upper).
	if !p.bounded {
		ui := len(p.cons)
		for i, v := range p.vars {
			r := sf.recover[i]
			if r.kind != recShifted || math.IsInf(v.upper, 1) {
				continue
			}
			row := sfRow{coeffs: rowCoeffs(ui), rel: LE, rhs: v.upper - v.lower}
			row.coeffs[r.col] = 1
			sf.rows[ui] = row
			ui++
		}
	}
}

// buildSparseRows fills the compressed sparse row storage. Entry order
// within a row is first-occurrence order of the columns; duplicate terms
// are summed in place via the stamp/spos dedup scratch (a term pair that
// cancels exactly leaves an explicit zero, which the revised simplex
// treats like any other value). Relations and right-hand sides still live
// in sf.rows; only the coefficient storage differs from the dense build.
func (p *Problem) buildSparseRows(sf *standardForm) {
	nrows := len(sf.rows)
	sf.rowStart = scratch.For(sf.rowStart, nrows+1)
	sf.rcol = sf.rcol[:0]
	sf.rval = sf.rval[:0]
	sf.stamp = scratch.Zeroed(sf.stamp, sf.ncols)
	sf.spos = scratch.For(sf.spos, sf.ncols)

	ri := int32(1) // 1-based row stamp; 0 means "never touched"
	add := func(col int, v float64) {
		if sf.stamp[col] == ri {
			sf.rval[sf.spos[col]] += v
			return
		}
		sf.stamp[col] = ri
		sf.spos[col] = int32(len(sf.rval))
		sf.rcol = append(sf.rcol, int32(col))
		sf.rval = append(sf.rval, v)
	}

	for ci, c := range p.cons {
		sf.rowStart[ci] = int32(len(sf.rcol))
		rhs := c.rhs
		for _, t := range c.terms {
			s := sf.subs[t.Var]
			rhs -= t.Coeff * s.base
			if s.col < 0 {
				continue
			}
			add(s.col, t.Coeff*s.scale)
			if sf.recover[t.Var].kind == recSplit {
				add(s.col2, -t.Coeff)
			}
		}
		sf.rows[ci] = sfRow{rel: c.rel, rhs: rhs}
		ri++
	}

	// Upper-bound rows, in variable order (row mode only — bounded mode
	// carries these limits in sf.upper). Same order as the dense build.
	if !p.bounded {
		ui := len(p.cons)
		for i, v := range p.vars {
			r := sf.recover[i]
			if r.kind != recShifted || math.IsInf(v.upper, 1) {
				continue
			}
			sf.rowStart[ui] = int32(len(sf.rcol))
			sf.rcol = append(sf.rcol, int32(r.col))
			sf.rval = append(sf.rval, 1)
			sf.rows[ui] = sfRow{rel: LE, rhs: v.upper - v.lower}
			ui++
		}
	}
	sf.rowStart[nrows] = int32(len(sf.rcol))
}

// recoverValuesInto maps a standard-form solution vector back to original
// variable values, writing into out (which must have len(sf.recover)).
func (sf *standardForm) recoverValuesInto(y, out []float64) {
	for i, r := range sf.recover {
		switch r.kind {
		case recFixed:
			out[i] = r.base
		case recShifted:
			out[i] = r.base + y[r.col]
		case recFlipped:
			out[i] = r.base - y[r.col]
		case recSplit:
			out[i] = y[r.col] - y[r.col2]
		}
	}
}
