package lp

import (
	"math"
	"testing"
)

// TestBealeCyclingExample solves Beale's classic degenerate LP, on which
// textbook simplex with Dantzig's rule cycles forever without an
// anti-cycling safeguard:
//
//	min  -0.75x4 + 150x5 - 0.02x6 + 6x7
//	s.t. 0.25x4 - 60x5 - 0.04x6 + 9x7 <= 0
//	     0.50x4 - 90x5 - 0.02x6 + 3x7 <= 0
//	     x6 <= 1,  x >= 0
//
// The optimum is -0.05 at x6 = 1. The solver's stall-triggered switch to
// Bland's rule must terminate here.
func TestBealeCyclingExample(t *testing.T) {
	p := NewProblem()
	x4 := p.AddVariable("x4", 0, math.Inf(1), -0.75)
	x5 := p.AddVariable("x5", 0, math.Inf(1), 150)
	x6 := p.AddVariable("x6", 0, math.Inf(1), -0.02)
	x7 := p.AddVariable("x7", 0, math.Inf(1), 6)
	p.AddConstraint(LE, 0, Term{x4, 0.25}, Term{x5, -60}, Term{x6, -0.04}, Term{x7, 9})
	p.AddConstraint(LE, 0, Term{x4, 0.5}, Term{x5, -90}, Term{x6, -0.02}, Term{x7, 3})
	p.AddConstraint(LE, 1, Term{x6, 1})

	sol, err := p.Minimize()
	if err != nil {
		t.Fatalf("Beale example failed to terminate: %v", err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	if math.Abs(sol.Objective-(-0.05)) > 1e-9 {
		t.Errorf("objective = %g, want -0.05", sol.Objective)
	}
	if math.Abs(sol.Value(x6)-1) > 1e-9 {
		t.Errorf("x6 = %g, want 1", sol.Value(x6))
	}
}

// TestKleeMintyCube solves the 3-dimensional Klee–Minty cube, the
// worst-case exponential path for Dantzig's rule; correctness (not speed)
// is what matters here.
func TestKleeMintyCube(t *testing.T) {
	// max 100x1 + 10x2 + x3  ≡  min -(100x1 + 10x2 + x3)
	// s.t. x1 <= 1; 20x1 + x2 <= 100; 200x1 + 20x2 + x3 <= 10000.
	p := NewProblem()
	x1 := p.AddVariable("x1", 0, math.Inf(1), -100)
	x2 := p.AddVariable("x2", 0, math.Inf(1), -10)
	x3 := p.AddVariable("x3", 0, math.Inf(1), -1)
	p.AddConstraint(LE, 1, Term{x1, 1})
	p.AddConstraint(LE, 100, Term{x1, 20}, Term{x2, 1})
	p.AddConstraint(LE, 10000, Term{x1, 200}, Term{x2, 20}, Term{x3, 1})

	sol, err := p.Minimize()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.Objective-(-10000)) > 1e-6 {
		t.Errorf("objective = %g, want -10000", sol.Objective)
	}
}
