package lp

import (
	"math"

	"github.com/smartdpss/smartdpss/internal/scratch"
)

// Column statuses of the revised simplex. Unlike the dense tableau's
// complement reflection (which rewrites the column in place), a column at
// its upper bound keeps its matrix data and is tracked by status alone;
// its contribution moves into the effective right-hand side.
const (
	nbLower uint8 = iota // nonbasic at lower bound (0)
	nbUpper              // nonbasic at finite upper bound
	inBasis
)

// revised is the working state of the sparse revised simplex: the
// constraint matrix in compressed sparse column form over structural and
// slack columns, the LU-factorized basis, and the bounded-variable
// bookkeeping. Column ids n..n+m-1 are placeholder unit columns fixed at
// [0,0] — they cover rows the crash basis leaves uncovered and absorb
// numerically dependent basis positions, playing the role the dense
// path's artificial variables play, but under the composite phase-1
// objective they need no artificial costs and are simply never priced.
//
// All slices are owned by the struct and reused across solves.
type revised struct {
	m, n    int // rows; priced columns (structural + slack)
	nstruct int

	colStart []int32
	colRow   []int32
	colVal   []float64
	cost     []float64
	ub       []float64

	rhs  []float64 // right-hand sides as built
	beff []float64 // effective rhs: rhs − Σ_{j at upper} ub_j·A_j

	status   []uint8
	basisVar []int32 // basis position -> column id
	posOf    []int32 // column id -> basis position, -1 when nonbasic

	xB []float64 // basic values, by position
	lu basisLU

	rotor int // partial-pricing segment cursor

	// solve scratch
	acol []float64 // dense row-space ftran input
	w    []float64 // ftran output (basis-position space)
	y    []float64 // btran output (row space)
	cB   []float64 // btran input (basis-position space)

	// crash scratch
	covered []bool
	colCnt  []int32
	colMax  []float64
	queue   []int32
	slackOf []int32
	cur     []int32
}

// build assembles the revised-simplex state from a sparse standard form.
func (rs *revised) build(sf *standardForm) {
	m := len(sf.rows)
	nstruct := sf.ncols
	nslack := 0
	for _, row := range sf.rows {
		if row.rel != EQ {
			nslack++
		}
	}
	n := nstruct + nslack
	rs.m, rs.n, rs.nstruct = m, n, nstruct

	// CSC assembly: structural entries from the standard form's sparse
	// rows, one ±1 slack/surplus column per inequality row, assigned in
	// row order. Row indices within a column come out ascending.
	rs.colStart = scratch.Zeroed(rs.colStart, n+1)
	for _, c := range sf.rcol {
		rs.colStart[c+1]++
	}
	rs.slackOf = scratch.For(rs.slackOf, m)
	sid := int32(nstruct)
	for i, row := range sf.rows {
		if row.rel == EQ {
			rs.slackOf[i] = -1
		} else {
			rs.slackOf[i] = sid
			rs.colStart[sid+1]++
			sid++
		}
	}
	for j := 1; j <= n; j++ {
		rs.colStart[j] += rs.colStart[j-1]
	}
	nnz := int(rs.colStart[n])
	rs.colRow = scratch.For(rs.colRow, nnz)
	rs.colVal = scratch.For(rs.colVal, nnz)
	rs.cur = scratch.For(rs.cur, n)
	copy(rs.cur, rs.colStart[:n])
	for i := 0; i < m; i++ {
		for e := sf.rowStart[i]; e < sf.rowStart[i+1]; e++ {
			c := sf.rcol[e]
			rs.colRow[rs.cur[c]] = int32(i)
			rs.colVal[rs.cur[c]] = sf.rval[e]
			rs.cur[c]++
		}
		if s := rs.slackOf[i]; s >= 0 {
			v := 1.0
			if sf.rows[i].rel == GE {
				v = -1
			}
			rs.colRow[rs.cur[s]] = int32(i)
			rs.colVal[rs.cur[s]] = v
			rs.cur[s]++
		}
	}

	rs.cost = scratch.Zeroed(rs.cost, n)
	copy(rs.cost[:nstruct], sf.costs)
	rs.ub = scratch.For(rs.ub, n)
	copy(rs.ub[:nstruct], sf.upper)
	for j := nstruct; j < n; j++ {
		rs.ub[j] = math.Inf(1)
	}

	rs.rhs = scratch.For(rs.rhs, m)
	for i, row := range sf.rows {
		rs.rhs[i] = row.rhs
	}
	rs.beff = scratch.For(rs.beff, m)
	copy(rs.beff, rs.rhs)

	rs.status = scratch.Zeroed(rs.status, n+m) // nbLower everywhere
	rs.posOf = scratch.For(rs.posOf, n+m)
	for j := range rs.posOf {
		rs.posOf[j] = -1
	}
	rs.basisVar = scratch.For(rs.basisVar, m)
	rs.xB = scratch.For(rs.xB, m)
	rs.acol = scratch.For(rs.acol, m)
	rs.w = scratch.For(rs.w, m)
	rs.y = scratch.For(rs.y, m)
	rs.cB = scratch.For(rs.cB, m)
	rs.rotor = 0
}

// crash builds a triangular starting basis by repeatedly picking columns
// with exactly one uncovered row (slack columns qualify immediately, and
// the staircase state columns of the horizon LPs cascade from there), so
// most equality rows start with a structural pivot instead of a
// placeholder. Pivots below a tenth of the column's largest entry are
// rejected for stability. The FIFO processing order is deterministic.
func (rs *revised) crash(sf *standardForm) {
	m, n := rs.m, rs.n
	rs.covered = scratch.Zeroed(rs.covered, m)
	rs.colCnt = scratch.For(rs.colCnt, n)
	rs.colMax = scratch.For(rs.colMax, n)
	for j := 0; j < n; j++ {
		rs.colCnt[j] = rs.colStart[j+1] - rs.colStart[j]
		cm := 0.0
		for i := rs.colStart[j]; i < rs.colStart[j+1]; i++ {
			if a := math.Abs(rs.colVal[i]); a > cm {
				cm = a
			}
		}
		rs.colMax[j] = cm
	}
	rs.queue = rs.queue[:0]
	for j := 0; j < n; j++ {
		if rs.colCnt[j] == 1 {
			rs.queue = append(rs.queue, int32(j))
		}
	}
	for qi := 0; qi < len(rs.queue); qi++ {
		j := rs.queue[qi]
		if rs.posOf[j] >= 0 || rs.colCnt[j] != 1 {
			continue
		}
		r := int32(-1)
		a := 0.0
		for i := rs.colStart[j]; i < rs.colStart[j+1]; i++ {
			if !rs.covered[rs.colRow[i]] {
				r, a = rs.colRow[i], rs.colVal[i]
				break
			}
		}
		if r < 0 || math.Abs(a) < 0.1*rs.colMax[j] {
			continue
		}
		rs.basisVar[r] = j
		rs.status[j] = inBasis
		rs.posOf[j] = r
		rs.covered[r] = true
		for e := sf.rowStart[r]; e < sf.rowStart[r+1]; e++ {
			c := sf.rcol[e]
			rs.colCnt[c]--
			if rs.colCnt[c] == 1 && rs.posOf[c] < 0 {
				rs.queue = append(rs.queue, c)
			}
		}
		if s := rs.slackOf[r]; s >= 0 && s != j {
			rs.colCnt[s]--
		}
	}
	for r := 0; r < m; r++ {
		if !rs.covered[r] {
			nv := int32(n + r)
			rs.basisVar[r] = nv
			rs.status[nv] = inBasis
			rs.posOf[nv] = int32(r)
		}
	}
}

// demoteToPlaceholder swaps the variable basic at pos out for the
// placeholder unit column of row r. Called by factorize when the basis
// proves numerically dependent; the demoted variable is parked at its
// lower bound, so the effective rhs is unchanged.
func (rs *revised) demoteToPlaceholder(pos int, r int32) {
	old := rs.basisVar[pos]
	rs.status[old] = nbLower
	rs.posOf[old] = -1
	nv := int32(rs.n) + r
	rs.basisVar[pos] = nv
	rs.status[nv] = inBasis
	rs.posOf[nv] = int32(pos)
}

// ubOf returns the upper bound of a column id, counting placeholders as
// fixed at zero.
func (rs *revised) ubOf(v int32) float64 {
	if int(v) >= rs.n {
		return 0
	}
	return rs.ub[v]
}

// colDot computes yᵀA_j over the sparse column.
func (rs *revised) colDot(j int) float64 {
	s := 0.0
	for i := rs.colStart[j]; i < rs.colStart[j+1]; i++ {
		s += rs.y[rs.colRow[i]] * rs.colVal[i]
	}
	return s
}

// addColTimes adds s·A_v into the dense row-space vector dst.
func (rs *revised) addColTimes(v int32, s float64, dst []float64) {
	if int(v) >= rs.n {
		dst[int(v)-rs.n] += s
		return
	}
	for i := rs.colStart[v]; i < rs.colStart[v+1]; i++ {
		dst[rs.colRow[i]] += s * rs.colVal[i]
	}
}

// infeasibility reports the number of basic variables outside their
// bounds by more than feasTol and the summed violation.
func (rs *revised) infeasibility() (int, float64) {
	ninf := 0
	f := 0.0
	for i, x := range rs.xB {
		ubv := rs.ubOf(rs.basisVar[i])
		if x < -feasTol {
			ninf++
			f -= x
		} else if x > ubv+feasTol {
			ninf++
			f += x - ubv
		}
	}
	return ninf, f
}

// refreshXB recomputes the basic values from the effective rhs through
// the current factorization, and reports whether they are all finite.
func (rs *revised) refreshXB() bool {
	copy(rs.acol, rs.beff)
	rs.lu.ftran(rs.acol, rs.xB)
	for _, x := range rs.xB {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

// priceEnter selects the entering column. In the normal mode it scans
// rotating fixed-size segments of the column range and takes the largest
// reduced cost of the first segment holding any eligible column; in
// Bland mode (anti-cycling) it takes the lowest-numbered eligible
// column. Both are deterministic. The returned d is the reduced cost
// (negative for an at-lower entry, positive for at-upper); q is -1 when
// no column is eligible.
func (rs *revised) priceEnter(phase1, bland bool) (int, float64) {
	eligible := func(j int) (float64, bool) {
		st := rs.status[j]
		if st == inBasis || rs.ub[j] == 0 {
			return 0, false
		}
		d := -rs.colDot(j)
		if !phase1 {
			d += rs.cost[j]
		}
		if st == nbLower {
			if d < -costTol {
				return d, true
			}
		} else if d > costTol {
			return d, true
		}
		return 0, false
	}
	if bland {
		for j := 0; j < rs.n; j++ {
			if d, ok := eligible(j); ok {
				return j, d
			}
		}
		return -1, 0
	}
	seg := rs.n / 8
	if seg < 256 {
		seg = 256
	}
	nseg := (rs.n + seg - 1) / seg
	if nseg == 0 {
		nseg = 1
	}
	for s := 0; s < nseg; s++ {
		si := (rs.rotor + s) % nseg
		lo := si * seg
		hi := lo + seg
		if hi > rs.n {
			hi = rs.n
		}
		bestJ, bestD, bestA := -1, 0.0, 0.0
		for j := lo; j < hi; j++ {
			if d, ok := eligible(j); ok {
				if a := math.Abs(d); a > bestA {
					bestJ, bestD, bestA = j, d, a
				}
			}
		}
		if bestJ >= 0 {
			rs.rotor = si
			return bestJ, bestD
		}
	}
	return -1, 0
}

// ratioTest finds how far the entering column q can move in direction
// dir (+1 from lower, −1 from upper) before a basic variable hits a
// bound. In phase 1 it is the conservative first-breakpoint rule:
// feasible basics block at their nearer bound, infeasible basics block
// on reaching their violated bound (where the composite objective's
// slope changes). Ties within 1e-12 resolve to the smallest leaving
// column id, mirroring the dense tableau. When the entering variable's
// own upper bound binds first the move is a bound flip (r < 0,
// flip true); θ = +Inf means no breakpoint at all.
func (rs *revised) ratioTest(q int, dir float64, phase1 bool) (theta float64, r int, leaveAt uint8, flip bool) {
	best := math.Inf(1)
	r = -1
	bestVar := int32(math.MaxInt32)
	for i := 0; i < rs.m; i++ {
		wi := rs.w[i]
		if wi < pivotTol && wi > -pivotTol {
			continue
		}
		delta := -dir * wi
		v := rs.basisVar[i]
		x := rs.xB[i]
		ubv := rs.ubOf(v)
		var t float64
		var at uint8
		switch {
		case phase1 && x < -feasTol:
			if delta <= 0 {
				continue
			}
			t = -x / delta
			at = nbLower
		case phase1 && x > ubv+feasTol:
			if delta >= 0 {
				continue
			}
			t = (x - ubv) / -delta
			at = nbUpper
		case delta < 0:
			t = x / -delta
			if t < 0 {
				t = 0
			}
			at = nbLower
		default:
			if math.IsInf(ubv, 1) {
				continue
			}
			t = (ubv - x) / delta
			if t < 0 {
				t = 0
			}
			at = nbUpper
		}
		if t < best-1e-12 || (t <= best+1e-12 && v < bestVar) {
			best, r, leaveAt, bestVar = t, i, at, v
		}
	}
	if ubq := rs.ub[q]; !math.IsInf(ubq, 1) && ubq < best-1e-12 {
		return ubq, -1, 0, true
	}
	return best, r, leaveAt, false
}

// applyFlip moves the entering column to its opposite bound without a
// basis change, updating the basic values and the effective rhs.
func (rs *revised) applyFlip(q int, dir float64) {
	ubq := rs.ub[q]
	for i, wi := range rs.w {
		rs.xB[i] -= dir * ubq * wi
	}
	if dir > 0 {
		rs.status[q] = nbUpper
		rs.addColTimes(int32(q), -ubq, rs.beff)
	} else {
		rs.status[q] = nbLower
		rs.addColTimes(int32(q), ubq, rs.beff)
	}
}

// applyPivot executes the basis change: basic values move by θ along the
// direction, the leaving variable settles at leaveAt, the entering
// column takes position r, and the update is appended to the eta file.
func (rs *revised) applyPivot(q int, dir float64, r int, theta float64, leaveAt uint8) {
	if theta != 0 {
		for i, wi := range rs.w {
			rs.xB[i] -= dir * theta * wi
		}
	}
	v := rs.basisVar[r]
	rs.status[v] = leaveAt
	rs.posOf[v] = -1
	if leaveAt == nbUpper {
		if ubv := rs.ubOf(v); ubv != 0 {
			rs.addColTimes(v, -ubv, rs.beff)
		}
	}
	enterX := theta
	if rs.status[q] == nbUpper {
		enterX = rs.ub[q] - theta
		rs.addColTimes(int32(q), rs.ub[q], rs.beff)
	}
	rs.status[q] = inBasis
	rs.posOf[q] = int32(r)
	rs.basisVar[r] = int32(q)
	rs.xB[r] = enterX
	rs.lu.addEta(rs.w, r)
}

// runSparse drives the revised simplex over the sparse standard form in
// s.sf. The second return value reports whether the sparse path produced
// a trustworthy answer; false means the caller must rebuild the standard
// form dense and re-solve on the exact tableau path (numerical trouble,
// or an iteration budget the dense anti-cycling machinery should
// adjudicate).
func (s *Solver) runSparse(p *Problem) (Solution, bool) {
	sf := &s.sf
	rs := &s.rev
	rs.build(sf)
	rs.crash(sf)
	rs.lu.factorize(rs)
	if !rs.refreshXB() {
		return Solution{}, false
	}

	maxIter := p.maxIter
	if maxIter <= 0 {
		maxIter = 200 + 60*(rs.m+rs.n)
	}

	pivots := 0
	stall := 0
	for {
		if pivots >= maxIter || stall > 8*stallWin {
			return Solution{}, false
		}
		if rs.lu.needsRefactor() {
			rs.lu.factorize(rs)
			if !rs.refreshXB() {
				return Solution{}, false
			}
		}
		ninf, f := rs.infeasibility()
		phase1 := ninf > 0
		for i := 0; i < rs.m; i++ {
			if phase1 {
				x := rs.xB[i]
				switch {
				case x < -feasTol:
					rs.cB[i] = -1
				case x > rs.ubOf(rs.basisVar[i])+feasTol:
					rs.cB[i] = 1
				default:
					rs.cB[i] = 0
				}
			} else {
				v := rs.basisVar[i]
				if int(v) < rs.n {
					rs.cB[i] = rs.cost[v]
				} else {
					rs.cB[i] = 0
				}
			}
		}
		rs.lu.btran(rs.cB, rs.y)
		q, d := rs.priceEnter(phase1, stall >= stallWin)
		if q < 0 {
			if phase1 && f > feasTol {
				return Solution{Status: Infeasible, Iterations: pivots}, true
			}
			break // optimal
		}
		dir := 1.0
		if rs.status[q] == nbUpper {
			dir = -1
		}
		for i := range rs.acol {
			rs.acol[i] = 0
		}
		rs.addColTimes(int32(q), 1, rs.acol)
		rs.lu.ftran(rs.acol, rs.w)
		theta, r, leaveAt, flip := rs.ratioTest(q, dir, phase1)
		if math.IsInf(theta, 1) {
			if phase1 {
				// The composite objective is bounded below by zero, so a
				// breakpoint always exists in exact arithmetic.
				return Solution{}, false
			}
			return Solution{Status: Unbounded, Iterations: pivots}, true
		}
		progress := theta
		if flip {
			progress = rs.ub[q]
			rs.applyFlip(q, dir)
		} else {
			rs.applyPivot(q, dir, r, theta, leaveAt)
		}
		if progress*math.Abs(d) > improveE {
			stall = 0
		} else {
			stall++
		}
		pivots++
	}

	// Optimal: recover the standard-form vector and the exact objective.
	s.y = scratch.Zeroed(s.y, sf.ncols)
	obj := sf.offset
	for j := 0; j < rs.nstruct; j++ {
		switch rs.status[j] {
		case nbUpper:
			s.y[j] = rs.ub[j]
		case inBasis:
			s.y[j] = rs.xB[rs.posOf[j]]
		}
		obj += sf.costs[j] * s.y[j]
	}
	s.vals = scratch.Zeroed(s.vals, len(sf.recover))
	sf.recoverValuesInto(s.y, s.vals)
	return Solution{
		Status:     Optimal,
		Objective:  obj,
		Iterations: pivots,
		values:     s.vals,
	}, true
}
