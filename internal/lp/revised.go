package lp

import (
	"math"

	"github.com/smartdpss/smartdpss/internal/scratch"
)

// ratioTieTol is the relative tie window of the sparse ratio test; see
// ratioTest. The dense tableau keeps its historical absolute 1e-12
// window (its pivot sequences are byte-pinned by the golden suite).
const ratioTieTol = 1e-12

// Column statuses of the revised simplex. Unlike the dense tableau's
// complement reflection (which rewrites the column in place), a column at
// its upper bound keeps its matrix data and is tracked by status alone;
// its contribution moves into the effective right-hand side.
const (
	nbLower uint8 = iota // nonbasic at lower bound (0)
	nbUpper              // nonbasic at finite upper bound
	inBasis
)

// revised is the working state of the sparse revised simplex: the
// constraint matrix in compressed sparse column form over structural and
// slack columns, the LU-factorized basis, and the bounded-variable
// bookkeeping. Column ids n..n+m-1 are placeholder unit columns fixed at
// [0,0] — they cover rows the crash basis leaves uncovered and absorb
// numerically dependent basis positions, playing the role the dense
// path's artificial variables play, but under the composite phase-1
// objective they need no artificial costs and are simply never priced.
//
// All slices are owned by the struct and reused across solves.
type revised struct {
	m, n    int // rows; priced columns (structural + slack)
	nstruct int

	colStart []int32
	colRow   []int32
	colVal   []float64
	cost     []float64
	ub       []float64

	rhs  []float64 // right-hand sides as built
	beff []float64 // effective rhs: rhs − Σ_{j at upper} ub_j·A_j

	status   []uint8
	basisVar []int32 // basis position -> column id
	posOf    []int32 // column id -> basis position, -1 when nonbasic

	xB []float64 // basic values, by position
	lu basisLU

	sf *standardForm // build source; pivot-row pricing reads its row-major storage

	rotor int // partial-pricing segment cursor

	// Incrementally maintained pivot-loop state (see pricing.go): the
	// reduced costs and devex weights of every priced column, and the
	// feasibility signs of every basis position. All of it is rebuilt by
	// build/rescan, so nothing leaks across solves.
	d        []float64 // reduced costs, updated from each pivot row
	gamma    []float64 // devex reference weights
	gammaMax float64   // largest weight since the last framework reset
	dPhase1  bool      // phase the maintained duals price
	dStale   bool      // duals need a recompute before the next pricing
	sgn      []int8    // per position: -1 below lower, +1 above upper, 0 feasible
	ninf     int       // infeasible basis positions, tracked incrementally

	// solve scratch
	acol      []float64 // dense row-space ftran input
	w         []float64 // ftran output (basis-position space), zero between pivots
	wIdx      []int32   // pattern of w when wSparse
	wSparse   bool
	y         []float64 // btran output (row space)
	cB        []float64 // btran input (basis-position space)
	rho       []float64 // btranUnit output (row space), zero between pivots
	rhoIdx    []int32   // pattern of rho when rhoSparse
	rhoSparse bool
	alpha     []float64 // pivot row by priced column, zero between pivots
	alphaIdx  []int32   // pattern of alpha
	amark     []bool    // scatter marks for alpha
	slackSign []float64 // per row: ±1 slack coefficient, 0 on EQ rows

	// crash scratch
	covered []bool
	colCnt  []int32
	colMax  []float64
	queue   []int32
	slackOf []int32
	cur     []int32
}

// build assembles the revised-simplex state from a sparse standard form.
func (rs *revised) build(sf *standardForm) {
	m := len(sf.rows)
	nstruct := sf.ncols
	nslack := 0
	for _, row := range sf.rows {
		if row.rel != EQ {
			nslack++
		}
	}
	n := nstruct + nslack
	rs.m, rs.n, rs.nstruct = m, n, nstruct

	// CSC assembly: structural entries from the standard form's sparse
	// rows, one ±1 slack/surplus column per inequality row, assigned in
	// row order. Row indices within a column come out ascending.
	rs.colStart = scratch.Zeroed(rs.colStart, n+1)
	for _, c := range sf.rcol {
		rs.colStart[c+1]++
	}
	rs.sf = sf
	rs.slackOf = scratch.For(rs.slackOf, m)
	rs.slackSign = scratch.Zeroed(rs.slackSign, m)
	sid := int32(nstruct)
	for i, row := range sf.rows {
		if row.rel == EQ {
			rs.slackOf[i] = -1
		} else {
			rs.slackOf[i] = sid
			rs.colStart[sid+1]++
			sid++
		}
	}
	for j := 1; j <= n; j++ {
		rs.colStart[j] += rs.colStart[j-1]
	}
	nnz := int(rs.colStart[n])
	rs.colRow = scratch.For(rs.colRow, nnz)
	rs.colVal = scratch.For(rs.colVal, nnz)
	rs.cur = scratch.For(rs.cur, n)
	copy(rs.cur, rs.colStart[:n])
	for i := 0; i < m; i++ {
		for e := sf.rowStart[i]; e < sf.rowStart[i+1]; e++ {
			c := sf.rcol[e]
			rs.colRow[rs.cur[c]] = int32(i)
			rs.colVal[rs.cur[c]] = sf.rval[e]
			rs.cur[c]++
		}
		if s := rs.slackOf[i]; s >= 0 {
			v := 1.0
			if sf.rows[i].rel == GE {
				v = -1
			}
			rs.slackSign[i] = v
			rs.colRow[rs.cur[s]] = int32(i)
			rs.colVal[rs.cur[s]] = v
			rs.cur[s]++
		}
	}

	rs.cost = scratch.Zeroed(rs.cost, n)
	copy(rs.cost[:nstruct], sf.costs)
	rs.ub = scratch.For(rs.ub, n)
	copy(rs.ub[:nstruct], sf.upper)
	for j := nstruct; j < n; j++ {
		rs.ub[j] = math.Inf(1)
	}

	rs.rhs = scratch.For(rs.rhs, m)
	for i, row := range sf.rows {
		rs.rhs[i] = row.rhs
	}
	rs.beff = scratch.For(rs.beff, m)
	copy(rs.beff, rs.rhs)

	rs.status = scratch.Zeroed(rs.status, n+m) // nbLower everywhere
	rs.posOf = scratch.For(rs.posOf, n+m)
	for j := range rs.posOf {
		rs.posOf[j] = -1
	}
	rs.basisVar = scratch.For(rs.basisVar, m)
	rs.xB = scratch.For(rs.xB, m)
	rs.acol = scratch.For(rs.acol, m)
	rs.y = scratch.For(rs.y, m)
	rs.cB = scratch.For(rs.cB, m)

	// Per-solve pivot-loop state. Everything a previous solve could have
	// left behind is reset here — pricing cursor, devex framework,
	// maintained duals, feasibility signs, eta file (cleared by the first
	// factorize), and the zero-invariant scatter buffers, which an
	// aborted solve (dense fallback mid-pivot) may have left dirty.
	rs.rotor = 0
	rs.w = scratch.Zeroed(rs.w, m)
	rs.wIdx = rs.wIdx[:0]
	rs.wSparse = false
	rs.rho = scratch.Zeroed(rs.rho, m)
	rs.rhoIdx = rs.rhoIdx[:0]
	rs.rhoSparse = false
	rs.alpha = scratch.Zeroed(rs.alpha, n)
	rs.alphaIdx = rs.alphaIdx[:0]
	rs.amark = scratch.Zeroed(rs.amark, n)
	rs.d = scratch.For(rs.d, n)
	rs.gamma = scratch.For(rs.gamma, n)
	rs.resetDevexWeights()
	rs.dPhase1 = false
	rs.dStale = true
	rs.sgn = scratch.Zeroed(rs.sgn, m)
	rs.ninf = 0
	rs.lu.nfactor = 0
}

// crash builds a triangular starting basis by repeatedly picking columns
// with exactly one uncovered row (slack columns qualify immediately, and
// the staircase state columns of the horizon LPs cascade from there), so
// most equality rows start with a structural pivot instead of a
// placeholder. Pivots below a tenth of the column's largest entry are
// rejected for stability. The FIFO processing order is deterministic.
func (rs *revised) crash(sf *standardForm) {
	m, n := rs.m, rs.n
	rs.covered = scratch.Zeroed(rs.covered, m)
	rs.colCnt = scratch.For(rs.colCnt, n)
	rs.colMax = scratch.For(rs.colMax, n)
	for j := 0; j < n; j++ {
		rs.colCnt[j] = rs.colStart[j+1] - rs.colStart[j]
		cm := 0.0
		for i := rs.colStart[j]; i < rs.colStart[j+1]; i++ {
			if a := math.Abs(rs.colVal[i]); a > cm {
				cm = a
			}
		}
		rs.colMax[j] = cm
	}
	rs.queue = rs.queue[:0]
	for j := 0; j < n; j++ {
		if rs.colCnt[j] == 1 {
			rs.queue = append(rs.queue, int32(j))
		}
	}
	for qi := 0; qi < len(rs.queue); qi++ {
		j := rs.queue[qi]
		if rs.posOf[j] >= 0 || rs.colCnt[j] != 1 {
			continue
		}
		r := int32(-1)
		a := 0.0
		for i := rs.colStart[j]; i < rs.colStart[j+1]; i++ {
			if !rs.covered[rs.colRow[i]] {
				r, a = rs.colRow[i], rs.colVal[i]
				break
			}
		}
		if r < 0 || math.Abs(a) < 0.1*rs.colMax[j] {
			continue
		}
		rs.basisVar[r] = j
		rs.status[j] = inBasis
		rs.posOf[j] = r
		rs.covered[r] = true
		for e := sf.rowStart[r]; e < sf.rowStart[r+1]; e++ {
			c := sf.rcol[e]
			rs.colCnt[c]--
			if rs.colCnt[c] == 1 && rs.posOf[c] < 0 {
				rs.queue = append(rs.queue, c)
			}
		}
		if s := rs.slackOf[r]; s >= 0 && s != j {
			rs.colCnt[s]--
		}
	}
	for r := 0; r < m; r++ {
		if !rs.covered[r] {
			nv := int32(n + r)
			rs.basisVar[r] = nv
			rs.status[nv] = inBasis
			rs.posOf[nv] = int32(r)
		}
	}
}

// demoteToPlaceholder swaps the variable basic at pos out for the
// placeholder unit column of row r. Called by factorize when the basis
// proves numerically dependent; the demoted variable is parked at its
// lower bound, so the effective rhs is unchanged.
func (rs *revised) demoteToPlaceholder(pos int, r int32) {
	old := rs.basisVar[pos]
	rs.status[old] = nbLower
	rs.posOf[old] = -1
	nv := int32(rs.n) + r
	rs.basisVar[pos] = nv
	rs.status[nv] = inBasis
	rs.posOf[nv] = int32(pos)
}

// ubOf returns the upper bound of a column id, counting placeholders as
// fixed at zero.
func (rs *revised) ubOf(v int32) float64 {
	if int(v) >= rs.n {
		return 0
	}
	return rs.ub[v]
}

// colDot computes yᵀA_j over the sparse column.
func (rs *revised) colDot(j int) float64 {
	s := 0.0
	for i := rs.colStart[j]; i < rs.colStart[j+1]; i++ {
		s += rs.y[rs.colRow[i]] * rs.colVal[i]
	}
	return s
}

// addColTimes adds s·A_v into the dense row-space vector dst.
func (rs *revised) addColTimes(v int32, s float64, dst []float64) {
	if int(v) >= rs.n {
		dst[int(v)-rs.n] += s
		return
	}
	for i := rs.colStart[v]; i < rs.colStart[v+1]; i++ {
		dst[rs.colRow[i]] += s * rs.colVal[i]
	}
}

// refreshXB recomputes the basic values from the effective rhs through
// the current factorization, and reports whether they are all finite.
func (rs *revised) refreshXB() bool {
	copy(rs.acol, rs.beff)
	rs.lu.ftran(rs.acol, rs.xB)
	for _, x := range rs.xB {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

// ratioTest finds how far the entering column q can move in direction
// dir (+1 from lower, −1 from upper) before a basic variable hits a
// bound. In phase 1 it is the conservative first-breakpoint rule:
// feasible basics block at their nearer bound, infeasible basics (as
// classified by the maintained sgn) block on reaching their violated
// bound (where the composite objective's slope changes). Ties resolve to
// the smallest leaving column id within a scale-aware window
// (ratioTieTol relative to the step length — the absolute window of the
// dense tableau misbehaves on large-magnitude annual rows). When the
// entering variable's own upper bound binds first the move is a bound
// flip (r < 0, flip true); θ = +Inf means no breakpoint at all. The scan
// covers only the ftran pattern when the solve stayed hyper-sparse.
func (rs *revised) ratioTest(q int, dir float64, phase1 bool) (theta float64, r int, leaveAt uint8, flip bool) {
	best := math.Inf(1)
	r = -1
	bestVar := int32(math.MaxInt32)
	consider := func(i int) {
		wi := rs.w[i]
		if wi < pivotTol && wi > -pivotTol {
			return
		}
		delta := -dir * wi
		v := rs.basisVar[i]
		x := rs.xB[i]
		var t float64
		var at uint8
		switch {
		case phase1 && rs.sgn[i] < 0:
			if delta <= 0 {
				return
			}
			t = -x / delta
			at = nbLower
		case phase1 && rs.sgn[i] > 0:
			if delta >= 0 {
				return
			}
			t = (x - rs.ubOf(v)) / -delta
			at = nbUpper
		case delta < 0:
			t = x / -delta
			if t < 0 {
				t = 0
			}
			at = nbLower
		default:
			ubv := rs.ubOf(v)
			if math.IsInf(ubv, 1) {
				return
			}
			t = (ubv - x) / delta
			if t < 0 {
				t = 0
			}
			at = nbUpper
		}
		eps := ratioTieTol * (1 + t)
		if t < best-eps || (t <= best+eps && v < bestVar) {
			best, r, leaveAt, bestVar = t, i, at, v
		}
	}
	if rs.wSparse {
		for _, i := range rs.wIdx {
			consider(int(i))
		}
	} else {
		for i := 0; i < rs.m; i++ {
			consider(i)
		}
	}
	if ubq := rs.ub[q]; !math.IsInf(ubq, 1) && ubq < best-ratioTieTol*(1+ubq) {
		return ubq, -1, 0, true
	}
	return best, r, leaveAt, false
}

// applyFlip moves the entering column to its opposite bound without a
// basis change, updating the basic values, feasibility signs and the
// effective rhs over the ftran pattern.
func (rs *revised) applyFlip(q int, dir float64) {
	ubq := rs.ub[q]
	if rs.wSparse {
		for _, i := range rs.wIdx {
			if wi := rs.w[i]; wi != 0 {
				rs.xB[i] -= dir * ubq * wi
				rs.updateSgnAt(int(i))
			}
		}
	} else {
		for i, wi := range rs.w {
			if wi != 0 {
				rs.xB[i] -= dir * ubq * wi
				rs.updateSgnAt(i)
			}
		}
	}
	if dir > 0 {
		rs.status[q] = nbUpper
		rs.addColTimes(int32(q), -ubq, rs.beff)
	} else {
		rs.status[q] = nbLower
		rs.addColTimes(int32(q), ubq, rs.beff)
	}
}

// applyPivot executes the basis change: basic values move by θ along the
// direction (with feasibility signs maintained over the pattern), the
// leaving variable settles at leaveAt, the entering column takes
// position r, and the update is appended to the eta file.
func (rs *revised) applyPivot(q int, dir float64, r int, theta float64, leaveAt uint8) {
	if theta != 0 {
		if rs.wSparse {
			for _, i := range rs.wIdx {
				if int(i) == r {
					continue
				}
				if wi := rs.w[i]; wi != 0 {
					rs.xB[i] -= dir * theta * wi
					rs.updateSgnAt(int(i))
				}
			}
		} else {
			for i, wi := range rs.w {
				if i == r || wi == 0 {
					continue
				}
				rs.xB[i] -= dir * theta * wi
				rs.updateSgnAt(i)
			}
		}
	}
	v := rs.basisVar[r]
	rs.status[v] = leaveAt
	rs.posOf[v] = -1
	if leaveAt == nbUpper {
		if ubv := rs.ubOf(v); ubv != 0 {
			rs.addColTimes(v, -ubv, rs.beff)
		}
	}
	enterX := theta
	if rs.status[q] == nbUpper {
		enterX = rs.ub[q] - theta
		rs.addColTimes(int32(q), rs.ub[q], rs.beff)
	}
	rs.status[q] = inBasis
	rs.posOf[q] = int32(r)
	rs.basisVar[r] = int32(q)
	rs.xB[r] = enterX
	// The leaving position's ±1→0 sign transition is the cost
	// replacement the dual update already models; only an entering value
	// landing outside its bounds invalidates the maintained phase-1
	// duals.
	sg := sgnOfVal(enterX, rs.ub[q])
	if old := rs.sgn[r]; old != sg {
		if old != 0 {
			rs.ninf--
		}
		if sg != 0 {
			rs.ninf++
		}
		rs.sgn[r] = sg
	}
	if sg != 0 && rs.dPhase1 {
		rs.dStale = true
	}
	if rs.wSparse {
		rs.lu.addEtaSparse(rs.w, rs.wIdx, r)
	} else {
		rs.lu.addEta(rs.w, r)
	}
}

// runSparse drives the revised simplex over the sparse standard form in
// s.sf. The second return value reports whether the sparse path produced
// a trustworthy answer; false means the caller must rebuild the standard
// form dense and re-solve on the exact tableau path (numerical trouble,
// or an iteration budget the dense anti-cycling machinery should
// adjudicate).
//
// The loop is built around incremental state: reduced costs and devex
// weights update from each pivot row (recomputed from scratch only at
// refactorizations, phase switches and staleness events), feasibility
// signs update from each pivot's sparse delta, and FTRAN/BTRAN run
// hyper-sparse. Before declaring any terminal status the loop
// refactorizes and recomputes everything once ("fresh confirmation"), so
// accumulated drift can never produce a wrong Optimal/Infeasible answer.
func (s *Solver) runSparse(p *Problem) (Solution, bool) {
	sf := &s.sf
	rs := &s.rev
	rs.build(sf)
	rs.crash(sf)
	rs.lu.factorize(rs)
	if !rs.refreshXB() {
		return Solution{}, false
	}
	rs.rescanInfeasibility()

	maxIter := p.maxIter
	if maxIter <= 0 {
		maxIter = 200 + 60*(rs.m+rs.n)
	}

	pivots := 0
	stall := 0
	fresh := true // factors fresh and state rescanned since the last pivot
	for {
		if pivots >= maxIter || stall > 8*stallWin {
			return Solution{}, false
		}
		if rs.lu.needsRefactor() {
			rs.lu.factorize(rs)
			if !rs.refreshXB() {
				return Solution{}, false
			}
			rs.rescanInfeasibility()
			rs.dStale = true
			fresh = true
		}
		phase1 := rs.ninf > 0
		if rs.dStale || rs.dPhase1 != phase1 {
			rs.recomputeDuals(phase1)
		}
		q, d := rs.priceEnter(stall >= stallWin)
		if q < 0 {
			if !fresh {
				// Confirm the terminal status on fresh factors, exact
				// basic values and recomputed duals.
				rs.lu.factorize(rs)
				if !rs.refreshXB() {
					return Solution{}, false
				}
				rs.rescanInfeasibility()
				rs.recomputeDuals(rs.ninf > 0)
				fresh = true
				continue
			}
			if rs.ninf > 0 {
				return Solution{Status: Infeasible, Iterations: pivots}, true
			}
			break // optimal
		}
		dir := 1.0
		if rs.status[q] == nbUpper {
			dir = -1
		}
		aRow := rs.colRow[rs.colStart[q]:rs.colStart[q+1]]
		aVal := rs.colVal[rs.colStart[q]:rs.colStart[q+1]]
		rs.wIdx, rs.wSparse = rs.lu.ftranSparse(aRow, aVal, rs.w, rs.wIdx)
		theta, r, leaveAt, flip := rs.ratioTest(q, dir, phase1)
		if math.IsInf(theta, 1) {
			rs.clearW()
			if phase1 {
				// The composite objective is bounded below by zero, so a
				// breakpoint always exists in exact arithmetic.
				return Solution{}, false
			}
			return Solution{Status: Unbounded, Iterations: pivots}, true
		}
		progress := theta
		if flip {
			progress = rs.ub[q]
			rs.applyFlip(q, dir)
		} else {
			arq := rs.w[r]
			lv := rs.basisVar[r]
			sgnR := rs.sgn[r]
			rs.computePivotRow(r)
			rs.applyPivot(q, dir, r, theta, leaveAt)
			rs.updateDualsDevex(q, r, d, arq, lv, sgnR)
		}
		rs.clearW()
		fresh = false
		if progress*math.Abs(d) > improveE {
			stall = 0
		} else {
			stall++
		}
		pivots++
	}

	// Optimal: recover the standard-form vector and the exact objective.
	s.y = scratch.Zeroed(s.y, sf.ncols)
	obj := sf.offset
	for j := 0; j < rs.nstruct; j++ {
		switch rs.status[j] {
		case nbUpper:
			s.y[j] = rs.ub[j]
		case inBasis:
			s.y[j] = rs.xB[rs.posOf[j]]
		}
		obj += sf.costs[j] * s.y[j]
	}
	s.vals = scratch.Zeroed(s.vals, len(sf.recover))
	sf.recoverValuesInto(s.y, s.vals)
	return Solution{
		Status:     Optimal,
		Objective:  obj,
		Iterations: pivots,
		values:     s.vals,
	}, true
}
