package lp

import (
	"math"
	"math/rand"
	"testing"
)

// checkParity solves p on both the dense tableau and the sparse revised
// simplex and fails the test unless the statuses match exactly and the
// objectives agree to 1e-9 (absolute + relative). It restores the
// problem's sparse flag before returning.
func checkParity(t *testing.T, p *Problem, tag string) {
	t.Helper()
	was := p.sparse
	defer func() { p.sparse = was }()

	var ds, ss Solver
	p.SetSparse(false)
	dsol, derr := ds.Solve(p)
	p.SetSparse(true)
	ssol, serr := ss.Solve(p)

	if (derr == nil) != (serr == nil) {
		t.Fatalf("%s: error parity broken: dense %v, sparse %v", tag, derr, serr)
	}
	if derr != nil {
		return
	}
	if dsol.Status != ssol.Status {
		t.Fatalf("%s: status parity broken: dense %v, sparse %v", tag, dsol.Status, ssol.Status)
	}
	if dsol.Status != Optimal {
		return
	}
	tol := 1e-9 * (1 + math.Abs(dsol.Objective))
	if math.Abs(dsol.Objective-ssol.Objective) > tol {
		t.Fatalf("%s: objective parity broken: dense %.12g, sparse %.12g (diff %g)",
			tag, dsol.Objective, ssol.Objective, dsol.Objective-ssol.Objective)
	}
}

// staircaseLP is a random instance of the shape the horizon LPs have:
// per-slot flow variables coupled only through a battery state chain and
// a cumulative-served chain, plus deadline rows. Coefficients snap to a
// coarse grid so degenerate ties are common, and the generator plants
// fixed variables, occasional infeasible deadlines and (rarely) an
// uncapped negative-cost variable that makes the problem unbounded.
type staircaseLP struct {
	h       int
	bCap    float64
	b0      float64
	etaC    float64
	etaD    float64
	supply  []float64
	sCost   []float64
	uCost   []float64
	demand  float64
	dueSlot int
	fixC    int // index of a slot whose charge var is fixed, -1 none
	fixVal  float64
	unbVar  bool // add an uncapped improving variable (unbounded LP)
}

func q4(x float64) float64 { return math.Round(x*4) / 4 }

func genStaircaseLP(r *rand.Rand) staircaseLP {
	h := 1 + r.Intn(12)
	g := staircaseLP{
		h:       h,
		bCap:    q4(1 + r.Float64()*4),
		etaC:    1,
		etaD:    1,
		supply:  make([]float64, h),
		sCost:   make([]float64, h),
		uCost:   make([]float64, h),
		dueSlot: h - 1,
		fixC:    -1,
	}
	g.b0 = q4(r.Float64() * g.bCap)
	if r.Intn(3) == 0 {
		g.etaC = 0.75
		g.etaD = 1.25
	}
	total := 0.0
	for i := 0; i < h; i++ {
		g.supply[i] = q4(r.Float64() * 3)
		g.sCost[i] = q4(r.Float64() * 4)
		g.uCost[i] = q4(r.Float64()*2 - 0.5)
		total += g.supply[i]
	}
	// Demand mostly satisfiable; sometimes decisively infeasible.
	if r.Intn(5) == 0 {
		g.demand = q4(total + g.b0 + 3 + r.Float64()*5)
	} else {
		g.demand = q4(r.Float64() * 0.6 * (total + g.b0))
	}
	if h > 2 && r.Intn(3) == 0 {
		g.dueSlot = h/2 + r.Intn(h-h/2)
	}
	if r.Intn(4) == 0 {
		g.fixC = r.Intn(h)
		g.fixVal = q4(r.Float64() * 0.5)
	}
	g.unbVar = r.Intn(20) == 0
	return g
}

// build emits the staircase LP: serve u_i and charge c_i draw on supply,
// discharge d_i serves from the battery, B_i and U_i are the state
// chains, and the deadline forces cumulative service by dueSlot.
func (g staircaseLP) build() *Problem {
	p := NewProblem()
	h := g.h
	u := make([]VarID, h)
	c := make([]VarID, h)
	d := make([]VarID, h)
	bs := make([]VarID, h)
	us := make([]VarID, h)
	for i := 0; i < h; i++ {
		u[i] = p.AddVariable("u", 0, g.supply[i], g.uCost[i])
		lo, hi := 0.0, g.supply[i]
		if i == g.fixC {
			lo, hi = g.fixVal, g.fixVal
		}
		c[i] = p.AddVariable("c", lo, hi, g.sCost[i])
		d[i] = p.AddVariable("d", 0, g.bCap, q4(g.sCost[i]/2))
		bs[i] = p.AddVariable("B", 0, g.bCap, 0)
		us[i] = p.AddVariable("U", 0, math.Inf(1), 0)
	}
	for i := 0; i < h; i++ {
		// Battery chain: B_i − B_{i−1} − ηc·c_i + ηd·d_i = [b0 at i=0].
		if i == 0 {
			p.AddConstraint(EQ, g.b0, Term{bs[0], 1}, Term{c[0], -g.etaC}, Term{d[0], g.etaD})
		} else {
			p.AddConstraint(EQ, 0, Term{bs[i], 1}, Term{bs[i-1], -1}, Term{c[i], -g.etaC}, Term{d[i], g.etaD})
		}
		// Served chain: U_i − U_{i−1} − u_i − d_i = 0.
		if i == 0 {
			p.AddConstraint(EQ, 0, Term{us[0], 1}, Term{u[0], -1}, Term{d[0], -1})
		} else {
			p.AddConstraint(EQ, 0, Term{us[i], 1}, Term{us[i-1], -1}, Term{u[i], -1}, Term{d[i], -1})
		}
		// Shared supply: u_i + c_i ≤ s_i.
		p.AddConstraint(LE, g.supply[i], Term{u[i], 1}, Term{c[i], 1})
	}
	p.AddConstraint(GE, g.demand, Term{us[g.dueSlot], 1})
	if g.unbVar {
		v := p.AddVariable("ray", 0, math.Inf(1), -1)
		_ = v
	}
	return p
}

// TestSparseParityStaircase is the core equivalence gate of the revised
// simplex: ≥1000 random staircase LPs (the horizon-LP shape, with
// degenerate ties, fixed variables, infeasible and unbounded cases) must
// agree with the dense tableau on status and objective to 1e-9, in both
// bounded and row mode.
func TestSparseParityStaircase(t *testing.T) {
	r := rand.New(rand.NewSource(1234))
	for i := 0; i < 1200; i++ {
		g := genStaircaseLP(r)
		p := g.build()
		p.SetBounded(i%2 == 0)
		checkParity(t, p, "staircase")
	}
}

// TestSparseParityBoxLPs runs the parity gate over the generic random
// box LPs of the existing property harness, which exercise free
// variables, flipped bounds, equality-heavy rows and empty problems the
// staircase shape never produces.
func TestSparseParityBoxLPs(t *testing.T) {
	r := rand.New(rand.NewSource(4321))
	for i := 0; i < 1000; i++ {
		g := genBoxLP(r)
		p, _ := g.build()
		p.SetBounded(i%2 == 0)
		checkParity(t, p, "box")
	}
}

// TestSparseSolutionsAreFeasible: the sparse path's reported optimum
// must satisfy the original constraints and bounds, not just match the
// dense objective.
func TestSparseSolutionsAreFeasible(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for i := 0; i < 400; i++ {
		g := genBoxLP(r)
		p, _ := g.build()
		p.SetBounded(i%2 == 0)
		p.SetSparse(true)
		var s Solver
		sol, err := s.Solve(p)
		if err != nil || sol.Status != Optimal {
			continue
		}
		if x := sol.Values(); !g.feasible(x, 1e-6) {
			t.Fatalf("sparse optimum %v infeasible for %+v", x, g)
		}
	}
}

// TestSparseDeterminism: the sparse solver is a pure function of the
// problem — two solves of identical instances must take identical pivot
// sequences and produce bit-identical objectives.
func TestSparseDeterminism(t *testing.T) {
	r1 := rand.New(rand.NewSource(555))
	r2 := rand.New(rand.NewSource(555))
	var s1, s2 Solver
	for i := 0; i < 100; i++ {
		p1 := genStaircaseLP(r1).build()
		p2 := genStaircaseLP(r2).build()
		p1.SetBounded(true)
		p1.SetSparse(true)
		p2.SetBounded(true)
		p2.SetSparse(true)
		sol1, err1 := s1.Solve(p1)
		sol2, err2 := s2.Solve(p2)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("case %d: error divergence %v vs %v", i, err1, err2)
		}
		if err1 != nil {
			continue
		}
		if sol1.Status != sol2.Status || sol1.Iterations != sol2.Iterations || sol1.Objective != sol2.Objective {
			t.Fatalf("case %d: nondeterministic solve: %v/%d/%v vs %v/%d/%v", i,
				sol1.Status, sol1.Iterations, sol1.Objective,
				sol2.Status, sol2.Iterations, sol2.Objective)
		}
	}
}

// TestSparseRefactorizationPath solves a staircase instance long enough
// that the eta file must be rebuilt at least once mid-solve (pivot count
// beyond maxEtas), proving refactorization preserves the trajectory.
func TestSparseRefactorizationPath(t *testing.T) {
	r := rand.New(rand.NewSource(31337))
	hit := false
	for i := 0; i < 40 && !hit; i++ {
		g := genStaircaseLP(r)
		g.h = 40 + r.Intn(20)
		g.supply = make([]float64, g.h)
		g.sCost = make([]float64, g.h)
		g.uCost = make([]float64, g.h)
		total := 0.0
		for j := 0; j < g.h; j++ {
			g.supply[j] = q4(r.Float64() * 3)
			g.sCost[j] = q4(r.Float64() * 4)
			g.uCost[j] = q4(r.Float64()*2 - 0.5)
			total += g.supply[j]
		}
		g.dueSlot = g.h - 1
		g.fixC = -1
		g.unbVar = false
		g.demand = q4(0.8 * (total + g.b0))
		p := g.build()
		p.SetBounded(true)
		p.SetSparse(true)
		var s Solver
		sol, err := s.Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status == Optimal && sol.Iterations > maxEtas {
			hit = true
		}
		checkParity(t, p, "refactor")
	}
	if !hit {
		t.Fatal("no instance exceeded maxEtas pivots; enlarge the generator")
	}
}

// FuzzSparseSolveParity decodes an arbitrary byte string into a small LP
// and asserts dense/sparse parity on it. The decoder snaps every number
// to a coarse grid, so the fuzzer explores tie-heavy, rank-deficient and
// infeasible corners rather than floating-point noise.
func FuzzSparseSolveParity(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0xff, 0x00, 0x80, 0x20, 0x11, 0x99, 0x42, 0x42, 0x42, 0x42, 0x17, 0x03})
	f.Add([]byte{9, 200, 13, 77, 250, 3, 3, 3, 128, 128, 128, 0, 0, 0, 255, 255})
	// Hyper-sparse threshold crossings: 5 variables and 6 dense rows keep
	// FTRAN/BTRAN patterns hovering around the m/4 density threshold, so
	// the solve flips between the sparse kernels and their dense
	// fallbacks mid-trajectory.
	f.Add([]byte{
		4, 6, 0, // nv=5, nc=6, bounded
		0x90, 0x30, 0x70, 4, 0xa0, 0x40, 0x60, 4, 0x88, 0x50, 0x90, 4, 0x70, 0x20, 0xb0, 4, 0x98, 0x60, 0x50, 4,
		0x40, 0xc0, 0x40, 0xc0, 0x40, 0, 0x90, // dense LE row
		0xc0, 0x40, 0xc0, 0x40, 0xc0, 1, 0x70, // dense GE row
		0x60, 0xa0, 0x60, 0xa0, 0x60, 2, 0x88, // dense EQ row
		0x40, 0x40, 0x40, 0x40, 0x40, 0, 0xa0,
		0xc0, 0xc0, 0xc0, 0xc0, 0xc0, 1, 0x60,
		0xa0, 0x60, 0xa0, 0x60, 0xa0, 2, 0x80,
	})
	// The sparse complement: identical shape, but most coefficients snap
	// to zero (byte 0x80), so row patterns stay single-entry and the
	// solve should hold the hyper-sparse path throughout.
	f.Add([]byte{
		4, 6, 0,
		0x90, 0x30, 0x70, 4, 0xa0, 0x40, 0x60, 4, 0x88, 0x50, 0x90, 4, 0x70, 0x20, 0xb0, 4, 0x98, 0x60, 0x50, 4,
		0x40, 0x80, 0x80, 0x80, 0x80, 0, 0x90,
		0x80, 0xc0, 0x80, 0x80, 0x80, 1, 0x70,
		0x80, 0x80, 0x60, 0x80, 0x80, 2, 0x88,
		0x80, 0x80, 0x80, 0x40, 0x80, 0, 0xa0,
		0x80, 0x80, 0x80, 0x80, 0xc0, 1, 0x60,
		0x40, 0x80, 0x80, 0x80, 0x60, 2, 0x80,
	})
	// Coupled routing block (internal/baseline SolveGeoHorizon shape):
	// two sites' (out, in) pairs plus a battery-style level variable.
	// Penalty costs sit on the "in" columns only, each site carries a
	// balance row and an in-minus-out cap row, and an EQ coupling row
	// ties the sites together with +1/-1 entries — the row that makes
	// the otherwise block-diagonal staircase non-separable.
	f.Add([]byte{
		4, 6, 0, // nv=5, nc=6, bounded
		0x80, 0xa0, 0x80, 4, // out1 in [0,2], cost 0
		0x80, 0xc0, 0x90, 4, // in1  in [0,4], cost 1 (import penalty)
		0x80, 0xa0, 0x80, 4, // out2 in [0,2], cost 0
		0x80, 0xc0, 0x90, 4, // in2  in [0,4], cost 1
		0x80, 0xb0, 0x88, 4, // bl   in [0,3], cost 0.5
		0xa0, 0x60, 0x80, 0x80, 0xa0, 0, 0x90, // site-1 balance: out1-in1+bl <= 2
		0x80, 0x80, 0xa0, 0x60, 0x80, 1, 0x78, // site-2 balance: out2-in2 >= -1
		0xa0, 0x60, 0xa0, 0x60, 0x80, 2, 0x80, // coupling: out1-in1+out2-in2 = 0
		0x60, 0xa0, 0x80, 0x80, 0x80, 0, 0x88, // site-1 cap: in1-out1 <= 1
		0x80, 0x80, 0x60, 0xa0, 0x80, 0, 0x88, // site-2 cap: in2-out2 <= 1
		0x60, 0x80, 0x60, 0x80, 0xa0, 2, 0x80, // accumulator: bl-out1-out2 = 0
	})
	// Staircase battery chain with a routing coupling row: bidiagonal
	// EQ transitions bl[i+1]-bl[i] (the whole-horizon LP's dominant row
	// pattern) alongside the out/in pair, its EQ coupling row and an
	// in-minus-out cap — a one-slot slice of the coupled geo staircase.
	f.Add([]byte{
		4, 5, 0, // nv=5, nc=5, bounded
		0x80, 0xc0, 0x80, 4, // bl0 in [0,4], cost 0
		0x80, 0xc0, 0x80, 4, // bl1 in [0,4], cost 0
		0x80, 0xc0, 0x88, 4, // bl2 in [0,4], cost 0.5
		0x80, 0xa0, 0x80, 4, // out in [0,2], cost 0
		0x80, 0xc0, 0x90, 4, // in  in [0,4], cost 1
		0x60, 0xa0, 0x80, 0x60, 0xa0, 2, 0x88, // transition: bl1-bl0-out+in = 1
		0x80, 0x60, 0xa0, 0x80, 0x80, 2, 0x78, // transition: bl2-bl1 = -1
		0x80, 0x80, 0x80, 0xa0, 0x60, 2, 0x80, // coupling: out-in = 0
		0x80, 0x80, 0x80, 0x60, 0xa0, 0, 0x88, // cap: in-out <= 1
		0x80, 0x80, 0xa0, 0xa0, 0x80, 1, 0x88, // deadline: bl2+out >= 1
	})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, ok := decodeFuzzLP(data)
		if !ok {
			return
		}
		checkParity(t, p, "fuzz")
	})
}

// decodeFuzzLP turns a byte stream into a bounded LP: a handful of
// variables on a coarse bound grid, then constraint rows until the
// stream runs dry. Exhausted streams read zeros.
func decodeFuzzLP(data []byte) (*Problem, bool) {
	pos := 0
	next := func() byte {
		if pos >= len(data) {
			return 0
		}
		b := data[pos]
		pos++
		return b
	}
	grid := func(b byte, scale float64) float64 {
		return (float64(int(b)) - 128) / 16 * scale
	}
	nv := 1 + int(next())%5
	nc := int(next()) % 7
	p := NewProblem()
	p.SetBounded(next()%2 == 0)
	ids := make([]VarID, nv)
	for i := 0; i < nv; i++ {
		lo := grid(next(), 1)
		span := math.Abs(grid(next(), 1))
		cost := grid(next(), 1)
		switch next() % 8 {
		case 0: // free variable
			ids[i] = p.AddVariable("", math.Inf(-1), math.Inf(1), cost)
		case 1: // upper-bounded only
			ids[i] = p.AddVariable("", math.Inf(-1), lo+span, cost)
		case 2: // unbounded above
			ids[i] = p.AddVariable("", lo, math.Inf(1), cost)
		case 3: // fixed
			ids[i] = p.AddVariable("", lo, lo, cost)
		default:
			ids[i] = p.AddVariable("", lo, lo+span, cost)
		}
	}
	terms := make([]Term, 0, nv)
	for c := 0; c < nc; c++ {
		terms = terms[:0]
		for i := 0; i < nv; i++ {
			if coef := grid(next(), 0.5); coef != 0 {
				terms = append(terms, Term{ids[i], coef})
			}
		}
		rel := []Relation{LE, GE, EQ}[next()%3]
		p.AddConstraint(rel, grid(next(), 2), terms...)
	}
	return p, true
}
