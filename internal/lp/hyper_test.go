package lp

import (
	"math"
	"math/rand"
	"testing"
)

// newRevisedForTest builds the revised-simplex state for p (crash basis,
// LU factors, no pivots yet) so the hyper-sparse kernels can be driven
// directly against the dense reference solves.
func newRevisedForTest(p *Problem) *Solver {
	var s Solver
	p.SetSparse(true)
	p.buildStandardForm(&s.sf)
	rs := &s.rev
	rs.build(&s.sf)
	rs.crash(&s.sf)
	rs.lu.factorize(rs)
	return &s
}

// ftranRef computes the dense-reference FTRAN image of column j into ref.
func ftranRef(rs *revised, j int, ref []float64) {
	for i := range rs.acol {
		rs.acol[i] = 0
	}
	for i := rs.colStart[j]; i < rs.colStart[j+1]; i++ {
		rs.acol[rs.colRow[i]] = rs.colVal[i]
	}
	rs.lu.ftran(rs.acol, ref)
}

// checkFtranColumn runs ftranSparse on column j and fails unless the
// result matches the dense ftran reference at every position. The w
// buffer's all-zero invariant is restored before returning.
func checkFtranColumn(t *testing.T, rs *revised, j int, tag string) {
	t.Helper()
	ref := make([]float64, rs.m)
	ftranRef(rs, j, ref)
	aRow := rs.colRow[rs.colStart[j]:rs.colStart[j+1]]
	aVal := rs.colVal[rs.colStart[j]:rs.colStart[j+1]]
	rs.wIdx, rs.wSparse = rs.lu.ftranSparse(aRow, aVal, rs.w, rs.wIdx)
	for i := 0; i < rs.m; i++ {
		if d := math.Abs(rs.w[i] - ref[i]); d > 1e-9*(1+math.Abs(ref[i])) {
			t.Fatalf("%s: ftranSparse col %d mismatch at pos %d: sparse %g dense %g (sparse path %v)",
				tag, j, i, rs.w[i], ref[i], rs.wSparse)
		}
	}
	if rs.wSparse {
		// The pattern must cover every nonzero of the result.
		on := make(map[int32]bool, len(rs.wIdx))
		for _, i := range rs.wIdx {
			on[i] = true
		}
		for i := 0; i < rs.m; i++ {
			if ref[i] != 0 && !on[int32(i)] {
				t.Fatalf("%s: ftranSparse col %d pattern misses nonzero pos %d (%g)", tag, j, i, ref[i])
			}
		}
	}
	for i := range rs.w {
		rs.w[i] = 0
	}
	rs.wIdx = rs.wIdx[:0]
	rs.wSparse = false
}

// checkBtranUnitPos runs btranUnit for basis position r and fails unless
// the result matches the dense btran of the unit vector e_r.
func checkBtranUnitPos(t *testing.T, rs *revised, r int, tag string) {
	t.Helper()
	ref := make([]float64, rs.m)
	for i := range rs.cB {
		rs.cB[i] = 0
	}
	rs.cB[r] = 1
	rs.lu.btran(rs.cB, ref)
	rs.rhoIdx, rs.rhoSparse = rs.lu.btranUnit(int32(r), rs.rho, rs.rhoIdx)
	for i := 0; i < rs.m; i++ {
		if d := math.Abs(rs.rho[i] - ref[i]); d > 1e-9*(1+math.Abs(ref[i])) {
			t.Fatalf("%s: btranUnit pos %d mismatch at row %d: sparse %g dense %g (sparse path %v)",
				tag, r, i, rs.rho[i], ref[i], rs.rhoSparse)
		}
	}
	if rs.rhoSparse {
		on := make(map[int32]bool, len(rs.rhoIdx))
		for _, i := range rs.rhoIdx {
			on[i] = true
		}
		for i := 0; i < rs.m; i++ {
			if ref[i] != 0 && !on[int32(i)] {
				t.Fatalf("%s: btranUnit pos %d pattern misses nonzero row %d (%g)", tag, r, i, ref[i])
			}
		}
	}
	rs.clearRho()
	rs.rhoIdx = rs.rhoIdx[:0]
	rs.rhoSparse = false
}

// TestHyperSparseFtranMatchesDense drives ftranSparse over every priced
// column of random staircase instances — first on the fresh
// factorization, then again after product-form etas accumulate — and
// requires exact agreement with the dense ftran at every position.
func TestHyperSparseFtranMatchesDense(t *testing.T) {
	r := rand.New(rand.NewSource(9001))
	for it := 0; it < 25; it++ {
		g := genStaircaseLP(r)
		g.unbVar = false
		p := g.build()
		p.SetBounded(true)
		s := newRevisedForTest(p)
		rs := &s.rev
		for j := 0; j < rs.n; j++ {
			checkFtranColumn(t, rs, j, "fresh")
		}
		// Append etas from real column images to stress the eta stage,
		// pivoting a spread of positions (including repeats).
		w := make([]float64, rs.m)
		for e := 0; e < 6 && e < rs.n; e++ {
			ftranRef(rs, e%rs.n, w)
			pos := (e * 7) % rs.m
			if math.Abs(w[pos]) < 1e-6 {
				w[pos] = 1 + float64(e)
			}
			rs.lu.addEta(w, pos)
			for i := range w {
				w[i] = 0
			}
		}
		for j := 0; j < rs.n; j++ {
			checkFtranColumn(t, rs, j, "eta")
		}
	}
}

// TestHyperSparseBtranUnitMatchesDense is the BTRAN analogue: every
// basis position's unit solve must agree with the dense btran, fresh and
// with an eta file in play.
func TestHyperSparseBtranUnitMatchesDense(t *testing.T) {
	r := rand.New(rand.NewSource(9002))
	for it := 0; it < 25; it++ {
		g := genStaircaseLP(r)
		g.unbVar = false
		p := g.build()
		p.SetBounded(true)
		s := newRevisedForTest(p)
		rs := &s.rev
		for pos := 0; pos < rs.m; pos++ {
			checkBtranUnitPos(t, rs, pos, "fresh")
		}
		w := make([]float64, rs.m)
		for e := 0; e < 6 && e < rs.n; e++ {
			ftranRef(rs, (e*3)%rs.n, w)
			pos := (e * 5) % rs.m
			if math.Abs(w[pos]) < 1e-6 {
				w[pos] = 2
			}
			rs.lu.addEta(w, pos)
			for i := range w {
				w[i] = 0
			}
		}
		for pos := 0; pos < rs.m; pos++ {
			checkBtranUnitPos(t, rs, pos, "eta")
		}
	}
}

// placeholderProblem builds an all-EQ system whose columns all have two
// entries, so the triangular crash covers nothing and every basis
// position starts as a placeholder unit column — the identity-basis
// corner of the hyper-sparse kernels.
func placeholderProblem(m int) *Problem {
	p := NewProblem()
	ids := make([]VarID, m)
	for i := range ids {
		ids[i] = p.AddVariable("x", 0, 10, 1)
	}
	for i := 0; i < m; i++ {
		a, b := ids[i], ids[(i+1)%m]
		p.AddConstraint(EQ, 1, Term{a, 1}, Term{b, 0.5})
	}
	p.SetBounded(true)
	return p
}

// TestHyperSparseEtaChains drives the kernels through pathological eta
// files on an identity (all-placeholder) basis: a long dependency chain
// threading every position, repeated pivots of the same position, and
// fills dense enough to force the sparse→dense threshold crossing
// mid-solve. Every case must match the dense reference exactly.
func TestHyperSparseEtaChains(t *testing.T) {
	const m = 48
	build := func() *revised {
		s := newRevisedForTest(placeholderProblem(m))
		rs := &s.rev
		if rs.m != m {
			t.Fatalf("expected %d rows, got %d", m, rs.m)
		}
		for pos := 0; pos < m; pos++ {
			if int(rs.basisVar[pos]) < rs.n {
				t.Fatalf("crash covered position %d; want all placeholders", pos)
			}
		}
		return rs
	}

	w := make([]float64, m)
	setEta := func(rs *revised, pos int, diag float64, support map[int]float64) {
		for i := range w {
			w[i] = 0
		}
		w[pos] = diag
		for i, v := range support {
			w[i] = v
		}
		rs.lu.addEta(w, pos)
	}

	t.Run("long chain", func(t *testing.T) {
		rs := build()
		// Eta e pivots position e and spills into e+1: a chain the
		// backward eta scan must walk end to end.
		for e := 0; e+1 < m && e < maxEtas-1; e++ {
			setEta(rs, e, 2, map[int]float64{e + 1: 0.5})
		}
		for j := 0; j < rs.n; j++ {
			checkFtranColumn(t, rs, j, "chain")
		}
		for pos := 0; pos < m; pos++ {
			checkBtranUnitPos(t, rs, pos, "chain")
		}
	})

	t.Run("repeated position", func(t *testing.T) {
		rs := build()
		// The same position re-pivots repeatedly with shifting support —
		// the per-position entry chains must surface every occurrence.
		for e := 0; e < 12; e++ {
			setEta(rs, 5, 1+float64(e%3), map[int]float64{
				(7 * e) % m:    0.25,
				(11*e + 1) % m: -0.5,
			})
		}
		for j := 0; j < rs.n; j++ {
			checkFtranColumn(t, rs, j, "repeat")
		}
		for pos := 0; pos < m; pos++ {
			checkBtranUnitPos(t, rs, pos, "repeat")
		}
	})

	t.Run("dense crossing", func(t *testing.T) {
		rs := build()
		thr := rs.lu.hyperThreshold()
		// A dependency chain longer than the density threshold: positions
		// off the chain resolve with tiny sparse patterns, positions deep
		// in the chain push the pattern past the threshold and must cross
		// to the dense fallback kernels. Both sides must agree with the
		// reference, and both must actually occur.
		for e := 0; e < thr+8 && e+1 < m; e++ {
			setEta(rs, e, 2, map[int]float64{e + 1: 0.5})
		}
		sawDense, sawSparse := false, false
		for pos := 0; pos < m; pos++ {
			rs.rhoIdx, rs.rhoSparse = rs.lu.btranUnit(int32(pos), rs.rho, rs.rhoIdx)
			if rs.rhoSparse {
				sawSparse = true
			} else {
				sawDense = true
			}
			rs.clearRho()
			rs.rhoIdx = rs.rhoIdx[:0]
			rs.rhoSparse = false
			checkBtranUnitPos(t, rs, pos, "crossing")
		}
		if !sawDense || !sawSparse {
			t.Fatalf("threshold %d not crossed both ways: dense=%v sparse=%v", thr, sawDense, sawSparse)
		}
		for j := 0; j < rs.n; j++ {
			checkFtranColumn(t, rs, j, "crossing")
		}
	})
}

// TestSolverReuseReproducesPivotSequence is the solver-state reset gate:
// a Solver that already solved other models must reproduce a fresh
// solver's exact pivot sequence — iteration count, status and
// bit-identical objective — on the next model. Any pricing cursor, stall
// counter, eta file, devex weight or feasibility sign leaking across
// solves shows up here as a diverged trajectory.
func TestSolverReuseReproducesPivotSequence(t *testing.T) {
	r := rand.New(rand.NewSource(777))
	var reused Solver
	for i := 0; i < 120; i++ {
		warmup := genStaircaseLP(r).build()
		warmup.SetBounded(i%2 == 0)
		warmup.SetSparse(true)
		_, _ = reused.Solve(warmup) // arbitrary prior state, errors included

		g := genStaircaseLP(r)
		p := g.build()
		p.SetBounded(i%3 != 0)
		p.SetSparse(true)

		var fresh Solver
		fsol, ferr := fresh.Solve(p)
		rsol, rerr := reused.Solve(p)
		if (ferr == nil) != (rerr == nil) {
			t.Fatalf("case %d: error divergence fresh %v reused %v", i, ferr, rerr)
		}
		if ferr != nil {
			continue
		}
		if fsol.Status != rsol.Status || fsol.Iterations != rsol.Iterations || fsol.Objective != rsol.Objective {
			t.Fatalf("case %d: reused solver diverged: fresh %v/%d/%v, reused %v/%d/%v", i,
				fsol.Status, fsol.Iterations, fsol.Objective,
				rsol.Status, rsol.Iterations, rsol.Objective)
		}
	}
}

// TestNeedsRefactorClampTinyBasis pins the refactorization cadence for
// small bases: the fill bound is etaFillFactor·m clamped from below by
// minEtaFill, so an m=2 basis is not refactorized every couple of
// pivots.
func TestNeedsRefactorClampTinyBasis(t *testing.T) {
	lu := &basisLU{m: 2}
	lu.neta = 10
	lu.eval = make([]float64, 40)
	if lu.needsRefactor() {
		t.Fatalf("m=2 with 40 eta entries refactorized below the %d-entry clamp", minEtaFill)
	}
	lu.eval = make([]float64, minEtaFill+1)
	if !lu.needsRefactor() {
		t.Fatal("fill past the clamp must refactorize")
	}
	lu.eval = lu.eval[:0]
	lu.neta = maxEtas
	if !lu.needsRefactor() {
		t.Fatal("eta count at maxEtas must refactorize")
	}
	// Above the clamp the fill bound scales with m again.
	big := &basisLU{m: 100}
	big.eval = make([]float64, minEtaFill+1)
	if big.needsRefactor() {
		t.Fatal("large basis must use etaFillFactor*m, not the small-m clamp")
	}
}

// TestSmallBasisPivotChainRefactorCadence runs tiny staircase instances
// end to end and checks the solver did not refactorize on nearly every
// pivot — the failure mode of the unclamped fill bound.
func TestSmallBasisPivotChainRefactorCadence(t *testing.T) {
	r := rand.New(rand.NewSource(4242))
	for i := 0; i < 60; i++ {
		g := genStaircaseLP(r)
		g.h = 1 + r.Intn(2) // 1-2 slots: m of a handful
		g.supply = make([]float64, g.h)
		g.sCost = make([]float64, g.h)
		g.uCost = make([]float64, g.h)
		for j := 0; j < g.h; j++ {
			g.supply[j] = q4(r.Float64() * 3)
			g.sCost[j] = q4(r.Float64() * 4)
			g.uCost[j] = q4(r.Float64()*2 - 0.5)
		}
		g.demand = q4(r.Float64() * (g.b0 + 2))
		g.dueSlot = g.h - 1
		g.fixC = -1
		g.unbVar = false
		p := g.build()
		p.SetBounded(true)
		p.SetSparse(true)
		var s Solver
		sol, err := s.Solve(p)
		if err != nil {
			continue
		}
		nf := s.rev.lu.nfactor
		// One initial factorization plus at most the cadence-driven
		// rebuilds: pivots/maxEtas from the count bound (the fill bound
		// cannot fire below minEtaFill entries on these tiny bases).
		allowed := 2 + sol.Iterations/maxEtas + sol.Iterations/(minEtaFill/4)
		if nf > allowed {
			t.Fatalf("case %d: %d factorizations for %d pivots on a tiny basis (allowed %d)",
				i, nf, sol.Iterations, allowed)
		}
	}
}
