package lp

import (
	"math"
	"math/rand"
	"testing"
)

// makeRevisedBasis builds a minimal revised state whose CSC holds the
// given dense columns and whose basis is cols[0..m-1] in position order,
// so basisLU can be unit-tested against hand-picked (including singular)
// matrices without running the simplex.
func makeRevisedBasis(cols [][]float64) *revised {
	n := len(cols)
	m := len(cols[0])
	rs := &revised{m: m, n: n, nstruct: n}
	rs.colStart = make([]int32, n+1)
	for j, col := range cols {
		cnt := int32(0)
		for _, v := range col {
			if v != 0 {
				cnt++
			}
		}
		rs.colStart[j+1] = rs.colStart[j] + cnt
	}
	rs.colRow = make([]int32, rs.colStart[n])
	rs.colVal = make([]float64, rs.colStart[n])
	at := 0
	for _, col := range cols {
		for i, v := range col {
			if v != 0 {
				rs.colRow[at] = int32(i)
				rs.colVal[at] = v
				at++
			}
		}
	}
	rs.cost = make([]float64, n)
	rs.ub = make([]float64, n)
	for j := range rs.ub {
		rs.ub[j] = math.Inf(1)
	}
	rs.status = make([]uint8, n+m)
	rs.posOf = make([]int32, n+m)
	for j := range rs.posOf {
		rs.posOf[j] = -1
	}
	rs.basisVar = make([]int32, m)
	for i := 0; i < m; i++ {
		rs.basisVar[i] = int32(i)
		rs.status[i] = inBasis
		rs.posOf[i] = int32(i)
	}
	return rs
}

// denseBasis materializes the current basis of rs as a dense matrix
// B[row][pos].
func denseBasis(rs *revised) [][]float64 {
	b := make([][]float64, rs.m)
	for i := range b {
		b[i] = make([]float64, rs.m)
	}
	col := make([]float64, rs.m)
	for pos := 0; pos < rs.m; pos++ {
		for i := range col {
			col[i] = 0
		}
		rs.addColTimes(rs.basisVar[pos], 1, col)
		for i, v := range col {
			b[i][pos] = v
		}
	}
	return b
}

// denseSolve solves B x = rhs by Gaussian elimination with partial
// pivoting; the reference the LU results are checked against.
func denseSolve(bIn [][]float64, rhsIn []float64) []float64 {
	m := len(bIn)
	b := make([][]float64, m)
	for i := range b {
		b[i] = append([]float64(nil), bIn[i]...)
	}
	rhs := append([]float64(nil), rhsIn...)
	perm := make([]int, m)
	for i := range perm {
		perm[i] = i
	}
	for k := 0; k < m; k++ {
		pr := k
		for i := k + 1; i < m; i++ {
			if math.Abs(b[i][k]) > math.Abs(b[pr][k]) {
				pr = i
			}
		}
		b[k], b[pr] = b[pr], b[k]
		rhs[k], rhs[pr] = rhs[pr], rhs[k]
		for i := k + 1; i < m; i++ {
			f := b[i][k] / b[k][k]
			if f == 0 {
				continue
			}
			for j := k; j < m; j++ {
				b[i][j] -= f * b[k][j]
			}
			rhs[i] -= f * rhs[k]
		}
	}
	x := make([]float64, m)
	for k := m - 1; k >= 0; k-- {
		s := rhs[k]
		for j := k + 1; j < m; j++ {
			s -= b[k][j] * x[j]
		}
		x[k] = s / b[k][k]
	}
	return x
}

func transpose(b [][]float64) [][]float64 {
	m := len(b)
	tr := make([][]float64, m)
	for i := range tr {
		tr[i] = make([]float64, m)
		for j := 0; j < m; j++ {
			tr[i][j] = b[j][i]
		}
	}
	return tr
}

func maxAbsDiff(a, b []float64) float64 {
	d := 0.0
	for i := range a {
		if v := math.Abs(a[i] - b[i]); v > d {
			d = v
		}
	}
	return d
}

// randomSparseCols generates m random sparse columns guaranteed
// nonsingular (a shuffled diagonal plus random fill), in the density
// range the staircase bases live in.
func randomSparseCols(r *rand.Rand, m int) [][]float64 {
	cols := make([][]float64, m)
	diag := r.Perm(m)
	for j := range cols {
		col := make([]float64, m)
		col[diag[j]] = 1 + r.Float64()*3
		for k := 0; k < 1+r.Intn(3); k++ {
			col[r.Intn(m)] += math.Round((r.Float64()*4-2)*4) / 4
		}
		// Keep the planted pivot decisively nonzero.
		if math.Abs(col[diag[j]]) < 0.5 {
			col[diag[j]] = 2
		}
		cols[j] = col
	}
	return cols
}

// TestLUFactorSolveAgainstDenseReference: ftran and btran on random
// sparse bases must match dense Gaussian elimination.
func TestLUFactorSolveAgainstDenseReference(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		m := 1 + r.Intn(12)
		rs := makeRevisedBasis(randomSparseCols(r, m))
		rs.lu.factorize(rs)
		if rs.lu.deficient > 0 {
			// Planted-diagonal columns are nonsingular; a patch here
			// would mean factorize lost the matrix.
			t.Fatalf("trial %d: unexpected deficiency on a nonsingular basis", trial)
		}
		b := denseBasis(rs)
		a := make([]float64, m)
		for i := range a {
			a[i] = math.Round((r.Float64()*10-5)*8) / 8
		}
		want := denseSolve(b, a)
		got := make([]float64, m)
		rs.lu.ftran(append([]float64(nil), a...), got)
		if d := maxAbsDiff(got, want); d > 1e-8 {
			t.Fatalf("trial %d: ftran drift %g (m=%d)", trial, d, m)
		}
		wantT := denseSolve(transpose(b), a)
		gotT := make([]float64, m)
		rs.lu.btran(append([]float64(nil), a...), gotT)
		if d := maxAbsDiff(gotT, wantT); d > 1e-8 {
			t.Fatalf("trial %d: btran drift %g (m=%d)", trial, d, m)
		}
	}
}

// TestLUSingularBasisRecovery: a rank-deficient basis must be patched
// with placeholder unit columns instead of producing NaNs, and the
// patched factorization must solve exactly for the patched basis.
func TestLUSingularBasisRecovery(t *testing.T) {
	// Column 2 = 2·column 0 and column 3 is all zeros: rank 2 of 4.
	cols := [][]float64{
		{1, 2, 0, 1},
		{0, 1, 1, 0},
		{2, 4, 0, 2},
		{0, 0, 0, 0},
	}
	rs := makeRevisedBasis(cols)
	rs.lu.factorize(rs)
	if rs.lu.deficient != 2 {
		t.Fatalf("deficient = %d, want 2", rs.lu.deficient)
	}
	patched := 0
	for pos, v := range rs.basisVar {
		if int(v) >= rs.n {
			patched++
			if rs.status[v] != inBasis || rs.posOf[v] != int32(pos) {
				t.Fatalf("placeholder bookkeeping broken at pos %d", pos)
			}
		}
	}
	if patched != 2 {
		t.Fatalf("patched positions = %d, want 2", patched)
	}
	// The patched basis is nonsingular: ftran must reproduce a dense
	// solve of the patched matrix.
	b := denseBasis(rs)
	a := []float64{1, -2, 0.5, 3}
	want := denseSolve(b, a)
	got := make([]float64, 4)
	rs.lu.ftran(append([]float64(nil), a...), got)
	if d := maxAbsDiff(got, want); d > 1e-8 {
		t.Fatalf("patched ftran drift %g", d)
	}
}

// TestLUEtaUpdateMatchesRefactorization: replacing basis columns through
// the eta file must give the same ftran/btran results as factorizing the
// updated basis from scratch — the exact invariant the refactorization
// cadence relies on.
func TestLUEtaUpdateMatchesRefactorization(t *testing.T) {
	r := rand.New(rand.NewSource(123))
	for trial := 0; trial < 100; trial++ {
		m := 2 + r.Intn(10)
		n := m + 1 + r.Intn(4)
		cols := make([][]float64, n)
		base := randomSparseCols(r, m)
		copy(cols, base)
		for j := m; j < n; j++ {
			col := make([]float64, m)
			for k := 0; k < 2+r.Intn(3); k++ {
				col[r.Intn(m)] += 1 + r.Float64()*2
			}
			cols[j] = col
		}
		rs := makeRevisedBasis(cols)
		rs.m = m // basis over the first m columns; the rest are entering candidates
		rs.lu.factorize(rs)

		// Push a few eta updates through the factorization.
		updates := 1 + r.Intn(3)
		acol := make([]float64, m)
		w := make([]float64, m)
		for u := 0; u < updates; u++ {
			q := int32(m + r.Intn(n-m))
			if rs.posOf[q] >= 0 {
				continue
			}
			for i := range acol {
				acol[i] = 0
			}
			rs.addColTimes(q, 1, acol)
			rs.lu.ftran(acol, w)
			pos := r.Intn(m)
			if math.Abs(w[pos]) < 1e-6 {
				continue // ratio test would never pick this pivot
			}
			old := rs.basisVar[pos]
			rs.status[old] = nbLower
			rs.posOf[old] = -1
			rs.basisVar[pos] = q
			rs.status[q] = inBasis
			rs.posOf[q] = int32(pos)
			rs.lu.addEta(w, pos)
		}

		// Fresh factorization of the updated basis in a second LU.
		var fresh basisLU
		fresh.factorize(rs)
		if fresh.deficient > 0 {
			continue // degenerate draw; equivalence only claimed for nonsingular updates
		}
		a := make([]float64, m)
		for i := range a {
			a[i] = r.Float64()*4 - 2
		}
		viaEta := make([]float64, m)
		viaFresh := make([]float64, m)
		rs.lu.ftran(append([]float64(nil), a...), viaEta)
		fresh.ftran(append([]float64(nil), a...), viaFresh)
		if d := maxAbsDiff(viaEta, viaFresh); d > 1e-7 {
			t.Fatalf("trial %d: eta ftran deviates from refactorization by %g", trial, d)
		}
		rs.lu.btran(append([]float64(nil), a...), viaEta)
		fresh.btran(append([]float64(nil), a...), viaFresh)
		if d := maxAbsDiff(viaEta, viaFresh); d > 1e-7 {
			t.Fatalf("trial %d: eta btran deviates from refactorization by %g", trial, d)
		}
	}
}
