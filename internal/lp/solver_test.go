package lp

import (
	"math"
	"math/rand"
	"testing"
)

// buildTransport fills p with a small transport-like problem whose shape
// is constant but whose costs and right-hand sides vary with the
// parameters — the same-shape sequence profile of the baseline interval
// and receding-horizon LPs.
func buildTransport(p *Problem, demand, cap1, cap2, c1, c2 float64) (x1, x2, short VarID) {
	x1 = p.AddVariable("x1", 0, cap1, c1)
	x2 = p.AddVariable("x2", 0, cap2, c2)
	short = p.AddVariable("short", 0, math.Inf(1), 1e4)
	p.AddConstraint(EQ, demand,
		Term{Var: x1, Coeff: 1}, Term{Var: x2, Coeff: 1}, Term{Var: short, Coeff: 1})
	p.AddConstraint(LE, cap1+cap2,
		Term{Var: x1, Coeff: 1}, Term{Var: x2, Coeff: 2})
	return x1, x2, short
}

// TestSolverSolveMatchesMinimize pins the cold Solver path to the
// historical Minimize results across a spread of random problems: same
// status, same objective, same values, bit for bit.
func TestSolverSolveMatchesMinimize(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := NewSolver()
	for it := 0; it < 200; it++ {
		p := NewProblem()
		nv := 1 + rng.Intn(6)
		vars := make([]VarID, nv)
		for i := range vars {
			lo := rng.Float64() * 2
			hi := lo + rng.Float64()*3
			vars[i] = p.AddVariable("", lo, hi, rng.NormFloat64()*10)
		}
		for c := 0; c < 1+rng.Intn(4); c++ {
			terms := make([]Term, 0, nv)
			for i := range vars {
				if rng.Float64() < 0.7 {
					terms = append(terms, Term{Var: vars[i], Coeff: rng.NormFloat64()})
				}
			}
			if len(terms) == 0 {
				terms = append(terms, Term{Var: vars[0], Coeff: 1})
			}
			rel := []Relation{LE, GE, EQ}[rng.Intn(3)]
			p.AddConstraint(rel, rng.NormFloat64()*3, terms...)
		}

		want, errW := p.Minimize()
		got, errG := s.Solve(p)
		if (errW != nil) != (errG != nil) {
			t.Fatalf("iter %d: error mismatch: %v vs %v", it, errW, errG)
		}
		if errW != nil {
			continue
		}
		if want.Status != got.Status {
			t.Fatalf("iter %d: status %v vs %v", it, want.Status, got.Status)
		}
		if want.Status != Optimal {
			continue
		}
		if want.Objective != got.Objective {
			t.Fatalf("iter %d: objective %v vs %v", it, want.Objective, got.Objective)
		}
		if want.Iterations != got.Iterations {
			t.Fatalf("iter %d: iterations %d vs %d", it, want.Iterations, got.Iterations)
		}
		for i := range vars {
			if want.Value(vars[i]) != got.Value(vars[i]) {
				t.Fatalf("iter %d: value[%d] %v vs %v",
					it, i, want.Value(vars[i]), got.Value(vars[i]))
			}
		}
	}
}

// TestSolveWarmEqualsCold runs a same-shape problem sequence through a
// warm-started solver and through per-problem cold solves: the solutions
// must agree to within accumulated round-off (the pivot paths differ, so
// the shared optimal vertex can differ in the last ulp) — the basis-reuse
// contract the baseline warm starts rely on. Byte-exactness of everything
// downstream is enforced end to end by TestSuiteGolden.
func TestSolveWarmEqualsCold(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	warm := NewSolver()
	warmUsed := false
	for it := 0; it < 100; it++ {
		demand := 1 + rng.Float64()*4
		cap1 := 1 + rng.Float64()*2
		cap2 := 1 + rng.Float64()*2
		c1 := 5 + rng.Float64()*20
		c2 := 5 + rng.Float64()*20

		pw := NewProblem()
		x1w, x2w, shw := buildTransport(pw, demand, cap1, cap2, c1, c2)
		pc := NewProblem()
		x1c, x2c, shc := buildTransport(pc, demand, cap1, cap2, c1, c2)

		got, err := warm.SolveWarm(pw)
		if err != nil {
			t.Fatal(err)
		}
		cold, err := pc.Minimize()
		if err != nil {
			t.Fatal(err)
		}
		if got.Status != cold.Status {
			t.Fatalf("iter %d: status %v vs %v", it, got.Status, cold.Status)
		}
		if math.Abs(got.Value(x1w)-cold.Value(x1c)) > 1e-9 ||
			math.Abs(got.Value(x2w)-cold.Value(x2c)) > 1e-9 ||
			math.Abs(got.Value(shw)-cold.Value(shc)) > 1e-9 {
			t.Fatalf("iter %d: warm (%v,%v,%v) != cold (%v,%v,%v)",
				it, got.Value(x1w), got.Value(x2w), got.Value(shw),
				cold.Value(x1c), cold.Value(x2c), cold.Value(shc))
		}
		if math.Abs(got.Objective-cold.Objective) > 1e-9 {
			t.Fatalf("iter %d: objective %v vs %v", it, got.Objective, cold.Objective)
		}
		if it > 0 && got.Iterations < cold.Iterations {
			warmUsed = true
		}
	}
	if !warmUsed {
		t.Error("warm starts never reduced the pivot count — basis reuse is not engaging")
	}
}

// TestSolveWarmShapeChangeFallsBack interleaves two different problem
// shapes through one solver; every solve must still be exact (the warm
// basis is only reused within a matching shape).
func TestSolveWarmShapeChangeFallsBack(t *testing.T) {
	s := NewSolver()
	for it := 0; it < 10; it++ {
		if it%2 == 0 {
			p := NewProblem()
			x1, _, _ := buildTransport(p, 2.5, 2, 2, 10, 20)
			sol, err := s.SolveWarm(p)
			if err != nil || sol.Status != Optimal {
				t.Fatalf("iter %d: %v %v", it, err, sol.Status)
			}
			if math.Abs(sol.Value(x1)-2) > 1e-9 {
				t.Fatalf("iter %d: x1 = %v, want 2", it, sol.Value(x1))
			}
		} else {
			p := NewProblem()
			x := p.AddVariable("x", 0, 10, -1)
			y := p.AddVariable("y", 0, 10, -2)
			p.AddConstraint(LE, 12, Term{Var: x, Coeff: 1}, Term{Var: y, Coeff: 2})
			sol, err := s.SolveWarm(p)
			if err != nil || sol.Status != Optimal {
				t.Fatalf("iter %d: %v %v", it, err, sol.Status)
			}
			// x + 2y ≤ 12 binds: min −x − 2y = −(x + 2y) = −12.
			if math.Abs(sol.Objective-(-12)) > 1e-9 {
				t.Fatalf("iter %d: objective = %v, want -12", it, sol.Objective)
			}
		}
	}
}

// TestSolveWarmAfterInfeasible checks the solver recovers cleanly when a
// sequence passes through an infeasible instance.
func TestSolveWarmAfterInfeasible(t *testing.T) {
	s := NewSolver()
	feas := func(demand float64) *Problem {
		p := NewProblem()
		x := p.AddVariable("x", 0, 1, 1)
		y := p.AddVariable("y", 0, 1, 2)
		p.AddConstraint(EQ, demand, Term{Var: x, Coeff: 1}, Term{Var: y, Coeff: 1})
		return p
	}
	if sol, err := s.SolveWarm(feas(1.5)); err != nil || sol.Status != Optimal {
		t.Fatalf("first solve: %v %v", err, sol.Status)
	}
	if sol, err := s.SolveWarm(feas(5)); err != nil || sol.Status != Infeasible {
		t.Fatalf("infeasible solve: %v %v", err, sol.Status)
	}
	sol, err := s.SolveWarm(feas(0.5))
	if err != nil || sol.Status != Optimal {
		t.Fatalf("recovery solve: %v %v", err, sol.Status)
	}
	if math.Abs(sol.Objective-0.5) > 1e-9 {
		t.Fatalf("recovery objective = %v, want 0.5", sol.Objective)
	}
}

// TestSolverResetDropsWarmBasis exercises the explicit warm-state drop.
func TestSolverResetDropsWarmBasis(t *testing.T) {
	s := NewSolver()
	p := NewProblem()
	buildTransport(p, 2, 2, 2, 10, 20)
	if _, err := s.SolveWarm(p); err != nil {
		t.Fatal(err)
	}
	s.Reset()
	p2 := NewProblem()
	x1, _, _ := buildTransport(p2, 2, 2, 2, 10, 20)
	sol, err := s.SolveWarm(p2)
	if err != nil || sol.Status != Optimal {
		t.Fatalf("%v %v", err, sol.Status)
	}
	if math.Abs(sol.Value(x1)-2) > 1e-9 {
		t.Fatalf("x1 = %v, want 2", sol.Value(x1))
	}
}

// TestProblemResetReusesStorage pins the Reset contract: rebuilding a
// same-shape problem after Reset produces identical solves and reuses
// the constraint storage (no growth in capacity).
func TestProblemResetReusesStorage(t *testing.T) {
	p := NewProblem()
	buildTransport(p, 2, 2, 2, 10, 20)
	first, err := p.Minimize()
	if err != nil {
		t.Fatal(err)
	}
	p.Reset()
	if p.NumVariables() != 0 || p.NumConstraints() != 0 {
		t.Fatalf("Reset left %d vars, %d cons", p.NumVariables(), p.NumConstraints())
	}
	x1, _, _ := buildTransport(p, 2, 2, 2, 10, 20)
	second, err := p.Minimize()
	if err != nil {
		t.Fatal(err)
	}
	if first.Objective != second.Objective {
		t.Fatalf("objective changed across Reset: %v vs %v", first.Objective, second.Objective)
	}
	if second.Value(x1) != first.Value(x1) {
		t.Fatalf("value changed across Reset: %v vs %v", first.Value(x1), second.Value(x1))
	}
}
