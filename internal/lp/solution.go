package lp

import "fmt"

// Status reports the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal    Status = iota + 1 // an optimal basic feasible solution was found
	Infeasible                   // the constraints admit no solution
	Unbounded                    // the objective decreases without bound
)

// String returns a human-readable status name.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Solution holds the result of Problem.Minimize. Value and Objective are
// meaningful only when Status == Optimal.
type Solution struct {
	// Status classifies the solve outcome.
	Status Status
	// Objective is the optimal objective value (minimization).
	Objective float64
	// Iterations counts simplex pivots across both phases.
	Iterations int

	values []float64
}

// Value returns the optimal value of the given variable.
func (s *Solution) Value(v VarID) float64 {
	if s == nil || int(v) < 0 || int(v) >= len(s.values) {
		return 0
	}
	return s.values[v]
}

// Values returns a copy of all variable values, indexed by VarID.
func (s *Solution) Values() []float64 {
	out := make([]float64, len(s.values))
	copy(out, s.values)
	return out
}
