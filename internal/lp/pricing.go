package lp

import "math"

// Devex reference-framework pricing for the sparse revised simplex
// (Forrest & Goldfarb's approximate steepest edge). Each priced column
// carries a weight γ_j approximating ‖B⁻¹A_j‖² over the current
// reference framework; the entering column maximizes d_j²/γ_j, which
// steers the solve toward pivots that make real progress and cuts pivot
// counts on the staircase horizon LPs versus Dantzig pricing. Weights
// update from the pivot row's support only, so the cost per pivot is
// proportional to the pivot row's fill — the same hyper-sparse budget
// the FTRAN/BTRAN kernels run on. When the largest weight outgrows
// devexWeightMax the framework is re-anchored (all weights reset to 1);
// both the updates and the reset are deterministic functions of the
// pivot sequence.
const devexWeightMax = 1e8

// resetDevexWeights re-anchors the reference framework at the current
// basis: every priced column's weight returns to 1.
func (rs *revised) resetDevexWeights() {
	for j := range rs.gamma {
		rs.gamma[j] = 1
	}
	rs.gammaMax = 1
}

// recomputeDuals rebuilds the maintained reduced costs from scratch for
// the given phase: cB from the composite violation signs (phase 1) or
// the true costs (phase 2), one dense btran for y, then one pass over
// every priced column. Called at solve start, after refactorizations,
// on phase switches and whenever the incremental updates are flagged
// stale — an amortized O(m + nnz + n) complement to the per-pivot
// updates in updateDualsDevex.
func (rs *revised) recomputeDuals(phase1 bool) {
	for i := 0; i < rs.m; i++ {
		if phase1 {
			rs.cB[i] = float64(rs.sgn[i])
		} else if v := rs.basisVar[i]; int(v) < rs.n {
			rs.cB[i] = rs.cost[v]
		} else {
			rs.cB[i] = 0
		}
	}
	rs.lu.btran(rs.cB, rs.y)
	for j := 0; j < rs.n; j++ {
		d := -rs.colDot(j)
		if !phase1 {
			d += rs.cost[j]
		}
		rs.d[j] = d
	}
	rs.dPhase1 = phase1
	rs.dStale = false
}

// priceEnter selects the entering column from the maintained reduced
// costs. In the normal mode it scans rotating fixed-size segments of the
// column range and takes the best devex score d²/γ of the first segment
// holding any eligible column; in Bland mode (anti-cycling) it takes the
// lowest-numbered eligible column. Both are deterministic. The returned
// d is the reduced cost (negative for an at-lower entry, positive for
// at-upper); q is -1 when no column is eligible.
func (rs *revised) priceEnter(bland bool) (int, float64) {
	eligible := func(j int) (float64, bool) {
		st := rs.status[j]
		if st == inBasis || rs.ub[j] == 0 {
			return 0, false
		}
		d := rs.d[j]
		if st == nbLower {
			if d < -costTol {
				return d, true
			}
		} else if d > costTol {
			return d, true
		}
		return 0, false
	}
	if bland {
		for j := 0; j < rs.n; j++ {
			if d, ok := eligible(j); ok {
				return j, d
			}
		}
		return -1, 0
	}
	// Segment size trades scan cost against pivot quality: scanning a
	// fixed fraction of the columns each pivot keeps the scan cost
	// proportional to the problem while the devex scores keep the chosen
	// pivots effective. n/32 measured as fast as n/8 on the annual
	// horizon LP with no pivot-count regression; the 256 floor keeps
	// small problems effectively fully priced.
	seg := rs.n / 32
	if seg < 256 {
		seg = 256
	}
	nseg := (rs.n + seg - 1) / seg
	if nseg == 0 {
		nseg = 1
	}
	for s := 0; s < nseg; s++ {
		si := (rs.rotor + s) % nseg
		lo := si * seg
		hi := lo + seg
		if hi > rs.n {
			hi = rs.n
		}
		bestJ, bestD, bestS := -1, 0.0, 0.0
		for j := lo; j < hi; j++ {
			if d, ok := eligible(j); ok {
				if sc := d * d / rs.gamma[j]; sc > bestS {
					bestJ, bestD, bestS = j, d, sc
				}
			}
		}
		if bestJ >= 0 {
			rs.rotor = si
			return bestJ, bestD
		}
	}
	return -1, 0
}

// computePivotRow computes ρ = B⁻ᵀe_r (hyper-sparse when the basis
// allows) and scatters the pivot row α_j = ρᵀA_j over the priced
// columns into rs.alpha/rs.alphaIdx. Must run against the pre-pivot
// factorization, before applyPivot appends the pivot's eta.
func (rs *revised) computePivotRow(r int) {
	rs.rhoIdx, rs.rhoSparse = rs.lu.btranUnit(int32(r), rs.rho, rs.rhoIdx)
	rs.alphaIdx = rs.alphaIdx[:0]
	if rs.rhoSparse {
		for _, row := range rs.rhoIdx {
			rs.priceRow(row)
		}
	} else {
		for row := 0; row < rs.m; row++ {
			rs.priceRow(int32(row))
		}
	}
}

// priceRow accumulates one row's contribution to the pivot row: the
// structural entries come from the standard form's row-major storage,
// the slack entry from the row's recorded slack sign.
func (rs *revised) priceRow(row int32) {
	pr := rs.rho[row]
	if pr == 0 {
		return
	}
	sf := rs.sf
	for e := sf.rowStart[row]; e < sf.rowStart[row+1]; e++ {
		j := sf.rcol[e]
		if !rs.amark[j] {
			rs.amark[j] = true
			rs.alphaIdx = append(rs.alphaIdx, j)
		}
		rs.alpha[j] += pr * sf.rval[e]
	}
	if s := rs.slackOf[row]; s >= 0 {
		if !rs.amark[s] {
			rs.amark[s] = true
			rs.alphaIdx = append(rs.alphaIdx, s)
		}
		rs.alpha[s] += pr * rs.slackSign[row]
	}
}

// updateDualsDevex applies the pivot's rank-one update to the maintained
// reduced costs and devex weights over the pivot row's support, then
// clears the alpha/rho scratch. Runs after applyPivot (statuses already
// reflect the new basis), with the pre-pivot reduced cost dq of the
// entering column, the pivot element arq, the leaving column lv and the
// pre-pivot feasibility sign sgnR of the pivot position. The update
// assumes the leaving variable exits at a bound with cost replacement
// d_q/α_rq — exactly the transition the ratio test constructs; landings
// outside a bound are flagged stale elsewhere.
//
// The leaving column is set explicitly rather than through the loop:
// its maintained d went stale while it was basic (basic columns are
// skipped). Its true pre-pivot reduced cost is its nonbasic cost minus
// yᵀA_lv = cB[r] — zero in phase 2, where basic and nonbasic costs
// coincide, but −sgnR in phase 1, where the composite cost of a basic
// variable at an infeasible position differs from its nonbasic cost of
// zero.
func (rs *revised) updateDualsDevex(q, r int, dq, arq float64, lv int32, sgnR int8) {
	ratio := dq / arq
	gscale := rs.gamma[q] / (arq * arq)
	for _, j := range rs.alphaIdx {
		a := rs.alpha[j]
		rs.alpha[j] = 0
		rs.amark[j] = false
		if int(j) == q || rs.status[j] == inBasis {
			continue
		}
		rs.d[j] -= ratio * a
		if g := a * a * gscale; g > rs.gamma[j] {
			rs.gamma[j] = g
			if g > rs.gammaMax {
				rs.gammaMax = g
			}
		}
	}
	rs.d[q] = 0
	if int(lv) < rs.n {
		dlv := -ratio
		if rs.dPhase1 {
			dlv -= float64(sgnR)
		}
		rs.d[lv] = dlv
		g := gscale
		if g < 1 {
			g = 1
		}
		rs.gamma[lv] = g
		if g > rs.gammaMax {
			rs.gammaMax = g
		}
	}
	rs.clearRho()
	if rs.gammaMax > devexWeightMax {
		rs.resetDevexWeights()
	}
}

// clearRho restores the all-zero invariant of the btranUnit output
// buffer, over the sparse pattern when one is available.
func (rs *revised) clearRho() {
	if rs.rhoSparse {
		for _, i := range rs.rhoIdx {
			rs.rho[i] = 0
		}
	} else {
		for i := range rs.rho {
			rs.rho[i] = 0
		}
	}
}

// clearW restores the all-zero invariant of the ftran output buffer.
func (rs *revised) clearW() {
	if rs.wSparse {
		for _, i := range rs.wIdx {
			rs.w[i] = 0
		}
	} else {
		for i := range rs.w {
			rs.w[i] = 0
		}
	}
}

// sgnOfVal classifies a basic value against [0, ub] with a scale-aware
// tolerance: the absolute feasTol is widened proportionally to the
// magnitude of the value/bound, so annual-scale rows (basic values in
// the thousands) are not flagged infeasible by plain float round-off.
// The dense tableau keeps its absolute test; this is the sparse path
// only. Returns -1 below the lower bound, +1 above the upper, 0 when
// feasible.
func sgnOfVal(x, ub float64) int8 {
	if x < -feasTol*(1+math.Abs(x)) {
		return -1
	}
	if x > ub+feasTol*(1+ub) {
		return 1
	}
	return 0
}

// rescanInfeasibility rebuilds the incremental feasibility signs and
// counter from the current basic values and returns the summed
// violation. O(m); called at solve start, after refactorizations and at
// terminal-status confirmation — the per-pivot path updates signs only
// over the pivot's sparse support.
func (rs *revised) rescanInfeasibility() float64 {
	rs.ninf = 0
	f := 0.0
	for i, x := range rs.xB {
		ubv := rs.ubOf(rs.basisVar[i])
		sg := sgnOfVal(x, ubv)
		rs.sgn[i] = sg
		if sg < 0 {
			rs.ninf++
			f -= x
		} else if sg > 0 {
			rs.ninf++
			f += x - ubv
		}
	}
	return f
}

// updateSgnAt re-classifies one basis position after its value moved,
// maintaining the infeasibility counter. An unexpected sign change while
// phase-1 duals are maintained invalidates them (the composite costs
// changed under the pricing), so the next iteration recomputes.
func (rs *revised) updateSgnAt(i int) {
	sg := sgnOfVal(rs.xB[i], rs.ubOf(rs.basisVar[i]))
	old := rs.sgn[i]
	if sg == old {
		return
	}
	if old != 0 {
		rs.ninf--
	}
	if sg != 0 {
		rs.ninf++
	}
	rs.sgn[i] = sg
	if rs.dPhase1 {
		rs.dStale = true
	}
}
