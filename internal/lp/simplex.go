package lp

import (
	"math"
)

// Numerical tolerances for the tableau simplex.
const (
	pivotTol = 1e-9  // minimum |pivot| accepted
	costTol  = 1e-9  // reduced-cost optimality tolerance
	feasTol  = 1e-7  // phase-1 feasibility tolerance
	stallWin = 256   // pivots without improvement before switching to Bland
	improveE = 1e-12 // minimum objective improvement counted as progress
)

// tableau is a dense simplex tableau with simultaneous phase-1/phase-2
// objective rows.
type tableau struct {
	m, n     int         // active rows, total columns (incl. slacks/artificials)
	rows     [][]float64 // m rows × n coefficients (current B⁻¹A)
	rhs      []float64   // current B⁻¹b (kept ≥ 0 up to roundoff)
	basis    []int       // basis[i] = column basic in row i
	obj      []float64   // phase-2 reduced-cost row
	objVal   float64     // phase-2 objective of current basis (to be negated)
	p1obj    []float64   // phase-1 reduced-cost row
	p1val    float64     // phase-1 objective of current basis
	artStart int         // first artificial column; columns ≥ artStart are banned in phase 2
	inPhase1 bool
	bland    bool // permanent Bland's-rule mode after stalls
	stall    int
	pivots   int
}

// Minimize solves the problem, returning a Solution whose Status reports
// optimality, infeasibility or unboundedness. An error is returned only for
// structurally invalid problems or when the iteration budget is exhausted.
func (p *Problem) Minimize() (*Solution, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	sf := p.toStandardForm()
	t := newTableau(sf)

	maxIter := p.maxIter
	if maxIter <= 0 {
		maxIter = 200 + 60*(t.m+t.n)
	}

	// Phase 1: minimize the sum of artificial variables.
	t.inPhase1 = true
	status, err := t.iterate(maxIter)
	if err != nil {
		return nil, err
	}
	if status == Unbounded {
		// Phase-1 objective is bounded below by 0; unbounded here means a bug.
		return nil, errNumericalBug
	}
	if t.p1val > feasTol {
		return &Solution{Status: Infeasible, Iterations: t.pivots}, nil
	}
	t.leavePhase1()

	// Phase 2: minimize the true objective.
	status, err = t.iterate(maxIter)
	if err != nil {
		return nil, err
	}
	if status == Unbounded {
		return &Solution{Status: Unbounded, Iterations: t.pivots}, nil
	}

	y := make([]float64, sf.ncols)
	for i, col := range t.basis {
		if col < sf.ncols {
			y[col] = t.rhs[i]
		}
	}
	return &Solution{
		Status:     Optimal,
		Objective:  t.objVal + sf.offset,
		Iterations: t.pivots,
		values:     sf.recoverValues(y),
	}, nil
}

// newTableau builds the initial tableau: slack columns for ≤ rows,
// surplus+artificial for ≥ rows, artificial for = rows, with rhs ≥ 0.
func newTableau(sf *standardForm) *tableau {
	m := len(sf.rows)
	// Count auxiliary columns.
	slacks, arts := 0, 0
	for _, r := range sf.rows {
		rel, rhs := r.rel, r.rhs
		if rhs < 0 {
			rel = flipRel(rel)
		}
		switch rel {
		case LE:
			slacks++
		case GE:
			slacks++ // surplus
			arts++
		case EQ:
			arts++
		}
	}
	n := sf.ncols + slacks + arts
	t := &tableau{
		m:        m,
		n:        n,
		rows:     make([][]float64, m),
		rhs:      make([]float64, m),
		basis:    make([]int, m),
		obj:      make([]float64, n+1),
		p1obj:    make([]float64, n+1),
		artStart: sf.ncols + slacks,
	}

	slackCol := sf.ncols
	artCol := t.artStart
	for i, r := range sf.rows {
		row := make([]float64, n)
		sign := 1.0
		rel, rhs := r.rel, r.rhs
		if rhs < 0 {
			sign, rhs, rel = -1, -rhs, flipRel(rel)
		}
		for j, c := range r.coeffs {
			row[j] = sign * c
		}
		switch rel {
		case LE:
			row[slackCol] = 1
			t.basis[i] = slackCol
			slackCol++
		case GE:
			row[slackCol] = -1
			slackCol++
			row[artCol] = 1
			t.basis[i] = artCol
			artCol++
		case EQ:
			row[artCol] = 1
			t.basis[i] = artCol
			artCol++
		}
		t.rows[i] = row
		t.rhs[i] = rhs
	}

	// Phase-2 cost row: reduced costs w.r.t. the initial basis. Initial basic
	// columns are slacks/artificials with zero phase-2 cost, so the row is
	// simply the cost vector.
	for j := 0; j < sf.ncols; j++ {
		t.obj[j] = sf.costs[j]
	}

	// Phase-1 cost row: cost 1 on artificials; eliminate basic artificials.
	// Index n of an objective row holds −(objective value of current basis).
	for j := t.artStart; j < n; j++ {
		t.p1obj[j] = 1
	}
	for i, col := range t.basis {
		if col >= t.artStart {
			for j := 0; j < n; j++ {
				t.p1obj[j] -= t.rows[i][j]
			}
			t.p1obj[n] -= t.rhs[i]
		}
	}
	t.p1val = -t.p1obj[n]
	return t
}

func flipRel(r Relation) Relation {
	switch r {
	case LE:
		return GE
	case GE:
		return LE
	default:
		return EQ
	}
}

// iterate runs simplex pivots until optimality or unboundedness for the
// current phase.
func (t *tableau) iterate(maxIter int) (Status, error) {
	for {
		if t.pivots >= maxIter {
			return 0, ErrIterLimit
		}
		enter := t.chooseEntering()
		if enter < 0 {
			return Optimal, nil
		}
		leave := t.chooseLeaving(enter)
		if leave < 0 {
			return Unbounded, nil
		}
		t.pivot(leave, enter)
	}
}

// currentObjRow returns the active phase's reduced-cost row.
func (t *tableau) currentObjRow() []float64 {
	if t.inPhase1 {
		return t.p1obj
	}
	return t.obj
}

// columnAllowed reports whether column j may enter the basis in the current
// phase (artificials are banned once phase 1 completes).
func (t *tableau) columnAllowed(j int) bool {
	return t.inPhase1 || j < t.artStart
}

// chooseEntering picks the entering column: Dantzig's rule normally,
// Bland's rule when stalled. Returns -1 at optimality.
func (t *tableau) chooseEntering() int {
	objRow := t.currentObjRow()
	if t.bland {
		for j := 0; j < t.n; j++ {
			if t.columnAllowed(j) && objRow[j] < -costTol {
				return j
			}
		}
		return -1
	}
	best, bestVal := -1, -costTol
	for j := 0; j < t.n; j++ {
		if t.columnAllowed(j) && objRow[j] < bestVal {
			best, bestVal = j, objRow[j]
		}
	}
	return best
}

// chooseLeaving runs the ratio test for entering column e, breaking ties by
// the smallest basis column (lexicographic Bland tie-break). Returns -1 when
// the column is unbounded.
func (t *tableau) chooseLeaving(e int) int {
	best := -1
	bestRatio := math.Inf(1)
	for i := 0; i < t.m; i++ {
		a := t.rows[i][e]
		if a <= pivotTol {
			continue
		}
		ratio := t.rhs[i] / a
		if ratio < bestRatio-1e-12 ||
			(ratio <= bestRatio+1e-12 && best >= 0 && t.basis[i] < t.basis[best]) {
			best, bestRatio = i, ratio
		}
	}
	return best
}

// pivot performs the Gauss-Jordan pivot on (row r, column e), updating both
// objective rows and objective values.
func (t *tableau) pivot(r, e int) {
	prevObj := t.objVal
	prevP1 := t.p1val

	pr := t.rows[r]
	pv := pr[e]
	inv := 1 / pv
	for j := 0; j < t.n; j++ {
		pr[j] *= inv
	}
	t.rhs[r] *= inv
	pr[e] = 1 // kill roundoff on the pivot element

	for i := 0; i < t.m; i++ {
		if i == r {
			continue
		}
		f := t.rows[i][e]
		if f == 0 {
			continue
		}
		ri := t.rows[i]
		for j := 0; j < t.n; j++ {
			ri[j] -= f * pr[j]
		}
		ri[e] = 0
		t.rhs[i] -= f * t.rhs[r]
		if t.rhs[i] < 0 && t.rhs[i] > -1e-11 {
			t.rhs[i] = 0
		}
	}
	for _, objRow := range [][]float64{t.obj, t.p1obj} {
		f := objRow[e]
		if f == 0 {
			continue
		}
		for j := 0; j < t.n; j++ {
			objRow[j] -= f * pr[j]
		}
		objRow[e] = 0
		objRow[t.n] -= f * t.rhs[r]
	}
	t.objVal = -t.obj[t.n]
	t.p1val = -t.p1obj[t.n]
	t.basis[r] = e
	t.pivots++

	// Stall detection: switch to Bland's rule when the active objective has
	// not improved for a while (anti-cycling guarantee).
	improved := false
	if t.inPhase1 {
		improved = prevP1-t.p1val > improveE
	} else {
		improved = prevObj-t.objVal > improveE
	}
	if improved {
		t.stall = 0
	} else {
		t.stall++
		if t.stall >= stallWin {
			t.bland = true
		}
	}
}

// leavePhase1 transitions the tableau to phase 2: artificials still in the
// basis (at value zero) are driven out where possible; rows that cannot be
// pivoted are redundant and are deactivated.
func (t *tableau) leavePhase1() {
	t.inPhase1 = false
	for i := 0; i < t.m; i++ {
		if t.basis[i] < t.artStart {
			continue
		}
		// Find any admissible pivot column in this degenerate row.
		pivotCol := -1
		for j := 0; j < t.artStart; j++ {
			if math.Abs(t.rows[i][j]) > pivotTol {
				pivotCol = j
				break
			}
		}
		if pivotCol >= 0 {
			t.pivot(i, pivotCol)
			continue
		}
		// Redundant row: remove it by swapping with the last active row.
		last := t.m - 1
		t.rows[i], t.rows[last] = t.rows[last], t.rows[i]
		t.rhs[i], t.rhs[last] = t.rhs[last], t.rhs[i]
		t.basis[i], t.basis[last] = t.basis[last], t.basis[i]
		t.m--
		i--
	}
	t.stall, t.bland = 0, false
}
