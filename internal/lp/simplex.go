package lp

import (
	"math"

	"github.com/smartdpss/smartdpss/internal/scratch"
)

// Numerical tolerances for the tableau simplex.
const (
	pivotTol = 1e-9  // minimum |pivot| accepted
	costTol  = 1e-9  // reduced-cost optimality tolerance
	feasTol  = 1e-7  // phase-1 feasibility tolerance
	warmTol  = 1e-7  // minimum |pivot| accepted while re-installing a warm basis
	stallWin = 256   // pivots without improvement before switching to Bland
	improveE = 1e-12 // minimum objective improvement counted as progress
)

// tableau is a dense simplex tableau with simultaneous phase-1/phase-2
// objective rows. All buffers are owned by the tableau and reused across
// init calls: rows are views into one flat arena, so a rebuild allocates
// nothing once the buffers have grown to the problem's size.
type tableau struct {
	m, n     int         // active rows, total columns (incl. slacks/artificials)
	arena    []float64   // m×n backing storage for rows
	rows     [][]float64 // m rows × n coefficients (current B⁻¹A)
	rhs      []float64   // current B⁻¹b (kept ≥ 0 up to roundoff)
	basis    []int       // basis[i] = column basic in row i
	obj      []float64   // phase-2 reduced-cost row
	objVal   float64     // phase-2 objective of current basis (to be negated)
	p1obj    []float64   // phase-1 reduced-cost row
	p1val    float64     // phase-1 objective of current basis
	artStart int         // first artificial column; columns ≥ artStart are banned in phase 2
	inPhase1 bool
	bland    bool // permanent Bland's-rule mode after stalls
	stall    int
	pivots   int

	// Bounded-variable state (Problem.SetBounded). Every column carries an
	// upper bound (+Inf for slacks, artificials and unbounded structurals);
	// flip[j] records that column j currently stands for the complement
	// ub[j] − x of its variable, the reflection that keeps every nonbasic
	// column "at zero" so the entering rule needs no at-upper special case.
	// In row mode every ub is +Inf, flip stays all-false, and the pivot
	// loop's arithmetic is bit-for-bit the historical sequence.
	ub    []float64
	flip  []bool
	hasUB bool // any finite column bound (false in row mode)

	mark    []int // column membership scratch for applyBasis
	markGen int
}

// init (re)builds the initial tableau from the standard form: slack
// columns for ≤ rows, surplus+artificial for ≥ rows, artificial for =
// rows, with rhs ≥ 0. Every cell the simplex reads is overwritten here,
// so reusing buffers across solves cannot leak state between problems.
func (t *tableau) init(sf *standardForm) {
	m := len(sf.rows)
	// Count auxiliary columns.
	slacks, arts := 0, 0
	for _, r := range sf.rows {
		rel, rhs := r.rel, r.rhs
		if rhs < 0 {
			rel = flipRel(rel)
		}
		switch rel {
		case LE:
			slacks++
		case GE:
			slacks++ // surplus
			arts++
		case EQ:
			arts++
		}
	}
	n := sf.ncols + slacks + arts
	t.m, t.n = m, n
	t.artStart = sf.ncols + slacks
	t.arena = scratch.Zeroed(t.arena, m*n)
	if cap(t.rows) < m {
		t.rows = make([][]float64, m)
	}
	t.rows = t.rows[:m]
	t.rhs = scratch.Zeroed(t.rhs, m)
	t.basis = scratch.For(t.basis, m)
	t.obj = scratch.Zeroed(t.obj, n+1)
	t.p1obj = scratch.Zeroed(t.p1obj, n+1)
	t.objVal, t.p1val = 0, 0
	t.inPhase1, t.bland = false, false
	t.stall, t.pivots = 0, 0

	// Column bounds: structural columns inherit the standard form's bounds
	// (finite only in bounded mode); slacks, surpluses and artificials are
	// unbounded above.
	t.ub = scratch.For(t.ub, n)
	t.flip = scratch.Zeroed(t.flip, n)
	t.hasUB = false
	for j := 0; j < n; j++ {
		t.ub[j] = math.Inf(1)
	}
	if sf.bounded {
		copy(t.ub[:sf.ncols], sf.upper)
		for j := 0; j < sf.ncols; j++ {
			if !math.IsInf(t.ub[j], 1) {
				t.hasUB = true
				break
			}
		}
	}

	slackCol := sf.ncols
	artCol := t.artStart
	for i, r := range sf.rows {
		row := t.arena[i*n : (i+1)*n : (i+1)*n]
		t.rows[i] = row
		sign := 1.0
		rel, rhs := r.rel, r.rhs
		if rhs < 0 {
			sign, rhs, rel = -1, -rhs, flipRel(rel)
		}
		for j, c := range r.coeffs {
			row[j] = sign * c
		}
		switch rel {
		case LE:
			row[slackCol] = 1
			t.basis[i] = slackCol
			slackCol++
		case GE:
			row[slackCol] = -1
			slackCol++
			row[artCol] = 1
			t.basis[i] = artCol
			artCol++
		case EQ:
			row[artCol] = 1
			t.basis[i] = artCol
			artCol++
		}
		t.rhs[i] = rhs
	}

	// Phase-2 cost row: reduced costs w.r.t. the initial basis. Initial basic
	// columns are slacks/artificials with zero phase-2 cost, so the row is
	// simply the cost vector.
	for j := 0; j < sf.ncols; j++ {
		t.obj[j] = sf.costs[j]
	}

	// Phase-1 cost row: cost 1 on artificials; eliminate basic artificials.
	// Index n of an objective row holds −(objective value of current basis).
	for j := t.artStart; j < n; j++ {
		t.p1obj[j] = 1
	}
	for i, col := range t.basis {
		if col >= t.artStart {
			for j := 0; j < n; j++ {
				t.p1obj[j] -= t.rows[i][j]
			}
			t.p1obj[n] -= t.rhs[i]
		}
	}
	t.p1val = -t.p1obj[n]
}

func flipRel(r Relation) Relation {
	switch r {
	case LE:
		return GE
	case GE:
		return LE
	default:
		return EQ
	}
}

// iterate runs simplex pivots (and, in bounded mode, bound flips) until
// optimality or unboundedness for the current phase.
func (t *tableau) iterate(maxIter int) (Status, error) {
	for {
		if t.pivots >= maxIter {
			return 0, ErrIterLimit
		}
		enter := t.chooseEntering()
		if enter < 0 {
			return Optimal, nil
		}
		leave, flip := t.chooseLeaving(enter)
		if flip {
			t.flipBound(enter)
			continue
		}
		if leave < 0 {
			return Unbounded, nil
		}
		if t.rows[leave][enter] < 0 {
			// The blocking basic variable reaches its upper bound, not
			// zero: rewrite its row in terms of the complement so the
			// ordinary pivot drives that complement to zero.
			t.reflectBasic(leave)
		}
		t.pivot(leave, enter)
	}
}

// currentObjRow returns the active phase's reduced-cost row.
func (t *tableau) currentObjRow() []float64 {
	if t.inPhase1 {
		return t.p1obj
	}
	return t.obj
}

// columnAllowed reports whether column j may enter the basis in the current
// phase (artificials are banned once phase 1 completes).
func (t *tableau) columnAllowed(j int) bool {
	return t.inPhase1 || j < t.artStart
}

// chooseEntering picks the entering column: Dantzig's rule normally,
// Bland's rule when stalled. Returns -1 at optimality.
func (t *tableau) chooseEntering() int {
	objRow := t.currentObjRow()
	if t.bland {
		for j := 0; j < t.n; j++ {
			if t.columnAllowed(j) && objRow[j] < -costTol {
				return j
			}
		}
		return -1
	}
	best, bestVal := -1, -costTol
	for j := 0; j < t.n; j++ {
		if t.columnAllowed(j) && objRow[j] < bestVal {
			best, bestVal = j, objRow[j]
		}
	}
	return best
}

// chooseLeaving runs the ratio test for entering column e, breaking ties
// by the smallest basis column (lexicographic Bland tie-break). In bounded
// mode three limits compete: a basic variable driven to zero, a basic
// variable driven to its upper bound (the reflection case, signalled by a
// negative entry in its row), and the entering variable reaching its own
// upper bound (a bound flip with no basis change, signalled by flip=true).
// Rows win exact ties against the flip so the degenerate behavior stays
// pivot-shaped. (row=-1, flip=false) means the column is unbounded.
func (t *tableau) chooseLeaving(e int) (row int, flip bool) {
	best := -1
	bestRatio := math.Inf(1)
	for i := 0; i < t.m; i++ {
		a := t.rows[i][e]
		var ratio float64
		switch {
		case a > pivotTol:
			ratio = t.rhs[i] / a
		case t.hasUB && a < -pivotTol && !math.IsInf(t.ub[t.basis[i]], 1):
			ratio = (t.ub[t.basis[i]] - t.rhs[i]) / -a
		default:
			continue
		}
		if ratio < bestRatio-1e-12 ||
			(ratio <= bestRatio+1e-12 && best >= 0 && t.basis[i] < t.basis[best]) {
			best, bestRatio = i, ratio
		}
	}
	if t.hasUB && t.ub[e] < bestRatio-1e-12 {
		return -1, true
	}
	return best, false
}

// pivot performs the Gauss-Jordan pivot on (row r, column e), updating both
// objective rows and objective values.
func (t *tableau) pivot(r, e int) {
	prevObj := t.objVal
	prevP1 := t.p1val

	pr := t.rows[r]
	pv := pr[e]
	inv := 1 / pv
	for j := 0; j < t.n; j++ {
		pr[j] *= inv
	}
	t.rhs[r] *= inv
	pr[e] = 1 // kill roundoff on the pivot element

	for i := 0; i < t.m; i++ {
		if i == r {
			continue
		}
		f := t.rows[i][e]
		if f == 0 {
			continue
		}
		ri := t.rows[i]
		for j := 0; j < t.n; j++ {
			ri[j] -= f * pr[j]
		}
		ri[e] = 0
		t.rhs[i] -= f * t.rhs[r]
		if t.rhs[i] < 0 && t.rhs[i] > -1e-11 {
			t.rhs[i] = 0
		}
	}
	for _, objRow := range [2][]float64{t.obj, t.p1obj} {
		f := objRow[e]
		if f == 0 {
			continue
		}
		for j := 0; j < t.n; j++ {
			objRow[j] -= f * pr[j]
		}
		objRow[e] = 0
		objRow[t.n] -= f * t.rhs[r]
	}
	t.objVal = -t.obj[t.n]
	t.p1val = -t.p1obj[t.n]
	t.basis[r] = e
	t.pivots++
	t.trackProgress(prevObj, prevP1)
}

// trackProgress runs the stall detection shared by pivots and bound
// flips: switch to Bland's rule when the active objective has not
// improved for a while (anti-cycling guarantee).
func (t *tableau) trackProgress(prevObj, prevP1 float64) {
	improved := false
	if t.inPhase1 {
		improved = prevP1-t.p1val > improveE
	} else {
		improved = prevObj-t.objVal > improveE
	}
	if improved {
		t.stall = 0
	} else {
		t.stall++
		if t.stall >= stallWin {
			t.bland = true
		}
	}
}

// flipBound moves nonbasic column e from its active bound to the opposite
// one by substituting the complement variable ub[e] − x everywhere the
// column appears. No basis change happens; the move strictly improves the
// active objective (the entering rule admitted e with a negative reduced
// cost and ub[e] > 0), so flips cannot cycle. Counted against the pivot
// budget like a pivot.
func (t *tableau) flipBound(e int) {
	prevObj, prevP1 := t.objVal, t.p1val
	d := t.ub[e]
	for i := 0; i < t.m; i++ {
		ri := t.rows[i]
		a := ri[e]
		if a == 0 {
			continue
		}
		t.rhs[i] -= a * d
		ri[e] = -a
		if t.rhs[i] < 0 && t.rhs[i] > -1e-11 {
			t.rhs[i] = 0
		}
	}
	for _, objRow := range [2][]float64{t.obj, t.p1obj} {
		if f := objRow[e]; f != 0 {
			objRow[t.n] -= f * d
			objRow[e] = -f
		}
	}
	t.objVal = -t.obj[t.n]
	t.p1val = -t.p1obj[t.n]
	t.flip[e] = !t.flip[e]
	t.pivots++
	t.trackProgress(prevObj, prevP1)
}

// reflectBasic rewrites basic row r in terms of the complement of its
// basic variable (x = ub − x̃), used when the ratio test drives a basic
// variable to its upper bound: after the reflection the complement sits
// basic at ub − value ≥ 0 and the ordinary pivot drives it to zero. The
// reflected variable keeps its column index and bound; only flip[column]
// records the new orientation. Objective rows are untouched — a basic
// column's reduced cost is zero, and the current solution point does not
// move.
func (t *tableau) reflectBasic(r int) {
	b := t.basis[r]
	row := t.rows[r]
	for j := 0; j < t.n; j++ {
		row[j] = -row[j]
	}
	row[b] = 1
	t.rhs[r] = t.ub[b] - t.rhs[r]
	if t.rhs[r] < 0 && t.rhs[r] > -1e-11 {
		t.rhs[r] = 0
	}
	t.flip[b] = !t.flip[b]
}

// leavePhase1 transitions the tableau to phase 2: artificials still in the
// basis (at value zero) are driven out where possible; rows that cannot be
// pivoted are redundant and are deactivated.
func (t *tableau) leavePhase1() {
	t.inPhase1 = false
	for i := 0; i < t.m; i++ {
		if t.basis[i] < t.artStart {
			continue
		}
		// Find any admissible pivot column in this degenerate row.
		pivotCol := -1
		for j := 0; j < t.artStart; j++ {
			if math.Abs(t.rows[i][j]) > pivotTol {
				pivotCol = j
				break
			}
		}
		if pivotCol >= 0 {
			t.pivot(i, pivotCol)
			continue
		}
		// Redundant row: remove it by swapping with the last active row.
		last := t.m - 1
		t.rows[i], t.rows[last] = t.rows[last], t.rows[i]
		t.rhs[i], t.rhs[last] = t.rhs[last], t.rhs[i]
		t.basis[i], t.basis[last] = t.basis[last], t.basis[i]
		t.m--
		i--
	}
	t.stall, t.bland = 0, false
}

// applyBasis outcomes.
const (
	applyFailed = iota // a column could not be installed; tableau is dirty
	applyRepair        // basis installed, but primal infeasible for the new rhs
	applyOK            // basis installed and primal feasible
)

// applyBasis pivots the freshly initialized tableau onto the given basis
// (a column set saved from a previous optimal solve of a same-shape
// problem). Because the tableau is rebuilt from the new problem's
// coefficients before the pivots, no stale numerics survive — only the
// basis choice is reused. On applyOK phase 2 can run directly; on
// applyRepair the basis needs repairPrimal first; on applyFailed the
// tableau must be re-initialized for a cold solve.
func (t *tableau) applyBasis(basis []int) int {
	if len(basis) != t.m {
		return applyFailed
	}
	// Stamp the wanted columns so pivot rows whose current basic column is
	// itself wanted are never sacrificed.
	t.markGen++
	if cap(t.mark) < t.n {
		t.mark = make([]int, t.n)
	}
	t.mark = t.mark[:cap(t.mark)]
	for _, c := range basis {
		if c < 0 || c >= t.n || c >= t.artStart {
			return applyFailed
		}
		t.mark[c] = t.markGen
	}
	t.inPhase1 = false
	for _, c := range basis {
		// Already basic (e.g. a slack that is basic in the initial tableau).
		already := false
		for _, bc := range t.basis {
			if bc == c {
				already = true
				break
			}
		}
		if already {
			continue
		}
		// Pivot c in on the row with the largest admissible pivot among
		// rows whose basic column is not wanted.
		best, bestAbs := -1, warmTol
		for i := 0; i < t.m; i++ {
			if t.mark[t.basis[i]] == t.markGen {
				continue
			}
			if a := math.Abs(t.rows[i][c]); a > bestAbs {
				best, bestAbs = i, a
			}
		}
		if best < 0 {
			return applyFailed
		}
		t.pivot(best, c)
	}
	t.stall, t.bland = 0, false
	// Classify feasibility for the new right-hand side; tiny degenerate
	// negatives are clamped, anything larger needs the primal repair.
	feasible := true
	for i := 0; i < t.m; i++ {
		if t.rhs[i] < -feasTol {
			feasible = false
		} else if t.rhs[i] < 0 {
			t.rhs[i] = 0
		}
	}
	if !feasible {
		return applyRepair
	}
	return applyOK
}

// repairPrimal restores primal feasibility after applyBasis installed a
// warm basis that the new right-hand side leaves slightly infeasible —
// the typical warm-start state when both costs and rhs move between
// consecutive problems. It runs a composite phase 1 directly from the
// installed basis, minimizing the sum of infeasibilities
// w = Σ_{i: rhs_i < 0} (−rhs_i) without artificial variables: entering a
// column with negative directional derivative dw/dθ = Σ_{i∈I} a_ij and
// blocking at the first breakpoint — a feasible basic reaching zero, or
// an infeasible basic reaching feasibility. Only a handful of rows are
// infeasible after a warm install, so this converges in a few pivots
// where a from-scratch phase 1 would redo ~m of them.
//
// It reports whether feasibility was restored within the pivot budget;
// on false the tableau is dirty and the caller re-initializes for the
// exact cold path (misclassifying a truly infeasible problem is
// impossible: any stall or budget overrun falls back cold).
func (t *tableau) repairPrimal(maxIter int) bool {
	t.inPhase1 = false
	budget := t.m + 64
	for iter := 0; ; iter++ {
		// Collect the infeasible row set I; success when it is empty.
		infeasible := false
		for i := 0; i < t.m; i++ {
			if t.rhs[i] < -feasTol {
				infeasible = true
				break
			}
		}
		if !infeasible {
			for i := 0; i < t.m; i++ {
				if t.rhs[i] < 0 {
					t.rhs[i] = 0
				}
			}
			t.stall, t.bland = 0, false
			return true
		}
		if iter >= budget || t.pivots >= maxIter {
			return false
		}

		// Entering column: steepest decrease of the infeasibility sum.
		enter, bestD := -1, -costTol
		for j := 0; j < t.artStart; j++ {
			d := 0.0
			for i := 0; i < t.m; i++ {
				if t.rhs[i] < -feasTol {
					d += t.rows[i][j]
				}
			}
			if d < bestD {
				enter, bestD = j, d
			}
		}
		if enter < 0 {
			return false // no improving column: numerically stuck (or truly infeasible)
		}

		// Ratio test over both breakpoint kinds.
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < t.m; i++ {
			a := t.rows[i][enter]
			var ratio float64
			switch {
			case t.rhs[i] >= 0 && a > pivotTol:
				ratio = t.rhs[i] / a // feasible basic driven to zero
			case t.rhs[i] < -feasTol && a < -pivotTol:
				ratio = t.rhs[i] / a // infeasible basic reaching feasibility
			default:
				continue
			}
			if ratio < bestRatio-1e-12 ||
				(ratio <= bestRatio+1e-12 && leave >= 0 && t.basis[i] < t.basis[leave]) {
				leave, bestRatio = i, ratio
			}
		}
		if leave < 0 {
			// dw/dθ < 0 guarantees a blocking infeasible row; reaching here
			// means numerics broke down — fall back cold.
			return false
		}
		t.pivot(leave, enter)
	}
}
