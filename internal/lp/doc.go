// Package lp provides a dense, two-phase primal simplex solver for small
// and medium linear programs, written against the standard library only.
//
// The SmartDPSS paper solves its per-slot subproblems (P2, P4, P5) "using
// classical linear programming approaches, e.g., simplex method" with
// toolbox solvers such as Matlab's linprog. Go has no such solver in the
// standard library, so this package supplies the substrate.
//
// The solver accepts minimization problems over bounded variables:
//
//	min  cᵀx
//	s.t. aᵢᵀx {≤,=,≥} bᵢ   for each constraint i
//	     lo ≤ x ≤ hi       element-wise (lo may be -Inf, hi may be +Inf)
//
// Internally the problem is rewritten to standard form (equalities over
// non-negative variables) and solved with a two-phase tableau simplex.
// Entering variables are chosen by Dantzig's rule, falling back to Bland's
// rule when the objective stalls, which guarantees termination.
//
// The problems produced by SmartDPSS are tiny (2–6 variables per fine slot)
// or moderate (a few hundred variables for the per-day offline LP); a dense
// tableau is both simple and fast enough for those sizes.
package lp
