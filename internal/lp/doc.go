// Package lp provides a two-phase primal simplex solver for small and
// medium linear programs — a dense tableau by default, a sparse revised
// simplex behind Problem.SetSparse for large structured models — written
// against the standard library only. This comment is the solver's
// contract: the formulation it accepts, the pivoting and anti-cycling
// rules it runs, the determinism it guarantees, and the semantics of its
// capability switches (variable bounds, basis warm starts, sparsity).
// Every layer above — the per-slot P5 solver in internal/core, the
// interval/whole-horizon/receding-horizon LPs in internal/baseline —
// programs against this contract.
//
// The SmartDPSS paper solves its per-slot subproblems (P2, P4, P5) "using
// classical linear programming approaches, e.g., simplex method" with
// toolbox solvers such as Matlab's linprog. Go has no such solver in the
// standard library, so this package supplies the substrate.
//
// # Formulation
//
// The solver accepts minimization problems over bounded variables:
//
//	min  cᵀx
//	s.t. aᵢᵀx {≤,=,≥} bᵢ   for each constraint i
//	     lo ≤ x ≤ hi       element-wise (lo may be -Inf, hi may be +Inf)
//
// Internally the problem is rewritten to standard form (equalities over
// non-negative variables): finite lower bounds become shifts x = lo + y,
// a variable bounded only above becomes x = hi − y, free variables split
// into y⁺ − y⁻, and variables fixed at lo == hi are substituted out as
// constants. What happens to a finite upper bound on a shifted variable
// depends on the bound mode:
//
//   - Row mode (the default): the bound is lowered to one explicit
//     y ≤ hi − lo tableau row. This is the historical formulation; its
//     pivot sequence is frozen and byte-pinned by the golden suite.
//   - Bounded mode (Problem.SetBounded): the bound is recorded as a
//     column bound and handled natively by the bounded-variable
//     (revised-bound) pivot loop. No row is emitted, shrinking the
//     tableau by one row per upper-bounded variable — about 40% on the
//     box-constrained interval LPs of this repository (for the default
//     T = 24 interval LP: 242 rows → 145; for the one-row P5 LP: 5 → 1).
//
// # Pivoting and anti-cycling
//
// Both modes run the same two-phase dense tableau simplex: phase 1
// minimizes the sum of artificial variables (infeasibility), phase 2 the
// true objective with artificial columns banned. Entering columns are
// chosen by Dantzig's rule (most negative reduced cost); when the active
// objective fails to improve for 256 consecutive pivots the solver
// switches permanently to Bland's rule, which guarantees termination on
// degenerate problems (Beale's cycling example is a regression test).
// The ratio test breaks ties by the smallest basis column.
//
// In bounded mode the ratio test admits two additional limits: a basic
// variable reaching its own upper bound (the leaving column is rewritten
// in terms of its complement ub − x before the pivot), and the entering
// variable reaching its upper bound first (a bound flip — the column is
// replaced by its complement everywhere and no basis change happens).
// Nonbasic-at-upper-bound variables are therefore always represented as
// at-zero complements, so the entering rule, Bland's rule and the stall
// detector need no at-upper special case. Bound flips strictly improve
// the active objective and count against the pivot budget.
//
// # Determinism
//
// A solve is a pure function of the problem: no randomness, no
// time-dependence, no global state. Identical problems — same variables,
// bounds, costs, constraint order and term order — produce bit-identical
// pivot sequences, solutions and iteration counts, on every platform with
// IEEE-754 float64. The golden scenario suite leans on this: the
// OfflineOptimal benchmark replays row-mode interval LPs whose optimal
// vertices are pinned byte for byte.
//
// Equivalence between the two modes is objective-level, not vertex-level:
// both return the same status and (to round-off) the same optimal
// objective, but on degenerate problems with alternate optima they may
// return different, equally optimal vertices — the bounded pivot path is
// shorter and visits different corners. Callers whose downstream output
// is byte-pinned to historical runs must stay in row mode; everyone else
// should prefer bounded mode for the smaller tableau. Equivalence is
// gated three ways in the tests: brute-force vertex enumeration on random
// boxes, row-vs-bound parity properties, and the byte-identical golden
// suite.
//
// # Warm starts (negative result)
//
// Solver.SolveWarm re-installs the previous solve's optimal basis when
// the next problem maps to the same standard-form shape, repairing slight
// primal infeasibility in place instead of redoing phase 1. The
// capability is correct and tested — and production does not use it, for
// two reasons measured in PR 4 and recorded here so they are not
// re-learned: (1) at this problem scale the basis re-installation plus
// feasibility repair costs about as many pivots as the skipped phase 1
// (707 vs 720 over a week of interval LPs), and (2) these degenerate LPs
// have alternate optima, so a warm solve can land on a different vertex
// than the golden-pinned cold path. Bounded-mode problems always solve
// cold: a remembered basis records column membership only, not the
// nonbasic-at-upper-bound set, so re-installing it could start from the
// wrong solution point; SolveWarm silently falls back to Solve.
//
// # Sparse revised simplex (Problem.SetSparse)
//
// The dense tableau costs O(rows·cols) per pivot and O(rows·cols) memory
// regardless of how sparse the model is; the whole-horizon staircase LPs
// of internal/baseline have a handful of nonzeros per row, so at annual
// scale (8760 slots: ~70k columns, ~44k rows) the tableau would need
// tens of gigabytes before the first pivot. Problem.SetSparse routes the
// solve through a revised simplex that never materializes the tableau:
//
//   - The standard-form constraint matrix is built directly in
//     compressed sparse row/column storage, skipping the dense arena.
//   - The basis is held as an LU factorization computed by
//     Gilbert–Peierls sparse elimination with partial pivoting, columns
//     preordered by ascending nonzero count (a deterministic, cheap
//     approximation of Markowitz ordering). A rank-deficient basis is
//     patched in place with placeholder unit columns (never priced)
//     rather than failing.
//   - Pivots update the factorization through a product-form eta file;
//     the basis is refactorized from scratch after 64 etas or when the
//     accumulated eta fill exceeds 16 nonzeros per row (clamped below at
//     64 entries so tiny bases are not refactorized every few pivots),
//     whichever comes first, and the basic solution is recomputed from
//     the fresh factors to shed accumulated round-off.
//   - FTRAN and BTRAN are hyper-sparse: a Gilbert–Peierls reachability
//     DFS over the L and U adjacency (and per-position entry chains over
//     the eta file) computes the solution's nonzero pattern first, so the
//     numeric work is proportional to the pattern, not the basis size.
//     Past a density threshold (a quarter of the rows) each stage falls
//     back to its dense loop — correct either way, only the cost differs.
//   - Phase 1 runs composite pricing (bound-violation signs, no
//     artificial variables) from a triangular crash basis. Entering
//     columns are chosen by devex reference-framework pricing over
//     rotating partial-pricing segments, with reduced costs maintained
//     incrementally from each pivot row (recomputed from scratch at
//     refactorizations, phase switches and staleness events) and the
//     same stall-triggered switch to Bland's rule as the dense path.
//     Feasibility is tracked incrementally too: per-position violation
//     signs updated from the pivot's sparse delta replace the
//     full-basis infeasibility scan, with scale-aware tolerances on this
//     path only (the dense tableau keeps its absolute, byte-pinned
//     windows). Before any terminal status is returned the solver
//     refactorizes, rescans and reprices once, so incremental drift can
//     never produce a wrong answer.
//
// Sparse solves reuse the Solver's arena/Reset memory model: all
// factorization and pricing buffers persist across solves, and the
// returned Solution borrows them exactly like a dense solve's.
//
// The equivalence contract matches bounded mode: same status, same
// optimal objective (the property/fuzz parity harness in this package
// gates dense-vs-sparse agreement to 1e-9 over randomized staircase and
// box LPs), but possibly a different equally-optimal vertex on
// degenerate problems — golden-pinned callers must stay dense. On any
// numerical trouble (singular bases beyond repair, stall limits, NaNs
// after refactorization) the solver transparently falls back to the
// dense tableau, so SetSparse can never change a result, only how fast
// it is computed. Determinism holds exactly as for the dense path:
// identical problems produce bit-identical pivot sequences and
// objectives.
//
// When is dense still the right choice? Below roughly a thousand
// variables the tableau's simplicity wins: the per-slot P5 LPs
// (internal/core) and the interval LPs stay dense, and the
// receding-horizon controller only switches to sparse for foresight
// windows of 48+ slots. With the hyper-sparse kernels the cost per pivot
// is proportional to the pivot's actual fill rather than the row count,
// so whole-horizon solve time grows near-linearly with the horizon on
// the staircase LPs: measured on the synthetic horizon family, 72 slots
// solve in ~11 ms, 720 in ~0.3 s, 1440 in ~0.9 s, and the full 8760-slot
// year in under 10 s — where the dense-vector revised simplex of PR 7
// took ~200 s (quadratic growth) and the dense tableau could not solve
// it at all. The remaining per-pivot cost splits between the eta-file
// stages (proportional to the touched etas' fill) and the rotating
// devex pricing scan (a fixed 1/32 fraction of the columns).
//
// # Memory model
//
// A Solver owns every working buffer (standard-form rewrite, tableau
// arena, solution vector) and reuses them across solves; long sequences
// of same-shape problems solve allocation-free once the buffers have
// grown. Problem.Reset rebuilds a model in place, reusing per-row term
// storage. The Solution returned by Solver.Solve borrows the solver's
// buffers and is valid only until the next solve; Problem.Minimize is
// the throwaway-solver convenience that detaches its values.
//
// The problems produced by SmartDPSS are tiny (2–6 variables per fine
// slot) or moderate (a few hundred variables for the per-day offline
// LP); a dense tableau is both simple and fast enough for those sizes.
// The whole-horizon and wide-window LPs are the exception and ride the
// sparse path above.
package lp
