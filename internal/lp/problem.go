package lp

import (
	"errors"
	"fmt"
	"math"
)

// Relation is the sense of a linear constraint.
type Relation int

// Constraint relations.
const (
	LE Relation = iota + 1 // aᵀx ≤ b
	GE                     // aᵀx ≥ b
	EQ                     // aᵀx = b
)

// String returns the mathematical symbol for the relation.
func (r Relation) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	default:
		return fmt.Sprintf("Relation(%d)", int(r))
	}
}

// VarID identifies a variable within a Problem.
type VarID int

// Term is a single coefficient–variable product in a constraint row.
type Term struct {
	Var   VarID
	Coeff float64
}

// variable is the internal record of one decision variable.
type variable struct {
	name  string
	lower float64
	upper float64
	cost  float64
}

// constraint is the internal record of one constraint row.
type constraint struct {
	terms []Term
	rel   Relation
	rhs   float64
}

// Problem is a mutable linear program under construction. The zero value is
// not usable; create instances with NewProblem.
type Problem struct {
	vars    []variable
	cons    []constraint
	maxIter int
	bounded bool
	sparse  bool
}

// NewProblem returns an empty minimization problem.
func NewProblem() *Problem {
	return &Problem{}
}

// Reset empties the problem for rebuilding in place, keeping the variable
// and constraint storage (including each retired row's term buffer) so a
// problem rebuilt to a similar shape allocates nothing. The iteration
// budget and bound mode are preserved.
func (p *Problem) Reset() {
	p.vars = p.vars[:0]
	p.cons = p.cons[:0]
}

// SetMaxIterations overrides the default simplex iteration budget
// (0 restores the default, which scales with problem size).
func (p *Problem) SetMaxIterations(n int) { p.maxIter = n }

// SetBounded selects the bounded-variable simplex: a finite upper bound
// becomes a column bound handled natively by the pivot loop (bound flips,
// nonbasic-at-upper-bound columns) instead of being lowered to one
// explicit ≤ row per variable. The tableau shrinks by one row per
// upper-bounded variable — ~40% on the box-constrained interval LPs this
// repository solves. Optimal objectives and statuses are identical to the
// row formulation; on degenerate problems the reported solution may be a
// different (equally optimal) vertex, which is why the row formulation
// remains the default wherever byte-pinned outputs replay the historical
// pivot sequence. The mode survives Reset. Bounded problems always solve
// cold: SolveWarm falls back to Solve (a remembered basis does not carry
// the nonbasic-at-upper-bound set). See the package documentation for the
// full solver contract.
func (p *Problem) SetBounded(on bool) { p.bounded = on }

// SetSparse selects the sparse revised simplex: the constraint matrix is
// kept in compressed sparse form, the basis is held as an LU
// factorization updated by an eta file, and each pivot touches only the
// nonzeros of the columns involved — on the staircase-structured horizon
// LPs this repository solves, cost per pivot drops from O(rows·cols) to
// roughly the basis fill-in. Optimal status and objective are identical
// to the dense tableau (the property/fuzz parity harness in this package
// gates that equivalence to 1e-9); the reported vertex may be a
// different, equally optimal one on degenerate problems, so golden-pinned
// paths must stay on the dense solver. The mode survives Reset, composes
// with SetBounded, and always solves cold (SolveWarm falls back to
// Solve). On numerical trouble the solver transparently re-solves the
// problem with the dense tableau, so results never depend on the sparse
// path succeeding. See the package documentation for the full contract.
func (p *Problem) SetSparse(on bool) { p.sparse = on }

// Sparse reports whether the sparse revised simplex is selected —
// observability for callers pinning which solver path a problem rides.
func (p *Problem) Sparse() bool { return p.sparse }

// AddVariable adds a decision variable with bounds [lower, upper] and the
// given objective coefficient, returning its identifier. lower may be
// math.Inf(-1) and upper may be math.Inf(1). The name appears only in
// error messages; an empty name prints as x<id>.
func (p *Problem) AddVariable(name string, lower, upper, cost float64) VarID {
	p.vars = append(p.vars, variable{name: name, lower: lower, upper: upper, cost: cost})
	return VarID(len(p.vars) - 1)
}

// AddConstraint adds the row  Σ terms  rel  rhs.
// Terms referencing the same variable are summed. The terms slice is
// copied into problem-owned storage (reused across Reset cycles), so
// callers may reuse their build buffer.
func (p *Problem) AddConstraint(rel Relation, rhs float64, terms ...Term) {
	if len(p.cons) < cap(p.cons) {
		// Revive the retired row and reuse its term buffer.
		p.cons = p.cons[:len(p.cons)+1]
		c := &p.cons[len(p.cons)-1]
		c.terms = append(c.terms[:0], terms...)
		c.rel, c.rhs = rel, rhs
		return
	}
	own := make([]Term, len(terms))
	copy(own, terms)
	p.cons = append(p.cons, constraint{terms: own, rel: rel, rhs: rhs})
}

// NumVariables reports the number of variables added so far.
func (p *Problem) NumVariables() int { return len(p.vars) }

// NumConstraints reports the number of constraint rows added so far.
func (p *Problem) NumConstraints() int { return len(p.cons) }

// Validation errors returned by Minimize.
var (
	ErrNoVariables  = errors.New("lp: problem has no variables")
	ErrBadBounds    = errors.New("lp: variable lower bound exceeds upper bound")
	ErrBadTerm      = errors.New("lp: constraint references unknown variable")
	ErrNotFinite    = errors.New("lp: non-finite coefficient or right-hand side")
	ErrIterLimit    = errors.New("lp: simplex iteration limit exceeded")
	ErrInfeasible   = errors.New("lp: problem is infeasible")
	ErrUnbounded    = errors.New("lp: problem is unbounded")
	errNumericalBug = errors.New("lp: internal numerical inconsistency")
)

// validate checks the problem for structural errors before solving.
func (p *Problem) validate() error {
	if len(p.vars) == 0 {
		return ErrNoVariables
	}
	for i, v := range p.vars {
		if v.lower > v.upper {
			return fmt.Errorf("%w: %s has [%g, %g]", ErrBadBounds, p.varName(VarID(i)), v.lower, v.upper)
		}
		if math.IsNaN(v.lower) || math.IsNaN(v.upper) || !isFinite(v.cost) {
			return fmt.Errorf("%w: variable %s", ErrNotFinite, p.varName(VarID(i)))
		}
	}
	for i, c := range p.cons {
		if !isFinite(c.rhs) {
			return fmt.Errorf("%w: constraint %d rhs", ErrNotFinite, i)
		}
		for _, t := range c.terms {
			if int(t.Var) < 0 || int(t.Var) >= len(p.vars) {
				return fmt.Errorf("%w: constraint %d references %d", ErrBadTerm, i, t.Var)
			}
			if !isFinite(t.Coeff) {
				return fmt.Errorf("%w: constraint %d coefficient", ErrNotFinite, i)
			}
		}
	}
	return nil
}

func (p *Problem) varName(id VarID) string {
	v := p.vars[id]
	if v.name == "" {
		return fmt.Sprintf("x%d", int(id))
	}
	return v.name
}

func isFinite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }
