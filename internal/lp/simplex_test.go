package lp

import (
	"math"
	"testing"
)

const tol = 1e-7

func almostEqual(a, b float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return diff <= tol*scale
}

func requireOptimal(t *testing.T, sol *Solution, err error) {
	t.Helper()
	if err != nil {
		t.Fatalf("Minimize returned error: %v", err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
}

func TestMinimizeSimple2D(t *testing.T) {
	// min -x - 2y  s.t. x + y <= 4, x <= 3, y <= 2, x,y >= 0.
	// Optimum at (2, 2): objective -6.
	p := NewProblem()
	x := p.AddVariable("x", 0, 3, -1)
	y := p.AddVariable("y", 0, 2, -2)
	p.AddConstraint(LE, 4, Term{x, 1}, Term{y, 1})

	sol, err := p.Minimize()
	requireOptimal(t, sol, err)
	if !almostEqual(sol.Objective, -6) {
		t.Errorf("objective = %g, want -6", sol.Objective)
	}
	if !almostEqual(sol.Value(x), 2) || !almostEqual(sol.Value(y), 2) {
		t.Errorf("solution = (%g, %g), want (2, 2)", sol.Value(x), sol.Value(y))
	}
}

func TestMinimizeEqualityConstraint(t *testing.T) {
	// min 3x + 2y  s.t. x + y = 10, x >= 2, y >= 1.
	// Optimum: put as much as possible on the cheaper y: x=2, y=8, obj=22.
	p := NewProblem()
	x := p.AddVariable("x", 2, math.Inf(1), 3)
	y := p.AddVariable("y", 1, math.Inf(1), 2)
	p.AddConstraint(EQ, 10, Term{x, 1}, Term{y, 1})

	sol, err := p.Minimize()
	requireOptimal(t, sol, err)
	if !almostEqual(sol.Objective, 22) {
		t.Errorf("objective = %g, want 22", sol.Objective)
	}
	if !almostEqual(sol.Value(x), 2) || !almostEqual(sol.Value(y), 8) {
		t.Errorf("solution = (%g, %g), want (2, 8)", sol.Value(x), sol.Value(y))
	}
}

func TestMinimizeGEConstraints(t *testing.T) {
	// Classic diet-style LP:
	// min 0.6x + 0.35y s.t. 5x + 7y >= 8, 4x + 2y >= 15, x,y >= 0.
	p := NewProblem()
	x := p.AddVariable("x", 0, math.Inf(1), 0.6)
	y := p.AddVariable("y", 0, math.Inf(1), 0.35)
	p.AddConstraint(GE, 8, Term{x, 5}, Term{y, 7})
	p.AddConstraint(GE, 15, Term{x, 4}, Term{y, 2})

	sol, err := p.Minimize()
	requireOptimal(t, sol, err)
	// Check feasibility and optimality value computed by hand:
	// binding constraints intersect at 5x+7y=8, 4x+2y=15 ->
	// x = (15*7-2*8)/(4*7-2*5) = 89/18, y negative -> so optimum on axis:
	// y=0: x >= max(8/5, 15/4) = 3.75, obj = 2.25.
	// x=0: y >= max(8/7, 7.5) = 7.5, obj = 2.625. So expect 2.25.
	if !almostEqual(sol.Objective, 2.25) {
		t.Errorf("objective = %g, want 2.25", sol.Objective)
	}
}

func TestMinimizeNegativeRHS(t *testing.T) {
	// min x  s.t. -x <= -5  (i.e. x >= 5).
	p := NewProblem()
	x := p.AddVariable("x", 0, math.Inf(1), 1)
	p.AddConstraint(LE, -5, Term{x, -1})

	sol, err := p.Minimize()
	requireOptimal(t, sol, err)
	if !almostEqual(sol.Value(x), 5) {
		t.Errorf("x = %g, want 5", sol.Value(x))
	}
}

func TestMinimizeInfeasible(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable("x", 0, 1, 1)
	p.AddConstraint(GE, 2, Term{x, 1})

	sol, err := p.Minimize()
	if err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestMinimizeInfeasibleEquality(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable("x", 0, math.Inf(1), 1)
	y := p.AddVariable("y", 0, math.Inf(1), 1)
	p.AddConstraint(EQ, 1, Term{x, 1}, Term{y, 1})
	p.AddConstraint(EQ, 3, Term{x, 1}, Term{y, 1})

	sol, err := p.Minimize()
	if err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestMinimizeUnbounded(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable("x", 0, math.Inf(1), -1)
	p.AddConstraint(GE, 1, Term{x, 1})

	sol, err := p.Minimize()
	if err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestMinimizeUnboundedFreeVariable(t *testing.T) {
	// A free variable with nonzero cost and no constraints is unbounded.
	p := NewProblem()
	p.AddVariable("x", math.Inf(-1), math.Inf(1), 1)

	sol, err := p.Minimize()
	if err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestMinimizeFreeVariable(t *testing.T) {
	// min |shape|: x free, y >= 0, min x + y s.t. x >= -3 via constraint,
	// x + y >= -1. Optimum x = -3, y = 0 -> obj -3.
	p := NewProblem()
	x := p.AddVariable("x", math.Inf(-1), math.Inf(1), 1)
	y := p.AddVariable("y", 0, math.Inf(1), 1)
	p.AddConstraint(GE, -3, Term{x, 1})
	p.AddConstraint(GE, -1, Term{x, 1}, Term{y, 1})

	sol, err := p.Minimize()
	requireOptimal(t, sol, err)
	if !almostEqual(sol.Objective, -1) {
		// x=-3 violates x+y >= -1 unless y=2 (obj -1); x=-1,y=0 also obj -1.
		t.Errorf("objective = %g, want -1", sol.Objective)
	}
}

func TestMinimizeUpperBoundedOnly(t *testing.T) {
	// Variable with lower = -Inf, upper = 4: min -x -> x = 4.
	p := NewProblem()
	x := p.AddVariable("x", math.Inf(-1), 4, -1)
	p.AddConstraint(GE, -100, Term{x, 1}) // keep the feasible region bounded below

	sol, err := p.Minimize()
	requireOptimal(t, sol, err)
	if !almostEqual(sol.Value(x), 4) {
		t.Errorf("x = %g, want 4", sol.Value(x))
	}
}

func TestMinimizeFixedVariable(t *testing.T) {
	// Fixed variable participates as a constant.
	p := NewProblem()
	x := p.AddVariable("x", 5, 5, 2)
	y := p.AddVariable("y", 0, math.Inf(1), 1)
	p.AddConstraint(GE, 8, Term{x, 1}, Term{y, 1})

	sol, err := p.Minimize()
	requireOptimal(t, sol, err)
	if !almostEqual(sol.Value(x), 5) {
		t.Errorf("x = %g, want 5", sol.Value(x))
	}
	if !almostEqual(sol.Value(y), 3) {
		t.Errorf("y = %g, want 3", sol.Value(y))
	}
	if !almostEqual(sol.Objective, 13) {
		t.Errorf("objective = %g, want 13", sol.Objective)
	}
}

func TestMinimizeDegenerate(t *testing.T) {
	// A degenerate LP (redundant constraints through the optimum) must still
	// terminate and find the optimum.
	p := NewProblem()
	x := p.AddVariable("x", 0, math.Inf(1), -1)
	y := p.AddVariable("y", 0, math.Inf(1), -1)
	p.AddConstraint(LE, 1, Term{x, 1})
	p.AddConstraint(LE, 1, Term{y, 1})
	p.AddConstraint(LE, 2, Term{x, 1}, Term{y, 1})
	p.AddConstraint(LE, 4, Term{x, 2}, Term{y, 2})

	sol, err := p.Minimize()
	requireOptimal(t, sol, err)
	if !almostEqual(sol.Objective, -2) {
		t.Errorf("objective = %g, want -2", sol.Objective)
	}
}

func TestMinimizeRedundantEqualities(t *testing.T) {
	// Duplicated equality rows leave an artificial variable basic at zero;
	// the solver must remove the redundant row and still succeed.
	p := NewProblem()
	x := p.AddVariable("x", 0, math.Inf(1), 1)
	y := p.AddVariable("y", 0, math.Inf(1), 2)
	p.AddConstraint(EQ, 4, Term{x, 1}, Term{y, 1})
	p.AddConstraint(EQ, 8, Term{x, 2}, Term{y, 2})

	sol, err := p.Minimize()
	requireOptimal(t, sol, err)
	if !almostEqual(sol.Objective, 4) { // all mass on x
		t.Errorf("objective = %g, want 4", sol.Objective)
	}
}

func TestMinimizeDuplicateTerms(t *testing.T) {
	// Terms repeating a variable must be summed.
	p := NewProblem()
	x := p.AddVariable("x", 0, math.Inf(1), 1)
	p.AddConstraint(GE, 6, Term{x, 1}, Term{x, 2}) // 3x >= 6

	sol, err := p.Minimize()
	requireOptimal(t, sol, err)
	if !almostEqual(sol.Value(x), 2) {
		t.Errorf("x = %g, want 2", sol.Value(x))
	}
}

func TestMinimizeShiftedBounds(t *testing.T) {
	// Lower bounds shift the objective constant correctly.
	p := NewProblem()
	x := p.AddVariable("x", 10, 20, 3)

	sol, err := p.Minimize()
	requireOptimal(t, sol, err)
	if !almostEqual(sol.Objective, 30) {
		t.Errorf("objective = %g, want 30", sol.Objective)
	}
	if !almostEqual(sol.Value(x), 10) {
		t.Errorf("x = %g, want 10", sol.Value(x))
	}
}

func TestMinimizeNegativeLowerBounds(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable("x", -5, 5, 1)
	y := p.AddVariable("y", -5, 5, 1)
	p.AddConstraint(GE, -4, Term{x, 1}, Term{y, 1})

	sol, err := p.Minimize()
	requireOptimal(t, sol, err)
	if !almostEqual(sol.Objective, -4) {
		t.Errorf("objective = %g, want -4", sol.Objective)
	}
}

func TestValidationErrors(t *testing.T) {
	t.Run("no variables", func(t *testing.T) {
		p := NewProblem()
		if _, err := p.Minimize(); err == nil {
			t.Fatal("want error for empty problem")
		}
	})
	t.Run("bad bounds", func(t *testing.T) {
		p := NewProblem()
		p.AddVariable("x", 2, 1, 0)
		if _, err := p.Minimize(); err == nil {
			t.Fatal("want error for inverted bounds")
		}
	})
	t.Run("unknown variable", func(t *testing.T) {
		p := NewProblem()
		p.AddVariable("x", 0, 1, 0)
		p.AddConstraint(LE, 1, Term{Var: 7, Coeff: 1})
		if _, err := p.Minimize(); err == nil {
			t.Fatal("want error for unknown variable reference")
		}
	})
	t.Run("nan cost", func(t *testing.T) {
		p := NewProblem()
		p.AddVariable("x", 0, 1, math.NaN())
		if _, err := p.Minimize(); err == nil {
			t.Fatal("want error for NaN cost")
		}
	})
	t.Run("inf rhs", func(t *testing.T) {
		p := NewProblem()
		x := p.AddVariable("x", 0, 1, 1)
		p.AddConstraint(LE, math.Inf(1), Term{x, 1})
		if _, err := p.Minimize(); err == nil {
			t.Fatal("want error for infinite rhs")
		}
	})
}

func TestIterationLimit(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable("x", 0, math.Inf(1), -1)
	y := p.AddVariable("y", 0, math.Inf(1), -1)
	p.AddConstraint(LE, 10, Term{x, 1}, Term{y, 1})
	p.SetMaxIterations(0) // default budget: must succeed
	if _, err := p.Minimize(); err != nil {
		t.Fatalf("default budget: %v", err)
	}
}

func TestSolutionAccessors(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable("x", 1, 1, 1)
	sol, err := p.Minimize()
	requireOptimal(t, sol, err)
	if got := sol.Value(VarID(99)); got != 0 {
		t.Errorf("out-of-range Value = %g, want 0", got)
	}
	vals := sol.Values()
	if len(vals) != 1 || !almostEqual(vals[0], 1) {
		t.Errorf("Values() = %v, want [1]", vals)
	}
	_ = x
}

func TestRelationString(t *testing.T) {
	tests := []struct {
		rel  Relation
		want string
	}{
		{LE, "<="},
		{GE, ">="},
		{EQ, "="},
		{Relation(0), "Relation(0)"},
	}
	for _, tt := range tests {
		if got := tt.rel.String(); got != tt.want {
			t.Errorf("Relation(%d).String() = %q, want %q", int(tt.rel), got, tt.want)
		}
	}
}

func TestStatusString(t *testing.T) {
	tests := []struct {
		st   Status
		want string
	}{
		{Optimal, "optimal"},
		{Infeasible, "infeasible"},
		{Unbounded, "unbounded"},
		{Status(0), "Status(0)"},
	}
	for _, tt := range tests {
		if got := tt.st.String(); got != tt.want {
			t.Errorf("Status(%d).String() = %q, want %q", int(tt.st), got, tt.want)
		}
	}
}

func TestMinimizeTransportation(t *testing.T) {
	// A 2x3 balanced transportation problem with known optimum.
	// Supplies: 20, 30. Demands: 10, 25, 15.
	// Costs: [2 4 5; 3 1 7].
	p := NewProblem()
	c := [2][3]float64{{2, 4, 5}, {3, 1, 7}}
	var x [2][3]VarID
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			x[i][j] = p.AddVariable("", 0, math.Inf(1), c[i][j])
		}
	}
	supplies := [2]float64{20, 30}
	demands := [3]float64{10, 25, 15}
	for i := 0; i < 2; i++ {
		p.AddConstraint(EQ, supplies[i], Term{x[i][0], 1}, Term{x[i][1], 1}, Term{x[i][2], 1})
	}
	for j := 0; j < 3; j++ {
		p.AddConstraint(EQ, demands[j], Term{x[0][j], 1}, Term{x[1][j], 1})
	}

	sol, err := p.Minimize()
	requireOptimal(t, sol, err)
	// Optimal assignment: x[1][1]=25 (cost 1), x[1][0]=5 (cost 3),
	// x[0][0]=5 (cost 2), x[0][2]=15 (cost 5) -> 25+15+10+75 = 125.
	if !almostEqual(sol.Objective, 125) {
		t.Errorf("objective = %g, want 125", sol.Objective)
	}
}

func TestMinimizeLargeChain(t *testing.T) {
	// A chained LP with 60 variables: x_{i+1} >= x_i + 1, minimize x_n,
	// x_0 >= 0. Optimum: x_n = n.
	const n = 60
	p := NewProblem()
	ids := make([]VarID, n+1)
	for i := range ids {
		cost := 0.0
		if i == n {
			cost = 1
		}
		ids[i] = p.AddVariable("", 0, math.Inf(1), cost)
	}
	for i := 0; i < n; i++ {
		// x_{i+1} - x_i >= 1
		p.AddConstraint(GE, 1, Term{ids[i+1], 1}, Term{ids[i], -1})
	}
	sol, err := p.Minimize()
	requireOptimal(t, sol, err)
	if !almostEqual(sol.Objective, n) {
		t.Errorf("objective = %g, want %d", sol.Objective, n)
	}
}
