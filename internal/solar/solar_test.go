package solar

import (
	"math"
	"testing"
)

func mustGenerate(t *testing.T, c Config) []float64 {
	t.Helper()
	s, err := Generate(c)
	if err != nil {
		t.Fatal(err)
	}
	return s.Values
}

func TestGenerateShape(t *testing.T) {
	c := Defaults()
	vals := mustGenerate(t, c)
	if len(vals) != 31*24 {
		t.Fatalf("len = %d, want %d", len(vals), 31*24)
	}
	slotHours := 1.0
	capMWh := c.CapacityMW * slotHours
	for i, v := range vals {
		if v < 0 || v > capMWh {
			t.Fatalf("vals[%d] = %g outside [0, %g]", i, v, capMWh)
		}
	}
}

func TestGenerateNightIsZero(t *testing.T) {
	vals := mustGenerate(t, Defaults())
	// Midnight to 4am in January at 39°N must be dark.
	for day := 0; day < 31; day++ {
		for h := 0; h < 4; h++ {
			if v := vals[day*24+h]; v != 0 {
				t.Fatalf("day %d hour %d: production %g at night", day, h, v)
			}
		}
	}
}

func TestGenerateDaytimePositive(t *testing.T) {
	vals := mustGenerate(t, Defaults())
	// Noon production should be positive on most days (cloud cover reduces
	// but never zeroes the attenuation floor of 0.05).
	positive := 0
	for day := 0; day < 31; day++ {
		if vals[day*24+12] > 0 {
			positive++
		}
	}
	if positive != 31 {
		t.Fatalf("noon production positive on %d/31 days", positive)
	}
}

func TestGenerateDiurnalPeakNearNoon(t *testing.T) {
	c := Defaults()
	c.PClearToCloudy = 0 // clear-sky month
	vals := mustGenerate(t, c)
	for day := 0; day < 5; day++ {
		noon := vals[day*24+12]
		morning := vals[day*24+8]
		if noon <= morning {
			t.Fatalf("day %d: noon %g not above morning %g under clear sky", day, noon, morning)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := mustGenerate(t, Defaults())
	b := mustGenerate(t, Defaults())
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at slot %d", i)
		}
	}
	c := Defaults()
	c.Seed = 999
	d := mustGenerate(t, c)
	same := true
	for i := range a {
		if a[i] != d[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestGenerateSeasonality(t *testing.T) {
	winter := Defaults()
	winter.PClearToCloudy = 0
	summer := winter
	summer.StartDayOfYear = 172 // late June
	w, err := Generate(winter)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Generate(summer)
	if err != nil {
		t.Fatal(err)
	}
	if s.Sum() <= w.Sum() {
		t.Fatalf("summer energy %g not above winter %g", s.Sum(), w.Sum())
	}
}

func TestGenerateLatitudeEffect(t *testing.T) {
	low := Defaults()
	low.PClearToCloudy = 0
	low.LatitudeDeg = 20
	high := low
	high.LatitudeDeg = 60
	l, err := Generate(low)
	if err != nil {
		t.Fatal(err)
	}
	h, err := Generate(high)
	if err != nil {
		t.Fatal(err)
	}
	if l.Sum() <= h.Sum() {
		t.Fatalf("January: 20°N energy %g not above 60°N %g", l.Sum(), h.Sum())
	}
}

func TestGenerateFineResolution(t *testing.T) {
	c := Defaults()
	c.SlotMinutes = 15
	c.Days = 2
	s, err := Generate(c)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2*24*4 {
		t.Fatalf("len = %d, want %d", s.Len(), 2*24*4)
	}
	if s.SlotMinutes != 15 {
		t.Fatalf("SlotMinutes = %d, want 15", s.SlotMinutes)
	}
}

func TestGenerateCloudyReducesEnergy(t *testing.T) {
	clear := Defaults()
	clear.PClearToCloudy = 0
	cloudy := Defaults()
	cloudy.PClearToCloudy = 1
	cloudy.PCloudyToClear = 0
	c, err := Generate(clear)
	if err != nil {
		t.Fatal(err)
	}
	o, err := Generate(cloudy)
	if err != nil {
		t.Fatal(err)
	}
	if o.Sum() >= c.Sum()*0.7 {
		t.Fatalf("overcast energy %g not well below clear-sky %g", o.Sum(), c.Sum())
	}
}

func TestConfigValidate(t *testing.T) {
	mut := func(f func(*Config)) Config {
		c := Defaults()
		f(&c)
		return c
	}
	bad := []Config{
		mut(func(c *Config) { c.Days = 0 }),
		mut(func(c *Config) { c.SlotMinutes = 0 }),
		mut(func(c *Config) { c.SlotMinutes = 100000 }),
		mut(func(c *Config) { c.CapacityMW = -1 }),
		mut(func(c *Config) { c.PerformanceRatio = 0 }),
		mut(func(c *Config) { c.PerformanceRatio = 1.5 }),
		mut(func(c *Config) { c.PClearToCloudy = -0.1 }),
		mut(func(c *Config) { c.PCloudyToClear = 1.1 }),
		mut(func(c *Config) { c.CloudyAttenuation = 2 }),
		mut(func(c *Config) { c.LatitudeDeg = 91 }),
		mut(func(c *Config) { c.StartDayOfYear = 0 }),
	}
	for i, c := range bad {
		if _, err := Generate(c); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestClearSkyIrradiance(t *testing.T) {
	if irr := clearSkyIrradiance(39, 1, 0); irr != 0 {
		t.Errorf("midnight irradiance = %g, want 0", irr)
	}
	noon := clearSkyIrradiance(39, 1, 12)
	if noon < 200 || noon > 900 {
		t.Errorf("January noon irradiance at 39°N = %g, expected a few hundred W/m²", noon)
	}
	// Equator in March should beat 39°N January noon.
	eq := clearSkyIrradiance(0, 80, 12)
	if eq <= noon {
		t.Errorf("equator equinox %g not above winter mid-latitude %g", eq, noon)
	}
	if math.IsNaN(noon) || math.IsInf(noon, 0) {
		t.Error("irradiance not finite")
	}
}
