// Package solar generates synthetic on-site solar production traces.
//
// The paper drives its evaluation with the NREL MIDC meteorological trace
// for the central United States, January 1–31, 2012. That dataset is not
// redistributable here, so this package substitutes a physically grounded
// generator: a clear-sky irradiance model from solar geometry (declination,
// hour angle, elevation, and an air-mass transmission term) modulated by a
// two-state Markov weather chain with AR(1) cloud attenuation. The
// substitute reproduces the trace properties SmartDPSS is sensitive to —
// strict day/night intermittency, short winter days, day-to-day variability
// and hour-scale autocorrelation — as documented in DESIGN.md.
//
// The package owns the irradiance model and its weather chain.
// internal/engine is its sole consumer: trace generation scales the
// output by the configured capacity and merges it with wind into the
// renewable series of the trace.Set that everything downstream reads.
package solar

import (
	"errors"
	"math"
	"math/rand"

	"github.com/smartdpss/smartdpss/internal/trace"
)

// Config parameterizes the generator. Zero values are replaced by
// Defaults() values in Generate.
type Config struct {
	// LatitudeDeg is the site latitude in degrees (positive north).
	LatitudeDeg float64
	// StartDayOfYear is the first simulated day (Jan 1 = 1).
	StartDayOfYear int
	// Days is the number of simulated days.
	Days int
	// SlotMinutes is the trace resolution.
	SlotMinutes int
	// CapacityMW is the plant nameplate capacity: output at 1000 W/m²
	// irradiance.
	CapacityMW float64
	// PerformanceRatio lumps inverter/temperature/soiling losses (0..1].
	PerformanceRatio float64
	// PClearToCloudy and PCloudyToClear are the per-hour Markov transition
	// probabilities of the weather chain.
	PClearToCloudy float64
	PCloudyToClear float64
	// CloudyAttenuation is the mean output fraction under cloud cover.
	CloudyAttenuation float64
	// Seed drives the deterministic random source.
	Seed int64
}

// Defaults returns the configuration used for the paper-like January
// central-US scenario (latitude ≈ 39°N, 1-hour slots, 31 days).
func Defaults() Config {
	return Config{
		LatitudeDeg:       39.0,
		StartDayOfYear:    1,
		Days:              31,
		SlotMinutes:       60,
		CapacityMW:        1.0,
		PerformanceRatio:  0.85,
		PClearToCloudy:    0.08,
		PCloudyToClear:    0.12,
		CloudyAttenuation: 0.30,
		Seed:              1,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Days <= 0:
		return errors.New("solar: Days must be positive")
	case c.SlotMinutes <= 0 || c.SlotMinutes > 24*60:
		return errors.New("solar: SlotMinutes out of range")
	case c.CapacityMW < 0:
		return errors.New("solar: negative capacity")
	case c.PerformanceRatio <= 0 || c.PerformanceRatio > 1:
		return errors.New("solar: PerformanceRatio must be in (0, 1]")
	case c.PClearToCloudy < 0 || c.PClearToCloudy > 1 ||
		c.PCloudyToClear < 0 || c.PCloudyToClear > 1:
		return errors.New("solar: Markov probabilities must be in [0, 1]")
	case c.CloudyAttenuation < 0 || c.CloudyAttenuation > 1:
		return errors.New("solar: CloudyAttenuation must be in [0, 1]")
	case c.LatitudeDeg < -90 || c.LatitudeDeg > 90:
		return errors.New("solar: latitude out of range")
	case c.StartDayOfYear < 1 || c.StartDayOfYear > 366:
		return errors.New("solar: StartDayOfYear out of range")
	}
	return nil
}

// Generate produces the production series in MWh per slot.
func Generate(c Config) (*trace.Series, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(c.Seed))
	slotsPerDay := 24 * 60 / c.SlotMinutes
	n := c.Days * slotsPerDay
	out := trace.New("solar", "MWh", c.SlotMinutes, n)

	slotHours := float64(c.SlotMinutes) / 60.0
	cloudy := rng.Float64() < 0.4 // initial weather state
	atten := 1.0                  // AR(1) attenuation level

	for i := 0; i < n; i++ {
		day := c.StartDayOfYear + i/slotsPerDay
		hour := (float64(i%slotsPerDay) + 0.5) * slotHours // slot midpoint

		// Weather chain steps once per slot, scaled to per-hour rates.
		pFlip := c.PClearToCloudy
		if cloudy {
			pFlip = c.PCloudyToClear
		}
		if rng.Float64() < pFlip*slotHours {
			cloudy = !cloudy
		}
		target := 1.0
		if cloudy {
			target = c.CloudyAttenuation
		}
		// Mean-reverting attenuation with small noise, bounded to [0.05, 1].
		atten += 0.45*(target-atten) + 0.05*rng.NormFloat64()
		atten = math.Min(1, math.Max(0.05, atten))

		irr := clearSkyIrradiance(c.LatitudeDeg, day, hour)
		powerMW := c.CapacityMW * c.PerformanceRatio * (irr / 1000.0) * atten
		out.Values[i] = math.Max(0, powerMW*slotHours)
	}
	return out, nil
}

// clearSkyIrradiance returns the clear-sky global horizontal irradiance in
// W/m² for the given latitude (degrees), day of year and local solar hour.
func clearSkyIrradiance(latDeg float64, dayOfYear int, hour float64) float64 {
	const solarConstant = 1361.0 // W/m²

	latRad := latDeg * math.Pi / 180
	// Cooper's declination formula.
	declRad := 23.45 * math.Pi / 180 * math.Sin(2*math.Pi*float64(284+dayOfYear)/365)
	hourAngle := (hour - 12) * 15 * math.Pi / 180

	sinElev := math.Sin(latRad)*math.Sin(declRad) +
		math.Cos(latRad)*math.Cos(declRad)*math.Cos(hourAngle)
	if sinElev <= 0 {
		return 0 // sun below the horizon
	}
	// Kasten–Young style air-mass attenuation, simplified.
	airMass := 1 / math.Max(sinElev, 0.01)
	transmission := math.Pow(0.7, math.Pow(airMass, 0.678))
	return solarConstant * sinElev * transmission
}
