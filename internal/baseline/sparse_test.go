package baseline

import (
	"math"
	"testing"

	"github.com/smartdpss/smartdpss/internal/generator"
	"github.com/smartdpss/smartdpss/internal/sim"
)

// testFleet is a small two-unit fleet exercising the commitment-linking
// rows (startup cost, minimum stable load) in the horizon LPs.
func testFleet() []generator.Params {
	return []generator.Params{
		{CapacityMWh: 1.5, MinLoadMWh: 0.3, FuelUSDPerMWh: 40, StartupUSD: 20},
		{CapacityMWh: 0.8, FuelUSDPerMWh: 25},
	}
}

// TestHorizonStairMatchesChainObjective is the baseline-level parity gate
// of the sparse migration: the staircase state-variable form solved by
// the revised simplex and the legacy dense chain form must reach the same
// optimal LP objective (the vertex may differ — alternate optima),
// across horizon lengths and fleet configurations.
func TestHorizonStairMatchesChainObjective(t *testing.T) {
	for _, days := range []int{1, 3} {
		set := testTraces(t, days)
		for _, fleet := range []bool{false, true} {
			cfg := DefaultConfig()
			cfg.T = 12
			if fleet {
				cfg.Fleet = testFleet()
			}

			stair, err := NewOfflineHorizon(cfg, set)
			if err != nil {
				t.Fatal(err)
			}
			dense := cfg
			dense.HorizonDense = true
			chain, err := NewOfflineHorizon(dense, set)
			if err != nil {
				t.Fatal(err)
			}

			so := stair.st.lastObjective
			co := chain.st.lastObjective
			tol := 1e-7 * (1 + math.Abs(co))
			if math.Abs(so-co) > tol {
				t.Errorf("days=%d fleet=%v: staircase objective %.10g != chain objective %.10g (diff %g)",
					days, fleet, so, co, so-co)
			}
		}
	}
}

// TestHorizonStairPlanReplaysComparably: beyond objective parity, the
// replayed (executed) cost of the staircase plan must be within clamping
// noise of the chain plan's — alternate optima may pick different
// vertices, but not materially worse schedules.
func TestHorizonStairPlanReplaysComparably(t *testing.T) {
	cfg := DefaultConfig()
	cfg.T = 12
	set := testTraces(t, 3)

	stair, err := NewOfflineHorizon(cfg, set)
	if err != nil {
		t.Fatal(err)
	}
	stairRep, err := sim.Run(simConfig(cfg), set, stair)
	if err != nil {
		t.Fatal(err)
	}
	dense := cfg
	dense.HorizonDense = true
	chain, err := NewOfflineHorizon(dense, set)
	if err != nil {
		t.Fatal(err)
	}
	chainRep, err := sim.Run(simConfig(dense), set, chain)
	if err != nil {
		t.Fatal(err)
	}
	if stairRep.TotalCostUSD > chainRep.TotalCostUSD*1.02+1 {
		t.Errorf("staircase replay $%.2f materially worse than chain replay $%.2f",
			stairRep.TotalCostUSD, chainRep.TotalCostUSD)
	}
	if stairRep.UnservedMWh > 1e-6 {
		t.Errorf("staircase plan left %g MWh unserved", stairRep.UnservedMWh)
	}
}

// TestLookaheadSparseWindowMatchesDense pins the Lookahead routing
// threshold: a window at sparseWindowSlots solves on the revised simplex
// and must replay to essentially the cost of the same window forced
// through the dense tableau. (The window model is identical; only the
// solver path differs, so any gap is alternate-optima clamping noise.)
func TestLookaheadSparseWindowMatchesDense(t *testing.T) {
	if testing.Short() {
		t.Skip("replays two full lookahead runs")
	}
	cfg := DefaultConfig()
	cfg.T = 12
	set := testTraces(t, 2)

	la, err := NewLookahead(cfg, set, sparseWindowSlots)
	if err != nil {
		t.Fatal(err)
	}
	sparseRep, err := sim.Run(simConfig(cfg), set, la)
	if err != nil {
		t.Fatal(err)
	}

	ld, err := NewLookahead(cfg, set, sparseWindowSlots)
	if err != nil {
		t.Fatal(err)
	}
	// Force the dense tableau on the same window width by raising the
	// instance's routing decision: rowBounds keeps SetSparse off without
	// touching the model build.
	ld.fine.rowBounds = true
	denseRep, err := sim.Run(simConfig(cfg), set, ld)
	if err != nil {
		t.Fatal(err)
	}

	if math.Abs(sparseRep.TotalCostUSD-denseRep.TotalCostUSD) >
		0.02*math.Abs(denseRep.TotalCostUSD)+1 {
		t.Errorf("sparse-window lookahead $%.2f deviates from dense $%.2f",
			sparseRep.TotalCostUSD, denseRep.TotalCostUSD)
	}
}

// TestOfflineOptimalStaysOnDenseRowPath pins the alternate-optima
// contract from the golden migrations: OfflineOptimal must keep solving
// on the row-per-bound dense formulation — never bounded, never sparse —
// because the fig6v golden replays that exact pivot sequence's vertex.
// A future migration that flips either flag moves the golden vertex
// silently; this test makes it loud instead.
func TestOfflineOptimalStaysOnDenseRowPath(t *testing.T) {
	cfg := DefaultConfig()
	set := testTraces(t, 2)
	o, err := NewOfflineOptimal(cfg, set)
	if err != nil {
		t.Fatal(err)
	}
	if !o.st.rowBounds {
		t.Fatal("OfflineOptimal no longer sets rowBounds: the golden-pinned vertex is unprotected")
	}
	if o.st.sparse {
		t.Fatal("OfflineOptimal has the sparse flag set: the golden-pinned vertex is unprotected")
	}
	// problem() re-derives the solve mode from those flags on every call;
	// with rowBounds up, SetSparse must stay off even if sparse were set.
	prob := o.st.problem()
	if prob.Sparse() {
		t.Fatal("row-bound problem reports sparse mode")
	}
}
