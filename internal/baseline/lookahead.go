package baseline

import (
	"fmt"
	"math"

	"github.com/smartdpss/smartdpss/internal/lp"
	"github.com/smartdpss/smartdpss/internal/sim"
	"github.com/smartdpss/smartdpss/internal/trace"
)

// sparseWindowSlots is the foresight width at which the receding-horizon
// window LP switches from the dense tableau to the sparse revised
// simplex (see Lookahead.solveWindow). The hyper-sparse kernels moved
// the measured crossover well below the old 48-slot threshold (the
// revised path wins from ~8 slots up, 2.6x at 24); 24 keeps a margin
// for the dense tableau's lower fixed costs on tiny windows and holds
// the closed-loop replay-cost parity gate at the switch point.
const sparseWindowSlots = 24

// Lookahead is a receding-horizon (MPC) controller with W fine slots of
// perfect foresight — the "T-Step Lookahead" family the paper contrasts
// with in its related work ([29], [30]). At every fine slot it solves a
// linear program over the next W slots from the current battery and
// backlog state and executes only the first slot's decision; the
// long-term purchase is chosen from the same LP run at the interval
// boundary.
//
// Lookahead interpolates between the online regime (W = 1, essentially
// myopic) and the clairvoyant benchmarks (W → horizon): comparing it with
// SmartDPSS quantifies what perfect short-range forecasts would be worth
// over a forecast-free Lyapunov policy (experiment EXT-5).
type Lookahead struct {
	cfg    Config
	set    *trace.Set
	window int

	// Separate LP substrates for the two problem families the controller
	// solves: the coarse-boundary interval LP and the per-slot window LP.
	// Keeping them apart sizes each solver's tableau arena to its own
	// problem family, so both sequences solve allocation-free.
	coarse lpState
	fine   lpState
}

var _ sim.Controller = (*Lookahead)(nil)

// NewLookahead returns an MPC controller with a W-slot foresight window.
func NewLookahead(cfg Config, set *trace.Set, window int) (*Lookahead, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := set.Validate(); err != nil {
		return nil, err
	}
	if window < 1 {
		return nil, fmt.Errorf("baseline: lookahead window %d must be >= 1", window)
	}
	return &Lookahead{cfg: cfg, set: set, window: window}, nil
}

// Name implements sim.Controller.
func (l *Lookahead) Name() string { return fmt.Sprintf("Lookahead(%d)", l.window) }

// CoarseSlots implements sim.Controller.
func (l *Lookahead) CoarseSlots() int { return l.cfg.T }

// Window returns the foresight length in fine slots.
func (l *Lookahead) Window() int { return l.window }

// PlanCoarse picks gbef from the interval LP over the visible window,
// scaled up to the full interval when the window is shorter.
func (l *Lookahead) PlanCoarse(obs sim.CoarseObs) float64 {
	visible := minInt(l.window, obs.Slots)
	gbef, _, err := l.coarse.solveInterval(l.cfg, l.set, obs.Slot, visible, obs.Battery, obs.Backlog)
	if err != nil {
		return 0
	}
	// Extrapolate the per-slot rate across the whole interval.
	perSlot := gbef / float64(visible)
	return perSlot * float64(obs.Slots)
}

// PlanFine re-solves the window LP from the current state (receding
// horizon) and executes its first slot.
func (l *Lookahead) PlanFine(obs sim.FineObs) sim.Decision {
	dec, err := l.solveWindow(obs)
	if err != nil {
		// Degrade to a safe myopic decision: cover dds from the grid.
		need := math.Max(0, obs.DemandDS-obs.LongTermDue-obs.Renewable)
		return sim.Decision{Grt: math.Min(need, obs.RTHeadroom)}
	}
	return dec
}

// RecordOutcome implements sim.Controller; state is re-read every slot.
func (l *Lookahead) RecordOutcome(sim.Outcome) {}

// solveWindow builds the W-slot LP anchored at the current slot. The
// committed long-term delivery obs.LongTermDue is a constant for every
// visible slot (it holds for the rest of the interval; slots beyond the
// boundary see it as an estimate).
//
// Consecutive windows share one shape until the horizon truncates them,
// so every model and tableau buffer is reused across the receding
// horizon and steady-state solves allocate nothing. The solves run cold
// (see lpState for why basis warm-starting stays off).
func (l *Lookahead) solveWindow(obs sim.FineObs) (sim.Decision, error) {
	st := &l.fine
	bat := l.cfg.Battery
	inf := math.Inf(1)
	n := minInt(l.window, l.set.Horizon()-obs.Slot)
	if n < 1 {
		return sim.Decision{}, fmt.Errorf("baseline: empty window")
	}

	// Wide foresight windows route through the sparse revised simplex:
	// the window LP's prefix rows grow quadratically with n, and past
	// sparseWindowSlots the revised path's hyper-sparse per-pivot cost
	// wins even on that encoding. Narrow windows stay on the dense
	// tableau, whose fixed costs are lower at tiny sizes.
	st.sparse = n >= sparseWindowSlots
	prob := st.problem()
	grt, u, c, d, w, e := st.varIDs(n)
	units := l.cfg.genUnits()
	var g [][][]lp.VarID
	if len(units) > 0 {
		g = make([][][]lp.VarID, n)
	}
	proxy := 0.0
	if bat.MaxChargeMWh > 0 {
		proxy = bat.OpCostUSD / math.Max(bat.MaxChargeMWh, bat.MaxDischargeMWh)
	}
	for i := 0; i < n; i++ {
		slot := obs.Slot + i
		prt := l.set.PriceRT.At(slot)
		grt[i] = prob.AddVariable("", 0, math.Max(0, obs.RTHeadroom), prt)
		u[i] = prob.AddVariable("", 0, l.cfg.SdtMaxMWh, 0)
		c[i] = prob.AddVariable("", 0, bat.MaxChargeMWh, proxy)
		d[i] = prob.AddVariable("", 0, bat.MaxDischargeMWh, proxy)
		w[i] = prob.AddVariable("", 0, inf, l.cfg.WasteCostUSD)
		e[i] = prob.AddVariable("", 0, inf, l.cfg.EmergencyCostUSD)
		if g != nil {
			g[i] = addFleetVars(prob, units, i, n, l.set.FuelScaleAt(slot))
		}
	}

	chain := st.chain[:0]
	serve := st.serve[:0]
	avail := obs.Backlog
	for i := 0; i < n; i++ {
		slot := obs.Slot + i
		dds := l.set.DemandDS.At(slot)
		r := l.set.Renewable.At(slot)

		// Balance with the committed flat delivery as a constant.
		balance := append(st.terms[:0],
			lp.Term{Var: grt[i], Coeff: 1},
			lp.Term{Var: d[i], Coeff: 1},
			lp.Term{Var: e[i], Coeff: 1},
			lp.Term{Var: u[i], Coeff: -1},
			lp.Term{Var: c[i], Coeff: -1},
			lp.Term{Var: w[i], Coeff: -1},
		)
		if g != nil {
			balance = appendFleetTerms(balance, g[i])
		}
		st.terms = balance
		prob.AddConstraint(lp.EQ, dds-r-obs.LongTermDue, balance...)
		// Supply cap.
		smax := append(st.terms[:0], lp.Term{Var: grt[i], Coeff: 1})
		if g != nil {
			smax = appendFleetTerms(smax, g[i])
		}
		st.terms = smax
		prob.AddConstraint(lp.LE, l.cfg.SmaxMWh-r-obs.LongTermDue, smax...)

		// Battery trajectory bounds from the live level, over the
		// incrementally grown j ≤ i prefix.
		chain = append(chain,
			lp.Term{Var: c[i], Coeff: bat.ChargeEff},
			lp.Term{Var: d[i], Coeff: -bat.DischargeEff},
		)
		prob.AddConstraint(lp.GE, bat.MinLevelMWh-obs.Battery, chain...)
		prob.AddConstraint(lp.LE, bat.CapacityMWh-obs.Battery, chain...)

		// Service causality from the live backlog.
		if i > 0 {
			avail += l.set.DemandDT.At(obs.Slot + i - 1)
		}
		serve = append(serve, lp.Term{Var: u[i], Coeff: 1})
		prob.AddConstraint(lp.LE, avail, serve...)
	}
	st.chain, st.serve = chain, serve

	// Window deadline: all visible demand served by the window end
	// (penalized slack keeps degenerate windows feasible). The running
	// avail already equals backlog plus all arrivals before the last
	// visible slot.
	total := avail
	slack := prob.AddVariable("slack", 0, inf, l.cfg.EmergencyCostUSD)
	endTerms := append(st.terms[:0], serve...)
	endTerms = append(endTerms, lp.Term{Var: slack, Coeff: 1})
	st.terms = endTerms
	prob.AddConstraint(lp.GE, total, endTerms...)

	sol, err := st.solve(prob)
	if err != nil {
		return sim.Decision{}, err
	}
	if sol.Status != lp.Optimal {
		return sim.Decision{}, fmt.Errorf("baseline: window LP %v", sol.Status)
	}

	dec := sim.Decision{
		Grt:       sol.Value(grt[0]),
		ServeDT:   math.Min(sol.Value(u[0]), math.Min(obs.Backlog, obs.SdtMax)),
		Charge:    math.Min(sol.Value(c[0]), obs.MaxCharge),
		Discharge: math.Min(sol.Value(d[0]), obs.MaxDischarge),
	}
	if g != nil {
		dec.GenerateUnits = st.clampPlan(genPlanUnits(&sol, g[0]), obs.GenUnits)
	}
	netPlanChargeDischarge(&dec, bat.ChargeEff, bat.DischargeEff)
	return dec, nil
}
