package baseline

import (
	"fmt"
	"math"

	"github.com/smartdpss/smartdpss/internal/lp"
	"github.com/smartdpss/smartdpss/internal/sim"
	"github.com/smartdpss/smartdpss/internal/trace"
)

// Lookahead is a receding-horizon (MPC) controller with W fine slots of
// perfect foresight — the "T-Step Lookahead" family the paper contrasts
// with in its related work ([29], [30]). At every fine slot it solves a
// linear program over the next W slots from the current battery and
// backlog state and executes only the first slot's decision; the
// long-term purchase is chosen from the same LP run at the interval
// boundary.
//
// Lookahead interpolates between the online regime (W = 1, essentially
// myopic) and the clairvoyant benchmarks (W → horizon): comparing it with
// SmartDPSS quantifies what perfect short-range forecasts would be worth
// over a forecast-free Lyapunov policy (experiment EXT-5).
type Lookahead struct {
	cfg    Config
	set    *trace.Set
	window int
}

var _ sim.Controller = (*Lookahead)(nil)

// NewLookahead returns an MPC controller with a W-slot foresight window.
func NewLookahead(cfg Config, set *trace.Set, window int) (*Lookahead, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := set.Validate(); err != nil {
		return nil, err
	}
	if window < 1 {
		return nil, fmt.Errorf("baseline: lookahead window %d must be >= 1", window)
	}
	return &Lookahead{cfg: cfg, set: set, window: window}, nil
}

// Name implements sim.Controller.
func (l *Lookahead) Name() string { return fmt.Sprintf("Lookahead(%d)", l.window) }

// CoarseSlots implements sim.Controller.
func (l *Lookahead) CoarseSlots() int { return l.cfg.T }

// Window returns the foresight length in fine slots.
func (l *Lookahead) Window() int { return l.window }

// PlanCoarse picks gbef from the interval LP over the visible window,
// scaled up to the full interval when the window is shorter.
func (l *Lookahead) PlanCoarse(obs sim.CoarseObs) float64 {
	visible := minInt(l.window, obs.Slots)
	gbef, _, err := solveInterval(l.cfg, l.set, obs.Slot, visible, obs.Battery, obs.Backlog)
	if err != nil {
		return 0
	}
	// Extrapolate the per-slot rate across the whole interval.
	perSlot := gbef / float64(visible)
	return perSlot * float64(obs.Slots)
}

// PlanFine re-solves the window LP from the current state (receding
// horizon) and executes its first slot.
func (l *Lookahead) PlanFine(obs sim.FineObs) sim.Decision {
	dec, err := l.solveWindow(obs)
	if err != nil {
		// Degrade to a safe myopic decision: cover dds from the grid.
		need := math.Max(0, obs.DemandDS-obs.LongTermDue-obs.Renewable)
		return sim.Decision{Grt: math.Min(need, obs.RTHeadroom)}
	}
	return dec
}

// RecordOutcome implements sim.Controller; state is re-read every slot.
func (l *Lookahead) RecordOutcome(sim.Outcome) {}

// solveWindow builds the W-slot LP anchored at the current slot. The
// committed long-term delivery obs.LongTermDue is a constant for every
// visible slot (it holds for the rest of the interval; slots beyond the
// boundary see it as an estimate).
func (l *Lookahead) solveWindow(obs sim.FineObs) (sim.Decision, error) {
	bat := l.cfg.Battery
	inf := math.Inf(1)
	n := minInt(l.window, l.set.Horizon()-obs.Slot)
	if n < 1 {
		return sim.Decision{}, fmt.Errorf("baseline: empty window")
	}

	prob := lp.NewProblem()
	grt := make([]lp.VarID, n)
	u := make([]lp.VarID, n)
	c := make([]lp.VarID, n)
	d := make([]lp.VarID, n)
	w := make([]lp.VarID, n)
	e := make([]lp.VarID, n)
	units := l.cfg.genUnits()
	g := make([][][]lp.VarID, n)
	proxy := 0.0
	if bat.MaxChargeMWh > 0 {
		proxy = bat.OpCostUSD / math.Max(bat.MaxChargeMWh, bat.MaxDischargeMWh)
	}
	for i := 0; i < n; i++ {
		slot := obs.Slot + i
		prt := l.set.PriceRT.At(slot)
		grt[i] = prob.AddVariable(fmt.Sprintf("grt%d", i), 0, math.Max(0, obs.RTHeadroom), prt)
		u[i] = prob.AddVariable(fmt.Sprintf("u%d", i), 0, l.cfg.SdtMaxMWh, 0)
		c[i] = prob.AddVariable(fmt.Sprintf("c%d", i), 0, bat.MaxChargeMWh, proxy)
		d[i] = prob.AddVariable(fmt.Sprintf("d%d", i), 0, bat.MaxDischargeMWh, proxy)
		w[i] = prob.AddVariable(fmt.Sprintf("w%d", i), 0, inf, l.cfg.WasteCostUSD)
		e[i] = prob.AddVariable(fmt.Sprintf("e%d", i), 0, inf, l.cfg.EmergencyCostUSD)
		g[i] = addFleetVars(prob, units, i, n, l.set.FuelScaleAt(slot))
	}

	for i := 0; i < n; i++ {
		slot := obs.Slot + i
		dds := l.set.DemandDS.At(slot)
		r := l.set.Renewable.At(slot)

		// Balance with the committed flat delivery as a constant.
		balance := []lp.Term{
			{Var: grt[i], Coeff: 1},
			{Var: d[i], Coeff: 1},
			{Var: e[i], Coeff: 1},
			{Var: u[i], Coeff: -1},
			{Var: c[i], Coeff: -1},
			{Var: w[i], Coeff: -1},
		}
		balance = appendFleetTerms(balance, g[i])
		prob.AddConstraint(lp.EQ, dds-r-obs.LongTermDue, balance...)
		// Supply cap.
		smax := appendFleetTerms([]lp.Term{{Var: grt[i], Coeff: 1}}, g[i])
		prob.AddConstraint(lp.LE, l.cfg.SmaxMWh-r-obs.LongTermDue, smax...)

		// Battery trajectory bounds from the live level.
		levelTerms := make([]lp.Term, 0, 2*(i+1))
		for j := 0; j <= i; j++ {
			levelTerms = append(levelTerms,
				lp.Term{Var: c[j], Coeff: bat.ChargeEff},
				lp.Term{Var: d[j], Coeff: -bat.DischargeEff},
			)
		}
		prob.AddConstraint(lp.GE, bat.MinLevelMWh-obs.Battery, levelTerms...)
		prob.AddConstraint(lp.LE, bat.CapacityMWh-obs.Battery, levelTerms...)

		// Service causality from the live backlog.
		avail := obs.Backlog
		serveTerms := make([]lp.Term, 0, i+1)
		for j := 0; j <= i; j++ {
			if j > 0 {
				avail += l.set.DemandDT.At(obs.Slot + j - 1)
			}
			serveTerms = append(serveTerms, lp.Term{Var: u[j], Coeff: 1})
		}
		prob.AddConstraint(lp.LE, avail, serveTerms...)
	}

	// Window deadline: all visible demand served by the window end
	// (penalized slack keeps degenerate windows feasible).
	total := obs.Backlog
	for j := 1; j < n; j++ {
		total += l.set.DemandDT.At(obs.Slot + j - 1)
	}
	slack := prob.AddVariable("slack", 0, inf, l.cfg.EmergencyCostUSD)
	endTerms := make([]lp.Term, 0, n+1)
	for i := 0; i < n; i++ {
		endTerms = append(endTerms, lp.Term{Var: u[i], Coeff: 1})
	}
	endTerms = append(endTerms, lp.Term{Var: slack, Coeff: 1})
	prob.AddConstraint(lp.GE, total, endTerms...)

	sol, err := prob.Minimize()
	if err != nil {
		return sim.Decision{}, err
	}
	if sol.Status != lp.Optimal {
		return sim.Decision{}, fmt.Errorf("baseline: window LP %v", sol.Status)
	}

	dec := sim.Decision{
		Grt:           sol.Value(grt[0]),
		ServeDT:       math.Min(sol.Value(u[0]), math.Min(obs.Backlog, obs.SdtMax)),
		Charge:        math.Min(sol.Value(c[0]), obs.MaxCharge),
		Discharge:     math.Min(sol.Value(d[0]), obs.MaxDischarge),
		GenerateUnits: clampUnits(genPlanUnits(sol, g[0]), obs.GenUnits),
	}
	netPlanChargeDischarge(&dec, bat.ChargeEff, bat.DischargeEff)
	return dec, nil
}
