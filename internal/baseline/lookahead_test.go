package baseline

import (
	"strings"
	"testing"

	"github.com/smartdpss/smartdpss/internal/sim"
)

func TestNewLookaheadValidation(t *testing.T) {
	set := testTraces(t, 2)
	if _, err := NewLookahead(DefaultConfig(), set, 0); err == nil {
		t.Error("window 0 accepted")
	}
	bad := DefaultConfig()
	bad.T = 0
	if _, err := NewLookahead(bad, set, 4); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := NewLookahead(DefaultConfig(), set, 6); err != nil {
		t.Errorf("valid lookahead rejected: %v", err)
	}
}

func TestLookaheadName(t *testing.T) {
	set := testTraces(t, 1)
	la, err := NewLookahead(DefaultConfig(), set, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(la.Name(), "6") {
		t.Errorf("Name = %q, want the window length included", la.Name())
	}
	if la.Window() != 6 {
		t.Errorf("Window = %d", la.Window())
	}
}

func TestLookaheadServesEverything(t *testing.T) {
	cfg := DefaultConfig()
	set := testTraces(t, 4)
	la, err := NewLookahead(cfg, set, 6)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sim.Run(simConfig(cfg), set, la)
	if err != nil {
		t.Fatal(err)
	}
	if rep.UnservedMWh > 1e-6 {
		t.Errorf("unserved = %g", rep.UnservedMWh)
	}
	if rep.Availability < 1-1e-9 {
		t.Errorf("availability = %g", rep.Availability)
	}
}

func TestLookaheadMoreForesightHelps(t *testing.T) {
	cfg := DefaultConfig()
	set := testTraces(t, 7)

	run := func(w int) float64 {
		t.Helper()
		la, err := NewLookahead(cfg, set, w)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sim.Run(simConfig(cfg), set, la)
		if err != nil {
			t.Fatal(err)
		}
		return rep.TotalCostUSD
	}
	myopic := run(1)
	day := run(24)
	// A day of perfect foresight must not lose to a single slot; allow a
	// small tolerance for receding-horizon end effects.
	if day > myopic*1.02 {
		t.Errorf("Lookahead(24) $%.2f worse than Lookahead(1) $%.2f", day, myopic)
	}
}

func TestLookaheadBeatsImpatient(t *testing.T) {
	cfg := DefaultConfig()
	set := testTraces(t, 7)

	la, err := NewLookahead(cfg, set, 24)
	if err != nil {
		t.Fatal(err)
	}
	laRep, err := sim.Run(simConfig(cfg), set, la)
	if err != nil {
		t.Fatal(err)
	}
	imp, err := NewImpatient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	impRep, err := sim.Run(simConfig(cfg), set, imp)
	if err != nil {
		t.Fatal(err)
	}
	if laRep.TotalCostUSD >= impRep.TotalCostUSD {
		t.Errorf("Lookahead(24) $%.2f not below Impatient $%.2f",
			laRep.TotalCostUSD, impRep.TotalCostUSD)
	}
}
