package baseline

import (
	"math"
	"testing"

	"github.com/smartdpss/smartdpss/internal/market"
	"github.com/smartdpss/smartdpss/internal/pricing"
	"github.com/smartdpss/smartdpss/internal/sim"
	"github.com/smartdpss/smartdpss/internal/solar"
	"github.com/smartdpss/smartdpss/internal/trace"
	"github.com/smartdpss/smartdpss/internal/workload"
)

func testTraces(t *testing.T, days int) *trace.Set {
	t.Helper()
	wc := workload.Defaults()
	wc.Days = days
	ds, dt, err := workload.Generate(wc)
	if err != nil {
		t.Fatal(err)
	}
	sc := solar.Defaults()
	sc.Days = days
	sun, err := solar.Generate(sc)
	if err != nil {
		t.Fatal(err)
	}
	pc := pricing.Defaults()
	pc.Days = days
	lt, rt, err := pricing.Generate(pc)
	if err != nil {
		t.Fatal(err)
	}
	set := &trace.Set{DemandDS: ds, DemandDT: dt, Renewable: sun, PriceLT: lt, PriceRT: rt}
	if err := set.Validate(); err != nil {
		t.Fatal(err)
	}
	return set
}

func simConfig(cfg Config) sim.Config {
	return sim.Config{
		Battery:          cfg.Battery,
		Market:           market.Params{PgridMWh: cfg.PgridMWh, PmaxUSD: cfg.PmaxUSD},
		WasteCostUSD:     cfg.WasteCostUSD,
		EmergencyCostUSD: cfg.EmergencyCostUSD,
		SdtMaxMWh:        cfg.SdtMaxMWh,
		SmaxMWh:          cfg.SmaxMWh,
		KeepSeries:       true,
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	mut := func(f func(*Config)) Config {
		c := DefaultConfig()
		f(&c)
		return c
	}
	bad := []Config{
		mut(func(c *Config) { c.T = 0 }),
		mut(func(c *Config) { c.PgridMWh = 0 }),
		mut(func(c *Config) { c.PmaxUSD = 0 }),
		mut(func(c *Config) { c.SmaxMWh = 0 }),
		mut(func(c *Config) { c.SdtMaxMWh = 0 }),
		mut(func(c *Config) { c.WasteCostUSD = -1 }),
		mut(func(c *Config) { c.EmergencyCostUSD = 1 }),
		mut(func(c *Config) { c.Battery.DischargeEff = 0.5 }),
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestImpatientServesImmediately(t *testing.T) {
	cfg := DefaultConfig()
	imp, err := NewImpatient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	set := testTraces(t, 7)
	rep, err := sim.Run(simConfig(cfg), set, imp)
	if err != nil {
		t.Fatal(err)
	}
	if rep.UnservedMWh > 1e-6 {
		t.Errorf("unserved = %g, want 0", rep.UnservedMWh)
	}
	// Impatient's whole point: minimal queueing delay. Arrivals can first
	// be served one slot later (Eq. 2 serves before arrivals), so the
	// structural floor is 1 slot; allow a small capacity-deferral margin.
	if rep.MeanDelaySlots > 1.5 {
		t.Errorf("Impatient mean delay = %g slots, want ~1", rep.MeanDelaySlots)
	}
	// The backlog never accumulates beyond one slot of arrivals
	// (service capacity permitting).
	if rep.BacklogMaxMWh > 2*cfg.SdtMaxMWh+1e-9 {
		t.Errorf("Impatient max backlog = %g", rep.BacklogMaxMWh)
	}
}

func TestImpatientPlanFineDeficitOrder(t *testing.T) {
	cfg := DefaultConfig()
	imp, err := NewImpatient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	obs := sim.FineObs{
		DemandDS: 1.2, Backlog: 0.4, SdtMax: 1.0,
		LongTermDue: 0.5, Renewable: 0.1,
		RTHeadroom: 1.5, MaxCharge: 0.5, MaxDischarge: 0.4,
	}
	dec := imp.PlanFine(obs)
	// Need 1.2 + 0.4 = 1.6; base 0.6; deficit 1.0 → all from the grid.
	if math.Abs(dec.ServeDT-0.4) > 1e-12 {
		t.Errorf("ServeDT = %g, want 0.4", dec.ServeDT)
	}
	if math.Abs(dec.Grt-1.0) > 1e-12 {
		t.Errorf("Grt = %g, want 1.0", dec.Grt)
	}
	if dec.Discharge != 0 {
		t.Errorf("Discharge = %g, want 0 (grid headroom sufficient)", dec.Discharge)
	}
}

func TestImpatientFallsBackToBattery(t *testing.T) {
	cfg := DefaultConfig()
	imp, err := NewImpatient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	obs := sim.FineObs{
		DemandDS: 1.2, LongTermDue: 0.2, Renewable: 0,
		RTHeadroom: 0.5, MaxDischarge: 0.4, SdtMax: 1.0,
	}
	dec := imp.PlanFine(obs)
	// Deficit 1.0; grid gives 0.5; battery covers 0.4; 0.1 shed by engine.
	if math.Abs(dec.Grt-0.5) > 1e-12 || math.Abs(dec.Discharge-0.4) > 1e-12 {
		t.Errorf("dec = %+v, want grt=0.5 discharge=0.4", dec)
	}
}

func TestImpatientAbsorbsSurplus(t *testing.T) {
	cfg := DefaultConfig()
	imp, err := NewImpatient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	obs := sim.FineObs{
		DemandDS: 0.3, LongTermDue: 0.5, Renewable: 0.6,
		MaxCharge: 0.5, SdtMax: 1.0,
	}
	dec := imp.PlanFine(obs)
	if math.Abs(dec.Charge-0.5) > 1e-12 {
		t.Errorf("Charge = %g, want 0.5 (surplus 0.8 capped at 0.5)", dec.Charge)
	}
}

func TestOfflineOptimalBeatsImpatient(t *testing.T) {
	cfg := DefaultConfig()
	set := testTraces(t, 7)

	imp, err := NewImpatient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	impRep, err := sim.Run(simConfig(cfg), set, imp)
	if err != nil {
		t.Fatal(err)
	}

	off, err := NewOfflineOptimal(cfg, set)
	if err != nil {
		t.Fatal(err)
	}
	offRep, err := sim.Run(simConfig(cfg), set, off)
	if err != nil {
		t.Fatal(err)
	}

	if offRep.TotalCostUSD >= impRep.TotalCostUSD {
		t.Errorf("offline $%.2f not below Impatient $%.2f",
			offRep.TotalCostUSD, impRep.TotalCostUSD)
	}
	if offRep.UnservedMWh > 1e-6 {
		t.Errorf("offline unserved = %g, want 0", offRep.UnservedMWh)
	}
}

func TestOfflineOptimalLemma1RealTimeNearZero(t *testing.T) {
	cfg := DefaultConfig()
	set := testTraces(t, 7)
	off, err := NewOfflineOptimal(cfg, set)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sim.Run(simConfig(cfg), set, off)
	if err != nil {
		t.Fatal(err)
	}
	// Lemma 1: with full knowledge the real-time market is unnecessary.
	// In this implementation the long-term energy is delivered flat
	// (gbef/T per slot, Eq. 1), so tracking intra-day peaks with gbef
	// alone would flood the troughs; the optimum keeps a modest real-time
	// component for the peaks. Assert long-term clearly dominates.
	if rep.RTEnergyMWh > 0.35*rep.LTEnergyMWh {
		t.Errorf("offline real-time energy %g vs long-term %g — Lemma 1 violated",
			rep.RTEnergyMWh, rep.LTEnergyMWh)
	}
}

func TestOfflineHorizonAtLeastAsGoodAsPerInterval(t *testing.T) {
	cfg := DefaultConfig()
	cfg.T = 12 // keep the horizon LP small
	set := testTraces(t, 3)

	perInterval, err := NewOfflineOptimal(cfg, set)
	if err != nil {
		t.Fatal(err)
	}
	perRep, err := sim.Run(simConfig(cfg), set, perInterval)
	if err != nil {
		t.Fatal(err)
	}

	horizon, err := NewOfflineHorizon(cfg, set)
	if err != nil {
		t.Fatal(err)
	}
	horRep, err := sim.Run(simConfig(cfg), set, horizon)
	if err != nil {
		t.Fatal(err)
	}

	// The horizon LP optimizes a superset of the per-interval plans;
	// allow a small tolerance for the executed (as opposed to planned)
	// costs to differ through clamping.
	if horRep.TotalCostUSD > perRep.TotalCostUSD*1.02+1 {
		t.Errorf("horizon $%.2f worse than per-interval $%.2f",
			horRep.TotalCostUSD, perRep.TotalCostUSD)
	}
}

func TestOfflineIntervalPlanIsBalanced(t *testing.T) {
	cfg := DefaultConfig()
	set := testTraces(t, 2)
	b0 := cfg.Battery.InitialMWh
	var st lpState
	gbef, plan, err := st.solveInterval(cfg, set, 0, cfg.T, b0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if gbef < 0 || gbef > float64(cfg.T)*cfg.PgridMWh {
		t.Fatalf("gbef = %g outside [0, %g]", gbef, float64(cfg.T)*cfg.PgridMWh)
	}
	level := b0
	served := 0.0
	arrived := 0.0
	for i, dec := range plan {
		if dec.Grt < -1e-9 || dec.ServeDT < -1e-9 || dec.Charge < -1e-9 || dec.Discharge < -1e-9 {
			t.Fatalf("slot %d: negative component %+v", i, dec)
		}
		if dec.Charge > 1e-9 && dec.Discharge > 1e-9 {
			t.Fatalf("slot %d: charge and discharge together", i)
		}
		level += dec.Charge*cfg.Battery.ChargeEff - dec.Discharge*cfg.Battery.DischargeEff
		if level < cfg.Battery.MinLevelMWh-1e-6 || level > cfg.Battery.CapacityMWh+1e-6 {
			t.Fatalf("slot %d: battery level %g out of bounds", i, level)
		}
		served += dec.ServeDT
		arrived += set.DemandDT.At(i)
		if served > arrived+1e-6 {
			t.Fatalf("slot %d: served %g ahead of arrivals %g", i, served, arrived)
		}
	}
	if math.Abs(served-arrived) > 1e-6 {
		t.Fatalf("interval end: served %g != arrived %g", served, arrived)
	}
}

func TestOfflineOptimalNoBattery(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Battery.CapacityMWh = 0
	cfg.Battery.MinLevelMWh = 0
	cfg.Battery.InitialMWh = 0
	set := testTraces(t, 3)
	off, err := NewOfflineOptimal(cfg, set)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sim.Run(simConfig(cfg), set, off)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BatteryOps != 0 {
		t.Errorf("battery ops = %d with zero-capacity UPS", rep.BatteryOps)
	}
	if rep.UnservedMWh > 1e-6 {
		t.Errorf("unserved = %g without battery, want 0 (grid covers)", rep.UnservedMWh)
	}
}
