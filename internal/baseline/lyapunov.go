package baseline

import (
	"encoding/json"
	"fmt"
	"math"

	"github.com/smartdpss/smartdpss/internal/sim"
)

// Lyapunov is the forecast-free stored-energy baseline of Urgaonkar et
// al. (arXiv:1103.3099): a drift-plus-penalty controller over the
// battery's virtual queue alone. The state of charge is perturbed around
// a target level θ and each slot's charge/discharge direction follows a
// price threshold derived from the one-slot drift bound —
//
//	charge    when V·p + ηc·(b − θ) < 0   (price below ηc·(θ−b)/V)
//	discharge when V·p + ηd·(b − θ) > 0   (price above ηd·(θ−b)/V)
//
// with b the current level, p the slot's real-time price and ηc ≤ 1 ≤ ηd
// the charge/discharge efficiency factors (the two conditions are
// disjoint for any non-negative price). Small V keeps the battery pinned
// at θ (queue-dominated); large V chases price spreads aggressively. The
// policy observes only the current slot — no price or demand forecast —
// which makes it the canonical competitor for SmartDPSS's forecast-driven
// dispatch. Workload service mirrors Impatient (everything now, trailing-
// mean coarse purchase) so the comparison isolates the storage policy;
// like Impatient it never dispatches on-site generation.
type Lyapunov struct {
	cfg   Config
	v     float64
	theta float64
	est   sim.TrailingMeans
}

var _ sim.Controller = (*Lyapunov)(nil)

// NewLyapunov returns the Lyapunov battery policy. v is the
// cost-vs-queue weight (non-positive selects the scale-aware default
// usable-span/Pmax, which balances the two threshold terms at the price
// cap); thetaFrac places the target level inside the usable band
// [Bmin, Bmax] (non-positive selects 0.6).
func NewLyapunov(cfg Config, v, thetaFrac float64) (*Lyapunov, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	span := cfg.Battery.CapacityMWh - cfg.Battery.MinLevelMWh
	if v <= 0 {
		v = span / cfg.PmaxUSD
	}
	if thetaFrac <= 0 {
		thetaFrac = 0.6
	}
	if thetaFrac > 1 {
		return nil, fmt.Errorf("baseline: lyapunov theta fraction %g outside (0, 1]", thetaFrac)
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return nil, fmt.Errorf("baseline: lyapunov V %g is not finite", v)
	}
	return &Lyapunov{
		cfg:   cfg,
		v:     v,
		theta: cfg.Battery.MinLevelMWh + thetaFrac*span,
	}, nil
}

// Name implements sim.Controller.
func (l *Lyapunov) Name() string { return "Lyapunov" }

// CoarseSlots implements sim.Controller.
func (l *Lyapunov) CoarseSlots() int { return l.cfg.T }

// PlanCoarse mirrors Impatient: buy the trailing-mean net demand for
// every slot of the interval. The Lyapunov policy is forecast-free by
// construction, so the coarse arm uses no price information either — all
// cost strategy lives in the battery thresholds.
func (l *Lyapunov) PlanCoarse(obs sim.CoarseObs) float64 {
	dds, ddt, ren := obs.DemandDS, obs.DemandDT, obs.Renewable
	if l.est.Ready() {
		dds, ddt, ren = l.est.Means()
	}
	l.est.Reset()
	need := dds + ddt - ren
	perSlot := clamp(need, 0, l.cfg.PgridMWh)
	return perSlot * float64(obs.Slots)
}

// PlanFine serves all demand now (delay-sensitive first, then backlog up
// to capacity, exactly as Impatient) and sets the battery direction from
// the drift-plus-penalty thresholds on slot-observable state only.
func (l *Lyapunov) PlanFine(obs sim.FineObs) sim.Decision {
	l.est.Observe(obs.DemandDS, obs.DemandDT, obs.Renewable)
	base := obs.LongTermDue + obs.Renewable
	grtCap := math.Max(0, math.Min(obs.RTHeadroom, l.cfg.SmaxMWh-base))
	x := obs.Battery - l.theta
	etaC := l.cfg.Battery.ChargeEff
	etaD := l.cfg.Battery.DischargeEff

	var dec sim.Decision
	switch {
	case l.v*obs.PriceRT+etaD*x > 0:
		// Discharge regime: the battery is a supply source alongside the
		// grid, preferred over real-time purchases at this price. Only
		// useful discharge is scheduled — energy pushed past demand would
		// be wasted, which no drift bound rewards.
		capacity := base + obs.MaxDischarge + grtCap
		serve := math.Min(math.Min(obs.Backlog, obs.SdtMax),
			math.Max(0, capacity-obs.DemandDS))
		dec.ServeDT = serve
		need := obs.DemandDS + serve - base
		if need > 0 {
			dec.Discharge = math.Min(need, obs.MaxDischarge)
			dec.Grt = math.Min(need-dec.Discharge, grtCap)
			return dec
		}
		// Long-term surplus: absorb it rather than waste it (free energy
		// beats the threshold's grid-price calculus either way).
		dec.Charge = math.Min(-need, obs.MaxCharge)
		return dec
	case l.v*obs.PriceRT+etaC*x < 0:
		// Charge regime: serve demand from the grid and spend any spare
		// real-time headroom filling the battery at this price.
		capacity := base + grtCap
		serve := math.Min(math.Min(obs.Backlog, obs.SdtMax),
			math.Max(0, capacity-obs.DemandDS))
		dec.ServeDT = serve
		deficit := obs.DemandDS + serve - base
		grt := clamp(deficit, 0, grtCap)
		surplus := math.Max(0, -deficit)
		fromSurplus := math.Min(surplus, obs.MaxCharge)
		fromGrid := math.Min(obs.MaxCharge-fromSurplus, grtCap-grt)
		dec.Grt = grt + fromGrid
		dec.Charge = fromSurplus + fromGrid
		return dec
	default:
		// Deadband: no arbitrage. Serve like Impatient — grid first,
		// battery only as the last-resort UPS — and absorb surplus.
		capacity := base + grtCap + obs.MaxDischarge
		serve := math.Min(math.Min(obs.Backlog, obs.SdtMax),
			math.Max(0, capacity-obs.DemandDS))
		dec.ServeDT = serve
		deficit := obs.DemandDS + serve - base
		if deficit > 0 {
			dec.Grt = math.Min(deficit, grtCap)
			if remaining := deficit - dec.Grt; remaining > 0 {
				dec.Discharge = math.Min(remaining, obs.MaxDischarge)
			}
			return dec
		}
		dec.Charge = math.Min(-deficit, obs.MaxCharge)
		return dec
	}
}

// RecordOutcome implements sim.Controller; the thresholds need no
// feedback beyond the observable battery level.
func (l *Lyapunov) RecordOutcome(sim.Outcome) {}

var _ sim.Snapshotter = (*Lyapunov)(nil)

// lyapunovState is the checkpoint form: V and θ are pinned by the
// session checkpoint's config hash, so only the estimator survives.
type lyapunovState struct {
	Est sim.TrailingMeansState `json:"est"`
}

// SnapshotState implements sim.Snapshotter.
func (l *Lyapunov) SnapshotState() ([]byte, error) {
	return json.Marshal(lyapunovState{Est: l.est.State()})
}

// RestoreState implements sim.Snapshotter.
func (l *Lyapunov) RestoreState(data []byte) error {
	var s lyapunovState
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("baseline: decode lyapunov state: %w", err)
	}
	l.est.Restore(s.Est)
	return nil
}
