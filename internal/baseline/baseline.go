// Package baseline provides the comparison policies of the SmartDPSS
// evaluation (Sec. VI-A "Compared Algorithms"):
//
//   - Impatient: the online strawman that "always schedules workloads
//     immediately regardless of the changes of electricity prices and
//     renewable production".
//   - OfflineOptimal: the paper's offline benchmark (Sec. II-D). By
//     Lemma 1 the clairvoyant optimum needs essentially no real-time
//     purchases and wastes nothing; the paper solves problem P2 once per
//     coarse slot. We realize this as a per-interval linear program with
//     full knowledge of that interval's demand, renewable production and
//     prices, intra-interval battery dynamics, and battery state carried
//     across intervals.
//   - OfflineHorizon: a single clairvoyant LP over the whole horizon,
//     used on short horizons to measure how much the per-interval
//     decomposition gives up (cross-interval battery planning).
//
// The UPS fixed charge Cb·n(τ) is non-convex; the offline LPs use the
// standard linear proxy Cb·(brc/Bcmax + bdc/Bdmax), which never overstates
// the true operation cost. The offline benchmarks therefore report a cost
// at or slightly below what any physical schedule could achieve — the
// right direction for a lower-bound benchmark.
//
// When an on-site generation fleet is configured (Config.Fleet, or the
// one-unit Config.Generator shorthand), the LPs plan each unit's
// dispatch as relaxed per-slot, per-unit variables over its convex fuel
// curve (piecewise-linear segments priced at the slot's fuel-scaled
// marginal), with the classical unit-commitment LP relaxation of the
// non-convex minimum stable load: a commitment variable y ∈ [0, 1] per
// unit and slot linking MinLoad·y ≤ g ≤ Capacity·y and carrying the
// startup cost amortized over the window. Ramp limits and the integer
// nature of y stay relaxed — the same relax-and-replay treatment the
// battery proxy receives. The engine enforces the physical constraints
// during replay, so the reported cost is the executed truth; only the
// plan itself is optimistic.
package baseline

import (
	"errors"
	"fmt"
	"math"

	"github.com/smartdpss/smartdpss/internal/battery"
	"github.com/smartdpss/smartdpss/internal/generator"
	"github.com/smartdpss/smartdpss/internal/lp"
	"github.com/smartdpss/smartdpss/internal/scratch"
	"github.com/smartdpss/smartdpss/internal/sim"
)

// Config holds the system constants shared by the baseline policies.
// Semantics match core.Params field for field.
type Config struct {
	// T is the number of fine slots per coarse slot.
	T int
	// PgridMWh is the per-slot grid draw cap (Eq. 5).
	PgridMWh float64
	// PmaxUSD is the market price cap.
	PmaxUSD float64
	// SmaxMWh is the per-slot supply cap (Eq. 1).
	SmaxMWh float64
	// SdtMaxMWh is the per-slot delay-tolerant service cap.
	SdtMaxMWh float64
	// WasteCostUSD prices wasted energy per MWh.
	WasteCostUSD float64
	// EmergencyCostUSD is the shadow price for unserved delay-sensitive
	// energy inside the offline LPs.
	EmergencyCostUSD float64
	// Battery is the UPS configuration.
	Battery battery.Params
	// Generator is the optional dispatchable on-site generation unit
	// (zero value: none). It is the one-unit shorthand for Fleet;
	// setting both is a configuration error.
	Generator generator.Params
	// Fleet is the multi-unit on-site generation fleet in dispatch
	// order (nil: none). Each unit gets its own relaxed LP variables.
	Fleet []generator.Params
	// HorizonDense forces OfflineHorizon onto the legacy dense-tableau
	// chain formulation instead of the sparse staircase form. The two
	// reach the same optimal objective (gated by the LP parity harness);
	// the knob exists for the dense-reference benchmark and for
	// debugging, not for production — the dense chain form is quadratic
	// in the horizon and cannot reach annual scale.
	HorizonDense bool
}

// DefaultConfig mirrors core.DefaultParams for the shared constants.
func DefaultConfig() Config {
	return Config{
		T:                24,
		PgridMWh:         2.0,
		PmaxUSD:          150,
		SmaxMWh:          4.0,
		SdtMaxMWh:        1.0,
		WasteCostUSD:     1.0,
		EmergencyCostUSD: 1e6,
		Battery:          battery.Sized(2.0, 15, 1),
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.T <= 0:
		return errors.New("baseline: T must be positive")
	case c.PgridMWh <= 0:
		return errors.New("baseline: PgridMWh must be positive")
	case c.PmaxUSD <= 0:
		return errors.New("baseline: PmaxUSD must be positive")
	case c.SmaxMWh <= 0:
		return errors.New("baseline: SmaxMWh must be positive")
	case c.SdtMaxMWh <= 0:
		return errors.New("baseline: SdtMaxMWh must be positive")
	case c.WasteCostUSD < 0:
		return errors.New("baseline: negative WasteCostUSD")
	case c.EmergencyCostUSD <= c.PmaxUSD:
		return errors.New("baseline: EmergencyCostUSD must dwarf PmaxUSD")
	}
	if err := c.Generator.Validate(); err != nil {
		return err
	}
	if len(c.Fleet) > 0 && c.Generator.Enabled() {
		return errors.New("baseline: both Generator and Fleet configured (use Fleet alone)")
	}
	for i, u := range c.Fleet {
		if err := u.Validate(); err != nil {
			return fmt.Errorf("baseline: fleet unit %d: %w", i, err)
		}
	}
	return c.Battery.Validate()
}

// lpState is the reusable LP substrate a baseline controller owns: the
// solver whose tableau buffers persist across the run's solves, the
// problem rebuilt in place, and every slice the model builders need.
//
// Production solves use the bounded-variable simplex (capacity and box
// limits as column bounds, not rows — the interval LP's tableau shrinks
// ~40%) and run the cold pivot sequence with buffer reuse. Basis
// warm-starting across consecutive same-shape solves is available behind
// the warm flag and stays off here for two measured reasons: these
// degenerate LPs have alternate optima, so a warm solve can land on a
// different (equally optimal) vertex than the byte-pinned golden
// snapshots replay; and at this problem scale the dense-tableau basis
// re-installation plus feasibility repair costs more pivots than the
// skipped phase 1 saves (see TestWarmIntervalSequencePivotOverhead).
// Because warm bases only exist for the row formulation, setting warm
// (or rowBounds) keeps the problem in the legacy row-per-bound form.
// The zero value is ready to use.
type lpState struct {
	solver    lp.Solver
	prob      *lp.Problem
	warm      bool
	rowBounds bool // keep the row-per-bound formulation (warm-start tests)
	sparse    bool // route solves through the sparse revised simplex

	grt, u, c, d, w, e []lp.VarID
	terms              []lp.Term // per-constraint build buffer
	chain              []lp.Term // incrementally grown battery-level terms
	serve              []lp.Term // incrementally grown service-causality terms
	plan               []sim.Decision
	clamped            []float64

	// lastIterations and lastObjective record the most recent solve —
	// observability for the warm-start tests.
	lastIterations int
	lastObjective  float64
}

// problem returns the reusable problem, reset for rebuilding. The bound
// mode is re-derived on every call (not just at creation) so flipping
// warm or rowBounds between solves takes effect rather than being
// silently latched.
func (st *lpState) problem() *lp.Problem {
	if st.prob == nil {
		st.prob = lp.NewProblem()
	}
	st.prob.SetBounded(!st.warm && !st.rowBounds)
	// The sparse revised simplex matches the dense objective but not
	// necessarily the dense vertex, so the golden-pinned row-bound mode
	// and the warm-start mode (dense-only machinery) always force it off.
	st.prob.SetSparse(st.sparse && !st.warm && !st.rowBounds)
	st.prob.Reset()
	return st.prob
}

// solve runs the configured solve mode and records the pivot count and
// objective for the warm-start tests.
func (st *lpState) solve(prob *lp.Problem) (lp.Solution, error) {
	var sol lp.Solution
	var err error
	if st.warm {
		sol, err = st.solver.SolveWarm(prob)
	} else {
		sol, err = st.solver.Solve(prob)
	}
	if err == nil {
		st.lastIterations = sol.Iterations
		st.lastObjective = sol.Objective
	}
	return sol, err
}

// varIDs returns the six per-slot variable slices resized to n.
func (st *lpState) varIDs(n int) (grt, u, c, d, w, e []lp.VarID) {
	st.grt, st.u, st.c, st.d, st.w, st.e =
		scratch.For(st.grt, n), scratch.For(st.u, n), scratch.For(st.c, n),
		scratch.For(st.d, n), scratch.For(st.w, n), scratch.For(st.e, n)
	return st.grt, st.u, st.c, st.d, st.w, st.e
}

// decisions returns the plan buffer resized to n with zeroed entries.
func (st *lpState) decisions(n int) []sim.Decision {
	if cap(st.plan) < n {
		st.plan = make([]sim.Decision, n)
	}
	st.plan = st.plan[:n]
	for i := range st.plan {
		st.plan[i] = sim.Decision{}
	}
	return st.plan
}

// genUnit is one fleet unit's relaxed LP description: the full output
// band (0, Capacity] decomposed into convex fuel-curve segments.
type genUnit struct {
	spec generator.Params
	segs []generator.Segment
}

// genUnits resolves the configured fleet (the legacy single Generator
// appears as a one-unit fleet) into LP unit descriptions; nil without
// on-site generation.
func (c Config) genUnits() []genUnit {
	specs := c.Fleet
	if len(specs) == 0 && c.Generator.Enabled() {
		specs = []generator.Params{c.Generator}
	}
	if len(specs) == 0 {
		return nil
	}
	units := make([]genUnit, len(specs))
	for i, p := range specs {
		units[i] = genUnit{spec: p, segs: p.Segments(0, p.CapacityMWh)}
	}
	return units
}

// addFleetVars adds the relaxed dispatch variables of every unit for
// slot i: one variable per fuel-curve segment, priced at the slot's
// fuel-scaled marginal, plus a commitment variable y ∈ [0, 1] carrying
// the startup cost amortized over the amortSlots-long window and
// linking the unit's minimum-stable-load semi-continuity
// (MinLoad·y ≤ Σg ≤ Capacity·y). The returned slice holds each unit's
// segment variables; nil when no fleet is configured.
func addFleetVars(prob *lp.Problem, units []genUnit, i, amortSlots int, fuelScale float64) [][]lp.VarID {
	if len(units) == 0 {
		return nil
	}
	vars := make([][]lp.VarID, len(units))
	for u, unit := range units {
		vars[u] = make([]lp.VarID, len(unit.segs))
		for k, s := range unit.segs {
			vars[u][k] = prob.AddVariable(fmt.Sprintf("g%d_%d_%d", i, u, k),
				0, s.Cap, s.USDPerMWh*fuelScale)
		}
		spec := unit.spec
		if spec.StartupUSD == 0 && spec.MinLoadMWh == 0 {
			continue // y would be free and unconstrained: skip it
		}
		amort := spec.StartupUSD / float64(amortSlots)
		y := prob.AddVariable(fmt.Sprintf("y%d_%d", i, u), 0, 1, amort)
		// Σg − Capacity·y ≤ 0 and Σg − MinLoad·y ≥ 0.
		upper := make([]lp.Term, 0, len(unit.segs)+1)
		lower := make([]lp.Term, 0, len(unit.segs)+1)
		for _, gv := range vars[u] {
			upper = append(upper, lp.Term{Var: gv, Coeff: 1})
			lower = append(lower, lp.Term{Var: gv, Coeff: 1})
		}
		upper = append(upper, lp.Term{Var: y, Coeff: -spec.CapacityMWh})
		prob.AddConstraint(lp.LE, 0, upper...)
		if spec.MinLoadMWh > 0 {
			lower = append(lower, lp.Term{Var: y, Coeff: -spec.MinLoadMWh})
			prob.AddConstraint(lp.GE, 0, lower...)
		}
	}
	return vars
}

// appendFleetTerms appends one +1 term per generation variable of the
// slot (for the balance and supply-cap constraints).
func appendFleetTerms(terms []lp.Term, vars [][]lp.VarID) []lp.Term {
	for _, unit := range vars {
		for _, gv := range unit {
			terms = append(terms, lp.Term{Var: gv, Coeff: 1})
		}
	}
	return terms
}

// genPlanUnits sums each unit's solved segment outputs for one slot
// (nil when no fleet is configured).
func genPlanUnits(sol *lp.Solution, vars [][]lp.VarID) []float64 {
	if len(vars) == 0 {
		return nil
	}
	out := make([]float64, len(vars))
	for u, unit := range vars {
		for _, v := range unit {
			out[u] += sol.Value(v)
		}
	}
	return out
}

// clampUnits clamps a planned per-unit dispatch to the live admissible
// requests (the engine enforces min-load and startup physics on
// execution).
func clampUnits(plan []float64, units []generator.UnitObs) []float64 {
	if plan == nil {
		return nil
	}
	return clampUnitsInto(make([]float64, len(plan)), plan, units)
}

// clampUnitsInto is clampUnits writing into a caller-owned buffer (which
// must have len(plan)), so per-slot replay clamping reuses one slice per
// controller.
func clampUnitsInto(dst, plan []float64, units []generator.UnitObs) []float64 {
	for u, v := range plan {
		if u < len(units) {
			dst[u] = math.Min(v, units[u].RequestMax)
		} else {
			dst[u] = 0
		}
	}
	return dst
}

// clampPlan clamps a planned per-unit dispatch to the live admissible
// requests in the state's reusable buffer (valid until the next call).
// A nil plan stays nil, so fleet-free decisions stay fleet-free.
func (st *lpState) clampPlan(plan []float64, units []generator.UnitObs) []float64 {
	if plan == nil {
		return nil
	}
	st.clamped = scratch.For(st.clamped, len(plan))
	return clampUnitsInto(st.clamped, plan, units)
}
