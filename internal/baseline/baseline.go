// Package baseline provides the comparison policies of the SmartDPSS
// evaluation (Sec. VI-A "Compared Algorithms"):
//
//   - Impatient: the online strawman that "always schedules workloads
//     immediately regardless of the changes of electricity prices and
//     renewable production".
//   - OfflineOptimal: the paper's offline benchmark (Sec. II-D). By
//     Lemma 1 the clairvoyant optimum needs essentially no real-time
//     purchases and wastes nothing; the paper solves problem P2 once per
//     coarse slot. We realize this as a per-interval linear program with
//     full knowledge of that interval's demand, renewable production and
//     prices, intra-interval battery dynamics, and battery state carried
//     across intervals.
//   - OfflineHorizon: a single clairvoyant LP over the whole horizon,
//     used on short horizons to measure how much the per-interval
//     decomposition gives up (cross-interval battery planning).
//
// The UPS fixed charge Cb·n(τ) is non-convex; the offline LPs use the
// standard linear proxy Cb·(brc/Bcmax + bdc/Bdmax), which never overstates
// the true operation cost. The offline benchmarks therefore report a cost
// at or slightly below what any physical schedule could achieve — the
// right direction for a lower-bound benchmark.
//
// When an on-site generator is configured (Config.Generator), the LPs
// plan its dispatch as relaxed per-slot variables over the convex fuel
// curve (piecewise-linear segments), ignoring the non-convex minimum
// stable load, ramp limit and startup charge — the same relax-and-replay
// treatment the battery proxy receives. The engine enforces the physical
// constraints during replay, so the reported cost is the executed truth;
// only the plan itself is optimistic.
package baseline

import (
	"errors"
	"fmt"

	"github.com/smartdpss/smartdpss/internal/battery"
	"github.com/smartdpss/smartdpss/internal/generator"
	"github.com/smartdpss/smartdpss/internal/lp"
)

// Config holds the system constants shared by the baseline policies.
// Semantics match core.Params field for field.
type Config struct {
	// T is the number of fine slots per coarse slot.
	T int
	// PgridMWh is the per-slot grid draw cap (Eq. 5).
	PgridMWh float64
	// PmaxUSD is the market price cap.
	PmaxUSD float64
	// SmaxMWh is the per-slot supply cap (Eq. 1).
	SmaxMWh float64
	// SdtMaxMWh is the per-slot delay-tolerant service cap.
	SdtMaxMWh float64
	// WasteCostUSD prices wasted energy per MWh.
	WasteCostUSD float64
	// EmergencyCostUSD is the shadow price for unserved delay-sensitive
	// energy inside the offline LPs.
	EmergencyCostUSD float64
	// Battery is the UPS configuration.
	Battery battery.Params
	// Generator is the optional dispatchable on-site generation unit
	// (zero value: none).
	Generator generator.Params
}

// DefaultConfig mirrors core.DefaultParams for the shared constants.
func DefaultConfig() Config {
	return Config{
		T:                24,
		PgridMWh:         2.0,
		PmaxUSD:          150,
		SmaxMWh:          4.0,
		SdtMaxMWh:        1.0,
		WasteCostUSD:     1.0,
		EmergencyCostUSD: 1e6,
		Battery:          battery.Sized(2.0, 15, 1),
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.T <= 0:
		return errors.New("baseline: T must be positive")
	case c.PgridMWh <= 0:
		return errors.New("baseline: PgridMWh must be positive")
	case c.PmaxUSD <= 0:
		return errors.New("baseline: PmaxUSD must be positive")
	case c.SmaxMWh <= 0:
		return errors.New("baseline: SmaxMWh must be positive")
	case c.SdtMaxMWh <= 0:
		return errors.New("baseline: SdtMaxMWh must be positive")
	case c.WasteCostUSD < 0:
		return errors.New("baseline: negative WasteCostUSD")
	case c.EmergencyCostUSD <= c.PmaxUSD:
		return errors.New("baseline: EmergencyCostUSD must dwarf PmaxUSD")
	}
	if err := c.Generator.Validate(); err != nil {
		return err
	}
	return c.Battery.Validate()
}

// genSegments returns the relaxed fuel-curve segmentation of the
// configured generator's full output band (nil when no generator).
func (c Config) genSegments() []generator.Segment {
	if !c.Generator.Enabled() {
		return nil
	}
	return c.Generator.Segments(0, c.Generator.CapacityMWh)
}

// addGenVars adds one relaxed dispatch variable per fuel-curve segment
// for slot i and returns them (nil when no generator is configured).
func addGenVars(prob *lp.Problem, segs []generator.Segment, i int) []lp.VarID {
	if len(segs) == 0 {
		return nil
	}
	vars := make([]lp.VarID, len(segs))
	for k, s := range segs {
		vars[k] = prob.AddVariable(fmt.Sprintf("g%d_%d", i, k), 0, s.Cap, s.USDPerMWh)
	}
	return vars
}

// genPlan sums the solved segment outputs for one slot.
func genPlan(sol *lp.Solution, vars []lp.VarID) float64 {
	total := 0.0
	for _, v := range vars {
		total += sol.Value(v)
	}
	return total
}
