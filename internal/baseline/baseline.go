// Package baseline provides the comparison policies of the SmartDPSS
// evaluation (Sec. VI-A "Compared Algorithms"):
//
//   - Impatient: the online strawman that "always schedules workloads
//     immediately regardless of the changes of electricity prices and
//     renewable production".
//   - OfflineOptimal: the paper's offline benchmark (Sec. II-D). By
//     Lemma 1 the clairvoyant optimum needs essentially no real-time
//     purchases and wastes nothing; the paper solves problem P2 once per
//     coarse slot. We realize this as a per-interval linear program with
//     full knowledge of that interval's demand, renewable production and
//     prices, intra-interval battery dynamics, and battery state carried
//     across intervals.
//   - OfflineHorizon: a single clairvoyant LP over the whole horizon,
//     used on short horizons to measure how much the per-interval
//     decomposition gives up (cross-interval battery planning).
//
// The UPS fixed charge Cb·n(τ) is non-convex; the offline LPs use the
// standard linear proxy Cb·(brc/Bcmax + bdc/Bdmax), which never overstates
// the true operation cost. The offline benchmarks therefore report a cost
// at or slightly below what any physical schedule could achieve — the
// right direction for a lower-bound benchmark.
package baseline

import (
	"errors"

	"github.com/smartdpss/smartdpss/internal/battery"
)

// Config holds the system constants shared by the baseline policies.
// Semantics match core.Params field for field.
type Config struct {
	// T is the number of fine slots per coarse slot.
	T int
	// PgridMWh is the per-slot grid draw cap (Eq. 5).
	PgridMWh float64
	// PmaxUSD is the market price cap.
	PmaxUSD float64
	// SmaxMWh is the per-slot supply cap (Eq. 1).
	SmaxMWh float64
	// SdtMaxMWh is the per-slot delay-tolerant service cap.
	SdtMaxMWh float64
	// WasteCostUSD prices wasted energy per MWh.
	WasteCostUSD float64
	// EmergencyCostUSD is the shadow price for unserved delay-sensitive
	// energy inside the offline LPs.
	EmergencyCostUSD float64
	// Battery is the UPS configuration.
	Battery battery.Params
}

// DefaultConfig mirrors core.DefaultParams for the shared constants.
func DefaultConfig() Config {
	return Config{
		T:                24,
		PgridMWh:         2.0,
		PmaxUSD:          150,
		SmaxMWh:          4.0,
		SdtMaxMWh:        1.0,
		WasteCostUSD:     1.0,
		EmergencyCostUSD: 1e6,
		Battery:          battery.Sized(2.0, 15, 1),
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.T <= 0:
		return errors.New("baseline: T must be positive")
	case c.PgridMWh <= 0:
		return errors.New("baseline: PgridMWh must be positive")
	case c.PmaxUSD <= 0:
		return errors.New("baseline: PmaxUSD must be positive")
	case c.SmaxMWh <= 0:
		return errors.New("baseline: SmaxMWh must be positive")
	case c.SdtMaxMWh <= 0:
		return errors.New("baseline: SdtMaxMWh must be positive")
	case c.WasteCostUSD < 0:
		return errors.New("baseline: negative WasteCostUSD")
	case c.EmergencyCostUSD <= c.PmaxUSD:
		return errors.New("baseline: EmergencyCostUSD must dwarf PmaxUSD")
	}
	return c.Battery.Validate()
}
